package server

import (
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"priview/internal/core"
	"priview/internal/marginal"
)

// fakeLease wraps a Querier and counts Close calls.
type fakeLease struct {
	Querier
	closed atomic.Int64
}

func (l *fakeLease) Close() { l.closed.Add(1) }

// fakeResolver resolves a fixed map of releases, optionally failing
// some with a configured error.
type fakeResolver struct {
	leases   map[string]*fakeLease
	errs     map[string]error
	ready    bool
	acquires atomic.Int64
}

func (f *fakeResolver) Acquire(ctx context.Context, name string) (Lease, error) {
	f.acquires.Add(1)
	if err, ok := f.errs[name]; ok {
		return nil, err
	}
	if l, ok := f.leases[name]; ok {
		return l, nil
	}
	return nil, ErrUnknownRelease
}

func (f *fakeResolver) ReleaseStats(name string) (any, error) {
	if _, ok := f.leases[name]; ok {
		return map[string]string{"name": name}, nil
	}
	if _, ok := f.errs[name]; ok {
		return map[string]string{"name": name}, nil
	}
	return nil, ErrUnknownRelease
}

func (f *fakeResolver) Releases() []string {
	var names []string
	for n := range f.leases {
		names = append(names, n)
	}
	return names
}

func (f *fakeResolver) Ready() bool { return f.ready }

func newMultiFixture(t *testing.T) (*Multi, *fakeResolver, *fakeLease) {
	t.Helper()
	_, _, syn := cachedTestSetup(t)
	lease := &fakeLease{Querier: syn}
	res := &fakeResolver{
		leases: map[string]*fakeLease{"adult-eps1": lease},
		errs:   map[string]error{},
		ready:  true,
	}
	m := NewMulti(res, "adult-eps1", Options{MaxK: 6, Logger: log.New(io.Discard, "", 0)})
	return m, res, lease
}

func multiGet(t *testing.T, m *Multi, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestMultiRoutesNamedAndLegacy(t *testing.T) {
	m, _, lease := newMultiFixture(t)
	for _, path := range []string{
		"/v1/adult-eps1/marginal?attrs=0,1",
		"/v1/marginal?attrs=0,1", // legacy alias → default release
		"/v1/adult-eps1/info",
		"/v1/info",
		"/v1/adult-eps1/stats",
		"/v1/stats",
	} {
		if rec := multiGet(t, m, path); rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200: %s", path, rec.Code, rec.Body)
		}
	}
	// Every marginal/info acquire must have been paired with a Close.
	if got := lease.closed.Load(); got != 4 {
		t.Errorf("lease closed %d times, want 4 (stats never acquires)", got)
	}
}

func TestMultiUnknownRelease(t *testing.T) {
	m, _, _ := newMultiFixture(t)
	for _, path := range []string{
		"/v1/nonesuch/marginal?attrs=0,1",
		"/v1/nonesuch/info",
		"/v1/nonesuch/stats",
	} {
		if rec := multiGet(t, m, path); rec.Code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, rec.Code)
		}
	}
}

func TestMultiNoDefaultRelease(t *testing.T) {
	_, _, syn := cachedTestSetup(t)
	res := &fakeResolver{
		leases: map[string]*fakeLease{"a": {Querier: syn}},
		ready:  true,
	}
	m := NewMulti(res, "", Options{MaxK: 6, Logger: log.New(io.Discard, "", 0)})
	if rec := multiGet(t, m, "/v1/marginal?attrs=0,1"); rec.Code != http.StatusNotFound {
		t.Errorf("legacy route without default = %d, want 404", rec.Code)
	}
	if rec := multiGet(t, m, "/v1/a/marginal?attrs=0,1"); rec.Code != http.StatusOK {
		t.Errorf("named route = %d, want 200", rec.Code)
	}
}

func TestMultiResolutionErrorMapping(t *testing.T) {
	m, res, _ := newMultiFixture(t)
	res.errs["tripped"] = &UnavailableError{Reason: "circuit breaker open", RetryAfter: 7 * time.Second}
	res.errs["hot"] = &SaturatedError{RetryAfter: 2 * time.Second}

	rec := multiGet(t, m, "/v1/tripped/marginal?attrs=0,1")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("breaker-open release = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("breaker-open Retry-After = %q, want \"7\"", got)
	}
	if !strings.Contains(rec.Body.String(), "circuit breaker open") {
		t.Errorf("503 body %q does not carry the reason", rec.Body.String())
	}

	rec = multiGet(t, m, "/v1/hot/marginal?attrs=0,1")
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("saturated release = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("saturated Retry-After = %q, want \"2\"", got)
	}
}

func TestMultiReadyz(t *testing.T) {
	m, res, _ := newMultiFixture(t)
	if rec := multiGet(t, m, "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("readyz with scanned registry = %d, want 200", rec.Code)
	}
	res.ready = false
	rec := multiGet(t, m, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz before initial scan = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("readyz 503 carries no Retry-After")
	}
	res.ready = true
	m.SetDraining(true)
	rec = multiGet(t, m, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", rec.Code)
	}
	// Liveness stays distinct: healthz also refuses while draining, with
	// the same backoff hint.
	rec = multiGet(t, m, "/healthz")
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Errorf("healthz while draining = %d (Retry-After %q), want 503 with hint",
			rec.Code, rec.Header().Get("Retry-After"))
	}
}

func TestMultiReleasesEndpoint(t *testing.T) {
	m, _, _ := newMultiFixture(t)
	rec := multiGet(t, m, "/v1/releases")
	if rec.Code != http.StatusOK {
		t.Fatalf("releases = %d, want 200", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "adult-eps1") || !strings.Contains(body, `"default"`) {
		t.Errorf("releases body %q missing release list or default", body)
	}
}

// TestMultiGlobalShedding proves the router-level inflight cap is the
// backstop above per-release bulkheads: the second concurrent request
// sheds with 429 + Retry-After.
func TestMultiGlobalShedding(t *testing.T) {
	_, _, syn := cachedTestSetup(t)
	gate := make(chan struct{})
	blocking := &fakeLease{Querier: &gatedQuerier{Querier: syn, gate: gate}}
	res := &fakeResolver{leases: map[string]*fakeLease{"a": blocking}, ready: true}
	m := NewMulti(res, "", Options{MaxK: 6, MaxInflight: 1, Logger: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(m)
	defer ts.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/a/marginal?attrs=0,1")
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Wait until the first request is parked inside the querier, holding
	// the only inflight slot.
	gate <- struct{}{}
	resp, err := http.Get(ts.URL + "/v1/a/marginal?attrs=2,3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("second concurrent request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response carries no Retry-After")
	}
	gate <- struct{}{} // release the parked request
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// gatedQuerier parks each query between two receives from gate: the
// first send proves the request is inside (holding its inflight slot),
// the second releases it.
type gatedQuerier struct {
	Querier
	gate chan struct{}
}

func (g *gatedQuerier) QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error) {
	<-g.gate
	<-g.gate
	return g.Querier.QueryMethodContext(ctx, attrs, method)
}
