// Resilience tests: the failure model of the serving path, driven by
// the fault-injection harness in internal/chaos. External test package
// so it can import chaos (which itself imports server for the Querier
// interface).
package server_test

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"priview/internal/chaos"
	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/server"
)

func buildSynopsis(t *testing.T) *core.Synopsis {
	t.Helper()
	data := synth.MSNBC(2000, 5)
	dg := covering.Groups(9, 6)
	return core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg}, noise.NewStream(17))
}

// quietLogger keeps expected panic stacks and query failures out of the
// test output.
func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// TestQueryTimeoutReturns504: a synopsis slower than the per-request
// deadline must surface as 504, within the deadline's order of
// magnitude — not after the solver's full iteration budget.
func TestQueryTimeoutReturns504(t *testing.T) {
	slow := &chaos.SlowSynopsis{Querier: buildSynopsis(t), Delay: 10 * time.Second}
	s := server.NewWithOptions(slow, server.Options{
		QueryTimeout: 30 * time.Millisecond,
		Logger:       quietLogger(),
	})
	start := time.Now()
	req := httptest.NewRequest(http.MethodGet, "/v1/marginal?attrs=0,4,8", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %q", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout fired after %v; deadline not enforced", elapsed)
	}
}

// parkedQuerier closes arrived when the first query reaches it, then
// parks every query until release is closed — a deterministic way to
// hold server capacity occupied.
type parkedQuerier struct {
	server.Querier
	arrived chan struct{}
	release chan struct{}
	once    sync.Once
}

func (p *parkedQuerier) QueryMethodContext(ctx context.Context, attrs []int, m core.ReconstructMethod) (*marginal.Table, error) {
	p.once.Do(func() { close(p.arrived) })
	select {
	case <-p.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return p.Querier.QueryMethodContext(ctx, attrs, m)
}

// TestLoadSheddingReturns429: with MaxInflight=1 and a request parked
// inside the handler, the next request is shed immediately with 429 and
// a Retry-After hint; once the first completes, capacity frees up.
func TestLoadSheddingReturns429(t *testing.T) {
	parked := &parkedQuerier{
		Querier: buildSynopsis(t),
		arrived: make(chan struct{}),
		release: make(chan struct{}),
	}
	s := server.NewWithOptions(parked, server.Options{
		MaxInflight: 1,
		RetryAfter:  2 * time.Second,
		Logger:      quietLogger(),
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/marginal?attrs=0,1")
		if err != nil {
			first <- -1
			return
		}
		//lint:ignore errdiscard test teardown of a drained body
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	select {
	case <-parked.arrived:
		// Capacity 1 is now provably consumed.
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the synopsis")
	}

	resp, err := http.Get(ts.URL + "/v1/marginal?attrs=2,3")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429; body %q", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if !strings.Contains(string(body), "capacity") {
		t.Errorf("shed body = %q", body)
	}

	close(parked.release)
	if code := <-first; code != http.StatusOK {
		t.Errorf("first (admitted) request: status %d", code)
	}
	// Capacity released: a fresh request is admitted again.
	resp2, err := http.Get(ts.URL + "/v1/marginal?attrs=4,5")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp2.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-shed request: status %d", resp2.StatusCode)
	}
}

// panicQuerier simulates an internal failure inside reconstruction.
type panicQuerier struct{ server.Querier }

func (panicQuerier) QueryMethodContext(context.Context, []int, core.ReconstructMethod) (*marginal.Table, error) {
	panic("core: synthetic reconstruction failure")
}

// TestPanicReturns500: internal panics are server bugs and must report
// as 500, never as the 400 "query failed" the old handler produced.
func TestPanicReturns500(t *testing.T) {
	s := server.NewWithOptions(panicQuerier{buildSynopsis(t)}, server.Options{Logger: quietLogger()})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/marginal?attrs=0,1", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic surfaced as %d, want 500; body %q", rec.Code, rec.Body.String())
	}
	if strings.Contains(rec.Body.String(), "query failed") {
		t.Error("panic mislabeled with the old 400-path message")
	}
}

// TestValidationStays400: the 400 path is reserved for input errors and
// must be unaffected by the failure-model middleware.
func TestValidationStays400(t *testing.T) {
	s := server.NewWithOptions(buildSynopsis(t), server.Options{
		QueryTimeout: time.Second,
		MaxInflight:  4,
		Logger:       quietLogger(),
	})
	for _, path := range []string{
		"/v1/marginal",
		"/v1/marginal?attrs=0,x",
		"/v1/marginal?attrs=0,99",
		"/v1/marginal?attrs=0&method=nope",
	} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

// TestHealthzDraining: the liveness probe flips to 503 while draining
// and back once draining is cleared.
func TestHealthzDraining(t *testing.T) {
	s := server.New(buildSynopsis(t), 0)
	probe := func() int {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		return rec.Code
	}
	if code := probe(); code != http.StatusOK {
		t.Fatalf("healthy probe = %d", code)
	}
	s.SetDraining(true)
	if code := probe(); code != http.StatusServiceUnavailable {
		t.Fatalf("draining probe = %d, want 503", code)
	}
	if !s.Draining() {
		t.Error("Draining() = false while draining")
	}
	s.SetDraining(false)
	if code := probe(); code != http.StatusOK {
		t.Fatalf("recovered probe = %d", code)
	}
}

// TestClientRecoversFromInjectedFaults is the retry acceptance test:
// with the chaos transport failing roughly a third of requests at the
// connection level, the retrying client still completes every query,
// and the transport's counters prove faults were actually injected.
func TestClientRecoversFromInjectedFaults(t *testing.T) {
	s := server.New(buildSynopsis(t), 0)
	ts := httptest.NewServer(s)
	defer ts.Close()

	tr := chaos.NewTransport(99)
	tr.Base = ts.Client().Transport
	tr.ErrProb = 0.35
	c := server.NewClientWithPolicy(ts.URL, &http.Client{Transport: tr}, server.RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		Seed:        7,
	})
	for i := 0; i < 20; i++ {
		if _, err := c.Marginal([]int{0, 4, 8}, ""); err != nil {
			t.Fatalf("query %d not recovered: %v", i, err)
		}
	}
	counts := tr.Counts()
	if counts.Errors == 0 {
		t.Error("chaos transport injected nothing; test proves nothing")
	}
	if counts.Forwards < 20 {
		t.Errorf("only %d requests reached the server for 20 queries", counts.Forwards)
	}
}

// TestClientRecoversFromInjectedStatuses: transient 503s with a
// Retry-After hint are retried and eventually succeed.
func TestClientRecoversFromInjectedStatuses(t *testing.T) {
	var mu sync.Mutex
	failures := 2
	s := server.New(buildSynopsis(t), 0)
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		shouldFail := failures > 0
		if shouldFail {
			failures--
		}
		mu.Unlock()
		if shouldFail {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		s.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := server.NewClientWithPolicy(ts.URL, nil, server.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
	})
	if _, err := c.Info(); err != nil {
		t.Fatalf("client did not recover from 2 transient 503s: %v", err)
	}
}

// TestClientDoesNotRetryPermanentErrors: a 400 reflects the request
// itself; retrying would waste capacity and hide the bug.
func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	var mu sync.Mutex
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		http.Error(w, "bad attrs", http.StatusBadRequest)
	}))
	defer ts.Close()
	c := server.NewClientWithPolicy(ts.URL, nil, server.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
	})
	if _, err := c.Marginal([]int{0}, ""); err == nil {
		t.Fatal("400 did not surface as an error")
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 1 {
		t.Errorf("client retried a permanent 400: %d attempts", hits)
	}
}

// TestClientContextBoundsRetries: the caller's deadline caps the whole
// retry loop, backoff sleeps included.
func TestClientContextBoundsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "always down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := server.NewClientWithPolicy(ts.URL, nil, server.RetryPolicy{
		MaxAttempts: 1000,
		BaseDelay:   50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.InfoContext(ctx)
	if err == nil {
		t.Fatal("expected failure against an always-down server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("retry loop ignored ctx: ran %v", elapsed)
	}
}

// TestEndToEndResilience is the acceptance scenario in one piece: a
// slow synopsis behind a deadline-armed server surfaces 504 to a
// chaos-afflicted retrying client — which classifies it as retryable,
// keeps trying, and succeeds as soon as the synopsis speeds up.
func TestEndToEndResilience(t *testing.T) {
	syn := buildSynopsis(t)
	var mu sync.Mutex
	slowRequests := 2
	var gate http.Handler = server.NewWithOptions(
		&flipQuerier{fast: syn, slow: &chaos.SlowSynopsis{Querier: syn, Delay: 10 * time.Second}, slowLeft: &slowRequests, mu: &mu},
		server.Options{QueryTimeout: 25 * time.Millisecond, Logger: quietLogger()},
	)
	ts := httptest.NewServer(gate)
	defer ts.Close()

	c := server.NewClientWithPolicy(ts.URL, nil, server.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
	})
	got, err := c.Marginal([]int{0, 4, 8}, "")
	if err != nil {
		t.Fatalf("client did not ride out 2 deadline-exceeded queries: %v", err)
	}
	want := syn.Query([]int{0, 4, 8})
	if !marginal.Equal(got, want, 1e-9) {
		t.Error("recovered answer differs from direct query")
	}
}

// flipQuerier serves the first N queries from the slow synopsis, the
// rest from the fast one.
type flipQuerier struct {
	fast, slow server.Querier
	slowLeft   *int
	mu         *sync.Mutex
}

func (f *flipQuerier) QueryMethodContext(ctx context.Context, attrs []int, m core.ReconstructMethod) (*marginal.Table, error) {
	f.mu.Lock()
	useSlow := *f.slowLeft > 0
	if useSlow {
		*f.slowLeft--
	}
	f.mu.Unlock()
	if useSlow {
		return f.slow.QueryMethodContext(ctx, attrs, m)
	}
	return f.fast.QueryMethodContext(ctx, attrs, m)
}
func (f *flipQuerier) Epsilon() float64         { return f.fast.Epsilon() }
func (f *flipQuerier) Total() float64           { return f.fast.Total() }
func (f *flipQuerier) Views() []*marginal.Table { return f.fast.Views() }
func (f *flipQuerier) Design() *covering.Design { return f.fast.Design() }
