package server

import (
	"context"
	"errors"

	"priview/internal/core"
	"priview/internal/marginal"
	"priview/internal/qcache"
	"priview/internal/reconstruct"
)

// CacheStatser is implemented by Queriers that maintain a query cache;
// the /v1/stats endpoint reads it. enabled is false when the underlying
// querier keeps no cache (e.g. a Swappable currently holding a bare
// synopsis).
type CacheStatser interface {
	CacheStats() (stats qcache.Stats, enabled bool)
}

// CacheOnlyQuerier is implemented by Queriers that can answer a query
// from already-memoized state without running a solve. The brownout
// serving mode depends on it: under sustained overload the server
// answers non-priority traffic from cache hits alone, and a querier
// that cannot do that simply has nothing to serve in that mode.
type CacheOnlyQuerier interface {
	// QueryCached returns the memoized marginal for (attrs, method), or
	// ok=false when it is not cached. It must never trigger a solve.
	QueryCached(attrs []int, method core.ReconstructMethod) (*marginal.Table, bool)
}

// CachedQuerier wraps any Querier with a memoizing qcache layer: a
// repeated (attrs, method) query is answered from the cache instead of
// re-running the reconstruction solve, which is sound because a
// published synopsis is immutable (the paper's post-processing
// property). Concurrent identical queries are coalesced into one solve.
//
// Degraded answers (reconstruct.ErrNumerical) are served but never
// cached, and queries that cannot be keyed (an attribute ≥ 64 or a
// duplicate) bypass the cache entirely and hit the inner Querier with
// their original semantics.
type CachedQuerier struct {
	Querier
	cache *qcache.Cache
}

// NewCachedQuerier wraps q with the given cache. The cache must not be
// shared across different synopses: keys carry no synopsis identity, so
// reusing a cache after the underlying data changes serves stale
// answers. Hot-reload paths should build a fresh CachedQuerier per
// loaded synopsis.
func NewCachedQuerier(q Querier, cache *qcache.Cache) *CachedQuerier {
	return &CachedQuerier{Querier: q, cache: cache}
}

// QueryMethodContext implements Querier, serving repeated queries from
// the cache.
func (c *CachedQuerier) QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error) {
	key, ok := qcache.KeyFor(attrs, int(method))
	if !ok {
		return c.Querier.QueryMethodContext(ctx, attrs, method)
	}
	return c.cache.Do(ctx, key, func(ctx context.Context) (*marginal.Table, error) {
		return c.Querier.QueryMethodContext(ctx, attrs, method)
	})
}

// QueryBatch implements BatchQuerier over the cache: each member
// resolves from the store, by joining an in-flight solve (batch or
// single — the singleflight protocol is shared), or as part of one
// batched solve of this call's misses against the inner Querier.
// Degraded members are served but never cached, clean members cache
// normally. A member that cannot be keyed (an attribute ≥ 64 or a
// duplicate) makes the whole batch bypass the cache, preserving the
// inner QueryBatch's index-accurate validation errors.
func (c *CachedQuerier) QueryBatch(ctx context.Context, reqs []core.BatchRequest, opt core.BatchOptions) ([]core.BatchResult, error) {
	keys := make([]qcache.Key, len(reqs))
	byKey := make(map[qcache.Key]core.BatchRequest, len(reqs))
	for i, r := range reqs {
		k, ok := qcache.KeyFor(r.Attrs, int(r.Method))
		if !ok {
			return queryBatch(ctx, c.Querier, reqs, opt)
		}
		keys[i] = k
		byKey[k] = r
	}
	rs, err := c.cache.DoBatch(ctx, keys, func(ctx context.Context, miss []qcache.Key) ([]qcache.Result, error) {
		sub := make([]core.BatchRequest, len(miss))
		for i, k := range miss {
			sub[i] = byKey[k]
		}
		res, err := queryBatch(ctx, c.Querier, sub, opt)
		if err != nil {
			return nil, err
		}
		out := make([]qcache.Result, len(res))
		for i, r := range res {
			out[i] = qcache.Result{Table: r.Table, Err: r.Err}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]core.BatchResult, len(rs))
	for i, r := range rs {
		if r.Table == nil {
			// A joined flight whose leader failed outright; honor the
			// no-partial-results contract and fail the batch with it.
			return nil, r.Err
		}
		out[i] = core.BatchResult{Table: r.Table, Err: r.Err}
	}
	return out, nil
}

// QueryCached implements CacheOnlyQuerier: a pure cache peek that never
// solves and never joins an in-flight solve.
func (c *CachedQuerier) QueryCached(attrs []int, method core.ReconstructMethod) (*marginal.Table, bool) {
	key, ok := qcache.KeyFor(attrs, int(method))
	if !ok {
		return nil, false
	}
	return c.cache.Peek(key)
}

// CacheStats implements CacheStatser.
func (c *CachedQuerier) CacheStats() (qcache.Stats, bool) {
	return c.cache.Stats(), true
}

// DefaultMethod implements DefaultMethoder by delegating to the inner
// Querier; CME when it exposes no default. The embedded interface would
// hide the inner implementation from type assertions on the wrapper, so
// the forward is explicit.
func (c *CachedQuerier) DefaultMethod() core.ReconstructMethod {
	return defaultMethod(c.Querier)
}

// warmChunk bounds how many marginals one Warm batch carries, so a
// canceled pass reports the progress of completed chunks instead of
// zero.
const warmChunk = 256

// WarmProgressFunc receives the running warm totals after every
// completed chunk. (*WarmProgress).Update satisfies it directly.
type WarmProgressFunc func(warmed, skipped int)

// Warm precomputes every marginal of 1..k attributes with the
// synopsis's configured default estimator (the method the unadorned
// query path uses — warming CME keys for a CLN-default release would
// fill the cache with entries no default query ever hits), filling the
// cache so the first real queries hit. workers ≤ 0 selects GOMAXPROCS.
// It returns how many marginals were cached cleanly and how many were
// skipped: a degraded key (reconstruct.ErrNumerical — one poisoned
// view) is computed, counted in skipped, and the pass keeps going, so a
// single bad view cannot leave the rest of the cache cold. Only the
// context ending stops the pass early (the context error is returned
// alongside the partial counts). A querier without a design has no
// known dimension and warms nothing.
//
// The pass runs as QueryBatch chunks: each chunk dedupes against the
// cache and concurrent traffic via the shared singleflight, and the
// solves inside a chunk share constraint precompute and the worker
// pool.
func (c *CachedQuerier) Warm(ctx context.Context, k, workers int) (warmed, skipped int, err error) {
	return c.WarmWithProgress(ctx, k, workers, nil)
}

// WarmWithProgress is Warm reporting its running totals through fn
// after every completed chunk, so a long pass is observable while it
// runs (the warm-progress gauges hang off this). fn may be nil.
func (c *CachedQuerier) WarmWithProgress(ctx context.Context, k, workers int, fn WarmProgressFunc) (warmed, skipped int, err error) {
	dg := c.Design()
	if dg == nil || k <= 0 {
		return 0, 0, nil
	}
	d := dg.D
	if k > d {
		k = d
	}
	reqs := core.AllKWay(d, k, defaultMethod(c.Querier))
	for lo := 0; lo < len(reqs); lo += warmChunk {
		hi := lo + warmChunk
		if hi > len(reqs) {
			hi = len(reqs)
		}
		res, berr := c.QueryBatch(ctx, reqs[lo:hi], core.BatchOptions{Workers: workers})
		if berr != nil {
			if errors.Is(berr, reconstruct.ErrCanceled) || errors.Is(berr, reconstruct.ErrDeadline) ||
				errors.Is(berr, context.Canceled) || errors.Is(berr, context.DeadlineExceeded) {
				// The pass is being stopped; report the progress so far.
				return warmed, skipped, reconstruct.ContextErr(ctx)
			}
			// An unanswerable chunk: count it skipped and keep warming
			// the rest.
			skipped += hi - lo
		} else {
			for _, r := range res {
				if r.Err == nil {
					warmed++
				} else {
					skipped++
				}
			}
		}
		if fn != nil {
			fn(warmed, skipped)
		}
	}
	return warmed, skipped, reconstruct.ContextErr(ctx)
}
