package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"priview/internal/core"
	"priview/internal/marginal"
	"priview/internal/qcache"
	"priview/internal/reconstruct"
)

// CacheStatser is implemented by Queriers that maintain a query cache;
// the /v1/stats endpoint reads it. enabled is false when the underlying
// querier keeps no cache (e.g. a Swappable currently holding a bare
// synopsis).
type CacheStatser interface {
	CacheStats() (stats qcache.Stats, enabled bool)
}

// CacheOnlyQuerier is implemented by Queriers that can answer a query
// from already-memoized state without running a solve. The brownout
// serving mode depends on it: under sustained overload the server
// answers non-priority traffic from cache hits alone, and a querier
// that cannot do that simply has nothing to serve in that mode.
type CacheOnlyQuerier interface {
	// QueryCached returns the memoized marginal for (attrs, method), or
	// ok=false when it is not cached. It must never trigger a solve.
	QueryCached(attrs []int, method core.ReconstructMethod) (*marginal.Table, bool)
}

// CachedQuerier wraps any Querier with a memoizing qcache layer: a
// repeated (attrs, method) query is answered from the cache instead of
// re-running the reconstruction solve, which is sound because a
// published synopsis is immutable (the paper's post-processing
// property). Concurrent identical queries are coalesced into one solve.
//
// Degraded answers (reconstruct.ErrNumerical) are served but never
// cached, and queries that cannot be keyed (an attribute ≥ 64 or a
// duplicate) bypass the cache entirely and hit the inner Querier with
// their original semantics.
type CachedQuerier struct {
	Querier
	cache *qcache.Cache
}

// NewCachedQuerier wraps q with the given cache. The cache must not be
// shared across different synopses: keys carry no synopsis identity, so
// reusing a cache after the underlying data changes serves stale
// answers. Hot-reload paths should build a fresh CachedQuerier per
// loaded synopsis.
func NewCachedQuerier(q Querier, cache *qcache.Cache) *CachedQuerier {
	return &CachedQuerier{Querier: q, cache: cache}
}

// QueryMethodContext implements Querier, serving repeated queries from
// the cache.
func (c *CachedQuerier) QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error) {
	key, ok := qcache.KeyFor(attrs, int(method))
	if !ok {
		return c.Querier.QueryMethodContext(ctx, attrs, method)
	}
	return c.cache.Do(ctx, key, func(ctx context.Context) (*marginal.Table, error) {
		return c.Querier.QueryMethodContext(ctx, attrs, method)
	})
}

// QueryCached implements CacheOnlyQuerier: a pure cache peek that never
// solves and never joins an in-flight solve.
func (c *CachedQuerier) QueryCached(attrs []int, method core.ReconstructMethod) (*marginal.Table, bool) {
	key, ok := qcache.KeyFor(attrs, int(method))
	if !ok {
		return nil, false
	}
	return c.cache.Peek(key)
}

// CacheStats implements CacheStatser.
func (c *CachedQuerier) CacheStats() (qcache.Stats, bool) {
	return c.cache.Stats(), true
}

// Warm precomputes every marginal of 1..k attributes with the default
// estimator (CME), filling the cache so the first real queries hit.
// workers ≤ 0 selects GOMAXPROCS. It returns how many marginals were
// cached cleanly and how many were skipped: a degraded key
// (reconstruct.ErrNumerical — one poisoned view) is computed, counted
// in skipped, and the pass keeps going, so a single bad view cannot
// leave the rest of the cache cold. Only the context ending stops the
// pass early (the context error is returned alongside the partial
// counts). A querier without a design has no known dimension and warms
// nothing.
func (c *CachedQuerier) Warm(ctx context.Context, k, workers int) (warmed, skipped int, err error) {
	dg := c.Design()
	if dg == nil || k <= 0 {
		return 0, 0, nil
	}
	d := dg.D
	if k > d {
		k = d
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	work := make(chan []int)
	var nWarmed, nSkipped atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attrs := range work {
				switch _, err := c.QueryMethodContext(ctx, attrs, core.CME); {
				case err == nil:
					nWarmed.Add(1)
				case errors.Is(err, reconstruct.ErrCanceled) || errors.Is(err, reconstruct.ErrDeadline) ||
					errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					// The pass is being stopped; the enumerator notices
					// ctx too and closes the channel.
				default:
					// Degraded (ErrNumerical) or otherwise unanswerable
					// key: skip it and keep warming the rest.
					nSkipped.Add(1)
				}
			}
		}()
	}
	// Enumerate subsets of {0..d-1} with 1..k members in lexicographic
	// order; the channel paces enumeration to the workers.
	var cur []int
	var gen func(start int) bool
	gen = func(start int) bool {
		if len(cur) > 0 {
			attrs := append([]int(nil), cur...)
			select {
			case work <- attrs:
			case <-ctx.Done():
				return false
			}
		}
		if len(cur) == k {
			return true
		}
		for a := start; a < d; a++ {
			cur = append(cur, a)
			ok := gen(a + 1)
			cur = cur[:len(cur)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	gen(0)
	close(work)
	wg.Wait()
	return int(nWarmed.Load()), int(nSkipped.Load()), reconstruct.ContextErr(ctx)
}
