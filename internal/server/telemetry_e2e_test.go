package server

import (
	"bytes"
	"context"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"priview/internal/admission"
	"priview/internal/telemetry"
)

// The JSON stats surfaces predate the telemetry layer and are scraped
// by deployed tooling; these goldens pin their exact bytes so the
// refactor onto telemetry counters stays invisible there. The zero
// state is pinned (counter values vary with traffic, field order and
// presence must not).
const (
	// Legacy configuration (semaphore, no adaptive admission): the
	// admission block is omitted entirely, not emitted as null/zero.
	bareStatsGolden = "{\"cache\":false,\"hits\":0,\"misses\":0,\"evictions\":0,\"coalesced\":0,\"entries\":0,\"bytes\":0}\n"
	// Cache + adaptive admission: every field, in declaration order.
	cachedStatsGolden = "{\"cache\":true,\"hits\":0,\"misses\":0,\"evictions\":0,\"coalesced\":0,\"entries\":0,\"bytes\":0," +
		"\"admission\":{\"limit\":16,\"inflight\":0,\"queue_depth\":0,\"admitted\":0,\"queued\":0,\"shed\":0," +
		"\"codel_dropped\":0,\"deadline_rejected\":0,\"brownout_served\":0,\"brownout_rejected\":0," +
		"\"brownout_active\":false,\"short_latency_ms\":0,\"long_latency_ms\":0}}\n"
)

func TestStatsJSONGolden(t *testing.T) {
	s, _ := testServer(t)
	if got := get(t, s, "/v1/stats").Body.String(); got != bareStatsGolden {
		t.Errorf("legacy /v1/stats changed:\n got  %q\n want %q", got, bareStatsGolden)
	}

	cq, _, _ := cachedTestSetup(t)
	cs := NewWithOptions(NewSwappable(cq), Options{Admission: &admission.Config{}})
	if got := get(t, cs, "/v1/stats").Body.String(); got != cachedStatsGolden {
		t.Errorf("cached /v1/stats changed:\n got  %q\n want %q", got, cachedStatsGolden)
	}
}

// scrape GETs h's /metrics and round-trips the body through the strict
// parser, so every use also re-checks the exposition invariants.
func scrape(t *testing.T, h http.Handler) map[string]*telemetry.ParsedFamily {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", rec.Code, rec.Body.String())
	}
	fams, err := telemetry.ParseText(rec.Body)
	if err != nil {
		t.Fatalf("ParseText(/metrics): %v", err)
	}
	return fams
}

// sampleValue fails the test unless family/sample/labels exists,
// returning its value.
func sampleValue(t *testing.T, fams map[string]*telemetry.ParsedFamily, family, sample string, labels map[string]string) float64 {
	t.Helper()
	f := fams[family]
	if f == nil {
		t.Fatalf("family %s missing from /metrics", family)
	}
	s := f.Sample(sample, labels)
	if s == nil {
		t.Fatalf("sample %s%v missing from family %s", sample, labels, family)
	}
	return s.Value
}

// TestMetricsEndpoint drives real traffic through the full middleware
// stack and asserts every subsystem's series lands on one scrape
// surface: per-route HTTP accounting, cache counters and gauges,
// admission counters and gauges, solve and stage histograms, and the
// slow-query path.
func TestMetricsEndpoint(t *testing.T) {
	cq, _, _ := cachedTestSetup(t)
	var logBuf bytes.Buffer
	s := NewWithOptions(cq, Options{
		Admission: &admission.Config{},
		SlowQuery: time.Nanosecond, // everything is slow: exercises the counter + log line
		Logger:    log.New(&logBuf, "", 0),
	})

	for i := 0; i < 2; i++ { // one miss, one hit
		if rec := get(t, s, "/v1/marginal?attrs=0,4,8"); rec.Code != http.StatusOK {
			t.Fatalf("marginal status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	if rec := get(t, s, "/v1/stats"); rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}

	fams := scrape(t, s)
	checks := []struct {
		family, sample string
		labels         map[string]string
		min            float64
	}{
		{"priview_http_requests_total", "priview_http_requests_total", map[string]string{"route": "/v1/marginal", "status": "2xx"}, 2},
		{"priview_http_requests_total", "priview_http_requests_total", map[string]string{"route": "/v1/stats", "status": "2xx"}, 1},
		{"priview_http_request_seconds", "priview_http_request_seconds_count", map[string]string{"route": "/v1/marginal", "status": "2xx"}, 2},
		{"priview_qcache_hits_total", "priview_qcache_hits_total", map[string]string{"release": "default"}, 1},
		{"priview_qcache_misses_total", "priview_qcache_misses_total", map[string]string{"release": "default"}, 1},
		{"priview_qcache_entries", "priview_qcache_entries", map[string]string{"release": "default"}, 1},
		{"priview_solve_seconds", "priview_solve_seconds_count", map[string]string{"method": "CME"}, 1},
		{"priview_stage_seconds", "priview_stage_seconds_count", map[string]string{"stage": "reconstruct.cme"}, 1},
		{"priview_stage_seconds", "priview_stage_seconds_count", map[string]string{"stage": "cache.hit"}, 1},
		{"priview_admission_admitted_total", "priview_admission_admitted_total", nil, 2},
		{"priview_admission_limit", "priview_admission_limit", nil, 1},
		{"priview_slow_queries_total", "priview_slow_queries_total", nil, 2},
	}
	for _, c := range checks {
		if v := sampleValue(t, fams, c.family, c.sample, c.labels); v < c.min {
			t.Errorf("%s%v = %v, want ≥ %v", c.sample, c.labels, v, c.min)
		}
	}
	if !strings.Contains(logBuf.String(), "slow-query route=/v1/marginal") {
		t.Errorf("slow-query log line missing; log = %q", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "stages=[") {
		t.Errorf("slow-query line has no stage breakdown; log = %q", logBuf.String())
	}
}

// TestMetricsSharedRegistry pins the idempotence NewMetrics documents:
// two hubs over one registry resolve to the same underlying series, so
// priview-serve can hand the registry layer a hub without
// double-registering the families the router already owns.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	m1, m2 := NewMetrics(reg), NewMetrics(reg)
	m1.slowQueries.Inc()
	m2.slowQueries.Inc()
	fams := scrape(t, reg.Handler())
	if v := sampleValue(t, fams, "priview_slow_queries_total", "priview_slow_queries_total", nil); v != 2 {
		t.Errorf("shared counter = %v, want 2 (registration not idempotent)", v)
	}
}

// TestWarmProgressGauges runs a real warm pass through the progress
// hooks and checks the gauges land where the pass's own return values
// say they should, with the in-progress flag cleared.
func TestWarmProgressGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	cq, _, _ := cachedTestSetup(t)

	wp := m.WarmProgress("default")
	wp.Begin()
	if v := sampleValue(t, scrape(t, reg.Handler()), "priview_cache_warm_in_progress", "priview_cache_warm_in_progress", map[string]string{"release": "default"}); v != 1 {
		t.Errorf("in_progress mid-pass = %v, want 1", v)
	}
	warmed, skipped, err := cq.WarmWithProgress(context.Background(), 2, 2, wp.Update)
	if err != nil {
		t.Fatal(err)
	}
	wp.End(warmed, skipped)

	fams := scrape(t, reg.Handler())
	if v := sampleValue(t, fams, "priview_cache_warm_warmed", "priview_cache_warm_warmed", map[string]string{"release": "default"}); v != float64(warmed) {
		t.Errorf("warm_warmed = %v, want %d", v, warmed)
	}
	if v := sampleValue(t, fams, "priview_cache_warm_skipped", "priview_cache_warm_skipped", map[string]string{"release": "default"}); v != float64(skipped) {
		t.Errorf("warm_skipped = %v, want %d", v, skipped)
	}
	if v := sampleValue(t, fams, "priview_cache_warm_in_progress", "priview_cache_warm_in_progress", map[string]string{"release": "default"}); v != 0 {
		t.Errorf("in_progress after End = %v, want 0", v)
	}
	if warmed == 0 {
		t.Error("warm pass cached nothing; gauge assertions are vacuous")
	}
}

// TestMultiMetricsEndpoint confirms the multi-tenant router mounts the
// same scrape surface (the resolver is nil-traffic here; route-level
// families must still expose and parse).
func TestMultiMetricsEndpoint(t *testing.T) {
	m := NewMulti(&fakeResolver{ready: true}, "", Options{})
	fams := scrape(t, m)
	for _, fam := range []string{
		"priview_http_requests_total",
		"priview_qcache_hits_total",
		"priview_solve_seconds",
		"priview_admission_admitted_total",
	} {
		if fams[fam] == nil {
			t.Errorf("family %s missing from multi-tenant /metrics", fam)
		}
	}
}
