package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/qcache"
	"priview/internal/reconstruct"
)

// countingQuerier wraps a Querier counting how many queries reach it.
type countingQuerier struct {
	Querier
	calls atomic.Int64
}

func (c *countingQuerier) QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error) {
	c.calls.Add(1)
	return c.Querier.QueryMethodContext(ctx, attrs, method)
}

func cachedTestSetup(t *testing.T) (*CachedQuerier, *countingQuerier, *core.Synopsis) {
	t.Helper()
	data := synth.MSNBC(3000, 5)
	dg := covering.Groups(9, 6)
	syn := core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg}, noise.NewStream(6))
	counting := &countingQuerier{Querier: syn}
	return NewCachedQuerier(counting, qcache.New(1024, 16<<20)), counting, syn
}

func TestCachedQuerierMemoizes(t *testing.T) {
	cq, counting, syn := cachedTestSetup(t)
	ctx := context.Background()
	attrs := []int{0, 4, 8}
	first, err := cq.QueryMethodContext(ctx, attrs, core.CME)
	if err != nil {
		t.Fatal(err)
	}
	first.Cells[0] = math.NaN() // caller mutation must not poison the cache
	second, err := cq.QueryMethodContext(ctx, attrs, core.CME)
	if err != nil {
		t.Fatal(err)
	}
	want := syn.Query(attrs)
	if !marginal.Equal(second, want, 1e-12) {
		t.Errorf("cached answer diverges from direct query")
	}
	if n := counting.calls.Load(); n != 1 {
		t.Errorf("%d inner queries, want 1 (memoized)", n)
	}
	// A different estimator is a different key: the solve runs again.
	if _, err := cq.QueryMethodContext(ctx, attrs, core.CLN); err != nil {
		t.Fatal(err)
	}
	if n := counting.calls.Load(); n != 2 {
		t.Errorf("%d inner queries after CLN, want 2", n)
	}
	st, enabled := cq.CacheStats()
	if !enabled {
		t.Fatal("CacheStats reports disabled")
	}
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit, 2 misses", st)
	}
}

func TestCachedQuerierAgreesWithDirectForAllMethods(t *testing.T) {
	cq, _, syn := cachedTestSetup(t)
	ctx := context.Background()
	attrs := []int{0, 3, 7}
	for _, m := range []core.ReconstructMethod{core.CME, core.CLN, core.LP, core.CLP, core.CMEDual} {
		// Twice: the first populates, the second must hit and agree.
		for round := 0; round < 2; round++ {
			got, err := cq.QueryMethodContext(ctx, attrs, m)
			if err != nil {
				t.Fatalf("%s round %d: %v", m, round, err)
			}
			want, err := syn.QueryMethodContext(ctx, attrs, m)
			if err != nil {
				t.Fatalf("%s direct: %v", m, err)
			}
			if !marginal.Equal(got, want, 1e-9) {
				t.Errorf("%s round %d: cached answer diverges", m, round)
			}
		}
	}
}

// erringQuerier returns a degraded answer (table + ErrNumerical) for
// every query.
type erringQuerier struct {
	Querier
	calls atomic.Int64
}

func (e *erringQuerier) QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error) {
	e.calls.Add(1)
	return marginal.Uniform(attrs, 100), &reconstruct.NumericalError{
		Solver: "maxent", Iter: 1, Quantity: "residual", Value: math.NaN(),
	}
}

func TestCachedQuerierDoesNotCacheDegraded(t *testing.T) {
	_, _, syn := cachedTestSetup(t)
	degrading := &erringQuerier{Querier: syn}
	cq := NewCachedQuerier(degrading, qcache.New(1024, 16<<20))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		got, err := cq.QueryMethodContext(ctx, []int{0, 1}, core.CME)
		if !errors.Is(err, reconstruct.ErrNumerical) {
			t.Fatalf("err = %v, want ErrNumerical passthrough", err)
		}
		if got == nil {
			t.Fatal("degraded answer not served")
		}
	}
	if n := degrading.calls.Load(); n != 3 {
		t.Errorf("%d inner queries, want 3 (degraded answers never cached)", n)
	}
}

func TestCachedQuerierBypassesUnkeyableQueries(t *testing.T) {
	_, counting, _ := cachedTestSetup(t)
	cq := NewCachedQuerier(counting, qcache.New(1024, 16<<20))
	// Duplicate attrs cannot be keyed; the query must reach the inner
	// querier untouched (where core's validation handles it).
	defer func() {
		if recover() == nil {
			t.Error("duplicate attrs did not propagate to the inner querier")
		}
	}()
	_, _ = cq.QueryMethodContext(context.Background(), []int{3, 3}, core.CME)
}

func TestWarmFillsCache(t *testing.T) {
	cq, counting, _ := cachedTestSetup(t)
	ctx := context.Background()
	warmed, skipped, err := cq.Warm(ctx, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// d=9: C(9,1) + C(9,2) = 9 + 36 = 45 marginals.
	if warmed != 45 || skipped != 0 {
		t.Errorf("warmed = (%d, %d skipped), want (45, 0)", warmed, skipped)
	}
	st, _ := cq.CacheStats()
	if st.Entries != 45 {
		t.Errorf("entries = %d, want 45", st.Entries)
	}
	before := counting.calls.Load()
	// Every ≤2-way query must now hit.
	if _, err := cq.QueryMethodContext(ctx, []int{2, 7}, core.CME); err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != before {
		t.Error("warmed query still reached the solver")
	}
}

// partiallyDegradedQuerier degrades exactly the queries touching one
// poisoned attribute and answers the rest cleanly — the "one bad view"
// scenario Warm must survive.
type partiallyDegradedQuerier struct {
	Querier
	badAttr int
}

func (p *partiallyDegradedQuerier) QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error) {
	for _, a := range attrs {
		if a == p.badAttr {
			return marginal.Uniform(attrs, 100), &reconstruct.NumericalError{
				Solver: "maxent", Iter: 1, Quantity: "residual", Value: math.NaN(),
			}
		}
	}
	return p.Querier.QueryMethodContext(ctx, attrs, method)
}

// TestWarmSkipsDegradedKeys proves one poisoned view cannot leave the
// cache cold: degraded keys are counted and skipped, every clean key is
// still warmed, and the pass reports no error.
func TestWarmSkipsDegradedKeys(t *testing.T) {
	_, counting, _ := cachedTestSetup(t)
	cq := NewCachedQuerier(&partiallyDegradedQuerier{Querier: counting, badAttr: 0}, qcache.New(1024, 16<<20))
	warmed, skipped, err := cq.Warm(context.Background(), 2, 4)
	if err != nil {
		t.Fatalf("Warm: %v", err)
	}
	// d=9, attribute 0 poisoned: 1 + 8 = 9 keys touch it; 45 - 9 = 36
	// warm cleanly.
	if warmed != 36 || skipped != 9 {
		t.Errorf("Warm = (%d warmed, %d skipped), want (36, 9)", warmed, skipped)
	}
	st, _ := cq.CacheStats()
	if st.Entries != 36 {
		t.Errorf("entries = %d, want 36 (all clean keys cached)", st.Entries)
	}
}

func TestWarmCanceledStopsEarly(t *testing.T) {
	cq, _, _ := cachedTestSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	warmed, _, err := cq.Warm(ctx, 3, 2)
	if !errors.Is(err, reconstruct.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if warmed != 0 {
		t.Errorf("warmed = %d with a dead context", warmed)
	}
}

func TestWarmWithoutDesign(t *testing.T) {
	_, counting, _ := cachedTestSetup(t)
	cq := NewCachedQuerier(designlessQuerier{counting}, qcache.New(8, 0))
	warmed, skipped, err := cq.Warm(context.Background(), 2, 2)
	if err != nil || warmed != 0 || skipped != 0 {
		t.Errorf("Warm without design = (%d, %d, %v), want (0, 0, nil)", warmed, skipped, err)
	}
}

type designlessQuerier struct{ Querier }

func (designlessQuerier) Design() *covering.Design { return nil }

func TestStatsEndpoint(t *testing.T) {
	// Without a cache: cache=false, counters zero.
	s, _ := testServer(t)
	rec := get(t, s, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var st struct {
		Cache  bool   `json:"cache"`
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache {
		t.Error("bare synopsis reports a cache")
	}

	// With a cache (behind a Swappable, as priview-serve wires it).
	cq, _, _ := cachedTestSetup(t)
	swap := NewSwappable(cq)
	cs := New(swap, 0)
	for i := 0; i < 3; i++ {
		if rec := get(t, cs, "/v1/marginal?attrs=0,4,8"); rec.Code != http.StatusOK {
			t.Fatalf("marginal status = %d", rec.Code)
		}
	}
	rec = get(t, cs, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Cache || st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want cache=true, 1 miss, 2 hits", st)
	}

	// POST is not allowed.
	req := httptest.NewRequest(http.MethodPost, "/v1/stats", nil)
	recPost := httptest.NewRecorder()
	cs.ServeHTTP(recPost, req)
	if recPost.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats = %d", recPost.Code)
	}
}

// TestCachedServerRaceStress is the server-level race gate for the
// cache: concurrent identical and distinct queries through the full
// middleware stack, exercising hits, misses and singleflight
// coalescing at once. Under -race this proves the documented
// concurrency claim end to end.
func TestCachedServerRaceStress(t *testing.T) {
	cq, counting, syn := cachedTestSetup(t)
	s := New(NewSwappable(cq), 0)
	attrSets := []string{"0,4,8", "1,5", "0,4,8", "2,6,7", "0,4,8", "3"}
	methods := []string{"CME", "CLN", "CLP", "CME-dual"}
	const workers = 12
	const perWorker = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				path := "/v1/marginal?attrs=" + attrSets[(w+i)%len(attrSets)] +
					"&method=" + methods[i%len(methods)]
				rec := get(t, s, path)
				if rec.Code != http.StatusOK {
					t.Errorf("%s: status %d: %s", path, rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st, enabled := cq.CacheStats()
	if !enabled {
		t.Fatal("cache disabled")
	}
	if got := st.Hits + st.Misses + st.Coalesced; got != workers*perWorker {
		t.Errorf("hits+misses+coalesced = %d, want %d (stats %+v)", got, workers*perWorker, st)
	}
	// Distinct (attrs, method) pairs bound the solves that may run.
	distinct := int64(len(methods) * 4) // 4 distinct attr sets
	if n := counting.calls.Load(); n > distinct {
		t.Errorf("%d solves for %d distinct keys: singleflight failed to coalesce", n, distinct)
	}
	// Spot-check one answer against the synopsis directly.
	rec := get(t, s, "/v1/marginal?attrs=0,4,8&method=CLN")
	var resp struct {
		Cells []float64 `json:"cells"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := syn.QueryMethod([]int{0, 4, 8}, core.CLN)
	for i := range want.Cells {
		if math.Abs(want.Cells[i]-resp.Cells[i]) > 1e-9 {
			t.Fatalf("cached answer diverged at cell %d", i)
		}
	}
}
