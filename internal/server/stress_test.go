package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"priview/internal/server"
)

// TestStressConcurrentMixed fires parallel marginal requests — valid,
// invalid, and oversized — at a fully armed server (deadline + shedding
// + recovery) and asserts the status-code partitioning: valid requests
// draw 200 or, under saturation, 429; malformed and oversized requests
// draw 400 or 429 (shedding rejects before validation, by design — a
// saturated server spends no cycles parsing); nothing else appears.
// Run under -race this doubles as the data-race gate for the whole
// serving path.
func TestStressConcurrentMixed(t *testing.T) {
	s := server.NewWithOptions(buildSynopsis(t), server.Options{
		MaxK:         4,
		QueryTimeout: 10 * time.Second,
		MaxInflight:  4,
		Logger:       quietLogger(),
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	type probe struct {
		path  string
		valid bool
	}
	probes := []probe{
		{"/v1/marginal?attrs=0,1,2", true},
		{"/v1/marginal?attrs=3,4&method=CLN", true},
		{"/v1/marginal?attrs=0,4,8&method=CLP", true},
		{"/v1/marginal?attrs=2,6", true},
		{"/v1/marginal?attrs=0,x", false},       // malformed
		{"/v1/marginal?attrs=5,5", false},       // duplicate
		{"/v1/marginal?attrs=0,99", false},      // out of range
		{"/v1/marginal?attrs=0,1,2,3,5", false}, // oversized for MaxK=4
	}

	const workers = 16
	const perWorker = 8
	var (
		mu       sync.Mutex
		byStatus = map[int]int{}
		problems []string
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := probes[(w+i)%len(probes)]
				resp, err := http.Get(ts.URL + p.path)
				if err != nil {
					mu.Lock()
					problems = append(problems, fmt.Sprintf("%s: %v", p.path, err))
					mu.Unlock()
					continue
				}
				body, err := io.ReadAll(resp.Body)
				if cerr := resp.Body.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					mu.Lock()
					problems = append(problems, fmt.Sprintf("%s: reading body: %v", p.path, err))
					mu.Unlock()
					continue
				}
				ok := false
				switch resp.StatusCode {
				case http.StatusOK:
					ok = p.valid
				case http.StatusBadRequest:
					ok = !p.valid
				case http.StatusTooManyRequests:
					ok = true // shedding may reject anything under load
				}
				mu.Lock()
				byStatus[resp.StatusCode]++
				if !ok {
					problems = append(problems, fmt.Sprintf("%s: status %d (valid=%v): %s", p.path, resp.StatusCode, p.valid, body))
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for _, p := range problems {
		t.Error(p)
	}
	if byStatus[http.StatusOK] == 0 {
		t.Errorf("no request succeeded under load: %v", byStatus)
	}
	if byStatus[http.StatusBadRequest] == 0 {
		t.Errorf("no invalid request drew 400: %v", byStatus)
	}
	t.Logf("status distribution: %v", byStatus)
}
