package server

import (
	"log"
	"net/http"
	"time"

	"priview/internal/core"
	"priview/internal/qcache"
	"priview/internal/telemetry"
)

// Metrics owns every telemetry family the serving stack exports on
// GET /metrics and hands out the interned handles the subsystems write
// through. One Metrics per telemetry.Registry; constructing it twice
// over the same registry is safe because family registration is
// idempotent, so the singleton Server, the multi-tenant router, the
// release registry and the client can all share one scrape surface.
//
// Naming follows the Prometheus conventions DESIGN.md §15 pins down:
// everything is prefixed priview_, counters end in _total, and every
// duration histogram is in seconds and named _seconds. Label
// cardinality is bounded by construction — routes are the fixed mux
// patterns, status is the 1xx..5xx class, method/stage/worker labels
// are small closed sets, and release names are operator-chosen.
type Metrics struct {
	Registry *telemetry.Registry

	httpRequests *telemetry.CounterVec   // {route,status}
	httpLatency  *telemetry.HistogramVec // {route,status}
	solve        *telemetry.HistogramVec // {method}
	stage        *telemetry.HistogramVec // {stage}
	slowQueries  *telemetry.Counter

	cacheHits      *telemetry.CounterVec // {release}
	cacheMisses    *telemetry.CounterVec
	cacheEvictions *telemetry.CounterVec
	cacheCoalesced *telemetry.CounterVec
	cacheEntries   *telemetry.GaugeVec
	cacheBytes     *telemetry.GaugeVec

	warmWarmed     *telemetry.GaugeVec // {release}
	warmSkipped    *telemetry.GaugeVec
	warmInProgress *telemetry.GaugeVec

	admAdmitted *telemetry.Counter
	admQueued   *telemetry.Counter
	admShed     *telemetry.Counter
	admCoDel    *telemetry.Counter
	admSojourn  *telemetry.Histogram
	admLimit    *telemetry.Gauge
	admInflight *telemetry.Gauge
	admQueue    *telemetry.Gauge

	deadlineRejected *telemetry.Counter
	brownoutServed   *telemetry.Counter
	brownoutRejected *telemetry.Counter
	brownoutActive   *telemetry.Gauge

	clientAttempts     *telemetry.Counter
	clientRetries      *telemetry.Counter
	clientBudgetDenied *telemetry.Counter
}

// NewMetrics registers (or re-resolves) the serving stack's families on
// reg and returns the handle set. reg must be non-nil.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{Registry: reg}
	m.httpRequests = reg.CounterVec("priview_http_requests_total",
		"HTTP requests served, by route pattern and status class.", "route", "status")
	m.httpLatency = reg.HistogramVec("priview_http_request_seconds",
		"HTTP request serving latency, by route pattern and status class.", nil, "route", "status")
	m.solve = reg.HistogramVec("priview_solve_seconds",
		"Completed marginal solve latency, by estimator (batch solves are normalized per solve).", nil, "method")
	m.stage = reg.HistogramVec("priview_stage_seconds",
		"Per-stage serving latency from request traces (cache.*, core.*, reconstruct.*).", nil, "stage")
	m.slowQueries = reg.Counter("priview_slow_queries_total",
		"Requests whose total serving time crossed the -slow-query threshold.")

	m.cacheHits = reg.CounterVec("priview_qcache_hits_total",
		"Query-cache lookups answered from a stored table.", "release")
	m.cacheMisses = reg.CounterVec("priview_qcache_misses_total",
		"Query-cache lookups that ran a solve (became the leader).", "release")
	m.cacheEvictions = reg.CounterVec("priview_qcache_evictions_total",
		"Query-cache entries removed to satisfy the entry or byte bounds.", "release")
	m.cacheCoalesced = reg.CounterVec("priview_qcache_coalesced_total",
		"Query-cache waiters that joined another caller's in-flight solve.", "release")
	m.cacheEntries = reg.GaugeVec("priview_qcache_entries",
		"Current query-cache entry count.", "release")
	m.cacheBytes = reg.GaugeVec("priview_qcache_bytes",
		"Approximate query-cache memory footprint in bytes.", "release")

	m.warmWarmed = reg.GaugeVec("priview_cache_warm_warmed",
		"Marginals cached cleanly by the current or last warm pass.", "release")
	m.warmSkipped = reg.GaugeVec("priview_cache_warm_skipped",
		"Marginals the current or last warm pass computed but could not cache cleanly.", "release")
	m.warmInProgress = reg.GaugeVec("priview_cache_warm_in_progress",
		"1 while a cache warm pass is running, else 0.", "release")

	m.admAdmitted = reg.Counter("priview_admission_admitted_total",
		"Requests admitted by the adaptive admission controller.")
	m.admQueued = reg.Counter("priview_admission_queued_total",
		"Requests that waited in the admission queue before a verdict.")
	m.admShed = reg.Counter("priview_admission_shed_total",
		"Requests shed by the admission controller (queue full or limit search).")
	m.admCoDel = reg.Counter("priview_admission_codel_dropped_total",
		"Queued requests dropped by CoDel sojourn control.")
	m.admSojourn = reg.Histogram("priview_admission_sojourn_seconds",
		"Queue sojourn time of dispatched requests.", nil)
	m.admLimit = reg.Gauge("priview_admission_limit",
		"Current AIMD concurrency limit.")
	m.admInflight = reg.Gauge("priview_admission_inflight",
		"Requests currently holding an admission slot.")
	m.admQueue = reg.Gauge("priview_admission_queue_depth",
		"Requests currently waiting in the admission queue.")

	m.deadlineRejected = reg.Counter("priview_deadline_rejected_total",
		"Requests fast-failed because their remaining deadline could not cover the expected service time.")
	m.brownoutServed = reg.Counter("priview_brownout_served_total",
		"Requests answered from cache alone while a brownout was active.")
	m.brownoutRejected = reg.Counter("priview_brownout_rejected_total",
		"Requests refused 503 in brownout mode (cache miss).")
	m.brownoutActive = reg.Gauge("priview_brownout_active",
		"1 while the brownout detector holds the server in degraded mode, else 0.")

	m.clientAttempts = reg.Counter("priview_client_attempts_total",
		"HTTP attempts issued by instrumented clients, including first tries.")
	m.clientRetries = reg.Counter("priview_client_retries_total",
		"Client attempts beyond each request's first — the retry amplification numerator.")
	m.clientBudgetDenied = reg.Counter("priview_client_budget_denied_total",
		"Client retries refused by the success-funded retry budget.")
	return m
}

// statusClasses maps status/100 to the coarse class label the per-route
// series use; index 0 collects anything outside 100..599.
var statusClasses = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

// routeMetrics is one route's pre-interned per-status-class handle set,
// so the per-request accounting is two array indexes — no map lookups
// on the serving path.
type routeMetrics struct {
	requests [6]*telemetry.Counter
	latency  [6]*telemetry.Histogram
}

// route interns the full status-class handle set for one route pattern.
// Called at mux construction, never per request.
func (m *Metrics) route(route string) *routeMetrics {
	rm := &routeMetrics{}
	for i, cls := range statusClasses {
		rm.requests[i] = m.httpRequests.With(route, cls)
		rm.latency[i] = m.httpLatency.With(route, cls)
	}
	return rm
}

// instrumented wraps h to count and time every request under the
// route's per-status-class series. It sits outermost — outside panic
// recovery — so recovered 500s are counted as 500s.
func (m *Metrics) instrumented(route string, h http.Handler) http.Handler {
	rm := m.route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := statusWriter{ResponseWriter: w}
		h.ServeHTTP(&sw, r)
		cls := sw.class()
		rm.requests[cls].Inc()
		rm.latency[cls].ObserveDuration(time.Since(start))
	})
}

// statusWriter records the first status code written; a handler that
// writes a body without an explicit WriteHeader gets net/http's
// implicit 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// class resolves the recorded status to a statusClasses index. A
// handler that wrote nothing at all still answers 200 (net/http writes
// the implicit header at request end).
func (w *statusWriter) class() int {
	s := w.status
	if s == 0 {
		s = http.StatusOK
	}
	if s < 100 || s > 599 {
		return 0
	}
	return s / 100
}

// instrumentOverload swaps the overload middleware's counters for the
// registry-backed series and, when the adaptive controller is enabled,
// swaps its counters too and refreshes the admission gauges at scrape
// time. Call before the owning server handles traffic — the swaps are
// unsynchronized by design (see qcache.Instrument).
func (m *Metrics) instrumentOverload(o *overload) {
	o.deadlineRejected = m.deadlineRejected
	o.brownoutServed = m.brownoutServed
	o.brownoutRejected = m.brownoutRejected
	if o.ctrl != nil {
		o.ctrl.Instrument(m.admAdmitted, m.admQueued, m.admShed, m.admCoDel, m.admSojourn)
	}
	m.Registry.OnScrape(func() {
		st := o.stats()
		if st == nil {
			return
		}
		m.admLimit.Set(st.Limit)
		m.admInflight.Set(float64(st.Inflight))
		m.admQueue.Set(float64(st.QueueDepth))
		if st.BrownoutActive {
			m.brownoutActive.Set(1)
		} else {
			m.brownoutActive.Set(0)
		}
	})
}

// InstrumentCache swaps cq's cache counters for the release's interned
// series. Reload paths build a fresh cache per published synopsis;
// swapping each generation onto the same interned handles keeps the
// exported series cumulative over the release's lifetime. Call before
// the querier serves traffic.
func (m *Metrics) InstrumentCache(release string, cq *CachedQuerier) {
	cq.cache.Instrument(
		m.cacheHits.With(release),
		m.cacheMisses.With(release),
		m.cacheEvictions.With(release),
		m.cacheCoalesced.With(release),
	)
}

// WatchCacheGauges refreshes the release's entry/byte gauges at scrape
// time from stats. Register once per release — scrape hooks are never
// removed, so a per-reload registration would accumulate; stats must
// follow the release's current cache itself (a method value, not a
// closure over one cache generation).
func (m *Metrics) WatchCacheGauges(release string, stats func() (qcache.Stats, bool)) {
	entries := m.cacheEntries.With(release)
	bytes := m.cacheBytes.With(release)
	m.Registry.OnScrape(func() {
		st, ok := stats()
		if !ok {
			return
		}
		entries.Set(float64(st.Entries))
		bytes.Set(float64(st.Bytes))
	})
}

// WarmProgress interns the release's warm-pass gauge handles. The nil
// *WarmProgress is inert, so callers without telemetry pass nil and
// keep one unconditional code path.
func (m *Metrics) WarmProgress(release string) *WarmProgress {
	return &WarmProgress{
		warmed:     m.warmWarmed.With(release),
		skipped:    m.warmSkipped.With(release),
		inProgress: m.warmInProgress.With(release),
	}
}

// WarmProgress exports one release's cache-warm progress: running
// warmed/skipped totals plus an in-progress flag, updated after every
// warm chunk so operators can watch a long pass move instead of
// learning its outcome from a log line at the end.
type WarmProgress struct {
	warmed, skipped, inProgress *telemetry.Gauge
}

// Begin marks a warm pass started and zeroes the running totals.
func (p *WarmProgress) Begin() {
	if p == nil {
		return
	}
	p.inProgress.Set(1)
	p.warmed.Set(0)
	p.skipped.Set(0)
}

// Update publishes the running totals; shaped to be used directly as a
// WarmProgressFunc.
func (p *WarmProgress) Update(warmed, skipped int) {
	if p == nil {
		return
	}
	p.warmed.Set(float64(warmed))
	p.skipped.Set(float64(skipped))
}

// End publishes the final totals and clears the in-progress flag.
func (p *WarmProgress) End(warmed, skipped int) {
	if p == nil {
		return
	}
	p.Update(warmed, skipped)
	p.inProgress.Set(0)
}

// InstrumentClient swaps c's retry counters for the registry-backed
// series. Call before the client issues requests.
func (m *Metrics) InstrumentClient(c *Client) {
	c.attempts = m.clientAttempts
	c.retries = m.clientRetries
	c.budgetDenied = m.clientBudgetDenied
}

// observeSolve records one completed solve (or completed degraded
// solve) under its estimator. Mirrors the service-time EWMA's
// semantics: timed-out queries measure their own truncation and are
// not observed.
func (m *Metrics) observeSolve(method core.ReconstructMethod, d time.Duration) {
	m.solve.With(method.String()).ObserveDuration(d)
}

// finishTrace folds tr's recorded stages into the stage histograms and,
// when the total serving time crosses the slow threshold, counts the
// request and emits the structured slow-query line. desc is resolved
// lazily so the common fast path never formats it.
func (m *Metrics) finishTrace(tr *telemetry.Trace, logger *log.Logger, slow time.Duration, route string, desc func() string) {
	if tr == nil {
		return
	}
	for _, st := range tr.Stages() {
		m.stage.With(st.Name).ObserveDuration(st.Dur)
	}
	total := tr.Elapsed()
	if slow > 0 && total >= slow && logger != nil {
		m.slowQueries.Inc()
		logger.Printf("server: slow-query route=%s %s total=%v threshold=%v stages=[%s]",
			route, desc(), total.Round(time.Microsecond), slow, tr.Summary())
	}
}
