package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/noise"
)

func testServer(t *testing.T) (*Server, *core.Synopsis) {
	t.Helper()
	data := synth.MSNBC(5000, 1)
	dg := covering.Groups(9, 6)
	syn := core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg}, noise.NewStream(2))
	return New(syn, 0), syn
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealth(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestInfo(t *testing.T) {
	s, syn := testServer(t)
	rec := get(t, s, "/v1/info")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var info struct {
		Epsilon float64 `json:"epsilon"`
		D       int     `json:"d"`
		Design  string  `json:"design"`
		Views   int     `json:"views"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Epsilon != 1 || info.D != 9 || info.Design != "C2(6,3)" || info.Views != len(syn.Views()) {
		t.Errorf("info = %+v", info)
	}
}

func TestMarginalQuery(t *testing.T) {
	s, syn := testServer(t)
	rec := get(t, s, "/v1/marginal?attrs=0,4,8")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Attrs  []int     `json:"attrs"`
		Method string    `json:"method"`
		Cells  []float64 `json:"cells"`
		Total  float64   `json:"total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 8 || resp.Method != "CME" {
		t.Errorf("resp = %+v", resp)
	}
	// Must match a direct query exactly (serving is pure
	// post-processing).
	direct := syn.Query([]int{0, 4, 8})
	for i := range direct.Cells {
		if math.Abs(direct.Cells[i]-resp.Cells[i]) > 1e-9 {
			t.Errorf("cell %d: HTTP %v vs direct %v", i, resp.Cells[i], direct.Cells[i])
		}
	}
}

func TestMarginalMethodSelection(t *testing.T) {
	s, _ := testServer(t)
	// All five Fig. 3 estimators implemented by core must be servable,
	// case-insensitively, with CME-dual spellable both ways.
	accepted := map[string]string{
		"CME":      "CME",
		"cme":      "CME",
		"CLN":      "CLN",
		"LP":       "LP",
		"CLP":      "CLP",
		"CME-dual": "CME-dual",
		"CMEDUAL":  "CME-dual",
		"cme-DUAL": "CME-dual",
	}
	for m, want := range accepted {
		rec := get(t, s, "/v1/marginal?attrs=0,5&method="+m)
		if rec.Code != http.StatusOK {
			t.Errorf("method %s: status %d: %s", m, rec.Code, rec.Body.String())
			continue
		}
		var resp struct {
			Method string `json:"method"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Method != want {
			t.Errorf("method %s: served as %q, want %q", m, resp.Method, want)
		}
	}
	rec := get(t, s, "/v1/marginal?attrs=0,5&method=nope")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown method accepted: %d", rec.Code)
	}
	if got := strings.TrimSpace(rec.Body.String()); got != "unknown method (want CME, CLN, LP, CLP or CME-dual)" {
		t.Errorf("error text = %q must name every accepted method", got)
	}
}

func TestMarginalValidation(t *testing.T) {
	s, _ := testServer(t)
	cases := map[string]string{
		"missing attrs":  "/v1/marginal",
		"bad attr":       "/v1/marginal?attrs=0,x",
		"duplicate":      "/v1/marginal?attrs=3,3",
		"out of range":   "/v1/marginal?attrs=0,99",
		"unknown method": "/v1/marginal?attrs=0&method=nope",
	}
	for name, path := range cases {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
}

func TestMarginalMaxK(t *testing.T) {
	data := synth.MSNBC(2000, 2)
	dg := covering.Groups(9, 6)
	syn := core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg}, noise.NewStream(3))
	s := New(syn, 2)
	if rec := get(t, s, "/v1/marginal?attrs=0,1,2"); rec.Code != http.StatusBadRequest {
		t.Errorf("k=3 accepted with maxK=2: %d", rec.Code)
	}
	if rec := get(t, s, "/v1/marginal?attrs=0,1"); rec.Code != http.StatusOK {
		t.Errorf("k=2 rejected: %d", rec.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/marginal?attrs=0", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", rec.Code)
	}
}

func TestConcurrentQueries(t *testing.T) {
	s, _ := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths := []string{
				"/v1/marginal?attrs=0,1,2",
				"/v1/marginal?attrs=3,4&method=CLN",
				"/v1/marginal?attrs=0,4,8&method=CLP",
				"/v1/info",
			}
			rec := get(t, s, paths[i%len(paths)])
			if rec.Code != http.StatusOK {
				errs <- rec.Body.String()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent request failed: %s", e)
	}
}
