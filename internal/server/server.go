// Package server exposes a published PriView synopsis over HTTP. Since
// a synopsis is a differentially private object, serving unlimited
// marginal queries from it costs no additional privacy budget (the
// post-processing property) — the server is a pure, stateless query
// engine suitable for public deployment.
//
// The serving path has an explicit failure model: per-request deadlines
// (504 on expiry), load shedding (429 + Retry-After when saturated),
// panic recovery (500 with a logged stack), and a draining state that
// flips /healthz to 503 so load balancers stop routing to an instance
// that is shutting down.
//
// Shedding comes in two grades. The default is a plain semaphore:
// MaxInflight concurrent queries, instant 429 past that. Setting
// Options.Admission upgrades it to the adaptive controller from
// internal/admission — a bounded queue absorbs bursts, CoDel-style
// sojourn control sheds from the queue when delay stands above target,
// an AIMD search adapts the concurrency limit to the latency gradient,
// and requests arriving with less remaining deadline (propagated via
// X-Priview-Deadline-Ms) than the method's expected service time are
// fast-failed instead of admitted. Options.Brownout additionally
// degrades non-priority traffic to cache-hits-only under sustained
// overload.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"priview/internal/admission"
	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/marginal"
	"priview/internal/qcache"
	"priview/internal/reconstruct"
	"priview/internal/telemetry"
)

// Querier is the synopsis surface the server serves. *core.Synopsis
// implements it; tests substitute slow or faulty implementations to
// exercise the failure model without a slow real reconstruction.
type Querier interface {
	// QueryMethodContext reconstructs the marginal over attrs with the
	// given estimator, honoring ctx cancellation (see core.Synopsis).
	QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error)
	Epsilon() float64
	Total() float64
	Views() []*marginal.Table
	Design() *covering.Design
}

// statusClientClosedRequest is the nginx-convention status for requests
// abandoned by the client; the response is never seen, the code exists
// for access logs and metrics.
const statusClientClosedRequest = 499

// Options configures the failure model around the query path. The zero
// value disables deadlines and shedding, matching the bare handler.
type Options struct {
	// MaxK bounds the marginal size a single request may ask for (≤ 0
	// selects the default of 12).
	MaxK int
	// QueryTimeout is the per-request reconstruction deadline; requests
	// exceeding it fail with 504. ≤ 0 disables the deadline.
	QueryTimeout time.Duration
	// MaxInflight caps concurrently served marginal queries; excess
	// requests are shed immediately with 429 + Retry-After. ≤ 0
	// disables shedding.
	MaxInflight int
	// RetryAfter is the hint written on shed responses (default 1s,
	// rounded up to whole seconds as the header requires).
	RetryAfter time.Duration
	// MaxBatch bounds the queries one POST /v1/marginals request may
	// carry (≤ 0 selects the default of 256).
	MaxBatch int
	// BatchWorkers bounds the solver goroutines one batch may fan over
	// (core.BatchOptions.Workers); ≤ 0 selects GOMAXPROCS.
	BatchWorkers int
	// Admission, when non-nil, replaces the instant-429 semaphore with
	// the adaptive admission controller (bounded queue + CoDel sojourn
	// control + AIMD concurrency limit) and arms the deadline gate fed
	// by the per-method service-time EWMA. MaxInflight then seeds the
	// controller's MaxLimit and MaxQueue defaults instead of sizing a
	// semaphore.
	Admission *admission.Config
	// Brownout, when non-nil (and Admission set), serves non-priority
	// traffic from cache hits only under sustained overload.
	Brownout *admission.BrownoutConfig
	// Telemetry is the metrics registry GET /metrics serves and every
	// subsystem counter registers into. nil gets a fresh private
	// registry, so /metrics always answers; pass a shared registry to
	// fold the server's series into a process-wide scrape surface.
	Telemetry *telemetry.Registry
	// SlowQuery, when > 0, logs a structured slow-query line — with the
	// request's per-stage timings — for any marginal request whose
	// total serving time exceeds it, and counts it in
	// priview_slow_queries_total. ≤ 0 disables the log.
	SlowQuery time.Duration
	// Logger receives panic stacks and response-encoding failures
	// (default log.Default()).
	Logger *log.Logger
}

// Server wraps a synopsis with HTTP handlers.
type Server struct {
	syn      Querier
	mux      *http.ServeMux
	opt      Options
	inflight chan struct{} // nil when semaphore shedding is disabled
	ov       *overload
	tel      *Metrics
	draining atomic.Bool
}

// New returns a server for the synopsis with default options. maxK
// bounds the marginal size a single request may ask for (≤ 0 selects
// the default of 12).
func New(syn Querier, maxK int) *Server {
	return NewWithOptions(syn, Options{MaxK: maxK})
}

// NewWithOptions returns a server with an explicit failure model.
func NewWithOptions(syn Querier, opt Options) *Server {
	if opt.MaxK <= 0 {
		opt.MaxK = 12
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = time.Second
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 256
	}
	if opt.Logger == nil {
		opt.Logger = log.Default()
	}
	reg := opt.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{syn: syn, mux: http.NewServeMux(), opt: opt, ov: newOverload(opt), tel: NewMetrics(reg)}
	if opt.MaxInflight > 0 && s.ov.ctrl == nil {
		s.inflight = make(chan struct{}, opt.MaxInflight)
	}
	// Instrumentation precedes traffic: the handle swaps below are
	// deliberately unsynchronized. The singleton serves one release, so
	// its cache and warm series use the conventional "default" label.
	s.tel.instrumentOverload(s.ov)
	if cq, ok := syn.(*CachedQuerier); ok {
		s.tel.InstrumentCache("default", cq)
	}
	if cs, ok := syn.(CacheStatser); ok {
		s.tel.WatchCacheGauges("default", cs.CacheStats)
	}
	// The health probe gets the same panic recovery as every other
	// route: a panicking Querier reachable from the health path must
	// answer 500, not kill the probe's response mid-flight. The
	// per-route instrumentation sits outermost so recovered panics
	// count as the 500s they answer; /metrics itself is deliberately
	// uninstrumented — a scrape should not perturb the series it reads.
	s.mux.Handle("/metrics", s.recovered(reg.Handler()))
	s.mux.Handle("/healthz", s.tel.instrumented("/healthz", s.recovered(http.HandlerFunc(s.handleHealth))))
	s.mux.Handle("/v1/info", s.tel.instrumented("/v1/info", s.recovered(http.HandlerFunc(s.handleInfo))))
	s.mux.Handle("/v1/stats", s.tel.instrumented("/v1/stats", s.recovered(http.HandlerFunc(s.handleStats))))
	// Shed before arming the deadline: a request rejected for capacity
	// should not consume any of its reconstruction budget.
	inner := s.ov.deadlined(http.HandlerFunc(s.handleMarginal))
	var gated http.Handler
	if s.ov.ctrl != nil {
		gated = s.ov.admitted(inner, s.tryCacheOnly)
	} else {
		gated = s.shedding(inner)
	}
	s.mux.Handle("/v1/marginal", s.tel.instrumented("/v1/marginal", s.recovered(gated)))
	// The batch route shares the single-query failure model: shed, then
	// arm the deadline, then solve. The deadline *gate* (as opposed to
	// the armed timeout) runs inside the handler, size-scaled to the
	// parsed batch.
	innerBatch := s.ov.deadlined(http.HandlerFunc(s.handleMarginals))
	var gatedBatch http.Handler
	if s.ov.ctrl != nil {
		gatedBatch = s.ov.admitted(innerBatch, s.tryCacheOnly)
	} else {
		gatedBatch = s.shedding(innerBatch)
	}
	s.mux.Handle("/v1/marginals", s.tel.instrumented("/v1/marginals", s.recovered(gatedBatch)))
	return s
}

// Metrics exposes the server's telemetry handle set — the same object
// GET /metrics serves — so owners can wire further subsystems (a
// client, a release registry) onto the shared registry.
func (s *Server) Metrics() *Metrics { return s.tel }

// tryCacheOnly is the brownout hook: serve the marginal from the
// synopsis's memoized cache alone, or refuse.
func (s *Server) tryCacheOnly(w http.ResponseWriter, r *http.Request) bool {
	return s.ov.serveCacheOnly(w, r, s.syn)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetDraining flips the draining state: while draining, /healthz
// answers 503 so load balancers take the instance out of rotation
// before Shutdown closes the listener. Safe for concurrent use.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is refusing its health probe.
func (s *Server) Draining() bool { return s.draining.Load() }

// AdmissionStats snapshots the overload-control counters (the same
// object /v1/stats serves), or nil when no overload machinery has
// engaged. For operator logging.
func (s *Server) AdmissionStats() *admission.Stats { return s.ov.stats() }

// recovered converts handler panics into 500s with a logged stack.
// Panics are internal failures; without this they would tear down the
// whole connection (net/http's default) or, worse, be mislabeled as
// client errors.
func (s *Server) recovered(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.opt.Logger.Printf("server: panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack())
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// shedding admits at most MaxInflight concurrent requests and rejects
// the rest immediately with 429 + Retry-After — under overload, fast
// rejection keeps latency bounded for the requests that are admitted.
func (s *Server) shedding(h http.Handler) http.Handler {
	if s.inflight == nil {
		return h
	}
	retryAfter := retryAfterSeconds(s.opt.RetryAfter)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			h.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", retryAfter)
			http.Error(w, "server at capacity, retry later", http.StatusTooManyRequests)
		}
	})
}

// retryAfterSeconds renders a duration as the whole-seconds string the
// Retry-After header requires, rounding up so the hint never undershoots.
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		// Like the 429 shed path, the drain refusal carries a backoff
		// hint; without it retrying clients hammer an instance that is
		// trying to go away.
		w.Header().Set("Retry-After", retryAfterSeconds(s.opt.RetryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	//lint:ignore errdiscard health-probe response; a client that hung up cannot be told about it
	fmt.Fprintln(w, "ok")
}

// infoResponse describes the published synopsis.
type infoResponse struct {
	Epsilon float64 `json:"epsilon"`
	Total   float64 `json:"total"`
	D       int     `json:"d"`
	Design  string  `json:"design"`
	Views   int     `json:"views"`
	MaxK    int     `json:"max_k"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	serveInfo(w, r, s.syn, s.opt.MaxK, s.opt.Logger)
}

// serveInfo answers an info request from q. Shared between the
// singleton Server and the multi-tenant router, which resolves q per
// release.
func serveInfo(w http.ResponseWriter, r *http.Request, q Querier, maxK int, logger *log.Logger) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp := infoResponse{
		Epsilon: q.Epsilon(),
		Total:   q.Total(),
		Views:   len(q.Views()),
		MaxK:    maxK,
	}
	if dg := q.Design(); dg != nil {
		resp.D = dg.D
		resp.Design = dg.Name()
	}
	writeJSON(w, logger, resp)
}

// statsResponse reports the query cache's counters and, when overload
// control is active, the admission controller's snapshot. Cache is
// false (and the counters zero) when the served Querier maintains no
// cache; Admission is omitted for a legacy semaphore configuration.
type statsResponse struct {
	Cache bool `json:"cache"`
	qcache.Stats
	Admission *admission.Stats `json:"admission,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp := statsResponse{}
	if cs, ok := s.syn.(CacheStatser); ok {
		if st, enabled := cs.CacheStats(); enabled {
			resp = statsResponse{Cache: true, Stats: st}
		}
	}
	resp.Admission = s.ov.stats()
	s.writeJSON(w, resp)
}

// marginalResponse is a reconstructed marginal table. Degraded marks
// answers produced by the numerical fallback chain (a poisoned view or
// an unstable solver was bypassed); the cells are finite and usable but
// may come from a different estimator than requested.
type marginalResponse struct {
	Attrs    []int     `json:"attrs"`
	Method   string    `json:"method"`
	Total    float64   `json:"total"`
	Cells    []float64 `json:"cells"`
	Degraded bool      `json:"degraded,omitempty"`
}

func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	serveMarginal(w, r, s.syn, s.env())
}

func (s *Server) handleMarginals(w http.ResponseWriter, r *http.Request) {
	serveMarginals(w, r, s.syn, batchEnv{
		serveEnv: s.env(),
		ov:       s.ov,
		maxBatch: s.opt.MaxBatch,
		workers:  s.opt.BatchWorkers,
	})
}

func (s *Server) env() serveEnv {
	return serveEnv{maxK: s.opt.MaxK, logger: s.opt.Logger, svc: s.ov.svc, tel: s.tel, slow: s.opt.SlowQuery}
}

// serveEnv carries the serving context serveMarginal needs beyond the
// Querier itself; both the singleton Server and the multi-tenant router
// assemble one from their own options.
type serveEnv struct {
	maxK   int
	logger *log.Logger
	svc    *admission.ServiceTime // nil = no service-time tracking
	tel    *Metrics               // nil = no telemetry (bare handler tests)
	slow   time.Duration          // slow-query log threshold; ≤ 0 disables
}

// serveMarginal validates, reconstructs and answers one marginal query
// against q. Shared between the singleton Server and the multi-tenant
// router, which resolves q per release.
func serveMarginal(w http.ResponseWriter, r *http.Request, q Querier, env serveEnv) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	attrs, err := parseAttrs(r.URL.Query().Get("attrs"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(attrs) > env.maxK {
		http.Error(w, fmt.Sprintf("at most %d attributes per query", env.maxK), http.StatusBadRequest)
		return
	}
	if dg := q.Design(); dg != nil {
		for _, a := range attrs {
			if a < 0 || a >= dg.D {
				http.Error(w, fmt.Sprintf("attribute %d out of range (d=%d)", a, dg.D), http.StatusBadRequest)
				return
			}
		}
	}
	method, ok := parseMethod(r.URL.Query().Get("method"))
	if !ok {
		http.Error(w, "unknown method (want CME, CLN, LP, CLP or CME-dual)", http.StatusBadRequest)
		return
	}
	// Input is validated; from here every failure is the server's, not
	// the client's. Panics propagate to the recovery middleware (500).
	// The trace rides the context down through qcache and core, which
	// record their stage timings into it.
	ctx, tr := telemetry.StartTrace(r.Context())
	start := time.Now()
	table, err := q.QueryMethodContext(ctx, attrs, method)
	if err == nil || errors.Is(err, reconstruct.ErrNumerical) {
		// Only completed solves feed the estimate; a timed-out query
		// measures its own truncation, not the method's service time.
		if env.svc != nil {
			env.svc.Observe(int(method), time.Since(start))
		}
		if env.tel != nil {
			env.tel.observeSolve(method, time.Since(start))
		}
	}
	if env.tel != nil {
		defer env.tel.finishTrace(tr, env.logger, env.slow, r.URL.Path, func() string {
			return fmt.Sprintf("attrs=%v method=%s", attrs, method)
		})
	}
	switch {
	case err == nil && table != nil:
		writeJSON(w, env.logger, marginalResponse{
			Attrs:  table.Attrs,
			Method: method.String(),
			Total:  table.Total(),
			Cells:  table.Cells,
		})
	case errors.Is(err, reconstruct.ErrNumerical) && table != nil:
		// The numerical fallback chain produced a finite answer; serve
		// it (marked degraded) rather than failing the query.
		env.logger.Printf("server: query attrs=%v method=%s degraded: %v", attrs, method, err)
		writeJSON(w, env.logger, marginalResponse{
			Attrs:    table.Attrs,
			Method:   method.String(),
			Total:    table.Total(),
			Cells:    table.Cells,
			Degraded: true,
		})
	case errors.Is(err, reconstruct.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, reconstruct.ErrCanceled) || errors.Is(err, context.Canceled):
		// The client went away; the status is for logs only.
		w.WriteHeader(statusClientClosedRequest)
	default:
		env.logger.Printf("server: query attrs=%v method=%s failed: %v", attrs, method, err)
		http.Error(w, "internal error", http.StatusInternalServerError)
	}
}

// parseMethod resolves the method query parameter to an estimator. All
// five Fig. 3 estimators implemented by core are accepted; matching is
// case-insensitive and CME-dual is also spellable without the hyphen.
func parseMethod(raw string) (core.ReconstructMethod, bool) {
	switch strings.ToUpper(raw) {
	case "", "CME":
		return core.CME, true
	case "CLN":
		return core.CLN, true
	case "LP":
		return core.LP, true
	case "CLP":
		return core.CLP, true
	case "CMEDUAL", "CME-DUAL":
		return core.CMEDual, true
	}
	return core.CME, false
}

func parseAttrs(raw string) ([]int, error) {
	if raw == "" {
		return nil, fmt.Errorf("attrs parameter is required (comma-separated indices)")
	}
	parts := strings.Split(raw, ",")
	attrs := make([]int, 0, len(parts))
	seen := map[int]bool{}
	for _, p := range parts {
		a, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad attribute %q", p)
		}
		if seen[a] {
			return nil, fmt.Errorf("duplicate attribute %d", a)
		}
		seen[a] = true
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	return attrs, nil
}

func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	writeJSON(w, s.opt.Logger, v)
}

func writeJSON(w http.ResponseWriter, logger *log.Logger, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The 200 header and part of the body may already be on the
		// wire, so a late http.Error would interleave an error string
		// into a JSON stream; logging is the only safe action.
		logger.Printf("server: encoding response: %v", err)
	}
}
