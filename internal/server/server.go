// Package server exposes a published PriView synopsis over HTTP. Since
// a synopsis is a differentially private object, serving unlimited
// marginal queries from it costs no additional privacy budget (the
// post-processing property) — the server is a pure, stateless query
// engine suitable for public deployment.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"priview/internal/core"
	"priview/internal/marginal"
)

// Server wraps a synopsis with HTTP handlers.
type Server struct {
	syn *core.Synopsis
	mux *http.ServeMux
	// maxK bounds the query size so a single request cannot ask for a
	// 2^30-cell reconstruction.
	maxK int
}

// New returns a server for the synopsis. maxK bounds the marginal size
// a single request may ask for (≤ 0 selects the default of 12).
func New(syn *core.Synopsis, maxK int) *Server {
	if maxK <= 0 {
		maxK = 12
	}
	s := &Server{syn: syn, mux: http.NewServeMux(), maxK: maxK}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/info", s.handleInfo)
	s.mux.HandleFunc("/v1/marginal", s.handleMarginal)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	//lint:ignore errdiscard health-probe response; a client that hung up cannot be told about it
	fmt.Fprintln(w, "ok")
}

// infoResponse describes the published synopsis.
type infoResponse struct {
	Epsilon float64 `json:"epsilon"`
	Total   float64 `json:"total"`
	D       int     `json:"d"`
	Design  string  `json:"design"`
	Views   int     `json:"views"`
	MaxK    int     `json:"max_k"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp := infoResponse{
		Epsilon: s.syn.Epsilon(),
		Total:   s.syn.Total(),
		Views:   len(s.syn.Views()),
		MaxK:    s.maxK,
	}
	if dg := s.syn.Design(); dg != nil {
		resp.D = dg.D
		resp.Design = dg.Name()
	}
	writeJSON(w, resp)
}

// marginalResponse is a reconstructed marginal table.
type marginalResponse struct {
	Attrs  []int     `json:"attrs"`
	Method string    `json:"method"`
	Total  float64   `json:"total"`
	Cells  []float64 `json:"cells"`
}

func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	attrs, err := parseAttrs(r.URL.Query().Get("attrs"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(attrs) > s.maxK {
		http.Error(w, fmt.Sprintf("at most %d attributes per query", s.maxK), http.StatusBadRequest)
		return
	}
	if dg := s.syn.Design(); dg != nil {
		for _, a := range attrs {
			if a < 0 || a >= dg.D {
				http.Error(w, fmt.Sprintf("attribute %d out of range (d=%d)", a, dg.D), http.StatusBadRequest)
				return
			}
		}
	}
	method := core.CME
	switch strings.ToUpper(r.URL.Query().Get("method")) {
	case "", "CME":
	case "CLN":
		method = core.CLN
	case "CLP":
		method = core.CLP
	default:
		http.Error(w, "unknown method (want CME, CLN or CLP)", http.StatusBadRequest)
		return
	}
	var table *marginal.Table
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				table = nil
			}
		}()
		table = s.syn.QueryMethod(attrs, method)
	}()
	if table == nil {
		http.Error(w, "query failed", http.StatusBadRequest)
		return
	}
	writeJSON(w, marginalResponse{
		Attrs:  table.Attrs,
		Method: method.String(),
		Total:  table.Total(),
		Cells:  table.Cells,
	})
}

func parseAttrs(raw string) ([]int, error) {
	if raw == "" {
		return nil, fmt.Errorf("attrs parameter is required (comma-separated indices)")
	}
	parts := strings.Split(raw, ",")
	attrs := make([]int, 0, len(parts))
	seen := map[int]bool{}
	for _, p := range parts {
		a, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad attribute %q", p)
		}
		if seen[a] {
			return nil, fmt.Errorf("duplicate attribute %d", a)
		}
		seen[a] = true
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	return attrs, nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers already sent; nothing sensible to do but note it.
		http.Error(w, "encoding failed", http.StatusInternalServerError)
	}
}
