package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"priview/internal/marginal"
)

// Client is a typed client for the priview-serve HTTP API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a server at base (e.g.
// "http://localhost:8080"). httpClient may be nil for the default.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// Info describes the served synopsis.
type Info struct {
	Epsilon float64 `json:"epsilon"`
	Total   float64 `json:"total"`
	D       int     `json:"d"`
	Design  string  `json:"design"`
	Views   int     `json:"views"`
	MaxK    int     `json:"max_k"`
}

// Info fetches the release metadata.
func (c *Client) Info() (*Info, error) {
	var info Info
	if err := c.getJSON("/v1/info", &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Marginal fetches the reconstructed marginal over attrs using the
// given estimator ("" selects CME).
func (c *Client) Marginal(attrs []int, method string) (*marginal.Table, error) {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = strconv.Itoa(a)
	}
	q := url.Values{}
	q.Set("attrs", strings.Join(parts, ","))
	if method != "" {
		q.Set("method", method)
	}
	var resp marginalResponse
	if err := c.getJSON("/v1/marginal?"+q.Encode(), &resp); err != nil {
		return nil, err
	}
	t := marginal.New(resp.Attrs)
	if len(resp.Cells) != t.Size() {
		return nil, fmt.Errorf("server: response has %d cells for %d attributes", len(resp.Cells), len(resp.Attrs))
	}
	copy(t.Cells, resp.Cells)
	return t, nil
}

func (c *Client) getJSON(path string, v interface{}) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("server: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("server: decoding response: %w", err)
	}
	return nil
}
