package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"priview/internal/marginal"
	"priview/internal/telemetry"
)

// DefaultClientTimeout bounds a single HTTP attempt for clients built
// with a nil *http.Client. http.DefaultClient has no timeout at all, so
// a wedged server would hang callers forever.
const DefaultClientTimeout = 30 * time.Second

// Method names accepted by the server's method parameter — all five
// Fig. 3 estimators implemented by core (matching is case-insensitive;
// "CMEDUAL" is also accepted for MethodCMEDual).
const (
	MethodCME     = "CME"
	MethodCLN     = "CLN"
	MethodLP      = "LP"
	MethodCLP     = "CLP"
	MethodCMEDual = "CME-dual"
)

// RetryPolicy controls the client's retry loop for idempotent requests.
// The zero value selects the defaults noted per field; MaxAttempts = 1
// disables retrying entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 100ms);
	// subsequent retries double it.
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff (default 2s). A server-sent
	// Retry-After hint overrides the computed backoff and is capped at
	// 30s rather than MaxDelay — the server knows better.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic for tests (0 selects a fixed
	// default seed; runs are reproducible either way).
	Seed uint64
	// RetryBudget, when positive, bounds retry amplification: every
	// successful request deposits RetryBudget tokens and every retry
	// withdraws one, so sustained retry traffic cannot exceed that
	// fraction of successful traffic (0.1 ≈ 10% extra load). When the
	// budget is empty the client returns the last error immediately —
	// wrapped so errors.Is(err, ErrRetryBudget) detects it — instead of
	// amplifying an outage into a retry storm. 0 disables the budget,
	// preserving plain MaxAttempts behavior.
	RetryBudget float64
	// RetryBurst caps the banked tokens and seeds the starting balance
	// (default 3 when RetryBudget is set) so cold-start transients still
	// get a few retries before any success has funded the budget.
	RetryBurst float64
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

// retryAfterCap bounds how long a server-sent Retry-After hint can make
// the client sleep; anything longer is treated as "give up this soon-ness
// isn't happening" rather than slept through.
const retryAfterCap = 30 * time.Second

// ErrRetryBudget marks errors returned when the retry budget refused
// another attempt; detect it with errors.Is.
var ErrRetryBudget = errors.New("server: retry budget exhausted")

// Client is a typed client for the priview-serve HTTP API. All its
// requests are GETs — idempotent by construction — so transient
// connection errors and retryable statuses (429 and 5xx) are retried
// with exponential backoff and jitter, honoring Retry-After.
//
// Two overload-control behaviors are built in. Every attempt carries
// the caller's remaining context budget in the X-Priview-Deadline-Ms
// header so the server can decline work the client will abandon anyway,
// and a backoff that would outlive the remaining budget fails
// immediately instead of being slept through. Optionally,
// RetryPolicy.RetryBudget bounds retry amplification fleet-wide.
type Client struct {
	base     string
	hc       *http.Client
	policy   RetryPolicy
	rng      *jitterRand
	budget   *retryBudget // nil = no retry budget
	priority string

	// Standalone by default; Metrics.InstrumentClient swaps them for
	// registry-backed series before the client issues requests.
	attempts, retries, budgetDenied *telemetry.Counter
}

// retryBudget is the success-funded token bucket behind
// RetryPolicy.RetryBudget. Unlike a time-based bucket it refills on
// success, which is the point: when nothing succeeds, nothing funds
// further retries.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	limit  float64 // cap on banked tokens
	earn   float64 // deposit per success
}

func (b *retryBudget) withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (b *retryBudget) deposit() {
	b.mu.Lock()
	b.tokens += b.earn
	if b.tokens > b.limit {
		b.tokens = b.limit
	}
	b.mu.Unlock()
}

func (b *retryBudget) balance() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// NewClient returns a client for a server at base (e.g.
// "http://localhost:8080"). httpClient may be nil for a default with a
// DefaultClientTimeout per-attempt timeout. The default RetryPolicy
// applies; use NewClientWithPolicy to tune or disable retries.
func NewClient(base string, httpClient *http.Client) *Client {
	return NewClientWithPolicy(base, httpClient, RetryPolicy{})
}

// NewClientWithPolicy is NewClient with an explicit retry policy.
func NewClientWithPolicy(base string, httpClient *http.Client, policy RetryPolicy) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultClientTimeout}
	}
	rng := &jitterRand{}
	seed := policy.Seed
	if seed == 0 {
		seed = 0x5deece66d
	}
	rng.state.Store(seed)
	c := &Client{
		base:         strings.TrimRight(base, "/"),
		hc:           httpClient,
		policy:       policy,
		rng:          rng,
		attempts:     telemetry.NewCounter(),
		retries:      telemetry.NewCounter(),
		budgetDenied: telemetry.NewCounter(),
	}
	if policy.RetryBudget > 0 {
		burst := policy.RetryBurst
		if burst <= 0 {
			burst = 3
		}
		c.budget = &retryBudget{tokens: burst, limit: burst, earn: policy.RetryBudget}
	}
	return c
}

// SetPriority sets the traffic class sent in the X-Priview-Priority
// header on every request; PriorityHigh exempts this client from
// server-side brownout degradation. Call before sharing the client
// across goroutines.
func (c *Client) SetPriority(p string) { c.priority = p }

// RetryStats is a snapshot of the client's retry observability
// counters.
type RetryStats struct {
	// Attempts counts HTTP requests issued, including each first try.
	Attempts uint64
	// Retries counts attempts beyond each request's first — the
	// amplification numerator.
	Retries uint64
	// BudgetDenied counts retries refused by the retry budget.
	BudgetDenied uint64
	// BudgetTokens is the current banked balance, -1 when the budget is
	// disabled.
	BudgetTokens float64
}

// RetryStats returns the client's retry counters. Safe for concurrent
// use.
func (c *Client) RetryStats() RetryStats {
	st := RetryStats{
		Attempts:     c.attempts.Value(),
		Retries:      c.retries.Value(),
		BudgetDenied: c.budgetDenied.Value(),
		BudgetTokens: -1,
	}
	if c.budget != nil {
		st.BudgetTokens = c.budget.balance()
	}
	return st
}

// Info describes the served synopsis.
type Info struct {
	Epsilon float64 `json:"epsilon"`
	Total   float64 `json:"total"`
	D       int     `json:"d"`
	Design  string  `json:"design"`
	Views   int     `json:"views"`
	MaxK    int     `json:"max_k"`
}

// Info fetches the release metadata.
func (c *Client) Info() (*Info, error) {
	return c.InfoContext(context.Background())
}

// InfoContext is Info honoring the caller's deadline across all retry
// attempts.
func (c *Client) InfoContext(ctx context.Context) (*Info, error) {
	var info Info
	if err := c.getJSON(ctx, "/v1/info", &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Marginal fetches the reconstructed marginal over attrs using the
// given estimator — one of the Method* constants, or "" for CME.
func (c *Client) Marginal(attrs []int, method string) (*marginal.Table, error) {
	return c.MarginalContext(context.Background(), attrs, method)
}

// MarginalContext is Marginal honoring the caller's deadline across all
// retry attempts; pass a context.WithTimeout to bound the total time
// spent including backoff sleeps.
func (c *Client) MarginalContext(ctx context.Context, attrs []int, method string) (*marginal.Table, error) {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = strconv.Itoa(a)
	}
	q := url.Values{}
	q.Set("attrs", strings.Join(parts, ","))
	if method != "" {
		q.Set("method", method)
	}
	var resp marginalResponse
	if err := c.getJSON(ctx, "/v1/marginal?"+q.Encode(), &resp); err != nil {
		return nil, err
	}
	t := marginal.New(resp.Attrs)
	if len(resp.Cells) != t.Size() {
		return nil, fmt.Errorf("server: response has %d cells for %d attributes", len(resp.Cells), len(resp.Attrs))
	}
	copy(t.Cells, resp.Cells)
	return t, nil
}

// BatchQuery names one marginal in a batched request.
type BatchQuery struct {
	// Attrs is the queried attribute set.
	Attrs []int
	// Method selects the estimator (a Method* constant); "" uses the
	// batch default, and an empty batch default means the server-side
	// synopsis's configured default.
	Method string
}

// BatchAnswer is one batched answer, in request order.
type BatchAnswer struct {
	Table *marginal.Table
	// Degraded marks an answer produced by the numerical fallback chain;
	// the cells are finite and usable but may come from a different
	// estimator than requested.
	Degraded bool
}

// Marginals fetches many reconstructed marginals in one round trip (see
// MarginalsContext).
func (c *Client) Marginals(queries []BatchQuery, method string) ([]BatchAnswer, error) {
	return c.MarginalsContext(context.Background(), queries, method)
}

// MarginalsContext posts the batch to /v1/marginals and returns one
// answer per query in request order. method is the default estimator
// for queries that name none; "" defers to the server's configured
// default. The request is a POST but a pure read — the server solves
// and answers, mutating nothing — so it flows through the same
// idempotent retry loop as the GETs.
func (c *Client) MarginalsContext(ctx context.Context, queries []BatchQuery, method string) ([]BatchAnswer, error) {
	req := marginalsRequest{Queries: make([]marginalsQuery, len(queries)), Method: method}
	for i, q := range queries {
		req.Queries[i] = marginalsQuery{Attrs: q.Attrs, Method: q.Method}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("server: encoding batch: %w", err)
	}
	var resp marginalsResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/marginals", body, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(queries) {
		return nil, fmt.Errorf("server: response has %d results for %d queries", len(resp.Results), len(queries))
	}
	out := make([]BatchAnswer, len(resp.Results))
	for i, r := range resp.Results {
		t := marginal.New(r.Attrs)
		if len(r.Cells) != t.Size() {
			return nil, fmt.Errorf("server: result %d has %d cells for %d attributes", i, len(r.Cells), len(r.Attrs))
		}
		copy(t.Cells, r.Cells)
		out[i] = BatchAnswer{Table: t, Degraded: r.Degraded}
	}
	return out, nil
}

// CacheStats describes the server's query cache as reported by
// /v1/stats. Cache is false when the server runs without one.
type CacheStats struct {
	Cache     bool   `json:"cache"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Coalesced uint64 `json:"coalesced"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// Stats fetches the server's query-cache counters.
func (c *Client) Stats() (*CacheStats, error) {
	return c.StatsContext(context.Background())
}

// StatsContext is Stats honoring the caller's deadline across all retry
// attempts.
func (c *Client) StatsContext(ctx context.Context) (*CacheStats, error) {
	var st CacheStats
	if err := c.getJSON(ctx, "/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// getJSON GETs path and decodes the 200 body into v, retrying transient
// failures per the policy.
func (c *Client) getJSON(ctx context.Context, path string, v interface{}) error {
	return c.doJSON(ctx, http.MethodGet, path, nil, v)
}

// doJSON issues one API request (resending body each attempt) and
// decodes the 200 response into v, retrying transient failures per the
// policy. Only read-only requests may flow through here: retrying is
// safe precisely because they are idempotent — every GET, plus the
// pure-read POST /v1/marginals — do not route state-changing requests
// through this loop.
func (c *Client) doJSON(ctx context.Context, method, path string, reqBody []byte, v interface{}) error {
	var lastErr error
	hint := time.Duration(0)
	for attempt := 0; attempt < c.policy.maxAttempts(); attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt, hint)
			if deadline, ok := ctx.Deadline(); ok {
				if remain := time.Until(deadline); remain <= d {
					// The backoff sleep alone would consume the caller's
					// whole remaining budget; fail now rather than burn
					// the rest of the deadline asleep.
					return fmt.Errorf("server: %v remaining for %v backoff: %w (last error: %v)",
						remain.Round(time.Millisecond), d.Round(time.Millisecond),
						context.DeadlineExceeded, lastErr)
				}
			}
			if c.budget != nil && !c.budget.withdraw() {
				c.budgetDenied.Add(1)
				return fmt.Errorf("%w after %d attempts (last error: %v)", ErrRetryBudget, attempt, lastErr)
			}
			if err := c.sleep(ctx, d); err != nil {
				return fmt.Errorf("server: giving up after %d attempts: %w (last error: %v)", attempt, err, lastErr)
			}
			c.retries.Add(1)
		}
		var bodyReader io.Reader
		if reqBody != nil {
			bodyReader = bytes.NewReader(reqBody)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bodyReader)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		if reqBody != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		// Propagate the remaining budget so the server can fast-fail
		// work this client would abandon anyway.
		if deadline, ok := ctx.Deadline(); ok {
			if ms := time.Until(deadline).Milliseconds(); ms > 0 {
				req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
			}
		}
		if c.priority != "" {
			req.Header.Set(PriorityHeader, c.priority)
		}
		c.attempts.Add(1)
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("server: %w", ctx.Err())
			}
			// Connection-level failure of an idempotent GET: retry.
			lastErr = fmt.Errorf("server: %w", err)
			hint = 0
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if cerr := resp.Body.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			lastErr = fmt.Errorf("server: reading response: %w", rerr)
			hint = 0
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, v); err != nil {
				return fmt.Errorf("server: decoding response: %w", err)
			}
			if c.budget != nil {
				c.budget.deposit()
			}
			return nil
		}
		statusErr := fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		if !retryableStatus(resp.StatusCode) {
			return statusErr
		}
		lastErr = statusErr
		hint = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	}
	return fmt.Errorf("%w (after %d attempts)", lastErr, c.policy.maxAttempts())
}

// retryableStatus reports whether an idempotent request that drew this
// status is worth repeating: explicit backpressure (429) and transient
// server-side failures (5xx). Everything in the 4xx range besides 429
// reflects the request itself and will fail identically on retry.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter reads a Retry-After header in either standard form:
// delay-seconds (the form this server emits) or HTTP-date, measured
// against now. Absent or unparseable values yield 0, falling back to
// computed backoff, and both forms are clamped to retryAfterCap — a
// skewed clock or hostile date must not schedule an hour-long sleep.
func parseRetryAfter(v string, now time.Time) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return clampRetryAfter(time.Duration(secs) * time.Second)
	}
	t, err := http.ParseTime(v)
	if err != nil {
		return 0
	}
	return clampRetryAfter(t.Sub(now))
}

func clampRetryAfter(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	if d > retryAfterCap {
		return retryAfterCap
	}
	return d
}

// backoff computes the sleep before the attempt-th try (attempt ≥ 1):
// a server-sent Retry-After hint verbatim, else exponential growth from
// BaseDelay with half-interval jitter so synchronized clients desync.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		if hint > retryAfterCap {
			hint = retryAfterCap
		}
		return hint
	}
	d := c.policy.baseDelay() << uint(attempt-1)
	if max := c.policy.maxDelay(); d > max || d <= 0 {
		d = max
	}
	// Jitter in [d/2, d).
	return d/2 + time.Duration(c.rng.next()%uint64(d/2+1))
}

// sleep waits for d or until ctx is done, whichever comes first.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitterRand is a tiny deterministic splitmix64 PRNG for retry jitter.
// Jitter is not privacy-relevant randomness, so it must not draw from
// internal/noise (whose draws are attributable to a privacy budget); a
// fixed-seed generator keeps client behavior reproducible in
// fault-injection tests. The atomic counter makes it safe for
// concurrent use by a shared Client.
type jitterRand struct {
	state atomic.Uint64
}

func (r *jitterRand) next() uint64 {
	z := r.state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
