package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"priview/internal/marginal"
)

func TestClientRoundTrip(t *testing.T) {
	s, syn := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := NewClient(ts.URL, nil)

	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.D != 9 || info.Design != "C2(6,3)" {
		t.Errorf("info = %+v", info)
	}

	got, err := c.Marginal([]int{0, 4, 8}, "")
	if err != nil {
		t.Fatal(err)
	}
	want := syn.Query([]int{0, 4, 8})
	if !marginal.Equal(got, want, 1e-9) {
		t.Error("client marginal differs from direct query")
	}

	if _, err := c.Marginal([]int{0, 5}, "CLN"); err != nil {
		t.Errorf("CLN via client: %v", err)
	}
}

func TestClientErrorSurface(t *testing.T) {
	s, _ := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := NewClient(ts.URL+"/", nil) // trailing slash handled

	if _, err := c.Marginal([]int{0, 99}, ""); err == nil {
		t.Error("out-of-range attribute did not error")
	}
	if _, err := c.Marginal([]int{0}, "bogus"); err == nil {
		t.Error("bogus method did not error")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens on port 1
	if _, err := c.Info(); err == nil {
		t.Error("expected connection error")
	}
}

func TestNilClientGetsDefaultTimeout(t *testing.T) {
	c := NewClient("http://example.invalid", nil)
	if c.hc.Timeout != DefaultClientTimeout {
		t.Errorf("nil-client default timeout = %v, want %v (http.DefaultClient would hang forever)", c.hc.Timeout, DefaultClientTimeout)
	}
	custom := &http.Client{Timeout: time.Second}
	if got := NewClient("http://example.invalid", custom); got.hc != custom {
		t.Error("explicit client replaced")
	}
}

func TestRetryableStatus(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusOK:                  false,
		http.StatusBadRequest:          false,
		http.StatusNotFound:            false,
		http.StatusTooManyRequests:     true,
		http.StatusInternalServerError: true,
		http.StatusBadGateway:          true,
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      true,
	} {
		if got := retryableStatus(code); got != want {
			t.Errorf("retryableStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2015, 10, 21, 7, 28, 0, 0, time.UTC)
	for raw, want := range map[string]time.Duration{
		"":      0,
		"2":     2 * time.Second,
		" 10 ":  10 * time.Second,
		"-1":    0,
		"soon":  0,
		"86400": retryAfterCap, // delay-seconds clamped to the cap
		// HTTP-date form, measured against now.
		"Wed, 21 Oct 2015 07:28:05 GMT": 5 * time.Second,
		"Wed, 21 Oct 2015 07:27:00 GMT": 0,             // already past
		"Thu, 22 Oct 2015 07:28:00 GMT": retryAfterCap, // clamped
		"Wed, 99 Oct 2015 07:28:00 GMT": 0,             // malformed date
	} {
		if got := parseRetryAfter(raw, now); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", raw, got, want)
		}
	}
}

func TestBackoffGrowsAndHonorsHint(t *testing.T) {
	c := NewClientWithPolicy("http://example.invalid", nil, RetryPolicy{
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  time.Second,
		Seed:      3,
	})
	// No hint: jittered exponential within [base/2^1 .. max).
	for attempt := 1; attempt <= 6; attempt++ {
		d := c.backoff(attempt, 0)
		full := 100 * time.Millisecond << uint(attempt-1)
		if full > time.Second {
			full = time.Second
		}
		if d < full/2 || d >= full+time.Millisecond {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d, full/2, full)
		}
	}
	// A server hint overrides the computed backoff...
	if d := c.backoff(1, 3*time.Second); d != 3*time.Second {
		t.Errorf("hinted backoff = %v, want 3s", d)
	}
	// ...but absurd hints are capped.
	if d := c.backoff(1, time.Hour); d != retryAfterCap {
		t.Errorf("capped hinted backoff = %v, want %v", d, retryAfterCap)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		c := NewClientWithPolicy("http://example.invalid", nil, RetryPolicy{Seed: seed})
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = c.backoff(2, 0)
		}
		return out
	}
	a, b := seq(5), seq(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
}
