package server

import (
	"net/http/httptest"
	"testing"

	"priview/internal/marginal"
)

func TestClientRoundTrip(t *testing.T) {
	s, syn := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := NewClient(ts.URL, nil)

	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.D != 9 || info.Design != "C2(6,3)" {
		t.Errorf("info = %+v", info)
	}

	got, err := c.Marginal([]int{0, 4, 8}, "")
	if err != nil {
		t.Fatal(err)
	}
	want := syn.Query([]int{0, 4, 8})
	if !marginal.Equal(got, want, 1e-9) {
		t.Error("client marginal differs from direct query")
	}

	if _, err := c.Marginal([]int{0, 5}, "CLN"); err != nil {
		t.Errorf("CLN via client: %v", err)
	}
}

func TestClientErrorSurface(t *testing.T) {
	s, _ := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := NewClient(ts.URL+"/", nil) // trailing slash handled

	if _, err := c.Marginal([]int{0, 99}, ""); err == nil {
		t.Error("out-of-range attribute did not error")
	}
	if _, err := c.Marginal([]int{0}, "bogus"); err == nil {
		t.Error("bogus method did not error")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens on port 1
	if _, err := c.Info(); err == nil {
		t.Error("expected connection error")
	}
}
