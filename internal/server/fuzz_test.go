package server

import "testing"

// FuzzParseAttrs hardens the query-string attribute parser.
func FuzzParseAttrs(f *testing.F) {
	f.Add("1,2,3")
	f.Add("")
	f.Add("0")
	f.Add("-1,5")
	f.Add("1,,2")
	f.Add("999999999999999999999")
	f.Add(" 7 , 8 ")
	f.Fuzz(func(t *testing.T, raw string) {
		attrs, err := parseAttrs(raw)
		if err != nil {
			return
		}
		if len(attrs) == 0 {
			t.Fatal("success with empty attribute list")
		}
		for i := 1; i < len(attrs); i++ {
			if attrs[i] <= attrs[i-1] {
				t.Fatalf("output not strictly sorted: %v", attrs)
			}
		}
	})
}
