package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/noise"
	"priview/internal/qcache"
)

// benchServerSynopsis builds a d=32 release whose 8-way query needs a
// real reconstruction solve, mirroring the qcache package benchmarks at
// the HTTP layer.
func benchServerSynopsis(b *testing.B) *core.Synopsis {
	b.Helper()
	data := synth.Kosarak(20000, 42)
	dg := covering.Best(32, 8, 2, 1, 2)
	return core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg}, noise.NewStream(43))
}

const benchServerPath = "/v1/marginal?attrs=0,4,9,13,17,22,26,30"

func benchMarginal(b *testing.B, handler *Server) {
	b.Helper()
	req := httptest.NewRequest(http.MethodGet, benchServerPath, nil)
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerMarginalUncached is the serving path before this
// change: every request re-runs the solve.
func BenchmarkServerMarginalUncached(b *testing.B) {
	handler := New(benchServerSynopsis(b), 0)
	b.ReportAllocs()
	b.ResetTimer()
	benchMarginal(b, handler)
}

// BenchmarkServerMarginalCached is the full stack — mux, middleware,
// CachedQuerier, JSON encoding — in cache steady state. The residual
// cost is HTTP + JSON, not reconstruction.
func BenchmarkServerMarginalCached(b *testing.B) {
	cq := NewCachedQuerier(benchServerSynopsis(b), qcache.New(1024, 64<<20))
	handler := New(cq, 0)
	// Warm the one hot key.
	req := httptest.NewRequest(http.MethodGet, benchServerPath, nil)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm status = %d", rec.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	benchMarginal(b, handler)
	b.StopTimer()
	st, _ := cq.CacheStats()
	if st.Misses != 1 {
		b.Fatalf("stats = %+v, want exactly the warming miss", st)
	}
}
