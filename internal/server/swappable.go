package server

import (
	"context"
	"sync/atomic"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/marginal"
	"priview/internal/qcache"
)

// Swappable is a Querier whose backing synopsis can be replaced
// atomically while queries are in flight — the hot-reload primitive
// behind priview-serve's SIGHUP handling. In-flight queries finish
// against the synopsis they started with; new queries see the
// replacement. Swap never blocks the query path.
type Swappable struct {
	v atomic.Value
}

// querierBox gives atomic.Value the single consistent concrete type it
// requires even as the underlying Querier implementations vary.
type querierBox struct{ q Querier }

// NewSwappable returns a Swappable initially serving q.
func NewSwappable(q Querier) *Swappable {
	s := &Swappable{}
	s.v.Store(querierBox{q: q})
	return s
}

// Swap atomically replaces the backing synopsis.
func (s *Swappable) Swap(q Querier) { s.v.Store(querierBox{q: q}) }

// Current returns the Querier new queries are served from.
func (s *Swappable) Current() Querier { return s.v.Load().(querierBox).q }

// QueryMethodContext implements Querier.
func (s *Swappable) QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error) {
	return s.Current().QueryMethodContext(ctx, attrs, method)
}

// QueryBatch implements BatchQuerier by delegating to the current
// querier, falling back to the sequential loop when it cannot batch. A
// batch pins the querier current at its start; a mid-batch Swap does
// not split answers across synopses.
func (s *Swappable) QueryBatch(ctx context.Context, reqs []core.BatchRequest, opt core.BatchOptions) ([]core.BatchResult, error) {
	return queryBatch(ctx, s.Current(), reqs, opt)
}

// DefaultMethod implements DefaultMethoder by delegating to the current
// querier; CME when it exposes no default.
func (s *Swappable) DefaultMethod() core.ReconstructMethod {
	return defaultMethod(s.Current())
}

// Epsilon implements Querier.
func (s *Swappable) Epsilon() float64 { return s.Current().Epsilon() }

// Total implements Querier.
func (s *Swappable) Total() float64 { return s.Current().Total() }

// Views implements Querier.
func (s *Swappable) Views() []*marginal.Table { return s.Current().Views() }

// Design implements Querier.
func (s *Swappable) Design() *covering.Design { return s.Current().Design() }

// CacheStats implements CacheStatser by delegating to the current
// querier; enabled is false when it maintains no cache.
func (s *Swappable) CacheStats() (qcache.Stats, bool) {
	if cs, ok := s.Current().(CacheStatser); ok {
		return cs.CacheStats()
	}
	return qcache.Stats{}, false
}

// QueryCached implements CacheOnlyQuerier by delegating to the current
// querier; a bare synopsis with no cache simply never hits.
func (s *Swappable) QueryCached(attrs []int, method core.ReconstructMethod) (*marginal.Table, bool) {
	if cq, ok := s.Current().(CacheOnlyQuerier); ok {
		return cq.QueryCached(attrs, method)
	}
	return nil, false
}
