package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"time"

	"priview/internal/attrset"
	"priview/internal/core"
	"priview/internal/reconstruct"
	"priview/internal/telemetry"
)

// BatchQuerier is the batched query surface: answer many marginal
// requests in one call, deduplicating identical requests and sharing
// solver precompute across them. *core.Synopsis implements it; wrappers
// (CachedQuerier, Swappable, registry leases) forward it explicitly.
type BatchQuerier interface {
	QueryBatch(ctx context.Context, reqs []core.BatchRequest, opt core.BatchOptions) ([]core.BatchResult, error)
}

// DefaultMethoder is implemented by Queriers that carry a configured
// default estimator (core.Synopsis does, via Config.Method). The warm
// path and the batch handler consult it so "no method named" means the
// synopsis's own default, not a hardcoded CME.
type DefaultMethoder interface {
	DefaultMethod() core.ReconstructMethod
}

// defaultMethod resolves the estimator used when a request names none:
// the querier's configured default when it exposes one, else CME (the
// paper's proposed method and core's zero-value default).
func defaultMethod(q Querier) core.ReconstructMethod {
	if dm, ok := q.(DefaultMethoder); ok {
		return dm.DefaultMethod()
	}
	return core.CME
}

// queryBatch answers reqs against q — natively when q implements
// BatchQuerier, else via the sequential fallback — so every call site
// serves both real synopses and minimal test Queriers.
func queryBatch(ctx context.Context, q Querier, reqs []core.BatchRequest, opt core.BatchOptions) ([]core.BatchResult, error) {
	if bq, ok := q.(BatchQuerier); ok {
		return bq.QueryBatch(ctx, reqs, opt)
	}
	return QueryBatchSequential(ctx, q, reqs)
}

// QueryBatchSequential answers reqs with a plain QueryMethodContext
// loop: no deduplication, no shared precompute, no parallelism. It is
// the semantic baseline QueryBatch is measured against (the two must
// agree bit-for-bit) and the fallback for Queriers that cannot batch.
// A request failing without a table — cancellation, or an internal
// failure of a non-core Querier — fails the whole batch, matching
// QueryBatch's no-partial-results contract.
func QueryBatchSequential(ctx context.Context, q Querier, reqs []core.BatchRequest) ([]core.BatchResult, error) {
	out := make([]core.BatchResult, len(reqs))
	for i, r := range reqs {
		t, err := q.QueryMethodContext(ctx, r.Attrs, r.Method)
		if t == nil {
			if err == nil {
				err = fmt.Errorf("server: querier returned no table for attrs %v", r.Attrs)
			}
			return nil, err
		}
		out[i] = core.BatchResult{Table: t, Err: err}
	}
	return out, nil
}

// maxMarginalsBody bounds the request body of POST /v1/marginals; a
// batch of MaxBatch queries over MaxK attributes fits in a small
// fraction of this.
const maxMarginalsBody = 1 << 20

// marginalsQuery is one query inside a batched request.
type marginalsQuery struct {
	Attrs  []int  `json:"attrs"`
	Method string `json:"method,omitempty"`
}

// marginalsRequest is the POST /v1/marginals body. Method is the
// default estimator for queries that name none; empty means the served
// synopsis's configured default.
type marginalsRequest struct {
	Queries []marginalsQuery `json:"queries"`
	Method  string           `json:"method,omitempty"`
}

// marginalsResponse answers a batch: one marginalResponse per query, in
// request order.
type marginalsResponse struct {
	Results []marginalResponse `json:"results"`
}

// batchErrorItem locates one invalid query inside a rejected batch.
type batchErrorItem struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// batchErrorResponse is the 400 body for an invalid batch: a summary
// plus one entry per offending index, so a client fixes every problem
// in one round trip instead of peeling them off a bare 400 one at a
// time.
type batchErrorResponse struct {
	Error  string           `json:"error"`
	Errors []batchErrorItem `json:"errors"`
}

// batchEnv extends serveEnv with the batch handler's knobs. ov may be
// nil in tests that drive the handler bare.
type batchEnv struct {
	serveEnv
	ov       *overload
	maxBatch int
	workers  int // QueryBatch worker bound; ≤ 0 = GOMAXPROCS
}

// parseBatch validates and canonicalizes a decoded batch against q,
// collecting every per-index problem instead of stopping at the first.
// The returned requests are only meaningful when items is empty.
func parseBatch(req marginalsRequest, q Querier, maxK int) ([]core.BatchRequest, []batchErrorItem) {
	defMethod := defaultMethod(q)
	if req.Method != "" {
		m, ok := parseMethod(req.Method)
		if !ok {
			return nil, []batchErrorItem{{Index: -1, Error: fmt.Sprintf("unknown default method %q (want CME, CLN, LP, CLP or CME-dual)", req.Method)}}
		}
		defMethod = m
	}
	dg := q.Design()
	reqs := make([]core.BatchRequest, len(req.Queries))
	var items []batchErrorItem
	bad := func(i int, format string, args ...interface{}) {
		items = append(items, batchErrorItem{Index: i, Error: fmt.Sprintf(format, args...)})
	}
	for i, query := range req.Queries {
		if len(query.Attrs) == 0 {
			bad(i, "attrs is required")
			continue
		}
		set, err := attrset.FromAttrs(query.Attrs)
		if err != nil {
			// The typed attrset errors (ErrRange, ErrDuplicate) name the
			// offending attribute themselves.
			bad(i, "%v", err)
			continue
		}
		if set.Card() > maxK {
			bad(i, "at most %d attributes per query", maxK)
			continue
		}
		if dg != nil {
			out := false
			set.ForEach(func(a int) {
				if a >= dg.D {
					out = true
				}
			})
			if out {
				bad(i, "attribute out of range (d=%d)", dg.D)
				continue
			}
		}
		method := defMethod
		if query.Method != "" {
			m, ok := parseMethod(query.Method)
			if !ok {
				bad(i, "unknown method %q (want CME, CLN, LP, CLP or CME-dual)", query.Method)
				continue
			}
			method = m
		}
		reqs[i] = core.BatchRequest{Attrs: set.Attrs(), Method: method}
	}
	return reqs, items
}

// writeBatchError answers an invalid batch with the per-index 400 body.
func writeBatchError(w http.ResponseWriter, logger *log.Logger, items []batchErrorItem) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	resp := batchErrorResponse{
		Error:  fmt.Sprintf("invalid batch: %d invalid queries", len(items)),
		Errors: items,
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		logger.Printf("server: encoding batch error response: %v", err)
	}
}

// uniqueSolves counts the distinct (attribute set, method) pairs in
// reqs — the work QueryBatch actually performs after deduplication —
// and the distinct methods present, for the deadline gate and the
// service-time observation.
func uniqueSolves(reqs []core.BatchRequest) (n int, methods map[core.ReconstructMethod]bool) {
	type key struct {
		mask   attrset.Set
		method core.ReconstructMethod
	}
	seen := make(map[key]bool, len(reqs))
	methods = make(map[core.ReconstructMethod]bool)
	for _, r := range reqs {
		k := key{mask: attrset.MustFromAttrs(r.Attrs), method: r.Method}
		if !seen[k] {
			seen[k] = true
			n++
			methods[r.Method] = true
		}
	}
	return n, methods
}

// serveMarginals validates, solves and answers one batched marginal
// request against q. Shared between the singleton Server and the
// multi-tenant router, which resolves q per release.
//
// The deadline gate lives here rather than in the deadlined middleware:
// a batch's expected service time scales with its deduplicated size
// divided by the solver parallelism, which is only known after the body
// is parsed — gating a 200-query batch against one query's EWMA would
// admit doomed batches, and the converse would 504 every batch a single
// query's estimate happens to exceed.
func serveMarginals(w http.ResponseWriter, r *http.Request, q Querier, env batchEnv) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxMarginalsBody+1))
	if err != nil {
		http.Error(w, "reading request body", http.StatusBadRequest)
		return
	}
	if len(body) > maxMarginalsBody {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	var req marginalsRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, fmt.Sprintf("decoding request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "queries is required (non-empty array)", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > env.maxBatch {
		http.Error(w, fmt.Sprintf("at most %d queries per batch", env.maxBatch), http.StatusBadRequest)
		return
	}
	reqs, items := parseBatch(req, q, env.maxK)
	if len(items) > 0 {
		writeBatchError(w, env.logger, items)
		return
	}
	workers := env.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n, methods := uniqueSolves(reqs)
	if env.svc != nil {
		// Size-scaled deadline gate: the batch needs ~(sum of per-solve
		// estimates) / workers of wall clock; a budget below that is
		// doomed and fast-fails like the single-query gate.
		var est time.Duration
		for _, br := range reqs {
			est += env.svc.Estimate(int(br.Method))
		}
		need := est / time.Duration(workers)
		if deadline, ok := r.Context().Deadline(); ok && need > 0 {
			if remain := time.Until(deadline); remain < need {
				if env.ov != nil {
					env.ov.deadlineRejected.Add(1)
					w.Header().Set("Retry-After", retryAfterSeconds(env.ov.opt.RetryAfter))
				}
				http.Error(w, fmt.Sprintf("remaining deadline %v below expected batch service time %v (%d solves)",
					remain.Round(time.Millisecond), need.Round(time.Millisecond), n),
					http.StatusGatewayTimeout)
				return
			}
		}
	}
	// Input is validated; from here every failure is the server's, not
	// the client's (solver-level validation cannot fire: the parse above
	// is strictly stricter). The trace rides the context down through
	// qcache and core, which record their stage timings into it.
	ctx, tr := telemetry.StartTrace(r.Context())
	if env.tel != nil {
		defer env.tel.finishTrace(tr, env.logger, env.slow, r.URL.Path, func() string {
			return fmt.Sprintf("batch=%d solves=%d", len(reqs), n)
		})
	}
	start := time.Now()
	results, err := queryBatch(ctx, q, reqs, core.BatchOptions{Workers: env.workers})
	if err != nil {
		var be *core.BatchError
		switch {
		case errors.As(err, &be):
			items := make([]batchErrorItem, len(be.Items))
			for i, it := range be.Items {
				items[i] = batchErrorItem{Index: it.Index, Error: it.Err.Error()}
			}
			writeBatchError(w, env.logger, items)
		case errors.Is(err, reconstruct.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
			http.Error(w, "batch deadline exceeded", http.StatusGatewayTimeout)
		case errors.Is(err, reconstruct.ErrCanceled) || errors.Is(err, context.Canceled):
			w.WriteHeader(statusClientClosedRequest)
		default:
			env.logger.Printf("server: batch of %d failed: %v", len(reqs), err)
			http.Error(w, "internal error", http.StatusInternalServerError)
		}
		return
	}
	if (env.svc != nil || env.tel != nil) && n > 0 {
		// Normalize the batch's wall clock back to a per-solve service
		// time so batches and singles feed one EWMA: n solves across w
		// workers take ~n/w solve-times of wall clock. The solve-time
		// histograms get the same normalized value for the same reason.
		weff := workers
		if weff > n {
			weff = n
		}
		perSolve := time.Duration(int64(time.Since(start)) * int64(weff) / int64(n))
		for m := range methods {
			if env.svc != nil {
				env.svc.Observe(int(m), perSolve)
			}
			if env.tel != nil {
				env.tel.observeSolve(m, perSolve)
			}
		}
	}
	resp := marginalsResponse{Results: make([]marginalResponse, len(results))}
	degraded := 0
	for i, res := range results {
		resp.Results[i] = marginalResponse{
			Attrs:    res.Table.Attrs,
			Method:   reqs[i].Method.String(),
			Total:    res.Table.Total(),
			Cells:    res.Table.Cells,
			Degraded: res.Degraded(),
		}
		if res.Degraded() {
			degraded++
		}
	}
	if degraded > 0 {
		env.logger.Printf("server: batch of %d answered with %d degraded members", len(reqs), degraded)
	}
	writeJSON(w, env.logger, resp)
}
