package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"priview/internal/admission"
	"priview/internal/reconstruct"
	"priview/internal/telemetry"
)

// Resolution errors — the vocabulary a release registry speaks to the
// multi-tenant router. The router maps them onto HTTP statuses:
//
//	ErrUnknownRelease → 404
//	UnavailableError  → 503 + Retry-After (breaker open, load backoff)
//	SaturatedError    → 429 + Retry-After (per-release bulkhead full)
//	RateLimitedError  → 429 + Retry-After (per-tenant token bucket dry)
var ErrUnknownRelease = errors.New("server: unknown release")

// UnavailableError reports that a release exists but cannot serve right
// now — its circuit breaker is open, its loader is in backoff, or it is
// half-open with a probe already in flight. RetryAfter tells clients
// when trying again might succeed.
type UnavailableError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("server: release unavailable: %s (retry after %v)", e.Reason, e.RetryAfter)
}

// SaturatedError reports that the release's own inflight bulkhead is
// full. It is deliberately distinct from global shedding: one hot
// tenant saturates itself, not the fleet.
type SaturatedError struct {
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("server: release at capacity (retry after %v)", e.RetryAfter)
}

// RateLimitedError reports that the tenant's token-bucket rate limit
// refused the request. Like saturation it maps to 429, but it is a
// different condition — saturation is too much concurrency right now,
// rate limiting is too many requests over the refill window — and
// RetryAfter here says when the bucket will hold a token again.
type RateLimitedError struct {
	RetryAfter time.Duration
}

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("server: release rate limited (retry after %v)", e.RetryAfter)
}

// Lease is an admitted, loaded release: a Querier plus the obligation
// to Close it, which returns the release's bulkhead permit. Queries
// issued through the lease keep answering from the synopsis resolved at
// acquire time even if the release is reloaded or evicted mid-query.
type Lease interface {
	Querier
	Close()
}

// Resolver is the registry surface the multi-tenant router serves from.
// internal/registry implements it.
type Resolver interface {
	// Acquire resolves name to a loaded release and takes one bulkhead
	// permit, lazily loading the release on first hit. The returned
	// Lease must be Closed. Errors are the resolution vocabulary above.
	Acquire(ctx context.Context, name string) (Lease, error)
	// ReleaseStats returns the release's observability snapshot (an
	// arbitrary JSON-marshalable value) without loading or touching it.
	ReleaseStats(name string) (any, error)
	// Releases lists the currently registered release names, sorted.
	Releases() []string
	// Ready reports whether the registry has completed its initial
	// scan — the /readyz gate.
	Ready() bool
}

// Multi is the multi-tenant HTTP front: named-release routes
// (/v1/{release}/marginal|info|stats) resolved through a Resolver, with
// the legacy unprefixed routes aliasing a configured default release.
// The failure-model middleware (panic recovery, global shedding,
// per-request deadline) is identical to the singleton Server's; the
// per-release bulkheads, breakers and quotas live behind Acquire.
type Multi struct {
	res      Resolver
	def      string // default release for legacy routes; "" = none
	mux      *http.ServeMux
	opt      Options
	inflight chan struct{} // global shed, on top of per-release bulkheads
	ov       *overload
	tel      *Metrics
	draining atomic.Bool
}

// NewMulti returns a router serving every release res resolves.
// defaultRelease, when non-empty, is the release the legacy unprefixed
// /v1/marginal, /v1/info and /v1/stats routes alias.
func NewMulti(res Resolver, defaultRelease string, opt Options) *Multi {
	if opt.MaxK <= 0 {
		opt.MaxK = 12
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = time.Second
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 256
	}
	if opt.Logger == nil {
		opt.Logger = log.Default()
	}
	reg := opt.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &Multi{res: res, def: defaultRelease, mux: http.NewServeMux(), opt: opt, ov: newOverload(opt), tel: NewMetrics(reg)}
	if opt.MaxInflight > 0 && m.ov.ctrl == nil {
		m.inflight = make(chan struct{}, opt.MaxInflight)
	}
	m.tel.instrumentOverload(m.ov)
	// Routes are instrumented under their registered patterns, so the
	// route label stays a closed set — release names never reach it
	// (they label the registry's per-release series instead). Legacy
	// aliases get their own instrumented wrapper under their own
	// pattern; /metrics is deliberately uninstrumented.
	m.mux.Handle("/metrics", m.recovered(reg.Handler()))
	m.mux.Handle("/healthz", m.tel.instrumented("/healthz", m.recovered(http.HandlerFunc(m.handleHealth))))
	m.mux.Handle("/readyz", m.tel.instrumented("/readyz", m.recovered(http.HandlerFunc(m.handleReady))))
	m.mux.Handle("/v1/releases", m.tel.instrumented("/v1/releases", m.recovered(http.HandlerFunc(m.handleReleases))))
	// Named-release routes plus the legacy aliases. Order of middleware
	// matches the singleton server: shed before arming the deadline.
	inner := m.ov.deadlined(http.HandlerFunc(m.handleMarginal))
	var marginal http.Handler
	if m.ov.ctrl != nil {
		marginal = m.recovered(m.ov.admitted(inner, m.tryCacheOnly))
	} else {
		marginal = m.recovered(m.shedding(inner))
	}
	m.mux.Handle("/v1/{release}/marginal", m.tel.instrumented("/v1/{release}/marginal", marginal))
	m.mux.Handle("/v1/marginal", m.tel.instrumented("/v1/marginal", marginal))
	innerBatch := m.ov.deadlined(http.HandlerFunc(m.handleMarginals))
	var marginals http.Handler
	if m.ov.ctrl != nil {
		marginals = m.recovered(m.ov.admitted(innerBatch, m.tryCacheOnly))
	} else {
		marginals = m.recovered(m.shedding(innerBatch))
	}
	m.mux.Handle("/v1/{release}/marginals", m.tel.instrumented("/v1/{release}/marginals", marginals))
	m.mux.Handle("/v1/marginals", m.tel.instrumented("/v1/marginals", marginals))
	info := m.recovered(http.HandlerFunc(m.handleInfo))
	m.mux.Handle("/v1/{release}/info", m.tel.instrumented("/v1/{release}/info", info))
	m.mux.Handle("/v1/info", m.tel.instrumented("/v1/info", info))
	stats := m.recovered(http.HandlerFunc(m.handleStats))
	m.mux.Handle("/v1/{release}/stats", m.tel.instrumented("/v1/{release}/stats", stats))
	m.mux.Handle("/v1/stats", m.tel.instrumented("/v1/stats", stats))
	return m
}

// Metrics exposes the router's telemetry handle set (the same object
// GET /metrics serves) so owners can wire the release registry and
// clients onto the shared scrape surface.
func (m *Multi) Metrics() *Metrics { return m.tel }

// ServeHTTP implements http.Handler.
func (m *Multi) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mux.ServeHTTP(w, r)
}

// SetDraining flips the draining state (see Server.SetDraining).
func (m *Multi) SetDraining(v bool) { m.draining.Store(v) }

// Draining reports whether the router is refusing its health probe.
func (m *Multi) Draining() bool { return m.draining.Load() }

// AdmissionStats snapshots the router-wide overload-control counters
// (the same object /v1/releases serves), or nil when no overload
// machinery has engaged. For operator logging.
func (m *Multi) AdmissionStats() *admission.Stats { return m.ov.stats() }

// releaseName resolves which release a request addresses: the {release}
// path segment, or the configured default for legacy routes. ok is
// false for a legacy route with no default configured.
func (m *Multi) releaseName(r *http.Request) (string, bool) {
	if name := r.PathValue("release"); name != "" {
		return name, true
	}
	return m.def, m.def != ""
}

// tryCacheOnly is the brownout hook: resolve the release and answer the
// marginal from its memoized cache alone. Resolution failures return
// false — the normal path owns the 404/503/429 mapping, and a request
// that would fail resolution must fail identically in and out of
// brownout.
func (m *Multi) tryCacheOnly(w http.ResponseWriter, r *http.Request) bool {
	name, ok := m.releaseName(r)
	if !ok {
		return false
	}
	lease, err := m.res.Acquire(r.Context(), name)
	if err != nil {
		return false
	}
	defer lease.Close()
	return m.ov.serveCacheOnly(w, r, lease)
}

// writeResolveError maps a Resolver error onto the HTTP failure model.
func (m *Multi) writeResolveError(w http.ResponseWriter, r *http.Request, err error) {
	var unavailable *UnavailableError
	var saturated *SaturatedError
	var ratelimited *RateLimitedError
	switch {
	case errors.Is(err, ErrUnknownRelease):
		http.Error(w, "unknown release", http.StatusNotFound)
	case errors.As(err, &unavailable):
		w.Header().Set("Retry-After", retryAfterSeconds(unavailable.RetryAfter))
		http.Error(w, "release unavailable: "+unavailable.Reason, http.StatusServiceUnavailable)
	case errors.As(err, &saturated):
		w.Header().Set("Retry-After", retryAfterSeconds(saturated.RetryAfter))
		http.Error(w, "release at capacity, retry later", http.StatusTooManyRequests)
	case errors.As(err, &ratelimited):
		w.Header().Set("Retry-After", retryAfterSeconds(ratelimited.RetryAfter))
		http.Error(w, "release rate limited, retry later", http.StatusTooManyRequests)
	case errors.Is(err, reconstruct.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, reconstruct.ErrCanceled) || errors.Is(err, context.Canceled):
		w.WriteHeader(statusClientClosedRequest)
	default:
		m.opt.Logger.Printf("server: resolving release for %s: %v", r.URL.Path, err)
		http.Error(w, "internal error", http.StatusInternalServerError)
	}
}

func (m *Multi) handleMarginal(w http.ResponseWriter, r *http.Request) {
	name, ok := m.releaseName(r)
	if !ok {
		http.Error(w, "no default release configured; use /v1/{release}/marginal", http.StatusNotFound)
		return
	}
	lease, err := m.res.Acquire(r.Context(), name)
	if err != nil {
		m.writeResolveError(w, r, err)
		return
	}
	defer lease.Close()
	serveMarginal(w, r, lease, m.env())
}

func (m *Multi) env() serveEnv {
	return serveEnv{maxK: m.opt.MaxK, logger: m.opt.Logger, svc: m.ov.svc, tel: m.tel, slow: m.opt.SlowQuery}
}

func (m *Multi) handleMarginals(w http.ResponseWriter, r *http.Request) {
	name, ok := m.releaseName(r)
	if !ok {
		http.Error(w, "no default release configured; use /v1/{release}/marginals", http.StatusNotFound)
		return
	}
	lease, err := m.res.Acquire(r.Context(), name)
	if err != nil {
		m.writeResolveError(w, r, err)
		return
	}
	defer lease.Close()
	serveMarginals(w, r, lease, batchEnv{
		serveEnv: m.env(),
		ov:       m.ov,
		maxBatch: m.opt.MaxBatch,
		workers:  m.opt.BatchWorkers,
	})
}

func (m *Multi) handleInfo(w http.ResponseWriter, r *http.Request) {
	name, ok := m.releaseName(r)
	if !ok {
		http.Error(w, "no default release configured; use /v1/{release}/info", http.StatusNotFound)
		return
	}
	lease, err := m.res.Acquire(r.Context(), name)
	if err != nil {
		m.writeResolveError(w, r, err)
		return
	}
	defer lease.Close()
	serveInfo(w, r, lease, m.opt.MaxK, m.opt.Logger)
}

// handleStats serves the per-release observability snapshot. Unlike
// marginal and info it never loads or touches the release — stats on a
// cold, broken or saturated tenant must always answer, that being the
// whole point of the counters.
func (m *Multi) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name, ok := m.releaseName(r)
	if !ok {
		http.Error(w, "no default release configured; use /v1/{release}/stats", http.StatusNotFound)
		return
	}
	stats, err := m.res.ReleaseStats(name)
	if err != nil {
		m.writeResolveError(w, r, err)
		return
	}
	writeJSON(w, m.opt.Logger, stats)
}

// releasesResponse lists the registered releases plus the router-wide
// admission snapshot (omitted for a legacy semaphore configuration).
// The admission stats live here rather than on the per-release stats
// route because the controller gates the whole router, not one tenant.
type releasesResponse struct {
	Default   string           `json:"default,omitempty"`
	Releases  []string         `json:"releases"`
	Admission *admission.Stats `json:"admission,omitempty"`
}

func (m *Multi) handleReleases(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	names := m.res.Releases()
	if names == nil {
		names = []string{}
	}
	writeJSON(w, m.opt.Logger, releasesResponse{Default: m.def, Releases: names, Admission: m.ov.stats()})
}

func (m *Multi) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if m.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(m.opt.RetryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	//lint:ignore errdiscard health-probe response; a client that hung up cannot be told about it
	fmt.Fprintln(w, "ok")
}

// handleReady answers 200 only when the registry has completed its
// initial scan and the instance is not draining — the gate a load
// balancer checks before routing traffic to a fresh replica, distinct
// from the liveness probe (/healthz) that merely proves the process
// responds.
func (m *Multi) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if m.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(m.opt.RetryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !m.res.Ready() {
		w.Header().Set("Retry-After", retryAfterSeconds(m.opt.RetryAfter))
		http.Error(w, "registry scan incomplete", http.StatusServiceUnavailable)
		return
	}
	//lint:ignore errdiscard health-probe response; a client that hung up cannot be told about it
	fmt.Fprintln(w, "ready")
}

// recovered and shedding mirror the singleton Server's middleware; the
// multi router keeps its own copies because its shedding is the
// *global* backstop — per-release bulkheads are the Resolver's job.
// The deadline middleware is the shared overload.deadlined.
func (m *Multi) recovered(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				m.opt.Logger.Printf("server: panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack())
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

func (m *Multi) shedding(h http.Handler) http.Handler {
	if m.inflight == nil {
		return h
	}
	retryAfter := retryAfterSeconds(m.opt.RetryAfter)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case m.inflight <- struct{}{}:
			defer func() { <-m.inflight }()
			h.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", retryAfter)
			http.Error(w, "server at capacity, retry later", http.StatusTooManyRequests)
		}
	})
}
