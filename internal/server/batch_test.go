package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"priview/internal/admission"
	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/qcache"
)

func postMarginals(t *testing.T, h http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

type wireBatchResponse struct {
	Results []struct {
		Attrs    []int     `json:"attrs"`
		Method   string    `json:"method"`
		Total    float64   `json:"total"`
		Cells    []float64 `json:"cells"`
		Degraded bool      `json:"degraded"`
	} `json:"results"`
}

type wireBatchError struct {
	Error  string `json:"error"`
	Errors []struct {
		Index int    `json:"index"`
		Error string `json:"error"`
	} `json:"errors"`
}

// TestMarginalsBatchMatchesSingles verifies POST /v1/marginals answers
// every query identically to the single-query GET route, in request
// order.
func TestMarginalsBatchMatchesSingles(t *testing.T) {
	s, syn := testServer(t)
	body := map[string]interface{}{
		"queries": []map[string]interface{}{
			{"attrs": []int{0, 1}},
			{"attrs": []int{4}, "method": "CLN"},
			{"attrs": []int{2, 5, 8}},
		},
	}
	rec := postMarginals(t, s, "/v1/marginals", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp wireBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	wantMethods := []core.ReconstructMethod{core.CME, core.CLN, core.CME}
	for i, res := range resp.Results {
		want, err := syn.QueryMethodContext(context.Background(), res.Attrs, wantMethods[i])
		if err != nil {
			t.Fatal(err)
		}
		got := marginal.New(res.Attrs)
		copy(got.Cells, res.Cells)
		if !marginal.Equal(got, want, 0) {
			t.Errorf("result %d (%v): batch answer differs from single query", i, res.Attrs)
		}
		if res.Degraded {
			t.Errorf("result %d unexpectedly degraded", i)
		}
	}
}

// TestMarginalsPerIndexErrors verifies an invalid batch draws one 400
// with a structured per-index error body instead of a bare first-error
// 400 — and that nothing about the valid members leaks into it.
func TestMarginalsPerIndexErrors(t *testing.T) {
	s, _ := testServer(t)
	body := map[string]interface{}{
		"queries": []map[string]interface{}{
			{"attrs": []int{0, 1}},                                     // valid
			{"attrs": []int{2, 2}},                                     // duplicate
			{"attrs": []int{}},                                         // empty
			{"attrs": []int{3}, "method": "SIMPLEX9"},                  // unknown method
			{"attrs": []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}}, // over MaxK
		},
	}
	rec := postMarginals(t, s, "/v1/marginals", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp wireBatchError
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("400 body is not the structured batch error: %v: %s", err, rec.Body.String())
	}
	if len(resp.Errors) != 4 {
		t.Fatalf("got %d item errors, want 4: %+v", len(resp.Errors), resp)
	}
	wantIdx := []int{1, 2, 3, 4}
	for i, item := range resp.Errors {
		if item.Index != wantIdx[i] {
			t.Errorf("item %d: index %d, want %d", i, item.Index, wantIdx[i])
		}
		if item.Error == "" {
			t.Errorf("item %d: empty error message", i)
		}
	}
}

// TestMarginalsInputGates covers the request-shape 4xx paths.
func TestMarginalsInputGates(t *testing.T) {
	s, _ := testServer(t)
	// Wrong verb.
	req := httptest.NewRequest(http.MethodGet, "/v1/marginals", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status = %d", rec.Code)
	}
	// Empty batch.
	if rec := postMarginals(t, s, "/v1/marginals", map[string]interface{}{"queries": []int{}}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty: status = %d", rec.Code)
	}
	// Malformed JSON.
	req = httptest.NewRequest(http.MethodPost, "/v1/marginals", bytes.NewReader([]byte("{")))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed: status = %d", rec.Code)
	}
	// Oversized batch.
	over := make([]map[string]interface{}, 0, 300)
	for i := 0; i < 300; i++ {
		over = append(over, map[string]interface{}{"attrs": []int{0}})
	}
	if rec := postMarginals(t, s, "/v1/marginals", map[string]interface{}{"queries": over}); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized: status = %d", rec.Code)
	}
}

// TestMarginalsDefaultMethodFromSynopsis verifies an unadorned batch
// uses the synopsis's configured default estimator, not hardcoded CME.
func TestMarginalsDefaultMethodFromSynopsis(t *testing.T) {
	data := synth.MSNBC(3000, 21)
	dg := covering.Groups(9, 6)
	syn := core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg, Method: core.CLN}, noise.NewStream(22))
	s := New(syn, 0)
	rec := postMarginals(t, s, "/v1/marginals", map[string]interface{}{
		"queries": []map[string]interface{}{{"attrs": []int{0, 4}}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp wireBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Method != "CLN" {
		t.Errorf("method = %q, want the synopsis default CLN", resp.Results[0].Method)
	}
}

// TestMultiMarginalsRoutes verifies the batch route works through the
// multi-tenant router on both the named and legacy paths.
func TestMultiMarginalsRoutes(t *testing.T) {
	m, _, lease := newMultiFixture(t)
	body := map[string]interface{}{
		"queries": []map[string]interface{}{{"attrs": []int{0, 1}}, {"attrs": []int{3}}},
	}
	for _, path := range []string{"/v1/adult-eps1/marginals", "/v1/marginals"} {
		rec := postMarginals(t, m, path, body)
		if rec.Code != http.StatusOK {
			t.Errorf("POST %s = %d: %s", path, rec.Code, rec.Body)
			continue
		}
		var resp wireBatchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 2 {
			t.Errorf("POST %s: %d results", path, len(resp.Results))
		}
	}
	if got := lease.closed.Load(); got != 2 {
		t.Errorf("lease closed %d times, want 2", got)
	}
}

// TestCachedQuerierQueryBatch verifies the batch path through the
// cache: one inner batch for the cold misses, zero for the warm repeat,
// and coalescing with the single-query protocol on the same keys.
func TestCachedQuerierQueryBatch(t *testing.T) {
	cq, counting, syn := cachedTestSetup(t)
	ctx := context.Background()
	reqs := []core.BatchRequest{
		{Attrs: []int{0, 4}, Method: core.CME},
		{Attrs: []int{1}, Method: core.CME},
		{Attrs: []int{4, 0}, Method: core.CME}, // duplicate of the first
	}
	res, err := cq.QueryBatch(ctx, reqs, core.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := syn.QueryMethodContext(ctx, []int{0, 4}, core.CME)
	if err != nil {
		t.Fatal(err)
	}
	if !marginal.Equal(res[0].Table, want, 0) || !marginal.Equal(res[2].Table, want, 0) {
		t.Error("batch-through-cache answers diverge from direct query")
	}
	// countingQuerier hides the synopsis's BatchQuerier, so the miss set
	// runs through the sequential fallback: exactly one inner query per
	// distinct key, the in-batch duplicate deduplicated by the cache.
	if n := counting.calls.Load(); n != 2 {
		t.Errorf("%d queries reached the inner querier, want 2 (distinct keys)", n)
	}
	// Warm repeat: everything hits.
	misses := cq.cache.Stats().Misses
	if _, err := cq.QueryBatch(ctx, reqs, core.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := cq.cache.Stats().Misses; got != misses {
		t.Errorf("warm repeat added misses: %d -> %d", misses, got)
	}
	// The single-query path must hit the entries the batch populated.
	if _, err := cq.QueryMethodContext(ctx, []int{1}, core.CME); err != nil {
		t.Fatal(err)
	}
	if got := cq.cache.Stats().Misses; got != misses {
		t.Errorf("single after batch missed: %d -> %d", misses, got)
	}
	if n := counting.calls.Load(); n != 2 {
		t.Errorf("%d inner queries after warm traffic, want still 2", n)
	}
}

// TestCachedQuerierQueryBatchUnkeyableBypasses verifies a batch with an
// unkeyable member bypasses the cache wholesale, preserving the inner
// error indices.
func TestCachedQuerierQueryBatchUnkeyableBypasses(t *testing.T) {
	_, _, syn := cachedTestSetup(t)
	cq := NewCachedQuerier(syn, qcache.New(64, 1<<20))
	reqs := []core.BatchRequest{
		{Attrs: []int{0}, Method: core.CME},
		{Attrs: []int{70}, Method: core.CME}, // not maskable
	}
	_, err := cq.QueryBatch(context.Background(), reqs, core.BatchOptions{})
	var be *core.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *core.BatchError, got %v", err)
	}
	if len(be.Items) != 1 || be.Items[0].Index != 1 {
		t.Errorf("items = %+v, want one error at index 1", be.Items)
	}
	if got := cq.cache.Stats().Misses; got != 0 {
		t.Errorf("bypassing batch touched the cache: %d misses", got)
	}
}

// TestWarmUsesConfiguredDefaultMethod is the warm-path bugfix test: a
// synopsis configured with a CLN default must warm CLN keys — the keys
// its unadorned queries actually hit — not hardcoded CME ones.
func TestWarmUsesConfiguredDefaultMethod(t *testing.T) {
	data := synth.MSNBC(3000, 23)
	dg := covering.Groups(9, 6)
	syn := core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg, Method: core.CLN}, noise.NewStream(24))
	cq := NewCachedQuerier(syn, qcache.New(1024, 16<<20))
	warmed, skipped, err := cq.Warm(context.Background(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := 9 + 36 // C(9,1) + C(9,2)
	if warmed+skipped != wantKeys {
		t.Fatalf("warmed %d + skipped %d, want %d keys total", warmed, skipped, wantKeys)
	}
	if _, hit := cq.QueryCached([]int{0, 5}, core.CLN); !hit {
		t.Error("CLN key cold after warming a CLN-default synopsis")
	}
	if _, hit := cq.QueryCached([]int{0, 5}, core.CME); hit {
		t.Error("warm pass filled CME keys the default query path never reads")
	}
}

// TestMarginalsStressMixedTraffic drives concurrent batch and single
// traffic through the Multi router and a shared qcache under -race:
// the answers must stay consistent and nothing may deadlock or race.
func TestMarginalsStressMixedTraffic(t *testing.T) {
	data := synth.MSNBC(3000, 25)
	dg := covering.Groups(9, 6)
	syn := core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg}, noise.NewStream(26))
	cq := NewCachedQuerier(syn, qcache.New(256, 16<<20))
	lease := &fakeLease{Querier: cq}
	res := &fakeResolver{leases: map[string]*fakeLease{"rel": lease}, ready: true}
	m := NewMulti(res, "rel", Options{MaxK: 6, Logger: log.New(io.Discard, "", 0)})

	want, err := syn.QueryMethodContext(context.Background(), []int{0, 3}, core.CME)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if (w+i)%2 == 0 {
					rec := httptest.NewRecorder()
					m.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
						"/v1/rel/marginal?attrs=0,3&method=CME", nil))
					if rec.Code != http.StatusOK {
						t.Errorf("worker %d: single = %d: %s", w, rec.Code, rec.Body)
						return
					}
					continue
				}
				raw, _ := json.Marshal(map[string]interface{}{
					"queries": []map[string]interface{}{
						{"attrs": []int{0, 3}},
						{"attrs": []int{(w + i) % 9}},
					},
				})
				req := httptest.NewRequest(http.MethodPost, "/v1/rel/marginals", bytes.NewReader(raw))
				rec := httptest.NewRecorder()
				m.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("worker %d: batch = %d: %s", w, rec.Code, rec.Body)
					return
				}
				var resp wireBatchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				got := marginal.New(resp.Results[0].Attrs)
				copy(got.Cells, resp.Results[0].Cells)
				if !marginal.Equal(got, want, 0) {
					t.Errorf("worker %d: shared key diverged under mixed traffic", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestBrownoutServesCachedBatchesOnly: during an active brownout the
// batch route is served only when every member is a cache hit; one cold
// member refuses the whole batch with the brownout 503, and malformed
// input falls back to the normal path instead of being masked.
func TestBrownoutServesCachedBatchesOnly(t *testing.T) {
	_, base := testServer(t)
	hq := &holdQuerier{Querier: base, arrived: make(chan struct{}, 16), release: make(chan struct{})}
	cached := NewCachedQuerier(hq, qcache.New(128, 0))
	s := NewWithOptions(cached, Options{
		RetryAfter: time.Second,
		Logger:     discardLogger(),
		Admission:  &admission.Config{InitialLimit: 1, MinLimit: 1, MaxLimit: 1, MaxQueue: 1},
		Brownout:   &admission.BrownoutConfig{Enter: time.Millisecond, Exit: time.Hour},
	})

	// Warm two keys through the normal path before the storm.
	for _, p := range []string{"/v1/marginal?attrs=0,1", "/v1/marginal?attrs=1,2"} {
		if rec := get(t, s, p); rec.Code != http.StatusOK {
			t.Fatalf("warmup %s: status %d; body %q", p, rec.Code, rec.Body.String())
		}
	}
	hq.hold.Store(true)

	// Occupy the slot and the queue, then storm until brownout engages.
	done := make(chan int, 2)
	bgServe := func(path string) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		done <- rec.Code
	}
	go bgServe("/v1/marginal?attrs=2,3")
	select {
	case <-hq.arrived:
	case <-time.After(10 * time.Second):
		t.Fatal("slot-holding request never reached the querier")
	}
	go bgServe("/v1/marginal?attrs=3,4")
	waitUntil(t, "queue occupied", func() bool { return s.ov.ctrl.Stats().QueueDepth == 1 })
	deadline := time.Now().Add(10 * time.Second)
	for !s.ov.brown.Active() {
		if time.Now().After(deadline) {
			t.Fatal("brownout never engaged")
		}
		if rec := get(t, s, "/v1/marginal?attrs=4,5"); rec.Code != http.StatusTooManyRequests &&
			rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("storm request: status %d; body %q", rec.Code, rec.Body.String())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Every member cached: the whole batch is answered from the cache
	// even though every admission slot is taken.
	allHit := map[string]interface{}{"queries": []map[string]interface{}{
		{"attrs": []int{0, 1}}, {"attrs": []int{1, 2}},
	}}
	if rec := postMarginals(t, s, "/v1/marginals", allHit); rec.Code != http.StatusOK {
		t.Errorf("cached batch during brownout: status %d; body %q", rec.Code, rec.Body.String())
	} else {
		var resp wireBatchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || len(resp.Results) != 2 {
			t.Errorf("cached batch body: err=%v, %d results", err, len(resp.Results))
		}
	}
	// One cold member would cost a solve: the whole batch is refused.
	coldOne := map[string]interface{}{"queries": []map[string]interface{}{
		{"attrs": []int{0, 1}}, {"attrs": []int{5, 6}},
	}}
	rec := postMarginals(t, s, "/v1/marginals", coldOne)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "brownout") {
		t.Errorf("cold batch during brownout: status %d; body %q", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("brownout 503 carries no Retry-After")
	}
	// An invalid batch is not the brownout path's to answer: it falls
	// through to normal admission, which here sheds against a full queue.
	badReq := map[string]interface{}{"queries": []map[string]interface{}{{"attrs": []int{2, 2}}}}
	if rec := postMarginals(t, s, "/v1/marginals", badReq); rec.Code != http.StatusTooManyRequests {
		t.Errorf("invalid batch during brownout: status %d, want 429 (normal path); body %q", rec.Code, rec.Body.String())
	}
	if served := s.ov.brownoutServed.Value(); served == 0 {
		t.Error("brownoutServed counter never ticked for the cached batch")
	}

	hq.hold.Store(false)
	close(hq.release)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("held/queued request %d: status %d, want 200", i, code)
		}
	}
}

// TestClientMarginalsRoundTrip exercises Client.MarginalsContext
// against a live server: order-preserving answers and a non-retryable
// structured 400.
func TestClientMarginalsRoundTrip(t *testing.T) {
	s, syn := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	answers, err := c.MarginalsContext(context.Background(), []BatchQuery{
		{Attrs: []int{0, 1}},
		{Attrs: []int{5}, Method: MethodCLN},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("got %d answers", len(answers))
	}
	want, err := syn.QueryMethodContext(context.Background(), []int{0, 1}, core.CME)
	if err != nil {
		t.Fatal(err)
	}
	if !marginal.Equal(answers[0].Table, want, 0) {
		t.Error("client answer diverges from direct query")
	}
	// A 400 must not be retried and must carry the per-index body.
	_, err = c.MarginalsContext(context.Background(), []BatchQuery{{Attrs: []int{2, 2}}}, "")
	if err == nil {
		t.Fatal("invalid batch succeeded")
	}
	if st := c.RetryStats(); st.Retries != 0 {
		t.Errorf("400 was retried %d times", st.Retries)
	}
}
