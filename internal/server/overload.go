package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"priview/internal/admission"
	"priview/internal/telemetry"
)

// Deadline-propagation and priority headers — the contract between
// server.Client and the serving stack.
const (
	// DeadlineHeader carries the client's remaining context budget in
	// whole milliseconds. The server arms min(propagated, QueryTimeout)
	// as the request deadline, so work the client has already given up
	// on is never solved to completion server-side.
	DeadlineHeader = "X-Priview-Deadline-Ms"
	// PriorityHeader marks a request's traffic class; the value
	// PriorityHigh exempts it from brownout degradation.
	PriorityHeader = "X-Priview-Priority"
	// PriorityHigh is the PriorityHeader value for priority traffic.
	PriorityHigh = "high"
)

// maxPropagatedDeadline caps what a client header may arm, so a corrupt
// or hostile header cannot schedule absurdly long-lived requests.
const maxPropagatedDeadline = time.Hour

// parseDeadlineMs reads a DeadlineHeader value: positive whole
// milliseconds, capped at maxPropagatedDeadline. ok is false for absent
// or malformed values — the request then runs under the server's own
// QueryTimeout alone, exactly as if no header had been sent.
func parseDeadlineMs(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	d := time.Duration(ms) * time.Millisecond
	if d > maxPropagatedDeadline {
		d = maxPropagatedDeadline
	}
	return d, true
}

// overload bundles the overload-control machinery shared by the
// singleton Server and the multi-tenant router: the adaptive admission
// controller (nil when Options.Admission is unset, in which case the
// owner keeps its legacy instant-shed semaphore), the per-method
// service-time EWMA feeding the deadline gate, and the brownout
// detector. The counters are the middleware-owned half of the
// admission.Stats snapshot; they start standalone and
// Metrics.instrumentOverload swaps them for registry-backed series
// before traffic, so /metrics and the JSON stats read one set of
// numbers.
type overload struct {
	opt   Options
	ctrl  *admission.Controller // nil = legacy semaphore shedding
	svc   *admission.ServiceTime
	brown *admission.Brownout // nil = brownout disabled

	deadlineRejected *telemetry.Counter
	brownoutServed   *telemetry.Counter
	brownoutRejected *telemetry.Counter
}

func newOverload(opt Options) *overload {
	o := &overload{
		opt:              opt,
		svc:              admission.NewServiceTime(nil),
		deadlineRejected: telemetry.NewCounter(),
		brownoutServed:   telemetry.NewCounter(),
		brownoutRejected: telemetry.NewCounter(),
	}
	if opt.Admission != nil {
		cfg := *opt.Admission
		// MaxInflight keeps its meaning as the hard concurrency ceiling;
		// the controller searches below it and queues up to it.
		if opt.MaxInflight > 0 {
			if cfg.MaxLimit <= 0 {
				cfg.MaxLimit = opt.MaxInflight
			}
			if cfg.MaxQueue <= 0 {
				cfg.MaxQueue = opt.MaxInflight
			}
		}
		o.ctrl = admission.NewController(cfg)
		if opt.Brownout != nil {
			o.brown = admission.NewBrownout(*opt.Brownout)
		}
	}
	return o
}

// admitted gates h behind the adaptive admission controller. Each
// request first feeds the brownout detector; while a brownout is
// active, non-priority requests are offered to tryCacheOnly before
// consuming an admission slot, so cache hits stay cheap exactly when
// capacity is scarce. tryCacheOnly may be nil (no degraded mode).
// Callers must only install this middleware when the controller is
// enabled.
func (o *overload) admitted(h http.Handler, tryCacheOnly func(http.ResponseWriter, *http.Request) bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o.brown != nil {
			o.brown.Note(o.ctrl.Overloaded())
			if o.brown.Active() && r.Header.Get(PriorityHeader) != PriorityHigh &&
				tryCacheOnly != nil && tryCacheOnly(w, r) {
				return
			}
		}
		rel, err := o.ctrl.Acquire(r.Context())
		if err != nil {
			o.writeAcquireError(w, err)
			return
		}
		start := time.Now()
		defer func() { rel(time.Since(start)) }()
		h.ServeHTTP(w, r)
	})
}

// writeAcquireError maps a Controller.Acquire refusal onto the HTTP
// failure model: shed → 429 with the queue-depth-scaled hint, deadline
// expired while queued → 504, client gone while queued → 499.
func (o *overload) writeAcquireError(w http.ResponseWriter, err error) {
	var rej *admission.RejectedError
	switch {
	case errors.As(err, &rej):
		w.Header().Set("Retry-After", retryAfterSeconds(rej.RetryAfter))
		http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "deadline expired waiting for admission", http.StatusGatewayTimeout)
	default:
		// The client went away while queued; the status is for logs only.
		w.WriteHeader(statusClientClosedRequest)
	}
}

// deadlined arms the per-request reconstruction budget: the smaller of
// the server's QueryTimeout and the client's propagated remaining
// deadline. A request whose budget cannot cover the EWMA estimate of
// its method's service time is doomed — it would burn a solver slot
// only to time out — so it is rejected in microseconds with 504 +
// Retry-After instead.
func (o *overload) deadlined(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		budget := o.opt.QueryTimeout
		if d, ok := parseDeadlineMs(r.Header.Get(DeadlineHeader)); ok && (budget <= 0 || d < budget) {
			budget = d
		}
		if budget <= 0 {
			h.ServeHTTP(w, r)
			return
		}
		// The estimate gate only applies to single GET queries: a batch
		// POST carries its method mix in the body, so serveMarginals runs
		// the size-scaled gate itself after parsing — gating a batch
		// against one query's estimate here would be wrong in both
		// directions.
		if r.Method == http.MethodGet {
			if method, ok := parseMethod(r.URL.Query().Get("method")); ok {
				if est := o.svc.Estimate(int(method)); est > 0 && budget < est {
					o.deadlineRejected.Add(1)
					w.Header().Set("Retry-After", retryAfterSeconds(o.opt.RetryAfter))
					http.Error(w, fmt.Sprintf("remaining deadline %v below expected %s service time %v",
						budget.Round(time.Millisecond), method, est.Round(time.Millisecond)),
						http.StatusGatewayTimeout)
					return
				}
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// serveCacheOnly answers r from q's memoized cache alone — the brownout
// serving mode. A malformed request returns false so the normal path
// keeps ownership of input errors (400s must look identical in and out
// of brownout). true means handled: served from cache, or refused 503 +
// Retry-After on a miss.
func (o *overload) serveCacheOnly(w http.ResponseWriter, r *http.Request, q Querier) bool {
	if r.Method == http.MethodPost {
		return o.serveCacheOnlyBatch(w, r, q)
	}
	if r.Method != http.MethodGet {
		return false
	}
	attrs, err := parseAttrs(r.URL.Query().Get("attrs"))
	if err != nil || len(attrs) > o.opt.MaxK {
		return false
	}
	method, ok := parseMethod(r.URL.Query().Get("method"))
	if !ok {
		return false
	}
	if cq, ok := q.(CacheOnlyQuerier); ok {
		if t, hit := cq.QueryCached(attrs, method); hit {
			o.brownoutServed.Add(1)
			writeJSON(w, o.opt.Logger, marginalResponse{
				Attrs:  t.Attrs,
				Method: method.String(),
				Total:  t.Total(),
				Cells:  t.Cells,
			})
			return true
		}
	}
	o.brownoutRejected.Add(1)
	o.refuseBrownout(w)
	return true
}

// refuseBrownout writes the 503 brownout refusal with the larger of the
// configured and controller-derived Retry-After hints.
func (o *overload) refuseBrownout(w http.ResponseWriter) {
	hint := o.opt.RetryAfter
	if ra := o.ctrl.RetryAfter(); ra > hint {
		hint = ra
	}
	w.Header().Set("Retry-After", retryAfterSeconds(hint))
	http.Error(w, "brownout: serving cached answers only, retry later", http.StatusServiceUnavailable)
}

// serveCacheOnlyBatch is the brownout serving mode for the batch route:
// the batch is served only when every member is a cache hit — one cold
// member means one solve, which is exactly what brownout exists to
// avoid — and refused 503 + Retry-After otherwise. The body is buffered
// and restored so the normal path can re-read it whenever this returns
// false (malformed input must draw the same 400 in and out of
// brownout).
func (o *overload) serveCacheOnlyBatch(w http.ResponseWriter, r *http.Request, q Querier) bool {
	if !strings.HasSuffix(r.URL.Path, "/marginals") {
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxMarginalsBody+1))
	//lint:ignore errdiscard the original body is replaced either way
	r.Body.Close()
	r.Body = io.NopCloser(bytes.NewReader(body))
	if err != nil || len(body) > maxMarginalsBody {
		return false
	}
	var req marginalsRequest
	if json.Unmarshal(body, &req) != nil || len(req.Queries) == 0 || len(req.Queries) > o.opt.MaxBatch {
		return false
	}
	reqs, items := parseBatch(req, q, o.opt.MaxK)
	if len(items) > 0 {
		return false
	}
	cq, ok := q.(CacheOnlyQuerier)
	if !ok {
		o.brownoutRejected.Add(1)
		o.refuseBrownout(w)
		return true
	}
	resp := marginalsResponse{Results: make([]marginalResponse, len(reqs))}
	for i, br := range reqs {
		t, hit := cq.QueryCached(br.Attrs, br.Method)
		if !hit {
			o.brownoutRejected.Add(1)
			o.refuseBrownout(w)
			return true
		}
		resp.Results[i] = marginalResponse{
			Attrs:  t.Attrs,
			Method: br.Method.String(),
			Total:  t.Total(),
			Cells:  t.Cells,
		}
	}
	o.brownoutServed.Add(1)
	writeJSON(w, o.opt.Logger, resp)
	return true
}

// stats merges the middleware-owned counters into the controller's
// snapshot. nil when the adaptive controller is disabled and the
// deadline gate has rejected nothing — the stats surfaces omit the
// admission object entirely for a plain legacy configuration.
func (o *overload) stats() *admission.Stats {
	var st admission.Stats
	if o.ctrl != nil {
		st = o.ctrl.Stats()
	} else if o.deadlineRejected.Value() == 0 {
		return nil
	}
	st.DeadlineRejected = o.deadlineRejected.Value()
	st.BrownoutServed = o.brownoutServed.Value()
	st.BrownoutRejected = o.brownoutRejected.Value()
	st.BrownoutActive = o.brown != nil && o.brown.Active()
	return &st
}
