// Overload-control tests: the adaptive admission path, the deadline
// gate fed by propagated client budgets, brownout degradation, and the
// client-side halves (deadline header, backoff fast-fail, retry
// budget). Internal package so the tests can reach the controller and
// brownout state directly instead of sleeping and hoping.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"priview/internal/admission"
	"priview/internal/core"
	"priview/internal/marginal"
	"priview/internal/qcache"
)

func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func TestRetryAfterSecondsRoundsUp(t *testing.T) {
	for d, want := range map[time.Duration]string{
		-time.Second:            "1",
		0:                       "1",
		time.Nanosecond:         "1", // sub-second must round up, never "0"
		time.Millisecond:        "1",
		500 * time.Millisecond:  "1",
		time.Second:             "1",
		1001 * time.Millisecond: "2",
		1500 * time.Millisecond: "2",
		2 * time.Second:         "2",
		2500 * time.Millisecond: "3",
	} {
		if got := retryAfterSeconds(d); got != want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestParseDeadlineMs(t *testing.T) {
	for raw, want := range map[string]time.Duration{
		"":             0, // absent → run under the server's own timeout
		"abc":          0,
		"-5":           0,
		"0":            0,
		"1.5":          0,
		"250":          250 * time.Millisecond,
		" 250 ":        250 * time.Millisecond,
		"999999999999": maxPropagatedDeadline, // hostile header capped
	} {
		d, ok := parseDeadlineMs(raw)
		if want == 0 {
			if ok {
				t.Errorf("parseDeadlineMs(%q) = %v, ok; want rejected", raw, d)
			}
			continue
		}
		if !ok || d != want {
			t.Errorf("parseDeadlineMs(%q) = %v, %v; want %v, true", raw, d, ok, want)
		}
	}
}

// holdQuerier passes queries through until hold is set, then parks each
// one (signaling arrived) until release closes — deterministic occupancy
// of admission slots.
type holdQuerier struct {
	Querier
	hold    atomic.Bool
	arrived chan struct{} // buffered; one signal per parked query
	release chan struct{}
}

func (h *holdQuerier) QueryMethodContext(ctx context.Context, attrs []int, m core.ReconstructMethod) (*marginal.Table, error) {
	if h.hold.Load() {
		select {
		case h.arrived <- struct{}{}:
		default:
		}
		select {
		case <-h.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return h.Querier.QueryMethodContext(ctx, attrs, m)
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdaptiveAdmissionQueuesThenSheds: with the adaptive controller at
// limit 1 and a queue of 1, the first request holds the slot, the
// second waits in the queue, and the third is shed with 429 +
// Retry-After. Once the slot frees, the queued request is admitted.
func TestAdaptiveAdmissionQueuesThenSheds(t *testing.T) {
	_, base := testServer(t)
	hq := &holdQuerier{Querier: base, arrived: make(chan struct{}, 16), release: make(chan struct{})}
	hq.hold.Store(true)
	s := NewWithOptions(hq, Options{
		RetryAfter: time.Second,
		Logger:     discardLogger(),
		Admission:  &admission.Config{InitialLimit: 1, MinLimit: 1, MaxLimit: 1, MaxQueue: 1},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	codes := make(chan int, 2)
	bgGet := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			codes <- -1
			return
		}
		//lint:ignore errdiscard test teardown of a drained body
		resp.Body.Close()
		codes <- resp.StatusCode
	}
	go bgGet("/v1/marginal?attrs=0,1")
	select {
	case <-hq.arrived:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the querier")
	}
	go bgGet("/v1/marginal?attrs=1,2")
	waitUntil(t, "second request queued", func() bool { return s.ov.ctrl.Stats().QueueDepth == 1 })

	resp, err := http.Get(ts.URL + "/v1/marginal?attrs=2,3")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full request: status %d, want 429; body %q", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Errorf("shed body = %q", body)
	}

	hq.hold.Store(false)
	close(hq.release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("held/queued request %d: status %d, want 200", i, code)
		}
	}
	st := s.ov.ctrl.Stats()
	if st.Admitted != 2 || st.Shed != 1 {
		t.Errorf("controller stats = %+v, want 2 admitted, 1 shed", st)
	}
}

// TestDeadlineGateFastFails504: once the service-time EWMA knows a
// method's cost, a request whose propagated budget cannot cover it is
// rejected 504 + Retry-After without consuming a solver slot; a request
// with ample budget still runs.
func TestDeadlineGateFastFails504(t *testing.T) {
	_, syn := testServer(t)
	s := NewWithOptions(syn, Options{QueryTimeout: 5 * time.Second, Logger: discardLogger()})
	s.ov.svc.Observe(int(core.CME), 200*time.Millisecond)

	req := httptest.NewRequest(http.MethodGet, "/v1/marginal?attrs=0,1", nil)
	req.Header.Set(DeadlineHeader, "50")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("doomed request: status %d, want 504; body %q", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("504 fast-fail carries no Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "below expected") {
		t.Errorf("fast-fail body = %q", rec.Body.String())
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/marginal?attrs=0,1", nil)
	req.Header.Set(DeadlineHeader, "10000")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("well-budgeted request: status %d; body %q", rec.Code, rec.Body.String())
	}

	// The deadline gate's counter surfaces even in a legacy (semaphore)
	// configuration, where the admission object exists just for it.
	stats := get(t, s, "/v1/stats")
	var resp struct {
		Admission *admission.Stats `json:"admission"`
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Admission == nil || resp.Admission.DeadlineRejected != 1 {
		t.Errorf("stats admission = %+v, want deadline_rejected=1", resp.Admission)
	}
}

// TestDeadlineHeaderArmsBudget: with no server-side QueryTimeout at
// all, the propagated header alone bounds the request.
func TestDeadlineHeaderArmsBudget(t *testing.T) {
	_, base := testServer(t)
	hq := &holdQuerier{Querier: base, arrived: make(chan struct{}, 1), release: make(chan struct{})}
	hq.hold.Store(true)
	defer close(hq.release)
	s := NewWithOptions(hq, Options{Logger: discardLogger()})

	start := time.Now()
	req := httptest.NewRequest(http.MethodGet, "/v1/marginal?attrs=0,1", nil)
	req.Header.Set(DeadlineHeader, "50")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %q", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("header deadline fired after %v; budget not armed", elapsed)
	}
}

// TestBrownoutServesCacheHitsOnly: under sustained overload the server
// answers cached queries, refuses uncached non-priority queries with
// 503, and routes priority traffic through normal admission.
func TestBrownoutServesCacheHitsOnly(t *testing.T) {
	_, base := testServer(t)
	hq := &holdQuerier{Querier: base, arrived: make(chan struct{}, 16), release: make(chan struct{})}
	cached := NewCachedQuerier(hq, qcache.New(128, 0))
	s := NewWithOptions(cached, Options{
		RetryAfter: time.Second,
		Logger:     discardLogger(),
		Admission:  &admission.Config{InitialLimit: 1, MinLimit: 1, MaxLimit: 1, MaxQueue: 1},
		Brownout:   &admission.BrownoutConfig{Enter: time.Millisecond, Exit: time.Hour},
	})

	// Warm one key through the normal path before the storm.
	if rec := get(t, s, "/v1/marginal?attrs=0,1"); rec.Code != http.StatusOK {
		t.Fatalf("warmup: status %d; body %q", rec.Code, rec.Body.String())
	}
	hq.hold.Store(true)

	// Occupy the slot and the queue.
	done := make(chan int, 2)
	bgServe := func(path string) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		done <- rec.Code
	}
	go bgServe("/v1/marginal?attrs=1,2")
	select {
	case <-hq.arrived:
	case <-time.After(10 * time.Second):
		t.Fatal("slot-holding request never reached the querier")
	}
	go bgServe("/v1/marginal?attrs=2,3")
	waitUntil(t, "queue occupied", func() bool { return s.ov.ctrl.Stats().QueueDepth == 1 })

	// Each rejected arrival feeds the brownout detector one overloaded
	// sample; after Enter of sustained signal it engages.
	deadline := time.Now().Add(10 * time.Second)
	for !s.ov.brown.Active() {
		if time.Now().After(deadline) {
			t.Fatal("brownout never engaged")
		}
		if rec := get(t, s, "/v1/marginal?attrs=3,4"); rec.Code != http.StatusTooManyRequests &&
			rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("storm request: status %d; body %q", rec.Code, rec.Body.String())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Cached key: served even though every slot is taken.
	if rec := get(t, s, "/v1/marginal?attrs=0,1"); rec.Code != http.StatusOK {
		t.Errorf("cached query during brownout: status %d; body %q", rec.Code, rec.Body.String())
	}
	// Uncached key: refused with the brownout 503.
	rec := get(t, s, "/v1/marginal?attrs=4,5")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "brownout") {
		t.Errorf("uncached query during brownout: status %d; body %q", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("brownout 503 carries no Retry-After")
	}
	// Priority traffic skips degradation and takes its chances with
	// admission — here, a full queue, so 429 rather than a cache answer.
	req := httptest.NewRequest(http.MethodGet, "/v1/marginal?attrs=0,1", nil)
	req.Header.Set(PriorityHeader, PriorityHigh)
	prioRec := httptest.NewRecorder()
	s.ServeHTTP(prioRec, req)
	if prioRec.Code != http.StatusTooManyRequests {
		t.Errorf("priority query: status %d, want 429 (normal admission); body %q", prioRec.Code, prioRec.Body.String())
	}

	var stats statsResponse
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission == nil || stats.Admission.BrownoutServed < 1 ||
		stats.Admission.BrownoutRejected < 1 || !stats.Admission.BrownoutActive {
		t.Errorf("stats admission = %+v, want brownout served/rejected counters and active", stats.Admission)
	}

	hq.hold.Store(false)
	close(hq.release)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("held/queued request %d: status %d, want 200", i, code)
		}
	}
}

// TestClientBackoffFastFailsBeforeDeadline: a computed backoff longer
// than the remaining context budget fails immediately (wrapping
// context.DeadlineExceeded) instead of sleeping through the budget.
func TestClientBackoffFastFailsBeforeDeadline(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := NewClientWithPolicy(ts.URL, nil, RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   5 * time.Second,
		MaxDelay:    10 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.InfoContext(ctx)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("fast-fail took %v; client slept through the deadline", elapsed)
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("server saw %d attempts, want 1 (backoff should never have been slept)", n)
	}
}

// TestClientRetryBudgetExhausts: with no successes funding the budget,
// retries stop when the initial burst runs out — bounded amplification
// during an outage.
func TestClientRetryBudgetExhausts(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := NewClientWithPolicy(ts.URL, nil, RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		RetryBudget: 0.1,
		RetryBurst:  1,
	})
	if _, err := c.Info(); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("first call error = %v, want ErrRetryBudget", err)
	}
	if n := hits.Load(); n != 2 {
		t.Errorf("server saw %d attempts after first call, want 2 (1 try + 1 budgeted retry)", n)
	}
	if _, err := c.Info(); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("second call error = %v, want ErrRetryBudget", err)
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d attempts total, want 3 (budget empty → no retry)", n)
	}
	st := c.RetryStats()
	if st.Retries != 1 || st.BudgetDenied != 2 || st.Attempts != 3 {
		t.Errorf("RetryStats = %+v, want 1 retry, 2 denied, 3 attempts", st)
	}
}

// TestClientPropagatesDeadlineAndPriority: every attempt carries the
// remaining context budget and the configured traffic class.
func TestClientPropagatesDeadlineAndPriority(t *testing.T) {
	var deadlineMs, priority atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadlineMs.Store(r.Header.Get(DeadlineHeader))
		priority.Store(r.Header.Get(PriorityHeader))
		w.Header().Set("Content-Type", "application/json")
		//lint:ignore errdiscard test handler response
		w.Write([]byte(`{"attrs":[0],"method":"CME","total":1,"cells":[0.5,0.5]}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := c.MarginalContext(ctx, []int{0}, ""); err != nil {
		t.Fatal(err)
	}
	ms, err := strconv.Atoi(deadlineMs.Load().(string))
	if err != nil || ms <= 0 || ms > 500 {
		t.Errorf("propagated deadline = %q, want integer in (0, 500]", deadlineMs.Load())
	}
	if priority.Load().(string) != "" {
		t.Errorf("unexpected priority header %q", priority.Load())
	}

	// No deadline on the context → no header; priority set → sent.
	c.SetPriority(PriorityHigh)
	if _, err := c.Marginal([]int{0}, ""); err != nil {
		t.Fatal(err)
	}
	if got := deadlineMs.Load().(string); got != "" {
		t.Errorf("deadline header without a context deadline = %q, want empty", got)
	}
	if got := priority.Load().(string); got != PriorityHigh {
		t.Errorf("priority header = %q, want %q", got, PriorityHigh)
	}
}
