package fourier

import "testing"

func benchVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i%13) - 6
	}
	return v
}

func BenchmarkWHT256(b *testing.B) {
	v := benchVec(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WHT(v)
	}
}

func BenchmarkWHT4096(b *testing.B) {
	v := benchVec(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WHT(v)
	}
}

func BenchmarkSubsetMasks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SubsetMasks(16, 4)
	}
}
