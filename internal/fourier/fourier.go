// Package fourier implements the Walsh–Hadamard (Fourier) analysis of
// contingency tables used by the Barak et al. baseline: a table over m
// binary attributes corresponds to 2^m coefficients
//
//	c_α = Σ_x (−1)^{α·x} T(x),
//
// and a marginal over A ⊆ attributes depends exactly on the coefficients
// whose support lies within A. The transform is an involution up to the
// 1/2^m factor, computed in place in O(m·2^m).
package fourier

import (
	"math/bits"

	"priview/internal/marginal"
)

// WHT applies the unnormalized Walsh–Hadamard transform in place. The
// input length must be a power of two. Applying it twice multiplies the
// vector by its length.
func WHT(v []float64) {
	n := len(v)
	if n == 0 || n&(n-1) != 0 {
		panic("fourier: length must be a power of two")
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := v[j], v[j+h]
				v[j] = x + y
				v[j+h] = x - y
			}
		}
	}
}

// InverseWHT inverts WHT in place.
func InverseWHT(v []float64) {
	WHT(v)
	inv := 1 / float64(len(v))
	for i := range v {
		v[i] *= inv
	}
}

// Coefficients returns the full local coefficient vector of a marginal
// table: entry β (a bitmask over the table's attribute positions) holds
// c_β = Σ_y (−1)^{β·y} T(y).
func Coefficients(t *marginal.Table) []float64 {
	c := append([]float64(nil), t.Cells...)
	WHT(c)
	return c
}

// FromCoefficients reconstructs a marginal table over attrs from its
// local coefficient vector (length 2^len(attrs)).
func FromCoefficients(attrs []int, coeffs []float64) *marginal.Table {
	t := marginal.New(attrs)
	if len(coeffs) != t.Size() {
		panic("fourier: coefficient vector length mismatch")
	}
	copy(t.Cells, coeffs)
	InverseWHT(t.Cells)
	return t
}

// Coefficient computes the single coefficient c_β of a marginal table
// directly (β is a bitmask over the table's attribute positions). Useful
// when only a few coefficients are needed.
func Coefficient(t *marginal.Table, beta int) float64 {
	c := 0.0
	for y, v := range t.Cells {
		if bits.OnesCount(uint(y&beta))&1 == 1 {
			c -= v
		} else {
			c += v
		}
	}
	return c
}

// SubsetMasks returns all bitmasks over m positions with popcount ≤ k,
// in increasing numeric order. These index the coefficients the Barak et
// al. method publishes to support all k-way marginals over m attributes.
func SubsetMasks(m, k int) []int {
	var out []int
	for mask := 0; mask < 1<<uint(m); mask++ {
		if bits.OnesCount(uint(mask)) <= k {
			out = append(out, mask)
		}
	}
	return out
}
