package fourier

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"priview/internal/marginal"
)

func TestWHTInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << uint(1+r.Intn(6))
		v := make([]float64, n)
		orig := make([]float64, n)
		for i := range v {
			v[i] = r.Float64()*10 - 5
			orig[i] = v[i]
		}
		WHT(v)
		InverseWHT(v)
		for i := range v {
			if math.Abs(v[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWHTMatchesDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	v := make([]float64, 8)
	for i := range v {
		v[i] = r.Float64()
	}
	c := append([]float64(nil), v...)
	WHT(c)
	for alpha := 0; alpha < 8; alpha++ {
		want := 0.0
		for x := 0; x < 8; x++ {
			if bits.OnesCount(uint(alpha&x))&1 == 1 {
				want -= v[x]
			} else {
				want += v[x]
			}
		}
		if math.Abs(c[alpha]-want) > 1e-9 {
			t.Errorf("c[%d] = %v, want %v", alpha, c[alpha], want)
		}
	}
}

func TestWHTPanicsOnBadLength(t *testing.T) {
	for _, n := range []int{0, 3, 6} {
		func() {
			defer func() { _ = recover() }()
			WHT(make([]float64, n))
			t.Errorf("WHT accepted length %d", n)
		}()
	}
}

func TestCoefficientZeroIsTotal(t *testing.T) {
	tab := marginal.New([]int{0, 1})
	tab.Cells = []float64{1, 2, 3, 4}
	if got := Coefficient(tab, 0); got != 10 {
		t.Errorf("c_0 = %v, want total 10", got)
	}
	c := Coefficients(tab)
	if c[0] != 10 {
		t.Errorf("Coefficients[0] = %v, want 10", c[0])
	}
}

func TestCoefficientMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tab := marginal.New([]int{2, 5, 7})
	for i := range tab.Cells {
		tab.Cells[i] = r.Float64() * 20
	}
	batch := Coefficients(tab)
	for beta := 0; beta < tab.Size(); beta++ {
		if got := Coefficient(tab, beta); math.Abs(got-batch[beta]) > 1e-9 {
			t.Errorf("Coefficient(%d) = %v, batch = %v", beta, got, batch[beta])
		}
	}
}

func TestFromCoefficientsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := marginal.New([]int{0, 3, 4, 9})
		for i := range tab.Cells {
			tab.Cells[i] = r.Float64() * 100
		}
		back := FromCoefficients(tab.Attrs, Coefficients(tab))
		return marginal.Equal(tab, back, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Marginalization in the table domain = coefficient restriction in the
// Fourier domain: the projection's coefficient c_β equals the original
// table's coefficient at the embedded mask.
func TestProjectionCoefficientIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tab := marginal.New([]int{0, 1, 2})
	for i := range tab.Cells {
		tab.Cells[i] = r.Float64() * 50
	}
	proj := tab.Project([]int{0, 2})
	projCoeffs := Coefficients(proj)
	// Positions of {0,2} within {0,1,2} are bits 0 and 2.
	embed := func(beta int) int {
		out := 0
		if beta&1 != 0 {
			out |= 1 // attr 0 -> bit 0
		}
		if beta&2 != 0 {
			out |= 4 // attr 2 -> bit 2
		}
		return out
	}
	for beta := 0; beta < 4; beta++ {
		want := Coefficient(tab, embed(beta))
		if math.Abs(projCoeffs[beta]-want) > 1e-9 {
			t.Errorf("projection coefficient %d = %v, want %v", beta, projCoeffs[beta], want)
		}
	}
}

func TestSubsetMasks(t *testing.T) {
	got := SubsetMasks(4, 1)
	want := []int{0, 1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("SubsetMasks(4,1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SubsetMasks(4,1) = %v, want %v", got, want)
		}
	}
	if n := len(SubsetMasks(9, 3)); n != 1+9+36+84 {
		t.Errorf("|SubsetMasks(9,3)| = %d, want 130", n)
	}
	if n := len(SubsetMasks(5, 5)); n != 32 {
		t.Errorf("|SubsetMasks(5,5)| = %d, want 32", n)
	}
}

func TestFromCoefficientsLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromCoefficients([]int{0, 1}, []float64{1, 2})
}
