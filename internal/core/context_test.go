package core

import (
	"context"
	"errors"
	"testing"

	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/reconstruct"
)

func contextTestSynopsis() *Synopsis {
	data := synth.MSNBC(2000, 7)
	dg := covering.Groups(9, 6)
	return BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(11))
}

// TestQueryMethodContextCanceled: a canceled context aborts every
// estimator that needs iterative reconstruction, with the typed error.
func TestQueryMethodContextCanceled(t *testing.T) {
	s := contextTestSynopsis()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attrs := []int{0, 4, 8} // spans blocks: forces reconstruction
	for _, m := range []ReconstructMethod{CME, CMEDual, CLN, CLP} {
		_, err := s.QueryMethodContext(ctx, attrs, m)
		if !errors.Is(err, reconstruct.ErrCanceled) {
			t.Errorf("%s: err = %v, want reconstruct.ErrCanceled", m, err)
		}
	}
}

// TestQueryContextMatchesQuery: with a live context the ctx variant is
// the same pure function as Query.
func TestQueryContextMatchesQuery(t *testing.T) {
	s := contextTestSynopsis()
	attrs := []int{0, 4, 8}
	want := s.Query(attrs)
	got, err := s.QueryContext(context.Background(), attrs)
	if err != nil {
		t.Fatal(err)
	}
	if !marginal.Equal(got, want, 0) {
		t.Error("QueryContext(Background) differs from Query")
	}
}

// TestQueryMethodContextCoveredIgnoresLateCancel: covered marginals are
// answered by direct projection with no iteration, so only a context
// already dead at entry can stop them.
func TestQueryMethodContextCovered(t *testing.T) {
	s := contextTestSynopsis()
	attrs := []int{0, 1} // inside the first design block: covered
	got, err := s.QueryMethodContext(context.Background(), attrs, CME)
	if err != nil {
		t.Fatal(err)
	}
	if !marginal.Equal(got, s.Query(attrs), 0) {
		t.Error("covered ctx query differs from Query")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryMethodContext(ctx, attrs, CME); !errors.Is(err, reconstruct.ErrCanceled) {
		t.Errorf("covered query with dead ctx: err = %v, want ErrCanceled", err)
	}
}
