package core_test

import (
	"context"
	"sync"
	"testing"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/qcache"
)

// TestConcurrentQueryMethodMixedEstimators proves the documented claim
// on QueryMethod ("safe for concurrent use: all reconstruction paths
// read the views without mutating them") under the race detector: many
// goroutines query one shared synopsis with every estimator at once,
// half of them through a shared qcache so cache hits, misses and
// singleflight coalescing run concurrently with direct solves. Every
// answer must equal the single-threaded answer — a synopsis is a pure
// function of (attrs, method).
//
// The test lives in package core_test so it can layer internal/qcache
// (which deliberately does not import core) over the synopsis exactly
// the way internal/server does.
func TestConcurrentQueryMethodMixedEstimators(t *testing.T) {
	data := synth.MSNBC(3000, 71)
	dg := covering.Groups(9, 4)
	syn := core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg}, noise.NewStream(72))
	methods := []core.ReconstructMethod{core.CME, core.CLN, core.LP, core.CLP, core.CMEDual}
	attrSets := [][]int{{0, 4, 8}, {1, 5}, {2, 3, 7}, {0, 4, 8}, {6}}

	// Single-threaded ground truth per (attrs, method).
	type qkey struct {
		attrs  string
		method core.ReconstructMethod
	}
	want := map[qkey]*marginal.Table{}
	for _, attrs := range attrSets {
		for _, m := range methods {
			want[qkey{marginal.Key(attrs), m}] = syn.QueryMethod(attrs, m)
		}
	}

	cache := qcache.New(64, 8<<20)
	ctx := context.Background()
	workers := 4 * len(methods)
	iters := 12
	if testing.Short() {
		iters = 6
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := methods[w%len(methods)]
			for i := 0; i < iters; i++ {
				attrs := attrSets[(w+i)%len(attrSets)]
				var got *marginal.Table
				var err error
				if (w+i)%2 == 0 {
					// Direct solve, concurrent with everything else.
					got, err = syn.QueryMethodContext(ctx, attrs, m)
				} else {
					// Through the shared cache: hits, misses and
					// coalesced waiters interleave with direct solves.
					key, ok := qcache.KeyFor(attrs, int(m))
					if !ok {
						t.Errorf("worker %d: unmaskable attrs %v", w, attrs)
						return
					}
					got, err = cache.Do(ctx, key, func(ctx context.Context) (*marginal.Table, error) {
						return syn.QueryMethodContext(ctx, attrs, m)
					})
				}
				if err != nil {
					t.Errorf("worker %d (%s, %v): %v", w, m, attrs, err)
					return
				}
				if !marginal.Equal(got, want[qkey{marginal.Key(attrs), m}], 1e-9) {
					t.Errorf("worker %d (%s, %v): concurrent answer diverged", w, m, attrs)
					return
				}
				// Scribble on our copy; no other worker may observe it.
				got.Cells[0] = -1e18
			}
		}(w)
	}
	wg.Wait()
	st := cache.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Errorf("stress failed to exercise both hits and misses: %+v", st)
	}
	if total := st.Hits + st.Misses + st.Coalesced; total == 0 {
		t.Error("no cached traffic at all")
	}
}
