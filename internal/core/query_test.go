package core

import (
	"math"
	"strings"
	"testing"

	"priview/internal/accuracy"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// TestQueryMethodDoesNotMutate verifies concurrent-safe method
// selection: QueryMethod with an alternative estimator leaves the
// configured default untouched.
func TestQueryMethodDoesNotMutate(t *testing.T) {
	data := synth.MSNBC(5000, 40)
	dg := covering.Groups(9, 4)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg, Method: CME}, noise.NewStream(41))
	attrs := []int{0, 3, 6, 8}
	before := s.Query(attrs)
	_ = s.QueryMethod(attrs, CLN)
	after := s.Query(attrs)
	if !marginal.Equal(before, after, 0) {
		t.Error("QueryMethod changed the default estimator's answers")
	}
}

func TestQueryMethodCMEDual(t *testing.T) {
	data := synth.Kosarak(20000, 42)
	dg := covering.Best(32, 8, 2, 1, 2)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(43))
	attrs := []int{0, 9, 17, 30}
	ipf := s.QueryMethod(attrs, CME)
	dual := s.QueryMethod(attrs, CMEDual)
	// Same convex program, different solvers: answers must be close.
	n := float64(data.Len())
	if accuracy.NormalizedL2Error(ipf, dual, n) > 0.01 {
		t.Errorf("IPF and dual ascent disagree: %v", accuracy.NormalizedL2Error(ipf, dual, n))
	}
}

func TestLPCoveredQueryClampsNegatives(t *testing.T) {
	// Raw views can hold negatives; the covered path for LP must clamp.
	data := synth.MSNBC(100, 44) // tiny N: noise dominates, negatives certain
	dg := covering.Groups(9, 6)
	s := BuildSynopsis(data, Config{Epsilon: 0.1, Design: dg, Method: LP, SkipPostprocess: true},
		noise.NewStream(45))
	got := s.Query(dg.Blocks[0][:3])
	for _, v := range got.Cells {
		if v < 0 {
			t.Errorf("negative cell %v in covered LP query", v)
		}
	}
}

func TestSkipPostprocessKeepsRawViews(t *testing.T) {
	data := synth.MSNBC(5000, 46)
	dg := covering.Groups(9, 6)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg, SkipPostprocess: true}, noise.NewStream(47))
	// Raw and processed views must be identical when post-processing is
	// skipped.
	for i := range s.Views() {
		if !marginal.Equal(s.Views()[i], s.RawViews()[i], 0) {
			t.Fatal("SkipPostprocess still modified views")
		}
	}
}

func TestTotalNonNegativeEvenAtTinyEps(t *testing.T) {
	data := synth.MSNBC(10, 48)
	dg := covering.Groups(9, 6)
	for seed := int64(0); seed < 10; seed++ {
		s := BuildSynopsis(data, Config{Epsilon: 0.01, Design: dg}, noise.NewStream(seed))
		if s.Total() < 0 {
			t.Errorf("seed %d: negative total %v", seed, s.Total())
		}
		got := s.Query([]int{0, 5})
		if math.IsNaN(got.Total()) {
			t.Errorf("seed %d: NaN total", seed)
		}
	}
}

// TestSkipPostprocessTotalClamped is the regression test for the
// early-return bug: postprocess used to skip the negative-total clamp
// when SkipPostprocess was set, so a raw-LP synopsis could publish a
// negative Total() through /v1/info.
func TestSkipPostprocessTotalClamped(t *testing.T) {
	// Deterministic worst case first: views assembled with outright
	// negative totals (what heavy Laplace noise produces at tiny ε·N).
	views := []*marginal.Table{
		marginal.New([]int{0, 1}),
		marginal.New([]int{2, 3}),
	}
	for _, v := range views {
		v.Fill(-25)
	}
	dg := covering.Groups(4, 2)
	for _, skip := range []bool{true, false} {
		s := FromViews(views, Config{Epsilon: 1, Design: dg, SkipPostprocess: skip})
		if s.Total() < 0 {
			t.Errorf("SkipPostprocess=%v: negative published total %v", skip, s.Total())
		}
	}
	// And the noisy path: heavy negative Laplace draws across seeds. At
	// N=10, ε=0.01 the per-view scale is 600, so negative view totals
	// are common; no seed may publish one.
	data := synth.MSNBC(10, 60)
	dg9 := covering.Groups(9, 6)
	for seed := int64(0); seed < 20; seed++ {
		s := BuildSynopsis(data, Config{Epsilon: 0.01, Design: dg9, SkipPostprocess: true},
			noise.NewStream(seed))
		if s.Total() < 0 {
			t.Errorf("seed %d: SkipPostprocess synopsis published negative total %v", seed, s.Total())
		}
	}
}

// TestCountDuplicateAttrsPanicsWithCoreMessage: the duplicate must be
// caught at the API boundary with a core:-prefixed message, not surface
// as marginal.New's deep panic.
func TestCountDuplicateAttrsPanicsWithCoreMessage(t *testing.T) {
	data := synth.MSNBC(100, 61)
	dg := covering.Groups(9, 6)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(62))
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected panic for duplicate attributes")
		}
		msg, ok := rec.(string)
		if !ok || !strings.HasPrefix(msg, "core:") {
			t.Errorf("panic = %v, want a core:-prefixed message", rec)
		}
		if !strings.Contains(msg, "duplicate attribute 3") {
			t.Errorf("panic %q does not name the duplicate attribute", msg)
		}
	}()
	s.Count([]int{3, 5, 3}, []bool{true, false, true})
}

func TestEpsilonAndDesignAccessors(t *testing.T) {
	data := synth.MSNBC(100, 49)
	dg := covering.Groups(9, 6)
	s := BuildSynopsis(data, Config{Epsilon: 0.7, Design: dg}, noise.NewStream(50))
	if s.Epsilon() != 0.7 {
		t.Errorf("Epsilon = %v", s.Epsilon())
	}
	if s.Design() != dg {
		t.Error("Design accessor broken")
	}
}

func TestQueryMethodUnknownPanics(t *testing.T) {
	data := synth.MSNBC(100, 51)
	dg := covering.Groups(9, 6)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(52))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown method")
		}
	}()
	s.QueryMethod([]int{0, 5, 7}, ReconstructMethod(99))
}

func TestCountConjunction(t *testing.T) {
	data := synth.MSNBC(20000, 53)
	dg := covering.Groups(9, 6)
	s := BuildSynopsis(data, Config{Design: dg, NoNoise: true}, nil)
	// Noise-free covered pair: count must match the truth exactly.
	truth := data.Marginal([]int{2, 5})
	got := s.Count([]int{5, 2}, []bool{true, false}) // deliberately unsorted
	// attrs sorted: {2,5}; values follow: attr2=false, attr5=true →
	// cell index 0b10.
	if math.Abs(got-truth.Cells[0b10]) > 1e-6 {
		t.Errorf("Count = %v, want %v", got, truth.Cells[0b10])
	}
	// Inputs must not be mutated.
	attrs := []int{5, 2}
	values := []bool{true, false}
	s.Count(attrs, values)
	if attrs[0] != 5 || values[0] != true {
		t.Error("Count mutated its arguments")
	}
}

func TestCountValidatesAlignment(t *testing.T) {
	data := synth.MSNBC(100, 54)
	dg := covering.Groups(9, 6)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(55))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for misaligned inputs")
		}
	}()
	s.Count([]int{1, 2}, []bool{true})
}
