package core

import (
	"testing"

	"priview/internal/accuracy"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
)

func TestMergeReducesError(t *testing.T) {
	data := synth.Kosarak(50000, 60)
	dg := covering.Best(32, 8, 2, 1, 2)
	attrs := []int{0, 9, 17, 30}
	truth := data.Marginal(attrs)
	n := float64(data.Len())

	var errSingle, errMerged float64
	const reps = 5
	for r := 0; r < reps; r++ {
		a := BuildSynopsis(data, Config{Epsilon: 0.5, Design: dg}, noise.NewStream(int64(100+r)))
		b := BuildSynopsis(data, Config{Epsilon: 0.5, Design: dg}, noise.NewStream(int64(200+r)))
		m, err := Merge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if m.Epsilon() != 1.0 {
			t.Fatalf("merged epsilon = %v, want 1.0", m.Epsilon())
		}
		errSingle += accuracy.NormalizedL2Error(a.Query(attrs), truth, n)
		errMerged += accuracy.NormalizedL2Error(m.Query(attrs), truth, n)
	}
	if errMerged >= errSingle {
		t.Errorf("merged error %v not below single-release error %v", errMerged, errSingle)
	}
}

func TestMergeWeightsByEpsilon(t *testing.T) {
	// A high-budget release merged with a junk low-budget one should
	// stay close to the high-budget answers (weight ∝ ε²).
	data := synth.MSNBC(20000, 61)
	dg := covering.Groups(9, 6)
	strong := BuildSynopsis(data, Config{Epsilon: 2.0, Design: dg}, noise.NewStream(62))
	weak := BuildSynopsis(data, Config{Epsilon: 0.05, Design: dg}, noise.NewStream(63))
	m, err := Merge(strong, weak)
	if err != nil {
		t.Fatal(err)
	}
	attrs := []int{0, 4}
	truth := data.Marginal(attrs)
	errStrong := accuracy.L2Error(strong.Query(attrs), truth)
	errMerged := accuracy.L2Error(m.Query(attrs), truth)
	// The weak release's weight is (0.05/2)² ≈ 0.06%: merging must not
	// blow up the strong release's accuracy.
	if errMerged > errStrong*1.5+1 {
		t.Errorf("merge degraded a strong release: %v -> %v", errStrong, errMerged)
	}
}

func TestMergeValidation(t *testing.T) {
	data := synth.MSNBC(1000, 64)
	dgA := covering.Groups(9, 6)
	dgB := covering.Groups(9, 4)
	a := BuildSynopsis(data, Config{Epsilon: 1, Design: dgA}, noise.NewStream(65))
	b := BuildSynopsis(data, Config{Epsilon: 1, Design: dgB}, noise.NewStream(66))
	if _, err := Merge(a, b); err == nil {
		t.Error("merged synopses over different view sets")
	}
	if _, err := Merge(); err == nil {
		t.Error("merged nothing")
	}
	noNoise := BuildSynopsis(data, Config{Design: dgA, NoNoise: true}, nil)
	if _, err := Merge(a, noNoise); err == nil {
		t.Error("merged a no-noise synopsis (no epsilon to weight by)")
	}
	single, err := Merge(a)
	if err != nil || single != a {
		t.Error("single-input merge should return the input")
	}
}

func TestMergeViewsConsistent(t *testing.T) {
	data := synth.MSNBC(5000, 67)
	dg := covering.Groups(9, 6)
	a := BuildSynopsis(data, Config{Epsilon: 0.5, Design: dg}, noise.NewStream(68))
	b := BuildSynopsis(data, Config{Epsilon: 0.7, Design: dg}, noise.NewStream(69))
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Views() {
		if !marginal.SameAttrs(m.Views()[i].Attrs, a.Views()[i].Attrs) {
			t.Fatal("merged views misaligned")
		}
	}
	// Merged epsilon = 1.2.
	if got := m.Epsilon(); got < 1.19 || got > 1.21 {
		t.Errorf("merged epsilon = %v", got)
	}
}
