package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"priview/internal/attrset"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/noise"
	"priview/internal/reconstruct"
)

// bitIdentical reports whether two tables agree bit-for-bit, comparing
// cell representations rather than values so NaNs and signed zeros
// cannot hide behind tolerant equality.
func bitIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestQueryBatchMatchesSequentialGolden is the batch correctness
// anchor: for every estimator, QueryBatch must agree bit-for-bit with a
// sequential QueryMethodContext loop over the same requests — the two
// paths are one code path by construction, and this test keeps them so.
func TestQueryBatchMatchesSequentialGolden(t *testing.T) {
	data := synth.MSNBC(5000, 101)
	dg := covering.Groups(9, 4)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(102))
	for _, method := range []ReconstructMethod{CME, CMEDual, CLN, LP, CLP} {
		reqs := AllKWay(dg.D, 3, method)
		got, err := s.QueryBatch(context.Background(), reqs, BatchOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%v: QueryBatch: %v", method, err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("%v: got %d results for %d requests", method, len(got), len(reqs))
		}
		for i, r := range reqs {
			want, werr := s.QueryMethodContext(context.Background(), r.Attrs, r.Method)
			if (werr == nil) != (got[i].Err == nil) {
				t.Fatalf("%v %v: batch err %v, sequential err %v", method, r.Attrs, got[i].Err, werr)
			}
			if !bitIdentical(got[i].Table.Cells, want.Cells) {
				t.Fatalf("%v %v: batch and sequential answers differ", method, r.Attrs)
			}
		}
	}
}

// TestQueryBatchSweepWorkersBitIdentical solves one large marginal
// (2^14 cells, at the parallel-sweep threshold) with the sweep
// sequential and fanned over 4 workers; the gather-ordered reduction
// must make the answers bit-for-bit identical.
func TestQueryBatchSweepWorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("large-table solve")
	}
	data := synth.Uniform(16, 3000, 0.3, 103)
	dg := covering.Groups(16, 8)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg,
		Reconstruct: reconstruct.Options{MaxIter: 40}}, noise.NewStream(104))
	attrs := make([]int, 14)
	for i := range attrs {
		attrs[i] = i + 1 // spans both 8-attribute blocks: not covered
	}
	reqs := []BatchRequest{{Attrs: attrs, Method: CME}, {Attrs: attrs, Method: CLN}}
	seq, err := s.QueryBatch(context.Background(), reqs, BatchOptions{Workers: 1, SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.QueryBatch(context.Background(), reqs, BatchOptions{Workers: 1, SweepWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if !bitIdentical(seq[i].Table.Cells, par[i].Table.Cells) {
			t.Fatalf("request %d: sweep workers changed the answer", i)
		}
	}
}

// TestQueryBatchDeduplicates verifies identical attribute sets within
// one batch cost one solve: duplicates get equal answers from distinct
// tables (no aliasing), and the underlying synopsis sees one solve's
// worth of work.
func TestQueryBatchDeduplicates(t *testing.T) {
	data := synth.MSNBC(2000, 105)
	dg := covering.Groups(9, 4)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(106))
	reqs := []BatchRequest{
		{Attrs: []int{1, 3}, Method: CME},
		{Attrs: []int{0, 5}, Method: CME},
		{Attrs: []int{3, 1}, Method: CME}, // same set as [1,3], different order
	}
	res, err := s.QueryBatch(context.Background(), reqs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(res[0].Table.Cells, res[2].Table.Cells) {
		t.Error("duplicate requests got different answers")
	}
	if res[0].Table == res[2].Table {
		t.Error("duplicate requests alias one table")
	}
	res[0].Table.Cells[0] = -1
	if bitIdentical(res[0].Table.Cells, res[2].Table.Cells) {
		t.Error("mutating one duplicate's table leaked into the other")
	}
}

// TestQueryBatchRejectsInvalid verifies whole-batch rejection with one
// typed error per offending index and nothing solved.
func TestQueryBatchRejectsInvalid(t *testing.T) {
	data := synth.MSNBC(1000, 107)
	dg := covering.Groups(9, 4)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(108))
	reqs := []BatchRequest{
		{Attrs: []int{0, 1}, Method: CME},         // valid
		{Attrs: []int{2, 2}, Method: CME},         // duplicate attribute
		{Attrs: []int{70}, Method: CME},           // out of mask range
		{Attrs: []int{3}, Method: ReconstructMethod(99)}, // unknown method
	}
	_, err := s.QueryBatch(context.Background(), reqs, BatchOptions{})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if len(be.Items) != 3 {
		t.Fatalf("want 3 item errors, got %d: %v", len(be.Items), be)
	}
	wantIdx := []int{1, 2, 3}
	for i, it := range be.Items {
		if it.Index != wantIdx[i] {
			t.Errorf("item %d: index %d, want %d", i, it.Index, wantIdx[i])
		}
	}
	if !errors.Is(be.Items[0].Err, attrset.ErrDuplicate) {
		t.Errorf("index 1: want ErrDuplicate, got %v", be.Items[0].Err)
	}
	if !errors.Is(be.Items[1].Err, attrset.ErrRange) {
		t.Errorf("index 2: want ErrRange, got %v", be.Items[1].Err)
	}
}

// TestQueryBatchCanceledReturnsSentinelOnly verifies a canceled batch
// joins its workers, leaks no goroutines, and returns the cancellation
// sentinel instead of partial results.
func TestQueryBatchCanceledReturnsSentinelOnly(t *testing.T) {
	data := synth.Kosarak(5000, 109)
	dg := covering.Best(32, 8, 2, 1, 2)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(110))
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.QueryBatch(ctx, AllKWay(dg.D, 3, CME), BatchOptions{Workers: 4})
	if res != nil {
		t.Fatalf("canceled batch returned %d results, want none", len(res))
	}
	if !errors.Is(err, reconstruct.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// The worker pool must have fully joined; give the runtime a moment
	// to retire exiting goroutines before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestAllKWay checks the evaluation workload enumerator: C(d,1) + ... +
// C(d,k) requests, deterministic order, canonical attrs.
func TestAllKWay(t *testing.T) {
	reqs := AllKWay(5, 2, CLN)
	if want := 5 + 10; len(reqs) != want {
		t.Fatalf("got %d requests, want %d", len(reqs), want)
	}
	if got := AllKWay(5, 2, CLN); len(got) != len(reqs) {
		t.Fatal("enumeration not deterministic in count")
	}
	for i, r := range reqs {
		if r.Method != CLN {
			t.Fatalf("request %d: method %v", i, r.Method)
		}
		for j := 1; j < len(r.Attrs); j++ {
			if r.Attrs[j] <= r.Attrs[j-1] {
				t.Fatalf("request %d: attrs %v not strictly increasing", i, r.Attrs)
			}
		}
	}
}

// TestQueryBatchEmpty verifies the zero-request edge: no solves, no
// error, empty (non-nil) result.
func TestQueryBatchEmpty(t *testing.T) {
	data := synth.MSNBC(100, 111)
	dg := covering.Groups(9, 4)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(112))
	res, err := s.QueryBatch(context.Background(), nil, BatchOptions{})
	if err != nil || res == nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
}
