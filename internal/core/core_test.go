package core

import (
	"math"
	"runtime"
	"testing"

	"priview/internal/accuracy"
	"priview/internal/consistency"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
)

func kosarakDesign(t *testing.T) *covering.Design {
	t.Helper()
	dg := covering.Best(32, 8, 2, 1, 2)
	if err := dg.Verify(); err != nil {
		t.Fatal(err)
	}
	return dg
}

func TestBuildSynopsisViewsConsistent(t *testing.T) {
	data := synth.Kosarak(20000, 1)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: kosarakDesign(t)}, noise.NewStream(2))
	if !consistency.IsPairwiseConsistent(s.Views(), 1e-6) {
		t.Error("synopsis views not pairwise consistent")
	}
	if s.Total() <= 0 {
		t.Errorf("total = %v, want positive", s.Total())
	}
}

func TestQueryCoveredMatchesProjection(t *testing.T) {
	data := synth.Kosarak(20000, 3)
	dg := kosarakDesign(t)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(4))
	// Pick attributes from the first block: fully covered.
	attrs := dg.Blocks[0][:3]
	got := s.Query(attrs)
	want := reconstructCovered(s, attrs)
	if !marginal.Equal(got, want, 1e-9) {
		t.Error("covered query does not match view projection")
	}
}

func reconstructCovered(s *Synopsis, attrs []int) *marginal.Table {
	for _, v := range s.Views() {
		if marginal.Subset(attrs, v.Attrs) {
			return v.Project(attrs)
		}
	}
	return nil
}

func TestQueryUncoveredReasonable(t *testing.T) {
	data := synth.Kosarak(100000, 5)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: kosarakDesign(t)}, noise.NewStream(6))
	// Attributes spread across blocks: k=4 set unlikely to be covered.
	attrs := []int{0, 9, 17, 30}
	got := s.Query(attrs)
	truth := data.Marginal(attrs)
	nerr := accuracy.NormalizedL2Error(got, truth, float64(data.Len()))
	// PriView's headline claim: far better than Direct's noise floor.
	direct := math.Sqrt(float64(int(1)<<4)*math.Pow(float64(covering.Binom(32, 4)), 2)*2) / float64(data.Len())
	if nerr > direct/10 {
		t.Errorf("PriView error %v not well below Direct's %v", nerr, direct)
	}
	if got.Total() < 0 {
		t.Errorf("reconstructed total %v negative", got.Total())
	}
}

func TestNoNoiseSynopsisNearExactOnCovered(t *testing.T) {
	data := synth.Kosarak(5000, 7)
	dg := kosarakDesign(t)
	s := BuildSynopsis(data, Config{Design: dg, NoNoise: true}, nil)
	attrs := dg.Blocks[2][:4]
	got := s.Query(attrs)
	truth := data.Marginal(attrs)
	if !marginal.Equal(got, truth, 1e-6) {
		t.Error("noise-free covered query deviates from truth")
	}
}

func TestNoNoiseUncoveredSmallError(t *testing.T) {
	// With no noise, the only error is coverage error; for a mildly
	// correlated dataset maxent should land close to the truth.
	data := synth.Uniform(32, 30000, 0.4, 8)
	s := BuildSynopsis(data, Config{Design: kosarakDesign(t), NoNoise: true}, nil)
	attrs := []int{1, 10, 20, 31}
	got := s.Query(attrs)
	truth := data.Marginal(attrs)
	nerr := accuracy.NormalizedL2Error(got, truth, float64(data.Len()))
	if nerr > 0.02 {
		t.Errorf("noise-free error %v too large for independent data", nerr)
	}
}

func TestReconstructMethodsAllRun(t *testing.T) {
	data := synth.Kosarak(20000, 9)
	dg := kosarakDesign(t)
	attrs := []int{0, 9, 17, 30}
	truth := data.Marginal(attrs)
	for _, m := range []ReconstructMethod{CME, CLN, LP, CLP} {
		cfg := Config{Epsilon: 1, Design: dg, Method: m}
		if m == LP {
			cfg.SkipPostprocess = true
		}
		s := BuildSynopsis(data, cfg, noise.NewStream(10))
		got := s.Query(attrs)
		if got.Size() != truth.Size() {
			t.Fatalf("%v: size %d", m, got.Size())
		}
		for _, v := range got.Cells {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v: non-finite cell", m)
			}
		}
	}
}

func TestCMEBeatsLPOnUncovered(t *testing.T) {
	// Fig. 3's qualitative finding: CME < CLN/CLP < LP in error. We
	// check the endpoints over a few queries.
	data := synth.Kosarak(200000, 11)
	dg := kosarakDesign(t)
	queries := [][]int{{0, 9, 17, 30}, {2, 11, 19, 28}, {5, 13, 22, 31}}
	var errCME, errLP float64
	cme := BuildSynopsis(data, Config{Epsilon: 1, Design: dg, Method: CME}, noise.NewStream(12))
	lpS := BuildSynopsis(data, Config{Epsilon: 1, Design: dg, Method: LP, SkipPostprocess: true}, noise.NewStream(12))
	for _, q := range queries {
		truth := data.Marginal(q)
		errCME += accuracy.L2Error(cme.Query(q), truth)
		errLP += accuracy.L2Error(lpS.Query(q), truth)
	}
	if errCME >= errLP {
		t.Errorf("CME error %v not below LP error %v", errCME, errLP)
	}
}

func TestQueryDeterministicGivenSynopsis(t *testing.T) {
	data := synth.Kosarak(5000, 13)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: kosarakDesign(t)}, noise.NewStream(14))
	a := s.Query([]int{3, 12, 21, 30})
	b := s.Query([]int{3, 12, 21, 30})
	if !marginal.Equal(a, b, 1e-12) {
		t.Error("query answers differ between invocations")
	}
}

func TestFromViews(t *testing.T) {
	data := synth.MSNBC(5000, 15)
	dg := covering.Groups(9, 6)
	views := make([]*marginal.Table, dg.W())
	src := noise.NewStream(16)
	for i, b := range dg.Blocks {
		views[i] = data.Marginal(b)
		views[i].AddLaplace(src, 3)
	}
	s := FromViews(views, Config{Epsilon: 1, Design: dg})
	if !consistency.IsPairwiseConsistent(s.Views(), 1e-6) {
		t.Error("FromViews synopsis not consistent")
	}
	got := s.Query([]int{0, 4, 8})
	if got.Size() != 8 {
		t.Errorf("size = %d", got.Size())
	}
}

func TestBuildSynopsisValidation(t *testing.T) {
	data := synth.MSNBC(100, 17)
	for name, cfg := range map[string]Config{
		"nil design":   {Epsilon: 1},
		"zero epsilon": {Design: covering.Groups(9, 6)},
		"wrong d":      {Epsilon: 1, Design: covering.Groups(10, 6)},
	} {
		func() {
			defer func() { _ = recover() }()
			BuildSynopsis(data, cfg, noise.NewStream(1))
			t.Errorf("%s: expected panic", name)
		}()
	}
}

func TestSynopsisName(t *testing.T) {
	data := synth.MSNBC(100, 18)
	dg := covering.Groups(9, 6)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(19))
	if s.Name() != "PriView(C2(6,3))" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestPlanDesignPicksHigherTForGenerousBudget(t *testing.T) {
	if testing.Short() {
		t.Skipf("skipping in -short mode: plans designs across a budget sweep")
	}
	// Kosarak-scale: d=32, N≈900k. At ε=1 the paper chooses t=3; at
	// ε=0.1 it falls back to t=2.
	rich := PlanDesign(32, 900000, 1.0, 1)
	if rich.Design.T < 3 {
		t.Errorf("ε=1: planned t=%d, want ≥3", rich.Design.T)
	}
	poor := PlanDesign(32, 900000, 0.1, 1)
	if poor.Design.T != 2 {
		t.Errorf("ε=0.1: planned t=%d, want 2", poor.Design.T)
	}
}

func TestPlanDesignSmallD(t *testing.T) {
	p := PlanDesign(6, 10000, 1.0, 1)
	if p.Design == nil || p.Design.L > 6 {
		t.Fatalf("plan for d=6: %+v", p)
	}
	if err := p.Design.Verify(); err != nil {
		t.Error(err)
	}
}

func TestNoiseErrorMatchesEquation5(t *testing.T) {
	dg := &covering.Design{D: 32, T: 2, L: 8, Blocks: make([][]int, 20)}
	got := NoiseError(dg, 1.0, 900000)
	if math.Abs(got-0.00047)/0.00047 > 0.05 {
		t.Errorf("NoiseError = %v, want ≈0.00047 (paper's table)", got)
	}
}

func TestNoisyCount(t *testing.T) {
	data := synth.MSNBC(50000, 20)
	n := NoisyCount(data, 0.001, noise.NewStream(21))
	if math.Abs(n-50000) > 50000*0.5 {
		t.Errorf("noisy count %v too far from 50000", n)
	}
	if n < 1 {
		t.Error("noisy count below floor")
	}
}

func TestNonnegRoundsRipple3EquivalentQuality(t *testing.T) {
	// Fig. 4: Ripple_3 performs as well as Ripple_1 — check both run
	// and produce consistent synopses.
	data := synth.Kosarak(30000, 22)
	dg := kosarakDesign(t)
	for _, rounds := range []int{1, 3} {
		s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg, NonnegRounds: rounds}, noise.NewStream(23))
		if !consistency.IsPairwiseConsistent(s.Views(), 1e-6) {
			t.Errorf("rounds=%d: views inconsistent", rounds)
		}
	}
}

func TestMethodString(t *testing.T) {
	cases := map[ReconstructMethod]string{CME: "CME", CLN: "CLN", LP: "LP", CLP: "CLP"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("String() = %q, want %q", m.String(), want)
		}
	}
}

// Parallel view construction (multi-core path) must produce the same
// deterministic noise per view as any scheduling: two builds with the
// same seed agree exactly even when GOMAXPROCS varies.
func TestParallelBuildDeterministic(t *testing.T) {
	data := synth.Kosarak(5000, 30)
	dg := kosarakDesign(t)
	old := runtime.GOMAXPROCS(4)
	a := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(5))
	runtime.GOMAXPROCS(1)
	b := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(5))
	runtime.GOMAXPROCS(old)
	// Note: the single-core path consumes the stream sequentially, so
	// a and b only agree when both use derived streams; with
	// GOMAXPROCS=1 the serial path runs instead. Compare structure and
	// totals rather than exact noise.
	if len(a.Views()) != len(b.Views()) {
		t.Fatal("view counts differ")
	}
	got := a.Query([]int{0, 9, 17, 30})
	if got.Size() != 16 {
		t.Fatal("parallel-build query broken")
	}
	// Two parallel builds with the same seed must agree exactly.
	runtime.GOMAXPROCS(4)
	c := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(5))
	runtime.GOMAXPROCS(old)
	for i := range a.Views() {
		if !marginal.Equal(a.Views()[i], c.Views()[i], 0) {
			t.Fatal("parallel builds with same seed disagree")
		}
	}
}

// Gaussian noise beats Laplace for large designs: the L2 budget split
// (σ ∝ √w) wins over Laplace's L1 split (scale ∝ w) once w exceeds
// ~2·ln(1.25/δ).
func TestGaussianBeatsLaplaceForLargeW(t *testing.T) {
	if testing.Short() {
		t.Skipf("skipping in -short mode: builds synopses at several w")
	}
	data := synth.Kosarak(100000, 70)
	dg := covering.Best(32, 8, 3, 1, 2) // w ≈ 170 views
	attrs := []int{0, 9, 17, 30}
	truth := data.Marginal(attrs)
	n := float64(data.Len())
	var errL, errG float64
	const reps = 3
	for r := 0; r < reps; r++ {
		lap := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(int64(300+r)))
		gau := BuildSynopsis(data, Config{Epsilon: 1, Delta: 1e-6, Noise: GaussianNoise, Design: dg},
			noise.NewStream(int64(400+r)))
		errL += accuracy.NormalizedL2Error(lap.Query(attrs), truth, n)
		errG += accuracy.NormalizedL2Error(gau.Query(attrs), truth, n)
	}
	if errG >= errL {
		t.Errorf("Gaussian (%v) not better than Laplace (%v) at w=%d", errG, errL, dg.W())
	}
}

func TestGaussianNoiseRequiresDelta(t *testing.T) {
	data := synth.MSNBC(100, 71)
	dg := covering.Groups(9, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Gaussian without Delta")
		}
	}()
	BuildSynopsis(data, Config{Epsilon: 1, Noise: GaussianNoise, Design: dg}, noise.NewStream(72))
}

func TestUnknownNoiseKindPanics(t *testing.T) {
	data := synth.MSNBC(100, 73)
	dg := covering.Groups(9, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown noise kind")
		}
	}()
	BuildSynopsis(data, Config{Epsilon: 1, Noise: NoiseKind(9), Design: dg}, noise.NewStream(74))
}
