package core

import (
	"fmt"

	"priview/internal/marginal"
)

// Merge combines independent PriView releases over the same view set
// into one more-accurate synopsis. Each input was built with its own
// Laplace draws, so inverse-variance weighting of corresponding views —
// weight ∝ (ε_i/w)², since each release's per-cell noise variance is
// 2(w/ε_i)² — is the minimum-variance unbiased combination; the merged
// views are then re-post-processed (consistency + Ripple + consistency).
//
// Privacy: by sequential composition the merged object is
// (Σ ε_i)-differentially private; callers should account for the sum
// (see internal/privacy). Merging is the natural pattern for a curator
// who re-releases with additional budget as accuracy needs grow.
func Merge(synopses ...*Synopsis) (*Synopsis, error) {
	if len(synopses) == 0 {
		return nil, fmt.Errorf("core: nothing to merge")
	}
	if len(synopses) == 1 {
		return synopses[0], nil
	}
	first := synopses[0]
	totalEps := 0.0
	weights := make([]float64, len(synopses))
	for i, s := range synopses {
		if len(s.rawViews) != len(first.rawViews) {
			return nil, fmt.Errorf("core: synopsis %d has %d views, want %d", i, len(s.rawViews), len(first.rawViews))
		}
		for j, v := range s.rawViews {
			if !marginal.SameAttrs(v.Attrs, first.rawViews[j].Attrs) {
				return nil, fmt.Errorf("core: synopsis %d view %d covers %v, want %v", i, j, v.Attrs, first.rawViews[j].Attrs)
			}
		}
		if s.cfg.Epsilon <= 0 {
			return nil, fmt.Errorf("core: synopsis %d has no positive epsilon (merge needs noisy releases)", i)
		}
		weights[i] = s.cfg.Epsilon * s.cfg.Epsilon // variance ∝ 1/ε², so weight ∝ ε²
		totalEps += s.cfg.Epsilon
	}
	wSum := 0.0
	for _, w := range weights {
		wSum += w
	}
	merged := make([]*marginal.Table, len(first.rawViews))
	for j := range merged {
		acc := marginal.New(first.rawViews[j].Attrs)
		for i, s := range synopses {
			v := s.rawViews[j]
			for c := range acc.Cells {
				acc.Cells[c] += weights[i] * v.Cells[c]
			}
		}
		acc.Scale(1 / wSum)
		merged[j] = acc
	}
	cfg := first.cfg
	cfg.Epsilon = totalEps
	out := &Synopsis{cfg: cfg, rawViews: cloneViews(merged), views: merged}
	out.postprocess()
	return out, nil
}
