package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/noise"
)

// The golden end-to-end test pins the numerical output of the full
// pipeline — seeded dataset → noised views → consistency → query
// reconstruction — bit for bit. It exists so that representation
// refactors (such as the attrset bitmask unification) can prove they
// changed no arithmetic: any reordering of float operations in the
// consistency closure, the constraint preparation or the solvers shows
// up as an exact-compare failure here.
//
// Regenerate testdata/golden_synopsis.json by running the test with
// PRIVIEW_UPDATE_GOLDEN=1 — only legitimate when an intentional
// numerical change has been reviewed.

type goldenQuery struct {
	Attrs  []int     `json:"attrs"`
	Method string    `json:"method"`
	Cells  []float64 `json:"cells"`
}

type goldenFile struct {
	Total   float64       `json:"total"`
	Queries []goldenQuery `json:"queries"`
}

const goldenPath = "testdata/golden_synopsis.json"

func goldenDataset() *dataset.Dataset {
	// Deterministic correlated records from a fixed linear congruential
	// generator: no dependence on math/rand's generator, whose sequence
	// is outside this repo's control.
	const d = 12
	const n = 4000
	records := make([]uint64, n)
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
	for i := range records {
		r := next()
		rec := r & ((1 << d) - 1)
		// Correlate attributes 0-1 and 4-5 so reconstruction has real
		// structure to recover.
		if r&1 == 1 {
			rec |= 0b11
		}
		if r&2 == 2 {
			rec |= 0b110000
		}
		records[i] = rec
	}
	return dataset.New(d, records)
}

func goldenSynopsis() *Synopsis {
	dg := covering.Best(12, 4, 2, 7, 2)
	cfg := Config{Epsilon: 1.0, Design: dg}
	return BuildSynopsis(goldenDataset(), cfg, noise.NewStream(42))
}

func goldenQueries() []struct {
	attrs  []int
	method ReconstructMethod
} {
	return []struct {
		attrs  []int
		method ReconstructMethod
	}{
		{[]int{0}, CME},
		{[]int{0, 1}, CME},
		{[]int{0, 1, 4, 5}, CME},
		{[]int{2, 7, 11}, CME},
		{[]int{0, 3, 6, 9}, CME},
		{[]int{0, 1, 4, 5}, CLN},
		{[]int{2, 7, 11}, CLN},
		{[]int{0, 1, 4, 5}, CMEDual},
		{[]int{2, 7, 11}, CLP},
		{[]int{2, 7, 11}, LP},
	}
}

func TestGoldenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("golden end-to-end run is slow; run without -short")
	}
	syn := goldenSynopsis()
	got := goldenFile{Total: syn.Total()}
	for _, q := range goldenQueries() {
		tab := syn.QueryMethod(q.attrs, q.method)
		got.Queries = append(got.Queries, goldenQuery{
			Attrs: q.attrs, Method: q.method.String(),
			Cells: append([]float64(nil), tab.Cells...),
		})
	}

	if os.Getenv("PRIVIEW_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(&got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with PRIVIEW_UPDATE_GOLDEN=1): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	// Exact comparison, deliberately: the golden file's float64 values
	// survive the JSON round-trip bit for bit, so any difference means
	// the pipeline's arithmetic changed.
	//lint:ignore floatcmp golden test pins bit-identical output across refactors
	if got.Total != want.Total {
		t.Errorf("total = %v, golden %v", got.Total, want.Total)
	}
	if len(got.Queries) != len(want.Queries) {
		t.Fatalf("%d queries, golden has %d", len(got.Queries), len(want.Queries))
	}
	for i, g := range got.Queries {
		w := want.Queries[i]
		if g.Method != w.Method {
			t.Fatalf("query %d method %s, golden %s", i, g.Method, w.Method)
		}
		if len(g.Cells) != len(w.Cells) {
			t.Fatalf("query %d (%v %s): %d cells, golden %d", i, g.Attrs, g.Method, len(g.Cells), len(w.Cells))
		}
		for c := range g.Cells {
			//lint:ignore floatcmp golden test pins bit-identical output across refactors
			if g.Cells[c] != w.Cells[c] {
				t.Errorf("query %d (%v %s) cell %d = %v, golden %v",
					i, g.Attrs, g.Method, c, g.Cells[c], w.Cells[c])
			}
		}
	}
}
