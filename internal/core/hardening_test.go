package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/reconstruct"
)

func buildSmall(t *testing.T, seed int64) *Synopsis {
	t.Helper()
	data := synth.MSNBC(2000, seed)
	dg := covering.Groups(9, 4)
	return BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(seed))
}

func TestSaveRejectsNonFinite(t *testing.T) {
	cases := map[string]func(s *Synopsis){
		"nan cell":  func(s *Synopsis) { s.views[0].Cells[0] = math.NaN() },
		"+inf cell": func(s *Synopsis) { s.views[1].Cells[2] = math.Inf(1) },
		"-inf cell": func(s *Synopsis) { s.views[0].Cells[1] = math.Inf(-1) },
		"nan total": func(s *Synopsis) { s.total = math.NaN() },
	}
	for name, poison := range cases {
		s := buildSmall(t, 11)
		poison(s)
		var buf bytes.Buffer
		err := s.Save(&buf)
		if !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: Save err = %v, want ErrNonFinite", name, err)
		}
		if buf.Len() != 0 {
			t.Errorf("%s: Save wrote %d bytes before failing", name, buf.Len())
		}
	}
}

func TestLoadRejectsMalformedDocuments(t *testing.T) {
	view := func(attrs string, n int) string {
		cells := make([]string, n)
		for i := range cells {
			cells[i] = "1"
		}
		return fmt.Sprintf(`{"attrs":[%s],"cells":[%s]}`, attrs, strings.Join(cells, ","))
	}
	doc := func(body string) string {
		return `{"format":"priview-synopsis-v1","epsilon":1,"total":16,` + body + `}`
	}
	cases := map[string]string{
		"unsorted attrs":       doc(`"views":[` + view("1,0", 4) + `]`),
		"duplicate attr":       doc(`"views":[` + view("0,0", 4) + `]`),
		"negative attr":        doc(`"views":[` + view("-1,0", 4) + `]`),
		"attr beyond 64":       doc(`"views":[` + view("0,64", 4) + `]`),
		"duplicate views":      doc(`"views":[` + view("0,1", 4) + `,` + view("0,1", 4) + `]`),
		"cell count mismatch":  doc(`"views":[` + view("0,1,2", 4) + `]`),
		"negative epsilon":     `{"format":"priview-synopsis-v1","epsilon":-1,"total":16,"views":[` + view("0", 2) + `]}`,
		"attr outside design":  doc(`"design":{"d":2,"t":1,"l":1,"blocks":[[0],[1]]},"views":[` + view("0,5", 4) + `]`),
		"design attr range":    doc(`"design":{"d":3,"t":1,"l":1,"blocks":[[0,7]]},"views":[` + view("0,1", 4) + `]`),
		"design unsorted":      doc(`"design":{"d":3,"t":1,"l":1,"blocks":[[2,1]]},"views":[` + view("0,1", 4) + `]`),
		"design negative dim":  doc(`"design":{"d":-4,"t":1,"l":1,"blocks":[[0]]},"views":[` + view("0,1", 4) + `]`),
		"design dim beyond 64": doc(`"design":{"d":900,"t":1,"l":1,"blocks":[[0]]},"views":[` + view("0,1", 4) + `]`),
	}
	for name, raw := range cases {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: Load accepted malformed document", name)
		}
	}
}

// TestLoadRejectsHugeAttrListCheaply feeds a view claiming 31 attributes
// with only a handful of cells; Load must reject it without attempting
// the 2^31-cell allocation the attrs list implies.
func TestLoadRejectsHugeAttrListCheaply(t *testing.T) {
	attrs := make([]string, 31)
	for i := range attrs {
		attrs[i] = fmt.Sprint(i)
	}
	raw := `{"format":"priview-synopsis-v1","epsilon":1,"total":1,"views":[{"attrs":[` +
		strings.Join(attrs, ",") + `],"cells":[1,2,3]}]}`
	if _, err := Load(strings.NewReader(raw)); err == nil {
		t.Fatal("Load accepted a 31-attribute view")
	}
}

// TestLoadZeroDesignIsNil checks that a document without a design block
// (or with the zero design an old Save produced for design-less
// synopses) loads with Design() == nil rather than an unusable
// zero-dimensional design.
func TestLoadZeroDesignIsNil(t *testing.T) {
	raw := `{"format":"priview-synopsis-v1","epsilon":1,"total":4,` +
		`"views":[{"attrs":[0,1],"cells":[1,1,1,1]}]}`
	s, err := Load(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if s.Design() != nil {
		t.Fatalf("Design() = %+v, want nil", s.Design())
	}
	got := s.Query([]int{0})
	if got == nil || !reconstruct.FiniteTable(got) {
		t.Fatalf("query on design-less synopsis: %v", got)
	}
}

// TestQueryDegradesOnPoisonedView is the heart of the robustness
// contract: after a view is poisoned with NaN, queries return a finite
// fallback answer together with an error matching
// reconstruct.ErrNumerical — never a NaN marginal, never a hard
// failure.
func TestQueryDegradesOnPoisonedView(t *testing.T) {
	for _, method := range []ReconstructMethod{CME, CMEDual, CLN, CLP} {
		s := buildSmall(t, 7)
		// Poison every cell of one view so that any query touching it
		// must detect the damage.
		for i := range s.views[0].Cells {
			s.views[0].Cells[i] = math.NaN()
		}
		attrs := append([]int(nil), s.views[0].Attrs[:2]...)
		table, err := s.QueryMethodContext(context.Background(), attrs, method)
		if !errors.Is(err, reconstruct.ErrNumerical) {
			t.Errorf("%v: err = %v, want ErrNumerical", method, err)
		}
		if table == nil {
			t.Fatalf("%v: no fallback table", method)
		}
		if !reconstruct.FiniteTable(table) {
			t.Errorf("%v: fallback table has non-finite cells: %v", method, table.Cells)
		}
		if table.Total() < 0 {
			t.Errorf("%v: fallback total %v < 0", method, table.Total())
		}
	}
}

// TestQueryDegradesWhenAllViewsPoisoned exercises the last resort: with
// every view poisoned there are no usable constraints, and the answer
// must still be a finite (uniform) table plus ErrNumerical.
func TestQueryDegradesWhenAllViewsPoisoned(t *testing.T) {
	s := buildSmall(t, 9)
	for _, v := range s.views {
		for i := range v.Cells {
			v.Cells[i] = math.NaN()
		}
	}
	s.total = math.NaN()
	table, err := s.QueryMethodContext(context.Background(), []int{0, 1}, CME)
	if !errors.Is(err, reconstruct.ErrNumerical) {
		t.Fatalf("err = %v, want ErrNumerical", err)
	}
	if table == nil || !reconstruct.FiniteTable(table) {
		t.Fatalf("want finite fallback table, got %v", table)
	}
}

// TestQueryCleanSynopsisNotDegraded proves the degradation path stays
// dormant on healthy synopses: no error, finite answer.
func TestQueryCleanSynopsisNotDegraded(t *testing.T) {
	s := buildSmall(t, 13)
	for _, method := range []ReconstructMethod{CME, CMEDual, CLN} {
		table, err := s.QueryMethodContext(context.Background(), []int{0, 3, 6}, method)
		if err != nil {
			t.Errorf("%v: unexpected error %v", method, err)
		}
		if table == nil || !reconstruct.FiniteTable(table) {
			t.Errorf("%v: bad table %v", method, table)
		}
	}
}

// TestSaveLoadStillRoundTripsAfterHardening guards against the
// validation rejecting real synopses.
func TestSaveLoadStillRoundTripsAfterHardening(t *testing.T) {
	s := buildSmall(t, 21)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Query([]int{0, 2}), loaded.Query([]int{0, 2})
	if !marginal.Equal(a, b, 1e-9) {
		t.Fatal("round-tripped query differs")
	}
}
