// Batched querying: answer many marginal requests in one call, sharing
// the per-attribute-set solver precompute across estimators and fanning
// the independent solves over a worker pool. This is the substrate for
// the paper's evaluation workload — "answer all ≤k-way marginals" — and
// for every consumer that wants the full low-order marginal set at
// once (cache warming, load generation, synthesis).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"priview/internal/attrset"
	"priview/internal/marginal"
	"priview/internal/reconstruct"
	"priview/internal/telemetry"
)

// BatchRequest names one marginal in a QueryBatch call.
type BatchRequest struct {
	// Attrs is the queried attribute set, order-insensitive. Duplicates
	// and out-of-range indices are rejected with the attrset typed
	// errors before any solving starts.
	Attrs []int
	// Method selects the estimator; the zero value is CME. Callers
	// wanting the synopsis's configured default fill in
	// Synopsis.DefaultMethod().
	Method ReconstructMethod
}

// BatchResult is the answer to one BatchRequest, in request order.
type BatchResult struct {
	// Table is the reconstructed marginal; always non-nil when the
	// batch as a whole succeeded.
	Table *marginal.Table
	// Err is nil for a clean answer. When the solve degraded it matches
	// reconstruct.ErrNumerical and Table still holds a finite, usable
	// fallback — the same contract as QueryMethodContext.
	Err error
}

// Degraded reports whether the answer came from the numerical fallback
// chain rather than the requested estimator.
func (r BatchResult) Degraded() bool { return errors.Is(r.Err, reconstruct.ErrNumerical) }

// BatchOptions tunes QueryBatch's parallelism. The worker split never
// affects the answers: solves are deterministic and the in-solve sweep
// is bit-identical at any worker count.
type BatchOptions struct {
	// Workers bounds the goroutines fanning over distinct
	// (attribute-set, method) solves; 0 means GOMAXPROCS.
	Workers int
	// SweepWorkers bounds the goroutines parallelizing the
	// projection/update sweep inside one large solve
	// (reconstruct.Options.SweepWorkers). 0 divides Workers over the
	// distinct solves, so a batch of one big query still uses the whole
	// budget.
	SweepWorkers int
}

// BatchItemError locates one invalid request inside a rejected batch.
type BatchItemError struct {
	// Index is the position of the offending request in the batch.
	Index int
	// Err is the validation failure; attribute-set problems match
	// attrset.ErrRange / attrset.ErrDuplicate.
	Err error
}

// BatchError rejects a whole batch containing invalid requests: no
// request is solved, and Items carries one typed error per offending
// index so callers can report every problem at once.
type BatchError struct {
	Items []BatchItemError
}

// Error implements error, naming every offending index.
func (e *BatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: invalid batch (%d of %d requests):", len(e.Items), e.total())
	for i, it := range e.Items {
		if i == 4 && len(e.Items) > 5 {
			fmt.Fprintf(&b, " ... and %d more", len(e.Items)-i)
			break
		}
		fmt.Fprintf(&b, " [%d] %v;", it.Index, it.Err)
	}
	return strings.TrimSuffix(b.String(), ";")
}

func (e *BatchError) total() int {
	max := 0
	for _, it := range e.Items {
		if it.Index+1 > max {
			max = it.Index + 1
		}
	}
	return max
}

// valid reports whether m names a known estimator without consulting
// fallbackChain, which panics on unknown methods.
func (m ReconstructMethod) valid() bool {
	switch m {
	case CME, CLN, LP, CLP, CMEDual:
		return true
	}
	return false
}

// DefaultMethod returns the estimator Query uses when the caller does
// not name one (Config.Method).
func (s *Synopsis) DefaultMethod() ReconstructMethod { return s.cfg.Method }

// solveKey identifies one distinct solve within a batch.
type solveKey struct {
	mask   attrset.Set
	method ReconstructMethod
}

// sharedKey identifies one covering-view constraint group: requests
// over the same canonical attribute set against the same view source
// share all solver-independent precompute.
type sharedKey struct {
	mask attrset.Set
	raw  bool
}

// QueryBatch answers many marginal requests in one call.
//
// Requests are validated and canonicalized up front; any invalid
// request rejects the whole batch with a *BatchError naming every
// offending index, and nothing is solved. Identical (attribute-set,
// method) pairs are deduplicated — they cost one solve and the
// duplicates receive clones — and requests sharing a canonical
// attribute set share one constraint-group precompute (covered-view
// lookup, constraint projection, RestrictIndices tables) across
// estimators. The distinct solves then fan across opt.Workers
// goroutines, and solves of large tables additionally parallelize
// their in-solve sweep.
//
// Results are bit-for-bit identical to a sequential QueryMethodContext
// loop over the same requests, at any worker configuration: both paths
// run the same prepared solvers, and the parallel sweep preserves
// floating-point order (see reconstruct's sweep.go).
//
// Cancellation: when ctx is canceled or expires before every solve has
// finished, QueryBatch joins all its workers, discards partial output,
// and returns the reconstruct cancellation sentinel — never a
// partially-filled result slice. Per-item numerical degradation follows
// the QueryMethodContext contract via BatchResult.Err.
func (s *Synopsis) QueryBatch(ctx context.Context, reqs []BatchRequest, opt BatchOptions) ([]BatchResult, error) {
	if err := reconstruct.ContextErr(ctx); err != nil {
		return nil, err
	}
	// Validate everything before solving anything, collecting all
	// failures rather than stopping at the first.
	keys := make([]solveKey, len(reqs))
	var bad []BatchItemError
	for i, r := range reqs {
		set, err := attrset.FromAttrs(r.Attrs)
		switch {
		case err != nil:
			bad = append(bad, BatchItemError{Index: i, Err: err})
		case set.Card() > 30:
			bad = append(bad, BatchItemError{Index: i, Err: fmt.Errorf(
				"core: %d attributes exceeds the 30-attribute table cap", set.Card())})
		case !r.Method.valid():
			bad = append(bad, BatchItemError{Index: i, Err: fmt.Errorf(
				"core: unknown reconstruction method %d", int(r.Method))})
		default:
			keys[i] = solveKey{mask: set, method: r.Method}
		}
	}
	if len(bad) > 0 {
		return nil, &BatchError{Items: bad}
	}
	// Dedupe identical (attribute set, method) pairs and group distinct
	// solves by their constraint group.
	type uniqueSolve struct {
		key    solveKey
		shared *solveShared
		table  *marginal.Table
		err    error
	}
	index := make(map[solveKey]int, len(reqs))
	groups := make(map[sharedKey]*solveShared)
	var uniques []*uniqueSolve
	for i := range reqs {
		k := keys[i]
		if _, ok := index[k]; ok {
			continue
		}
		index[k] = len(uniques)
		gk := sharedKey{mask: k.mask, raw: k.method == LP}
		sh := groups[gk]
		if sh == nil {
			sh = &solveShared{syn: s, attrs: k.mask.Attrs(), raw: gk.raw}
			groups[gk] = sh
		}
		uniques = append(uniques, &uniqueSolve{key: k, shared: sh})
	}
	if len(uniques) == 0 {
		return []BatchResult{}, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sweep := opt.SweepWorkers
	if sweep <= 0 {
		// Split the budget: many solves → one worker each; few big
		// solves → the sweep gets the leftover parallelism.
		sweep = workers / len(uniques)
		if sweep < 1 {
			sweep = 1
		}
	}
	if workers > len(uniques) {
		workers = len(uniques)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(uniques) {
					return
				}
				u := uniques[i]
				// solve polls ctx itself, so a canceled batch drains the
				// remaining queue in O(1) per entry.
				u.table, u.err = u.shared.solve(ctx, u.key.method, sweep)
			}
		}()
	}
	wg.Wait()
	// A canceled batch reports the context sentinel and nothing else:
	// solves that never ran hold the same sentinel, and partial tables
	// are discarded rather than returned as clean.
	for _, u := range uniques {
		if u.table == nil {
			return nil, u.err
		}
	}
	out := make([]BatchResult, len(reqs))
	taken := make([]bool, len(uniques))
	for i := range reqs {
		ui := index[keys[i]]
		u := uniques[ui]
		t := u.table
		if taken[ui] {
			// Duplicates cost one solve but must not alias one table.
			t = t.Clone()
		}
		taken[ui] = true
		out[i] = BatchResult{Table: t, Err: u.err}
	}
	return out, nil
}

// AllKWay returns one BatchRequest per non-empty subset of the d
// attributes with at most k elements — the paper's "answer all ≤k-way
// marginals" evaluation workload — in a deterministic order.
func AllKWay(d, k int, method ReconstructMethod) []BatchRequest {
	var reqs []BatchRequest
	var attrs []int
	var rec func(start int)
	rec = func(start int) {
		if len(attrs) > 0 {
			reqs = append(reqs, BatchRequest{Attrs: append([]int(nil), attrs...), Method: method})
		}
		if len(attrs) == k {
			return
		}
		for a := start; a < d; a++ {
			attrs = append(attrs, a)
			rec(a + 1)
			attrs = attrs[:len(attrs)-1]
		}
	}
	rec(0)
	return reqs
}

// solveShared is the per-(attribute-set, view-source) state every
// estimator answering the same canonical attribute set reuses: the
// covered-view fast path, the view-derived constraint system after
// non-finite filtering, the repaired total, and the
// reconstruct.Prepared solver precompute. Batches group their requests
// by this state so the constraint projections and RestrictIndices
// tables are built once per group; the sequential QueryMethodContext
// path runs a one-shot instance, so single and batched queries execute
// literally the same code and produce bit-identical answers.
type solveShared struct {
	syn   *Synopsis
	attrs []int // canonical: sorted, deduplicated
	raw   bool  // solve against rawViews (the LP estimator)

	once     sync.Once
	covered  *marginal.Table // finite direct projection, when a view covers attrs
	prep     *reconstruct.Prepared
	total    float64
	degraded error // numerical trouble found during preparation
}

// init builds the shared state; called once under sh.once.
func (sh *solveShared) init() {
	source := sh.syn.views
	if sh.raw {
		source = sh.syn.rawViews
	}
	if t := reconstruct.Covered(source, sh.attrs); t != nil {
		if reconstruct.FiniteTable(t) {
			sh.covered = t
			return
		}
		// The covering view is poisoned; reconstruct from whatever
		// healthy views remain instead of answering NaN.
		sh.degraded = &reconstruct.NumericalError{
			Solver: "direct", Iter: -1, Quantity: "covering view cell", Value: math.NaN(),
		}
	}
	cons := reconstruct.ConstraintsFromViews(source, sh.attrs)
	cons, dropped := reconstruct.DropNonFinite(cons)
	if dropped > 0 && sh.degraded == nil {
		sh.degraded = &reconstruct.NumericalError{
			Solver: "constraints", Iter: -1,
			Quantity: fmt.Sprintf("%d non-finite constraint table(s)", dropped), Value: math.NaN(),
		}
	}
	total := sh.syn.total
	if math.IsNaN(total) || math.IsInf(total, 0) {
		if sh.degraded == nil {
			sh.degraded = &reconstruct.NumericalError{Solver: "synopsis", Iter: -1, Quantity: "total", Value: total}
		}
		// Re-estimate from the surviving healthy constraints.
		total = meanTotal(cons)
		if math.IsNaN(total) || math.IsInf(total, 0) || total < 0 {
			total = 0
		}
	}
	sh.total = total
	sh.prep = reconstruct.Prepare(sh.attrs, total, cons)
}

// solve answers one estimator against the shared state, with the
// QueryMethodContext cancellation and degradation contract. sweep > 0
// overrides the configured reconstruct.Options.SweepWorkers.
func (sh *solveShared) solve(ctx context.Context, method ReconstructMethod, sweep int) (*marginal.Table, error) {
	if err := reconstruct.ContextErr(ctx); err != nil {
		return nil, err
	}
	// Only the caller that actually runs init charges the core.prepare
	// stage; joiners of an already-built shared state spent nothing.
	prepStart := time.Now()
	ran := false
	sh.once.Do(func() { ran = true; sh.init() })
	if ran {
		telemetry.FromContext(ctx).Stage("core.prepare", time.Since(prepStart))
	}
	if sh.covered != nil {
		t := sh.covered.Clone()
		if method == LP || sh.syn.cfg.SkipPostprocess {
			// Raw views may carry negatives even in the covered case.
			t.ClampNegatives()
		}
		return t, nil
	}
	degraded := sh.degraded // first numerical problem encountered
	opt := sh.syn.cfg.Reconstruct
	if sweep > 0 {
		opt.SweepWorkers = sweep
	}
	var t *marginal.Table
	for _, m := range fallbackChain(method) {
		var err error
		t, err = sh.solveOnce(ctx, m, opt)
		if err == nil {
			break
		}
		if errors.Is(err, reconstruct.ErrCanceled) || errors.Is(err, reconstruct.ErrDeadline) {
			return nil, err
		}
		// Numerical trouble (or an LP solver failure — the LP is always
		// feasible, so those are numerical too): remember the first
		// cause and try the next estimator.
		if degraded == nil {
			degraded = err
		}
		t = nil
	}
	if t == nil {
		// Every estimator failed; a uniform table is the only answer
		// that is always finite and total-preserving.
		t = marginal.Uniform(sh.attrs, math.Max(sh.total, 0))
	}
	if degraded != nil && !errors.Is(degraded, reconstruct.ErrNumerical) {
		degraded = &reconstruct.NumericalError{
			Solver: method.String(), Iter: -1, Quantity: "solver failure", Value: math.NaN(), Err: degraded,
		}
	}
	return t, degraded
}

// solveOnce runs a single estimator without fallback, charging its
// wall clock to the request trace under the estimator's stage name.
func (sh *solveShared) solveOnce(ctx context.Context, method ReconstructMethod, opt reconstruct.Options) (*marginal.Table, error) {
	tr := telemetry.FromContext(ctx)
	var begin time.Time
	if tr != nil {
		begin = time.Now()
	}
	t, err := sh.dispatch(ctx, method, opt)
	if tr != nil {
		tr.Stage(reconstructStage(method), time.Since(begin))
	}
	return t, err
}

func (sh *solveShared) dispatch(ctx context.Context, method ReconstructMethod, opt reconstruct.Options) (*marginal.Table, error) {
	switch method {
	case CME:
		return sh.prep.MaxEnt(ctx, opt)
	case CMEDual:
		return sh.prep.MaxEntDual(ctx, opt)
	case CLN:
		return sh.prep.LeastSquares(ctx, opt)
	case LP, CLP:
		return sh.prep.LinProg(ctx)
	default:
		panic(fmt.Sprintf("core: unknown reconstruction method %d", int(method)))
	}
}

// reconstructStage maps an estimator to its constant trace-stage label;
// constant strings keep the stage-label set closed (bounded series
// cardinality) and the recording allocation-free.
func reconstructStage(m ReconstructMethod) string {
	switch m {
	case CME:
		return "reconstruct.cme"
	case CMEDual:
		return "reconstruct.cme_dual"
	case CLN:
		return "reconstruct.cln"
	case LP:
		return "reconstruct.lp"
	case CLP:
		return "reconstruct.clp"
	}
	return "reconstruct.other"
}
