// Package core implements the PriView mechanism (§4 of the paper): it
// plans a set of views from a covering design, publishes Laplace-noised
// marginal tables for them, post-processes the tables for mutual
// consistency and non-negativity, and answers arbitrary k-way marginal
// queries from the resulting synopsis by maximum-entropy reconstruction
// (or the alternative estimators evaluated in Fig. 3).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"priview/internal/attrset"
	"priview/internal/consistency"
	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/reconstruct"
)

// ReconstructMethod selects how marginals not covered by a single view
// are estimated (§4.3). CME is the paper's proposed method.
type ReconstructMethod int

const (
	// CME: maximum entropy over consistent views (the default).
	CME ReconstructMethod = iota
	// CLN: least-squares (minimum L2 norm) over consistent views.
	CLN
	// LP: max-error linear programming over the raw noisy views,
	// without a consistency step.
	LP
	// CLP: the LP estimator after the consistency pre-processing step.
	CLP
	// CMEDual: maximum entropy solved by dual gradient ascent instead
	// of iterative proportional fitting — an ablation/cross-check of
	// the solver choice, not a distinct estimator (same optimum).
	CMEDual
)

// String implements fmt.Stringer for experiment labels.
func (m ReconstructMethod) String() string {
	switch m {
	case CME:
		return "CME"
	case CLN:
		return "CLN"
	case LP:
		return "LP"
	case CLP:
		return "CLP"
	case CMEDual:
		return "CME-dual"
	default:
		return fmt.Sprintf("ReconstructMethod(%d)", int(m))
	}
}

// NoiseKind selects the perturbation mechanism for the views.
type NoiseKind int

const (
	// LaplaceNoise is the paper's mechanism: pure ε-DP, per-view scale
	// w/ε (L1 sensitivity w — each record touches one cell per view).
	LaplaceNoise NoiseKind = iota
	// GaussianNoise is an (ε, δ)-DP extension: because each record
	// touches exactly one cell per view, the view collection's L2
	// sensitivity is √w rather than w, so Gaussian noise needs only
	// σ = √(2w·ln(1.25/δ))/ε per cell — for large designs (w ≫
	// ln(1/δ)) this beats Laplace's w/ε scale substantially. Requires
	// Delta > 0.
	GaussianNoise
)

// Config controls synopsis construction and querying.
type Config struct {
	// Epsilon is the total privacy budget, split uniformly across the
	// design's views. Required.
	Epsilon float64
	// Noise selects Laplace (default, pure ε-DP as in the paper) or
	// Gaussian ((ε, Delta)-DP, exploiting the √w L2 sensitivity).
	Noise NoiseKind
	// Delta is the (ε, δ) slack for GaussianNoise; ignored for Laplace.
	Delta float64
	// Design is the view set. Required (use PlanDesign to choose one).
	Design *covering.Design
	// Nonneg selects the negative-entry correction applied between
	// consistency passes; defaults to Ripple, the paper's method.
	Nonneg consistency.NonnegMethod
	// RippleTheta is the Ripple tolerance θ (default
	// consistency.DefaultRippleTheta).
	RippleTheta float64
	// NonnegRounds is i in the paper's Ripple_i: how many
	// (non-negativity + consistency) passes follow the initial
	// consistency step. Default 1; the paper finds more rounds add
	// nothing.
	NonnegRounds int
	// SkipPostprocess disables consistency and non-negativity entirely,
	// used for the "None" series in Fig. 4 and the raw-LP estimator.
	SkipPostprocess bool
	// WeightedConsistency uses inverse-variance averaging in the
	// consistency steps. Identical to the paper's plain mean when all
	// views share one size; strictly better when block sizes are mixed
	// (e.g. greedy designs with some short blocks).
	WeightedConsistency bool
	// Method selects the reconstruction estimator (default CME).
	Method ReconstructMethod
	// Reconstruct tunes the iterative solvers.
	Reconstruct reconstruct.Options
	// NoNoise builds the synopsis without Laplace noise: the paper's
	// C_t^* series isolating coverage error from noise error.
	NoNoise bool
}

// Typed configuration errors, matched with errors.Is. Validate returns
// them (possibly wrapped with position detail); BuildSynopsis panics
// with the same messages for backward compatibility with callers that
// treat a bad Config as a programming error.
var (
	// ErrConfigDesign reports a missing covering design.
	ErrConfigDesign = errors.New("core: Config.Design is required")
	// ErrConfigEpsilon reports a non-positive privacy budget on a noisy
	// build.
	ErrConfigEpsilon = errors.New("core: Config.Epsilon must be positive")
	// ErrConfigDelta reports a Gaussian build without a usable δ.
	ErrConfigDelta = errors.New("core: GaussianNoise requires Delta in (0,1)")
)

// Validate checks the configuration without building anything: the
// design and budget requirements, and — the repo-wide d < 64 invariant,
// enforced here at the boundary instead of by a panic deep inside the
// consistency or table layers — that every design block packs into an
// attrset (attributes in [0, 64), no duplicates). Errors wrap the typed
// sentinels above and attrset.ErrRange/ErrDuplicate for errors.Is.
func (c Config) Validate() error {
	if c.Design == nil {
		return ErrConfigDesign
	}
	if !c.NoNoise {
		if c.Epsilon <= 0 {
			return ErrConfigEpsilon
		}
		if c.Noise == GaussianNoise && !(c.Delta > 0 && c.Delta < 1) {
			return ErrConfigDelta
		}
	}
	for i, block := range c.Design.Blocks {
		if _, err := attrset.FromAttrs(block); err != nil {
			return fmt.Errorf("core: design block %d: %w", i, err)
		}
	}
	return nil
}

func (c Config) nonnegRounds() int {
	if c.NonnegRounds <= 0 {
		return 1
	}
	return c.NonnegRounds
}

func (c Config) rippleTheta() float64 {
	if c.RippleTheta <= 0 {
		return consistency.DefaultRippleTheta
	}
	return c.RippleTheta
}

// Synopsis is the published object: post-processed view marginals from
// which any k-way marginal can be reconstructed without further access
// to the data.
type Synopsis struct {
	cfg      Config
	views    []*marginal.Table // post-processed (consistent, non-negative)
	rawViews []*marginal.Table // as published, before post-processing
	total    float64           // common total count N_V of the views
}

// BuildSynopsis constructs the PriView synopsis for the dataset. This is
// the only function that touches the raw data; everything downstream
// operates on the noisy views. The noise source determines the Laplace
// draws; pass a seeded stream for reproducible experiments.
func BuildSynopsis(data *dataset.Dataset, cfg Config, src noise.Source) *Synopsis {
	if err := cfg.Validate(); err != nil {
		//lint:ignore panicmsg every Config.Validate error is built from a "core:"-prefixed sentinel
		panic(err.Error())
	}
	if cfg.Design.D != data.Dim() {
		panic(fmt.Sprintf("core: design over %d attributes, dataset has %d", cfg.Design.D, data.Dim()))
	}
	w := cfg.Design.W()
	views := make([]*marginal.Table, w)
	// Perturbation: each record contributes one count to each view, so
	// the collection has L1 sensitivity w (Laplace) and L2 sensitivity
	// √w (Gaussian).
	perturb := func(*marginal.Table, noise.Source) {}
	if !cfg.NoNoise {
		switch cfg.Noise {
		case LaplaceNoise:
			scale := noise.LaplaceMechScale(float64(w), cfg.Epsilon)
			perturb = func(t *marginal.Table, s noise.Source) { t.AddLaplace(s, scale) }
		case GaussianNoise:
			if !(cfg.Delta > 0 && cfg.Delta < 1) {
				panic("core: GaussianNoise requires Delta in (0,1)")
			}
			sigma := noise.GaussianMechSigma(math.Sqrt(float64(w)), cfg.Epsilon, cfg.Delta)
			perturb = func(t *marginal.Table, s noise.Source) { t.AddGaussian(s, sigma) }
		default:
			panic(fmt.Sprintf("core: unknown noise kind %d", int(cfg.Noise)))
		}
	}
	if stream, ok := src.(*noise.Stream); ok && runtime.GOMAXPROCS(0) > 1 && w > 1 {
		// Views are independent scans; with a derivable stream each view
		// gets its own deterministic noise sub-stream, so the result is
		// reproducible regardless of scheduling.
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i, block := range cfg.Design.Blocks {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, block []int) {
				defer wg.Done()
				defer func() { <-sem }()
				t := data.Marginal(block)
				perturb(t, stream.DeriveIndexed("view", i))
				views[i] = t
			}(i, block)
		}
		wg.Wait()
	} else {
		for i, block := range cfg.Design.Blocks {
			t := data.Marginal(block)
			perturb(t, src)
			views[i] = t
		}
	}
	s := &Synopsis{cfg: cfg, rawViews: cloneViews(views), views: views}
	s.postprocess()
	return s
}

// FromViews assembles a synopsis directly from already-noisy view
// tables (e.g. read from disk); post-processing is applied according to
// the config. The design in cfg must describe the views' attribute
// sets.
func FromViews(views []*marginal.Table, cfg Config) *Synopsis {
	s := &Synopsis{cfg: cfg, rawViews: cloneViews(views), views: cloneViews(views)}
	s.postprocess()
	return s
}

func cloneViews(vs []*marginal.Table) []*marginal.Table {
	out := make([]*marginal.Table, len(vs))
	for i, v := range vs {
		out[i] = v.Clone()
	}
	return out
}

// postprocess runs Consistency, then NonnegRounds × (non-negativity +
// Consistency) — the paper's Consistency + Ripple + Consistency
// schedule for the default round count. Both exits clamp the published
// total at zero: under heavy Laplace noise the mean view total can go
// negative, and a raw-LP synopsis (SkipPostprocess) must not publish a
// negative record count through Total() any more than a post-processed
// one.
func (s *Synopsis) postprocess() {
	s.total = clampTotal(meanTotal(s.views))
	if s.cfg.SkipPostprocess {
		return
	}
	reconcile := consistency.Overall
	if s.cfg.WeightedConsistency {
		reconcile = consistency.OverallWeighted
	}
	reconcile(s.views)
	for round := 0; round < s.cfg.nonnegRounds(); round++ {
		if s.cfg.Nonneg != consistency.NonnegNone {
			for _, v := range s.views {
				consistency.Apply(s.cfg.Nonneg, v, s.cfg.rippleTheta())
			}
		}
		reconcile(s.views)
	}
	s.total = clampTotal(meanTotal(s.views))
}

// clampTotal floors a published total at zero; negative counts are a
// noise artifact, not information.
func clampTotal(total float64) float64 {
	if total < 0 {
		return 0
	}
	return total
}

func meanTotal(views []*marginal.Table) float64 {
	if len(views) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range views {
		sum += v.Total()
	}
	return sum / float64(len(views))
}

// Name renders the method label used in the figures, e.g.
// "PriView(C2(8,20))".
func (s *Synopsis) Name() string {
	if s.cfg.Design != nil {
		return fmt.Sprintf("PriView(%s)", s.cfg.Design.Name())
	}
	return "PriView"
}

// Total returns N_V, the common total count of the consistent views.
func (s *Synopsis) Total() float64 { return s.total }

// Views returns the post-processed view tables. Callers must not mutate
// them.
func (s *Synopsis) Views() []*marginal.Table { return s.views }

// RawViews returns the noisy views before post-processing.
func (s *Synopsis) RawViews() []*marginal.Table { return s.rawViews }

// Query reconstructs the marginal table over attrs using the configured
// estimator. Marginals fully covered by a view are answered by direct
// summation; otherwise the under-determined system induced by the views
// is resolved by the configured method.
func (s *Synopsis) Query(attrs []int) *marginal.Table {
	return s.QueryMethod(attrs, s.cfg.Method)
}

// QueryContext is Query with cooperative cancellation threaded into the
// reconstruction solvers; see QueryMethodContext for the error surface.
func (s *Synopsis) QueryContext(ctx context.Context, attrs []int) (*marginal.Table, error) {
	return s.QueryMethodContext(ctx, attrs, s.cfg.Method)
}

// QueryMethod is Query with an explicit estimator, leaving the synopsis
// configuration untouched — callers serving concurrent requests with
// different estimators use this. It is safe for concurrent use: all
// reconstruction paths read the views without mutating them. When the
// preferred solver fails numerically the fallback-chain answer is
// returned (see QueryMethodContext); QueryMethod never returns NaN.
func (s *Synopsis) QueryMethod(attrs []int, method ReconstructMethod) *marginal.Table {
	t, err := s.QueryMethodContext(context.Background(), attrs, method)
	if t == nil {
		// Unreachable: context.Background is never canceled, and every
		// numerical failure degrades to a non-nil fallback table.
		panic(fmt.Sprintf("core: %v", err))
	}
	return t
}

// QueryMethodContext is QueryMethod with cooperative cancellation and
// graceful numerical degradation.
//
// Cancellation: the caller's deadline or cancellation is threaded into
// the iterative solvers, which abandon the reconstruction and surface
// reconstruct.ErrDeadline or reconstruct.ErrCanceled (both also
// matching the context sentinels under errors.Is); the table is nil.
//
// Numerical failures never poison the answer: constraints carrying
// NaN/Inf are dropped, and a solver that detects instability
// (reconstruct.ErrNumerical) is replaced by the next estimator in the
// MaxEnt → dual → least-squares chain, with a uniform table as the
// final resort. In that degraded regime the returned table is non-nil
// AND the error is non-nil, matching reconstruct.ErrNumerical — the
// table is a usable (finite, non-NaN) answer and the error records that
// it came from a fallback. A query whose ctx stays live therefore
// always returns a finite table.
func (s *Synopsis) QueryMethodContext(ctx context.Context, attrs []int, method ReconstructMethod) (*marginal.Table, error) {
	if err := reconstruct.ContextErr(ctx); err != nil {
		return nil, err
	}
	canonical := marginal.New(attrs).Attrs
	// A one-shot constraint group: QueryBatch runs the identical code
	// with the group shared across requests, which is what keeps single
	// and batched answers bit-for-bit equal.
	sh := &solveShared{syn: s, attrs: canonical, raw: method == LP}
	return sh.solve(ctx, method, 0)
}

// fallbackChain orders the estimators tried for a query: the requested
// method first, then the remaining iterative solvers in the paper's
// MaxEnt → dual → least-squares preference order. The LP methods fall
// back onto the same chain (their constraint system is shared).
func fallbackChain(method ReconstructMethod) []ReconstructMethod {
	switch method {
	case CME:
		return []ReconstructMethod{CME, CMEDual, CLN}
	case CMEDual:
		return []ReconstructMethod{CMEDual, CME, CLN}
	case CLN:
		return []ReconstructMethod{CLN, CME, CMEDual}
	case LP, CLP:
		return []ReconstructMethod{method, CME, CMEDual, CLN}
	default:
		panic(fmt.Sprintf("core: unknown reconstruction method %d", int(method)))
	}
}

// Count answers a conjunction counting query from the synopsis: the
// estimated number of records whose attribute attrs[i] equals values[i]
// for every i. It is one cell of the corresponding marginal, so it
// inherits the configured estimator and costs no privacy budget.
func (s *Synopsis) Count(attrs []int, values []bool) float64 {
	if len(attrs) != len(values) {
		panic("core: attrs and values must align")
	}
	// Canonicalize jointly (on copies) so values follow their
	// attributes into the table's sorted order.
	a := append([]int(nil), attrs...)
	v := append([]bool(nil), values...)
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	// Validate at the API boundary: letting a duplicate reach
	// marginal.New panics deep inside the table layer with a message
	// that doesn't name the caller's mistake.
	for i := 1; i < len(a); i++ {
		if a[i] == a[i-1] {
			panic(fmt.Sprintf("core: Count called with duplicate attribute %d", a[i]))
		}
	}
	t := s.Query(a)
	idx := 0
	for j := range a {
		if v[j] {
			idx |= 1 << uint(j)
		}
	}
	return t.Cells[idx]
}

// Epsilon returns the privacy budget the synopsis was built with (0 for
// a no-noise synopsis).
func (s *Synopsis) Epsilon() float64 { return s.cfg.Epsilon }

// Design returns the covering design behind the views (may be nil for
// synopses assembled from ad-hoc views).
func (s *Synopsis) Design() *covering.Design { return s.cfg.Design }
