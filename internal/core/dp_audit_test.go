package core

import (
	"math"
	"testing"

	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/noise"
)

// TestEndToEndDPAudit empirically audits the whole release path: build
// PriView synopses over two neighboring datasets (D' = D plus one
// record) many times and compare the output distributions of a raw
// published view cell. ε-DP requires the likelihood ratio of any
// outcome to stay within e^ε; we check histogram ratios over dense
// buckets with statistical slack. This exercises the actual budget
// split across views (scale w/ε), not just the Laplace primitive.
func TestEndToEndDPAudit(t *testing.T) {
	const (
		eps    = 1.0
		trials = 30000
	)
	// Small world: d=4, three views of 3 attributes (w=3), so each
	// trial is microseconds. The extra record lands in view-0 cell
	// 0b000.
	base := dataset.New(4, []uint64{0b0001, 0b0110, 0b1011})
	neighbor := dataset.New(4, []uint64{0b0001, 0b0110, 0b1011, 0b0000})
	design := &covering.Design{D: 4, T: 2, L: 3, Blocks: [][]int{{0, 1, 2}, {1, 2, 3}, {0, 2, 3}}}
	if err := design.Verify(); err != nil {
		t.Fatal(err)
	}
	root := noise.NewStream(123)
	histA := map[int]int{}
	histB := map[int]int{}
	const width = 1.0
	bucket := func(x float64) int { return int(math.Floor(x / width)) }
	for i := 0; i < trials; i++ {
		sa := BuildSynopsis(base, Config{Epsilon: eps, Design: design, SkipPostprocess: true},
			root.DeriveIndexed("a", i))
		sb := BuildSynopsis(neighbor, Config{Epsilon: eps, Design: design, SkipPostprocess: true},
			root.DeriveIndexed("b", i))
		histA[bucket(sa.RawViews()[0].Cells[0])]++
		histB[bucket(sb.RawViews()[0].Cells[0])]++
	}
	bound := math.Exp(eps)
	checked := 0
	for b, ca := range histA {
		cb := histB[b]
		if ca < 400 || cb < 400 {
			continue
		}
		checked++
		ratio := float64(ca) / float64(cb)
		if ratio > bound*1.25 || ratio < 1/(bound*1.25) {
			t.Errorf("bucket %d: likelihood ratio %.3f outside e^±ε = %.3f", b, ratio, bound)
		}
	}
	if checked < 3 {
		t.Fatalf("only %d dense buckets; audit underpowered", checked)
	}
}

// TestBudgetSplitAcrossViews verifies the per-view noise scale is w/ε:
// the empirical variance of a published cell must be ≈ 2(w/ε)².
func TestBudgetSplitAcrossViews(t *testing.T) {
	data := dataset.New(4, []uint64{1, 2, 3})
	design := &covering.Design{D: 4, T: 2, L: 3, Blocks: [][]int{{0, 1, 2}, {1, 2, 3}, {0, 1, 3}}}
	if err := design.Verify(); err != nil {
		t.Fatal(err)
	}
	const eps = 0.8
	w := float64(design.W())
	root := noise.NewStream(9)
	var sum, sumSq float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		s := BuildSynopsis(data, Config{Epsilon: eps, Design: design, SkipPostprocess: true},
			root.DeriveIndexed("t", i))
		v := s.RawViews()[1].Cells[3]
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	want := 2 * (w / eps) * (w / eps)
	if math.Abs(variance-want)/want > 0.08 {
		t.Errorf("published-cell variance = %v, want ≈ %v (scale w/ε)", variance, want)
	}
}
