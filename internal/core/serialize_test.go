package core

import (
	"bytes"
	"strings"
	"testing"

	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
)

func TestSynopsisRoundTrip(t *testing.T) {
	data := synth.MSNBC(5000, 1)
	dg := covering.Groups(9, 6)
	orig := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(2))

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Total() != orig.Total() {
		t.Errorf("total %v != %v", loaded.Total(), orig.Total())
	}
	// Queries must agree exactly: the loaded views are identical and
	// reconstruction is deterministic.
	for _, attrs := range [][]int{{0, 1}, {0, 4, 8}, {2, 5, 7}} {
		a := orig.Query(attrs)
		b := loaded.Query(attrs)
		if !marginal.Equal(a, b, 1e-9) {
			t.Errorf("query %v differs after round trip", attrs)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"{}",
		`{"format":"wrong"}`,
		`{"format":"priview-synopsis-v1","views":[]}`,
		`{"format":"priview-synopsis-v1","views":[{"attrs":[0,1],"cells":[1]}]}`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("Load(%q) succeeded, want error", c)
		}
	}
}

func TestSetMethodAfterLoad(t *testing.T) {
	data := synth.MSNBC(5000, 3)
	dg := covering.Groups(9, 4)
	orig := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(4))
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loaded.SetMethod(CLN)
	got := loaded.Query([]int{0, 3, 6, 8})
	if got.Size() != 16 {
		t.Errorf("size = %d", got.Size())
	}
}
