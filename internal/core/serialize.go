package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"priview/internal/attrset"
	"priview/internal/covering"
	"priview/internal/marginal"
)

// synopsisFile is the on-disk JSON representation of a published
// synopsis: the (already post-processed) view tables plus enough
// metadata to reconstruct queries and audit the release.
type synopsisFile struct {
	Format  string     `json:"format"`
	Epsilon float64    `json:"epsilon"`
	Total   float64    `json:"total"`
	Design  designFile `json:"design"`
	Views   []viewFile `json:"views"`
}

type designFile struct {
	D      int     `json:"d"`
	T      int     `json:"t"`
	L      int     `json:"l"`
	Blocks [][]int `json:"blocks"`
}

type viewFile struct {
	Attrs []int     `json:"attrs"`
	Cells []float64 `json:"cells"`
}

const synopsisFormat = "priview-synopsis-v1"

// SynopsisFormatV1 is the legacy on-disk format identifier written by
// Save; the snapshot package wraps the same payload in a checksummed v2
// container.
const SynopsisFormatV1 = synopsisFormat

// ErrNonFinite reports a NaN or ±Inf where the synopsis must be finite.
// Save refuses to publish such a synopsis (a reader could not
// distinguish the poisoned cells from real counts), and Load refuses to
// accept one.
var ErrNonFinite = errors.New("core: non-finite value in synopsis")

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks that the synopsis is structurally publishable: finite
// epsilon, total and cells, and per-view cell counts matching 2^|attrs|.
// Save runs it before writing anything, so a poisoned synopsis fails
// with a typed error instead of encoding/json's opaque
// "unsupported value: NaN" from deep inside the encoder.
func (s *Synopsis) Validate() error {
	if !finite(s.cfg.Epsilon) || s.cfg.Epsilon < 0 {
		return fmt.Errorf("%w: epsilon is %v", ErrNonFinite, s.cfg.Epsilon)
	}
	if !finite(s.total) {
		return fmt.Errorf("%w: total is %v", ErrNonFinite, s.total)
	}
	for i, v := range s.views {
		if len(v.Cells) != 1<<uint(len(v.Attrs)) {
			return fmt.Errorf("core: view %d (attrs %v) has %d cells, want %d",
				i, v.Attrs, len(v.Cells), 1<<uint(len(v.Attrs)))
		}
		for j, c := range v.Cells {
			if !finite(c) {
				return fmt.Errorf("%w: view %d (attrs %v) cell %d is %v", ErrNonFinite, i, v.Attrs, j, c)
			}
		}
	}
	return nil
}

// Save serializes the synopsis as JSON. Only the post-processed
// views are stored — they are the published object; raw noisy views are
// an intermediate artifact. A synopsis carrying non-finite cells is
// rejected with ErrNonFinite before any bytes are written.
func (s *Synopsis) Save(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	f := synopsisFile{
		Format:  synopsisFormat,
		Epsilon: s.cfg.Epsilon,
		Total:   s.total,
	}
	if s.cfg.Design != nil {
		f.Design = designFile{
			D: s.cfg.Design.D, T: s.cfg.Design.T, L: s.cfg.Design.L,
			Blocks: s.cfg.Design.Blocks,
		}
	}
	for _, v := range s.views {
		f.Views = append(f.Views, viewFile{Attrs: v.Attrs, Cells: v.Cells})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// Load reads a synopsis previously written with Save. The views are
// used as-is (they were post-processed before saving); queries use the
// maximum-entropy estimator unless changed with SetMethod.
//
// Load validates the document before building anything: unknown
// formats, non-finite values, cell counts disagreeing with the
// attribute sets, unsorted or out-of-range attributes, duplicate views
// and malformed designs are all rejected with a descriptive error —
// never accepted silently, and never a panic, whatever the input bytes.
func Load(r io.Reader) (*Synopsis, error) {
	var f synopsisFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding synopsis: %w", err)
	}
	if f.Format != synopsisFormat {
		return nil, fmt.Errorf("core: unknown synopsis format %q", f.Format)
	}
	if len(f.Views) == 0 {
		return nil, fmt.Errorf("core: synopsis has no views")
	}
	if !finite(f.Epsilon) || f.Epsilon < 0 {
		return nil, fmt.Errorf("%w: epsilon is %v", ErrNonFinite, f.Epsilon)
	}
	if !finite(f.Total) {
		return nil, fmt.Errorf("%w: total is %v", ErrNonFinite, f.Total)
	}
	design, err := loadDesign(f.Design)
	if err != nil {
		return nil, err
	}
	views := make([]*marginal.Table, len(f.Views))
	seen := map[attrset.Set]int{}
	for i, vf := range f.Views {
		key, err := validAttrs(vf.Attrs, design)
		if err != nil {
			return nil, fmt.Errorf("core: view %d: %w", i, err)
		}
		// Check the declared cell count BEFORE allocating the table, so
		// a corrupt attrs list cannot force a 2^30-cell allocation that
		// the next line would reject anyway.
		if want := 1 << uint(len(vf.Attrs)); len(vf.Cells) != want {
			return nil, fmt.Errorf("core: view %d has %d cells, want %d", i, len(vf.Cells), want)
		}
		for j, c := range vf.Cells {
			if !finite(c) {
				return nil, fmt.Errorf("%w: view %d cell %d is %v", ErrNonFinite, i, j, c)
			}
		}
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("core: views %d and %d both cover attributes %v", prev, i, vf.Attrs)
		}
		seen[key] = i
		t := marginal.New(vf.Attrs)
		copy(t.Cells, vf.Cells)
		views[i] = t
	}
	s := &Synopsis{
		cfg:      Config{Epsilon: f.Epsilon, Design: design, Method: CME},
		views:    views,
		rawViews: cloneViews(views),
		total:    f.Total,
	}
	return s, nil
}

// maxLoadAttrs bounds a loaded view's attribute count. It matches the
// marginal package's table-size limit; anything larger would need ≥ 2^31
// cells and cannot be a real view.
const maxLoadAttrs = 30

// validAttrs checks a view attribute list — strictly ascending, within
// the global [0, 64) range (attrset's typed ErrRange/ErrDuplicate),
// inside the design's dimensionality when a design is present, and
// small enough to index a table — and returns the packed set, which
// Load uses as the duplicate-view key.
func validAttrs(attrs []int, design *covering.Design) (attrset.Set, error) {
	if len(attrs) > maxLoadAttrs {
		return 0, fmt.Errorf("has %d attributes, max %d", len(attrs), maxLoadAttrs)
	}
	key, err := attrset.FromAttrs(attrs)
	if err != nil {
		return 0, err
	}
	for i, a := range attrs {
		if design != nil && a >= design.D {
			return 0, fmt.Errorf("attribute %d outside design over %d attributes", a, design.D)
		}
		if i > 0 && a <= attrs[i-1] {
			return 0, fmt.Errorf("attributes %v not strictly ascending", attrs)
		}
	}
	return key, nil
}

// loadDesign validates and builds the covering design from its file
// form. A zero design (the serialization of a synopsis built without
// one) loads as nil rather than as an unusable zero-dimensional design.
func loadDesign(df designFile) (*covering.Design, error) {
	if df.D == 0 && len(df.Blocks) == 0 {
		return nil, nil
	}
	if df.D < 1 || df.D > 64 {
		return nil, fmt.Errorf("core: design dimension %d out of range [1, 64]", df.D)
	}
	if df.T < 0 || df.L < 0 {
		return nil, fmt.Errorf("core: design has negative parameters (t=%d, ℓ=%d)", df.T, df.L)
	}
	for i, b := range df.Blocks {
		for j, a := range b {
			if a < 0 || a >= df.D {
				return nil, fmt.Errorf("core: design block %d contains out-of-range attribute %d", i, a)
			}
			if j > 0 && a <= b[j-1] {
				return nil, fmt.Errorf("core: design block %d not strictly ascending", i)
			}
		}
	}
	return &covering.Design{D: df.D, T: df.T, L: df.L, Blocks: df.Blocks}, nil
}

// SetMethod switches the reconstruction estimator used by Query. It
// affects only post-processing of the already-published views, so it
// has no privacy cost.
func (s *Synopsis) SetMethod(m ReconstructMethod) { s.cfg.Method = m }
