package core

import (
	"encoding/json"
	"fmt"
	"io"

	"priview/internal/covering"
	"priview/internal/marginal"
)

// synopsisFile is the on-disk JSON representation of a published
// synopsis: the (already post-processed) view tables plus enough
// metadata to reconstruct queries and audit the release.
type synopsisFile struct {
	Format  string     `json:"format"`
	Epsilon float64    `json:"epsilon"`
	Total   float64    `json:"total"`
	Design  designFile `json:"design"`
	Views   []viewFile `json:"views"`
}

type designFile struct {
	D      int     `json:"d"`
	T      int     `json:"t"`
	L      int     `json:"l"`
	Blocks [][]int `json:"blocks"`
}

type viewFile struct {
	Attrs []int     `json:"attrs"`
	Cells []float64 `json:"cells"`
}

const synopsisFormat = "priview-synopsis-v1"

// Save serializes the synopsis as JSON. Only the post-processed
// views are stored — they are the published object; raw noisy views are
// an intermediate artifact.
func (s *Synopsis) Save(w io.Writer) error {
	f := synopsisFile{
		Format:  synopsisFormat,
		Epsilon: s.cfg.Epsilon,
		Total:   s.total,
	}
	if s.cfg.Design != nil {
		f.Design = designFile{
			D: s.cfg.Design.D, T: s.cfg.Design.T, L: s.cfg.Design.L,
			Blocks: s.cfg.Design.Blocks,
		}
	}
	for _, v := range s.views {
		f.Views = append(f.Views, viewFile{Attrs: v.Attrs, Cells: v.Cells})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// Load reads a synopsis previously written with Save. The views are
// used as-is (they were post-processed before saving); queries use the
// maximum-entropy estimator unless changed with SetMethod.
func Load(r io.Reader) (*Synopsis, error) {
	var f synopsisFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding synopsis: %w", err)
	}
	if f.Format != synopsisFormat {
		return nil, fmt.Errorf("core: unknown synopsis format %q", f.Format)
	}
	if len(f.Views) == 0 {
		return nil, fmt.Errorf("core: synopsis has no views")
	}
	views := make([]*marginal.Table, len(f.Views))
	for i, vf := range f.Views {
		t := marginal.New(vf.Attrs)
		if len(vf.Cells) != t.Size() {
			return nil, fmt.Errorf("core: view %d has %d cells, want %d", i, len(vf.Cells), t.Size())
		}
		copy(t.Cells, vf.Cells)
		views[i] = t
	}
	design := &covering.Design{D: f.Design.D, T: f.Design.T, L: f.Design.L, Blocks: f.Design.Blocks}
	s := &Synopsis{
		cfg:      Config{Epsilon: f.Epsilon, Design: design, Method: CME},
		views:    views,
		rawViews: cloneViews(views),
		total:    f.Total,
	}
	return s, nil
}

// SetMethod switches the reconstruction estimator used by Query. It
// affects only post-processing of the already-published views, so it
// has no privacy cost.
func (s *Synopsis) SetMethod(m ReconstructMethod) { s.cfg.Method = m }
