package core

import (
	"math"

	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/noise"
)

// DefaultEll is the paper's recommended view size ℓ=8 (§4.5), derived
// from minimizing 2^{ℓ/2}/(ℓ(ℓ−1)) — notably independent of N, d and ε.
const DefaultEll = 8

// NoiseErrorThreshold is the upper end of the paper's empirical target
// band for the Eq. 5 noise error (0.001–0.003): the planner picks the
// largest coverage t whose noise error stays below it.
const NoiseErrorThreshold = 0.003

// Plan describes a chosen view set together with its predicted noise
// error, as produced by PlanDesign.
type Plan struct {
	Design     *covering.Design
	NoiseError float64 // Eq. 5 for the chosen design
}

// NoiseError evaluates Eq. 5 for a design: the expected normalized
// error of a pair reconstructed by averaging the views that cover it.
func NoiseError(dg *covering.Design, eps float64, n int) float64 {
	return math.Pow(2, (float64(dg.L)+1)/2) / (float64(n) * eps) *
		math.Sqrt(float64(dg.W())*float64(dg.D)*float64(dg.D-1)/
			(float64(dg.L)*float64(dg.L-1)))
}

// PlanDesign chooses a covering design for a d-dimensional dataset of
// roughly n records under budget eps, following §4.5: fix ℓ=8 (or d if
// smaller), construct designs for t = 2, 3, 4, and keep the largest t
// whose Eq. 5 noise error stays below the threshold — better coverage is
// only worth taking while noise remains subdominant. t=2 is always
// available as the floor.
func PlanDesign(d, n int, eps float64, seed int64) Plan {
	ell := DefaultEll
	if ell > d {
		ell = d
	}
	best := Plan{}
	maxT := 4
	if maxT > ell {
		maxT = ell
	}
	for t := 2; t <= maxT; t++ {
		dg := covering.Best(d, ell, t, seed, 4)
		err := NoiseError(dg, eps, n)
		if best.Design == nil || err <= NoiseErrorThreshold {
			best = Plan{Design: dg, NoiseError: err}
		}
		if err > NoiseErrorThreshold {
			break // higher t only adds noise
		}
	}
	return best
}

// NoisyCount estimates N with a tiny slice of budget (the paper suggests
// ε=0.001), for use by PlanDesign before the main release.
func NoisyCount(data *dataset.Dataset, eps float64, src noise.Source) float64 {
	n := float64(data.Len()) + noise.Laplace(src, noise.LaplaceMechScale(1, eps))
	if n < 1 {
		return 1
	}
	return n
}
