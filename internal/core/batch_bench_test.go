package core

import (
	"context"
	"testing"

	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/noise"
)

// benchBatchSynopsis builds the all-3-way benchmark fixture: the MSNBC
// schema under the paper's 4-attribute covering design, the workload
// every pair of benchmarks below answers in full.
func benchBatchSynopsis(b *testing.B) (*Synopsis, []BatchRequest) {
	b.Helper()
	data := synth.MSNBC(5000, 301)
	dg := covering.Groups(9, 4)
	s := BuildSynopsis(data, Config{Epsilon: 1, Design: dg}, noise.NewStream(302))
	return s, AllKWay(dg.D, 3, CME)
}

// BenchmarkAllThreeWaySequential is the baseline the batch path is
// measured against: the plain one-query-at-a-time loop over every
// marginal of up to 3 attributes (129 solves on the 9-attribute
// schema). It lives in the same binary as BenchmarkAllThreeWayBatch so
// the comparison in BENCH_batch.json is apples to apples.
func BenchmarkAllThreeWaySequential(b *testing.B) {
	s, reqs := benchBatchSynopsis(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reqs {
			if _, err := s.QueryMethodContext(ctx, r.Attrs, r.Method); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAllThreeWayBatch answers the identical workload through
// QueryBatch: shared constraint precompute per attribute set and the
// solve fan-out across the worker pool (GOMAXPROCS workers; on a
// single-CPU runner the two paths are expected to be near parity, with
// the batch win scaling with cores).
func BenchmarkAllThreeWayBatch(b *testing.B) {
	s, reqs := benchBatchSynopsis(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.QueryBatch(ctx, reqs, BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
