package reconstruct

import (
	"context"
	"errors"
	"fmt"
)

// Typed cancellation errors returned by the *Context solver variants.
// They wrap the standard context sentinels, so callers may test with
// errors.Is against either this package's errors or context.Canceled /
// context.DeadlineExceeded.
var (
	// ErrCanceled reports that the caller canceled the reconstruction
	// before the solver converged or exhausted its iteration budget.
	ErrCanceled = errors.New("reconstruct: canceled")
	// ErrDeadline reports that the caller's deadline expired mid-solve.
	ErrDeadline = errors.New("reconstruct: deadline exceeded")
)

// ctxCheckEvery is how many outer solver iterations run between
// cancellation checks. One IPF/Dykstra cycle over the largest servable
// table (2^12 cells) costs on the order of 100µs, so this bounds the
// overshoot past a deadline to a few milliseconds while keeping the
// check off the per-cell hot path.
const ctxCheckEvery = 16

// ContextErr translates ctx's termination cause into this package's
// typed errors (nil while ctx is live). Exported so wrappers that stand
// in for a solver — e.g. fault-injection shims — can fail with the same
// error surface the real solvers use.
func ContextErr(ctx context.Context) error {
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	default:
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
}
