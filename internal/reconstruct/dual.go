package reconstruct

import (
	"context"
	"fmt"
	"math"

	"priview/internal/marginal"
)

// MaxEntDual solves the same maximum-entropy reconstruction as MaxEnt,
// but by projected gradient ascent on the entropy dual instead of
// iterative proportional fitting: the solution has the log-linear form
// P(a) ∝ exp(Σ_B λ_B(a|_B)), and the dual gradient w.r.t. λ_B(b) is
// target_B(b) − projection_B(b). IPF is coordinate ascent on the same
// dual; this solver updates all multipliers simultaneously with an
// adaptive step. It exists as a cross-check and ablation target for the
// IPF solver (the two must agree on consistent inputs) and as the
// natural extension point for stochastic/accelerated variants.
func MaxEntDual(attrs []int, total float64, cons []*marginal.Table, opt Options) *marginal.Table {
	t, err := MaxEntDualContext(context.Background(), attrs, total, cons, opt)
	if err != nil {
		// Unreachable: context.Background is never canceled.
		panic(fmt.Sprintf("reconstruct: %v", err))
	}
	return t
}

// MaxEntDualContext is MaxEntDual with cooperative cancellation: every
// few dual-ascent steps it polls ctx and returns ErrCanceled or
// ErrDeadline instead of running out its iteration budget. It is the
// one-shot form of Prepared.MaxEntDual.
func MaxEntDualContext(ctx context.Context, attrs []int, total float64, cons []*marginal.Table, opt Options) (*marginal.Table, error) {
	return Prepare(attrs, total, cons).MaxEntDual(ctx, opt)
}

// MaxEntDual is the prepared form of MaxEntDualContext. Unlike MaxEnt
// and LeastSquares it has no parallel sweep: its partition-function sum
// is a single order-sensitive reduction over the full table, and the
// solver exists as an ablation cross-check rather than a serving path —
// batch callers still get solve-level parallelism across requests. The
// multipliers live in per-call buffers, so concurrent solves off one
// Prepared stay independent.
func (p *Prepared) MaxEntDual(ctx context.Context, opt Options) (*marginal.Table, error) {
	total := p.total
	if err := checkInputs("maxent-dual", total, p.cons); err != nil {
		return nil, err
	}
	t := marginal.New(p.attrs)
	if total <= 0 {
		return t, nil
	}
	san := p.sanitized()
	if len(san) == 0 {
		t.Fill(total / float64(t.Size()))
		return t, nil
	}
	// The shared prepCons precompute (see marginal.RestrictIndices)
	// makes both the logit assembly and the gradient projection single
	// array loads per cell.
	type prepared struct {
		target *marginal.Table
		ridx   []int32
		lambda []float64
	}
	prep := make([]prepared, len(san))
	for i := range san {
		prep[i] = prepared{
			target: san[i].target,
			ridx:   san[i].ridx,
			lambda: make([]float64, san[i].target.Size()),
		}
	}
	n := t.Size()
	logits := make([]float64, n)
	proj := make([][]float64, len(prep))
	for i := range proj {
		proj[i] = make([]float64, prep[i].target.Size())
	}
	// Step size on normalized marginals; adapted multiplicatively.
	step := 1.0
	tol := opt.tol() * total
	prevWorst := math.Inf(1)
	guard := newDivergenceGuard("maxent-dual")
	maxIter := opt.maxIter() * 4 // dual ascent needs more, cheaper steps
	for iter := 0; iter < maxIter; iter++ {
		if iter%ctxCheckEvery == 0 {
			if err := ContextErr(ctx); err != nil {
				return nil, err
			}
		}
		// Primal from multipliers.
		maxLogit := math.Inf(-1)
		for a := 0; a < n; a++ {
			l := 0.0
			for i := range prep {
				l += prep[i].lambda[prep[i].ridx[a]]
			}
			logits[a] = l
			if l > maxLogit {
				maxLogit = l
			}
		}
		z := 0.0
		for a := 0; a < n; a++ {
			t.Cells[a] = math.Exp(logits[a] - maxLogit)
			z += t.Cells[a]
		}
		scale := total / z
		for a := 0; a < n; a++ {
			t.Cells[a] *= scale
		}
		// Dual gradient and convergence check.
		worst := 0.0
		for i := range prep {
			pr := proj[i]
			t.ProjectInto(pr, prep[i].ridx)
			for j := range pr {
				g := prep[i].target.Cells[j] - pr[j]
				if d := math.Abs(g); d > worst {
					worst = d
				}
			}
		}
		if err := guard.check(iter, worst); err != nil {
			return nil, err
		}
		if worst < tol {
			break
		}
		// Adapt the step: back off when the violation grows.
		if worst > prevWorst {
			step *= 0.7
		} else {
			step *= 1.02
		}
		prevWorst = worst
		for i := range prep {
			pr := proj[i]
			for j := range prep[i].lambda {
				// Gradient on the normalized scale keeps the step size
				// dimensionless.
				prep[i].lambda[j] += step * (prep[i].target.Cells[j] - pr[j]) / total
			}
		}
	}
	return checkResult("maxent-dual", maxIter, t)
}
