package reconstruct

import (
	"math/rand"
	"testing"
	"testing/quick"

	"priview/internal/marginal"
)

// Property: IPF and dual ascent are two solvers for the same convex
// program, so on consistent constraints they must land on the same
// table.
func TestDualAgreesWithIPF(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		joint := randomJoint(r, []int{0, 1, 2}, 150)
		cons := []*marginal.Table{
			joint.Project([]int{0, 1}),
			joint.Project([]int{1, 2}),
		}
		ipf := MaxEnt([]int{0, 1, 2}, 150, cons, Options{})
		dual := MaxEntDual([]int{0, 1, 2}, 150, cons, Options{MaxIter: 2000})
		return marginal.Equal(ipf, dual, 0.05)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDualSatisfiesConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	joint := randomJoint(r, []int{0, 1, 2, 3}, 300)
	cons := []*marginal.Table{
		joint.Project([]int{0, 1}),
		joint.Project([]int{1, 2}),
		joint.Project([]int{2, 3}),
	}
	got := MaxEntDual([]int{0, 1, 2, 3}, 300, cons, Options{MaxIter: 3000})
	if v := maxConstraintViolation(got, cons); v > 0.5 {
		t.Errorf("max violation = %v", v)
	}
	for _, v := range got.Cells {
		if v < 0 {
			t.Errorf("negative cell %v (log-linear form should forbid this)", v)
		}
	}
}

func TestDualNoConstraints(t *testing.T) {
	got := MaxEntDual([]int{0, 1}, 60, nil, Options{})
	for _, v := range got.Cells {
		if v != 15 {
			t.Errorf("cells = %v, want uniform 15", got.Cells)
			break
		}
	}
}

func TestDualZeroTotal(t *testing.T) {
	got := MaxEntDual([]int{0}, 0, nil, Options{})
	if got.Total() != 0 {
		t.Errorf("total = %v", got.Total())
	}
}
