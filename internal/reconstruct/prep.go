package reconstruct

import (
	"context"
	"errors"
	"math"
	"sync"

	"priview/internal/attrset"
	"priview/internal/lp"
	"priview/internal/marginal"
)

// Prepared caches the solver-independent precompute for reconstructing
// marginals over one attribute set from one constraint set: the
// sanitized maximal constraints, and per constraint the cell →
// restricted-cell mapping (RestrictIndices) together with its inverse
// scatter base used by the parallel sweep. Building it once and solving
// many times is the batch fast path — every estimator answering the
// same attribute set shares one Prepared, so the constraint dedupe and
// projection-index work that used to be redone inside each solver call
// happens once per group.
//
// A Prepared is safe for concurrent solver calls: the cached state is
// built under sync.Once and is read-only afterwards, and each solver
// call keeps its iterates in per-call buffers.
type Prepared struct {
	attrs []int
	total float64
	cons  []*marginal.Table

	sanOnce sync.Once
	san     []prepCons

	lpOnce sync.Once
	lpCons []*marginal.Table
	lpRidx [][]int32
}

// prepCons is one sanitized constraint with its projection precompute.
type prepCons struct {
	target *marginal.Table
	// ridx maps each full-table cell to its cell in target
	// (marginal.RestrictIndices).
	ridx []int32
	// base inverts ridx: base[b] is the smallest full-table cell
	// projecting onto b, and base[b]|s over submasks s of free walks
	// all of them in ascending order — the gather order the parallel
	// sweep uses to keep floating-point sums bit-identical to the
	// sequential scatter loop (see sweep.go).
	base []int32
	free int
	// groupSize is how many full-table cells share one target cell.
	groupSize float64
}

// Prepare wraps one reconstruction instance — target attribute set,
// common total, and the view-derived constraint tables — for repeated
// solving. It performs no validation or precompute itself: each solver
// method validates inputs exactly as the corresponding package-level
// function does, and the shared precompute is built lazily on first
// use, so Prepare + one solve costs the same as the one-shot call.
func Prepare(attrs []int, total float64, cons []*marginal.Table) *Prepared {
	return &Prepared{attrs: attrs, total: total, cons: cons}
}

// sanitized returns the sanitize(MaximalConstraints(...)) set with the
// per-constraint projection precompute, building it on first call.
func (p *Prepared) sanitized() []prepCons {
	p.sanOnce.Do(func() {
		t := marginal.New(p.attrs)
		cons := sanitize(MaximalConstraints(p.cons), p.total)
		p.san = make([]prepCons, len(cons))
		for i, c := range cons {
			pm := attrset.MustFromAttrs(t.Positions(c.Attrs))
			pc := prepCons{
				target:    c,
				ridx:      t.RestrictIndices(c.Attrs),
				free:      (t.Size() - 1) &^ int(pm),
				groupSize: float64(int(1) << uint(t.Dim()-c.Dim())),
			}
			pc.base = make([]int32, c.Size())
			for b := range pc.base {
				pc.base[b] = int32(deposit(b, uint64(pm)))
			}
			p.san[i] = pc
		}
	})
	return p.san
}

// MaxEnt is the prepared form of MaxEntContext: maximum-entropy
// reconstruction by iterative proportional fitting, bit-identical to
// the package-level function at any Options.SweepWorkers setting.
func (p *Prepared) MaxEnt(ctx context.Context, opt Options) (*marginal.Table, error) {
	if err := checkInputs("maxent", p.total, p.cons); err != nil {
		return nil, err
	}
	t := marginal.New(p.attrs)
	if p.total <= 0 {
		return t, nil
	}
	t.Fill(p.total / float64(t.Size()))
	san := p.sanitized()
	if len(san) == 0 {
		return t, nil
	}
	tol := opt.tol() * p.total
	proj := make([][]float64, len(san))
	for i := range proj {
		proj[i] = make([]float64, san[i].target.Size())
	}
	sw := newSweeper(t.Size(), opt.sweepWorkers())
	guard := newDivergenceGuard("maxent")
	for iter := 0; iter < opt.maxIter(); iter++ {
		if iter%ctxCheckEvery == 0 {
			if err := ContextErr(ctx); err != nil {
				return nil, err
			}
		}
		worst := 0.0
		if sw != nil {
			for i := range san {
				if w := sw.maxEntUpdate(t, &san[i], proj[i]); w > worst {
					worst = w
				}
			}
		} else {
			//lint:hot
			for i, pc := range san {
				// Current projection.
				pr := proj[i]
				t.ProjectInto(pr, pc.ridx)
				// Multiplicative update toward the target.
				for ci := range t.Cells {
					b := pc.ridx[ci]
					cur := pr[b]
					want := pc.target.Cells[b]
					if d := math.Abs(cur - want); d > worst {
						worst = d
					}
					switch {
					case cur > 0:
						t.Cells[ci] *= want / cur
					case want > 0:
						// Mass must appear in a group that currently has
						// none: seed it uniformly so the next cycle can
						// shape it.
						t.Cells[ci] = want / pc.groupSize
					default:
						t.Cells[ci] = 0
					}
				}
			}
		}
		if err := guard.check(iter, worst); err != nil {
			return nil, err
		}
		if worst < tol {
			break
		}
	}
	return checkResult("maxent", opt.maxIter(), t)
}

// LeastSquares is the prepared form of LeastSquaresContext: Dykstra's
// alternating projections onto the constraint subspaces and the
// non-negative orthant, bit-identical to the package-level function at
// any Options.SweepWorkers setting.
func (p *Prepared) LeastSquares(ctx context.Context, opt Options) (*marginal.Table, error) {
	if err := checkInputs("least-squares", p.total, p.cons); err != nil {
		return nil, err
	}
	t := marginal.New(p.attrs)
	san := p.sanitized()
	if len(san) == 0 {
		t.Fill(p.total / float64(t.Size()))
		return t, nil
	}
	// Dykstra increments: one per constraint set plus one for the
	// orthant.
	nSets := len(san) + 1
	incr := make([][]float64, nSets)
	for i := range incr {
		incr[i] = make([]float64, t.Size())
	}
	y := make([]float64, t.Size())
	proj := make([]float64, 0)
	tol := opt.tol() * math.Max(p.total, 1)
	sw := newSweeper(t.Size(), opt.sweepWorkers())
	guard := newDivergenceGuard("least-squares")
	for iter := 0; iter < opt.maxIter(); iter++ {
		if iter%ctxCheckEvery == 0 {
			if err := ContextErr(ctx); err != nil {
				return nil, err
			}
		}
		moved := 0.0
		for s := 0; s < nSets; s++ {
			if sw != nil {
				var w float64
				if s < len(san) {
					pc := &san[s]
					if cap(proj) < pc.target.Size() {
						proj = make([]float64, pc.target.Size())
					}
					proj = proj[:pc.target.Size()]
					w = sw.dykstraConstraint(t, pc, y, incr[s], proj)
				} else {
					w = sw.dykstraOrthant(t, y, incr[s])
				}
				if w > moved {
					moved = w
				}
				continue
			}
			// y = x + p_s
			for ci := range y {
				y[ci] = t.Cells[ci] + incr[s][ci]
			}
			if s < len(san) {
				pc := &san[s]
				if cap(proj) < pc.target.Size() {
					proj = make([]float64, pc.target.Size())
				}
				proj = proj[:pc.target.Size()]
				for j := range proj {
					proj[j] = 0
				}
				for ci, v := range y {
					proj[pc.ridx[ci]] += v
				}
				for ci := range y {
					b := pc.ridx[ci]
					corr := (pc.target.Cells[b] - proj[b]) / pc.groupSize
					nv := y[ci] + corr
					if d := math.Abs(nv - t.Cells[ci]); d > moved {
						moved = d
					}
					incr[s][ci] = y[ci] - nv
					t.Cells[ci] = nv
				}
			} else {
				// Orthant projection.
				for ci := range y {
					nv := y[ci]
					if nv < 0 {
						nv = 0
					}
					if d := math.Abs(nv - t.Cells[ci]); d > moved {
						moved = d
					}
					incr[s][ci] = y[ci] - nv
					t.Cells[ci] = nv
				}
			}
		}
		if err := guard.check(iter, moved); err != nil {
			return nil, err
		}
		if moved < tol {
			break
		}
	}
	t.ClampNegatives()
	return checkResult("least-squares", opt.maxIter(), t)
}

// LinProg is the prepared form of LinProgContext: the paper's max-error
// linear program over the (possibly inconsistent) raw constraints. The
// deduplicated constraint set and its projection indices are cached on
// the Prepared; the simplex tableau itself is rebuilt per call because
// the solver consumes it destructively.
func (p *Prepared) LinProg(ctx context.Context) (*marginal.Table, error) {
	if err := checkInputs("linprog", 0, p.cons); err != nil {
		return nil, err
	}
	t := marginal.New(p.attrs)
	n := t.Size()
	// Dedupe exactly identical constraints (consistent views produce
	// many); keeps the simplex tableau small without changing the
	// optimum.
	p.lpOnce.Do(func() {
		p.lpCons = dedupeIdentical(p.cons)
		p.lpRidx = make([][]int32, len(p.lpCons))
		for i, c := range p.lpCons {
			p.lpRidx[i] = t.RestrictIndices(c.Attrs)
		}
	})
	prob := &lp.Problem{
		NumVars:   n + 1, // cells then τ
		Objective: make([]float64, n+1),
	}
	prob.Objective[n] = 1
	for k, c := range p.lpCons {
		ridx := p.lpRidx[k]
		// Group cells of A by their restricted index.
		groups := make([][]int, c.Size())
		for ci := 0; ci < n; ci++ {
			groups[ridx[ci]] = append(groups[ridx[ci]], ci)
		}
		for b, cells := range groups {
			// sum(cells) - τ ≤ target  and  sum(cells) + τ ≥ target.
			le := make([]float64, n+1)
			ge := make([]float64, n+1)
			for _, ci := range cells {
				le[ci] = 1
				ge[ci] = 1
			}
			le[n] = -1
			ge[n] = 1
			prob.Constraints = append(prob.Constraints,
				lp.Constraint{Coef: le, Rel: lp.LE, B: c.Cells[b]},
				lp.Constraint{Coef: ge, Rel: lp.GE, B: c.Cells[b]},
			)
		}
	}
	sol, err := lp.SolveContext(ctx, prob)
	if err != nil {
		// Re-type cancellation so callers see one error surface for all
		// three estimators; other errors are numerical failures.
		if cerr := ContextErr(ctx); cerr != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return nil, cerr
		}
		if errors.Is(err, lp.ErrNumerical) {
			return nil, &NumericalError{Solver: "linprog", Iter: 0, Quantity: "simplex tableau", Value: math.NaN(), Err: err}
		}
		return nil, err
	}
	copy(t.Cells, sol.X[:n])
	return checkResult("linprog", 0, t)
}
