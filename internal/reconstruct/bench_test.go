package reconstruct

import (
	"math/rand"
	"testing"

	"priview/internal/marginal"
)

// benchConstraints fabricates the constraint pattern of a k=8 PriView
// query: many small consistent marginals from overlapping views.
func benchConstraints(k int, seed int64) (attrs []int, total float64, cons []*marginal.Table) {
	r := rand.New(rand.NewSource(seed))
	attrs = make([]int, k)
	for i := range attrs {
		attrs[i] = i
	}
	joint := marginal.New(attrs)
	sum := 0.0
	for i := range joint.Cells {
		joint.Cells[i] = 0.2 + r.Float64()
		sum += joint.Cells[i]
	}
	joint.Scale(100000 / sum)
	// Pair constraints covering all adjacent pairs plus a few triples.
	for i := 0; i+1 < k; i++ {
		cons = append(cons, joint.Project([]int{i, i + 1}))
	}
	for i := 0; i+2 < k; i += 2 {
		cons = append(cons, joint.Project([]int{i, i + 1, i + 2}))
	}
	return attrs, joint.Total(), cons
}

// dedupeBenchConstraints fabricates the CLP workload dedupeIdentical
// exists for: w views each projecting onto nPairs attribute pairs,
// where consistent views produce exact duplicates per pair. The
// pre-bucketing implementation compared every candidate against every
// kept table across ALL attribute sets — O(n²) full-table compares;
// bucketing by attribute set first only compares within a pair's own
// group.
func dedupeBenchConstraints(nSets, dupsPerSet int) []*marginal.Table {
	r := rand.New(rand.NewSource(9))
	// Distinct attribute pairs drawn from [0, 64) — C(64,2) = 2016
	// pairs, plenty for any nSets used here, and all within the d < 64
	// invariant tables enforce.
	pairs := make([][]int, 0, nSets)
	for a := 0; a < 64 && len(pairs) < nSets; a++ {
		for b := a + 1; b < 64 && len(pairs) < nSets; b++ {
			pairs = append(pairs, []int{a, b})
		}
	}
	if len(pairs) < nSets {
		panic("reconstruct: dedupeBenchConstraints nSets exceeds C(64,2)")
	}
	var cons []*marginal.Table
	for s := 0; s < nSets; s++ {
		proto := marginal.New(pairs[s])
		for i := range proto.Cells {
			proto.Cells[i] = r.Float64() * 1000
		}
		for d := 0; d < dupsPerSet; d++ {
			cons = append(cons, proto.Clone())
		}
	}
	return cons
}

// BenchmarkDedupeIdentical measures the constraint dedup pass on 3000
// constraints (300 attribute sets × 10 duplicate views each), the CLP
// shape where the quadratic cross-set compares dominate. The current
// implementation buckets on the attribute mask (one word, no
// allocation); BenchmarkDedupeIdenticalStringKeyed below is the
// retired marginal.Key-bucketed version for comparison. Numbers are
// recorded in BENCH_attrset.json (earlier history of this pass is in
// BENCH_qcache.json).
func BenchmarkDedupeIdentical(b *testing.B) {
	cons := dedupeBenchConstraints(300, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := dedupeIdentical(cons)
		if len(out) != 300 {
			b.Fatalf("deduped to %d, want 300", len(out))
		}
	}
}

// dedupeIdenticalStringKeyed is the pre-attrset implementation kept
// verbatim as the benchmark baseline: buckets keyed on the
// marginal.Key string, paying one string allocation and a string hash
// per constraint.
func dedupeIdenticalStringKeyed(cons []*marginal.Table) []*marginal.Table {
	out := make([]*marginal.Table, 0, len(cons))
	buckets := make(map[string][]*marginal.Table, len(cons))
	for _, c := range cons {
		k := marginal.Key(c.Attrs)
		dup := false
		for _, o := range buckets[k] {
			if marginal.Equal(c, o, 1e-6) {
				dup = true
				break
			}
		}
		if !dup {
			buckets[k] = append(buckets[k], c)
			out = append(out, c)
		}
	}
	return out
}

func BenchmarkDedupeIdenticalStringKeyed(b *testing.B) {
	cons := dedupeBenchConstraints(300, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := dedupeIdenticalStringKeyed(cons)
		if len(out) != 300 {
			b.Fatalf("deduped to %d, want 300", len(out))
		}
	}
}

func BenchmarkMaxEntK6(b *testing.B) {
	attrs, total, cons := benchConstraints(6, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxEnt(attrs, total, cons, Options{})
	}
}

func BenchmarkMaxEntK8(b *testing.B) {
	attrs, total, cons := benchConstraints(8, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxEnt(attrs, total, cons, Options{})
	}
}

func BenchmarkMaxEntDualK6(b *testing.B) {
	attrs, total, cons := benchConstraints(6, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxEntDual(attrs, total, cons, Options{})
	}
}

func BenchmarkLeastSquaresK6(b *testing.B) {
	attrs, total, cons := benchConstraints(6, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LeastSquares(attrs, total, cons, Options{})
	}
}

func BenchmarkLinProgK4(b *testing.B) {
	attrs, total, cons := benchConstraints(4, 5)
	_ = total
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LinProg(attrs, cons); err != nil {
			b.Fatal(err)
		}
	}
}
