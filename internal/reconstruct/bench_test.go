package reconstruct

import (
	"math/rand"
	"testing"

	"priview/internal/marginal"
)

// benchConstraints fabricates the constraint pattern of a k=8 PriView
// query: many small consistent marginals from overlapping views.
func benchConstraints(k int, seed int64) (attrs []int, total float64, cons []*marginal.Table) {
	r := rand.New(rand.NewSource(seed))
	attrs = make([]int, k)
	for i := range attrs {
		attrs[i] = i
	}
	joint := marginal.New(attrs)
	sum := 0.0
	for i := range joint.Cells {
		joint.Cells[i] = 0.2 + r.Float64()
		sum += joint.Cells[i]
	}
	joint.Scale(100000 / sum)
	// Pair constraints covering all adjacent pairs plus a few triples.
	for i := 0; i+1 < k; i++ {
		cons = append(cons, joint.Project([]int{i, i + 1}))
	}
	for i := 0; i+2 < k; i += 2 {
		cons = append(cons, joint.Project([]int{i, i + 1, i + 2}))
	}
	return attrs, joint.Total(), cons
}

// dedupeBenchConstraints fabricates the CLP workload dedupeIdentical
// exists for: w views each projecting onto nPairs attribute pairs,
// where consistent views produce exact duplicates per pair. The
// pre-bucketing implementation compared every candidate against every
// kept table across ALL attribute sets — O(n²) full-table compares;
// bucketing by attribute set first only compares within a pair's own
// group.
func dedupeBenchConstraints(nSets, dupsPerSet int) []*marginal.Table {
	r := rand.New(rand.NewSource(9))
	var cons []*marginal.Table
	for s := 0; s < nSets; s++ {
		proto := marginal.New([]int{2 * s, 2*s + 1})
		for i := range proto.Cells {
			proto.Cells[i] = r.Float64() * 1000
		}
		for d := 0; d < dupsPerSet; d++ {
			cons = append(cons, proto.Clone())
		}
	}
	return cons
}

// BenchmarkDedupeIdentical measures the constraint dedup pass on 3000
// constraints (300 attribute sets × 10 duplicate views each), the CLP
// shape where the quadratic cross-set compares dominate. Measured on
// the reference box (see BENCH_qcache.json): before the bucketing
// change ~692µs/op, after ~402µs/op; at 1000 sets the gap widens to
// ~5.8ms vs ~0.89ms. Below ~100 distinct sets the old quadratic pass
// is actually cheaper (marginal.Equal fast-rejects on attrs, and
// bucketing pays one marginal.Key allocation per table), but at that
// size either pass is nanoseconds next to the solve it feeds.
func BenchmarkDedupeIdentical(b *testing.B) {
	cons := dedupeBenchConstraints(300, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := dedupeIdentical(cons)
		if len(out) != 300 {
			b.Fatalf("deduped to %d, want 300", len(out))
		}
	}
}

func BenchmarkMaxEntK6(b *testing.B) {
	attrs, total, cons := benchConstraints(6, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxEnt(attrs, total, cons, Options{})
	}
}

func BenchmarkMaxEntK8(b *testing.B) {
	attrs, total, cons := benchConstraints(8, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxEnt(attrs, total, cons, Options{})
	}
}

func BenchmarkMaxEntDualK6(b *testing.B) {
	attrs, total, cons := benchConstraints(6, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxEntDual(attrs, total, cons, Options{})
	}
}

func BenchmarkLeastSquaresK6(b *testing.B) {
	attrs, total, cons := benchConstraints(6, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LeastSquares(attrs, total, cons, Options{})
	}
}

func BenchmarkLinProgK4(b *testing.B) {
	attrs, total, cons := benchConstraints(4, 5)
	_ = total
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LinProg(attrs, cons); err != nil {
			b.Fatal(err)
		}
	}
}
