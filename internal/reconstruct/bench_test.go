package reconstruct

import (
	"math/rand"
	"testing"

	"priview/internal/marginal"
)

// benchConstraints fabricates the constraint pattern of a k=8 PriView
// query: many small consistent marginals from overlapping views.
func benchConstraints(k int, seed int64) (attrs []int, total float64, cons []*marginal.Table) {
	r := rand.New(rand.NewSource(seed))
	attrs = make([]int, k)
	for i := range attrs {
		attrs[i] = i
	}
	joint := marginal.New(attrs)
	sum := 0.0
	for i := range joint.Cells {
		joint.Cells[i] = 0.2 + r.Float64()
		sum += joint.Cells[i]
	}
	joint.Scale(100000 / sum)
	// Pair constraints covering all adjacent pairs plus a few triples.
	for i := 0; i+1 < k; i++ {
		cons = append(cons, joint.Project([]int{i, i + 1}))
	}
	for i := 0; i+2 < k; i += 2 {
		cons = append(cons, joint.Project([]int{i, i + 1, i + 2}))
	}
	return attrs, joint.Total(), cons
}

func BenchmarkMaxEntK6(b *testing.B) {
	attrs, total, cons := benchConstraints(6, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxEnt(attrs, total, cons, Options{})
	}
}

func BenchmarkMaxEntK8(b *testing.B) {
	attrs, total, cons := benchConstraints(8, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxEnt(attrs, total, cons, Options{})
	}
}

func BenchmarkMaxEntDualK6(b *testing.B) {
	attrs, total, cons := benchConstraints(6, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxEntDual(attrs, total, cons, Options{})
	}
}

func BenchmarkLeastSquaresK6(b *testing.B) {
	attrs, total, cons := benchConstraints(6, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LeastSquares(attrs, total, cons, Options{})
	}
}

func BenchmarkLinProgK4(b *testing.B) {
	attrs, total, cons := benchConstraints(4, 5)
	_ = total
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LinProg(attrs, cons); err != nil {
			b.Fatal(err)
		}
	}
}
