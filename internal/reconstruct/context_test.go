package reconstruct

import (
	"context"
	"errors"
	"testing"
	"time"

	"priview/internal/marginal"
)

// conflictingCons builds a constraint set IPF can never satisfy: the
// two views disagree wildly on attribute 1's marginal, so the fit
// oscillates instead of converging and only the iteration budget (or a
// deadline) stops it.
func conflictingCons() []*marginal.Table {
	c1 := marginal.New([]int{0, 1})
	copy(c1.Cells, []float64{100, 100, 400, 400}) // attr1=1 carries 800
	c2 := marginal.New([]int{1, 2})
	copy(c2.Cells, []float64{400, 100, 400, 100}) // attr1=1 carries 200
	return []*marginal.Table{c1, c2}
}

var hugeOpt = Options{MaxIter: 100_000_000, Tol: 1e-12}

// TestMaxEntContextDeadline is the cancelable-CME proof: with an
// iteration budget that would run for minutes, the deadline stops the
// fit within milliseconds and surfaces ErrDeadline.
func TestMaxEntContextDeadline(t *testing.T) {
	attrs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	table, err := MaxEntContext(ctx, attrs, 1000, conflictingCons(), hugeOpt)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err %v does not match context.DeadlineExceeded under errors.Is", err)
	}
	if table != nil {
		t.Error("canceled solve returned a table")
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline ignored: solve ran %v", elapsed)
	}
}

func TestLeastSquaresContextDeadline(t *testing.T) {
	attrs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := LeastSquaresContext(ctx, attrs, 1000, conflictingCons(), hugeOpt)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline ignored: solve ran %v", elapsed)
	}
}

func TestContextVariantsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attrs := []int{0, 1, 2}
	cons := conflictingCons()
	cases := map[string]func() error{
		"MaxEnt": func() error {
			_, err := MaxEntContext(ctx, attrs, 100, cons, Options{})
			return err
		},
		"MaxEntDual": func() error {
			_, err := MaxEntDualContext(ctx, attrs, 100, cons, Options{})
			return err
		},
		"LeastSquares": func() error {
			_, err := LeastSquaresContext(ctx, attrs, 100, cons, Options{})
			return err
		},
		"LinProg": func() error {
			_, err := LinProgContext(ctx, attrs, cons)
			return err
		},
	}
	for name, run := range cases {
		if err := run(); !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err %v does not match context.Canceled under errors.Is", name, err)
		}
	}
}

// TestWrappersMatchContextVariants pins the wrapper contract: the
// ctx-less entry points must be exactly the Background-context solve.
func TestWrappersMatchContextVariants(t *testing.T) {
	attrs := []int{0, 1, 2}
	cons := conflictingCons()
	opt := Options{MaxIter: 50}
	plain := MaxEnt(attrs, 1000, cons, opt)
	viaCtx, err := MaxEntContext(context.Background(), attrs, 1000, cons, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !marginal.Equal(plain, viaCtx, 0) {
		t.Error("MaxEnt and MaxEntContext(Background) disagree")
	}
}
