package reconstruct

import (
	"errors"
	"fmt"
	"math"

	"priview/internal/marginal"
)

// ErrNumerical is the sentinel for numerical failures inside the
// iterative solvers: a NaN or Inf in the inputs or the iterates, or a
// residual that keeps growing instead of converging. Callers test with
// errors.Is(err, ErrNumerical); the concrete *NumericalError carries the
// iteration and the offending quantity for diagnosis.
var ErrNumerical = errors.New("reconstruct: numerical instability")

// NumericalError reports where a solver went numerically wrong. It
// matches ErrNumerical under errors.Is.
type NumericalError struct {
	// Solver names the estimator ("maxent", "maxent-dual",
	// "least-squares", "linprog").
	Solver string
	// Iter is the outer iteration at which the problem was detected
	// (-1 when the inputs were already bad).
	Iter int
	// Quantity names what was non-finite or diverging ("total",
	// "constraint cell", "residual", "cell value").
	Quantity string
	// Value is the offending value (NaN, ±Inf, or the diverged
	// residual).
	Value float64
	// Err is the underlying cause when the failure surfaced from a
	// lower layer (e.g. the simplex solver); may be nil.
	Err error
}

// Error implements error.
func (e *NumericalError) Error() string {
	var msg string
	if e.Iter < 0 {
		msg = fmt.Sprintf("reconstruct: %s: non-finite %s (%v) in input", e.Solver, e.Quantity, e.Value)
	} else {
		msg = fmt.Sprintf("reconstruct: %s: bad %s (%v) at iteration %d", e.Solver, e.Quantity, e.Value, e.Iter)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Is matches the ErrNumerical sentinel.
func (e *NumericalError) Is(target error) bool { return target == ErrNumerical }

// Unwrap exposes the underlying cause for errors.Is/As chains.
func (e *NumericalError) Unwrap() error { return e.Err }

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// checkInputs validates the solver inputs: the total and every
// constraint cell must be finite. Solvers call it before touching the
// constraint set, so a poisoned view fails fast with a typed error
// instead of silently propagating NaN into every output cell.
func checkInputs(solver string, total float64, cons []*marginal.Table) error {
	if !isFinite(total) {
		return &NumericalError{Solver: solver, Iter: -1, Quantity: "total", Value: total}
	}
	for i, c := range cons {
		for _, v := range c.Cells {
			if !isFinite(v) {
				return &NumericalError{
					Solver: solver, Iter: -1,
					Quantity: fmt.Sprintf("constraint %d (attrs %v) cell", i, c.Attrs),
					Value:    v,
				}
			}
		}
	}
	return nil
}

// checkResult verifies a solver's output table is fully finite — the
// final line of defense ensuring no solver ever hands back a NaN
// marginal.
func checkResult(solver string, iter int, t *marginal.Table) (*marginal.Table, error) {
	for _, v := range t.Cells {
		if !isFinite(v) {
			return nil, &NumericalError{Solver: solver, Iter: iter, Quantity: "cell value", Value: v}
		}
	}
	return t, nil
}

// divergenceGuard watches the residual across solver checkpoints. It
// flags immediately on a non-finite residual, and flags divergence when
// the residual grows monotonically across divergeAfter consecutive
// checkpoints while sitting far above the best residual seen — the
// signature of a blow-up, as opposed to the bounded oscillation of IPF
// or dual ascent on mildly inconsistent constraints.
type divergenceGuard struct {
	solver string
	best   float64
	prev   float64
	grown  int
}

const (
	// divergeFactor is how far above its best value the residual must
	// sit before growth counts as divergence.
	divergeFactor = 1e3
	// divergeAfter is how many consecutive growing checkpoints trigger
	// the divergence error.
	divergeAfter = 8
)

func newDivergenceGuard(solver string) divergenceGuard {
	return divergenceGuard{solver: solver, best: math.Inf(1), prev: math.Inf(1)}
}

// check examines the residual at iteration iter, returning a
// *NumericalError when it is non-finite or diverging.
func (g *divergenceGuard) check(iter int, residual float64) error {
	if !isFinite(residual) {
		return &NumericalError{Solver: g.solver, Iter: iter, Quantity: "residual", Value: residual}
	}
	if residual < g.best {
		g.best = residual
	}
	if residual > g.prev && residual > divergeFactor*g.best {
		g.grown++
	} else {
		g.grown = 0
	}
	g.prev = residual
	if g.grown >= divergeAfter {
		return &NumericalError{Solver: g.solver, Iter: iter, Quantity: "diverging residual", Value: residual}
	}
	return nil
}

// FiniteTable reports whether every cell of t is finite (no NaN/Inf).
func FiniteTable(t *marginal.Table) bool {
	for _, v := range t.Cells {
		if !isFinite(v) {
			return false
		}
	}
	return true
}

// DropNonFinite partitions a constraint set into the tables whose cells
// are all finite and the count of tables dropped for carrying NaN/Inf.
// core.Query uses it to degrade gracefully when one poisoned view would
// otherwise fail every estimator.
func DropNonFinite(cons []*marginal.Table) (kept []*marginal.Table, dropped int) {
	kept = cons[:0:0]
	for _, c := range cons {
		ok := true
		for _, v := range c.Cells {
			if !isFinite(v) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		} else {
			dropped++
		}
	}
	return kept, dropped
}
