// Package reconstruct computes a k-way marginal table T_A from a set of
// consistent view marginals (§4.3 of the paper). When A is contained in
// some view the answer is a direct projection; otherwise the views
// induce an under-determined system of linear constraints on T_A and the
// package offers the paper's three estimators: maximum entropy (the
// proposed method, solved by iterative proportional fitting), least
// squares (Dykstra's alternating projections), and linear programming
// (max-error minimization via simplex).
package reconstruct

import (
	"context"
	"fmt"
	"math"

	"priview/internal/attrset"
	"priview/internal/marginal"
)

// Options tunes the iterative solvers. The zero value selects sensible
// defaults.
type Options struct {
	// MaxIter bounds the number of IPF/Dykstra cycles (default 500).
	MaxIter int
	// Tol is the convergence threshold on the largest constraint
	// violation relative to the total count (default 1e-9).
	Tol float64
	// SweepWorkers bounds the goroutines parallelizing the per-view
	// projection/update sweep inside one solve of a large table (≥
	// sweepThreshold cells); 0 or 1 keeps the sweep sequential. The
	// sweep's gather-ordered reduction makes results bit-for-bit
	// identical at every setting — see sweep.go.
	SweepWorkers int
}

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 500
	}
	return o.MaxIter
}

func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-9
	}
	return o.Tol
}

func (o Options) sweepWorkers() int {
	if o.SweepWorkers <= 0 {
		return 1
	}
	return o.SweepWorkers
}

// ConstraintsFromViews projects every view onto its intersection with
// attrs, returning one constraint marginal per view that shares at least
// one attribute with attrs. The result keeps per-view duplicates — the
// linear-programming method wants all of them (it reconciles
// inconsistent views itself). Views fully covering attrs yield a
// constraint over attrs itself.
func ConstraintsFromViews(views []*marginal.Table, attrs []int) []*marginal.Table {
	target := attrset.MustFromAttrs(attrs)
	var cons []*marginal.Table
	for _, v := range views {
		b := v.Mask().Intersect(target)
		if b.Empty() {
			continue
		}
		cons = append(cons, v.Project(b.Attrs()))
	}
	return cons
}

// MaximalConstraints reduces a constraint set to maximal attribute sets:
// a constraint over B is dropped when another constraint covers B' ⊋ B
// (its information is implied once views are consistent), and duplicate
// sets are averaged. This is the constraint set the maximum-entropy and
// least-squares methods consume.
func MaximalConstraints(cons []*marginal.Table) []*marginal.Table {
	// Average duplicates first, keyed on the attribute masks — the mask
	// word is the map key, with no per-constraint string allocation.
	byKey := map[attrset.Set][]*marginal.Table{}
	var order []attrset.Set
	for _, c := range cons {
		k := c.Mask()
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], c)
	}
	merged := make([]*marginal.Table, 0, len(order))
	for _, k := range order {
		group := byKey[k]
		avg := group[0].Clone()
		for _, c := range group[1:] {
			avg.AddInto(c)
		}
		avg.Scale(1 / float64(len(group)))
		merged = append(merged, avg)
	}
	// Keep only maximal sets: after merging, masks are distinct, so a
	// strict-superset test is one subset word-op per pair.
	var out []*marginal.Table
	for i, c := range merged {
		maximal := true
		for j, other := range merged {
			if i == j {
				continue
			}
			if c.Mask().ProperSubset(other.Mask()) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, c)
		}
	}
	return out
}

// Covered returns the direct projection of some view fully containing
// attrs, or nil when no view covers it.
func Covered(views []*marginal.Table, attrs []int) *marginal.Table {
	target := attrset.MustFromAttrs(attrs)
	for _, v := range views {
		if target.Subset(v.Mask()) {
			return v.Project(attrs)
		}
	}
	return nil
}

// sanitize clamps negative cells of each constraint to zero and rescales
// the constraint to the common total, making the targets usable by the
// multiplicative maxent updates and the orthant-constrained least
// squares. This mirrors the paper's constraint relaxation: slightly
// infeasible noisy equalities are replaced by the nearest feasible ones.
func sanitize(cons []*marginal.Table, total float64) []*marginal.Table {
	out := make([]*marginal.Table, len(cons))
	for i, c := range cons {
		s := c.Clone()
		s.ClampNegatives()
		sum := s.Total()
		if sum > 0 {
			s.Scale(total / sum)
		} else {
			s.Fill(total / float64(s.Size()))
		}
		out[i] = s
	}
	return out
}

// MaxEnt reconstructs the maximum-entropy marginal over attrs subject to
// the given constraint marginals (assumed mutually consistent, as
// produced by the consistency step) and total count. Iterative
// proportional fitting is exactly coordinate ascent on the max-entropy
// dual, so for consistent constraints it converges to the unique
// maximum-entropy solution; for mildly inconsistent ones it settles
// near the relaxed solution, matching the paper's gradual-relaxation
// fallback.
func MaxEnt(attrs []int, total float64, cons []*marginal.Table, opt Options) *marginal.Table {
	t, err := MaxEntContext(context.Background(), attrs, total, cons, opt)
	if err != nil {
		// Unreachable: context.Background is never canceled.
		panic(fmt.Sprintf("reconstruct: %v", err))
	}
	return t
}

// MaxEntContext is MaxEnt with cooperative cancellation: every few IPF
// cycles it polls ctx and, when the caller has canceled or the deadline
// has passed, abandons the fit and returns ErrCanceled or ErrDeadline
// instead of running to MaxIter. It is the one-shot form of
// Prepared.MaxEnt; batch callers use Prepare to share the constraint
// precompute across solves.
func MaxEntContext(ctx context.Context, attrs []int, total float64, cons []*marginal.Table, opt Options) (*marginal.Table, error) {
	return Prepare(attrs, total, cons).MaxEnt(ctx, opt)
}

// LeastSquares reconstructs the minimum-L2-norm non-negative marginal
// satisfying the constraints, via Dykstra's alternating projections onto
// the constraint affine subspaces and the non-negative orthant. Starting
// from the origin, Dykstra converges to the projection of 0 onto the
// feasible set, i.e. the least-norm feasible table.
func LeastSquares(attrs []int, total float64, cons []*marginal.Table, opt Options) *marginal.Table {
	t, err := LeastSquaresContext(context.Background(), attrs, total, cons, opt)
	if err != nil {
		// Unreachable: context.Background is never canceled.
		panic(fmt.Sprintf("reconstruct: %v", err))
	}
	return t
}

// LeastSquaresContext is LeastSquares with cooperative cancellation:
// every few Dykstra cycles it polls ctx and returns ErrCanceled or
// ErrDeadline instead of running to MaxIter. It is the one-shot form of
// Prepared.LeastSquares; batch callers use Prepare to share the
// constraint precompute across solves.
func LeastSquaresContext(ctx context.Context, attrs []int, total float64, cons []*marginal.Table, opt Options) (*marginal.Table, error) {
	return Prepare(attrs, total, cons).LeastSquares(ctx, opt)
}

// LinProg reconstructs the marginal by the paper's linear program:
// minimize the maximum violation τ of any view-derived constraint
// subject to non-negative cells. It accepts possibly inconsistent
// constraints (one per view) — this is the only method that does not
// require a prior consistency step.
func LinProg(attrs []int, cons []*marginal.Table) (*marginal.Table, error) {
	return LinProgContext(context.Background(), attrs, cons)
}

// LinProgContext is LinProg with cooperative cancellation threaded into
// the simplex iterations; it returns ErrCanceled or ErrDeadline when the
// caller gives up, and other errors for genuine solver failures. It is
// the one-shot form of Prepared.LinProg.
func LinProgContext(ctx context.Context, attrs []int, cons []*marginal.Table) (*marginal.Table, error) {
	return Prepare(attrs, 0, cons).LinProg(ctx)
}

// dedupeIdentical drops constraints that duplicate an earlier one to
// within a small tolerance. After the consistency step all views agree
// exactly on shared projections up to floating-point rounding, so the
// tolerance collapses the (large) redundant constraint set of CLP while
// leaving genuinely inconsistent LP constraints untouched.
//
// Candidates are bucketed by their attribute mask first: marginal.Equal
// is false for different attribute sets, so only same-set tables can be
// duplicates and cross-bucket cell comparisons are pure waste. The mask
// word is the bucket key directly — no string allocation per
// constraint, unlike the retired marginal.Key scheme — keeping the pass
// near-linear for the common CLP pattern of many views projecting onto
// many distinct subsets, instead of O(n²) full-table compares.
func dedupeIdentical(cons []*marginal.Table) []*marginal.Table {
	out := make([]*marginal.Table, 0, len(cons))
	buckets := make(map[attrset.Set][]*marginal.Table, len(cons))
	for _, c := range cons {
		k := c.Mask()
		dup := false
		for _, o := range buckets[k] {
			if marginal.Equal(c, o, 1e-6) {
				dup = true
				break
			}
		}
		if !dup {
			buckets[k] = append(buckets[k], c)
			out = append(out, c)
		}
	}
	return out
}

// Entropy returns the Shannon entropy (nats) of the normalized table,
// used by tests to verify the maximum-entropy property.
func Entropy(t *marginal.Table) float64 {
	total := t.Total()
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, v := range t.Cells {
		if v > 0 {
			p := v / total
			h -= p * math.Log(p)
		}
	}
	return h
}
