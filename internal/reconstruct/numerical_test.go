package reconstruct

import (
	"context"
	"errors"
	"math"
	"testing"

	"priview/internal/marginal"
)

// poisonedCons returns a small consistent constraint set with one NaN
// cell injected into the first constraint.
func poisonedCons(bad float64) []*marginal.Table {
	c0 := marginal.New([]int{0})
	c0.Cells[0], c0.Cells[1] = 60, 40
	c1 := marginal.New([]int{1})
	c1.Cells[0], c1.Cells[1] = 70, 30
	c0.Cells[0] = bad
	return []*marginal.Table{c0, c1}
}

func TestSolversRejectNonFiniteConstraints(t *testing.T) {
	ctx := context.Background()
	attrs := []int{0, 1}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		cons := poisonedCons(bad)
		solvers := map[string]func() (*marginal.Table, error){
			"maxent": func() (*marginal.Table, error) {
				return MaxEntContext(ctx, attrs, 100, cons, Options{})
			},
			"maxent-dual": func() (*marginal.Table, error) {
				return MaxEntDualContext(ctx, attrs, 100, cons, Options{})
			},
			"least-squares": func() (*marginal.Table, error) {
				return LeastSquaresContext(ctx, attrs, 100, cons, Options{})
			},
			"linprog": func() (*marginal.Table, error) {
				return LinProgContext(ctx, attrs, cons)
			},
		}
		for name, solve := range solvers {
			tab, err := solve()
			if !errors.Is(err, ErrNumerical) {
				t.Errorf("%s with %v constraint: err = %v, want ErrNumerical", name, bad, err)
			}
			if tab != nil {
				t.Errorf("%s with %v constraint returned a table alongside the error", name, bad)
			}
			var ne *NumericalError
			if !errors.As(err, &ne) {
				t.Errorf("%s: error %T does not unwrap to *NumericalError", name, err)
			} else if ne.Solver != name {
				t.Errorf("%s: NumericalError.Solver = %q", name, ne.Solver)
			}
		}
	}
}

func TestSolversRejectNonFiniteTotal(t *testing.T) {
	ctx := context.Background()
	attrs := []int{0, 1}
	cons := poisonedCons(60) // repair the poison: all-finite constraints
	for _, total := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := MaxEntContext(ctx, attrs, total, cons, Options{}); !errors.Is(err, ErrNumerical) {
			t.Errorf("maxent with total %v: err = %v, want ErrNumerical", total, err)
		}
		if _, err := MaxEntDualContext(ctx, attrs, total, cons, Options{}); !errors.Is(err, ErrNumerical) {
			t.Errorf("maxent-dual with total %v: err = %v, want ErrNumerical", total, err)
		}
		if _, err := LeastSquaresContext(ctx, attrs, total, cons, Options{}); !errors.Is(err, ErrNumerical) {
			t.Errorf("least-squares with total %v: err = %v, want ErrNumerical", total, err)
		}
	}
}

// TestSolversStayCleanOnFiniteInputs proves the guards do not fire on
// ordinary (even mildly inconsistent) inputs across a spread of shapes.
func TestSolversStayCleanOnFiniteInputs(t *testing.T) {
	ctx := context.Background()
	attrs := []int{0, 1, 2}
	c0 := marginal.New([]int{0, 1})
	copy(c0.Cells, []float64{30, 20, 25, 25})
	c1 := marginal.New([]int{1, 2})
	// Slightly inconsistent with c0 on attribute 1 — the relaxed regime.
	copy(c1.Cells, []float64{28, 24, 26, 24})
	cons := []*marginal.Table{c0, c1}
	for name, solve := range map[string]func() (*marginal.Table, error){
		"maxent": func() (*marginal.Table, error) { return MaxEntContext(ctx, attrs, 100, cons, Options{}) },
		"maxent-dual": func() (*marginal.Table, error) {
			return MaxEntDualContext(ctx, attrs, 100, cons, Options{})
		},
		"least-squares": func() (*marginal.Table, error) {
			return LeastSquaresContext(ctx, attrs, 100, cons, Options{})
		},
		"linprog": func() (*marginal.Table, error) { return LinProgContext(ctx, attrs, cons) },
	} {
		tab, err := solve()
		if err != nil {
			t.Fatalf("%s on clean inputs: %v", name, err)
		}
		for i, v := range tab.Cells {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s produced non-finite cell %d: %v", name, i, v)
			}
		}
	}
}

func TestDivergenceGuardFlagsMonotoneBlowup(t *testing.T) {
	g := newDivergenceGuard("test")
	if err := g.check(0, 1.0); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	var got error
	r := 2e3 // already far above best=1
	for i := 1; i < 100 && got == nil; i++ {
		got = g.check(i, r)
		r *= 2
	}
	if !errors.Is(got, ErrNumerical) {
		t.Fatalf("monotone blow-up not flagged: %v", got)
	}
	var ne *NumericalError
	if !errors.As(got, &ne) || ne.Quantity != "diverging residual" {
		t.Fatalf("unexpected error detail: %v", got)
	}
}

func TestDivergenceGuardToleratesOscillation(t *testing.T) {
	g := newDivergenceGuard("test")
	// Residual oscillates within a factor of divergeFactor of its best —
	// the normal pattern for IPF on inconsistent constraints.
	vals := []float64{5, 3, 4, 2, 6, 2.5, 5, 2.2, 4.8}
	for i := 0; i < 200; i++ {
		if err := g.check(i, vals[i%len(vals)]); err != nil {
			t.Fatalf("oscillating residual flagged at %d: %v", i, err)
		}
	}
}

func TestDivergenceGuardFlagsNonFiniteResidual(t *testing.T) {
	g := newDivergenceGuard("test")
	if err := g.check(0, math.NaN()); !errors.Is(err, ErrNumerical) {
		t.Fatalf("NaN residual: err = %v, want ErrNumerical", err)
	}
}

func TestDropNonFinite(t *testing.T) {
	good := marginal.New([]int{0})
	good.Cells[0], good.Cells[1] = 1, 2
	bad := marginal.New([]int{1})
	bad.Cells[0] = math.NaN()
	kept, dropped := DropNonFinite([]*marginal.Table{good, bad})
	if dropped != 1 || len(kept) != 1 || !marginal.SameAttrs(kept[0].Attrs, good.Attrs) {
		t.Fatalf("DropNonFinite: kept %v, dropped %d", kept, dropped)
	}
	kept, dropped = DropNonFinite(nil)
	if dropped != 0 || len(kept) != 0 {
		t.Fatalf("DropNonFinite(nil): kept %v, dropped %d", kept, dropped)
	}
}
