package reconstruct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"priview/internal/marginal"
)

func randomJoint(r *rand.Rand, attrs []int, total float64) *marginal.Table {
	t := marginal.New(attrs)
	sum := 0.0
	for i := range t.Cells {
		t.Cells[i] = 0.05 + r.Float64()
		sum += t.Cells[i]
	}
	t.Scale(total / sum)
	return t
}

func maxConstraintViolation(t *marginal.Table, cons []*marginal.Table) float64 {
	worst := 0.0
	for _, c := range cons {
		p := t.Project(c.Attrs)
		if d := marginal.MaxAbsDiff(p, c); d > worst {
			worst = d
		}
	}
	return worst
}

func TestCovered(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v := randomJoint(r, []int{0, 1, 2, 3}, 100)
	got := Covered([]*marginal.Table{v}, []int{1, 3})
	want := v.Project([]int{1, 3})
	if got == nil || !marginal.Equal(got, want, 1e-12) {
		t.Errorf("Covered = %v, want %v", got, want)
	}
	if Covered([]*marginal.Table{v}, []int{1, 4}) != nil {
		t.Error("Covered returned a table for an uncovered set")
	}
}

func TestConstraintsFromViews(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	v1 := randomJoint(r, []int{0, 1, 2}, 100)
	v2 := randomJoint(r, []int{3, 4}, 100)
	v3 := randomJoint(r, []int{2, 3, 5}, 100)
	cons := ConstraintsFromViews([]*marginal.Table{v1, v2, v3}, []int{2, 3})
	if len(cons) != 3 {
		t.Fatalf("got %d constraints, want 3 (v1 gives {2}, v2 gives {3}, v3 gives {2,3})", len(cons))
	}
	if !marginal.SameAttrs(cons[0].Attrs, []int{2}) ||
		!marginal.SameAttrs(cons[1].Attrs, []int{3}) ||
		!marginal.SameAttrs(cons[2].Attrs, []int{2, 3}) {
		t.Errorf("constraint attrs = %v %v %v", cons[0].Attrs, cons[1].Attrs, cons[2].Attrs)
	}
}

func TestMaximalConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	big := randomJoint(r, []int{0, 1}, 100)
	sub := big.Project([]int{0})
	other := randomJoint(r, []int{2}, 100)
	out := MaximalConstraints([]*marginal.Table{sub, big, other})
	if len(out) != 2 {
		t.Fatalf("got %d maximal constraints, want 2", len(out))
	}
	for _, c := range out {
		if marginal.SameAttrs(c.Attrs, []int{0}) {
			t.Error("non-maximal constraint {0} survived")
		}
	}
}

func TestMaximalConstraintsAveragesDuplicates(t *testing.T) {
	a := marginal.New([]int{0})
	a.Cells = []float64{10, 20}
	b := marginal.New([]int{0})
	b.Cells = []float64{20, 30}
	out := MaximalConstraints([]*marginal.Table{a, b})
	if len(out) != 1 {
		t.Fatalf("got %d constraints, want 1", len(out))
	}
	if out[0].Cells[0] != 15 || out[0].Cells[1] != 25 {
		t.Errorf("averaged = %v, want [15 25]", out[0].Cells)
	}
}

// MaxEnt with constraints over {0,1} and {1,2} must reproduce the
// closed-form conditional-independence solution
// P(a,b,c) = P(a,b) P(b,c) / P(b).
func TestMaxEntConditionalIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	joint := randomJoint(r, []int{0, 1, 2}, 1)
	c01 := joint.Project([]int{0, 1})
	c12 := joint.Project([]int{1, 2})
	p1 := joint.Project([]int{1})
	got := MaxEnt([]int{0, 1, 2}, 1, []*marginal.Table{c01, c12}, Options{})
	want := marginal.New([]int{0, 1, 2})
	for idx := range want.Cells {
		a := idx & 1
		b := (idx >> 1) & 1
		c := (idx >> 2) & 1
		want.Cells[idx] = c01.Cells[b<<1|a] * c12.Cells[c<<1|b] / p1.Cells[b]
	}
	if !marginal.Equal(got, want, 1e-6) {
		t.Errorf("maxent = %v\nwant %v", got.Cells, want.Cells)
	}
}

// Property: MaxEnt satisfies consistent constraints (to solver
// tolerance) and never produces negative cells.
func TestMaxEntSatisfiesConstraints(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		joint := randomJoint(r, []int{0, 1, 2, 3}, 250)
		cons := []*marginal.Table{
			joint.Project([]int{0, 1}),
			joint.Project([]int{1, 2}),
			joint.Project([]int{2, 3}),
			joint.Project([]int{0, 3}),
		}
		got := MaxEnt([]int{0, 1, 2, 3}, 250, cons, Options{})
		if maxConstraintViolation(got, cons) > 1e-4 {
			return false
		}
		for _, v := range got.Cells {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: among feasible tables, MaxEnt has the largest entropy — in
// particular at least that of the true joint that generated the
// constraints.
func TestMaxEntMaximizesEntropy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		joint := randomJoint(r, []int{0, 1, 2}, 1)
		cons := []*marginal.Table{
			joint.Project([]int{0, 1}),
			joint.Project([]int{2}),
		}
		got := MaxEnt([]int{0, 1, 2}, 1, cons, Options{})
		return Entropy(got) >= Entropy(joint)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMaxEntIndependentProduct(t *testing.T) {
	// With only 1-way constraints, maxent = product of marginals.
	c0 := marginal.New([]int{0})
	c0.Cells = []float64{30, 70}
	c1 := marginal.New([]int{1})
	c1.Cells = []float64{60, 40}
	got := MaxEnt([]int{0, 1}, 100, []*marginal.Table{c0, c1}, Options{})
	want := []float64{0.3 * 0.6, 0.7 * 0.6, 0.3 * 0.4, 0.7 * 0.4}
	for i := range want {
		if math.Abs(got.Cells[i]-want[i]*100) > 1e-6 {
			t.Errorf("cell %d = %v, want %v", i, got.Cells[i], want[i]*100)
		}
	}
}

func TestMaxEntNoConstraints(t *testing.T) {
	got := MaxEnt([]int{0, 1}, 80, nil, Options{})
	for _, v := range got.Cells {
		if v != 20 {
			t.Errorf("cells = %v, want uniform 20", got.Cells)
			break
		}
	}
}

func TestMaxEntZeroTotal(t *testing.T) {
	got := MaxEnt([]int{0, 1}, 0, nil, Options{})
	if got.Total() != 0 {
		t.Errorf("total = %v, want 0", got.Total())
	}
}

func TestMaxEntNegativeTargetsSanitized(t *testing.T) {
	c := marginal.New([]int{0})
	c.Cells = []float64{-5, 105}
	got := MaxEnt([]int{0, 1}, 100, []*marginal.Table{c}, Options{})
	for _, v := range got.Cells {
		if v < 0 {
			t.Errorf("negative cell in maxent output: %v", got.Cells)
		}
	}
	if math.Abs(got.Total()-100) > 1e-6 {
		t.Errorf("total = %v, want 100", got.Total())
	}
}

func TestMaxEntZeroTargetGroup(t *testing.T) {
	// A constraint with a zero entry must zero the whole group.
	c := marginal.New([]int{0})
	c.Cells = []float64{0, 100}
	got := MaxEnt([]int{0, 1}, 100, []*marginal.Table{c}, Options{})
	if got.Cells[0] != 0 || got.Cells[2] != 0 {
		t.Errorf("cells with attr0=0 not zeroed: %v", got.Cells)
	}
	if math.Abs(got.Cells[1]+got.Cells[3]-100) > 1e-9 {
		t.Errorf("mass not preserved: %v", got.Cells)
	}
}

// Property: LeastSquares satisfies the constraints and is non-negative,
// and its L2 norm is no larger than the maxent solution's (it is the
// least-norm feasible point).
func TestLeastSquaresProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		joint := randomJoint(r, []int{0, 1, 2}, 120)
		cons := []*marginal.Table{
			joint.Project([]int{0, 1}),
			joint.Project([]int{1, 2}),
		}
		ls := LeastSquares([]int{0, 1, 2}, 120, cons, Options{})
		if maxConstraintViolation(ls, cons) > 1e-3 {
			return false
		}
		for _, v := range ls.Cells {
			if v < -1e-9 {
				return false
			}
		}
		me := MaxEnt([]int{0, 1, 2}, 120, cons, Options{})
		norm := func(t *marginal.Table) float64 {
			s := 0.0
			for _, v := range t.Cells {
				s += v * v
			}
			return s
		}
		return norm(ls) <= norm(me)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresNoConstraints(t *testing.T) {
	got := LeastSquares([]int{0, 1}, 40, nil, Options{})
	for _, v := range got.Cells {
		if v != 10 {
			t.Errorf("cells = %v, want uniform", got.Cells)
			break
		}
	}
}

func TestLinProgConsistentConstraintsExact(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	joint := randomJoint(r, []int{0, 1, 2}, 90)
	cons := []*marginal.Table{
		joint.Project([]int{0, 1}),
		joint.Project([]int{1, 2}),
	}
	got, err := LinProg([]int{0, 1, 2}, cons)
	if err != nil {
		t.Fatal(err)
	}
	if v := maxConstraintViolation(got, cons); v > 1e-6 {
		t.Errorf("max violation = %v, want ~0 for consistent constraints", v)
	}
}

func TestLinProgInconsistentConstraints(t *testing.T) {
	// Two conflicting totals over the same attribute: LP splits the
	// difference, with τ = half the gap.
	a := marginal.New([]int{0})
	a.Cells = []float64{10, 10}
	b := marginal.New([]int{0})
	b.Cells = []float64{14, 14}
	got, err := LinProg([]int{0, 1}, []*marginal.Table{a, b})
	if err != nil {
		t.Fatal(err)
	}
	p := got.Project([]int{0})
	// Optimal τ = 2: projection 12,12.
	if math.Abs(p.Cells[0]-12) > 1e-6 || math.Abs(p.Cells[1]-12) > 1e-6 {
		t.Errorf("projection = %v, want [12 12]", p.Cells)
	}
}

func TestLinProgFullyCoveredSet(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	joint := randomJoint(r, []int{0, 1}, 50)
	got, err := LinProg([]int{0, 1}, []*marginal.Table{joint})
	if err != nil {
		t.Fatal(err)
	}
	if !marginal.Equal(got, joint, 1e-6) {
		t.Errorf("LP over fully-constrained set diverges: %v vs %v", got.Cells, joint.Cells)
	}
}

func TestEntropy(t *testing.T) {
	u := marginal.Uniform([]int{0, 1}, 1)
	if math.Abs(Entropy(u)-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %v, want ln 4", Entropy(u))
	}
	point := marginal.New([]int{0, 1})
	point.Cells[2] = 5
	if Entropy(point) != 0 {
		t.Errorf("point-mass entropy = %v, want 0", Entropy(point))
	}
	empty := marginal.New([]int{0})
	if Entropy(empty) != 0 {
		t.Errorf("zero-table entropy = %v, want 0", Entropy(empty))
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.maxIter() != 500 || o.tol() != 1e-9 {
		t.Errorf("defaults = %d, %v", o.maxIter(), o.tol())
	}
	o = Options{MaxIter: 10, Tol: 0.5}
	if o.maxIter() != 10 || o.tol() != 0.5 {
		t.Errorf("explicit = %d, %v", o.maxIter(), o.tol())
	}
}

// TestDedupeIdenticalSemantics pins down the bucketed implementation:
// near-identical same-set constraints collapse to the first seen,
// different-set and genuinely different same-set constraints survive,
// and input order is preserved.
func TestDedupeIdenticalSemantics(t *testing.T) {
	a1 := marginal.New([]int{0, 1})
	a1.Fill(10)
	a2 := a1.Clone() // exact duplicate
	a3 := a1.Clone() // duplicate within tolerance
	a3.Cells[0] += 1e-8
	a4 := a1.Clone() // same set, different cells
	a4.Cells[0] += 5
	b1 := marginal.New([]int{2, 3}) // different set, same cell values
	b1.Fill(10)
	got := dedupeIdentical([]*marginal.Table{a1, b1, a2, a4, a3})
	if len(got) != 3 {
		t.Fatalf("kept %d constraints, want 3", len(got))
	}
	if got[0] != a1 || got[1] != b1 || got[2] != a4 {
		t.Errorf("kept wrong constraints or lost input order: %v", got)
	}
}

func TestDedupeIdenticalEmpty(t *testing.T) {
	if got := dedupeIdentical(nil); len(got) != 0 {
		t.Errorf("dedupe(nil) = %v", got)
	}
}
