package reconstruct

import (
	"math"
	"math/bits"
	"sync"

	"priview/internal/marginal"
)

// The parallel sweep fans the per-constraint projection/update pass of
// the iterative solvers (IPF, Dykstra) across goroutines while staying
// bit-for-bit identical to the sequential loops at any worker count:
//
//   - Per-cell update passes are elementwise — cell ci reads only the
//     finished projection and its own value — so any partition of the
//     cell range computes exactly the same floats.
//   - The projection itself is a floating-point reduction, which is NOT
//     freely reorderable. Instead of chunking the scatter loop (whose
//     partial-sum merge would change addition order), each worker
//     gathers whole target cells: pr[b] sums exactly the full-table
//     cells projecting onto b, in ascending cell index order — the
//     same additions in the same order the sequential scatter performs
//     for that b, because contributions to distinct target cells never
//     interact.
//   - Residual reductions (worst violation, largest move) use max(),
//     which is exact under any association.
//
// Parallelism in the projection phase is therefore bounded by the
// target (constraint) size; the elementwise passes over all 2^k cells
// parallelize fully. The dual-ascent solver keeps its sequential form:
// its partition-function sum is a single order-sensitive reduction over
// the full table, and it is the ablation cross-check, not a serving
// path.

// sweepThreshold is the full-table size below which the sweep stays
// sequential: goroutine fan-out costs more than it saves on small
// tables, and the serving default (MaxK = 12 → 4096 cells) keeps the
// exact code path it always had. Results are identical either way —
// the threshold is a scheduling choice, not a math switch.
const sweepThreshold = 1 << 14

// sweeper fans solver passes over disjoint index ranges.
type sweeper struct {
	workers int
}

// newSweeper returns a sweeper when the table size and requested worker
// count justify fan-out, nil for the sequential path.
func newSweeper(n, workers int) *sweeper {
	if workers <= 1 || n < sweepThreshold {
		return nil
	}
	return &sweeper{workers: workers}
}

// parRange invokes fn over [0, n) split into one near-equal range per
// worker and waits for completion. fn must not touch indices outside
// its range.
func (s *sweeper) parRange(n int, fn func(lo, hi int)) {
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for i := 1; i < w; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(n*i/w, n*(i+1)/w)
	}
	fn(0, n/w)
	wg.Wait()
}

// parMax is parRange for passes that also reduce a per-range maximum.
func (s *sweeper) parMax(n int, fn func(lo, hi int) float64) float64 {
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		return fn(0, n)
	}
	res := make([]float64, w)
	var wg sync.WaitGroup
	for i := 1; i < w; i++ {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			res[i] = fn(lo, hi)
		}(i, n*i/w, n*(i+1)/w)
	}
	res[0] = fn(0, n/w)
	wg.Wait()
	worst := 0.0
	for _, v := range res {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// gatherInto recomputes pr[b] for b in [lo, hi) by summing src over the
// cells projecting onto b in ascending index order — bit-identical to
// the sequential scatter loop's contribution order for each b.
func gatherInto(pr, src []float64, pc *prepCons, lo, hi int) {
	free := pc.free
	for b := lo; b < hi; b++ {
		sum := 0.0
		base := int(pc.base[b])
		//lint:ignore ctxflow the submask walk s=(s-free)&free visits each of the 2^popcount(free) subsets exactly once before returning to 0 — a bounded arithmetic cycle; cancellation is polled in the solver's outer iteration loop
		for s := 0; ; {
			sum += src[base|s]
			s = (s - free) & free
			if s == 0 {
				break
			}
		}
		pr[b] = sum
	}
}

// maxEntUpdate runs one IPF constraint pass — projection, then the
// multiplicative per-cell update — in parallel, returning the worst
// absolute constraint violation.
func (s *sweeper) maxEntUpdate(t *marginal.Table, pc *prepCons, pr []float64) float64 {
	s.parRange(len(pr), func(lo, hi int) { gatherInto(pr, t.Cells, pc, lo, hi) })
	return s.parMax(len(t.Cells), func(lo, hi int) float64 {
		worst := 0.0
		for ci := lo; ci < hi; ci++ {
			b := pc.ridx[ci]
			cur := pr[b]
			want := pc.target.Cells[b]
			if d := math.Abs(cur - want); d > worst {
				worst = d
			}
			switch {
			case cur > 0:
				t.Cells[ci] *= want / cur
			case want > 0:
				t.Cells[ci] = want / pc.groupSize
			default:
				t.Cells[ci] = 0
			}
		}
		return worst
	})
}

// dykstraConstraint runs one Dykstra constraint-set pass in parallel:
// y = x + incr, projection of y, then the per-cell correction. It
// returns the largest cell move.
func (s *sweeper) dykstraConstraint(t *marginal.Table, pc *prepCons, y, incr, pr []float64) float64 {
	s.parRange(len(y), func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			y[ci] = t.Cells[ci] + incr[ci]
		}
	})
	s.parRange(len(pr), func(lo, hi int) { gatherInto(pr, y, pc, lo, hi) })
	return s.parMax(len(y), func(lo, hi int) float64 {
		moved := 0.0
		for ci := lo; ci < hi; ci++ {
			b := pc.ridx[ci]
			corr := (pc.target.Cells[b] - pr[b]) / pc.groupSize
			nv := y[ci] + corr
			if d := math.Abs(nv - t.Cells[ci]); d > moved {
				moved = d
			}
			incr[ci] = y[ci] - nv
			t.Cells[ci] = nv
		}
		return moved
	})
}

// dykstraOrthant runs the non-negative-orthant pass. The y assembly is
// fused into the clamp loop — both are elementwise, so the fusion is
// float-exact.
func (s *sweeper) dykstraOrthant(t *marginal.Table, y, incr []float64) float64 {
	return s.parMax(len(y), func(lo, hi int) float64 {
		moved := 0.0
		for ci := lo; ci < hi; ci++ {
			yv := t.Cells[ci] + incr[ci]
			nv := yv
			if nv < 0 {
				nv = 0
			}
			if d := math.Abs(nv - t.Cells[ci]); d > moved {
				moved = d
			}
			incr[ci] = yv - nv
			t.Cells[ci] = nv
		}
		return moved
	})
}

// deposit scatters the bits of b into the set bit positions of pm
// (lowest bit of b into the lowest set position) — the inverse of the
// PEXT mapping that RestrictIndices tabulates.
func deposit(b int, pm uint64) int {
	out := 0
	j := 0
	for p := pm; p != 0; p &= p - 1 {
		out |= ((b >> uint(j)) & 1) << uint(bits.TrailingZeros64(p))
		j++
	}
	return out
}
