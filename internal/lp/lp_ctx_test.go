package lp

import (
	"context"
	"errors"
	"testing"
)

// TestSolveContextCanceled: a canceled context aborts the simplex
// before any pivoting and surfaces the context sentinel via errors.Is.
func TestSolveContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: GE, B: 1},
		},
	}
	if _, err := SolveContext(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSolveContextBackground pins the wrapper contract: Solve is
// exactly SolveContext with a background context.
func TestSolveContextBackground(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: LE, B: 4},
			{Coef: []float64{1, 0}, Rel: LE, B: 3},
		},
	}
	a, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveContext(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Obj != b.Obj { //lint:ignore floatcmp identical deterministic pivot sequences must agree bit-for-bit
		t.Errorf("Solve obj %v != SolveContext obj %v", a.Obj, b.Obj)
	}
}
