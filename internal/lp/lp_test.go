package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleMaximizationViaNegation(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6 -> x=4, y=0, obj 12.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: LE, B: 4},
			{Coef: []float64{1, 3}, Rel: LE, B: 6},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, -12, 1e-6) {
		t.Errorf("obj = %v, want -12", s.Obj)
	}
	if !approx(s.X[0], 4, 1e-6) || !approx(s.X[1], 0, 1e-6) {
		t.Errorf("x = %v, want [4 0]", s.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x ≥ 0, y ≥ 0 -> y=2, x=0, obj 2.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 2}, Rel: EQ, B: 4},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 2, 1e-6) {
		t.Errorf("obj = %v, want 2", s.Obj)
	}
}

func TestGEConstraints(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≤ 6 -> x=6, y=4, obj 24.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: GE, B: 10},
			{Coef: []float64{1, 0}, Rel: LE, B: 6},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 24, 1e-6) {
		t.Errorf("obj = %v, want 24, x=%v", s.Obj, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: GE, B: 5},
			{Coef: []float64{1}, Rel: LE, B: 3},
		},
	}
	if _, err := Solve(p); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1}, // maximize x with no upper bound
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: GE, B: 0},
		},
	}
	if _, err := Solve(p); err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y ≤ -2 with min x+y -> y ≥ x+2, best x=0,y=2.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, -1}, Rel: LE, B: -2},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 2, 1e-6) {
		t.Errorf("obj = %v, want 2 (x=%v)", s.Obj, s.X)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicated equality rows exercise artificial-variable cleanup.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, B: 3},
			{Coef: []float64{1, 1}, Rel: EQ, B: 3},
			{Coef: []float64{2, 2}, Rel: EQ, B: 6},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 3, 1e-6) {
		t.Errorf("obj = %v, want 3 (x=3, y=0)", s.Obj)
	}
}

func TestMinimaxFormulation(t *testing.T) {
	// The reconstruction LP shape: minimize τ subject to
	// |x_1 - 5| ≤ τ, |x_1 + x_2 - 9| ≤ τ, x, τ ≥ 0.
	// Optimal: τ=0, x1=5, x2=4.
	p := &Problem{
		NumVars:   3, // x1, x2, tau
		Objective: []float64{0, 0, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 0, -1}, Rel: LE, B: 5},
			{Coef: []float64{1, 0, 1}, Rel: GE, B: 5},
			{Coef: []float64{1, 1, -1}, Rel: LE, B: 9},
			{Coef: []float64{1, 1, 1}, Rel: GE, B: 9},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 0, 1e-6) {
		t.Errorf("τ = %v, want 0", s.Obj)
	}
	if !approx(s.X[0], 5, 1e-6) {
		t.Errorf("x1 = %v, want 5", s.X[0])
	}
}

func TestDimensionValidation(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Error("accepted zero variables")
	}
	if _, err := Solve(&Problem{NumVars: 2, Objective: []float64{1}}); err == nil {
		t.Error("accepted wrong objective length")
	}
	p := &Problem{NumVars: 1, Objective: []float64{1},
		Constraints: []Constraint{{Coef: []float64{1, 2}, Rel: LE, B: 1}}}
	if _, err := Solve(p); err == nil {
		t.Error("accepted wrong constraint length")
	}
}

// Property: for random feasible bounded LPs, the simplex optimum matches
// a brute-force search over the constraint polytope's vertices in 2D.
func TestAgainstBruteForce2D(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random bounded problem: x,y ≤ U constraints keep it bounded.
		c1 := []float64{1 + r.Float64()*2, 1 + r.Float64()*2}
		b1 := 2 + r.Float64()*8
		obj := []float64{r.Float64()*4 - 2, r.Float64()*4 - 2}
		p := &Problem{
			NumVars:   2,
			Objective: obj,
			Constraints: []Constraint{
				{Coef: c1, Rel: LE, B: b1},
				{Coef: []float64{1, 0}, Rel: LE, B: 5},
				{Coef: []float64{0, 1}, Rel: LE, B: 5},
			},
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		// Brute force over a fine grid (the optimum of an LP over this
		// polytope is attained at a vertex, so grid search lower-bounds
		// the gap well enough at this resolution).
		best := math.Inf(1)
		for i := 0; i <= 100; i++ {
			for j := 0; j <= 100; j++ {
				x := float64(i) * 0.05
				y := float64(j) * 0.05
				if c1[0]*x+c1[1]*y <= b1+1e-9 && x <= 5 && y <= 5 {
					v := obj[0]*x + obj[1]*y
					if v < best {
						best = v
					}
				}
			}
		}
		return s.Obj <= best+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the returned point always satisfies every constraint.
func TestSolutionFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5)
		m := 2 + r.Intn(5)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = r.Float64()
		}
		for i := 0; i < m; i++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = r.Float64()
			}
			p.Constraints = append(p.Constraints,
				Constraint{Coef: coef, Rel: LE, B: 1 + r.Float64()*5})
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		for _, c := range p.Constraints {
			dot := 0.0
			for j := range c.Coef {
				dot += c.Coef[j] * s.X[j]
			}
			if dot > c.B+1e-6 {
				return false
			}
		}
		for _, v := range s.X {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLargerDenseProblem(t *testing.T) {
	// Transportation-like LP with 60 vars to exercise pivoting at size.
	const nv = 60
	p := &Problem{NumVars: nv, Objective: make([]float64, nv)}
	r := rand.New(rand.NewSource(42))
	for j := 0; j < nv; j++ {
		p.Objective[j] = 1 + r.Float64()
	}
	// Sum of all vars = 100; each var ≤ 5.
	all := make([]float64, nv)
	for j := range all {
		all[j] = 1
	}
	p.Constraints = append(p.Constraints, Constraint{Coef: all, Rel: EQ, B: 100})
	for j := 0; j < nv; j++ {
		coef := make([]float64, nv)
		coef[j] = 1
		p.Constraints = append(p.Constraints, Constraint{Coef: coef, Rel: LE, B: 5})
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range s.X {
		sum += v
		if v < -1e-9 || v > 5+1e-6 {
			t.Fatalf("variable out of bounds: %v", v)
		}
	}
	if !approx(sum, 100, 1e-6) {
		t.Errorf("sum = %v, want 100", sum)
	}
}
