package lp

import (
	"errors"
	"math"
	"testing"
)

func TestSolveRejectsNonFiniteObjective(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, math.NaN()},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: LE, B: 10},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrNumerical) {
		t.Fatalf("NaN objective: err = %v, want ErrNumerical", err)
	}
}

func TestSolveRejectsNonFiniteConstraint(t *testing.T) {
	for name, p := range map[string]*Problem{
		"coef": {
			NumVars:   2,
			Objective: []float64{1, 1},
			Constraints: []Constraint{
				{Coef: []float64{math.Inf(1), 1}, Rel: LE, B: 10},
			},
		},
		"rhs": {
			NumVars:   2,
			Objective: []float64{1, 1},
			Constraints: []Constraint{
				{Coef: []float64{1, 1}, Rel: GE, B: math.NaN()},
			},
		},
	} {
		if _, err := Solve(p); !errors.Is(err, ErrNumerical) {
			t.Errorf("%s: err = %v, want ErrNumerical", name, err)
		}
	}
}

// TestSolveCleanProblemUnaffected proves the guards leave an ordinary
// solve untouched.
func TestSolveCleanProblemUnaffected(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -2}, // maximize x+2y
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: LE, B: 4},
			{Coef: []float64{0, 1}, Rel: LE, B: 3},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.Obj-(-7)) > 1e-9 {
		t.Fatalf("objective = %g, want -7", sol.Obj)
	}
}
