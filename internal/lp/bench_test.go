package lp

import (
	"math/rand"
	"testing"
)

// benchProblem builds a bounded random LP with nv variables and nc
// inequality constraints.
func benchProblem(nv, nc int, seed int64) *Problem {
	r := rand.New(rand.NewSource(seed))
	p := &Problem{NumVars: nv, Objective: make([]float64, nv)}
	for j := range p.Objective {
		p.Objective[j] = r.Float64()*2 - 1
	}
	for i := 0; i < nc; i++ {
		coef := make([]float64, nv)
		for j := range coef {
			coef[j] = r.Float64()
		}
		p.Constraints = append(p.Constraints, Constraint{Coef: coef, Rel: LE, B: 1 + r.Float64()*4})
	}
	// Keep it bounded below along negative-cost directions.
	for j := 0; j < nv; j++ {
		coef := make([]float64, nv)
		coef[j] = 1
		p.Constraints = append(p.Constraints, Constraint{Coef: coef, Rel: LE, B: 10})
	}
	return p
}

func BenchmarkSimplex30x20(b *testing.B) {
	p := benchProblem(30, 20, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplex100x80(b *testing.B) {
	p := benchProblem(100, 80, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
