package lp

import (
	"math"
	"testing"
)

func TestEqualityWithNegativeRHS(t *testing.T) {
	// x - y = -3, min x + y -> x=0, y=3.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, -1}, Rel: EQ, B: -3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 3, 1e-6) || !approx(s.X[1], 3, 1e-6) {
		t.Errorf("obj=%v x=%v", s.Obj, s.X)
	}
}

func TestZeroObjective(t *testing.T) {
	// Pure feasibility problem.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{0, 0},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: GE, B: 2},
			{Coef: []float64{1, 1}, Rel: LE, B: 4},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	sum := s.X[0] + s.X[1]
	if sum < 2-1e-6 || sum > 4+1e-6 {
		t.Errorf("infeasible point returned: %v", s.X)
	}
}

func TestHighlyDegenerate(t *testing.T) {
	// Many redundant constraints through the same vertex — a classic
	// cycling trap for naive pivoting.
	p := &Problem{
		NumVars:   3,
		Objective: []float64{-1, -1, -1},
	}
	for i := 0; i < 10; i++ {
		coef := []float64{1, float64(i) / 10, float64(10-i) / 10}
		p.Constraints = append(p.Constraints, Constraint{Coef: coef, Rel: LE, B: 1})
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(s.Obj) {
		t.Error("NaN objective")
	}
	for _, c := range p.Constraints {
		dot := 0.0
		for j := range c.Coef {
			dot += c.Coef[j] * s.X[j]
		}
		if dot > c.B+1e-6 {
			t.Errorf("constraint violated: %v > %v", dot, c.B)
		}
	}
}

func TestAllConstraintTypesMixed(t *testing.T) {
	// min 2x+y  s.t. x+y = 5, x ≥ 1, y ≤ 10 → x=1, y=4, obj 6.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, B: 5},
			{Coef: []float64{1, 0}, Rel: GE, B: 1},
			{Coef: []float64{0, 1}, Rel: LE, B: 10},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 6, 1e-6) {
		t.Errorf("obj = %v, want 6 (x=%v)", s.Obj, s.X)
	}
}

func TestSingleVariable(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: GE, B: 7},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.X[0], 7, 1e-6) {
		t.Errorf("x = %v, want 7", s.X[0])
	}
}

func TestNoConstraints(t *testing.T) {
	// min x with x ≥ 0 and no rows: optimum at the origin.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 0, 1e-9) {
		t.Errorf("obj = %v, want 0", s.Obj)
	}
}
