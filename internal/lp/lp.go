// Package lp implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  a_i·x (≤ | = | ≥) b_i   for each constraint i
//	            x ≥ 0
//
// It backs PriView's linear-programming reconstruction method and the
// FourierLP baseline (Barak et al.). Problems in this repository are
// small and dense (hundreds of variables), so a tableau implementation
// with Dantzig pricing and a Bland anti-cycling fallback is the right
// trade-off between robustness and code complexity.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Relation is a constraint's comparison operator.
type Relation int

const (
	LE Relation = iota // a·x ≤ b
	GE                 // a·x ≥ b
	EQ                 // a·x = b
)

// Constraint is one row a·x (rel) b. Coef may be sparse via zero entries;
// its length must equal the problem's variable count.
type Constraint struct {
	Coef []float64
	Rel  Relation
	B    float64
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars; minimized
	Constraints []Constraint
}

// Solution holds the optimal point and objective value.
type Solution struct {
	X   []float64
	Obj float64
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
	// ErrNumerical reports NaN/Inf contamination of the simplex tableau
	// — bad inputs or accumulated rounding blow-up. The solve cannot
	// continue meaningfully once the tableau is poisoned.
	ErrNumerical = errors.New("lp: numerical instability")
)

const (
	eps     = 1e-9
	maxIter = 500000
	// ctxCheckEvery bounds how many pivots run between cancellation
	// checks in SolveContext. A pivot touches the full tableau, so for
	// the dense problems here this keeps the check overhead well under
	// 1% while still reacting to a canceled context within milliseconds.
	ctxCheckEvery = 256
)

// tableau holds the dense simplex state.
type tableau struct {
	rows    [][]float64 // m constraint rows plus the objective row
	m       int         // constraint rows
	cols    int         // columns excluding the b column
	basis   []int
	blocked []bool // columns barred from entering (artificials in phase 2)
}

// Solve runs two-phase simplex and returns the optimal solution.
func Solve(p *Problem) (*Solution, error) {
	return SolveContext(context.Background(), p)
}

// SolveContext is Solve with cooperative cancellation: the pivot loop
// polls ctx every ctxCheckEvery iterations and aborts with ctx.Err()
// (wrapped) once the caller cancels or the deadline passes, instead of
// pivoting all the way to the iteration limit.
func SolveContext(ctx context.Context, p *Problem) (*Solution, error) {
	n := p.NumVars
	if n <= 0 {
		return nil, errors.New("lp: no variables")
	}
	if len(p.Objective) != n {
		return nil, fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), n)
	}
	m := len(p.Constraints)
	for j, v := range p.Objective {
		if !isFinite(v) {
			return nil, fmt.Errorf("%w: objective coefficient %d is %v", ErrNumerical, j, v)
		}
	}
	for i, c := range p.Constraints {
		if len(c.Coef) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coef), n)
		}
		if !isFinite(c.B) {
			return nil, fmt.Errorf("%w: constraint %d right-hand side is %v", ErrNumerical, i, c.B)
		}
		for j, v := range c.Coef {
			if !isFinite(v) {
				return nil, fmt.Errorf("%w: constraint %d coefficient %d is %v", ErrNumerical, i, j, v)
			}
		}
	}

	// Normalize rows to b ≥ 0 and decide slack/artificial needs.
	type rowSpec struct {
		coef  []float64
		b     float64
		slack int // +1 for ≤, -1 for ≥, 0 for =
	}
	rows := make([]rowSpec, m)
	slackCount := 0
	artCount := 0
	for i, c := range p.Constraints {
		coef := append([]float64(nil), c.Coef...)
		b := c.B
		rel := c.Rel
		if b < 0 {
			for j := range coef {
				coef[j] = -coef[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		spec := rowSpec{coef: coef, b: b}
		switch rel {
		case LE:
			spec.slack = 1
			slackCount++
		case GE:
			spec.slack = -1
			slackCount++
			artCount++
		case EQ:
			artCount++
		}
		rows[i] = spec
	}

	cols := n + slackCount + artCount
	t := &tableau{
		rows:    make([][]float64, m+1),
		m:       m,
		cols:    cols,
		basis:   make([]int, m),
		blocked: make([]bool, cols),
	}
	for i := range t.rows {
		t.rows[i] = make([]float64, cols+1)
	}
	slackIdx := n
	artIdx := n + slackCount
	firstArt := artIdx
	for i, r := range rows {
		copy(t.rows[i], r.coef)
		t.rows[i][cols] = r.b
		switch r.slack {
		case 1:
			t.rows[i][slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case -1:
			t.rows[i][slackIdx] = -1
			slackIdx++
			t.rows[i][artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		default:
			t.rows[i][artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		}
	}

	if artCount > 0 {
		// Phase 1: minimize the sum of artificials. The reduced
		// objective row starts as −Σ (rows with artificial basis).
		obj := t.rows[m]
		for j := range obj {
			obj[j] = 0
		}
		for j := firstArt; j < cols; j++ {
			obj[j] = 1
		}
		for i, bi := range t.basis {
			if bi >= firstArt {
				ri := t.rows[i]
				for j := 0; j <= cols; j++ {
					obj[j] -= ri[j]
				}
			}
		}
		if err := t.iterate(ctx); err != nil {
			return nil, err
		}
		if t.rows[m][cols] < -eps {
			return nil, ErrInfeasible
		}
		// Drive remaining basic artificials out; block all artificials
		// from re-entering.
		for i, bi := range t.basis {
			if bi < firstArt {
				continue
			}
			pivoted := false
			for j := 0; j < firstArt; j++ {
				if math.Abs(t.rows[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; zero it out.
				for j := 0; j <= cols; j++ {
					t.rows[i][j] = 0
				}
			}
		}
		for j := firstArt; j < cols; j++ {
			t.blocked[j] = true
		}
	}

	// Phase 2: install the real objective, reduced over the current
	// basis.
	obj := t.rows[m]
	for j := range obj {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = p.Objective[j]
	}
	for i, bi := range t.basis {
		// Coefficients within the solver's tolerance of zero are treated
		// as zero, consistent with the reduced-cost threshold in iterate.
		f := obj[bi]
		if math.Abs(f) > eps {
			ri := t.rows[i]
			for j := 0; j <= cols; j++ {
				obj[j] -= f * ri[j]
			}
		}
	}
	if err := t.iterate(ctx); err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, bi := range t.basis {
		if bi < n {
			x[bi] = t.rows[i][cols]
		}
	}
	for j, v := range x {
		if !isFinite(v) {
			return nil, fmt.Errorf("%w: solution variable %d is %v", ErrNumerical, j, v)
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.Objective[j] * x[j]
	}
	return &Solution{X: x, Obj: objVal}, nil
}

// iterate runs primal simplex until optimal, using Dantzig's rule with a
// fallback to Bland's rule after a stall budget to guarantee
// termination.
func (t *tableau) iterate(ctx context.Context) error {
	const blandAfter = 20000
	obj := t.rows[t.m]
	for iter := 0; iter < maxIter; iter++ {
		if iter%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("lp: %w", err)
			}
			// The objective row participates in every pivot, so NaN/Inf
			// anywhere in the tableau reaches it within a pivot or two;
			// scanning just this row keeps the check off the O(m·n)
			// per-pivot path while still catching poisoned state early.
			for j := 0; j <= t.cols; j++ {
				if !isFinite(obj[j]) {
					return fmt.Errorf("%w: objective row entry %d is %v at pivot %d", ErrNumerical, j, obj[j], iter)
				}
			}
		}
		enter := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < t.cols; j++ {
				if rc := obj[j]; rc < best && !t.blocked[j] {
					best = rc
					enter = j
				}
			}
		} else {
			for j := 0; j < t.cols; j++ {
				if obj[j] < -eps && !t.blocked[j] {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Leaving row: min ratio test; ties toward smallest basis var.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][enter]
			if a > eps {
				ratio := t.rows[i][t.cols] / a
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return errors.New("lp: iteration limit exceeded")
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// pivot performs a full tableau pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	inv := 1 / pr[col]
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	//lint:hot
	for i, ri := range t.rows {
		if i == row {
			continue
		}
		// Drop tolerance: entries within eps of zero are snapped to zero
		// instead of eliminated, so rounding dust from earlier pivots
		// does not trigger full-row updates.
		f := ri[col]
		if math.Abs(f) <= eps {
			ri[col] = 0
			continue
		}
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
	t.basis[row] = col
}
