package experiments

import (
	"fmt"

	"priview/internal/accuracy"
	"priview/internal/categorical"
	"priview/internal/noise"
)

// RunCategoricalSweep validates the §4.7 guideline empirically: on a
// synthetic survey with mostly-ternary attributes, it sweeps the view
// cell budget s and measures reconstruction error for pair and triple
// marginals. The paper recommends s in roughly [150, 2000] for b=3;
// the sweep should show error minimized inside that band — too-small
// views miss coverage, too-large views drown in per-view noise.
func RunCategoricalSweep(cfg Config) []Row {
	cfg = cfg.orDefaults()
	n := cfg.N
	if n <= 0 {
		n = 200000
	}
	schema := categorical.Schema{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3}
	data := categorical.SynthSurvey(schema, n, cfg.Seed)
	root := noise.NewStream(cfg.Seed).Derive("cat-sweep")
	const eps = 1.0
	nf := float64(data.Len())

	budgets := []int{27, 81, 243, 729, 2187}
	var rows []Row
	for _, k := range []int{2, 3} {
		// Query sets: distinct attribute pairs/triples.
		queries := sampleQuerySets(len(schema), k, cfg.Queries, root.DeriveIndexed("queries", k))
		truths := make([]*categorical.Table, len(queries))
		for i, q := range queries {
			truths[i] = data.Marginal(q)
		}
		for _, s := range budgets {
			budget := s
			perQuery := make([]float64, len(queries))
			for run := 0; run < cfg.Runs; run++ {
				syn := categorical.BuildSynopsis(data, categorical.Config{
					Epsilon: eps, CellBudget: budget,
				}, root.DeriveIndexed(fmt.Sprintf("s%d", budget), run))
				for i, q := range queries {
					perQuery[i] += categorical.L2Distance(syn.Query(q), truths[i]) / nf
				}
			}
			for i := range perQuery {
				perQuery[i] /= float64(cfg.Runs)
			}
			rows = append(rows, Row{
				Experiment: "cat-sweep", Dataset: "Survey(b=3)",
				Method:  fmt.Sprintf("s=%d", budget),
				Epsilon: eps, K: k, Metric: "L2n",
				Stats: accuracy.Summarize(perQuery),
			})
		}
	}
	return rows
}
