package experiments

import (
	"fmt"

	"priview/internal/core"
	"priview/internal/noise"
)

// RunAblation measures the design choices DESIGN.md calls out, beyond
// what the paper's own figures already ablate (Fig. 3 ablates the
// estimator, Fig. 4 the non-negativity strategy, Fig. 6 the design):
//
//   - solver: IPF vs dual gradient ascent for the max-entropy program —
//     same optimum, different convergence behavior;
//   - consistency: the full post-processing pipeline vs querying the
//     raw noisy views directly;
//   - ripple-θ: sensitivity to the Ripple tolerance across four orders
//     of magnitude.
//
// All runs use the Kosarak setup with its t=2 design at ε = 1.
func RunAblation(cfg Config) []Row {
	cfg = cfg.orDefaults()
	ds := kosarakSetup(cfg)
	const eps = 1.0
	root := noise.NewStream(cfg.Seed).Derive("ablation")
	nf := float64(ds.data.Len())
	design := ds.c2

	type variant struct {
		group string
		label string
		cfg   core.Config
	}
	variants := []variant{
		{"solver", "IPF", core.Config{Epsilon: eps, Design: design, Method: core.CME}},
		{"solver", "DualAscent", core.Config{Epsilon: eps, Design: design, Method: core.CMEDual}},
		{"consistency", "FullPipeline", core.Config{Epsilon: eps, Design: design}},
		{"consistency", "RawViews", core.Config{Epsilon: eps, Design: design, SkipPostprocess: true}},
		{"consistency", "InverseVariance", core.Config{Epsilon: eps, Design: design, WeightedConsistency: true}},
		{"noise", "Laplace", core.Config{Epsilon: eps, Design: design}},
		{"noise", "Gaussian(δ=1e-6)", core.Config{Epsilon: eps, Delta: 1e-6, Noise: core.GaussianNoise, Design: design}},
	}
	for _, theta := range []float64{0.05, 0.5, 5, 50} {
		variants = append(variants, variant{
			"ripple-theta", fmt.Sprintf("theta=%g", theta),
			core.Config{Epsilon: eps, Design: design, RippleTheta: theta},
		})
	}

	built := make([][]*core.Synopsis, len(variants))
	for i, v := range variants {
		built[i] = make([]*core.Synopsis, cfg.Runs)
		for run := 0; run < cfg.Runs; run++ {
			// Same noise stream per run across variants, isolating the
			// ablated choice.
			built[i][run] = core.BuildSynopsis(ds.data, v.cfg, root.DeriveIndexed("views", run))
		}
	}

	var rows []Row
	for _, k := range []int{4, 8} {
		queries := sampleQuerySets(32, k, cfg.Queries, root.DeriveIndexed("queries", k))
		truths := trueMarginals(ds.data, queries)
		for i, v := range variants {
			i := i
			rows = append(rows, Row{
				Experiment: "ablation", Dataset: "Kosarak",
				Method:  v.group + "/" + v.label,
				Epsilon: eps, K: k, Metric: "L2n",
				Stats: evalL2(func(run int) synopsis {
					return built[i][run]
				}, queries, truths, nf, cfg.Runs),
				Note: design.Name(),
			})
		}
	}
	return rows
}
