package experiments

import (
	"priview/internal/baselines"
	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/noise"
)

// fig1Epsilons and fig1Ks are the settings of the MSNBC comparison.
var (
	fig1Epsilons = []float64{1.0, 0.1}
	fig1Ks       = []int{2, 4, 6, 8}
)

// maxFourierLPK caps the FourierLP variant: beyond k=4 its LP carries
// ~2^{d+1} dense constraints and adds nothing to the comparison (the
// paper reports Fourier and FourierLP as essentially identical). In
// reduced configurations the cap tightens to k=2 to keep iteration fast.
func maxFourierLPK(cfg Config) int {
	if cfg.Queries <= 30 {
		return 2
	}
	return 4
}

// RunFig1 reproduces Figure 1: every method on the MSNBC-like d=9
// dataset, ε ∈ {1, 0.1}, k ∈ {2,4,6,8}, normalized L2 candlesticks.
func RunFig1(cfg Config) []Row {
	cfg = cfg.orDefaults()
	n := cfg.N
	if n <= 0 {
		n = synth.MSNBCN
	}
	data := synth.MSNBC(n, cfg.Seed)
	root := noise.NewStream(cfg.Seed).Derive("fig1")
	var rows []Row

	design := covering.Best(9, 6, 2, cfg.Seed, 2) // the paper's C2(6,3)
	nf := float64(data.Len())

	for _, eps := range fig1Epsilons {
		for _, k := range fig1Ks {
			queries := sampleQuerySets(9, k, cfg.Queries, root.DeriveIndexed("queries", k))
			truths := trueMarginals(data, queries)
			add := func(method string, note string, build func(run int) synopsis) {
				rows = append(rows, Row{
					Experiment: "fig1", Dataset: "MSNBC", Method: method,
					Epsilon: eps, K: k, Metric: "L2n",
					Stats: evalL2(build, queries, truths, nf, cfg.Runs),
					Note:  note,
				})
			}
			epsKey := int(eps * 1000)

			add("Uniform", "", func(run int) synopsis {
				return baselines.NewUniform(data.Len())
			})
			add("Flat", "", func(run int) synopsis {
				return baselines.NewFlat(data, eps, root.DeriveIndexed("flat", run*10000+epsKey))
			})
			add("DataCube", "", func(run int) synopsis {
				return baselines.NewDataCube(data, eps, root.DeriveIndexed("cube", run*10000+epsKey))
			})
			add("Direct", "", func(run int) synopsis {
				return baselines.NewDirect(data, eps, k, true, root.DeriveIndexed("direct", run*10000+epsKey*10+k))
			})
			add("Fourier", "", func(run int) synopsis {
				return baselines.NewFourier(data, eps, k, true, root.DeriveIndexed("fourier", run*10000+epsKey*10+k))
			})
			if k <= maxFourierLPK(cfg) {
				add("FourierLP", "", func(run int) synopsis {
					flp, err := baselines.NewFourierLP(data, eps, k, root.DeriveIndexed("flp", run*10000+epsKey*10+k))
					if err != nil {
						// LP repair failure falls back to plain Fourier.
						return baselines.NewFourier(data, eps, k, true, root.DeriveIndexed("flp-fb", run))
					}
					return flp
				})
			}
			add("MWEM", "", func(run int) synopsis {
				sweeps := 100
				if cfg.Queries <= 30 { // reduced mode
					sweeps = 20
				}
				return baselines.NewMWEM(data, eps, baselines.MWEMConfig{
					K: k, T: baselines.DefaultMWEMRounds(9), ReplaySweeps: sweeps,
				}, root.DeriveIndexed("mwem", run*10000+epsKey*10+k))
			})
			// Matrix mechanism: the paper plots its expected error.
			mm := baselines.NewMatrixMechanism(data, eps, k, root.Derive("mm"))
			rows = append(rows, Row{
				Experiment: "fig1", Dataset: "MSNBC", Method: "MatrixMech",
				Epsilon: eps, K: k, Metric: "L2n",
				Stats: constantCandlestick(mm.ExpectedNormalizedL2()),
				Note:  "expected",
			})
			for i, gamma := range []float64{0.5, 0.25, 0.125} {
				name := []string{"Learning1", "Learning2", "Learning3"}[i]
				g := gamma
				add(name, "", func(run int) synopsis {
					return baselines.NewLearning(data, eps, k, g, true, root.DeriveIndexed("learn", run*10000+epsKey*10+k+i*100))
				})
				// Green stars: approximation error only, no noise.
				add(name, "no-noise", func(run int) synopsis {
					return baselines.NewLearning(data, eps, k, g, false, root.Derive("learn-nn"))
				})
			}
			add("PriView", design.Name(), func(run int) synopsis {
				return core.BuildSynopsis(data, core.Config{Epsilon: eps, Design: design},
					root.DeriveIndexed("priview", run*10000+epsKey*10+k))
			})
		}
	}
	return rows
}
