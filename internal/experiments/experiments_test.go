package experiments

import (
	"bytes"
	"strings"
	"testing"

	"priview/internal/core"
	"priview/internal/noise"
)

// tiny returns the smallest meaningful configuration for tests.
func tiny() Config {
	return Config{Queries: 4, Runs: 1, N: 3000, Seed: 1}
}

func methodRows(rows []Row, method string) []Row {
	var out []Row
	for _, r := range rows {
		if r.Method == method {
			out = append(out, r)
		}
	}
	return out
}

func meanOf(rows []Row, method string, eps float64, k int, metric string) (float64, bool) {
	for _, r := range rows {
		if r.Method == method && r.Epsilon == eps && r.K == k && r.Metric == metric && r.Note != "no-noise" {
			return r.Stats.Mean, true
		}
	}
	return 0, false
}

func TestFig1SmokeAndOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 reduced run still costs seconds")
	}
	rows := RunFig1(tiny())
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, m := range []string{"Uniform", "Flat", "Direct", "Fourier", "FourierLP", "MWEM", "MatrixMech", "Learning1", "PriView", "DataCube"} {
		if len(methodRows(rows, m)) == 0 {
			t.Errorf("method %s missing from fig1", m)
		}
	}
	// Core qualitative findings at eps=1, k=2 on d=9: Flat and PriView
	// are far better than Uniform; Learning is poor.
	flat, _ := meanOf(rows, "Flat", 1.0, 2, "L2n")
	pv, _ := meanOf(rows, "PriView", 1.0, 2, "L2n")
	uni, _ := meanOf(rows, "Uniform", 1.0, 2, "L2n")
	if flat >= uni || pv >= uni {
		t.Errorf("Flat (%v) / PriView (%v) not better than Uniform (%v)", flat, pv, uni)
	}
	learn, ok := meanOf(rows, "Learning1", 1.0, 2, "L2n")
	if !ok || learn < pv {
		t.Errorf("Learning1 (%v) unexpectedly better than PriView (%v)", learn, pv)
	}
}

func TestFig2KosarakOrdersOfMagnitude(t *testing.T) {
	if testing.Short() {
		t.Skipf("skipping in -short mode: full Kosarak/AOL sweep")
	}
	if testing.Short() {
		t.Skip("fig2 reduced run still costs seconds")
	}
	cfg := tiny()
	cfg.N = 20000
	rows := RunFig2Kosarak(cfg)
	// Headline claim: PriView beats Direct and Fourier by orders of
	// magnitude at eps=1, k=8 on d=32.
	pv, okPV := meanOf(rows, "PriView", 1.0, 8, "L2n")
	direct, okD := meanOf(rows, "Direct", 1.0, 8, "L2n")
	fourier, okF := meanOf(rows, "Fourier", 1.0, 8, "L2n")
	if !okPV || !okD || !okF {
		t.Fatal("missing methods in fig2 rows")
	}
	if pv*10 > direct {
		t.Errorf("PriView (%v) not >=10x better than Direct (%v)", pv, direct)
	}
	if pv*5 > fourier {
		t.Errorf("PriView (%v) not clearly better than Fourier (%v)", pv, fourier)
	}
	// JS rows must exist and be bounded.
	js, ok := meanOf(rows, "PriView", 1.0, 8, "JS")
	if !ok || js < 0 || js > 0.7 {
		t.Errorf("PriView JS = %v, ok=%v", js, ok)
	}
}

func TestFig3ReconstructionOrdering(t *testing.T) {
	if testing.Short() {
		t.Skipf("skipping in -short mode: all reconstruction methods on the full grid")
	}
	if testing.Short() {
		t.Skip("fig3 involves per-query LP solves")
	}
	cfg := Config{Queries: 3, Runs: 1, N: 10000, Seed: 1}
	rows := RunFig3Kosarak(cfg)
	cme, okC := meanOf(rows, "CME", 1.0, 4, "L2n")
	lp, okL := meanOf(rows, "LP", 1.0, 4, "L2n")
	if !okC || !okL {
		t.Fatal("missing CME/LP rows")
	}
	if cme >= lp {
		t.Errorf("CME (%v) not better than LP (%v)", cme, lp)
	}
	for _, m := range []string{"CLP", "CLN", "CME*"} {
		if len(methodRows(rows, m)) == 0 {
			t.Errorf("method %s missing from fig3", m)
		}
	}
}

func TestFig4NonnegOrdering(t *testing.T) {
	if testing.Short() {
		t.Skipf("skipping in -short mode: all non-negativity methods on the full grid")
	}
	if testing.Short() {
		t.Skip("fig4 reduced run still costs seconds")
	}
	cfg := Config{Queries: 4, Runs: 1, N: 10000, Seed: 1}
	rows := RunFig4Kosarak(cfg)
	for _, m := range []string{"None", "Simple", "Global", "Ripple1", "Ripple3"} {
		if len(methodRows(rows, m)) == 0 {
			t.Errorf("method %s missing from fig4", m)
		}
	}
	ripple, okR := meanOf(rows, "Ripple1", 1.0, 6, "L2n")
	simple, okS := meanOf(rows, "Simple", 1.0, 6, "L2n")
	if !okR || !okS {
		t.Fatal("missing rows")
	}
	if ripple >= simple {
		t.Errorf("Ripple1 (%v) not better than Simple (%v)", ripple, simple)
	}
}

func TestFig5RunsAllOrders(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 builds 7 d=64 synopses")
	}
	cfg := Config{Queries: 3, Runs: 1, N: 4000, Seed: 1}
	rows := RunFig5(cfg)
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Dataset] = true
		if r.Stats.Mean < 0 {
			t.Errorf("negative error in %v", r)
		}
	}
	for order := 1; order <= 7; order++ {
		name := "mc" + string(rune('0'+order))
		if !seen[name] {
			t.Errorf("order %d missing", order)
		}
	}
}

func TestFig6IncludesNoiseErrorStars(t *testing.T) {
	if testing.Short() {
		t.Skipf("skipping in -short mode: full covering-design comparison")
	}
	if testing.Short() {
		t.Skip("fig6 builds many designs")
	}
	cfg := Config{Queries: 3, Runs: 1, N: 5000, Seed: 1}
	rows := RunFig6(cfg)
	stars := 0
	for _, r := range rows {
		if r.Note == "eq5-noise-error" {
			stars++
		}
	}
	// 5 designs × 2 epsilons.
	if stars != 10 {
		t.Errorf("got %d Eq.5 star rows, want 10", stars)
	}
}

func TestTabCrossover(t *testing.T) {
	tab := RunTabCrossover()
	want := []string{"16", "26", "36", "46"}
	for i, row := range tab.Rows {
		if row[1] != want[i] {
			t.Errorf("k=%s: threshold %s, want %s", row[0], row[1], want[i])
		}
	}
	if !strings.Contains(tab.Format(), "tab-crossover") {
		t.Error("Format missing table ID")
	}
}

func TestTabMidsize(t *testing.T) {
	tab := RunTabMidsize()
	if tab.Rows[0][1] != "65536" || tab.Rows[1][1] != "57600" || tab.Rows[2][1] != "9216" {
		t.Errorf("midsize values = %v", tab.Rows)
	}
}

func TestTabEll(t *testing.T) {
	tab := RunTabEll()
	if len(tab.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(tab.Rows))
	}
	// ℓ=6 row should hold the pair-objective minimum (0.267).
	if tab.Rows[1][1] != "0.267" {
		t.Errorf("ℓ=6 objective = %s, want 0.267", tab.Rows[1][1])
	}
}

func TestTabKosarakT(t *testing.T) {
	if testing.Short() {
		t.Skipf("skipping in -short mode: paper-scale Kosarak table")
	}
	tab := RunTabKosarakT(1)
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tab.Rows))
	}
	// w must increase with t, and the t=2 row must be the subspace
	// cover's w=20 with err ≈ 0.00047.
	if tab.Rows[0][1] != "20" {
		t.Errorf("t=2 w = %s, want 20", tab.Rows[0][1])
	}
	if !strings.HasPrefix(tab.Rows[0][2], "0.0004") && !strings.HasPrefix(tab.Rows[0][2], "0.0005") {
		t.Errorf("t=2 err = %s, want ≈0.00047", tab.Rows[0][2])
	}
}

func TestTabCategorical(t *testing.T) {
	tab := RunTabCategorical()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tab.Rows))
	}
	// Ranges must be increasing in b and ordered lo < hi.
	for _, row := range tab.Rows {
		var lo, hi int
		if _, err := fmtSscanf(row[1], &lo, &hi); err != nil {
			t.Fatalf("bad range %q: %v", row[1], err)
		}
		if lo >= hi {
			t.Errorf("b=%s: range %d-%d not increasing", row[0], lo, hi)
		}
	}
}

func fmtSscanf(s string, lo, hi *int) (int, error) {
	n, err := sscanRange(s, lo, hi)
	return n, err
}

func sscanRange(s string, lo, hi *int) (int, error) {
	var a, b int
	n, err := fscan(s, &a, &b)
	*lo, *hi = a, b
	return n, err
}

func fscan(s string, a, b *int) (int, error) {
	parts := strings.Split(s, " - ")
	if len(parts) != 2 {
		return 0, errBadRange
	}
	var err error
	*a, err = atoi(parts[0])
	if err != nil {
		return 0, err
	}
	*b, err = atoi(parts[1])
	if err != nil {
		return 1, err
	}
	return 2, nil
}

var errBadRange = errString("bad range")

type errString string

func (e errString) Error() string { return string(e) }

func atoi(s string) (int, error) {
	v := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errBadRange
		}
		v = v*10 + int(s[i]-'0')
	}
	return v, nil
}

func TestRecommendedCellBudgetShape(t *testing.T) {
	lo2, hi2 := RecommendedCellBudget(2)
	// Paper: 100 - 1000 for b=2 (rough guideline; the pair minimizer is
	// s≈77 which rounds to 80, the triple minimizer ≈1000).
	if lo2 < 50 || lo2 > 150 {
		t.Errorf("b=2 lo = %d, want near 100", lo2)
	}
	if hi2 < 700 || hi2 > 1500 {
		t.Errorf("b=2 hi = %d, want near 1000", hi2)
	}
	lo5, hi5 := RecommendedCellBudget(5)
	if lo5 <= lo2 || hi5 <= hi2 {
		t.Errorf("b=5 range (%d-%d) not larger than b=2 (%d-%d)", lo5, hi5, lo2, hi2)
	}
}

func TestRuntimeTable(t *testing.T) {
	if testing.Short() {
		t.Skipf("skipping in -short mode: wall-clock measurement run")
	}
	if testing.Short() {
		t.Skip("runtime table builds four synopses")
	}
	cfg := Config{Queries: 1, Runs: 1, N: 3000, Seed: 1}
	rows := RunTabRuntime(cfg)
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.P <= 0 || r.Q6 < 0 || r.Q8 < 0 {
			t.Errorf("non-positive timing in %+v", r)
		}
	}
	if !strings.Contains(FormatRuntime(rows), "Kosarak") {
		t.Error("FormatRuntime missing dataset")
	}
}

func TestSampleQuerySets(t *testing.T) {
	rng := noise.NewStream(1)
	qs := sampleQuerySets(10, 3, 15, rng)
	if len(qs) != 15 {
		t.Fatalf("%d query sets, want 15", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if len(q) != 3 {
			t.Fatalf("query %v has wrong size", q)
		}
		for i := 1; i < len(q); i++ {
			if q[i] <= q[i-1] {
				t.Fatalf("query %v not sorted", q)
			}
		}
		key := ""
		for _, a := range q {
			key += string(rune('a' + a))
		}
		if seen[key] {
			t.Fatalf("duplicate query %v", q)
		}
		seen[key] = true
	}
	// Exhaustive when C(d,k) small.
	all := sampleQuerySets(5, 2, 100, rng)
	if len(all) != 10 {
		t.Errorf("exhaustive enumeration returned %d, want 10", len(all))
	}
}

func TestConsecutiveQuerySets(t *testing.T) {
	qs := consecutiveQuerySets(6, 3)
	if len(qs) != 4 {
		t.Fatalf("%d sets, want 4", len(qs))
	}
	if qs[0][0] != 0 || qs[3][2] != 5 {
		t.Errorf("sets = %v", qs)
	}
}

func TestFormatAndCSV(t *testing.T) {
	rows := []Row{{
		Experiment: "figX", Dataset: "D", Method: "M, with comma",
		Epsilon: 1, K: 4, Metric: "L2n",
		Stats: constantCandlestick(0.5), Note: "n",
	}}
	if !strings.Contains(FormatRows(rows), "figX") {
		t.Error("FormatRows missing experiment")
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"M, with comma"`) {
		t.Errorf("CSV escaping failed: %s", out)
	}
	if !strings.HasPrefix(out, "experiment,") {
		t.Error("CSV header missing")
	}
}

func TestAblation(t *testing.T) {
	if testing.Short() {
		t.Skipf("skipping in -short mode: full ablation sweep")
	}
	if testing.Short() {
		t.Skip("ablation builds several synopses")
	}
	cfg := Config{Queries: 4, Runs: 1, N: 10000, Seed: 1}
	rows := RunAblation(cfg)
	byMethod := map[string]float64{}
	for _, r := range rows {
		if r.K == 4 {
			byMethod[r.Method] = r.Stats.Mean
		}
	}
	// The two maxent solvers reach the same optimum: errors must be
	// close.
	ipf, dual := byMethod["solver/IPF"], byMethod["solver/DualAscent"]
	if ipf == 0 || dual == 0 {
		t.Fatalf("missing solver rows: %v", byMethod)
	}
	if dual > ipf*2.5 || ipf > dual*2.5 {
		t.Errorf("solver ablation diverges: IPF=%v dual=%v", ipf, dual)
	}
	// The full pipeline must beat raw views.
	full, raw := byMethod["consistency/FullPipeline"], byMethod["consistency/RawViews"]
	if full >= raw {
		t.Errorf("consistency pipeline (%v) not better than raw views (%v)", full, raw)
	}
	// All theta settings present.
	for _, theta := range []string{"theta=0.05", "theta=0.5", "theta=5", "theta=50"} {
		if _, ok := byMethod["ripple-theta/"+theta]; !ok {
			t.Errorf("missing %s row", theta)
		}
	}
}

func TestEvalBothMatchesSeparateEvals(t *testing.T) {
	// evalBoth must agree with evalL2/evalJS run separately on a
	// deterministic (no-noise) synopsis.
	cfg := Config{Queries: 3, Runs: 2, N: 2000, Seed: 1}
	ds := kosarakSetup(cfg)
	syn := buildNoNoise(ds)
	build := func(run int) synopsis { return syn }
	rng := noise.NewStream(9)
	queries := sampleQuerySets(32, 4, cfg.Queries, rng)
	truths := trueMarginals(ds.data, queries)
	nf := float64(ds.data.Len())
	l2a := evalL2(build, queries, truths, nf, cfg.Runs)
	jsa := evalJS(build, queries, truths, cfg.Runs)
	l2b, jsb := evalBoth(build, queries, truths, nf, cfg.Runs)
	if l2a != l2b || jsa != jsb {
		t.Errorf("evalBoth diverges: L2 %v vs %v, JS %v vs %v", l2a, l2b, jsa, jsb)
	}
}

func buildNoNoise(ds largeDataset) synopsis {
	return core.BuildSynopsis(ds.data, core.Config{Design: ds.c2, NoNoise: true}, nil)
}

func TestCategoricalSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep builds several categorical synopses")
	}
	cfg := Config{Queries: 5, Runs: 1, N: 8000, Seed: 1}
	rows := RunCategoricalSweep(cfg)
	if len(rows) != 10 { // 5 budgets × 2 k values
		t.Fatalf("%d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Mean <= 0 {
			t.Errorf("non-positive error in %v", r)
		}
	}
}

func TestQCacheExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: wall-clock measurement run")
	}
	cfg := Config{Queries: 2, Runs: 1, N: 3000, Seed: 1}
	rows := RunQCache(cfg)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (k=6 and k=8)", len(rows))
	}
	for _, r := range rows {
		if r.Uncached <= 0 || r.Cold <= 0 || r.Hot <= 0 {
			t.Errorf("non-positive timing in %+v", r)
		}
		if r.Hot >= r.Uncached {
			t.Errorf("k=%d: cache hit (%v) not faster than the solve (%v)", r.K, r.Hot, r.Uncached)
		}
	}
	out := FormatQCache(rows)
	if !strings.Contains(out, "Kosarak") || !strings.Contains(out, "speedup") {
		t.Errorf("FormatQCache output malformed:\n%s", out)
	}
}
