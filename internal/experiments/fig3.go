package experiments

import (
	"fmt"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/noise"
)

// fig3Ks are the marginal sizes evaluated for the reconstruction and
// non-negativity comparisons.
var fig3Ks = []int{4, 6, 8}

// RunFig3 reproduces Figure 3: the reconstruction estimators — CME
// (maximum entropy), LP (linear programming without consistency), CLP
// (consistency then LP), CLN (least squares) and CME* (maximum entropy
// without noise) — on Kosarak with its t=3 design and AOL with its t=2
// design, both at ε = 1.
func RunFig3(cfg Config) []Row {
	cfg = cfg.orDefaults()
	var rows []Row
	kos := kosarakSetup(cfg)
	rows = append(rows, runFig3Dataset(cfg, kos, kos.c3)...)
	aol := aolSetup(cfg)
	rows = append(rows, runFig3Dataset(cfg, aol, aol.c2)...)
	return rows
}

// RunFig3Kosarak runs only the Kosarak panel (t=3 design).
func RunFig3Kosarak(cfg Config) []Row {
	cfg = cfg.orDefaults()
	kos := kosarakSetup(cfg)
	return runFig3Dataset(cfg, kos, kos.c3)
}

func runFig3Dataset(cfg Config, ds largeDataset, design *covering.Design) []Row {
	const eps = 1.0
	root := noise.NewStream(cfg.Seed).Derive("fig3-" + ds.name)
	nf := float64(ds.data.Len())
	var rows []Row
	type variant struct {
		label string
		note  string
		cfg   core.Config
	}
	variants := []variant{
		{"CME", "", core.Config{Epsilon: eps, Design: design, Method: core.CME}},
		{"LP", "", core.Config{Epsilon: eps, Design: design, Method: core.LP, SkipPostprocess: true}},
		{"CLP", "", core.Config{Epsilon: eps, Design: design, Method: core.CLP}},
		{"CLN", "", core.Config{Epsilon: eps, Design: design, Method: core.CLN}},
		{"CME*", "no-noise", core.Config{Design: design, Method: core.CME, NoNoise: true}},
	}
	// Synopses are k-independent; build once per (variant, run).
	built := make([][]*core.Synopsis, len(variants))
	for i, v := range variants {
		built[i] = make([]*core.Synopsis, cfg.Runs)
		for run := 0; run < cfg.Runs; run++ {
			built[i][run] = core.BuildSynopsis(ds.data, v.cfg,
				root.DeriveIndexed(v.label, run))
		}
	}
	// The LP-family estimators cost seconds per 8-way simplex solve, so
	// they are evaluated on a subsample of the query sets (the error
	// distributions are wide enough that a dozen queries pin down the
	// ordering); reduced configurations additionally stop at k=6.
	ks := fig3Ks
	if cfg.Queries <= 10 {
		ks = []int{4, 6}
	}
	lpQueryCap := func(k int) int {
		switch {
		case k >= 8:
			return 6
		case k >= 6:
			return 12
		default:
			return cfg.Queries
		}
	}
	for _, k := range ks {
		queries := sampleQuerySets(ds.data.Dim(), k, cfg.Queries, root.DeriveIndexed("queries", k))
		truths := trueMarginals(ds.data, queries)
		for i, v := range variants {
			i := i
			qs, ts := queries, truths
			note := joinNotes(design.Name(), v.note)
			if v.cfg.Method == core.LP || v.cfg.Method == core.CLP {
				if cap := lpQueryCap(k); len(qs) > cap {
					qs, ts = qs[:cap], ts[:cap]
					note = joinNotes(note, fmt.Sprintf("(%d queries)", cap))
				}
			}
			rows = append(rows, Row{
				Experiment: "fig3", Dataset: ds.name, Method: v.label,
				Epsilon: eps, K: k, Metric: "L2n",
				Stats: evalL2(func(run int) synopsis {
					return built[i][run]
				}, qs, ts, nf, cfg.Runs),
				Note: note,
			})
		}
	}
	return rows
}

func joinNotes(a, b string) string {
	if b == "" {
		return a
	}
	return a + " " + b
}
