// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each exported RunXxx function returns the rows of one
// artifact — per (dataset, method, ε, k) candlestick profiles of
// normalized L2 error or Jensen–Shannon divergence — which
// cmd/priview-bench renders as text tables and CSV, and which
// EXPERIMENTS.md compares against the paper's reported values.
package experiments

import (
	"fmt"
	"sort"

	"priview/internal/accuracy"
	"priview/internal/dataset"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// Config scales an experiment. The zero value is ignored; use Reduced or
// Full, or craft intermediate sizes.
type Config struct {
	// Queries is how many random k-attribute sets are evaluated per
	// setting (the paper uses 200).
	Queries int
	// Runs is how many independent noise draws are averaged per query
	// set (the paper uses 5).
	Runs int
	// N is the synthetic dataset size; 0 means each dataset's
	// paper-scale default.
	N int
	// Seed roots all randomness (data synthesis, noise, query choice).
	Seed int64
}

// Reduced returns a configuration small enough for go test and quick
// iterations: fewer queries, fewer runs, smaller datasets. The error
// *distributions* it produces are noisier than the paper's but the
// method ordering and orders-of-magnitude gaps are stable.
func Reduced() Config {
	return Config{Queries: 20, Runs: 2, N: 40000, Seed: 1}
}

// Full returns the paper-scale configuration: 200 query sets, 5 runs,
// full synthetic dataset sizes.
func Full() Config {
	return Config{Queries: 200, Runs: 5, N: 0, Seed: 1}
}

func (c Config) orDefaults() Config {
	if c.Queries <= 0 {
		c.Queries = 20
	}
	if c.Runs <= 0 {
		c.Runs = 2
	}
	return c
}

// Row is one plotted candlestick (or analytic point) of an artifact.
type Row struct {
	Experiment string
	Dataset    string
	Method     string
	Epsilon    float64
	K          int
	Metric     string // "L2n" (normalized L2) or "JS"
	Stats      accuracy.Candlestick
	Note       string // "expected", "no-noise", covering-design name, ...
}

// String renders the row compactly for logs.
func (r Row) String() string {
	return fmt.Sprintf("%s %s %s eps=%g k=%d %s mean=%.3g median=%.3g",
		r.Experiment, r.Dataset, r.Method, r.Epsilon, r.K, r.Metric,
		r.Stats.Mean, r.Stats.Median)
}

// synopsis is the structural interface every mechanism satisfies.
type synopsis interface {
	Name() string
	Query(attrs []int) *marginal.Table
}

// sampleQuerySets draws `count` distinct k-subsets of {0..d-1}. When
// C(d,k) is small, all subsets are returned.
func sampleQuerySets(d, k, count int, rng *noise.Stream) [][]int {
	total := binomBig(d, k)
	if total <= int64(count) {
		return allKSubsets(d, k)
	}
	seen := map[string]bool{}
	var out [][]int
	for len(out) < count {
		perm := rng.Perm(d)[:k]
		sort.Ints(perm)
		key := marginal.Key(perm)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, perm)
	}
	return out
}

func binomBig(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	v := int64(1)
	for i := 0; i < k; i++ {
		v = v * int64(n-i) / int64(i+1)
		if v > 1<<40 {
			return 1 << 40
		}
	}
	return v
}

func allKSubsets(d, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		i := k - 1
		for i >= 0 && idx[i] == d-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// consecutiveQuerySets returns all runs of k consecutive attributes —
// the query workload for the Markov-chain experiment (Fig. 5).
func consecutiveQuerySets(d, k int) [][]int {
	var out [][]int
	for start := 0; start+k <= d; start++ {
		q := make([]int, k)
		for i := range q {
			q[i] = start + i
		}
		out = append(out, q)
	}
	return out
}

// trueMarginals evaluates the exact marginal for every query set.
func trueMarginals(data *dataset.Dataset, queries [][]int) []*marginal.Table {
	out := make([]*marginal.Table, len(queries))
	for i, q := range queries {
		out[i] = data.Marginal(q)
	}
	return out
}

// evalL2 runs `runs` independent builds of a mechanism and returns the
// candlestick over query sets of the per-query average normalized L2
// error — the paper's evaluation protocol ("we compute the average
// error of each query of five runs ... then plot the distribution of
// the 200 average errors").
func evalL2(build func(run int) synopsis, queries [][]int, truths []*marginal.Table, n float64, runs int) accuracy.Candlestick {
	return eval(build, queries, truths, runs, func(got, truth *marginal.Table) float64 {
		return accuracy.NormalizedL2Error(got, truth, n)
	})
}

// evalJS is evalL2 with Jensen–Shannon divergence.
func evalJS(build func(run int) synopsis, queries [][]int, truths []*marginal.Table, runs int) accuracy.Candlestick {
	return eval(build, queries, truths, runs, func(got, truth *marginal.Table) float64 {
		return accuracy.JSDivergence(got, truth)
	})
}

func eval(build func(run int) synopsis, queries [][]int, truths []*marginal.Table, runs int, errFn func(got, truth *marginal.Table) float64) accuracy.Candlestick {
	perQuery := make([]float64, len(queries))
	for run := 0; run < runs; run++ {
		syn := build(run)
		for i, q := range queries {
			perQuery[i] += errFn(syn.Query(q), truths[i])
		}
	}
	for i := range perQuery {
		perQuery[i] /= float64(runs)
	}
	return accuracy.Summarize(perQuery)
}

// evalBoth computes the normalized-L2 and Jensen–Shannon candlesticks
// in a single query pass (reconstruction dominates the cost, so the
// two-metric figures use this instead of two eval calls).
func evalBoth(build func(run int) synopsis, queries [][]int, truths []*marginal.Table, n float64, runs int) (l2, js accuracy.Candlestick) {
	perL2 := make([]float64, len(queries))
	perJS := make([]float64, len(queries))
	for run := 0; run < runs; run++ {
		syn := build(run)
		for i, q := range queries {
			got := syn.Query(q)
			perL2[i] += accuracy.NormalizedL2Error(got, truths[i], n)
			perJS[i] += accuracy.JSDivergence(got, truths[i])
		}
	}
	for i := range perL2 {
		perL2[i] /= float64(runs)
		perJS[i] /= float64(runs)
	}
	return accuracy.Summarize(perL2), accuracy.Summarize(perJS)
}

// constantCandlestick represents an analytic (expected) value as a
// degenerate candlestick so it renders uniformly with measured rows.
func constantCandlestick(v float64) accuracy.Candlestick {
	return accuracy.Candlestick{P25: v, Median: v, P75: v, P95: v, Mean: v}
}
