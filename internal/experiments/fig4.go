package experiments

import (
	"priview/internal/consistency"
	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/noise"
)

// RunFig4 reproduces Figure 4: non-negativity strategies — None,
// Simple, Global, Ripple_1 (Consistency + Ripple + Consistency) and
// Ripple_3 (three Ripple+Consistency passes) — on Kosarak (t=3 design)
// and AOL (t=2 design) at ε = 1, with maximum-entropy reconstruction.
func RunFig4(cfg Config) []Row {
	cfg = cfg.orDefaults()
	var rows []Row
	kos := kosarakSetup(cfg)
	rows = append(rows, runFig4Dataset(cfg, kos, kos.c3)...)
	aol := aolSetup(cfg)
	rows = append(rows, runFig4Dataset(cfg, aol, aol.c2)...)
	return rows
}

// RunFig4Kosarak runs only the Kosarak panel.
func RunFig4Kosarak(cfg Config) []Row {
	cfg = cfg.orDefaults()
	kos := kosarakSetup(cfg)
	return runFig4Dataset(cfg, kos, kos.c3)
}

func runFig4Dataset(cfg Config, ds largeDataset, design *covering.Design) []Row {
	const eps = 1.0
	root := noise.NewStream(cfg.Seed).Derive("fig4-" + ds.name)
	nf := float64(ds.data.Len())
	var rows []Row
	type variant struct {
		label string
		cfg   core.Config
	}
	variants := []variant{
		{"None", core.Config{Epsilon: eps, Design: design, Nonneg: consistency.NonnegNone}},
		{"Simple", core.Config{Epsilon: eps, Design: design, Nonneg: consistency.NonnegSimple}},
		{"Global", core.Config{Epsilon: eps, Design: design, Nonneg: consistency.NonnegGlobal}},
		{"Ripple1", core.Config{Epsilon: eps, Design: design, Nonneg: consistency.NonnegRipple, NonnegRounds: 1}},
		{"Ripple3", core.Config{Epsilon: eps, Design: design, Nonneg: consistency.NonnegRipple, NonnegRounds: 3}},
	}
	// Synopses are k-independent; build once per (variant, run). Within
	// a run, every variant post-processes the same noisy views (same
	// derived noise stream), isolating the non-negativity strategy.
	built := make([][]*core.Synopsis, len(variants))
	for i, v := range variants {
		built[i] = make([]*core.Synopsis, cfg.Runs)
		for run := 0; run < cfg.Runs; run++ {
			built[i][run] = core.BuildSynopsis(ds.data, v.cfg,
				root.DeriveIndexed("views", run))
		}
	}
	for _, k := range fig3Ks {
		queries := sampleQuerySets(ds.data.Dim(), k, cfg.Queries, root.DeriveIndexed("queries", k))
		truths := trueMarginals(ds.data, queries)
		for i, v := range variants {
			i := i
			rows = append(rows, Row{
				Experiment: "fig4", Dataset: ds.name, Method: v.label,
				Epsilon: eps, K: k, Metric: "L2n",
				Stats: evalL2(func(run int) synopsis {
					return built[i][run]
				}, queries, truths, nf, cfg.Runs),
				Note: design.Name(),
			})
		}
	}
	return rows
}
