package experiments

import (
	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/noise"
)

// RunFig6 reproduces Figure 6: PriView accuracy under different covering
// designs on Kosarak — pair and triple coverage with several view sizes
// ℓ — alongside the Eq. 5 predicted noise error for each design (the
// purple stars in the paper's plot).
func RunFig6(cfg Config) []Row {
	cfg = cfg.orDefaults()
	ds := kosarakSetup(cfg)
	root := noise.NewStream(cfg.Seed).Derive("fig6")
	nf := float64(ds.data.Len())

	type designSpec struct{ ell, t int }
	specs := []designSpec{
		{6, 2}, {8, 2}, {10, 2}, {8, 3}, {10, 3},
	}
	var designs []*covering.Design
	for _, s := range specs {
		designs = append(designs, covering.Best(32, s.ell, s.t, cfg.Seed, 4))
	}

	var rows []Row
	for _, eps := range fig2Epsilons {
		epsKey := int(eps * 1000)
		built := make([][]*core.Synopsis, len(designs))
		for i, dg := range designs {
			built[i] = make([]*core.Synopsis, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				built[i][run] = core.BuildSynopsis(ds.data, core.Config{Epsilon: eps, Design: dg},
					root.DeriveIndexed(dg.Name(), run*100000+epsKey))
			}
		}
		for _, k := range fig3Ks {
			queries := sampleQuerySets(32, k, cfg.Queries, root.DeriveIndexed("queries", k))
			truths := trueMarginals(ds.data, queries)
			for i, dg := range designs {
				i, design := i, dg
				rows = append(rows, Row{
					Experiment: "fig6", Dataset: "Kosarak", Method: design.Name(),
					Epsilon: eps, K: k, Metric: "L2n",
					Stats: evalL2(func(run int) synopsis {
						return built[i][run]
					}, queries, truths, nf, cfg.Runs),
				})
				// Eq. 5 predicted noise error (star marker in the paper);
				// independent of k, emitted once per (design, eps).
				if k == fig3Ks[0] {
					rows = append(rows, Row{
						Experiment: "fig6", Dataset: "Kosarak", Method: design.Name(),
						Epsilon: eps, K: 0, Metric: "L2n",
						Stats: constantCandlestick(core.NoiseError(design, eps, ds.data.Len())),
						Note:  "eq5-noise-error",
					})
				}
			}
		}
	}
	return rows
}
