package experiments

import (
	"priview/internal/baselines"
	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/dataset/synth"
	"priview/internal/noise"
)

var (
	fig2Epsilons = []float64{1.0, 0.1}
	fig2Ks       = []int{4, 6, 8}
)

// largeDataset bundles one of the paper's two big datasets with its
// covering designs.
type largeDataset struct {
	name string
	data *dataset.Dataset
	c2   *covering.Design
	c3   *covering.Design
}

func kosarakSetup(cfg Config) largeDataset {
	n := cfg.N
	if n <= 0 {
		n = synth.KosarakN
	}
	return largeDataset{
		name: "Kosarak",
		data: synth.Kosarak(n, cfg.Seed),
		c2:   covering.Best(32, 8, 2, cfg.Seed, 4),
		c3:   covering.Best(32, 8, 3, cfg.Seed, 4),
	}
}

func aolSetup(cfg Config) largeDataset {
	n := cfg.N
	if n <= 0 {
		n = synth.AOLN
	}
	return largeDataset{
		name: "AOL",
		data: synth.AOL(n, cfg.Seed),
		c2:   covering.Best(45, 8, 2, cfg.Seed, 4),
		c3:   covering.Best(45, 8, 3, cfg.Seed, 4),
	}
}

// RunFig2 reproduces Figure 2: PriView (with and without noise) against
// Direct, Fourier, the analytically expected Flat, and Uniform on the
// Kosarak (d=32) and AOL (d=45) datasets, reporting both normalized L2
// error and Jensen–Shannon divergence.
func RunFig2(cfg Config) []Row {
	cfg = cfg.orDefaults()
	var rows []Row
	for _, ds := range []largeDataset{kosarakSetup(cfg), aolSetup(cfg)} {
		rows = append(rows, runFig2Dataset(cfg, ds)...)
	}
	return rows
}

// RunFig2Kosarak runs only the Kosarak half (used by the benchmarks to
// keep one bench per figure panel affordable).
func RunFig2Kosarak(cfg Config) []Row {
	cfg = cfg.orDefaults()
	return runFig2Dataset(cfg, kosarakSetup(cfg))
}

func runFig2Dataset(cfg Config, ds largeDataset) []Row {
	root := noise.NewStream(cfg.Seed).Derive("fig2-" + ds.name)
	d := ds.data.Dim()
	nf := float64(ds.data.Len())
	var rows []Row

	// PriView synopses are k-independent: build once per (design, eps,
	// run) and reuse for every query size. The no-noise variants are
	// also eps-independent.
	designs := []*covering.Design{ds.c2, ds.c3}
	noNoise := make([]*core.Synopsis, len(designs))
	for i, dg := range designs {
		noNoise[i] = core.BuildSynopsis(ds.data, core.Config{Design: dg, NoNoise: true}, nil)
	}
	for epsIdx, eps := range fig2Epsilons {
		epsKey := int(eps * 1000)
		priview := make([][]*core.Synopsis, len(designs))
		for i, dg := range designs {
			priview[i] = make([]*core.Synopsis, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				priview[i][run] = core.BuildSynopsis(ds.data, core.Config{Epsilon: eps, Design: dg},
					root.DeriveIndexed("pv-"+dg.Name(), run*100000+epsKey))
			}
		}
		for _, k := range fig2Ks {
			queries := sampleQuerySets(d, k, cfg.Queries, root.DeriveIndexed("queries", k))
			truths := trueMarginals(ds.data, queries)
			addBoth := func(method, note string, build func(run int) synopsis) {
				l2, js := evalBoth(build, queries, truths, nf, cfg.Runs)
				rows = append(rows,
					Row{Experiment: "fig2", Dataset: ds.name, Method: method,
						Epsilon: eps, K: k, Metric: "L2n", Stats: l2, Note: note},
					Row{Experiment: "fig2", Dataset: ds.name, Method: method,
						Epsilon: eps, K: k, Metric: "JS", Stats: js, Note: note},
				)
			}

			addBoth("Uniform", "", func(run int) synopsis {
				return baselines.NewUniform(ds.data.Len())
			})
			addBoth("Direct", "", func(run int) synopsis {
				return baselines.NewDirect(ds.data, eps, k, true, root.DeriveIndexed("direct", run*100000+epsKey*10+k))
			})
			addBoth("Fourier", "", func(run int) synopsis {
				return baselines.NewFourier(ds.data, eps, k, true, root.DeriveIndexed("fourier", run*100000+epsKey*10+k))
			})
			// Flat cannot run at this scale; plot its expected error,
			// capped at 1 as in the paper.
			rows = append(rows, Row{
				Experiment: "fig2", Dataset: ds.name, Method: "Flat",
				Epsilon: eps, K: k, Metric: "L2n",
				Stats: constantCandlestick(baselines.FlatExpectedNormalizedL2(d, eps, ds.data.Len())),
				Note:  "expected",
			})
			for i, dg := range designs {
				i, design := i, dg
				addBoth("PriView", design.Name(), func(run int) synopsis {
					return priview[i][run]
				})
				// The C_t^* no-noise series isolates coverage error; it
				// does not depend on eps, so emit it once.
				if epsIdx == 0 {
					addBoth("PriView*", design.Name()+" no-noise", func(run int) synopsis {
						return noNoise[i]
					})
				}
			}
		}
	}
	return rows
}
