package experiments

import (
	"context"
	"fmt"
	"time"

	"priview/internal/core"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/qcache"
)

// QCacheRow is one row of the beyond-paper query-cache experiment: how
// long a k-way reconstruction takes against a Kosarak release with and
// without the memoizing cache in front of it.
type QCacheRow struct {
	Dataset  string
	Design   string
	K        int
	Uncached time.Duration // mean solve latency, no cache
	Cold     time.Duration // mean first-query latency through the cache (miss + fill)
	Hot      time.Duration // mean repeat-query latency (cache hit)
	Speedup  float64       // Uncached / Hot
}

// RunQCache measures the query cache introduced for the serving path:
// a published synopsis is immutable, so a marginal is a pure function
// of (attrs, method) and memoizing it costs no privacy budget. For each
// query size k the same query sets are answered three ways — directly,
// through a cold cache, and again through the now-warm cache — so the
// cold column shows the cache's fill overhead is noise next to the
// solve, and the hot column shows what repeat queries cost.
func RunQCache(cfg Config) []QCacheRow {
	cfg = cfg.orDefaults()
	kos := kosarakSetup(cfg)
	syn := core.BuildSynopsis(kos.data,
		core.Config{Epsilon: 1.0, Design: kos.c2},
		noise.NewStream(cfg.Seed).Derive("qcache"))
	rng := noise.NewStream(cfg.Seed).Derive("qcache-queries")
	ctx := context.Background()

	var rows []QCacheRow
	for _, k := range []int{6, 8} {
		sets := sampleQuerySets(kos.data.Dim(), k, cfg.Queries, rng)
		row := QCacheRow{Dataset: kos.name, Design: kos.c2.Name(), K: k}

		start := time.Now()
		for _, attrs := range sets {
			syn.Query(attrs)
		}
		row.Uncached = time.Since(start) / time.Duration(len(sets))

		cache := qcache.New(4096, 64<<20)
		query := func(attrs []int) {
			key, ok := qcache.KeyFor(attrs, int(core.CME))
			if !ok {
				panic("experiments: unkeyable query set")
			}
			if _, err := cache.Do(ctx, key, func(ctx context.Context) (*marginal.Table, error) {
				return syn.QueryMethodContext(ctx, attrs, core.CME)
			}); err != nil {
				panic(fmt.Sprintf("experiments: qcache query failed: %v", err))
			}
		}
		start = time.Now()
		for _, attrs := range sets {
			query(attrs)
		}
		row.Cold = time.Since(start) / time.Duration(len(sets))

		start = time.Now()
		for _, attrs := range sets {
			query(attrs)
		}
		row.Hot = time.Since(start) / time.Duration(len(sets))
		if st := cache.Stats(); st.Hits == 0 || int(st.Misses) != len(sets) {
			panic(fmt.Sprintf("experiments: qcache stats %+v, want %d misses and repeat hits", st, len(sets)))
		}
		if row.Hot > 0 {
			row.Speedup = float64(row.Uncached) / float64(row.Hot)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatQCache renders the query-cache rows.
func FormatQCache(rows []QCacheRow) string {
	out := "== qcache: memoized reconstruction latency (beyond-paper; serving-path cache) ==\n"
	out += fmt.Sprintf("%-8s  %-12s  %-3s  %-12s  %-12s  %-12s  %s\n",
		"dataset", "design", "k", "uncached", "cold", "hot", "speedup")
	for _, r := range rows {
		out += fmt.Sprintf("%-8s  %-12s  %-3d  %-12v  %-12v  %-12v  %.0f×\n",
			r.Dataset, r.Design, r.K, round(r.Uncached), round(r.Cold), round(r.Hot), r.Speedup)
	}
	return out
}

func round(d time.Duration) time.Duration {
	if d >= time.Millisecond {
		return d.Round(10 * time.Microsecond)
	}
	return d.Round(10 * time.Nanosecond)
}
