package experiments

import (
	"fmt"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/noise"
)

// RunFig5 reproduces Figure 5: PriView on the MCHAIN datasets — order-i
// binary Markov chains over d=64 attributes for i = 1..7 — using the
// C_2(8,72) design at ε = 1 and consecutive-attribute queries, which
// exercise exactly the chain's interdependencies.
func RunFig5(cfg Config) []Row {
	cfg = cfg.orDefaults()
	n := cfg.N
	if n <= 0 {
		n = synth.MChainN
	}
	const eps = 1.0
	design := covering.Best(64, 8, 2, cfg.Seed, 2) // C2(8,72) via spread
	root := noise.NewStream(cfg.Seed).Derive("fig5")
	var rows []Row
	for order := 1; order <= 7; order++ {
		data := synth.MChain(order, n, cfg.Seed)
		nf := float64(data.Len())
		built := make([]*core.Synopsis, cfg.Runs)
		for run := range built {
			built[run] = core.BuildSynopsis(data, core.Config{Epsilon: eps, Design: design},
				root.DeriveIndexed(fmt.Sprintf("o%d", order), run))
		}
		// Coverage-error-only series: at moderate N the Laplace noise
		// floor can hide the order-dependence the paper discusses (the
		// mc3 hump); the no-noise synopsis shows it at any N.
		noNoise := core.BuildSynopsis(data, core.Config{Design: design, NoNoise: true}, nil)
		for _, k := range fig3Ks {
			queries := consecutiveQuerySets(64, k)
			if len(queries) > cfg.Queries {
				queries = queries[:cfg.Queries]
			}
			truths := trueMarginals(data, queries)
			rows = append(rows, Row{
				Experiment: "fig5", Dataset: fmt.Sprintf("mc%d", order),
				Method: "PriView", Epsilon: eps, K: k, Metric: "L2n",
				Stats: evalL2(func(run int) synopsis {
					return built[run]
				}, queries, truths, nf, cfg.Runs),
				Note: design.Name(),
			})
			rows = append(rows, Row{
				Experiment: "fig5", Dataset: fmt.Sprintf("mc%d", order),
				Method: "PriView*", Epsilon: eps, K: k, Metric: "L2n",
				Stats: evalL2(func(run int) synopsis {
					return noNoise
				}, queries, truths, nf, 1),
				Note: design.Name() + " no-noise",
			})
		}
	}
	return rows
}
