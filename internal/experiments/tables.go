package experiments

import (
	"fmt"
	"math"
	"strings"

	"priview/internal/baselines"
	"priview/internal/categorical"
	"priview/internal/core"
	"priview/internal/covering"
)

// TableResult is a rendered analytic table: a header plus rows of
// labelled values, matching a table printed in the paper's text.
type TableResult struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table as aligned text.
func (t TableResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// RunTabCrossover reproduces the §3.2 table: the dimensionality at
// which the Direct method's ESE drops below Flat's, for k = 2..5.
func RunTabCrossover() TableResult {
	t := TableResult{
		ID:     "tab-crossover",
		Title:  "d at which Direct beats Flat (paper: 16, 26, 36, 46)",
		Header: []string{"k", "d threshold"},
	}
	for k := 2; k <= 5; k++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", baselines.DirectBeatsFlatThreshold(k)),
		})
	}
	return t
}

// RunTabMidsize reproduces the §4.1 example: ESE (in units of V_u) of
// Flat, Direct and six 8-way views for d=16, k=2.
func RunTabMidsize() TableResult {
	return TableResult{
		ID:     "tab-midsize",
		Title:  "d=16, k=2 ESE in units of V_u (paper: 65536 / 57600 / 9216)",
		Header: []string{"method", "ESE/V_u"},
		Rows: [][]string{
			{"Flat", fmt.Sprintf("%.0f", baselines.FlatESE(16, 1)/baselines.UnitVariance(1))},
			{"Direct", fmt.Sprintf("%.0f", baselines.DirectESE(16, 2, 1)/baselines.UnitVariance(1))},
			{"6 views of 8", fmt.Sprintf("%.0f", baselines.MidsizeViewsESE(6, 8))},
		},
	}
}

// RunTabEll reproduces the §4.5 view-size objective table for ℓ = 5..12.
func RunTabEll() TableResult {
	t := TableResult{
		ID:     "tab-ell",
		Title:  "view-size objectives (paper's §4.5 table; minima at ℓ=6 and ℓ=10)",
		Header: []string{"ℓ", "2^(ℓ/2)/(ℓ(ℓ-1))", "2^(ℓ/2)/(ℓ(ℓ-1)(ℓ-2))"},
	}
	for ell := 5; ell <= 12; ell++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", ell),
			fmt.Sprintf("%.3f", baselines.EllObjectivePairs(ell)),
			fmt.Sprintf("%.3f", baselines.EllObjectiveTriples(ell)),
		})
	}
	return t
}

// RunTabKosarakT reproduces the §4.5 Kosarak planning table: for ℓ=8
// and t = 2, 3, 4, the achieved design size w and the Eq. 5 noise error
// at d=32, N≈900000, ε=1. The paper's w values (20, 106, 620) come from
// the La Jolla repository; ours are our own constructions', and the
// errors use our w.
func RunTabKosarakT(seed int64) TableResult {
	t := TableResult{
		ID:     "tab-kosarak-t",
		Title:  "Kosarak design planning, d=32 ℓ=8 N=900000 ε=1 (paper: w=20/106/620, err=0.00047/0.0011/0.0026)",
		Header: []string{"t", "w", "Eq.5 err"},
	}
	for tt := 2; tt <= 4; tt++ {
		dg := covering.Best(32, 8, tt, seed, 4)
		err := core.NoiseError(dg, 1.0, 900000)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", tt),
			fmt.Sprintf("%d", dg.W()),
			fmt.Sprintf("%.5f", err),
		})
	}
	return t
}

// RunTabCategorical reproduces the §4.7 guideline table: the
// recommended range of view cell-counts s for attribute cardinalities
// b = 2..5. The range spans the minimizers of the pair and triple
// objectives √s/(log_b s(log_b s−1)) and √s/(log_b s(log_b s−1)(log_b s−2)),
// rounded outward — the paper's "rough guideline".
func RunTabCategorical() TableResult {
	t := TableResult{
		ID:     "tab-categorical",
		Title:  "recommended view sizes s per cardinality b (paper: 100-1000 / 150-2000 / 200-3200 / 250-5000)",
		Header: []string{"b", "s range"},
	}
	for b := 2; b <= 5; b++ {
		lo, hi := RecommendedCellBudget(b)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%d - %d", lo, hi),
		})
	}
	return t
}

// RecommendedCellBudget returns the [pair-optimal, triple-optimal]
// range of view cell counts for attributes with b values each, rounded
// to one-and-a-half significant figures as the paper's table does. The
// minimizers come from the categorical package (§4.7 implementation).
func RecommendedCellBudget(b int) (lo, hi int) {
	rawLo, rawHi := categorical.RecommendedCellBudget(b)
	return roundGuideline(float64(rawLo)), roundGuideline(float64(rawHi))
}

// roundGuideline rounds to the nearest value in {1, 1.5, 2, 2.5, 3, 4,
// 5, 6, 8} × 10^e, matching the coarse granularity of the paper's
// table.
func roundGuideline(v float64) int {
	if v <= 0 {
		return 0
	}
	exp := math.Floor(math.Log10(v))
	base := math.Pow(10, exp)
	mant := v / base
	grid := []float64{1, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10}
	best, bestD := grid[0], math.Inf(1)
	for _, g := range grid {
		if d := math.Abs(mant - g); d < bestD {
			bestD, best = d, g
		}
	}
	return int(math.Round(best * base))
}
