package experiments

import (
	"fmt"
	"time"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/noise"
)

// RuntimeRow is one row of the §4.6 running-time table: synopsis
// publication time P and single-marginal reconstruction times Q6, Q8
// for one (dataset, design) pair.
type RuntimeRow struct {
	Dataset string
	Design  string
	P       time.Duration
	Q6      time.Duration
	Q8      time.Duration
}

// RunTabRuntime reproduces the §4.6 table: wall-clock time to publish
// the synopsis (P) and to reconstruct one 6-way and one 8-way marginal
// (Q6, Q8) for Kosarak with its t=2/t=3 designs and AOL with its
// t=2/t=3 designs.
func RunTabRuntime(cfg Config) []RuntimeRow {
	cfg = cfg.orDefaults()
	var rows []RuntimeRow
	kos := kosarakSetup(cfg)
	rows = append(rows,
		measureRuntime(cfg, kos.name, kos.data, kos.c2),
		measureRuntime(cfg, kos.name, kos.data, kos.c3),
	)
	aol := aolSetup(cfg)
	aolC3 := covering.Best(45, 8, 3, cfg.Seed, 2)
	rows = append(rows,
		measureRuntime(cfg, aol.name, aol.data, aol.c2),
		measureRuntime(cfg, aol.name, aol.data, aolC3),
	)
	return rows
}

func measureRuntime(cfg Config, name string, data *dataset.Dataset, design *covering.Design) RuntimeRow {
	src := noise.NewStream(cfg.Seed).Derive("runtime-" + name + design.Name())
	start := time.Now()
	syn := core.BuildSynopsis(data, core.Config{Epsilon: 1.0, Design: design}, src)
	p := time.Since(start)

	rng := noise.NewStream(cfg.Seed).Derive("runtime-queries")
	q6attrs := sampleQuerySets(data.Dim(), 6, 1, rng)[0]
	start = time.Now()
	syn.Query(q6attrs)
	q6 := time.Since(start)

	q8attrs := sampleQuerySets(data.Dim(), 8, 1, rng)[0]
	start = time.Now()
	syn.Query(q8attrs)
	q8 := time.Since(start)

	return RuntimeRow{Dataset: name, Design: design.Name(), P: p, Q6: q6, Q8: q8}
}

// FormatRuntime renders the runtime rows like the paper's table.
func FormatRuntime(rows []RuntimeRow) string {
	out := "== tab-runtime: synopsis publication and reconstruction times (paper, Python: P=8.8s-593s, Q6=0.16s-11.8s, Q8=2.8s-77.5s) ==\n"
	out += fmt.Sprintf("%-8s  %-12s  %-12s  %-12s  %-12s\n", "dataset", "design", "P", "Q6", "Q8")
	for _, r := range rows {
		out += fmt.Sprintf("%-8s  %-12s  %-12v  %-12v  %-12v\n", r.Dataset, r.Design, r.P.Round(time.Millisecond), r.Q6.Round(time.Millisecond), r.Q8.Round(time.Millisecond))
	}
	return out
}
