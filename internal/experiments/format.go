package experiments

import (
	"fmt"
	"io"
	"strings"
)

// FormatRows renders result rows as an aligned text table, grouped the
// way the paper's figures panel them (dataset, then ε, then k).
func FormatRows(rows []Row) string {
	var b strings.Builder
	header := fmt.Sprintf("%-6s %-8s %-18s %-5s %-3s %-4s %12s %12s %12s %12s %12s  %s",
		"exp", "dataset", "method", "eps", "k", "met", "p25", "median", "p75", "p95", "mean", "note")
	b.WriteString(header)
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-8s %-18s %-5g %-3d %-4s %12.4g %12.4g %12.4g %12.4g %12.4g  %s\n",
			r.Experiment, r.Dataset, r.Method, r.Epsilon, r.K, r.Metric,
			r.Stats.P25, r.Stats.Median, r.Stats.P75, r.Stats.P95, r.Stats.Mean, r.Note)
	}
	return b.String()
}

// WriteCSV emits the rows as CSV for downstream plotting.
func WriteCSV(w io.Writer, rows []Row) error {
	if _, err := io.WriteString(w, "experiment,dataset,method,epsilon,k,metric,p25,median,p75,p95,mean,note\n"); err != nil {
		return err
	}
	for _, r := range rows {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%g,%d,%s,%g,%g,%g,%g,%g,%s\n",
			csvEscape(r.Experiment), csvEscape(r.Dataset), csvEscape(r.Method),
			r.Epsilon, r.K, r.Metric,
			r.Stats.P25, r.Stats.Median, r.Stats.P75, r.Stats.P95, r.Stats.Mean,
			csvEscape(r.Note))
		if err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
