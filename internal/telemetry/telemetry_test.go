package telemetry

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	if got := c.Value(); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	g := NewGauge()
	g.Set(2.5)
	g.Add(-1.25)
	if got := g.Value(); got < 1.24 || got > 1.26 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	buckets, count, sum := h.snapshot()
	want := []uint64{2, 1, 1, 1} // le=1:{0.5,1} le=2:{1.5} le=4:{3} +Inf:{100}
	for i, w := range want {
		if buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, buckets[i], w, buckets)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if sum < 105.9 || sum > 106.1 {
		t.Fatalf("sum = %v, want 106", sum)
	}
}

func TestVecInterning(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("pv_test_total", "test", "release")
	a1 := v.With("alpha")
	a2 := v.With("alpha")
	b := v.With("beta")
	if a1 != a2 {
		t.Fatal("same label tuple returned distinct counters")
	}
	if a1 == b {
		t.Fatal("distinct label tuples share a counter")
	}
	a1.Add(3)
	if got := v.With("alpha").Value(); got != 3 {
		t.Fatalf("interned counter = %d, want 3", got)
	}
}

func TestRegistrationIdempotentAndChecked(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("pv_once_total", "one")
	c2 := r.Counter("pv_once_total", "one")
	if c1 != c2 {
		t.Fatal("re-registering the same counter returned a new instance")
	}
	mustPanic(t, "kind change", func() { r.Gauge("pv_once_total", "one") })
	mustPanic(t, "label change", func() { r.CounterVec("pv_once_total", "one", "x") })
	mustPanic(t, "bad name", func() { r.Counter("0bad", "x") })
	mustPanic(t, "bad label", func() { r.CounterVec("pv_ok_total", "x", "0bad") })
	mustPanic(t, "reserved le", func() { r.HistogramVec("pv_h", "x", nil, "le") })
	mustPanic(t, "descending buckets", func() { r.Histogram("pv_h2", "x", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", what)
		}
	}()
	fn()
}

func TestOnScrapeRefreshesGauges(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pv_depth", "queue depth")
	depth := 0
	r.OnScrape(func() { g.Set(float64(depth)) })
	depth = 7
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pv_depth 7\n") {
		t.Fatalf("scrape hook did not refresh gauge:\n%s", sb.String())
	}
}

// TestRoundTrip renders a registry with every family kind and labels
// needing escapes, parses it back, and checks the values survive.
func TestRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("pv_plain_total", "plain").Add(12)
	r.CounterVec("pv_labeled_total", "labeled", "release").With(`we"ird\nam` + "\n" + `e`).Add(3)
	r.Gauge("pv_gauge", "a gauge").Set(-1.5)
	h := r.HistogramVec("pv_lat_seconds", "latency", []float64{0.01, 0.1}, "route")
	h.With("/v1/marginal").Observe(0.05)
	h.With("/v1/marginal").Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, sb.String())
	}
	if s := fams["pv_plain_total"].Sample("pv_plain_total", nil); s == nil || s.Value != 12 {
		t.Fatalf("pv_plain_total = %+v, want 12", s)
	}
	lab := fams["pv_labeled_total"].Sample("pv_labeled_total", map[string]string{"release": `we"ird\nam` + "\n" + `e`})
	if lab == nil || lab.Value != 3 {
		t.Fatalf("escaped label round-trip failed: %+v\n%s", lab, sb.String())
	}
	cnt := fams["pv_lat_seconds"].Sample("pv_lat_seconds_count", map[string]string{"route": "/v1/marginal"})
	if cnt == nil || cnt.Value != 2 {
		t.Fatalf("histogram count = %+v, want 2", cnt)
	}
}

// TestConcurrentScrapeStress is the satellite's -race gate: 12 writer
// goroutines hammer counters, gauges and a histogram while scrapers
// render and re-parse the exposition; every scrape must stay
// well-formed (cumulative buckets, no torn samples).
func TestConcurrentScrapeStress(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("pv_stress_total", "stress", "worker")
	g := r.Gauge("pv_stress_gauge", "stress")
	h := r.Histogram("pv_stress_seconds", "stress", []float64{0.001, 0.01, 0.1})
	const writers = 12
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		handle := vec.With(fmt.Sprintf("w%d", w))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				handle.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 3; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				srv := httptest.NewRecorder()
				r.Handler().ServeHTTP(srv, httptest.NewRequest("GET", "/metrics", nil))
				if srv.Code != 200 {
					t.Errorf("scrape status %d", srv.Code)
					return
				}
				if _, err := ParseText(srv.Body); err != nil {
					t.Errorf("mid-stress scrape does not parse: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	var total uint64
	for w := 0; w < writers; w++ {
		total += vec.With(fmt.Sprintf("w%d", w)).Value()
	}
	if total != writers*perWriter {
		t.Fatalf("lost increments: %d, want %d", total, writers*perWriter)
	}
	if h.Count() != writers*perWriter {
		t.Fatalf("histogram lost observations: %d, want %d", h.Count(), writers*perWriter)
	}
}

func TestTraceStages(t *testing.T) {
	ctx, tr := StartTrace(context.Background())
	FromContext(ctx).Stage("cache.fill", 20*time.Millisecond)
	FromContext(ctx).Stage("reconstruct.maxent", 15*time.Millisecond)
	stages := tr.Stages()
	if len(stages) != 2 || stages[0].Name != "cache.fill" {
		t.Fatalf("stages = %+v", stages)
	}
	sum := tr.Summary()
	if !strings.HasPrefix(sum, "cache.fill=20ms") || !strings.Contains(sum, "reconstruct.maxent=15ms") {
		t.Fatalf("summary = %q", sum)
	}
	if tr.Elapsed() < 0 {
		t.Fatal("negative elapsed")
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Stage("x", time.Second) // must not panic
	if tr.Stages() != nil || tr.Summary() != "" || tr.Elapsed() != 0 {
		t.Fatal("nil trace is not inert")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on a bare context should be nil")
	}
}
