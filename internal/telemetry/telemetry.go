// Package telemetry is the repo's unified operational-metrics layer: a
// stdlib-only registry of counters, gauges and fixed-bucket histograms
// with Prometheus text-format exposition, plus the request-scoped trace
// spans the server threads through qcache → core → reconstruct.
//
// Design constraints, in order:
//
//   - Hot-path increments are allocation-free. Vec types intern one
//     child per label-value tuple at setup time and hand out typed
//     handles (*Counter, *Gauge, *Histogram); the serving path only
//     touches those handles with atomic operations. Verified by the
//     zero-alloc gate in bench_test.go and the hotalloc lint.
//   - Subsystems own handles, not structs. qcache, admission, the
//     release registry and the client hold *Counter fields that are
//     either standalone (NewCounter, for use without a registry) or
//     interned children of a shared Registry — their JSON stats
//     surfaces read the same counters /metrics exposes, so the two can
//     never disagree.
//   - Scrape-time gauges. Values that are snapshots of live state
//     (cache entries/bytes, queue depth, AIMD limit) are refreshed by
//     OnScrape hooks immediately before rendering rather than pushed
//     on every mutation.
//
// Everything is safe for concurrent use.
package telemetry

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use when embedded; pointer fields should use NewCounter or a
// CounterVec child.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone counter not attached to any registry
// — the default for subsystems constructed without telemetry wiring, so
// their hot paths never branch on "is metrics configured".
func NewCounter() *Counter { return new(Counter) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as bits in one
// atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge not attached to any registry.
func NewGauge() *Gauge { return new(Gauge) }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	//lint:ignore ctxflow bounded CAS retry between two atomic loads under finite contention; no request context reaches this path
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates the three family types in exposition.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	panic("telemetry: unknown metric kind")
}

// child is one (label values → metric) binding inside a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric with a fixed label schema and interned
// children per label-value tuple.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogramKind only

	mu       sync.Mutex
	children map[string]*child
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. One Registry serves one process; the server mounts
// Handler at GET /metrics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers fn to run immediately before every exposition
// render. Hooks refresh gauges whose truth lives in subsystem state
// (cache occupancy, queue depth, AIMD limit) so a scrape always sees a
// current snapshot without per-mutation pushes. Hooks run outside the
// registry lock, in registration order, and must not block.
func (r *Registry) OnScrape(fn func()) {
	if fn == nil {
		panic("telemetry: OnScrape called with nil hook")
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// register creates (or returns the existing, schema-checked) family.
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	checkMetricName(name)
	for _, l := range labels {
		checkLabelName(name, l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered with a different schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: metric %s re-registered with different label names", name))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// childKey joins label values with an unprintable separator; label
// values are free-form UTF-8 so 0xFF (never valid UTF-8) cannot
// collide two distinct tuples.
func childKey(values []string) string {
	return strings.Join(values, "\xff")
}

// get interns (or returns) the child for the given label values.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s accessed with wrong label count", f.name))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case counterKind:
		c.counter = NewCounter()
	case gaugeKind:
		c.gauge = NewGauge()
	case histogramKind:
		c.hist = NewHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// Counter registers (or returns) a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, counterKind, nil, nil).get(nil).counter
}

// Gauge registers (or returns) a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, gaugeKind, nil, nil).get(nil).gauge
}

// Histogram registers (or returns) a label-less histogram with the
// given upper bucket bounds (see NewHistogram for the bound contract).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(buckets)
	return r.register(name, help, histogramKind, nil, buckets).get(nil).hist
}

// CounterVec is a counter family with labels; With interns per-tuple
// children at setup time so serving-path increments are handle-only.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: CounterVec %s needs at least one label (use Counter)", name))
	}
	return &CounterVec{f: r.register(name, help, counterKind, labels, nil)}
}

// With returns the interned counter for the given label values,
// creating it on first use. Call at setup time and keep the handle; the
// same tuple always returns the same counter, so values accumulate
// across component reloads.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: GaugeVec %s needs at least one label (use Gauge)", name))
	}
	return &GaugeVec{f: r.register(name, help, gaugeKind, labels, nil)}
}

// With returns the interned gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values).gauge
}

// HistogramVec is a histogram family with labels; every child shares
// the family's bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: HistogramVec %s needs at least one label (use Histogram)", name))
	}
	checkBuckets(buckets)
	return &HistogramVec{f: r.register(name, help, histogramKind, labels, buckets)}
}

// With returns the interned histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values).hist
}

// Handler returns the GET /metrics endpoint: Prometheus text format,
// after running the scrape hooks.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The scrape connection died mid-write; there is no one left
			// to report the failure to.
			return
		}
	})
}

// snapshotFamilies returns the families sorted by name and their
// children sorted by label-value tuple — the deterministic exposition
// order the golden test pins.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren returns the family's children ordered by label-value
// tuple.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	kids := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	f.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool {
		a, b := kids[i].labelValues, kids[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return kids
}

// checkMetricName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkMetricName(name string) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		b := name[i]
		ok := b == '_' || b == ':' ||
			(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') ||
			(i > 0 && b >= '0' && b <= '9')
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric name %s", name))
		}
	}
}

// checkLabelName enforces the label-name charset [a-zA-Z_][a-zA-Z0-9_]*
// and rejects the reserved names exposition itself emits.
func checkLabelName(metric, label string) {
	if label == "" {
		panic(fmt.Sprintf("telemetry: empty label name on metric %s", metric))
	}
	if label == "le" {
		panic(fmt.Sprintf("telemetry: label name %q on metric %s is reserved for histogram buckets", "le", metric))
	}
	if strings.HasPrefix(label, "__") {
		panic(fmt.Sprintf("telemetry: label name %s on metric %s is reserved (double underscore prefix)", label, metric))
	}
	for i := 0; i < len(label); i++ {
		b := label[i]
		ok := b == '_' ||
			(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') ||
			(i > 0 && b >= '0' && b <= '9')
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid label name %s on metric %s", label, metric))
		}
	}
}
