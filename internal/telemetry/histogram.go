package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency bucket ladder in seconds: wide
// enough to cover a ~400ns cache hit rendered into the lowest bucket
// and a multi-second LP solve in the highest, roughly ×2.5 per step.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets, lock-free: one
// atomic add on the bucket, one on the total count, and a CAS loop on
// the float sum. Bounds are upper-inclusive (`le`) and the +Inf bucket
// is implicit. Observation allocates nothing — the bucket search is a
// bounded linear scan over a slice that is immutable after construction
// (typical ladders have ≤ 20 steps, where linear beats binary and stays
// trivially allocation-free).
type Histogram struct {
	bounds  []float64 // ascending, finite; +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram returns a standalone histogram (not attached to any
// registry) with the given upper bucket bounds, which must be strictly
// ascending and finite; nil or empty bounds use DefBuckets. The bounds
// slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	checkBuckets(bounds)
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// checkBuckets panics unless bounds are strictly ascending and finite.
// nil is allowed (means DefBuckets).
func checkBuckets(bounds []float64) {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("telemetry: histogram bucket bound must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("telemetry: histogram bucket bounds must be strictly ascending")
		}
	}
}

// Observe records one value. NaN observations are dropped (a NaN sum
// would poison the exposition forever).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := len(h.bounds) // +Inf bucket unless a bound covers v
	//lint:hot
	for i := 0; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	//lint:ignore ctxflow bounded CAS retry between two atomic loads under finite contention; no request context reaches this path
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds — the standard unit for every
// latency histogram in this repo.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns per-bucket (non-cumulative) counts, the total count
// and the sum, reading each atomically. The counts are not a consistent
// cut across buckets — Prometheus scrapes tolerate that — but each
// value is itself coherent.
func (h *Histogram) snapshot() (buckets []uint64, count uint64, sum float64) {
	buckets = make([]uint64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	return buckets, h.count.Load(), h.Sum()
}
