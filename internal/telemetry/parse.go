// A strict parser for the Prometheus text exposition subset this
// package emits. The chaos lanes scrape a live /metrics mid-storm and
// round-trip the body through ParseText — a malformed escape, a
// non-cumulative bucket or a duplicate sample fails the storm test, so
// the exposition path is exercised under the same concurrency the
// counters are.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one sample line: a (possibly suffixed) sample name,
// its label set, and the value.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family from a text exposition: its HELP
// and TYPE headers plus every sample attributed to it (for histograms
// that includes the _bucket/_sum/_count series).
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// Sample returns the first sample with the given name whose labels are
// a superset of want, or nil.
func (f *ParsedFamily) Sample(name string, want map[string]string) *ParsedSample {
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s
		}
	}
	return nil
}

// ParseText parses a text exposition into families keyed by name,
// validating the invariants the renderer guarantees: HELP/TYPE headers
// precede samples, every sample belongs to a declared family, label
// syntax and escapes are well-formed, no duplicate (name, labels)
// sample appears, and histogram buckets are cumulative with a +Inf
// bucket equal to _count.
func ParseText(r io.Reader) (map[string]*ParsedFamily, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("telemetry: reading exposition: %w", err)
	}
	fams := make(map[string]*ParsedFamily)
	seen := make(map[string]bool) // duplicate-sample guard: name + sorted labels
	var cur *ParsedFamily
	for lineNo, line := range strings.Split(string(data), "\n") {
		n := lineNo + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name, rest, ok := cutName(line[len("# HELP "):])
			if !ok {
				return nil, fmt.Errorf("telemetry: line %d: malformed HELP", n)
			}
			if fams[name] != nil {
				return nil, fmt.Errorf("telemetry: line %d: duplicate HELP for %s", n, name)
			}
			cur = &ParsedFamily{Name: name, Help: rest}
			fams[name] = cur
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			name, typ, ok := cutName(line[len("# TYPE "):])
			if !ok {
				return nil, fmt.Errorf("telemetry: line %d: malformed TYPE", n)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("telemetry: line %d: unknown TYPE %q for %s", n, typ, name)
			}
			f := fams[name]
			if f == nil || f != cur {
				return nil, fmt.Errorf("telemetry: line %d: TYPE for %s without preceding HELP", n, name)
			}
			if f.Type != "" {
				return nil, fmt.Errorf("telemetry: line %d: duplicate TYPE for %s", n, name)
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", n, err)
		}
		f := familyFor(fams, s.Name)
		if f == nil {
			return nil, fmt.Errorf("telemetry: line %d: sample %s has no declared family", n, s.Name)
		}
		if f != cur {
			return nil, fmt.Errorf("telemetry: line %d: sample %s outside its family block", n, s.Name)
		}
		key := sampleKey(s)
		if seen[key] {
			return nil, fmt.Errorf("telemetry: line %d: duplicate sample %s", n, key)
		}
		seen[key] = true
		f.Samples = append(f.Samples, s)
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("telemetry: family %s has HELP but no TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := checkHistogramFamily(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// cutName splits "name rest..." at the first space.
func cutName(s string) (name, rest string, ok bool) {
	i := strings.IndexByte(s, ' ')
	if i <= 0 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// familyFor resolves a sample name to its family, stripping the
// histogram suffixes when the base name is a declared histogram.
func familyFor(fams map[string]*ParsedFamily, sample string) *ParsedFamily {
	if f := fams[sample]; f != nil {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suffix)
		if !ok {
			continue
		}
		if f := fams[base]; f != nil && f.Type == "histogram" {
			return f
		}
	}
	return nil
}

// sampleKey canonicalizes (name, labels) for duplicate detection.
func sampleKey(s ParsedSample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(s.Name)
	for _, k := range keys {
		sb.WriteString("|")
		sb.WriteString(k)
		sb.WriteString("=")
		sb.WriteString(s.Labels[k])
	}
	return sb.String()
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (ParsedSample, error) {
	var s ParsedSample
	nameEnd := 0
	for i := 0; i < len(line); i++ {
		if line[i] == '{' || line[i] == ' ' {
			break
		}
		nameEnd = i + 1
	}
	if nameEnd == 0 {
		return s, fmt.Errorf("sample line has no name: %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsRune(rest, ' ') {
		// A trailing timestamp would show up as a second field; this
		// renderer never emits one.
		return s, fmt.Errorf("sample %s: want exactly one value field, got %q", s.Name, rest)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("sample %s: %w", s.Name, err)
	}
	s.Value = v
	return s, nil
}

// parseValue accepts the exposition float forms including +Inf, -Inf
// and NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses a `{k="v",...}` block with escape handling,
// returning the remainder after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	//lint:ignore ctxflow i strictly advances through a finite in-memory string; no request context reaches the parser
	for i < len(s) && s[i] != '}' {
		eq := strings.IndexByte(s[i:], '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label block %q", s)
		}
		name := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %s: value is not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		//lint:ignore ctxflow i strictly advances through a finite in-memory string; no request context reaches the parser
		for i < len(s) {
			c := s[i]
			if c == '"' {
				closed = true
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: unknown escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, "", fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
	if i >= len(s) || s[i] != '}' {
		return nil, "", fmt.Errorf("unterminated label block %q", s)
	}
	return labels, s[i+1:], nil
}

// checkHistogramFamily verifies cumulative buckets: grouped by the
// non-le label set, bucket values must be non-decreasing in `le` order,
// end in a +Inf bucket, and agree with the _count sample.
func checkHistogramFamily(f *ParsedFamily) error {
	type group struct {
		bounds []float64
		counts []float64
		count  float64
		gotCnt bool
	}
	groups := make(map[string]*group)
	groupKey := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteString("=")
			sb.WriteString(labels[k])
			sb.WriteString("|")
		}
		return sb.String()
	}
	for _, s := range f.Samples {
		g := groups[groupKey(s.Labels)]
		if g == nil {
			g = &group{}
			groups[groupKey(s.Labels)] = g
		}
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("telemetry: histogram %s: bucket sample without le label", f.Name)
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("telemetry: histogram %s: bad le %q: %w", f.Name, le, err)
			}
			g.bounds = append(g.bounds, bound)
			g.counts = append(g.counts, s.Value)
		case f.Name + "_count":
			g.count, g.gotCnt = s.Value, true
		}
	}
	for _, g := range groups {
		if len(g.bounds) == 0 {
			return fmt.Errorf("telemetry: histogram %s: series with no buckets", f.Name)
		}
		if !math.IsInf(g.bounds[len(g.bounds)-1], 1) {
			return fmt.Errorf("telemetry: histogram %s: last bucket is not +Inf", f.Name)
		}
		for i := range g.bounds {
			if i == 0 {
				continue
			}
			if g.bounds[i] <= g.bounds[i-1] {
				return fmt.Errorf("telemetry: histogram %s: le bounds not ascending", f.Name)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("telemetry: histogram %s: buckets not cumulative", f.Name)
			}
		}
		if !g.gotCnt {
			return fmt.Errorf("telemetry: histogram %s: missing _count sample", f.Name)
		}
		//lint:ignore floatcmp bucket counts are rendered from uint64s; exact equality is the invariant under test
		if g.counts[len(g.counts)-1] != g.count {
			return fmt.Errorf("telemetry: histogram %s: +Inf bucket %v != _count %v", f.Name, g.counts[len(g.counts)-1], g.count)
		}
	}
	return nil
}
