// Request-scoped tracing: the server starts a Trace per query, threads
// it through context into qcache → core → reconstruct, and each layer
// records the stages it actually performed (cache.hit, cache.fill,
// core.prepare, reconstruct.maxent, ...). On completion the server
// folds the stages into per-stage latency histograms and, above the
// -slow-query threshold, emits one structured log line naming where the
// time went.
//
// Every method is nil-safe: a layer can call FromContext(ctx).Stage(...)
// unconditionally and pay one pointer test when tracing is off.
package telemetry

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceStage is one completed stage inside a traced request.
type TraceStage struct {
	// Name identifies the stage, dot-namespaced by layer:
	// "cache.hit", "cache.join", "cache.fill", "core.prepare",
	// "reconstruct.maxent", ...
	Name string
	// Dur is how long the stage took.
	Dur time.Duration
}

// Trace collects the stages of one request. Concurrent stage recording
// is safe (a batch fans one request across workers).
type Trace struct {
	start time.Time

	mu     sync.Mutex
	stages []TraceStage
}

// traceKey is the context key type for the request trace.
type traceKey struct{}

// StartTrace returns ctx carrying a fresh Trace whose clock starts now.
func StartTrace(ctx context.Context) (context.Context, *Trace) {
	tr := &Trace{start: time.Now()}
	return context.WithValue(ctx, traceKey{}, tr), tr
}

// FromContext returns the Trace carried by ctx, or nil. All Trace
// methods tolerate a nil receiver, so callers need not check.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// Stage records one completed stage. Nil-safe no-op.
func (t *Trace) Stage(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, TraceStage{Name: name, Dur: d})
	t.mu.Unlock()
}

// Stages returns a copy of the recorded stages in recording order.
// Nil-safe (returns nil).
func (t *Trace) Stages() []TraceStage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceStage(nil), t.stages...)
}

// Elapsed returns the wall clock since StartTrace. Nil-safe (zero).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Summary renders the stages as "name=dur name=dur ..." sorted by
// descending duration — the slow-query log's where-did-the-time-go
// field. Nil-safe (empty string).
func (t *Trace) Summary() string {
	stages := t.Stages()
	if len(stages) == 0 {
		return ""
	}
	sort.SliceStable(stages, func(i, j int) bool { return stages[i].Dur > stages[j].Dur })
	var sb strings.Builder
	for i, s := range stages {
		if i > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(s.Name)
		sb.WriteString("=")
		sb.WriteString(s.Dur.String())
	}
	return sb.String()
}
