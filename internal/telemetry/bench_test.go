package telemetry

import (
	"testing"
	"time"
)

// TestHotPathZeroAlloc is the allocation gate the ISSUE demands: a
// counter increment through an interned vec handle, a gauge set, and a
// histogram observation must not allocate. AllocsPerRun makes the gate
// a hard test failure, not just a benchmark number someone has to read.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("pv_hot_total", "hot", "release").With("default")
	g := r.Gauge("pv_hot_gauge", "hot")
	h := r.HistogramVec("pv_hot_seconds", "hot", DefBuckets, "route").With("/v1/marginal")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(4.5) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveDuration(3 * time.Millisecond) }); n != 0 {
		t.Fatalf("Histogram.ObserveDuration allocates %v per op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().CounterVec("pv_bench_total", "bench", "release").With("default")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().CounterVec("pv_bench_total", "bench", "release").With("default")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	vec := r.CounterVec("pv_bench_total", "bench", "release")
	for _, rel := range []string{"a", "b", "c", "d"} {
		vec.With(rel).Add(100)
	}
	h := r.HistogramVec("pv_bench_seconds", "bench", DefBuckets, "route")
	h.With("/v1/marginal").Observe(0.1)
	var sink []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = sink[:0]
		w := appendWriter{&sink}
		if err := r.WritePrometheus(w); err != nil {
			b.Fatal(err)
		}
	}
}

// appendWriter collects writes into a caller-owned buffer.
type appendWriter struct{ buf *[]byte }

func (w appendWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}
