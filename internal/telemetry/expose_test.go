package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact rendered text: HELP/TYPE headers,
// label escaping, cumulative histogram buckets with +Inf, _sum/_count,
// and deterministic ordering (families by name, children by label
// tuple). Any formatting drift shows up as a diff here before it shows
// up in a Prometheus scrape.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("priview_qcache_hits_total", "Cache lookups answered from a stored table.", "release")
	v.With("beta").Add(2)
	v.With("alpha").Add(9) // rendered before beta: children sort by label value
	r.Gauge("priview_admission_limit", "Current AIMD concurrency limit.").Set(16)
	r.Counter("priview_a_first_total", "Sorts first.").Add(1)
	esc := r.CounterVec("priview_escape_total", "Help with \\ backslash\nand newline.", "path")
	esc.With("a\\b\"c\nd").Inc()
	h := r.Histogram("priview_solve_seconds", "Solve latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(42)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP priview_a_first_total Sorts first.
# TYPE priview_a_first_total counter
priview_a_first_total 1
# HELP priview_admission_limit Current AIMD concurrency limit.
# TYPE priview_admission_limit gauge
priview_admission_limit 16
# HELP priview_escape_total Help with \\ backslash\nand newline.
# TYPE priview_escape_total counter
priview_escape_total{path="a\\b\"c\nd"} 1
# HELP priview_qcache_hits_total Cache lookups answered from a stored table.
# TYPE priview_qcache_hits_total counter
priview_qcache_hits_total{release="alpha"} 9
priview_qcache_hits_total{release="beta"} 2
# HELP priview_solve_seconds Solve latency.
# TYPE priview_solve_seconds histogram
priview_solve_seconds_bucket{le="0.01"} 1
priview_solve_seconds_bucket{le="0.1"} 3
priview_solve_seconds_bucket{le="1"} 3
priview_solve_seconds_bucket{le="+Inf"} 4
priview_solve_seconds_sum 42.105
priview_solve_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestParseRejects exercises the parser's strictness — these are the
// malformations the chaos-lane round-trip is promising to catch.
func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"sample without family": "orphan_total 1\n",
		"TYPE without HELP":     "# TYPE x counter\nx 1\n",
		"unknown TYPE":          "# HELP x h\n# TYPE x ring\nx 1\n",
		"duplicate sample":      "# HELP x h\n# TYPE x counter\nx 1\nx 2\n",
		"missing value":         "# HELP x h\n# TYPE x counter\nx\n",
		"bad escape":            "# HELP x h\n# TYPE x counter\nx{l=\"a\\q\"} 1\n",
		"unterminated label":    "# HELP x h\n# TYPE x counter\nx{l=\"a} 1\n",
		"non-cumulative buckets": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"no +Inf bucket": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
	}
	for name, in := range cases {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parser accepted malformed input:\n%s", name, in)
		}
	}
}

// TestParseAcceptsOwnOutput is the minimal contract: an empty registry
// and a NaN gauge still render to parseable text.
func TestParseAcceptsEdgeValues(t *testing.T) {
	r := NewRegistry()
	r.Gauge("pv_inf", "inf").Set(math.Inf(1))
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pv_inf +Inf\n") {
		t.Fatalf("infinity rendering: %q", sb.String())
	}
	if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("own output rejected: %v", err)
	}
}
