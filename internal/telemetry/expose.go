// Prometheus text exposition (format version 0.0.4): # HELP / # TYPE
// header per family, one sample line per child, histogram children
// rendered as cumulative _bucket series plus _sum and _count. Output
// order is deterministic — families by name, children by label-value
// tuple — so goldens and scrape diffs are stable.
package telemetry

import (
	"io"
	"strconv"
)

// WritePrometheus runs the scrape hooks and renders every family to w
// in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	b := make([]byte, 0, 4096)
	for _, f := range r.snapshotFamilies() {
		b = f.appendText(b)
	}
	_, err := w.Write(b)
	return err
}

// appendText renders one family: header then every child.
func (f *family) appendText(b []byte) []byte {
	b = append(b, "# HELP "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, f.help)
	b = append(b, '\n')
	b = append(b, "# TYPE "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, f.kind.String()...)
	b = append(b, '\n')
	for _, c := range f.sortedChildren() {
		switch f.kind {
		case counterKind:
			b = appendSampleName(b, f.name, f.labels, c.labelValues, "")
			b = append(b, ' ')
			b = strconv.AppendUint(b, c.counter.Value(), 10)
			b = append(b, '\n')
		case gaugeKind:
			b = appendSampleName(b, f.name, f.labels, c.labelValues, "")
			b = append(b, ' ')
			b = appendFloat(b, c.gauge.Value())
			b = append(b, '\n')
		case histogramKind:
			b = c.hist.appendText(b, f.name, f.labels, c.labelValues)
		}
	}
	return b
}

// appendText renders one histogram child: cumulative buckets with the
// `le` label appended after the family labels, then _sum and _count.
func (h *Histogram) appendText(b []byte, name string, labels, values []string) []byte {
	buckets, count, sum := h.snapshot()
	var cum uint64
	for i, n := range buckets {
		cum += n
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		b = append(b, name...)
		b = append(b, "_bucket"...)
		b = appendLabels(b, labels, values, "le", le)
		b = append(b, ' ')
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = appendSampleName(b, name, labels, values, "_sum")
	b = append(b, ' ')
	b = appendFloat(b, sum)
	b = append(b, '\n')
	b = appendSampleName(b, name, labels, values, "_count")
	b = append(b, ' ')
	b = strconv.AppendUint(b, count, 10)
	b = append(b, '\n')
	return b
}

// appendSampleName renders name+suffix plus the label block (if any).
func appendSampleName(b []byte, name string, labels, values []string, suffix string) []byte {
	b = append(b, name...)
	b = append(b, suffix...)
	return appendLabels(b, labels, values, "", "")
}

// appendLabels renders {k="v",...}, appending the extra pair (used for
// histogram `le`) last; with no labels and no extra it renders nothing.
func appendLabels(b []byte, labels, values []string, extraKey, extraVal string) []byte {
	if len(labels) == 0 && extraKey == "" {
		return b
	}
	b = append(b, '{')
	for i, l := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l...)
		b = append(b, '=', '"')
		b = appendEscapedLabelValue(b, values[i])
		b = append(b, '"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b = append(b, ',')
		}
		b = append(b, extraKey...)
		b = append(b, '=', '"')
		b = appendEscapedLabelValue(b, extraVal)
		b = append(b, '"')
	}
	return append(b, '}')
}

// appendEscapedLabelValue escapes backslash, double quote and newline
// per the exposition format.
func appendEscapedLabelValue(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendEscapedHelp escapes backslash and newline (quotes are legal in
// HELP text).
func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendFloat renders a float sample value; +Inf/-Inf spell the
// exposition forms.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
