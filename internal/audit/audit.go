// Package audit checks a published PriView synopsis against the
// paper's release invariants: every stored value is finite, views are
// mutually consistent on shared attribute sets (§4.4), per-view totals
// agree with the published total, and negative cells stay within the
// Ripple tolerance. The checker is a pure post-condition pass — it
// never modifies the synopsis — and returns a structured report rather
// than a bare error so callers can distinguish "release is broken"
// from "release is noisy but usable".
//
// Build runs it to catch post-processing bugs at the source; Load and
// the snapshot store run it so a synopsis that was valid when written
// but rotted on disk (or was corrupted in transit) is refused before it
// serves a single query.
package audit

import (
	"fmt"
	"math"
	"strings"

	"priview/internal/consistency"
	"priview/internal/covering"
	"priview/internal/marginal"
)

// Severity grades a finding. Only Error findings make a report fail:
// Warning covers expected statistical artifacts (e.g. mildly negative
// cells from the final consistency pass), Info is observational.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalText renders the severity as its lower-case name in JSON
// reports.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Finding is one invariant violation (or observation).
type Finding struct {
	Severity Severity `json:"severity"`
	// Invariant names the checked property: "finiteness", "structure",
	// "non-negativity", "consistency" or "total".
	Invariant string `json:"invariant"`
	// View is the index of the offending view, or -1 for synopsis-level
	// findings (for "consistency" it is the first view of the pair).
	View int `json:"view"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
	// Value is the offending quantity (the negative cell, the
	// consistency gap, …); NaN when not applicable.
	Value float64 `json:"value"`
}

// Report is the result of an audit pass.
type Report struct {
	Views    int       `json:"views"`
	Pairs    int       `json:"pairs_checked"`
	Findings []Finding `json:"findings"`
}

// OK reports whether the synopsis passed: no Error-severity findings.
func (r *Report) OK() bool {
	for _, f := range r.Findings {
		if f.Severity >= Error {
			return false
		}
	}
	return true
}

// Err returns nil when the report is OK, otherwise an error summarizing
// the first Error finding and the total count.
func (r *Report) Err() error {
	n, first := 0, ""
	for _, f := range r.Findings {
		if f.Severity >= Error {
			if n == 0 {
				first = f.Detail
			}
			n++
		}
	}
	if n == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d invariant violation(s); first: %s", n, first)
}

// String renders the report for terminals: a one-line verdict followed
// by the findings, most severe first.
func (r *Report) String() string {
	var b strings.Builder
	if r.OK() {
		fmt.Fprintf(&b, "audit: OK (%d views, %d pairs checked", r.Views, r.Pairs)
		if len(r.Findings) > 0 {
			fmt.Fprintf(&b, ", %d note(s)", len(r.Findings))
		}
		b.WriteString(")\n")
	} else {
		fmt.Fprintf(&b, "audit: FAILED (%d views, %d finding(s))\n", r.Views, len(r.Findings))
	}
	for sev := Error; sev >= Info; sev-- {
		for _, f := range r.Findings {
			if f.Severity != sev {
				continue
			}
			fmt.Fprintf(&b, "  [%s] %s: %s\n", f.Severity, f.Invariant, f.Detail)
		}
	}
	return b.String()
}

func (r *Report) add(sev Severity, invariant string, view int, value float64, format string, args ...interface{}) {
	r.Findings = append(r.Findings, Finding{
		Severity: sev, Invariant: invariant, View: view,
		Detail: fmt.Sprintf(format, args...), Value: value,
	})
}

// Synopsis is the read surface the auditor needs; *core.Synopsis
// implements it.
type Synopsis interface {
	Views() []*marginal.Table
	Total() float64
	Epsilon() float64
	Design() *covering.Design
}

// Options tunes the audit tolerances. The zero value selects defaults
// calibrated to the release pipeline: the final mutual-consistency pass
// is exact up to float rounding, so the consistency and total
// tolerances are tight (1e-6 relative), while the non-negativity
// thresholds are loose — that pass can lawfully push cells below the
// Ripple tolerance θ again, which is statistical noise, not damage.
type Options struct {
	// NonnegWarn is the (positive) magnitude beyond which a negative
	// cell is worth a Warning. Default: consistency.DefaultRippleTheta.
	NonnegWarn float64
	// NonnegErr is the magnitude at which a negative cell becomes an
	// Error — far outside anything post-processing produces. The
	// default scales with the per-cell Laplace noise b = w/ε (the
	// consistency passes can lawfully leave cells several noise scales
	// negative): max(0.1·|total|, 20·w/ε, 10).
	NonnegErr float64
	// ConsistencyTol bounds the max-abs gap between two views projected
	// onto a shared attribute set. Default: 1e-6·max(|total|, 1).
	ConsistencyTol float64
	// TotalTol bounds the spread of per-view totals around their mean
	// and the gap to the published total. Default: 1e-6·max(|total|, 1).
	TotalTol float64
}

func (o Options) withDefaults(total, eps float64, w int) Options {
	ref := math.Max(math.Abs(total), 1)
	if o.NonnegWarn <= 0 {
		o.NonnegWarn = consistency.DefaultRippleTheta
	}
	if o.NonnegErr <= 0 {
		o.NonnegErr = math.Max(0.1*math.Abs(total), 10)
		if eps > 0 {
			noiseScale := float64(w) / eps
			o.NonnegErr = math.Max(o.NonnegErr, 20*noiseScale)
		}
	}
	if o.ConsistencyTol <= 0 {
		o.ConsistencyTol = 1e-6 * ref
	}
	if o.TotalTol <= 0 {
		o.TotalTol = 1e-6 * ref
	}
	return o
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Check audits the synopsis against the release invariants and returns
// the structured report. It never panics and never modifies s.
func Check(s Synopsis, opt Options) *Report {
	views := s.Views()
	total := s.Total()
	opt = opt.withDefaults(total, s.Epsilon(), len(views))
	r := &Report{Views: len(views)}

	if len(views) == 0 {
		r.add(Error, "structure", -1, math.NaN(), "synopsis has no views")
		return r
	}
	if !finite(total) {
		r.add(Error, "finiteness", -1, total, "published total is %v", total)
	}
	if eps := s.Epsilon(); !finite(eps) || eps < 0 {
		r.add(Error, "finiteness", -1, eps, "epsilon is %v", eps)
	}

	// Per-view structure, finiteness and non-negativity. A view with a
	// non-finite cell is excluded from the cross-view checks below —
	// its projections would poison every comparison.
	usable := make([]bool, len(views))
	for i, v := range views {
		if v == nil {
			r.add(Error, "structure", i, math.NaN(), "view %d is nil", i)
			continue
		}
		if want := 1 << uint(len(v.Attrs)); len(v.Cells) != want {
			r.add(Error, "structure", i, float64(len(v.Cells)),
				"view %d (attrs %v) has %d cells, want %d", i, v.Attrs, len(v.Cells), want)
			continue
		}
		usable[i] = true
		worstNeg := 0.0
		for j, c := range v.Cells {
			if !finite(c) {
				r.add(Error, "finiteness", i, c, "view %d (attrs %v) cell %d is %v", i, v.Attrs, j, c)
				usable[i] = false
				break
			}
			if c < worstNeg {
				worstNeg = c
			}
		}
		if !usable[i] {
			continue
		}
		switch {
		case worstNeg < -opt.NonnegErr:
			r.add(Error, "non-negativity", i, worstNeg,
				"view %d (attrs %v) has cell %v, far below -%v", i, v.Attrs, worstNeg, opt.NonnegErr)
		case worstNeg < -opt.NonnegWarn:
			r.add(Warning, "non-negativity", i, worstNeg,
				"view %d (attrs %v) has cell %v below the Ripple tolerance -%v", i, v.Attrs, worstNeg, opt.NonnegWarn)
		}
	}

	// Total preservation: the per-view totals must agree with each
	// other; the published total must match their mean, except in the
	// clamp case where a negative mean is published as 0.
	var sum float64
	n := 0
	for i, v := range views {
		if usable[i] {
			sum += v.Total()
			n++
		}
	}
	if n > 0 {
		mean := sum / float64(n)
		for i, v := range views {
			if !usable[i] {
				continue
			}
			if gap := math.Abs(v.Total() - mean); gap > opt.TotalTol {
				r.add(Error, "total", i, gap,
					"view %d total %v deviates from mean %v by %v (tol %v)", i, v.Total(), mean, gap, opt.TotalTol)
			}
		}
		clamped := total >= 0 && total <= opt.TotalTol && mean < 0
		if gap := math.Abs(total - mean); gap > opt.TotalTol && !clamped {
			r.add(Error, "total", -1, gap,
				"published total %v deviates from view mean %v by %v (tol %v)", total, mean, gap, opt.TotalTol)
		} else if clamped {
			r.add(Info, "total", -1, mean, "published total clamped to 0 from negative view mean %v", mean)
		}
	}

	// Mutual consistency (§4.4): every pair of views sharing attributes
	// must agree on the shared marginal.
	for i := 0; i < len(views); i++ {
		if !usable[i] {
			continue
		}
		for j := i + 1; j < len(views); j++ {
			if !usable[j] {
				continue
			}
			sharedMask := views[i].Mask().Intersect(views[j].Mask())
			if sharedMask.Empty() {
				continue
			}
			shared := sharedMask.Attrs()
			r.Pairs++
			gap := marginal.MaxAbsDiff(views[i].Project(shared), views[j].Project(shared))
			if gap > opt.ConsistencyTol {
				r.add(Error, "consistency", i, gap,
					"views %d and %d disagree on shared attrs %v by %v (tol %v)", i, j, shared, gap, opt.ConsistencyTol)
			}
		}
	}

	if dg := s.Design(); dg != nil && dg.W() != len(views) {
		r.add(Info, "structure", -1, float64(len(views)),
			"design declares %d views, synopsis has %d (merged or pruned release)", dg.W(), len(views))
	}
	return r
}
