package audit_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"priview/internal/audit"
	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
)

type fakeSyn struct {
	views  []*marginal.Table
	total  float64
	eps    float64
	design *covering.Design
}

func (f *fakeSyn) Views() []*marginal.Table { return f.views }
func (f *fakeSyn) Total() float64           { return f.total }
func (f *fakeSyn) Epsilon() float64         { return f.eps }
func (f *fakeSyn) Design() *covering.Design { return f.design }

func table(attrs []int, cells ...float64) *marginal.Table {
	t := marginal.New(attrs)
	copy(t.Cells, cells)
	return t
}

func buildReal(t *testing.T, seed int64, eps float64) *core.Synopsis {
	t.Helper()
	data := synth.MSNBC(3000, seed)
	dg := covering.Groups(9, 4)
	return core.BuildSynopsis(data, core.Config{Epsilon: eps, Design: dg}, noise.NewStream(seed))
}

func TestCleanSynopsisPasses(t *testing.T) {
	for _, eps := range []float64{0.1, 1, 10} {
		s := buildReal(t, 5, eps)
		r := audit.Check(s, audit.Options{})
		if !r.OK() {
			t.Errorf("eps=%v: clean synopsis failed audit:\n%s", eps, r)
		}
		if err := r.Err(); err != nil {
			t.Errorf("eps=%v: Err() = %v", eps, err)
		}
		if r.Pairs == 0 {
			t.Errorf("eps=%v: no view pairs checked", eps)
		}
	}
}

func TestPoisonedCellFails(t *testing.T) {
	s := buildReal(t, 6, 1)
	s.Views()[0].Cells[3] = math.NaN()
	r := audit.Check(s, audit.Options{})
	if r.OK() {
		t.Fatalf("poisoned synopsis passed audit:\n%s", r)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("Err() = %v", err)
	}
	found := false
	for _, f := range r.Findings {
		if f.Invariant == "finiteness" && f.Severity == audit.Error && f.View == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no finiteness finding for view 0:\n%s", r)
	}
}

func TestInconsistentViewsFail(t *testing.T) {
	// Two views sharing attribute 1 but disagreeing on its marginal:
	// view A says attr1 splits 30/10, view B says 20/20.
	s := &fakeSyn{
		views: []*marginal.Table{
			table([]int{0, 1}, 15, 15, 5, 5),
			table([]int{1, 2}, 10, 10, 10, 10),
		},
		total: 40, eps: 1,
	}
	r := audit.Check(s, audit.Options{})
	if r.OK() {
		t.Fatalf("inconsistent views passed audit:\n%s", r)
	}
	found := false
	for _, f := range r.Findings {
		if f.Invariant == "consistency" && f.Severity == audit.Error {
			found = true
		}
	}
	if !found {
		t.Fatalf("no consistency finding:\n%s", r)
	}
}

func TestTotalMismatchFails(t *testing.T) {
	s := &fakeSyn{
		views: []*marginal.Table{table([]int{0}, 10, 10)},
		total: 95, eps: 1, // views say 20
	}
	r := audit.Check(s, audit.Options{})
	if r.OK() {
		t.Fatalf("total mismatch passed audit:\n%s", r)
	}
}

func TestNegativeCellSeverity(t *testing.T) {
	// Mildly negative (beyond θ but far from the error threshold):
	// Warning only, audit still passes.
	mild := &fakeSyn{
		views: []*marginal.Table{table([]int{0}, 42, -2)},
		total: 40, eps: 1,
	}
	r := audit.Check(mild, audit.Options{})
	if !r.OK() {
		t.Fatalf("mildly negative cell failed audit:\n%s", r)
	}
	warned := false
	for _, f := range r.Findings {
		if f.Invariant == "non-negativity" && f.Severity == audit.Warning {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no non-negativity warning:\n%s", r)
	}

	// Catastrophically negative: Error.
	bad := &fakeSyn{
		views: []*marginal.Table{table([]int{0}, 140, -100)},
		total: 40, eps: 1,
	}
	if r := audit.Check(bad, audit.Options{}); r.OK() {
		t.Fatalf("catastrophically negative cell passed audit:\n%s", r)
	}
}

func TestClampedTotalAllowed(t *testing.T) {
	// Heavy noise at tiny ε can drive the view totals negative; the
	// release publishes total 0. That is the documented clamp case and
	// must not fail the audit.
	s := &fakeSyn{
		views: []*marginal.Table{table([]int{0}, -3, -2)},
		total: 0, eps: 1,
	}
	r := audit.Check(s, audit.Options{NonnegErr: 1000})
	for _, f := range r.Findings {
		if f.Invariant == "total" && f.Severity == audit.Error {
			t.Fatalf("clamped total flagged as error:\n%s", r)
		}
	}
}

func TestEmptyAndNilViews(t *testing.T) {
	if r := audit.Check(&fakeSyn{total: 1, eps: 1}, audit.Options{}); r.OK() {
		t.Fatal("empty synopsis passed audit")
	}
	s := &fakeSyn{views: []*marginal.Table{nil}, total: 1, eps: 1}
	if r := audit.Check(s, audit.Options{}); r.OK() {
		t.Fatal("nil view passed audit")
	}
}

// FuzzAuditReport feeds arbitrary bytes through core.Load and, when a
// synopsis comes out, audits it. Neither step may panic, and the
// report must always render.
func FuzzAuditReport(f *testing.F) {
	var buf bytes.Buffer
	if err := buildReal(&testing.T{}, 3, 1).Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"format":"priview-synopsis-v1","epsilon":1,"total":4,"views":[{"attrs":[0,1],"cells":[1,1,1,1]}]}`))
	f.Add([]byte(`{"format":"priview-synopsis-v1"}`))
	f.Add([]byte("not json"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := core.Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		r := audit.Check(s, audit.Options{})
		if r == nil {
			t.Fatal("nil report")
		}
		_ = r.String()
		_ = r.OK()
		_ = r.Err()
	})
}
