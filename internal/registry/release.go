package registry

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"priview/internal/admission"
	"priview/internal/core"
	"priview/internal/marginal"
	"priview/internal/qcache"
	"priview/internal/reconstruct"
	"priview/internal/server"
	"priview/internal/snapshot"
	"priview/internal/telemetry"
)

// breakerState is the per-release circuit breaker FSM.
type breakerState int

const (
	// stateClosed: loads proceed normally (with exponential backoff
	// between consecutive failures below the trip threshold).
	stateClosed breakerState = iota
	// stateOpen: every acquire fast-fails with 503 + Retry-After until
	// the cooldown elapses; the shared load semaphore is never touched.
	stateOpen
	// stateHalfOpen: exactly one acquirer becomes the probe and runs a
	// real load; everyone else still fast-fails. Success closes the
	// breaker, failure re-opens it for another full cooldown.
	stateHalfOpen
)

// maxHandoffKeys caps how many hot cache keys survive an eviction for
// warm handoff — enough to restore a working set, bounded so a huge
// cache cannot turn re-admission into an unbounded replay.
const maxHandoffKeys = 1024

// release is one tenant's complete serving state. All isolation state
// is local to this struct: nothing a release does here can reach a
// sibling except through the two deliberately shared, bounded
// resources (the registry's load semaphore and cache byte budget).
type release struct {
	reg      *Registry
	name     string
	store    *snapshot.Store
	inflight chan struct{}          // bulkhead permits (weight-scaled); nil = unbounded
	bucket   *admission.TokenBucket // per-tenant rate limit; nil = disabled
	weight   float64                // fairness weight scaling bucket and bulkhead

	// loadedFlag and lastTouch shadow mu-guarded state for the
	// registry's lock-free LRU scan.
	loadedFlag atomic.Bool
	lastTouch  atomic.Int64

	mu         sync.Mutex
	loaded     bool
	retired    bool
	swap       *server.Swappable // nil until first successful load
	cache      *qcache.Cache     // nil when caching disabled or evicted
	loadedPath string            // snapshot file currently served
	loading    chan struct{}     // non-nil while a load is in flight (singleflight)
	warmMasks  []qcache.Key      // hot keys saved at eviction, replayed on re-admit

	state        breakerState
	consecFails  int
	openedUntil  time.Time     // stateOpen: when the cooldown ends
	probing      bool          // stateHalfOpen: a probe holds the slot
	backoff      time.Duration // current inter-failure backoff
	backoffUntil time.Time
	lastErr      string

	c counters
}

// counters are the per-release observability counters; lock-free
// telemetry handles so the stats path never contends with the serving
// path. Standalone by default; when the registry carries a Metrics
// surface they are the release-labeled registry series instead, so the
// JSON stats and /metrics read one set of numbers.
type counters struct {
	LoadAttempts   *telemetry.Counter
	LoadFailures   *telemetry.Counter
	Reloads        *telemetry.Counter
	ReloadFailures *telemetry.Counter
	Trips          *telemetry.Counter
	BreakerRejects *telemetry.Counter
	BackoffRejects *telemetry.Counter
	HalfOpenProbes *telemetry.Counter
	Shed           *telemetry.Counter
	RateLimited    *telemetry.Counter
	Evictions      *telemetry.Counter
	Readmits       *telemetry.Counter
}

// releaseFamilies is the registry's per-release counter family set,
// registered once per telemetry registry; each release interns its own
// children by name at registration time.
type releaseFamilies struct {
	loadAttempts   *telemetry.CounterVec
	loadFailures   *telemetry.CounterVec
	reloads        *telemetry.CounterVec
	reloadFailures *telemetry.CounterVec
	trips          *telemetry.CounterVec
	breakerRejects *telemetry.CounterVec
	backoffRejects *telemetry.CounterVec
	halfOpenProbes *telemetry.CounterVec
	shed           *telemetry.CounterVec
	rateLimited    *telemetry.CounterVec
	evictions      *telemetry.CounterVec
	readmits       *telemetry.CounterVec
}

func newReleaseFamilies(reg *telemetry.Registry) *releaseFamilies {
	return &releaseFamilies{
		loadAttempts:   reg.CounterVec("priview_release_load_attempts_total", "Release load attempts (first admission and breaker probes).", "release"),
		loadFailures:   reg.CounterVec("priview_release_load_failures_total", "Release loads that failed checksum, audit or I/O.", "release"),
		reloads:        reg.CounterVec("priview_release_reloads_total", "Successful hot reloads through keep-last-good.", "release"),
		reloadFailures: reg.CounterVec("priview_release_reload_failures_total", "Hot reloads that failed and kept the last good synopsis.", "release"),
		trips:          reg.CounterVec("priview_release_breaker_trips_total", "Circuit-breaker openings.", "release"),
		breakerRejects: reg.CounterVec("priview_release_breaker_rejects_total", "Acquires fast-failed by an open or probing breaker.", "release"),
		backoffRejects: reg.CounterVec("priview_release_backoff_rejects_total", "Acquires fast-failed during inter-failure load backoff.", "release"),
		halfOpenProbes: reg.CounterVec("priview_release_half_open_probes_total", "Half-open breaker probes admitted.", "release"),
		shed:           reg.CounterVec("priview_release_shed_total", "Acquires shed by the release's own bulkhead.", "release"),
		rateLimited:    reg.CounterVec("priview_release_rate_limited_total", "Acquires refused by the tenant token bucket.", "release"),
		evictions:      reg.CounterVec("priview_release_evictions_total", "Residency-bound evictions of the release's synopsis.", "release"),
		readmits:       reg.CounterVec("priview_release_readmits_total", "Re-admissions of a previously evicted release.", "release"),
	}
}

// interned returns the release's counter set as children of the
// registry families, cumulative across reloads and evictions.
func (f *releaseFamilies) interned(name string) counters {
	return counters{
		LoadAttempts:   f.loadAttempts.With(name),
		LoadFailures:   f.loadFailures.With(name),
		Reloads:        f.reloads.With(name),
		ReloadFailures: f.reloadFailures.With(name),
		Trips:          f.trips.With(name),
		BreakerRejects: f.breakerRejects.With(name),
		BackoffRejects: f.backoffRejects.With(name),
		HalfOpenProbes: f.halfOpenProbes.With(name),
		Shed:           f.shed.With(name),
		RateLimited:    f.rateLimited.With(name),
		Evictions:      f.evictions.With(name),
		Readmits:       f.readmits.With(name),
	}
}

// standaloneCounters is the no-telemetry fallback counter set.
func standaloneCounters() counters {
	return counters{
		LoadAttempts:   telemetry.NewCounter(),
		LoadFailures:   telemetry.NewCounter(),
		Reloads:        telemetry.NewCounter(),
		ReloadFailures: telemetry.NewCounter(),
		Trips:          telemetry.NewCounter(),
		BreakerRejects: telemetry.NewCounter(),
		BackoffRejects: telemetry.NewCounter(),
		HalfOpenProbes: telemetry.NewCounter(),
		Shed:           telemetry.NewCounter(),
		RateLimited:    telemetry.NewCounter(),
		Evictions:      telemetry.NewCounter(),
		Readmits:       telemetry.NewCounter(),
	}
}

func newRelease(reg *Registry, name string, st *snapshot.Store) *release {
	rl := &release{reg: reg, name: name, store: st, weight: reg.opt.weightFor(name)}
	if reg.fams != nil {
		rl.c = reg.fams.interned(name)
		// Registered once per release name: the hook follows the current
		// cache through rl, and a retired-then-readded name's stale hook
		// goes quiet (cache nil → ok false) rather than double-counting.
		reg.opt.Metrics.WatchCacheGauges(name, rl.cacheStats)
	} else {
		rl.c = standaloneCounters()
	}
	if reg.opt.MaxInflight > 0 {
		// Weighted bulkhead carve: a heavier tenant may hold more
		// concurrent queries, but every tenant keeps at least one permit
		// so a tiny weight cannot starve a release outright.
		n := int(float64(reg.opt.MaxInflight) * rl.weight)
		if n < 1 {
			n = 1
		}
		rl.inflight = make(chan struct{}, n)
	}
	if reg.opt.TenantRPS > 0 {
		rl.bucket = admission.NewTokenBucket(reg.opt.TenantRPS*rl.weight, reg.opt.TenantBurst*rl.weight, reg.opt.Now)
	}
	return rl
}

// lease pins one admitted query to the querier that was current at
// acquire time: a reload or eviction mid-query cannot change the
// answer underneath the caller. The embedded Querier is that pinned
// querier; Close returns the bulkhead permit exactly once.
type lease struct {
	server.Querier
	rl     *release
	closed atomic.Bool
}

func (l *lease) Close() {
	if l.closed.CompareAndSwap(false, true) && l.rl.inflight != nil {
		<-l.rl.inflight
	}
}

// QueryCached forwards the brownout cache-only lookup to the pinned
// querier. The forward must be explicit: the embedded Querier is an
// interface value, so optional interfaces like server.CacheOnlyQuerier
// do not surface through it via type assertion on the lease.
func (l *lease) QueryCached(attrs []int, method core.ReconstructMethod) (*marginal.Table, bool) {
	if cq, ok := l.Querier.(server.CacheOnlyQuerier); ok {
		return cq.QueryCached(attrs, method)
	}
	return nil, false
}

// QueryBatch forwards the batched query surface to the pinned querier
// (explicitly, for the same reason as QueryCached), falling back to the
// sequential loop for queriers that cannot batch. The whole batch runs
// under this lease's one bulkhead permit — a batch is one admitted
// request, its internal parallelism bounded by the server's
// BatchWorkers, not by the tenant's permit count.
func (l *lease) QueryBatch(ctx context.Context, reqs []core.BatchRequest, opt core.BatchOptions) ([]core.BatchResult, error) {
	if bq, ok := l.Querier.(server.BatchQuerier); ok {
		return bq.QueryBatch(ctx, reqs, opt)
	}
	return server.QueryBatchSequential(ctx, l.Querier, reqs)
}

// DefaultMethod forwards the configured default estimator; CME when the
// pinned querier exposes none.
func (l *lease) DefaultMethod() core.ReconstructMethod {
	if dm, ok := l.Querier.(server.DefaultMethoder); ok {
		return dm.DefaultMethod()
	}
	return core.CME
}

// acquire runs the tenant's admission ladder — rate limit, then
// bulkhead, then resolution — and hands back a lease pinned to the
// querier current at acquire time. The bucket is consulted first so a
// tenant over its rate cannot even contend for bulkhead permits.
func (rl *release) acquire(ctx context.Context) (server.Lease, error) {
	if rl.bucket != nil && !rl.bucket.Allow() {
		rl.c.RateLimited.Add(1)
		ra := rl.bucket.NextIn()
		if ra <= 0 {
			ra = rl.reg.opt.RetryAfter
		}
		return nil, &server.RateLimitedError{RetryAfter: ra}
	}
	if rl.inflight != nil {
		select {
		case rl.inflight <- struct{}{}:
		default:
			rl.c.Shed.Add(1)
			return nil, &server.SaturatedError{RetryAfter: rl.reg.opt.RetryAfter}
		}
	}
	q, err := rl.ensure(ctx)
	if err != nil {
		if rl.inflight != nil {
			<-rl.inflight
		}
		return nil, err
	}
	return &lease{Querier: q, rl: rl}, nil
}

// ensure returns the release's current querier, driving the breaker
// FSM and the singleflight load. The loop re-evaluates after every
// wait; ctx is checked at the top of each pass.
func (rl *release) ensure(ctx context.Context) (server.Querier, error) {
	for {
		if err := reconstruct.ContextErr(ctx); err != nil {
			return nil, err
		}
		rl.mu.Lock()
		if rl.retired {
			rl.mu.Unlock()
			return nil, server.ErrUnknownRelease
		}
		if rl.loaded {
			q := rl.swap.Current()
			rl.mu.Unlock()
			rl.lastTouch.Store(rl.reg.nextTouch())
			return q, nil
		}
		now := rl.reg.opt.Now()
		if rl.state == stateOpen {
			if now.Before(rl.openedUntil) {
				remaining := rl.openedUntil.Sub(now)
				reason := "circuit breaker open"
				if rl.lastErr != "" {
					reason += ": " + rl.lastErr
				}
				rl.c.BreakerRejects.Add(1)
				rl.mu.Unlock()
				return nil, &server.UnavailableError{Reason: reason, RetryAfter: remaining}
			}
			rl.state = stateHalfOpen
		}
		switch {
		case rl.state == stateHalfOpen:
			if rl.probing || rl.loading != nil {
				rl.c.BreakerRejects.Add(1)
				rl.mu.Unlock()
				return nil, &server.UnavailableError{
					Reason:     "circuit breaker half-open, probe in flight",
					RetryAfter: rl.reg.opt.RetryAfter,
				}
			}
			rl.probing = true
			rl.c.HalfOpenProbes.Add(1)
		case rl.loading != nil:
			// Someone else is loading; wait for their verdict, then
			// re-evaluate from scratch.
			ch := rl.loading
			rl.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				return nil, reconstruct.ContextErr(ctx)
			}
		case now.Before(rl.backoffUntil):
			remaining := rl.backoffUntil.Sub(now)
			reason := "load backoff"
			if rl.lastErr != "" {
				reason += ": " + rl.lastErr
			}
			rl.c.BackoffRejects.Add(1)
			rl.mu.Unlock()
			return nil, &server.UnavailableError{Reason: reason, RetryAfter: remaining}
		}
		ch := make(chan struct{})
		rl.loading = ch
		rl.mu.Unlock()
		return rl.lead(ctx, ch)
	}
}

// lead runs the singleflight load as its leader: shared-semaphore
// admission, the loader, the audit gate, then publish-or-strike.
func (rl *release) lead(ctx context.Context, ch chan struct{}) (server.Querier, error) {
	reg := rl.reg
	rl.c.LoadAttempts.Add(1)
	var res *snapshot.LoadResult
	var err error
	// Breaker-open tenants return before this point, so a broken
	// tenant in fast-fail never occupies a shared load slot.
	select {
	case reg.loadSem <- struct{}{}:
		res, err = reg.opt.Loader.Load(ctx, rl.name, rl.store)
		<-reg.loadSem
	case <-ctx.Done():
		err = reconstruct.ContextErr(ctx)
	}
	if err == nil {
		for i, q := range res.Quarantined {
			reg.opt.Logger.Printf("registry: %s: quarantined corrupt snapshot %s: %v", rl.name, q, res.Errs[i])
		}
		err = auditGate(res)
	}
	if err == nil {
		return rl.publish(res), nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, reconstruct.ErrCanceled) {
		// The client went away mid-load — not the tenant's fault, so no
		// strike. Just release the singleflight so the next caller
		// leads (a half-open probe slot is returned too).
		rl.mu.Lock()
		rl.probing = false
		rl.loading = nil
		rl.mu.Unlock()
		close(ch)
		return nil, err
	}
	return nil, rl.strike(ch, err)
}

// publish installs a freshly loaded synopsis as the serving state:
// fresh cache (keys carry no synopsis identity, so caches never
// survive a data change), breaker closed, residency enforced, warm
// handoff scheduled.
func (rl *release) publish(res *snapshot.LoadResult) server.Querier {
	reg := rl.reg
	var cache *qcache.Cache
	var q server.Querier = res.Synopsis
	if reg.opt.CacheEntries > 0 {
		cache = qcache.NewShared(reg.opt.CacheEntries, reg.opt.perReleaseBytes(), reg.budget)
		cq := server.NewCachedQuerier(res.Synopsis, cache)
		if reg.opt.Metrics != nil {
			// Each publish builds a fresh cache; swapping it onto the
			// release's interned handles keeps the exported series
			// cumulative over the release's lifetime.
			reg.opt.Metrics.InstrumentCache(rl.name, cq)
		}
		q = cq
	}
	rl.mu.Lock()
	if rl.swap == nil {
		rl.swap = server.NewSwappable(q)
	} else {
		rl.swap.Swap(q)
	}
	readmitted := rl.warmMasks != nil
	handoff := rl.warmMasks
	rl.warmMasks = nil
	rl.cache = cache
	rl.loaded = true
	rl.loadedPath = res.Path
	rl.state = stateClosed
	rl.consecFails = 0
	rl.probing = false
	rl.backoff = 0
	rl.backoffUntil = time.Time{}
	rl.lastErr = ""
	ch := rl.loading
	rl.loading = nil
	rl.mu.Unlock()
	rl.loadedFlag.Store(true)
	rl.lastTouch.Store(reg.nextTouch())
	if readmitted {
		rl.c.Readmits.Add(1)
	}
	close(ch)
	reg.noteLoaded(rl)
	rl.warmAsync(q, handoff)
	return q
}

// strike records a load failure: backoff doubles, and at the
// threshold (or on any half-open probe failure) the breaker opens for
// a full cooldown. The returned error carries the Retry-After the
// caller should surface.
func (rl *release) strike(ch chan struct{}, cause error) error {
	reg := rl.reg
	rl.c.LoadFailures.Add(1)
	now := reg.opt.Now()
	rl.mu.Lock()
	rl.lastErr = cause.Error()
	rl.consecFails++
	if rl.backoff == 0 {
		rl.backoff = reg.opt.BackoffBase
	} else {
		rl.backoff *= 2
		if rl.backoff > reg.opt.BackoffMax {
			rl.backoff = reg.opt.BackoffMax
		}
	}
	rl.backoffUntil = now.Add(rl.backoff)
	wasProbe := rl.probing
	rl.probing = false
	tripped := false
	if wasProbe || rl.consecFails >= reg.opt.BreakerThreshold {
		if rl.state != stateOpen {
			tripped = true
		}
		rl.state = stateOpen
		rl.openedUntil = now.Add(reg.opt.BreakerCooldown)
	}
	retryAfter := rl.backoff
	if rl.state == stateOpen {
		retryAfter = reg.opt.BreakerCooldown
	}
	rl.loading = nil
	rl.mu.Unlock()
	close(ch)
	if tripped {
		rl.c.Trips.Add(1)
		reg.opt.Logger.Printf("registry: %s: circuit breaker opened for %v after %d consecutive failures: %v",
			rl.name, reg.opt.BreakerCooldown, rl.consecFailsApprox(), cause)
	}
	if errors.Is(cause, context.DeadlineExceeded) || errors.Is(cause, reconstruct.ErrDeadline) {
		// The caller's deadline expired while loading (the slow-loader
		// failure mode): it counted as a strike above, but the caller
		// gets the truthful 504.
		return cause
	}
	return &server.UnavailableError{Reason: "load failed: " + cause.Error(), RetryAfter: retryAfter}
}

// cacheStats feeds the release's scrape-time cache gauges: the current
// cache's snapshot, following reloads and evictions through rl. ok is
// false while the release holds no cache (cold, evicted or retired).
func (rl *release) cacheStats() (qcache.Stats, bool) {
	rl.mu.Lock()
	c := rl.cache
	rl.mu.Unlock()
	if c == nil {
		return qcache.Stats{}, false
	}
	return c.Stats(), true
}

// consecFailsApprox reads the failure streak for log lines only.
func (rl *release) consecFailsApprox() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.consecFails
}

// evict drops the release's resident synopsis and cache, remembering
// the hottest cache keys so a later re-admission starts warm. Called
// with reg.mu held (reg.mu → rl.mu is the sanctioned order).
func (rl *release) evict() {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if !rl.loaded || rl.retired {
		return
	}
	if rl.cache != nil {
		keys := rl.cache.Keys()
		if len(keys) > maxHandoffKeys {
			keys = keys[:maxHandoffKeys]
		}
		rl.warmMasks = keys
		rl.cache.Purge()
	}
	rl.cache = nil
	rl.swap = nil
	rl.loaded = false
	rl.loadedPath = ""
	rl.loadedFlag.Store(false)
	rl.c.Evictions.Add(1)
}

// retire marks the release gone: resident state is dropped, future
// acquires get ErrUnknownRelease, in-flight leases finish untouched.
func (rl *release) retire() {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.retired = true
	if rl.cache != nil {
		rl.cache.Purge()
	}
	rl.cache = nil
	rl.swap = nil
	rl.loaded = false
	rl.loadedFlag.Store(false)
}

// currentQuerier returns the querier new queries would see, or nil if
// the release is not resident — the staleness check warm replay uses
// to stop filling a cache that has been evicted or swapped out.
func (rl *release) currentQuerier() server.Querier {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if !rl.loaded || rl.swap == nil {
		return nil
	}
	return rl.swap.Current()
}

// warmAsync pre-fills q's cache in the background: first the handoff
// keys (the queries that were hot when this release was last evicted
// or reloaded), then the configured ≤WarmK-way sweep. Best-effort —
// it stops the moment q stops being the release's current querier.
func (rl *release) warmAsync(q server.Querier, handoff []qcache.Key) {
	reg := rl.reg
	if len(handoff) == 0 && reg.opt.WarmK <= 0 {
		return
	}
	ctx := reg.bg
	go func() {
		replayed := 0
		for _, k := range handoff {
			if ctx.Err() != nil || rl.currentQuerier() != q {
				return
			}
			if _, err := q.QueryMethodContext(ctx, k.Mask.Attrs(), core.ReconstructMethod(k.Method)); err == nil {
				replayed++
			}
		}
		if replayed > 0 {
			reg.opt.Logger.Printf("registry: %s: warm handoff replayed %d/%d cached queries", rl.name, replayed, len(handoff))
		}
		cq, ok := q.(*server.CachedQuerier)
		if !ok || reg.opt.WarmK <= 0 {
			return
		}
		// The nil *WarmProgress is inert, so the no-telemetry path runs
		// the same code.
		var wp *server.WarmProgress
		if reg.opt.Metrics != nil {
			wp = reg.opt.Metrics.WarmProgress(rl.name)
		}
		wp.Begin()
		warmed, skipped, err := cq.WarmWithProgress(ctx, reg.opt.WarmK, 0, wp.Update)
		wp.End(warmed, skipped)
		if err != nil {
			reg.opt.Logger.Printf("registry: %s: cache warming stopped after %d marginals (%d skipped): %v", rl.name, warmed, skipped, err)
			return
		}
		reg.opt.Logger.Printf("registry: %s: warmed %d marginals (≤%d-way, %d skipped)", rl.name, warmed, reg.opt.WarmK, skipped)
	}()
}

// maybeReload checks whether the release's newest on-disk snapshot
// differs from the one being served and, if so, hot-reloads it through
// keep-last-good: the old synopsis serves until the new one has passed
// checksum + audit, and a failed reload changes nothing but a counter.
// Cold releases stay cold (lazy loading is the admission path).
func (rl *release) maybeReload(ctx context.Context) {
	names, err := rl.store.Snapshots()
	if err != nil || len(names) == 0 {
		return
	}
	newest := names[0]
	rl.mu.Lock()
	if !rl.loaded || rl.retired || rl.loading != nil || filepath.Base(rl.loadedPath) == newest {
		rl.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	rl.loading = ch
	oldCache := rl.cache
	rl.mu.Unlock()

	reg := rl.reg
	var res *snapshot.LoadResult
	select {
	case reg.loadSem <- struct{}{}:
		res, err = reg.opt.Loader.Load(ctx, rl.name, rl.store)
		<-reg.loadSem
	case <-ctx.Done():
		err = reconstruct.ContextErr(ctx)
	}
	if err == nil {
		for i, q := range res.Quarantined {
			reg.opt.Logger.Printf("registry: %s: quarantined corrupt snapshot %s: %v", rl.name, q, res.Errs[i])
		}
		err = auditGate(res)
	}
	if err != nil {
		reg.opt.Logger.Printf("registry: %s: reload failed, keeping last good synopsis: %v", rl.name, err)
		rl.c.ReloadFailures.Add(1)
		rl.mu.Lock()
		rl.lastErr = err.Error()
		rl.loading = nil
		rl.mu.Unlock()
		close(ch)
		return
	}
	var cache *qcache.Cache
	var q server.Querier = res.Synopsis
	if reg.opt.CacheEntries > 0 {
		cache = qcache.NewShared(reg.opt.CacheEntries, reg.opt.perReleaseBytes(), reg.budget)
		cq := server.NewCachedQuerier(res.Synopsis, cache)
		if reg.opt.Metrics != nil {
			reg.opt.Metrics.InstrumentCache(rl.name, cq)
		}
		q = cq
	}
	// The old cache's hot keys seed the new one; its entries must not
	// survive (qcache keys carry no synopsis identity).
	var handoff []qcache.Key
	if oldCache != nil {
		handoff = oldCache.Keys()
		if len(handoff) > maxHandoffKeys {
			handoff = handoff[:maxHandoffKeys]
		}
		oldCache.Purge()
	}
	rl.mu.Lock()
	if rl.retired {
		rl.loading = nil
		rl.mu.Unlock()
		close(ch)
		return
	}
	if rl.swap == nil {
		// Evicted while the reload was in flight; treat as a fresh
		// admission.
		rl.swap = server.NewSwappable(q)
	} else {
		rl.swap.Swap(q)
	}
	rl.cache = cache
	rl.loaded = true
	rl.loadedPath = res.Path
	rl.loading = nil
	rl.mu.Unlock()
	rl.loadedFlag.Store(true)
	rl.c.Reloads.Add(1)
	close(ch)
	reg.opt.Logger.Printf("registry: %s: reloaded snapshot %s (ε=%g)", rl.name, newest, res.Synopsis.Epsilon())
	reg.noteLoaded(rl)
	rl.warmAsync(q, handoff)
}

// ReleaseStats is the observability snapshot served on
// /v1/{release}/stats. Every counter the chaos suite asserts on —
// breaker trips, probes, sheds, evictions — is here.
type ReleaseStats struct {
	Name                string       `json:"name"`
	Loaded              bool         `json:"loaded"`
	Snapshot            string       `json:"snapshot,omitempty"`
	Breaker             string       `json:"breaker"`
	ConsecutiveFailures int          `json:"consecutive_failures"`
	BreakerTrips        uint64       `json:"breaker_trips"`
	BreakerRejects      uint64       `json:"breaker_rejects"`
	BackoffRejects      uint64       `json:"backoff_rejects"`
	HalfOpenProbes      uint64       `json:"half_open_probes"`
	LoadAttempts        uint64       `json:"load_attempts"`
	LoadFailures        uint64       `json:"load_failures"`
	Reloads             uint64       `json:"reloads"`
	ReloadFailures      uint64       `json:"reload_failures"`
	Shed                uint64       `json:"shed"`
	RateLimited         uint64       `json:"rate_limited"`
	RateLimitRPS        float64      `json:"rate_limit_rps,omitempty"`
	Weight              float64      `json:"weight"`
	Evictions           uint64       `json:"evictions"`
	Readmits            uint64       `json:"readmits"`
	LastError           string       `json:"last_error,omitempty"`
	InflightLimit       int          `json:"inflight_limit"`
	Inflight            int          `json:"inflight"`
	Cache               bool         `json:"cache"`
	CacheStats          qcache.Stats `json:"cache_stats"`
}

// stats snapshots the release's state without loading or touching it.
func (rl *release) stats() ReleaseStats {
	now := rl.reg.opt.Now()
	rl.mu.Lock()
	breaker := "closed"
	switch {
	case rl.state == stateOpen && now.Before(rl.openedUntil):
		breaker = "open"
	case rl.state == stateOpen || rl.state == stateHalfOpen:
		// Cooldown elapsed (probe pending) or probe in flight.
		breaker = "half-open"
	}
	s := ReleaseStats{
		Name:                rl.name,
		Loaded:              rl.loaded,
		Breaker:             breaker,
		ConsecutiveFailures: rl.consecFails,
		LastError:           rl.lastErr,
		Cache:               rl.cache != nil,
	}
	if rl.loadedPath != "" {
		s.Snapshot = filepath.Base(rl.loadedPath)
	}
	if rl.cache != nil {
		s.CacheStats = rl.cache.Stats()
	}
	rl.mu.Unlock()
	s.BreakerTrips = rl.c.Trips.Value()
	s.BreakerRejects = rl.c.BreakerRejects.Value()
	s.BackoffRejects = rl.c.BackoffRejects.Value()
	s.HalfOpenProbes = rl.c.HalfOpenProbes.Value()
	s.LoadAttempts = rl.c.LoadAttempts.Value()
	s.LoadFailures = rl.c.LoadFailures.Value()
	s.Reloads = rl.c.Reloads.Value()
	s.ReloadFailures = rl.c.ReloadFailures.Value()
	s.Shed = rl.c.Shed.Value()
	s.RateLimited = rl.c.RateLimited.Value()
	s.Weight = rl.weight
	if rl.bucket != nil {
		s.RateLimitRPS = rl.reg.opt.TenantRPS * rl.weight
	}
	s.Evictions = rl.c.Evictions.Value()
	s.Readmits = rl.c.Readmits.Value()
	if rl.inflight != nil {
		s.InflightLimit = cap(rl.inflight)
		s.Inflight = len(rl.inflight)
	}
	return s
}
