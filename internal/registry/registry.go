// Package registry serves many named synopsis releases from one
// process with hard failure isolation between them — the multi-tenant
// counterpart to cmd/priview-serve's single-synopsis mode.
//
// Each subdirectory of the registry root is a release (a tenant): a
// snapshot.Store directory owned by that tenant alone. A release is
// loaded lazily on its first query, through a per-release singleflight
// so a thundering herd runs one load, and every release keeps its own
// query cache and hot-swap cell. The isolation primitives are:
//
//   - Circuit breaker: after BreakerThreshold consecutive load or
//     audit failures the release fast-fails with 503 + Retry-After for
//     BreakerCooldown, then half-opens and admits exactly one probe.
//     A breaker-open tenant never touches the shared load semaphore,
//     so a corrupt tenant cannot burn the loader slots healthy
//     tenants need.
//   - Bulkhead: each release has its own inflight permit pool and a
//     byte quota carved from the global cache budget; one hot tenant
//     saturates itself (429), not the fleet.
//   - Rate limit + weighted fairness: each release gets a token bucket
//     (TenantRPS×weight), consulted before its bulkhead, and the
//     bulkhead permits are themselves weight-scaled — a greedy tenant
//     runs its own bucket dry while a well-behaved sibling's share is
//     untouched.
//   - LRU residency: at most MaxLoaded synopses stay in memory; cold
//     tenants are evicted (their hot cache keys remembered) and warmed
//     back up from those keys when re-admitted.
//   - Reconciliation: a background rescan registers new release
//     directories, retires vanished ones, and hot-reloads releases
//     whose newest snapshot changed, through the keep-last-good path —
//     a failed reload never takes down a serving tenant.
//
// The package implements server.Resolver; server.NewMulti routes
// /v1/{release}/... through it.
package registry

import (
	"context"
	"fmt"
	"log"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"priview/internal/audit"
	"priview/internal/qcache"
	"priview/internal/server"
	"priview/internal/snapshot"
)

// Loader produces a verified synopsis for one release. The default
// loader is the release's snapshot.Store (newest verifiable snapshot,
// quarantine on corruption); the chaos suite injects slow and
// poisoning loaders to prove the breaker. Whatever the loader returns
// is re-audited by the registry before it serves — a loader cannot
// smuggle an invariant-violating synopsis past the gate.
type Loader interface {
	Load(ctx context.Context, release string, st *snapshot.Store) (*snapshot.LoadResult, error)
}

// storeLoader is the default Loader: the release's own store.
type storeLoader struct{}

func (storeLoader) Load(ctx context.Context, _ string, st *snapshot.Store) (*snapshot.LoadResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return st.Load()
}

// Options configures a Registry. The zero value is usable: every knob
// has a serving-appropriate default, and tests override Now for a
// deterministic clock.
type Options struct {
	// MaxLoaded bounds how many synopses stay resident at once; the
	// least-recently-used release is evicted past it. 0 means the
	// default (8); negative disables eviction.
	MaxLoaded int
	// CacheEntries bounds each release's query cache by entry count.
	// 0 means the default (1024); negative disables per-release
	// caches entirely.
	CacheEntries int
	// CacheBytes is the GLOBAL byte budget shared by all release
	// caches. Each resident release gets an equal carve
	// (CacheBytes/MaxLoaded) as its local bound, and the shared
	// budget backstops the sum. 0 means the default (64 MiB);
	// negative disables byte accounting.
	CacheBytes int64
	// MaxInflight is the per-release bulkhead: concurrent queries a
	// single release may have in flight before shedding with 429.
	// 0 means the default (32); negative disables the bulkhead.
	MaxInflight int
	// TenantRPS is the per-release token-bucket rate limit in requests
	// per second, scaled by the release's weight; a dry bucket rejects
	// with 429 + Retry-After before the bulkhead is even consulted.
	// ≤ 0 disables rate limiting (the default).
	TenantRPS float64
	// TenantBurst is each bucket's capacity (also weight-scaled);
	// 0 means the default (2×TenantRPS, floored at 1).
	TenantBurst float64
	// Weights assigns per-release fairness weights; absent or
	// non-positive entries mean 1.0. A release's rate limit is
	// TenantRPS×weight and its bulkhead carve is MaxInflight×weight
	// (floored at one permit), so one knob shifts both axes of a
	// tenant's share.
	Weights map[string]float64
	// LoadConcurrency bounds how many release loads (disk read +
	// checksum + audit) run at once across the whole registry.
	// 0 means the default (2).
	LoadConcurrency int
	// BreakerThreshold is how many consecutive load failures trip the
	// release's circuit breaker. 0 means the default (3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker fast-fails before
	// half-opening for a single probe. 0 means the default (10s).
	BreakerCooldown time.Duration
	// BackoffBase and BackoffMax shape the exponential backoff between
	// failed loads below the breaker threshold. Defaults 250ms / 15s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// WarmK precomputes all ≤WarmK-way marginals after each successful
	// load (0 disables).
	WarmK int
	// RetryAfter is the hint attached to shed (429) responses.
	// 0 means the default (1s).
	RetryAfter time.Duration
	// Loader overrides how releases are loaded (nil = the release's
	// snapshot store).
	Loader Loader
	// FS is the filesystem the registry and its stores use (nil = the
	// real one); the chaos suite injects fault-carrying filesystems.
	FS snapshot.FS
	// Now is the clock (nil = time.Now); tests inject a fake to drive
	// breaker cooldowns deterministically.
	Now func() time.Time
	// Metrics, when non-nil, exports every release's lifecycle counters,
	// cache counters and warm progress as release-labeled series on the
	// shared scrape surface (pass the serving router's Metrics so one
	// GET /metrics covers both). nil keeps the counters standalone —
	// the JSON stats surfaces are unaffected either way.
	Metrics *server.Metrics
	// Logger receives operational messages (nil = log.Default()).
	Logger *log.Logger
}

// withDefaults resolves the zero-value knobs.
func (o Options) withDefaults() Options {
	if o.MaxLoaded == 0 {
		o.MaxLoaded = 8
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 1024
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 64 << 20
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 32
	}
	if o.TenantRPS > 0 && o.TenantBurst <= 0 {
		o.TenantBurst = 2 * o.TenantRPS
	}
	if o.LoadConcurrency <= 0 {
		o.LoadConcurrency = 2
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 250 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 15 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Loader == nil {
		o.Loader = storeLoader{}
	}
	if o.FS == nil {
		o.FS = snapshot.OS{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// weightFor resolves a release's fairness weight: its Weights entry
// when positive, else 1.
func (o Options) weightFor(name string) float64 {
	if w, ok := o.Weights[name]; ok && w > 0 {
		return w
	}
	return 1
}

// perReleaseBytes is the equal carve of the global cache budget each
// resident release gets as its local byte bound.
func (o Options) perReleaseBytes() int64 {
	if o.CacheBytes <= 0 {
		return 0 // unbounded locally; no budget either
	}
	if o.MaxLoaded <= 0 {
		return o.CacheBytes
	}
	per := o.CacheBytes / int64(o.MaxLoaded)
	if per < 1 {
		per = 1
	}
	return per
}

// Registry maps release names to their serving state and implements
// server.Resolver. One Registry serves one root directory.
type Registry struct {
	root    string
	opt     Options
	loadSem chan struct{}    // shared load concurrency; breaker-open tenants never enter
	budget  *qcache.Budget   // global cache byte pool; nil when disabled
	fams    *releaseFamilies // nil when Options.Metrics is unset
	bg      context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	rel      map[string]*release
	scanned  bool // initial Reconcile completed — the /readyz gate
	touchSeq int64
}

// Lock ordering: Registry.mu strictly before release.mu. Any path
// holding a release's mutex must never take the registry's.

// New opens a registry over root. No releases are scanned or loaded;
// call Reconcile (or let lazy discovery admit them on first query).
func New(root string, opt Options) (*Registry, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating root %s: %w", root, err)
	}
	reg := &Registry{
		root:    root,
		opt:     opt,
		loadSem: make(chan struct{}, opt.LoadConcurrency),
		rel:     make(map[string]*release),
	}
	if opt.CacheBytes > 0 {
		reg.budget = qcache.NewBudget(opt.CacheBytes)
	}
	if opt.Metrics != nil {
		reg.fams = newReleaseFamilies(opt.Metrics.Registry)
	}
	reg.bg, reg.cancel = context.WithCancel(context.Background())
	return reg, nil
}

// Close stops the registry's background work (cache warming). Serving
// state is left as-is; leases already handed out keep answering.
func (reg *Registry) Close() { reg.cancel() }

// Budget exposes the shared cache byte pool (nil when byte accounting
// is disabled) for observability.
func (reg *Registry) Budget() *qcache.Budget { return reg.budget }

// validName reports whether name is an acceptable release name: 1–64
// characters of [a-zA-Z0-9._-], not starting with a dot. This is both
// an URL-hygiene rule and a path-traversal guard — a release name is
// joined onto the registry root.
func validName(name string) bool {
	if name == "" || len(name) > 64 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Acquire implements server.Resolver: resolve name, take one bulkhead
// permit, lazily load on first hit, and hand back a lease pinned to
// the synopsis current at acquire time.
func (reg *Registry) Acquire(ctx context.Context, name string) (server.Lease, error) {
	rl, err := reg.lookup(name)
	if err != nil {
		return nil, err
	}
	return rl.acquire(ctx)
}

// lookup finds a registered release, falling back to lazy discovery:
// if root/name exists as a directory it is registered cold on the
// spot, so a release dropped into the root serves before the next
// reconcile tick.
func (reg *Registry) lookup(name string) (*release, error) {
	reg.mu.Lock()
	rl, ok := reg.rel[name]
	reg.mu.Unlock()
	if ok {
		return rl, nil
	}
	if !validName(name) {
		return nil, server.ErrUnknownRelease
	}
	// Probe the root for a directory with this name. ReadDir (not
	// MkdirAll-through-NewStore first) so probing a typo cannot
	// fabricate a tenant directory.
	if _, err := reg.opt.FS.ReadDir(filepath.Join(reg.root, name)); err != nil {
		return nil, server.ErrUnknownRelease
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if rl, ok := reg.rel[name]; ok {
		return rl, nil
	}
	rl, err := reg.register(name)
	if err != nil {
		return nil, err
	}
	return rl, nil
}

// register creates the cold serving state for a release. Caller holds
// reg.mu.
func (reg *Registry) register(name string) (*release, error) {
	st, err := snapshot.NewStoreFS(reg.opt.FS, filepath.Join(reg.root, name), 0)
	if err != nil {
		return nil, fmt.Errorf("registry: opening release %s: %w", name, err)
	}
	rl := newRelease(reg, name, st)
	reg.rel[name] = rl
	return rl, nil
}

// ReleaseStats implements server.Resolver. It never loads or touches
// the release: stats on a cold, broken or saturated tenant must always
// answer.
func (reg *Registry) ReleaseStats(name string) (any, error) {
	reg.mu.Lock()
	rl, ok := reg.rel[name]
	reg.mu.Unlock()
	if !ok {
		return nil, server.ErrUnknownRelease
	}
	return rl.stats(), nil
}

// Releases implements server.Resolver: the registered names, sorted.
func (reg *Registry) Releases() []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	names := make([]string, 0, len(reg.rel))
	for n := range reg.rel {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Ready implements server.Resolver: true once the initial Reconcile
// has completed.
func (reg *Registry) Ready() bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return reg.scanned
}

// Stats returns every release's observability snapshot, sorted by
// name — the periodic log line and debugging surface.
func (reg *Registry) Stats() []ReleaseStats {
	reg.mu.Lock()
	rels := make([]*release, 0, len(reg.rel))
	for _, rl := range reg.rel {
		rels = append(rels, rl)
	}
	reg.mu.Unlock()
	out := make([]ReleaseStats, 0, len(rels))
	for _, rl := range rels {
		out = append(out, rl.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reconcile rescans the registry root once: new directories are
// registered cold, vanished ones are retired (in-flight leases finish;
// new queries get 404), and loaded releases whose newest snapshot
// changed are hot-reloaded through the keep-last-good path. The
// serving path never blocks on a reconcile.
func (reg *Registry) Reconcile(ctx context.Context) error {
	entries, err := reg.opt.FS.ReadDir(reg.root)
	if err != nil {
		return fmt.Errorf("registry: scanning %s: %w", reg.root, err)
	}
	present := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() && validName(e.Name()) {
			present[e.Name()] = true
		}
	}
	var live, gone []*release
	reg.mu.Lock()
	for name := range present {
		if _, ok := reg.rel[name]; !ok {
			if _, err := reg.register(name); err != nil {
				reg.opt.Logger.Printf("registry: %v", err)
			}
		}
	}
	for name, rl := range reg.rel {
		if present[name] {
			live = append(live, rl)
		} else {
			delete(reg.rel, name)
			gone = append(gone, rl)
		}
	}
	reg.scanned = true
	reg.mu.Unlock()
	for _, rl := range gone {
		rl.retire()
		reg.opt.Logger.Printf("registry: retired release %s (directory removed)", rl.name)
	}
	for _, rl := range live {
		if err := ctx.Err(); err != nil {
			return err
		}
		rl.maybeReload(ctx)
	}
	return nil
}

// Run reconciles on a fixed interval until ctx ends — the background
// companion to SIGHUP-triggered Reconcile calls.
func (reg *Registry) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if err := reg.Reconcile(ctx); err != nil && ctx.Err() == nil {
				reg.opt.Logger.Printf("registry: reconcile: %v", err)
			}
		}
	}
}

// nextTouch issues a monotonically increasing recency stamp; releases
// record their latest on every acquire, giving the eviction scan a
// race-free LRU order without taking any release's lock.
func (reg *Registry) nextTouch() int64 {
	reg.mu.Lock()
	reg.touchSeq++
	t := reg.touchSeq
	reg.mu.Unlock()
	return t
}

// noteLoaded enforces the residency bound after justLoaded became
// resident: while more than MaxLoaded synopses are in memory, the
// least recently used one (never the one just admitted) is evicted
// with its hot cache keys saved for warm handoff.
func (reg *Registry) noteLoaded(justLoaded *release) {
	if reg.opt.MaxLoaded <= 0 {
		return
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	var loaded []*release
	for _, rl := range reg.rel {
		if rl.loadedFlag.Load() {
			loaded = append(loaded, rl)
		}
	}
	excess := len(loaded) - reg.opt.MaxLoaded
	for round := 0; round < excess; round++ {
		var victim *release
		oldest := int64(1<<63 - 1)
		//lint:hot
		for _, cand := range loaded {
			if cand == justLoaded || !cand.loadedFlag.Load() {
				continue
			}
			if t := cand.lastTouch.Load(); t < oldest {
				oldest, victim = t, cand
			}
		}
		if victim == nil {
			return
		}
		victim.evict()
		reg.opt.Logger.Printf("registry: evicted release %s (residency bound %d)", victim.name, reg.opt.MaxLoaded)
	}
}

// auditGate re-checks a loaded synopsis against the release
// invariants. The default store loader already audits internally, but
// the gate is applied to every loader uniformly so an injected loader
// (or a future custom one) cannot hand the serving path a synopsis
// that violates the invariants — chaos proves this with NaN poison.
func auditGate(res *snapshot.LoadResult) error {
	report := audit.Check(res.Synopsis, audit.Options{})
	if err := report.Err(); err != nil {
		return fmt.Errorf("release audit: %w", err)
	}
	return nil
}
