package registry_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"priview/internal/registry"
	"priview/internal/server"
	"priview/internal/telemetry"
)

// driveRelease loads alpha and runs identical traffic: two queries (a
// miss and a hit when caching is on) plus one unknown-release probe.
func driveRelease(t *testing.T, reg *registry.Registry) {
	t.Helper()
	for i := 0; i < 2; i++ {
		lease, err := reg.Acquire(context.Background(), "alpha")
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		mustQuery(t, lease)
		lease.Close()
	}
}

// TestTelemetryInvisibleInStatsJSON pins the refactor's compatibility
// claim at the registry layer: wiring Options.Metrics must not change
// a single byte of the per-release stats JSON. Two registries serve
// identical releases under identical traffic — one instrumented, one
// not — and their marshaled ReleaseStats must agree exactly (the
// snapshot path is zeroed: the temp roots necessarily differ).
func TestTelemetryInvisibleInStatsJSON(t *testing.T) {
	marshal := func(reg *registry.Registry) string {
		s := stats(t, reg, "alpha")
		s.Snapshot = ""
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	root1 := t.TempDir()
	saveRelease(t, root1, "alpha", 1)
	opt1 := quietOpts()
	opt1.CacheEntries = 64
	reg1, err := registry.New(root1, opt1)
	if err != nil {
		t.Fatal(err)
	}
	defer reg1.Close()
	driveRelease(t, reg1)

	root2 := t.TempDir()
	saveRelease(t, root2, "alpha", 1)
	opt2 := quietOpts()
	opt2.CacheEntries = 64
	opt2.Metrics = server.NewMetrics(telemetry.NewRegistry())
	reg2, err := registry.New(root2, opt2)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	driveRelease(t, reg2)

	if got, want := marshal(reg2), marshal(reg1); got != want {
		t.Errorf("instrumented registry changed stats JSON:\n with    %s\n without %s", got, want)
	}
}

// TestRegistryReleaseSeries scrapes an instrumented registry and
// checks the release-labeled families carry the lifecycle and cache
// traffic the stats JSON reports, through the strict parser.
func TestRegistryReleaseSeries(t *testing.T) {
	tel := telemetry.NewRegistry()
	opt := quietOpts()
	opt.CacheEntries = 64
	opt.Metrics = server.NewMetrics(tel)
	root := t.TempDir()
	saveRelease(t, root, "alpha", 1)
	reg, err := registry.New(root, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	driveRelease(t, reg)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	tel.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	fams, err := telemetry.ParseText(rec.Body)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}

	alpha := map[string]string{"release": "alpha"}
	want := map[string]float64{
		"priview_release_load_attempts_total": 1,
		"priview_qcache_misses_total":         1,
		"priview_qcache_hits_total":           1,
	}
	for fam, min := range want {
		f := fams[fam]
		if f == nil {
			t.Errorf("family %s missing", fam)
			continue
		}
		s := f.Sample(fam, alpha)
		if s == nil {
			t.Errorf("%s{release=\"alpha\"} missing", fam)
			continue
		}
		if s.Value < min {
			t.Errorf("%s{release=\"alpha\"} = %v, want ≥ %v", fam, s.Value, min)
		}
	}
	// The scrape-time gauge hook follows the live cache.
	if f := fams["priview_qcache_entries"]; f == nil || f.Sample("priview_qcache_entries", alpha) == nil {
		t.Error("priview_qcache_entries{release=\"alpha\"} missing (scrape hook not firing)")
	} else if v := f.Sample("priview_qcache_entries", alpha).Value; v < 1 {
		t.Errorf("priview_qcache_entries{release=\"alpha\"} = %v, want ≥ 1", v)
	}
}
