package registry_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"priview"
	"priview/internal/core"
	"priview/internal/registry"
	"priview/internal/server"
	"priview/internal/snapshot"
)

// buildSyn returns a small synopsis with seed-dependent content.
func buildSyn(t *testing.T, seed int64) *core.Synopsis {
	t.Helper()
	const d = 6
	records := make([]uint64, 200)
	for i := range records {
		records[i] = uint64(i*2654435761) & ((1 << d) - 1)
	}
	data := priview.NewDataset(d, records)
	plan := priview.PlanDesign(d, data.Len(), 1.0, 1)
	return priview.Build(data, priview.Config{Epsilon: 1.0, Design: plan.Design}, seed)
}

// saveRelease creates root/name as a snapshot store holding one
// freshly built synopsis, returning the store for later saves.
func saveRelease(t *testing.T, root, name string, seed int64) *snapshot.Store {
	t.Helper()
	st, err := snapshot.NewStore(filepath.Join(root, name), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(buildSyn(t, seed)); err != nil {
		t.Fatal(err)
	}
	return st
}

// fakeClock is an injectable deterministic clock: breaker cooldowns
// and backoffs elapse only when the test advances it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// flakyLoader fails on demand; otherwise it defers to the store.
type flakyLoader struct {
	mu    sync.Mutex
	fail  bool
	calls int
}

func (l *flakyLoader) setFail(v bool) {
	l.mu.Lock()
	l.fail = v
	l.mu.Unlock()
}

func (l *flakyLoader) Load(_ context.Context, _ string, st *snapshot.Store) (*snapshot.LoadResult, error) {
	l.mu.Lock()
	l.calls++
	fail := l.fail
	l.mu.Unlock()
	if fail {
		return nil, errors.New("injected load failure")
	}
	return st.Load()
}

func quietOpts() registry.Options {
	return registry.Options{Logger: log.New(io.Discard, "", 0)}
}

func stats(t *testing.T, reg *registry.Registry, name string) registry.ReleaseStats {
	t.Helper()
	v, err := reg.ReleaseStats(name)
	if err != nil {
		t.Fatalf("ReleaseStats(%s): %v", name, err)
	}
	return v.(registry.ReleaseStats)
}

func mustQuery(t *testing.T, lease server.Lease) {
	t.Helper()
	if _, err := lease.QueryMethodContext(context.Background(), []int{0, 1}, core.CME); err != nil {
		t.Fatalf("query through lease: %v", err)
	}
}

func TestLazyLoadSingleflight(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "alpha", 1)
	started := make(chan struct{})
	unblock := make(chan struct{})
	loader := &gateLoader{started: started, unblock: unblock}
	reg, err := registry.New(root, registry.Options{Loader: loader, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lease, err := reg.Acquire(context.Background(), "alpha")
			if err != nil {
				errs[i] = err
				return
			}
			defer lease.Close()
			_, errs[i] = lease.QueryMethodContext(context.Background(), []int{0, 1}, core.CME)
		}(i)
	}
	<-started       // one leader is inside the loader
	close(unblock)  // let it finish; waiters share the result
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if got := loader.loads(); got != 1 {
		t.Errorf("loader ran %d times, want 1 (singleflight)", got)
	}
	if s := stats(t, reg, "alpha"); s.LoadAttempts != 1 || !s.Loaded {
		t.Errorf("stats = attempts %d loaded %v, want 1 true", s.LoadAttempts, s.Loaded)
	}
}

// gateLoader signals when a load starts and blocks it until released.
type gateLoader struct {
	started chan struct{}
	unblock chan struct{}
	mu      sync.Mutex
	calls   int
	once    sync.Once
}

func (l *gateLoader) loads() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.calls
}

func (l *gateLoader) Load(_ context.Context, _ string, st *snapshot.Store) (*snapshot.LoadResult, error) {
	l.mu.Lock()
	l.calls++
	l.mu.Unlock()
	l.once.Do(func() { close(l.started) })
	<-l.unblock
	return st.Load()
}

func TestUnknownAndInvalidReleaseNames(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "alpha", 1)
	reg, err := registry.New(root, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, name := range []string{"nonesuch", "../alpha", ".hidden", "a/b", ""} {
		if _, err := reg.Acquire(context.Background(), name); !errors.Is(err, server.ErrUnknownRelease) {
			t.Errorf("Acquire(%q) = %v, want ErrUnknownRelease", name, err)
		}
	}
	if _, err := reg.ReleaseStats("nonesuch"); !errors.Is(err, server.ErrUnknownRelease) {
		t.Errorf("ReleaseStats(nonesuch) = %v, want ErrUnknownRelease", err)
	}
}

// TestLazyDiscovery proves a directory dropped into the root serves on
// first query, before any reconcile runs.
func TestLazyDiscovery(t *testing.T) {
	root := t.TempDir()
	reg, err := registry.New(root, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	saveRelease(t, root, "late", 3)
	lease, err := reg.Acquire(context.Background(), "late")
	if err != nil {
		t.Fatalf("Acquire after drop-in: %v", err)
	}
	defer lease.Close()
	mustQuery(t, lease)
}

func TestBulkheadSheds(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "alpha", 1)
	opt := quietOpts()
	opt.MaxInflight = 1
	reg, err := registry.New(root, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	held, err := reg.Acquire(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	var saturated *server.SaturatedError
	if _, err := reg.Acquire(context.Background(), "alpha"); !errors.As(err, &saturated) {
		t.Fatalf("second acquire = %v, want SaturatedError", err)
	}
	if saturated.RetryAfter <= 0 {
		t.Error("SaturatedError carries no Retry-After hint")
	}
	if s := stats(t, reg, "alpha"); s.Shed != 1 || s.Inflight != 1 || s.InflightLimit != 1 {
		t.Errorf("stats = shed %d inflight %d/%d, want 1 1/1", s.Shed, s.Inflight, s.InflightLimit)
	}
	held.Close()
	held.Close() // idempotent: a double-close must not free a second permit
	lease, err := reg.Acquire(context.Background(), "alpha")
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	lease.Close()
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "alpha", 1)
	clock := newFakeClock()
	loader := &flakyLoader{fail: true}
	opt := quietOpts()
	opt.Loader = loader
	opt.Now = clock.Now
	opt.BreakerThreshold = 2
	opt.BreakerCooldown = 10 * time.Second
	opt.BackoffBase = 100 * time.Millisecond
	reg, err := registry.New(root, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()

	var unavailable *server.UnavailableError
	// Strike one: closed, in backoff.
	if _, err := reg.Acquire(ctx, "alpha"); !errors.As(err, &unavailable) {
		t.Fatalf("first failing acquire = %v, want UnavailableError", err)
	}
	if s := stats(t, reg, "alpha"); s.Breaker != "closed" || s.ConsecutiveFailures != 1 {
		t.Fatalf("after one strike: breaker %q fails %d, want closed 1", s.Breaker, s.ConsecutiveFailures)
	}
	// Strike two trips the breaker (advance past the backoff first).
	clock.Advance(time.Second)
	if _, err := reg.Acquire(ctx, "alpha"); !errors.As(err, &unavailable) {
		t.Fatalf("second failing acquire = %v, want UnavailableError", err)
	}
	s := stats(t, reg, "alpha")
	if s.Breaker != "open" || s.BreakerTrips != 1 {
		t.Fatalf("after threshold: breaker %q trips %d, want open 1", s.Breaker, s.BreakerTrips)
	}
	// Open: fast-fail without touching the loader.
	before := loader.calls
	if _, err := reg.Acquire(ctx, "alpha"); !errors.As(err, &unavailable) {
		t.Fatalf("open-breaker acquire = %v, want UnavailableError", err)
	}
	if unavailable.RetryAfter <= 0 || unavailable.RetryAfter > opt.BreakerCooldown {
		t.Errorf("open-breaker Retry-After = %v, want in (0, %v]", unavailable.RetryAfter, opt.BreakerCooldown)
	}
	if loader.calls != before {
		t.Error("open breaker still reached the loader")
	}
	if s := stats(t, reg, "alpha"); s.BreakerRejects == 0 {
		t.Error("fast-fail did not count a breaker reject")
	}
	// Cooldown elapses; the probe runs, still fails, breaker re-opens.
	clock.Advance(opt.BreakerCooldown + time.Second)
	if _, err := reg.Acquire(ctx, "alpha"); !errors.As(err, &unavailable) {
		t.Fatalf("probe acquire = %v, want UnavailableError", err)
	}
	s = stats(t, reg, "alpha")
	if s.HalfOpenProbes != 1 || s.Breaker != "open" || s.BreakerTrips != 2 {
		t.Fatalf("failed probe: probes %d breaker %q trips %d, want 1 open 2", s.HalfOpenProbes, s.Breaker, s.BreakerTrips)
	}
	// Repair the tenant; next probe recovers it.
	loader.setFail(false)
	clock.Advance(opt.BreakerCooldown + time.Second)
	lease, err := reg.Acquire(ctx, "alpha")
	if err != nil {
		t.Fatalf("recovery probe = %v, want success", err)
	}
	defer lease.Close()
	mustQuery(t, lease)
	s = stats(t, reg, "alpha")
	if s.Breaker != "closed" || !s.Loaded || s.ConsecutiveFailures != 0 {
		t.Errorf("after recovery: breaker %q loaded %v fails %d, want closed true 0", s.Breaker, s.Loaded, s.ConsecutiveFailures)
	}
	if s.HalfOpenProbes != 2 {
		t.Errorf("recovery probes = %d, want 2", s.HalfOpenProbes)
	}
}

func TestBackoffBetweenFailures(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "alpha", 1)
	clock := newFakeClock()
	loader := &flakyLoader{fail: true}
	opt := quietOpts()
	opt.Loader = loader
	opt.Now = clock.Now
	opt.BreakerThreshold = 10 // keep the breaker out of the way
	opt.BackoffBase = 200 * time.Millisecond
	reg, err := registry.New(root, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()

	var unavailable *server.UnavailableError
	if _, err := reg.Acquire(ctx, "alpha"); !errors.As(err, &unavailable) {
		t.Fatalf("failing acquire = %v, want UnavailableError", err)
	}
	// Within the backoff window no load runs: fast reject.
	before := loader.calls
	if _, err := reg.Acquire(ctx, "alpha"); !errors.As(err, &unavailable) {
		t.Fatalf("backoff acquire = %v, want UnavailableError", err)
	}
	if loader.calls != before {
		t.Error("backoff window still reached the loader")
	}
	if s := stats(t, reg, "alpha"); s.BackoffRejects != 1 {
		t.Errorf("backoff rejects = %d, want 1", s.BackoffRejects)
	}
	// Past the window the next real attempt runs (and fails again,
	// doubling the backoff).
	clock.Advance(time.Second)
	if _, err := reg.Acquire(ctx, "alpha"); !errors.As(err, &unavailable) {
		t.Fatalf("post-backoff acquire = %v, want UnavailableError", err)
	}
	if loader.calls != before+1 {
		t.Errorf("loader calls = %d, want %d", loader.calls, before+1)
	}
}

func TestEvictionAndWarmHandoff(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "alpha", 1)
	saveRelease(t, root, "beta", 2)
	opt := quietOpts()
	opt.MaxLoaded = 1
	reg, err := registry.New(root, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()

	lease, err := reg.Acquire(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	mustQuery(t, lease) // caches {0,1} in alpha's cache
	lease.Close()
	if s := stats(t, reg, "alpha"); s.CacheStats.Entries != 1 {
		t.Fatalf("alpha cache entries = %d, want 1", s.CacheStats.Entries)
	}

	// Loading beta exceeds MaxLoaded=1 and evicts cold alpha.
	lease, err = reg.Acquire(ctx, "beta")
	if err != nil {
		t.Fatal(err)
	}
	mustQuery(t, lease)
	lease.Close()
	s := stats(t, reg, "alpha")
	if s.Loaded || s.Evictions != 1 || s.Cache {
		t.Fatalf("alpha after beta load: loaded %v evictions %d cache %v, want false 1 false", s.Loaded, s.Evictions, s.Cache)
	}
	if used := reg.Budget().Used(); used == 0 {
		t.Error("budget reads zero with beta's cache populated")
	}

	// Re-admitting alpha replays its hot keys into the fresh cache.
	lease, err = reg.Acquire(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	lease.Close()
	if s := stats(t, reg, "alpha"); s.Readmits != 1 || !s.Loaded {
		t.Fatalf("alpha re-admit: readmits %d loaded %v, want 1 true", s.Readmits, s.Loaded)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := stats(t, reg, "alpha"); s.CacheStats.Entries >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("warm handoff never replayed alpha's cached query")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReconcileAddRetire(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "alpha", 1)
	saveRelease(t, root, "beta", 2)
	reg, err := registry.New(root, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()

	if reg.Ready() {
		t.Error("Ready before the initial scan")
	}
	if err := reg.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if !reg.Ready() {
		t.Error("not Ready after Reconcile")
	}
	if got := fmt.Sprint(reg.Releases()); got != "[alpha beta]" {
		t.Fatalf("Releases = %v, want [alpha beta]", got)
	}

	// beta vanishes, gamma appears.
	if err := os.RemoveAll(filepath.Join(root, "beta")); err != nil {
		t.Fatal(err)
	}
	saveRelease(t, root, "gamma", 3)
	if err := reg.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(reg.Releases()); got != "[alpha gamma]" {
		t.Fatalf("Releases after churn = %v, want [alpha gamma]", got)
	}
	if _, err := reg.Acquire(ctx, "beta"); !errors.Is(err, server.ErrUnknownRelease) {
		t.Errorf("retired release acquire = %v, want ErrUnknownRelease", err)
	}
}

func TestReconcileHotReload(t *testing.T) {
	root := t.TempDir()
	st := saveRelease(t, root, "alpha", 1)
	reg, err := registry.New(root, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()

	lease, err := reg.Acquire(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	mustQuery(t, lease)
	lease.Close()
	served := stats(t, reg, "alpha").Snapshot

	// A new snapshot lands; the reconciler hot-reloads through
	// keep-last-good without any query seeing a cold release.
	if _, err := st.Save(buildSyn(t, 99)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	s := stats(t, reg, "alpha")
	if s.Reloads != 1 || !s.Loaded {
		t.Fatalf("after reload: reloads %d loaded %v, want 1 true", s.Reloads, s.Loaded)
	}
	if s.Snapshot == served || s.Snapshot == "" {
		t.Errorf("served snapshot %q did not advance past %q", s.Snapshot, served)
	}
	lease, err = reg.Acquire(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Close()
	mustQuery(t, lease)
}

func TestTenantRateLimit(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "alpha", 1)
	clock := newFakeClock()
	opt := quietOpts()
	opt.Now = clock.Now
	opt.TenantRPS = 1
	opt.TenantBurst = 1
	reg, err := registry.New(root, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()

	lease, err := reg.Acquire(ctx, "alpha")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	lease.Close()
	// Burst spent; the bucket refills one token per second.
	var limited *server.RateLimitedError
	if _, err := reg.Acquire(ctx, "alpha"); !errors.As(err, &limited) {
		t.Fatalf("over-rate acquire = %v, want RateLimitedError", err)
	}
	if limited.RetryAfter <= 0 || limited.RetryAfter > time.Second {
		t.Errorf("Retry-After = %v, want in (0, 1s]", limited.RetryAfter)
	}
	s := stats(t, reg, "alpha")
	if s.RateLimited != 1 || s.RateLimitRPS != 1 || s.Weight != 1 {
		t.Errorf("stats = rate_limited %d rps %g weight %g, want 1 1 1", s.RateLimited, s.RateLimitRPS, s.Weight)
	}
	clock.Advance(time.Second)
	lease, err = reg.Acquire(ctx, "alpha")
	if err != nil {
		t.Fatalf("acquire after refill: %v", err)
	}
	lease.Close()
}

// TestWeightedFairness proves a release's weight scales both its
// bulkhead carve and its rate-limit bucket, with a floor of one
// inflight permit for arbitrarily small weights.
func TestWeightedFairness(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "heavy", 1)
	saveRelease(t, root, "light", 2)
	opt := quietOpts()
	opt.MaxInflight = 4
	opt.TenantRPS = 10
	opt.Weights = map[string]float64{"heavy": 2, "light": 0.1}
	reg, err := registry.New(root, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()

	// Touch both so the bulkheads exist, then inspect the carves.
	for _, name := range []string{"heavy", "light"} {
		lease, err := reg.Acquire(ctx, name)
		if err != nil {
			t.Fatalf("acquire %s: %v", name, err)
		}
		lease.Close()
	}
	h, l := stats(t, reg, "heavy"), stats(t, reg, "light")
	if h.InflightLimit != 8 || h.Weight != 2 || h.RateLimitRPS != 20 {
		t.Errorf("heavy = limit %d weight %g rps %g, want 8 2 20", h.InflightLimit, h.Weight, h.RateLimitRPS)
	}
	// 4×0.1 truncates to 0; the floor keeps one permit.
	if l.InflightLimit != 1 || l.Weight != 0.1 || l.RateLimitRPS != 1 {
		t.Errorf("light = limit %d weight %g rps %g, want 1 0.1 1", l.InflightLimit, l.Weight, l.RateLimitRPS)
	}
}

// TestGreedyTenantIsolation floods one release past its rate limit and
// proves its sibling never sees an error: per-tenant buckets are the
// isolation boundary, not a shared limiter.
func TestGreedyTenantIsolation(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "greedy", 1)
	saveRelease(t, root, "polite", 2)
	clock := newFakeClock()
	opt := quietOpts()
	opt.Now = clock.Now
	opt.TenantRPS = 1
	opt.TenantBurst = 1
	reg, err := registry.New(root, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()

	var greedyLimited int
	for i := 0; i < 20; i++ {
		if lease, err := reg.Acquire(ctx, "greedy"); err != nil {
			var limited *server.RateLimitedError
			if !errors.As(err, &limited) {
				t.Fatalf("greedy acquire %d: %v, want RateLimitedError", i, err)
			}
			greedyLimited++
		} else {
			lease.Close()
		}
		// The polite tenant stays within its own budget (one query per
		// simulated second) and must never be turned away.
		if i%2 == 0 {
			lease, err := reg.Acquire(ctx, "polite")
			if err != nil {
				t.Fatalf("polite acquire %d: %v, want success", i, err)
			}
			lease.Close()
			clock.Advance(time.Second)
		}
	}
	if greedyLimited == 0 {
		t.Error("greedy tenant was never rate limited")
	}
	if s := stats(t, reg, "polite"); s.RateLimited != 0 {
		t.Errorf("polite tenant rate_limited = %d, want 0", s.RateLimited)
	}
}

// TestLeaseForwardsCacheOnlyQuery proves the lease surfaces the pinned
// querier's brownout cache-only path: a hit for a previously answered
// query, a miss (not a solve) for a cold one.
func TestLeaseForwardsCacheOnlyQuery(t *testing.T) {
	root := t.TempDir()
	saveRelease(t, root, "alpha", 1)
	reg, err := registry.New(root, quietOpts()) // default CacheEntries > 0
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	lease, err := reg.Acquire(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Close()
	cq, ok := lease.(server.CacheOnlyQuerier)
	if !ok {
		t.Fatal("lease does not implement CacheOnlyQuerier")
	}
	if _, hit := cq.QueryCached([]int{0, 1}, core.CME); hit {
		t.Error("cold cache reported a hit")
	}
	mustQuery(t, lease) // populates the cache for {0,1}/CME
	tab, hit := cq.QueryCached([]int{0, 1}, core.CME)
	if !hit || tab == nil {
		t.Fatalf("warm cache miss (hit=%v tab=%v)", hit, tab)
	}
}
