package accuracy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"priview/internal/marginal"
)

func tbl(attrs []int, cells ...float64) *marginal.Table {
	t := marginal.New(attrs)
	copy(t.Cells, cells)
	return t
}

func TestL2AndNormalized(t *testing.T) {
	a := tbl([]int{0}, 3, 0)
	b := tbl([]int{0}, 0, 4)
	if got := L2Error(a, b); got != 5 {
		t.Errorf("L2Error = %v, want 5", got)
	}
	if got := NormalizedL2Error(a, b, 10); got != 0.5 {
		t.Errorf("NormalizedL2Error = %v, want 0.5", got)
	}
}

func TestNormalizedL2PanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NormalizedL2Error(tbl([]int{0}, 1, 1), tbl([]int{0}, 1, 1), 0)
}

func TestKLDivergence(t *testing.T) {
	p := tbl([]int{0}, 50, 50)
	q := tbl([]int{0}, 25, 75)
	want := 0.5*math.Log(0.5/0.25) + 0.5*math.Log(0.5/0.75)
	if got := KLDivergence(p, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", got, want)
	}
	if got := KLDivergence(p, p); got != 0 {
		t.Errorf("KL(P||P) = %v, want 0", got)
	}
}

func TestKLInfiniteOnZeroSupport(t *testing.T) {
	p := tbl([]int{0}, 1, 1)
	q := tbl([]int{0}, 0, 2)
	if got := KLDivergence(p, q); !math.IsInf(got, 1) {
		t.Errorf("KL = %v, want +Inf", got)
	}
}

func TestJSDivergenceSymmetricAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := marginal.New([]int{0, 1, 2})
		q := marginal.New([]int{0, 1, 2})
		for i := range p.Cells {
			p.Cells[i] = r.Float64()
			q.Cells[i] = r.Float64()
		}
		a := JSDivergence(p, q)
		b := JSDivergence(q, p)
		return math.Abs(a-b) < 1e-12 && a >= 0 && a <= math.Log(2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJSDivergenceIdentical(t *testing.T) {
	p := tbl([]int{0, 1}, 1, 2, 3, 4)
	if got := JSDivergence(p, p); got != 0 {
		t.Errorf("JS(P||P) = %v, want 0", got)
	}
}

func TestJSDivergenceDisjointSupport(t *testing.T) {
	// Disjoint distributions reach the ln 2 maximum.
	p := tbl([]int{0}, 1, 0)
	q := tbl([]int{0}, 0, 1)
	if got := JSDivergence(p, q); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("JS = %v, want ln 2", got)
	}
}

func TestJSDivergenceFiniteWhereKLIsNot(t *testing.T) {
	p := tbl([]int{0}, 1, 1)
	q := tbl([]int{0}, 0, 2)
	if got := JSDivergence(p, q); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("JS = %v, want finite", got)
	}
}

func TestSummarize(t *testing.T) {
	c := Summarize([]float64{1, 2, 3, 4, 5})
	if c.Median != 3 || c.Mean != 3 {
		t.Errorf("median=%v mean=%v, want 3, 3", c.Median, c.Mean)
	}
	if c.P25 != 2 || c.P75 != 4 {
		t.Errorf("P25=%v P75=%v, want 2, 4", c.P25, c.P75)
	}
	if math.Abs(c.P95-4.8) > 1e-12 {
		t.Errorf("P95=%v, want 4.8", c.P95)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	c := Summarize([]float64{7})
	if c.P25 != 7 || c.Median != 7 || c.P95 != 7 || c.Mean != 7 {
		t.Errorf("singleton candlestick = %+v", c)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentileEdges(t *testing.T) {
	s := []float64{10, 20, 30}
	if Percentile(s, 0) != 10 || Percentile(s, 1) != 30 {
		t.Error("extreme percentiles wrong")
	}
	if got := Percentile(s, 0.5); got != 20 {
		t.Errorf("P50 = %v, want 20", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	// Zeros floored, not fatal.
	if got := GeoMean([]float64{0, 1}); got <= 0 {
		t.Errorf("GeoMean with zero = %v", got)
	}
}

func TestEmptySamplesPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { Summarize(nil) },
		func() { Percentile(nil, 0.5) },
		func() { GeoMean(nil) },
	} {
		func() {
			defer func() { _ = recover() }()
			fn()
			t.Error("expected panic on empty sample")
		}()
	}
}
