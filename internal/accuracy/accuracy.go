// Package accuracy implements the paper's two error measures — L2 error
// distance (optionally normalized by dataset size) and Jensen–Shannon
// divergence between normalized marginals — plus the candlestick
// summaries (25th/50th/75th/95th percentile and mean) used in every
// figure.
package accuracy

import (
	"math"
	"sort"

	"priview/internal/marginal"
)

// L2Error returns the L2 distance between a reconstructed marginal and
// the true one.
func L2Error(recon, truth *marginal.Table) float64 {
	return marginal.L2Distance(recon, truth)
}

// NormalizedL2Error divides the L2 error by n (the dataset size) so that
// errors are comparable across datasets, exactly as the paper plots.
func NormalizedL2Error(recon, truth *marginal.Table, n float64) float64 {
	if n <= 0 {
		panic("accuracy: normalization requires n > 0")
	}
	return marginal.L2Distance(recon, truth) / n
}

// KLDivergence returns D_KL(P || Q) in nats over the two normalized
// tables. Cells where P is zero contribute nothing; cells where Q is
// zero but P is not make the divergence infinite.
func KLDivergence(p, q *marginal.Table) float64 {
	if !marginal.SameAttrs(p.Attrs, q.Attrs) {
		panic("accuracy: KL over mismatched attribute sets")
	}
	pn := p.Normalized()
	qn := q.Normalized()
	d := 0.0
	for i := range pn.Cells {
		pi := pn.Cells[i]
		//lint:ignore floatcmp x·log x → 0 as x → 0, so only an exactly zero cell may be skipped
		if pi == 0 {
			continue
		}
		qi := qn.Cells[i]
		//lint:ignore floatcmp KL is infinite only when Q's cell is exactly zero; a tolerance would misreport near-zero support
		if qi == 0 {
			return math.Inf(1)
		}
		d += pi * math.Log(pi/qi)
	}
	return d
}

// JSDivergence returns the Jensen–Shannon divergence between the
// normalized tables (Eq. 1 in the paper): a symmetrized, smoothed KL
// that is always finite and bounded by ln 2.
func JSDivergence(p, q *marginal.Table) float64 {
	if !marginal.SameAttrs(p.Attrs, q.Attrs) {
		panic("accuracy: JS over mismatched attribute sets")
	}
	pn := p.Normalized()
	qn := q.Normalized()
	m := pn.Clone()
	m.AddInto(qn)
	m.Scale(0.5)
	half := func(a *marginal.Table) float64 {
		d := 0.0
		for i := range a.Cells {
			ai := a.Cells[i]
			//lint:ignore floatcmp x·log x → 0 as x → 0, so only an exactly zero cell may be skipped
			if ai == 0 {
				continue
			}
			d += ai * math.Log(ai/m.Cells[i])
		}
		return d
	}
	return 0.5*half(pn) + 0.5*half(qn)
}

// Candlestick is the five-number profile the paper plots for each
// method/setting: quartiles, the 95th percentile, and the mean.
type Candlestick struct {
	P25, Median, P75, P95, Mean float64
}

// Summarize computes the candlestick of a non-empty sample. Percentiles
// use linear interpolation between order statistics.
func Summarize(samples []float64) Candlestick {
	if len(samples) == 0 {
		panic("accuracy: empty sample")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Candlestick{
		P25:    Percentile(s, 0.25),
		Median: Percentile(s, 0.50),
		P75:    Percentile(s, 0.75),
		P95:    Percentile(s, 0.95),
		Mean:   sum / float64(len(s)),
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// sample using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("accuracy: empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of positive samples; zero or
// negative entries are floored at a tiny positive value so a single
// lucky zero-error run cannot zero the aggregate.
func GeoMean(samples []float64) float64 {
	if len(samples) == 0 {
		panic("accuracy: empty sample")
	}
	const floor = 1e-300
	sum := 0.0
	for _, v := range samples {
		if v < floor {
			v = floor
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(samples)))
}
