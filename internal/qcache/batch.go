package qcache

import (
	"context"
	"fmt"

	"priview/internal/marginal"
	"priview/internal/reconstruct"
)

// Result pairs one answer with its per-key error for batch lookups. The
// error contract matches Do: a nil Err with a table is a clean answer
// (cacheable), a non-nil Err with a table is a degraded answer (served,
// never cached), and a nil table reports a failure for that key.
type Result struct {
	Table *marginal.Table
	Err   error
}

// DoBatch is Do for many keys at once. Each key resolves independently
// — from the store, by joining an in-flight solve started by any other
// caller (batch or single), or by becoming part of this call's leader
// set — and compute is invoked once per round with exactly the keys
// this caller leads, so a batch landing on a cold cache turns into one
// batched solve instead of len(keys) sequential ones. Duplicate keys
// in one call resolve to one solve and per-caller clones.
//
// The singleflight protocol is shared with Do: a flight started here
// coalesces concurrent single queries and vice versa, and when a
// joined flight's leader is canceled, this caller retries the key on
// the next round (becoming its leader) as long as its own ctx is live.
//
// compute receives the missing keys and must return one Result per key
// in order. The clean-only policy applies per member: a degraded
// Result (Err matching reconstruct.ErrNumerical) is passed through to
// waiters but never stored, so one poisoned member cannot pin a bad
// table while the rest of the batch caches normally.
//
// When ctx ends — or compute fails as a whole, e.g. a canceled batch
// solve — DoBatch returns the error and no results; its in-flight
// leads are failed so waiters retry or fail on their own contexts.
func (c *Cache) DoBatch(ctx context.Context, keys []Key, compute func(ctx context.Context, miss []Key) ([]Result, error)) ([]Result, error) {
	// Distinct keys still unresolved; duplicates fan back out at the
	// end.
	pending := make([]Key, 0, len(keys))
	seen := make(map[Key]bool, len(keys))
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			pending = append(pending, k)
		}
	}
	resolved := make(map[Key]Result, len(pending))
	for len(pending) > 0 {
		if err := reconstruct.ContextErr(ctx); err != nil {
			return nil, err
		}
		var hitKeys []Key
		var hitTables []*marginal.Table
		var leads, joins []Key
		var leadFl, joinFl []*flight
		c.mu.Lock()
		for _, k := range pending {
			if el, ok := c.items[k]; ok {
				c.ll.MoveToFront(el)
				c.hits.Inc()
				hitKeys = append(hitKeys, k)
				hitTables = append(hitTables, el.Value.(*entry).table)
				continue
			}
			if f, ok := c.flights[k]; ok {
				c.coalesced.Inc()
				joins = append(joins, k)
				joinFl = append(joinFl, f)
				continue
			}
			f := &flight{done: make(chan struct{})}
			c.flights[k] = f
			c.misses.Inc()
			leads = append(leads, k)
			leadFl = append(leadFl, f)
		}
		c.mu.Unlock()
		// Safe to clone outside the lock: stored tables are never
		// mutated, and eviction only drops the reference.
		for i, k := range hitKeys {
			resolved[k] = Result{Table: hitTables[i].Clone()}
		}
		if len(leads) > 0 {
			results, err := c.leadBatch(ctx, leads, leadFl, compute)
			if err != nil {
				return nil, err
			}
			for i, k := range leads {
				resolved[k] = results[i]
			}
		}
		var retry []Key
		for i, k := range joins {
			f := joinFl[i]
			select {
			case <-ctx.Done():
				return nil, reconstruct.ContextErr(ctx)
			case <-f.done:
			}
			if canceledErr(f.err) {
				// The leader gave up before finishing; our context is
				// live, so take the key over next round.
				retry = append(retry, k)
				continue
			}
			if f.table == nil {
				resolved[k] = Result{Err: f.err}
			} else {
				resolved[k] = Result{Table: f.table.Clone(), Err: f.err}
			}
		}
		pending = retry
	}
	out := make([]Result, len(keys))
	used := make(map[Key]bool, len(resolved))
	for i, k := range keys {
		r := resolved[k]
		if used[k] && r.Table != nil {
			r = Result{Table: r.Table.Clone(), Err: r.Err}
		}
		used[k] = true
		out[i] = r
	}
	return out, nil
}

// leadBatch runs compute for the keys this caller leads and settles
// their flights: clean members are stored, degraded members passed
// through uncached, and a whole-compute failure (or panic) fails every
// flight so waiters never hang.
func (c *Cache) leadBatch(ctx context.Context, leads []Key, fl []*flight, compute func(ctx context.Context, miss []Key) ([]Result, error)) (out []Result, err error) {
	completed := false
	defer func() {
		if !completed {
			// compute panicked. Fail the flights so waiters don't hang,
			// then let the panic propagate to this caller's recovery.
			for i, f := range fl {
				f.err = fmt.Errorf("qcache: leader panicked during batch compute")
				c.finish(leads[i], f, nil)
			}
		}
	}()
	results, cerr := compute(ctx, leads)
	if cerr == nil && len(results) != len(leads) {
		cerr = fmt.Errorf("qcache: batch compute returned %d results for %d keys", len(results), len(leads))
	}
	completed = true
	if cerr != nil {
		for i, f := range fl {
			f.err = cerr
			c.finish(leads[i], f, nil)
		}
		return nil, cerr
	}
	out = make([]Result, len(leads))
	for i, f := range fl {
		r := results[i]
		var shared *marginal.Table
		if r.Table != nil {
			// One immutable copy serves both the cache and the waiters;
			// this caller keeps the original.
			shared = r.Table.Clone()
		}
		f.table, f.err = shared, r.Err
		var store *marginal.Table
		if r.Err == nil && shared != nil {
			store = shared
		}
		c.finish(leads[i], f, store)
		out[i] = r
	}
	return out, nil
}
