package qcache_test

import (
	"context"
	"testing"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/qcache"
)

// benchSynopsis is a Kosarak-like d=32 release whose 8-way query is NOT
// covered by a single view, so the uncached path runs a real IPF solve
// — the workload the cache exists for.
func benchSynopsis(b *testing.B) (*core.Synopsis, []int) {
	b.Helper()
	data := synth.Kosarak(20000, 42)
	dg := covering.Best(32, 8, 2, 1, 2)
	syn := core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg}, noise.NewStream(43))
	attrs := []int{0, 4, 9, 13, 17, 22, 26, 30}
	return syn, attrs
}

// BenchmarkQueryUncached is the baseline: every iteration re-runs the
// full maximum-entropy solve, exactly what the serving path did before
// the cache existed.
func BenchmarkQueryUncached(b *testing.B) {
	syn, attrs := benchSynopsis(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := syn.QueryMethodContext(ctx, attrs, core.CME); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCached measures the steady-state hit path: after one
// warming solve, each iteration is a lock + map lookup + defensive
// clone. The only allocations are the clone's three (table struct,
// attrs, cells) — zero new solver state.
func BenchmarkQueryCached(b *testing.B) {
	syn, attrs := benchSynopsis(b)
	ctx := context.Background()
	cache := qcache.New(1024, 64<<20)
	key, ok := qcache.KeyFor(attrs, int(core.CME))
	if !ok {
		b.Fatal("bench attrs not maskable")
	}
	compute := func(ctx context.Context) (*marginal.Table, error) {
		return syn.QueryMethodContext(ctx, attrs, core.CME)
	}
	if _, err := cache.Do(ctx, key, compute); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Do(ctx, key, compute); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != uint64(b.N) {
		b.Fatalf("stats = %+v, want pure hits after the warming miss", st)
	}
}

// BenchmarkQueryCachedParallel exercises the hit path under contention:
// GOMAXPROCS goroutines hammering one hot key.
func BenchmarkQueryCachedParallel(b *testing.B) {
	syn, attrs := benchSynopsis(b)
	cache := qcache.New(1024, 64<<20)
	key, ok := qcache.KeyFor(attrs, int(core.CME))
	if !ok {
		b.Fatal("bench attrs not maskable")
	}
	compute := func(ctx context.Context) (*marginal.Table, error) {
		return syn.QueryMethodContext(ctx, attrs, core.CME)
	}
	if _, err := cache.Do(context.Background(), key, compute); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			if _, err := cache.Do(ctx, key, compute); err != nil {
				b.Fatal(err)
			}
		}
	})
}
