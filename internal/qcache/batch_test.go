package qcache_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"priview/internal/marginal"
	"priview/internal/qcache"
	"priview/internal/reconstruct"
)

// batchCompute returns a DoBatch compute that answers every miss with a
// fresh table and counts the keys it was asked to solve.
func batchCompute(solved *[][]qcache.Key) func(context.Context, []qcache.Key) ([]qcache.Result, error) {
	return func(_ context.Context, miss []qcache.Key) ([]qcache.Result, error) {
		*solved = append(*solved, append([]qcache.Key(nil), miss...))
		out := make([]qcache.Result, len(miss))
		for i, k := range miss {
			out[i] = qcache.Result{Table: table(k.Mask.Attrs(), float64(k.Method))}
		}
		return out, nil
	}
}

// TestDoBatchColdAndWarm verifies a cold batch turns into one compute
// over its distinct keys, and a warm repeat into zero.
func TestDoBatchColdAndWarm(t *testing.T) {
	c := qcache.New(16, 0)
	keys := []qcache.Key{
		mustKey(t, []int{0, 1}, 0),
		mustKey(t, []int{2}, 0),
		mustKey(t, []int{1, 0}, 0), // duplicate of the first
	}
	var solved [][]qcache.Key
	res, err := c.DoBatch(context.Background(), keys, batchCompute(&solved))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if len(solved) != 1 || len(solved[0]) != 2 {
		t.Fatalf("cold batch computed %v, want one round of 2 distinct keys", solved)
	}
	if !marginal.Equal(res[0].Table, res[2].Table, 0) {
		t.Error("duplicate keys got different answers")
	}
	if res[0].Table == res[2].Table {
		t.Error("duplicate keys alias one table")
	}
	solved = nil
	if _, err := c.DoBatch(context.Background(), keys, batchCompute(&solved)); err != nil {
		t.Fatal(err)
	}
	if len(solved) != 0 {
		t.Fatalf("warm batch still computed %v", solved)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses != 2 {
		t.Errorf("stats after warm repeat: %+v", st)
	}
}

// TestDoBatchCleanOnlyPerMember verifies the clean-only policy applies
// per batch member: the degraded member is served but recomputed on the
// next call while its clean sibling hits.
func TestDoBatchCleanOnlyPerMember(t *testing.T) {
	c := qcache.New(16, 0)
	good := mustKey(t, []int{0}, 0)
	bad := mustKey(t, []int{1}, 0)
	degraded := &reconstruct.NumericalError{Solver: "maxent", Iter: 3, Quantity: "residual", Value: math.NaN()}
	calls := 0
	compute := func(_ context.Context, miss []qcache.Key) ([]qcache.Result, error) {
		out := make([]qcache.Result, len(miss))
		for i, k := range miss {
			calls++
			r := qcache.Result{Table: table(k.Mask.Attrs(), 1)}
			if k == bad {
				r.Err = degraded
			}
			out[i] = r
		}
		return out, nil
	}
	res, err := c.DoBatch(context.Background(), []qcache.Key{good, bad}, compute)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[1].Err == nil || !errors.Is(res[1].Err, reconstruct.ErrNumerical) {
		t.Fatalf("first round errs: %v, %v", res[0].Err, res[1].Err)
	}
	if res[1].Table == nil {
		t.Fatal("degraded member lost its table")
	}
	if calls != 2 {
		t.Fatalf("first round: %d computes", calls)
	}
	if _, err := c.DoBatch(context.Background(), []qcache.Key{good, bad}, compute); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("second round: %d computes total, want 3 (degraded member never cached)", calls)
	}
}

// TestDoBatchWholeComputeFailure verifies a failing compute fails the
// whole batch and no waiter hangs on the failed flights.
func TestDoBatchWholeComputeFailure(t *testing.T) {
	c := qcache.New(16, 0)
	boom := fmt.Errorf("solver exploded")
	k := mustKey(t, []int{0}, 0)
	_, err := c.DoBatch(context.Background(), []qcache.Key{k},
		func(context.Context, []qcache.Key) ([]qcache.Result, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	// The flight must be settled: a fresh call leads again rather than
	// joining a dead flight.
	var solved [][]qcache.Key
	if _, err := c.DoBatch(context.Background(), []qcache.Key{k}, batchCompute(&solved)); err != nil {
		t.Fatal(err)
	}
	if len(solved) != 1 {
		t.Fatal("flight from the failed batch was not settled")
	}
}

// TestDoBatchResultCountMismatch verifies the leader guards against a
// compute returning the wrong shape instead of mis-assigning answers.
func TestDoBatchResultCountMismatch(t *testing.T) {
	c := qcache.New(16, 0)
	k := mustKey(t, []int{0}, 0)
	_, err := c.DoBatch(context.Background(), []qcache.Key{k},
		func(context.Context, []qcache.Key) ([]qcache.Result, error) { return []qcache.Result{}, nil })
	if err == nil {
		t.Fatal("count mismatch not rejected")
	}
}

// TestDoBatchCoalescesWithDo verifies cross-protocol singleflight: a
// single Do in flight is joined by a batch member (and not recomputed),
// sharing one solve between the two protocols.
func TestDoBatchCoalescesWithDo(t *testing.T) {
	c := qcache.New(16, 0)
	k := mustKey(t, []int{0, 2}, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Do(context.Background(), k, func(context.Context) (*marginal.Table, error) {
			close(started)
			<-release
			return table([]int{0, 2}, 7), nil
		})
		if err != nil {
			t.Errorf("Do: %v", err)
		}
	}()
	<-started
	var batchErr error
	var batchRes []qcache.Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		batchRes, batchErr = c.DoBatch(context.Background(), []qcache.Key{k},
			func(context.Context, []qcache.Key) ([]qcache.Result, error) {
				t.Error("batch recomputed a key already in flight")
				return nil, fmt.Errorf("unexpected compute")
			})
	}()
	// Release the leader only after the batch has joined its flight
	// (coalesced ticks during the batch's lock pass, before it waits);
	// releasing earlier would let the leader finish first and turn the
	// join into a plain cache hit.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	if len(batchRes) != 1 || batchRes[0].Table == nil {
		t.Fatalf("joined result: %+v", batchRes)
	}
	if got := c.Stats().Coalesced; got != 1 {
		t.Errorf("coalesced = %d, want 1", got)
	}
}

// TestDoBatchCanceled verifies a canceled context fails the batch with
// the reconstruct sentinel and no results.
func TestDoBatchCanceled(t *testing.T) {
	c := qcache.New(16, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.DoBatch(ctx, []qcache.Key{mustKey(t, []int{0}, 0)},
		func(context.Context, []qcache.Key) ([]qcache.Result, error) {
			t.Error("compute ran under a canceled context")
			return nil, nil
		})
	if res != nil || !errors.Is(err, reconstruct.ErrCanceled) {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
