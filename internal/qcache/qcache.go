// Package qcache memoizes marginal reconstructions. A published PriView
// synopsis is immutable, so every query answer is a pure function of
// (attribute set, estimator) — the post-processing property (§2 of the
// paper) guarantees that re-serving a stored answer costs no privacy
// budget. The cache turns the serving path's dominant cost, a full
// IPF/Dykstra/simplex solve per request, into a map lookup for repeated
// queries.
//
// Three policies shape the design:
//
//   - Bounded LRU: entries are evicted least-recently-used, bounded by
//     both entry count and approximate bytes, so a high-cardinality
//     query stream cannot grow the cache without limit.
//   - Singleflight: N concurrent identical queries run one solve; the
//     rest wait and share the answer. A leader whose context is
//     canceled hands off — waiters with live contexts retry (one
//     becomes the new leader) and the canceled error is never cached
//     or propagated to them.
//   - Clean-only: answers produced by the numerical fallback chain
//     (reconstruct.ErrNumerical) are served to the callers that asked
//     but never cached, so a transiently degraded answer cannot be
//     pinned and re-served after the condition clears.
//
// Cached tables are immutable inside the cache; every caller receives
// its own defensive clone, so no caller can corrupt another's answer.
package qcache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"priview/internal/attrset"
	"priview/internal/marginal"
	"priview/internal/reconstruct"
	"priview/internal/telemetry"
)

// Key identifies one memoizable query: the attribute set as an
// attrset.Set (the repo-wide d < 64 invariant, also relied on by
// internal/consistency's closure computation) plus the estimator,
// carried as its integer value so this package does not depend on
// internal/core.
type Key struct {
	// Mask is the queried attribute set.
	Mask attrset.Set
	// Method is the estimator (int value of core.ReconstructMethod).
	Method int
}

// KeyFor builds the cache key for a query. ok is false when the query
// is not maskable — an attribute outside [0, 64) or a duplicate — in
// which case the caller should bypass the cache rather than conflate
// distinct queries.
func KeyFor(attrs []int, method int) (key Key, ok bool) {
	m, err := attrset.FromAttrs(attrs)
	if err != nil {
		return Key{}, false
	}
	return Key{Mask: m, Method: method}, true
}

// Budget is a byte accountant shared by several caches — the
// multi-tenant registry gives every tenant cache its own LRU and entry
// bound but makes them all draw from one global byte pool, so the sum
// of cached table memory across tenants stays under one cap no matter
// how many tenants are resident. A cache that cannot reserve bytes
// evicts from its own tail first (tenant-local LRU pressure, never a
// neighbor's entries) and, if still over, serves the table uncached.
//
// A nil *Budget is valid everywhere and means "no shared accounting".
type Budget struct {
	mu    sync.Mutex
	total int64
	used  int64
}

// NewBudget returns a shared byte budget. total ≤ 0 means unlimited
// (the budget still accounts usage, for observability).
func NewBudget(total int64) *Budget {
	return &Budget{total: total}
}

// Total returns the configured cap (≤ 0 = unlimited).
func (b *Budget) Total() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Used returns the bytes currently reserved across all member caches.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// tryReserve reserves n bytes, failing when the cap would be exceeded.
func (b *Budget) tryReserve(n int64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.total > 0 && b.used+n > b.total {
		return false
	}
	b.used += n
	return true
}

// release returns n reserved bytes to the pool.
func (b *Budget) release(n int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
	b.mu.Unlock()
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups answered from a stored table.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that ran a solve (became the leader).
	Misses uint64 `json:"misses"`
	// Evictions counts entries removed to satisfy the bounds.
	Evictions uint64 `json:"evictions"`
	// Coalesced counts waiters that joined another caller's in-flight
	// solve instead of starting their own.
	Coalesced uint64 `json:"coalesced"`
	// Entries is the current entry count.
	Entries int `json:"entries"`
	// Bytes is the current approximate memory footprint of the stored
	// tables.
	Bytes int64 `json:"bytes"`
}

// Cache is a bounded, concurrency-safe memoization layer over marginal
// reconstruction. The zero value is not usable; call New.
type Cache struct {
	maxEntries int
	maxBytes   int64
	budget     *Budget // nil = no shared accounting

	// The counters are telemetry handles rather than plain fields: by
	// default each cache gets standalone counters (New), and Instrument
	// swaps in registry-interned ones so a release's hit/miss series
	// accumulates across cache generations (every reload builds a fresh
	// Cache). Stats() and /metrics read the same atomics, so the JSON
	// stats surface and the Prometheus exposition can never disagree.
	hits, misses, evictions, coalesced *telemetry.Counter

	mu      sync.Mutex
	ll      *list.List            // LRU order, front = most recent
	items   map[Key]*list.Element // element values are *entry
	flights map[Key]*flight       // in-progress solves
	bytes   int64
}

type entry struct {
	key   Key
	table *marginal.Table // immutable once stored; cloned on every hit
	bytes int64
}

// flight is one in-progress solve. done is closed exactly once, after
// table/err are set; waiters only read them after <-done.
type flight struct {
	done  chan struct{}
	table *marginal.Table // immutable; cloned per waiter
	err   error
}

// New returns a cache bounded by maxEntries stored tables and maxBytes
// of approximate table memory. A bound ≤ 0 disables that axis; passing
// both ≤ 0 yields an unbounded cache, which is almost never what a
// server wants. A single table larger than maxBytes is served but never
// stored.
func New(maxEntries int, maxBytes int64) *Cache {
	return NewShared(maxEntries, maxBytes, nil)
}

// NewShared is New with the cache's stored bytes additionally accounted
// against a shared Budget (nil behaves like New). When the shared pool
// is exhausted the cache evicts from its own LRU tail to make room —
// never from another budget member — and serves uncached if its own
// entries cannot free enough.
func NewShared(maxEntries int, maxBytes int64, budget *Budget) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		budget:     budget,
		hits:       telemetry.NewCounter(),
		misses:     telemetry.NewCounter(),
		evictions:  telemetry.NewCounter(),
		coalesced:  telemetry.NewCounter(),
		ll:         list.New(),
		items:      make(map[Key]*list.Element),
		flights:    make(map[Key]*flight),
	}
}

// Instrument replaces the cache's counters with shared telemetry
// handles (typically children of a release-labeled CounterVec). Call
// before the cache serves traffic — handle swaps are not synchronized
// with in-flight increments. Passing interned handles makes the
// counter series cumulative across cache rebuilds, which is exactly
// what a Prometheus rate() wants; Stats() then reports the lifetime
// totals of the release, not of this cache generation.
func (c *Cache) Instrument(hits, misses, evictions, coalesced *telemetry.Counter) {
	if hits == nil || misses == nil || evictions == nil || coalesced == nil {
		panic("qcache: Instrument requires four non-nil counters")
	}
	c.hits, c.misses, c.evictions, c.coalesced = hits, misses, evictions, coalesced
}

// Do returns the memoized table for key, or runs compute to produce it.
// Concurrent calls for the same key are coalesced into one compute; the
// result is shared (each caller gets its own clone). compute receives
// the leader's ctx and must honor its cancellation; when the leader is
// canceled mid-solve, waiting callers whose own contexts are still live
// retry — one becomes the new leader — so a canceled leader never
// poisons its followers.
//
// Caching policy: only clean results (err == nil, non-nil table) are
// stored. Degraded answers — compute returning both a table and an
// error such as reconstruct.ErrNumerical — are passed through to every
// waiter of that flight but not cached.
func (c *Cache) Do(ctx context.Context, key Key, compute func(context.Context) (*marginal.Table, error)) (*marginal.Table, error) {
	// The trace records which of the three cache outcomes this request
	// took and how long it spent there; all three stage names feed the
	// priview_stage_seconds histograms. tr is nil when the caller is not
	// tracing (Stage is a nil-safe no-op).
	tr := telemetry.FromContext(ctx)
	var begin time.Time
	if tr != nil {
		begin = time.Now()
	}
	for {
		if err := reconstruct.ContextErr(ctx); err != nil {
			return nil, err
		}
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.hits.Inc()
			t := el.Value.(*entry).table
			c.mu.Unlock()
			if tr != nil {
				tr.Stage("cache.hit", time.Since(begin))
			}
			// Safe to clone outside the lock: stored tables are never
			// mutated, and eviction only drops the reference.
			return t.Clone(), nil
		}
		if f, ok := c.flights[key]; ok {
			c.coalesced.Inc()
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, reconstruct.ContextErr(ctx)
			case <-f.done:
			}
			if tr != nil {
				tr.Stage("cache.join", time.Since(begin))
			}
			if canceledErr(f.err) {
				// The leader gave up before finishing. Our context is
				// live (or the next loop iteration reports it), so go
				// around again and take over the solve.
				continue
			}
			if f.table == nil {
				return nil, f.err
			}
			return f.table.Clone(), f.err
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.misses.Inc()
		c.mu.Unlock()
		return c.lead(ctx, key, f, compute)
	}
}

// Peek returns the stored table for key without computing anything and
// without joining an in-flight solve — the lookup behind brownout's
// cache-hits-only serving mode, where running a solve is exactly what
// must not happen. A hit counts toward Hits and refreshes LRU recency;
// a miss is silent (it never becomes a leader, so it is not a Miss).
func (c *Cache) Peek(key Key) (*marginal.Table, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	t := el.Value.(*entry).table
	c.mu.Unlock()
	// Safe to clone outside the lock: stored tables are never mutated,
	// and eviction only drops the reference.
	return t.Clone(), true
}

// lead runs compute as the flight's leader and publishes the result to
// the cache (clean results only) and to the flight's waiters.
func (c *Cache) lead(ctx context.Context, key Key, f *flight, compute func(context.Context) (*marginal.Table, error)) (t *marginal.Table, err error) {
	completed := false
	defer func() {
		if !completed {
			// compute panicked. Fail the flight so waiters don't hang,
			// then let the panic propagate to this caller's recovery.
			f.err = fmt.Errorf("qcache: leader panicked during compute")
			c.finish(key, f, nil)
		}
	}()
	fillStart := time.Now()
	t, err = compute(ctx)
	completed = true
	telemetry.FromContext(ctx).Stage("cache.fill", time.Since(fillStart))
	var shared *marginal.Table
	if t != nil {
		// One immutable copy serves both the cache and the waiters;
		// the leader's own caller keeps the original, free to mutate.
		shared = t.Clone()
	}
	f.table, f.err = shared, err
	var store *marginal.Table
	if err == nil && shared != nil {
		store = shared
	}
	c.finish(key, f, store)
	return t, err
}

// finish retires the flight and, when store is non-nil, inserts it as a
// cache entry. done is closed after the cache state is settled so a
// released waiter that misses can immediately find the entry.
func (c *Cache) finish(key Key, f *flight, store *marginal.Table) {
	c.mu.Lock()
	delete(c.flights, key)
	if store != nil {
		c.addLocked(key, store)
	}
	c.mu.Unlock()
	close(f.done)
}

// addLocked inserts a table (which must never be mutated afterwards)
// and evicts from the LRU tail until both the local bounds and the
// shared byte budget hold.
func (c *Cache) addLocked(key Key, t *marginal.Table) {
	b := approxBytes(t)
	if c.maxBytes > 0 && b > c.maxBytes {
		return // larger than the whole budget; serve uncached
	}
	if el, ok := c.items[key]; ok {
		// Possible when a bypassing writer raced a flight; keep the
		// newer table.
		c.removeLocked(el)
	}
	// Make room in the shared pool by shedding this cache's own cold
	// tail; other budget members are never touched. If emptying
	// ourselves still cannot free enough, serve the table uncached.
	for !c.budget.tryReserve(b) {
		if !c.evictTailLocked() {
			return
		}
	}
	e := &entry{key: key, table: t, bytes: b}
	c.items[key] = c.ll.PushFront(e)
	c.bytes += e.bytes
	for (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		if !c.evictTailLocked() {
			return
		}
	}
}

// removeLocked drops one entry, returning its bytes to the shared pool.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
	c.budget.release(e.bytes)
}

// evictTailLocked evicts the least-recently-used entry, reporting
// whether there was one.
func (c *Cache) evictTailLocked() bool {
	back := c.ll.Back()
	if back == nil {
		return false
	}
	c.removeLocked(back)
	c.evictions.Inc()
	return true
}

// Keys returns the cached query keys, most recently used first. The
// registry uses this for cache-warm handoff: when a cold tenant is
// re-admitted after eviction, the keys that were hot at eviction time
// are replayed to pre-fill the fresh cache.
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]Key, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}

// Purge drops every stored entry, returning their bytes to the shared
// budget, and reports how many entries were dropped. In-flight solves
// are unaffected (their results will be stored into the now-empty
// cache). The registry calls this when evicting a cold tenant so the
// tenant's quota is returned to the global pool immediately rather
// than when the garbage collector gets around to it.
func (c *Cache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		c.budget.release(el.Value.(*entry).bytes)
	}
	c.ll.Init()
	c.items = make(map[Key]*list.Element)
	c.bytes = 0
	return n
}

// Stats returns a snapshot of the counters and current occupancy. The
// counters are read from the same telemetry handles /metrics exposes;
// after Instrument they cover the release's lifetime, not just this
// cache generation.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Coalesced: c.coalesced.Value(),
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}

// Len returns the current number of stored tables.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// approxBytes estimates a table's memory footprint: cells and attrs
// backing arrays plus slice/struct overhead.
func approxBytes(t *marginal.Table) int64 {
	return int64(8*len(t.Cells) + 8*len(t.Attrs) + 64)
}

// canceledErr reports whether a flight failed because its leader's
// context ended — the one class of error a waiter must not inherit,
// because the waiter's own context may still be live.
func canceledErr(err error) bool {
	return err != nil && (errors.Is(err, reconstruct.ErrCanceled) ||
		errors.Is(err, reconstruct.ErrDeadline) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded))
}
