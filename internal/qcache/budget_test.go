package qcache_test

import (
	"context"
	"testing"

	"priview/internal/qcache"
)

// fill stores a clean answer for attrs into c and returns its key.
func fill(t *testing.T, c *qcache.Cache, attrs []int) qcache.Key {
	t.Helper()
	k := mustKey(t, attrs, 0)
	if _, err := c.Do(context.Background(), k, constant(table(attrs, 1))); err != nil {
		t.Fatalf("Do(%v): %v", attrs, err)
	}
	return k
}

// TestBudgetSharedAcrossCaches proves the multi-tenant invariant: two
// caches drawing from one budget never hold more bytes in total than
// the budget's cap, and pressure from one cache evicts only that
// cache's own entries.
func TestBudgetSharedAcrossCaches(t *testing.T) {
	// Each 2-attr table costs 8*4 + 8*2 + 64 = 112 bytes; a budget of
	// 300 holds two tables but not three.
	budget := qcache.NewBudget(300)
	a := qcache.NewShared(0, 0, budget)
	b := qcache.NewShared(0, 0, budget)

	fill(t, a, []int{0, 1})
	fill(t, a, []int{2, 3})
	if got := budget.Used(); got != 224 {
		t.Fatalf("budget used = %d, want 224", got)
	}
	// b's store cannot reserve; it may only evict its own (empty) tail,
	// so the answer is served uncached and a's entries survive.
	fill(t, b, []int{4, 5})
	if got := b.Len(); got != 0 {
		t.Errorf("cache b stored %d entries with the pool exhausted, want 0 (uncached)", got)
	}
	if got := a.Len(); got != 2 {
		t.Errorf("cache a lost entries to b's pressure: len = %d, want 2", got)
	}

	// Once a frees its share, b can cache again.
	a.Purge()
	if got := budget.Used(); got != 0 {
		t.Fatalf("budget used after purge = %d, want 0", got)
	}
	fill(t, b, []int{4, 5})
	if got := b.Len(); got != 1 {
		t.Errorf("cache b len after pool freed = %d, want 1", got)
	}
}

// TestBudgetPressureEvictsOwnTail proves a cache under shared-pool
// pressure sheds its own LRU tail to make room for a new entry.
func TestBudgetPressureEvictsOwnTail(t *testing.T) {
	budget := qcache.NewBudget(300) // two 112-byte tables fit, three do not
	c := qcache.NewShared(0, 0, budget)
	k1 := fill(t, c, []int{0, 1})
	fill(t, c, []int{2, 3})
	fill(t, c, []int{4, 5}) // must evict k1, the tail
	if got := c.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	keys := c.Keys()
	for _, k := range keys {
		if k == k1 {
			t.Errorf("tail entry %v survived budget-pressure eviction", k1)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

// TestKeysMRUOrder proves Keys returns most-recently-used first — the
// order the warm handoff replays them in, hottest first.
func TestKeysMRUOrder(t *testing.T) {
	c := qcache.New(0, 0)
	k1 := fill(t, c, []int{0})
	k2 := fill(t, c, []int{1})
	k3 := fill(t, c, []int{2})
	// Touch k1 so it becomes most recent.
	if _, err := c.Do(context.Background(), k1, constant(table([]int{0}, 1))); err != nil {
		t.Fatal(err)
	}
	got := c.Keys()
	want := []qcache.Key{k1, k3, k2}
	if len(got) != len(want) {
		t.Fatalf("Keys len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

// TestPurgeReleasesbudget proves Purge empties the cache, returns the
// bytes to the shared pool, and leaves the cache usable.
func TestPurgeReleasesBudget(t *testing.T) {
	budget := qcache.NewBudget(1 << 20)
	c := qcache.NewShared(0, 0, budget)
	fill(t, c, []int{0, 1})
	fill(t, c, []int{2, 3})
	if budget.Used() == 0 {
		t.Fatal("budget unused after two stores")
	}
	if n := c.Purge(); n != 2 {
		t.Fatalf("Purge dropped %d entries, want 2", n)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("len after purge = %d, want 0", got)
	}
	if got := budget.Used(); got != 0 {
		t.Fatalf("budget used after purge = %d, want 0", got)
	}
	fill(t, c, []int{0, 1})
	if got := c.Len(); got != 1 {
		t.Fatalf("cache unusable after purge: len = %d, want 1", got)
	}
}

// TestNilBudgetIsUnlimited proves the nil-Budget path (every existing
// caller) is untouched by the shared accounting.
func TestNilBudgetIsUnlimited(t *testing.T) {
	c := qcache.NewShared(0, 0, nil)
	for i := 0; i < 8; i++ {
		fill(t, c, []int{i, i + 8})
	}
	if got := c.Len(); got != 8 {
		t.Fatalf("len = %d, want 8", got)
	}
}
