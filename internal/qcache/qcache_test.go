package qcache_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"priview/internal/marginal"
	"priview/internal/qcache"
	"priview/internal/reconstruct"
)

func table(attrs []int, base float64) *marginal.Table {
	t := marginal.New(attrs)
	for i := range t.Cells {
		t.Cells[i] = base + float64(i)
	}
	return t
}

func constant(t *marginal.Table) func(context.Context) (*marginal.Table, error) {
	return func(context.Context) (*marginal.Table, error) { return t.Clone(), nil }
}

func mustKey(t *testing.T, attrs []int, method int) qcache.Key {
	t.Helper()
	k, ok := qcache.KeyFor(attrs, method)
	if !ok {
		t.Fatalf("KeyFor(%v, %d) not maskable", attrs, method)
	}
	return k
}

func TestKeyFor(t *testing.T) {
	k1 := mustKey(t, []int{0, 3, 63}, 0)
	if k1.Mask != 1|1<<3|1<<63 {
		t.Errorf("mask = %b", k1.Mask)
	}
	k2 := mustKey(t, []int{3, 0, 63}, 0)
	if k1 != k2 {
		t.Error("key must be order-independent")
	}
	if k3 := mustKey(t, []int{0, 3, 63}, 2); k3 == k1 {
		t.Error("method must distinguish keys")
	}
	for _, bad := range [][]int{{-1}, {64}, {5, 5}} {
		if _, ok := qcache.KeyFor(bad, 0); ok {
			t.Errorf("KeyFor(%v) = ok, want not maskable", bad)
		}
	}
	if _, ok := qcache.KeyFor(nil, 0); !ok {
		t.Error("empty attribute set is maskable (the total query)")
	}
}

func TestHitReturnsDefensiveClone(t *testing.T) {
	c := qcache.New(8, 0)
	ctx := context.Background()
	key := mustKey(t, []int{0, 1}, 0)
	src := table([]int{0, 1}, 1)
	first, err := c.Do(ctx, key, constant(src))
	if err != nil {
		t.Fatal(err)
	}
	first.Cells[0] = math.Inf(1) // a hostile caller scribbles on its answer
	second, err := c.Do(ctx, key, func(context.Context) (*marginal.Table, error) {
		t.Fatal("second call must be a hit")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !marginal.Equal(second, src, 0) {
		t.Errorf("cached answer corrupted by caller mutation: %v", second)
	}
	second.Cells[1] = -1
	third, err := c.Do(ctx, key, constant(src))
	if err != nil {
		t.Fatal(err)
	}
	if !marginal.Equal(third, src, 0) {
		t.Error("hit must hand out independent clones")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss, 2 hits", st)
	}
}

func TestLRUEvictsByEntryCount(t *testing.T) {
	c := qcache.New(2, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		attrs := []int{i}
		_, err := c.Do(ctx, mustKey(t, attrs, 0), constant(table(attrs, 1)))
		if err != nil {
			t.Fatal(err)
		}
	}
	// Key {0} is the LRU victim; {1} and {2} remain.
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries, 1 eviction", st)
	}
	ran := false
	_, err := c.Do(ctx, mustKey(t, []int{0}, 0), func(context.Context) (*marginal.Table, error) {
		ran = true
		return table([]int{0}, 1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("evicted key served from cache")
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	c := qcache.New(2, 0)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Do(ctx, mustKey(t, []int{i}, 0), constant(table([]int{i}, 1))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch {0} so {1} becomes the LRU victim.
	if _, err := c.Do(ctx, mustKey(t, []int{0}, 0), constant(table([]int{0}, 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(ctx, mustKey(t, []int{2}, 0), constant(table([]int{2}, 1))); err != nil {
		t.Fatal(err)
	}
	ran := false
	_, err := c.Do(ctx, mustKey(t, []int{0}, 0), func(context.Context) (*marginal.Table, error) {
		ran = true
		return table([]int{0}, 1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("recently-hit key was evicted before the stale one")
	}
}

func TestBytesBound(t *testing.T) {
	// Each 2-attr table is 4 cells ≈ 8*4 + 8*2 + 64 = 112 bytes; a
	// 300-byte budget holds two.
	c := qcache.New(0, 300)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		attrs := []int{2 * i, 2*i + 1}
		if _, err := c.Do(ctx, mustKey(t, attrs, 0), constant(table(attrs, 1))); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries, 1 eviction", st)
	}
	if st.Bytes > 300 {
		t.Errorf("bytes = %d over the 300 budget", st.Bytes)
	}
}

func TestOversizedTableNotCached(t *testing.T) {
	c := qcache.New(0, 100) // smaller than any 2-attr table
	ctx := context.Background()
	key := mustKey(t, []int{0, 1}, 0)
	calls := 0
	compute := func(context.Context) (*marginal.Table, error) {
		calls++
		return table([]int{0, 1}, 1), nil
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Do(ctx, key, compute); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Errorf("oversized result was cached (%d computes)", calls)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d, want 0", st.Entries)
	}
}

func TestDegradedServedNotCached(t *testing.T) {
	c := qcache.New(8, 0)
	ctx := context.Background()
	key := mustKey(t, []int{0, 1}, 0)
	degraded := &reconstruct.NumericalError{Solver: "maxent", Iter: 3, Quantity: "residual", Value: math.NaN()}
	calls := 0
	compute := func(context.Context) (*marginal.Table, error) {
		calls++
		return table([]int{0, 1}, float64(calls)), degraded
	}
	for i := 1; i <= 2; i++ {
		got, err := c.Do(ctx, key, compute)
		if !errors.Is(err, reconstruct.ErrNumerical) {
			t.Fatalf("err = %v, want ErrNumerical passthrough", err)
		}
		if got == nil || got.Cells[0] != float64(i) {
			t.Fatalf("call %d: degraded table not served fresh: %v", i, got)
		}
	}
	if calls != 2 {
		t.Errorf("degraded answer was cached (%d computes)", calls)
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 0 entries, 2 misses", st)
	}
}

func TestNilErrorResultNotCached(t *testing.T) {
	c := qcache.New(8, 0)
	ctx := context.Background()
	key := mustKey(t, []int{0}, 0)
	boom := errors.New("solver exploded")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := c.Do(ctx, key, func(context.Context) (*marginal.Table, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want passthrough", err)
		}
	}
	if calls != 2 {
		t.Errorf("hard failure was cached (%d computes)", calls)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := qcache.New(8, 0)
	key := mustKey(t, []int{0, 1, 2}, 0)
	var computes atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	compute := func(context.Context) (*marginal.Table, error) {
		computes.Add(1)
		close(entered)
		<-release
		return table([]int{0, 1, 2}, 7), nil
	}
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*marginal.Table, waiters)
	errs := make([]error, waiters)
	// One leader enters compute; the rest must coalesce behind it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = c.Do(context.Background(), key, compute)
	}()
	<-entered
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Do(context.Background(), key, compute)
		}(i)
	}
	// Wait until every follower is parked on the flight.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes, want 1 (singleflight)", n)
	}
	want := table([]int{0, 1, 2}, 7)
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if !marginal.Equal(results[i], want, 0) {
			t.Fatalf("waiter %d got wrong table", i)
		}
	}
	for i := 1; i < waiters; i++ {
		if results[i] == results[0] {
			t.Fatal("waiters must not share one table pointer")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != waiters-1 {
		t.Errorf("stats = %+v, want 1 miss, %d coalesced", st, waiters-1)
	}
}

// TestCanceledLeaderHandsOff is the singleflight correctness core: a
// leader canceled mid-solve must not fail its followers. A follower
// with a live context retries, becomes the new leader, and completes;
// the canceled leader's error is never cached.
func TestCanceledLeaderHandsOff(t *testing.T) {
	c := qcache.New(8, 0)
	key := mustKey(t, []int{0, 1}, 0)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	entered := make(chan struct{})
	var computes atomic.Int32
	compute := func(ctx context.Context) (*marginal.Table, error) {
		if computes.Add(1) == 1 {
			close(entered)
			<-ctx.Done() // the leader blocks until canceled
			return nil, reconstruct.ContextErr(ctx)
		}
		return table([]int{0, 1}, 3), nil
	}
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Do(leaderCtx, key, compute)
		leaderErr <- err
	}()
	<-entered
	followerDone := make(chan error, 1)
	var followerGot *marginal.Table
	go func() {
		var err error
		followerGot, err = c.Do(context.Background(), key, compute)
		followerDone <- err
	}()
	// Park the follower on the leader's flight, then cancel the leader.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never coalesced: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, reconstruct.ErrCanceled) {
		t.Fatalf("leader err = %v, want ErrCanceled", err)
	}
	select {
	case err := <-followerDone:
		if err != nil {
			t.Fatalf("follower with a live context got %v, want a handed-off solve", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower wedged after leader cancellation")
	}
	if followerGot == nil || followerGot.Cells[0] != 3 {
		t.Fatalf("follower table = %v", followerGot)
	}
	if n := computes.Load(); n != 2 {
		t.Errorf("%d computes, want 2 (canceled leader + retrying follower)", n)
	}
	// The retried solve was clean, so it — and only it — is cached.
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	_, err := c.Do(context.Background(), key, func(context.Context) (*marginal.Table, error) {
		t.Fatal("post-handoff lookup must hit")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCanceledFollowerReturnsPromptly: a follower whose own context
// dies while waiting gets its own cancellation error without waiting
// for the leader.
func TestCanceledFollowerReturnsPromptly(t *testing.T) {
	c := qcache.New(8, 0)
	key := mustKey(t, []int{0}, 0)
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, err := c.Do(context.Background(), key, func(context.Context) (*marginal.Table, error) {
			close(entered)
			<-release
			return table([]int{0}, 1), nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-entered
	followerCtx, cancelFollower := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(followerCtx, key, func(context.Context) (*marginal.Table, error) {
			return table([]int{0}, 1), nil
		})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never coalesced: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancelFollower()
	select {
	case err := <-done:
		if !errors.Is(err, reconstruct.ErrCanceled) {
			t.Errorf("follower err = %v, want its own ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled follower stayed parked behind a live leader")
	}
}

func TestLeaderPanicDoesNotWedgeFollowers(t *testing.T) {
	c := qcache.New(8, 0)
	key := mustKey(t, []int{0, 2}, 0)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic swallowed")
			}
		}()
		_, err := c.Do(context.Background(), key, func(context.Context) (*marginal.Table, error) {
			close(entered)
			<-release
			panic("solver bug")
		})
		_ = err
	}()
	<-entered
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), key, func(context.Context) (*marginal.Table, error) {
			return nil, errors.New("follower should see the flight error, not recompute here")
		})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never coalesced: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	select {
	case err := <-done:
		if err == nil {
			t.Error("follower of a panicked leader must get an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower wedged after leader panic")
	}
}

// TestConcurrentMixedKeysRace is the package's -race gate: many
// goroutines hammer overlapping keys through hits, misses, coalescing
// and eviction at once, then the counters must reconcile.
func TestConcurrentMixedKeysRace(t *testing.T) {
	c := qcache.New(4, 0) // small: force evictions under load
	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				attrs := []int{(w + i) % 6, 6 + i%3}
				key := mustKey(t, attrs, i%2)
				got, err := c.Do(context.Background(), key, func(context.Context) (*marginal.Table, error) {
					return table(attrs, float64(key.Method)), nil
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				want := table(attrs, float64(key.Method))
				if !marginal.Equal(got, want, 0) {
					t.Errorf("worker %d: wrong table for %v", w, attrs)
					return
				}
				got.Cells[0] = -999 // must never reach another caller
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if got := st.Hits + st.Misses + st.Coalesced; got != workers*perWorker {
		t.Errorf("hits+misses+coalesced = %d, want %d; stats %+v", got, workers*perWorker, st)
	}
	if st.Entries > 4 {
		t.Errorf("entries = %d over the bound", st.Entries)
	}
}

func TestStatsString(t *testing.T) {
	// Stats must be JSON-encodable for /v1/stats; spot-check the shape.
	st := qcache.Stats{Hits: 1, Misses: 2, Evictions: 3, Coalesced: 4, Entries: 5, Bytes: 6}
	s := fmt.Sprintf("%+v", st)
	if s == "" {
		t.Fatal("unformattable stats")
	}
}
