package categorical

import (
	"encoding/json"
	"fmt"
	"io"
)

// synopsisFile is the on-disk JSON form of a categorical synopsis.
type synopsisFile struct {
	Format  string     `json:"format"`
	Epsilon float64    `json:"epsilon"`
	Total   float64    `json:"total"`
	Schema  []int      `json:"schema"`
	Views   []viewFile `json:"views"`
}

type viewFile struct {
	Attrs []int     `json:"attrs"`
	Cards []int     `json:"cards"`
	Cells []float64 `json:"cells"`
}

const synopsisFormat = "priview-categorical-synopsis-v1"

// Save serializes the synopsis as JSON (post-processed views only).
func (s *Synopsis) Save(w io.Writer) error {
	f := synopsisFile{
		Format:  synopsisFormat,
		Epsilon: s.cfg.Epsilon,
		Total:   s.total,
		Schema:  s.schema,
	}
	for _, v := range s.views {
		f.Views = append(f.Views, viewFile{Attrs: v.Attrs, Cards: v.Cards, Cells: v.Cells})
	}
	return json.NewEncoder(w).Encode(&f)
}

// Load reads a synopsis previously written with Save.
func Load(r io.Reader) (*Synopsis, error) {
	var f synopsisFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("categorical: decoding synopsis: %w", err)
	}
	if f.Format != synopsisFormat {
		return nil, fmt.Errorf("categorical: unknown synopsis format %q", f.Format)
	}
	schema := Schema(f.Schema)
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(f.Views) == 0 {
		return nil, fmt.Errorf("categorical: synopsis has no views")
	}
	views := make([]*Table, len(f.Views))
	for i, vf := range f.Views {
		if len(vf.Attrs) != len(vf.Cards) {
			return nil, fmt.Errorf("categorical: view %d attrs/cards misaligned", i)
		}
		t := NewTable(vf.Attrs, vf.Cards)
		if len(vf.Cells) != t.Size() {
			return nil, fmt.Errorf("categorical: view %d has %d cells, want %d", i, len(vf.Cells), t.Size())
		}
		// Cross-check cards against the schema.
		for j, a := range t.Attrs {
			if a < 0 || a >= len(schema) {
				return nil, fmt.Errorf("categorical: view %d attribute %d out of schema range", i, a)
			}
			if t.Cards[j] != schema[a] {
				return nil, fmt.Errorf("categorical: view %d attribute %d has cardinality %d, schema says %d", i, a, t.Cards[j], schema[a])
			}
		}
		copy(t.Cells, vf.Cells)
		views[i] = t
	}
	return &Synopsis{
		cfg:    Config{Epsilon: f.Epsilon},
		schema: schema,
		views:  views,
		total:  f.Total,
	}, nil
}
