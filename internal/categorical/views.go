package categorical

import (
	"fmt"
	"math"
	"sort"

	"priview/internal/noise"
)

// RecommendedCellBudget returns the paper's §4.7 guideline range for
// the number of cells per view when every attribute has roughly b
// values: [pair-objective minimizer, triple-objective minimizer] of
// √s / (log_b s · (log_b s − 1) [· (log_b s − 2)]).
func RecommendedCellBudget(b int) (lo, hi int) {
	if b < 2 {
		panic("categorical: cardinality must be at least 2")
	}
	logb := math.Log(float64(b))
	pair := func(s float64) float64 {
		u := math.Log(s) / logb
		if u <= 1 {
			return math.Inf(1)
		}
		return math.Sqrt(s) / (u * (u - 1))
	}
	triple := func(s float64) float64 {
		u := math.Log(s) / logb
		if u <= 2 {
			return math.Inf(1)
		}
		return math.Sqrt(s) / (u * (u - 1) * (u - 2))
	}
	argmin := func(f func(float64) float64) int {
		bestS, bestV := 0.0, math.Inf(1)
		for s := 8.0; s <= 200000; s *= 1.01 {
			if v := f(s); v < bestV {
				bestV, bestS = v, s
			}
		}
		return int(bestS)
	}
	return argmin(pair), argmin(triple)
}

// GreedyPairViews selects views for a categorical schema: blocks of
// attributes whose marginal has at most cellBudget cells, together
// covering every attribute pair (t=2, the paper's recommendation for
// categorical data). Greedy block growth prefers attributes covering
// the most uncovered pairs; ties break randomly via rng.
func GreedyPairViews(schema Schema, cellBudget int, rng *noise.Stream) [][]int {
	if err := schema.Validate(); err != nil {
		panic(fmt.Sprintf("categorical: GreedyPairViews: %v", err))
	}
	d := len(schema)
	// A view must hold at least one pair of attributes: check the two
	// smallest cardinalities against the budget.
	smallest := [2]int{1 << 30, 1 << 30}
	for _, c := range schema {
		if c < smallest[0] {
			smallest[1] = smallest[0]
			smallest[0] = c
		} else if c < smallest[1] {
			smallest[1] = c
		}
	}
	if d >= 2 && cellBudget < smallest[0]*smallest[1] {
		panic(fmt.Sprintf("categorical: cell budget %d cannot hold any attribute pair", cellBudget))
	}

	covered := make([][]bool, d)
	for i := range covered {
		covered[i] = make([]bool, d)
	}
	uncoveredCount := d * (d - 1) / 2
	if d == 1 {
		return [][]int{{0}}
	}
	var views [][]int
	for uncoveredCount > 0 {
		// Seed the block with an uncovered pair.
		var block []int
		cells := 1
	seek:
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if !covered[i][j] {
					block = []int{i, j}
					cells = schema[i] * schema[j]
					break seek
				}
			}
		}
		inBlock := make([]bool, d)
		for _, a := range block {
			inBlock[a] = true
		}
		// Grow while the budget allows, preferring attributes covering
		// the most uncovered pairs with current members.
		for {
			best, bestGain := -1, 0
			start := rng.Intn(d)
			for off := 0; off < d; off++ {
				a := (start + off) % d
				if inBlock[a] || cells*schema[a] > cellBudget {
					continue
				}
				gain := 0
				for _, m := range block {
					lo, hi := a, m
					if lo > hi {
						lo, hi = hi, lo
					}
					if !covered[lo][hi] {
						gain++
					}
				}
				if gain > bestGain {
					bestGain, best = gain, a
				}
			}
			if best < 0 || bestGain == 0 {
				break
			}
			block = append(block, best)
			inBlock[best] = true
			cells *= schema[best]
		}
		sort.Ints(block)
		for i := 0; i < len(block); i++ {
			for j := i + 1; j < len(block); j++ {
				if !covered[block[i]][block[j]] {
					covered[block[i]][block[j]] = true
					uncoveredCount--
				}
			}
		}
		views = append(views, block)
	}
	return views
}

// VerifyPairCover checks that the views cover every attribute pair and
// respect the cell budget.
func VerifyPairCover(schema Schema, views [][]int, cellBudget int) error {
	d := len(schema)
	covered := make([][]bool, d)
	for i := range covered {
		covered[i] = make([]bool, d)
	}
	for vi, v := range views {
		cells := 1
		for _, a := range v {
			if a < 0 || a >= d {
				return fmt.Errorf("categorical: view %d has out-of-range attribute %d", vi, a)
			}
			cells *= schema[a]
		}
		if cells > cellBudget {
			return fmt.Errorf("categorical: view %d has %d cells, budget %d", vi, cells, cellBudget)
		}
		for i := 0; i < len(v); i++ {
			for j := i + 1; j < len(v); j++ {
				covered[v[i]][v[j]] = true
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if !covered[i][j] {
				return fmt.Errorf("categorical: pair (%d,%d) uncovered", i, j)
			}
		}
	}
	return nil
}
