package categorical

// MaxEnt reconstructs the maximum-entropy marginal over the given
// attributes (with cardinalities from the schema) subject to the
// constraint marginals, by iterative proportional fitting — the direct
// generalization of the binary reconstruction (§4.3 applied as §4.7
// prescribes).
func MaxEnt(attrs, cards []int, total float64, cons []*Table, maxIter int, tol float64) *Table {
	if maxIter <= 0 {
		maxIter = 500
	}
	if tol <= 0 {
		tol = 1e-9
	}
	t := NewTable(attrs, cards)
	if total <= 0 {
		return t
	}
	t.Fill(total / float64(t.Size()))
	cons = maximalConstraints(cons)
	if len(cons) == 0 {
		return t
	}
	type prepared struct {
		target *Table
		pos    []int
	}
	prep := make([]prepared, len(cons))
	for i, c := range cons {
		s := c.Clone()
		// Sanitize: clamp negatives, rescale to the common total.
		sum := 0.0
		for j, v := range s.Cells {
			if v < 0 {
				s.Cells[j] = 0
			} else {
				sum += v
			}
		}
		if sum > 0 {
			s.Scale(total / sum)
		} else {
			s.Fill(total / float64(s.Size()))
		}
		prep[i] = prepared{target: s, pos: t.positions(s.Attrs)}
	}
	absTol := tol * total
	for iter := 0; iter < maxIter; iter++ {
		worst := 0.0
		for _, p := range prep {
			proj := make([]float64, p.target.Size())
			for ci, v := range t.Cells {
				proj[t.restrictIndex(ci, p.pos, p.target.strides)] += v
			}
			for ci := range t.Cells {
				b := t.restrictIndex(ci, p.pos, p.target.strides)
				cur, want := proj[b], p.target.Cells[b]
				if d := abs(cur - want); d > worst {
					worst = d
				}
				switch {
				case cur > 0:
					t.Cells[ci] *= want / cur
				case want > 0:
					t.Cells[ci] = want * float64(p.target.Size()) / float64(t.Size())
				default:
					t.Cells[ci] = 0
				}
			}
		}
		if worst < absTol {
			break
		}
	}
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// maximalConstraints drops constraints whose attribute set is contained
// in another constraint's, and averages exact-duplicate sets.
func maximalConstraints(cons []*Table) []*Table {
	byKey := map[string][]*Table{}
	var order []string
	key := func(attrs []int) string {
		b := make([]byte, 0, len(attrs)*3)
		for _, a := range attrs {
			b = append(b, byte(a), ',')
		}
		return string(b)
	}
	for _, c := range cons {
		k := key(c.Attrs)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], c)
	}
	merged := make([]*Table, 0, len(order))
	for _, k := range order {
		group := byKey[k]
		avg := group[0].Clone()
		for _, c := range group[1:] {
			avg.AddInto(c)
		}
		avg.Scale(1 / float64(len(group)))
		merged = append(merged, avg)
	}
	var out []*Table
	for i, c := range merged {
		maximal := true
		for j, o := range merged {
			if i != j && len(o.Attrs) > len(c.Attrs) && subsetOf(c.Attrs, o.Attrs) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, c)
		}
	}
	return out
}
