package categorical

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"priview/internal/noise"
)

func TestNewTableMixedRadix(t *testing.T) {
	tab := NewTable([]int{3, 1}, []int{4, 3}) // attr1 card 3, attr3 card 4
	if tab.Attrs[0] != 1 || tab.Attrs[1] != 3 {
		t.Fatalf("attrs = %v, want sorted", tab.Attrs)
	}
	if tab.Cards[0] != 3 || tab.Cards[1] != 4 {
		t.Fatalf("cards = %v misaligned after sort", tab.Cards)
	}
	if tab.Size() != 12 {
		t.Fatalf("size = %d, want 12", tab.Size())
	}
}

func TestNewTableRejections(t *testing.T) {
	for name, fn := range map[string]func(){
		"misaligned":  func() { NewTable([]int{0, 1}, []int{2}) },
		"cardinality": func() { NewTable([]int{0}, []int{1}) },
		"duplicate":   func() { NewTable([]int{0, 0}, []int{2, 2}) },
	} {
		func() {
			defer func() { _ = recover() }()
			fn()
			t.Errorf("%s: expected panic", name)
		}()
	}
}

func TestIndexValuesRoundTrip(t *testing.T) {
	tab := NewTable([]int{0, 1, 2}, []int{3, 2, 4})
	for idx := 0; idx < tab.Size(); idx++ {
		if got := tab.Index(tab.Values(idx)); got != idx {
			t.Fatalf("Index(Values(%d)) = %d", idx, got)
		}
	}
}

func TestIndexRejectsOutOfRange(t *testing.T) {
	tab := NewTable([]int{0}, []int{3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.Index([]int{3})
}

func TestProjectCategorical(t *testing.T) {
	tab := NewTable([]int{0, 1}, []int{3, 2})
	// Cells indexed v0 + 3*v1.
	for idx := range tab.Cells {
		tab.Cells[idx] = float64(idx + 1)
	}
	p := tab.Project([]int{0})
	// v0=0: idx 0 + idx 3 = 1 + 4; v0=1: 2+5; v0=2: 3+6.
	want := []float64{5, 7, 9}
	for i := range want {
		if p.Cells[i] != want[i] {
			t.Errorf("projection = %v, want %v", p.Cells, want)
			break
		}
	}
	if math.Abs(p.Total()-tab.Total()) > 1e-9 {
		t.Error("projection changed total")
	}
}

func TestProjectionComposes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := NewTable([]int{0, 1, 2}, []int{3, 4, 2})
		for i := range tab.Cells {
			tab.Cells[i] = r.Float64() * 10
		}
		direct := tab.Project([]int{2})
		staged := tab.Project([]int{1, 2}).Project([]int{2})
		for i := range direct.Cells {
			if math.Abs(direct.Cells[i]-staged.Cells[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDatasetMarginal(t *testing.T) {
	schema := Schema{3, 2, 4}
	records := [][]uint8{{0, 1, 3}, {0, 1, 3}, {2, 0, 1}}
	data, err := NewDataset(schema, records)
	if err != nil {
		t.Fatal(err)
	}
	m := data.Marginal([]int{0, 2})
	// (0,3) appears twice: index 0 + 3*3 = 9.
	if m.Cells[9] != 2 {
		t.Errorf("cell (0,3) = %v, want 2", m.Cells[9])
	}
	if m.Total() != 3 {
		t.Errorf("total = %v", m.Total())
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, err := NewDataset(Schema{1}, nil); err == nil {
		t.Error("accepted cardinality 1")
	}
	if _, err := NewDataset(Schema{2}, [][]uint8{{0, 1}}); err == nil {
		t.Error("accepted wrong record width")
	}
	if _, err := NewDataset(Schema{2}, [][]uint8{{2}}); err == nil {
		t.Error("accepted out-of-range value")
	}
	if _, err := NewDataset(nil, nil); err == nil {
		t.Error("accepted empty schema")
	}
}

func TestMutualOnSetCategorical(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	mk := func(attrs, cards []int) *Table {
		tab := NewTable(attrs, cards)
		for i := range tab.Cells {
			tab.Cells[i] = r.Float64() * 10
		}
		return tab
	}
	v1 := mk([]int{0, 1}, []int{3, 2})
	v2 := mk([]int{1, 2}, []int{2, 4})
	// Equalize totals first (consistency on ∅), so that the later step
	// is in Lemma 1's regime: consistent on A ⊆ B before the B step.
	MutualOnSet([]*Table{v1, v2}, nil)
	before1 := v1.Project([]int{0})
	MutualOnSet([]*Table{v1, v2}, []int{1})
	p1 := v1.Project([]int{1})
	p2 := v2.Project([]int{1})
	for i := range p1.Cells {
		if math.Abs(p1.Cells[i]-p2.Cells[i]) > 1e-9 {
			t.Fatal("views disagree on shared attribute after MutualOnSet")
		}
	}
	// Lemma 1: the marginal over attributes outside the shared set is
	// untouched.
	after1 := v1.Project([]int{0})
	for i := range before1.Cells {
		if math.Abs(before1.Cells[i]-after1.Cells[i]) > 1e-9 {
			t.Fatal("MutualOnSet changed an unrelated marginal")
		}
	}
}

func TestOverallCategorical(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(attrs, cards []int) *Table {
			tab := NewTable(attrs, cards)
			for i := range tab.Cells {
				tab.Cells[i] = r.Float64() * 10
			}
			return tab
		}
		views := []*Table{
			mk([]int{0, 1}, []int{3, 2}),
			mk([]int{1, 2}, []int{2, 3}),
			mk([]int{0, 2}, []int{3, 3}),
		}
		Overall(views)
		return IsPairwiseConsistent(views, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRippleCategorical(t *testing.T) {
	tab := NewTable([]int{0, 1}, []int{3, 3})
	for i := range tab.Cells {
		tab.Cells[i] = 5
	}
	tab.Cells[4] = -9
	total := tab.Total()
	Ripple(tab, 0.5)
	if math.Abs(tab.Total()-total) > 1e-9 {
		t.Errorf("Ripple changed total %v -> %v", total, tab.Total())
	}
	for i, v := range tab.Cells {
		if v < -0.5 {
			t.Errorf("cell %d = %v below -θ", i, v)
		}
	}
	if tab.Cells[4] != 0 {
		t.Errorf("negative cell not zeroed: %v", tab.Cells[4])
	}
}

func TestRippleNeighborsShareEvenly(t *testing.T) {
	// Single negative cell in a 3x2 table: 3-1 + 2-1 = 3 neighbors each
	// lose |c|/3.
	tab := NewTable([]int{0, 1}, []int{3, 2})
	tab.Fill(10)
	tab.Cells[0] = -3
	Ripple(tab, 0.5)
	// Neighbors of cell (0,0): (1,0) idx1, (2,0) idx2, (0,1) idx3.
	for _, idx := range []int{1, 2, 3} {
		if math.Abs(tab.Cells[idx]-9) > 1e-9 {
			t.Errorf("neighbor %d = %v, want 9", idx, tab.Cells[idx])
		}
	}
	if tab.Cells[4] != 10 || tab.Cells[5] != 10 {
		t.Errorf("non-neighbors changed: %v", tab.Cells)
	}
}

func TestMaxEntCategoricalConditionalIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	joint := NewTable([]int{0, 1, 2}, []int{3, 2, 3})
	for i := range joint.Cells {
		joint.Cells[i] = 0.2 + r.Float64()
	}
	c01 := joint.Project([]int{0, 1})
	c12 := joint.Project([]int{1, 2})
	p1 := joint.Project([]int{1})
	got := MaxEnt([]int{0, 1, 2}, []int{3, 2, 3}, joint.Total(), []*Table{c01, c12}, 0, 0)
	// Closed form: P(a,b,c) = P(a,b)P(b,c)/P(b).
	total := joint.Total()
	for idx := range got.Cells {
		vals := got.Values(idx)
		a, b, c := vals[0], vals[1], vals[2]
		want := (c01.Cells[c01.Index([]int{a, b})] / total) *
			(c12.Cells[c12.Index([]int{b, c})] / total) /
			(p1.Cells[b] / total) * total
		if math.Abs(got.Cells[idx]-want) > 1e-5*total {
			t.Fatalf("cell %v: got %v, want %v", vals, got.Cells[idx], want)
		}
	}
}

func TestMaxEntCategoricalSatisfiesConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	joint := NewTable([]int{0, 1, 2}, []int{4, 3, 2})
	for i := range joint.Cells {
		joint.Cells[i] = r.Float64() * 20
	}
	cons := []*Table{joint.Project([]int{0, 1}), joint.Project([]int{2})}
	got := MaxEnt([]int{0, 1, 2}, []int{4, 3, 2}, joint.Total(), cons, 0, 0)
	for _, c := range cons {
		p := got.Project(c.Attrs)
		for i := range p.Cells {
			if math.Abs(p.Cells[i]-c.Cells[i]) > 1e-4 {
				t.Fatalf("constraint over %v violated: %v vs %v", c.Attrs, p.Cells[i], c.Cells[i])
			}
		}
	}
}

func TestRecommendedCellBudgetMatchesPaperTable(t *testing.T) {
	// §4.7: b=2: 100-1000, b=3: 150-2000, b=4: 200-3200, b=5: 250-5000.
	// Our minimizers land near those figures (the paper rounds
	// aggressively); allow a factor-2 band.
	cases := map[int][2]int{2: {100, 1000}, 3: {150, 2000}, 4: {200, 3200}, 5: {250, 5000}}
	for b, want := range cases {
		lo, hi := RecommendedCellBudget(b)
		if float64(lo) < float64(want[0])/2.5 || float64(lo) > float64(want[0])*2.5 {
			t.Errorf("b=%d: lo=%d, paper %d", b, lo, want[0])
		}
		if float64(hi) < float64(want[1])/2.5 || float64(hi) > float64(want[1])*2.5 {
			t.Errorf("b=%d: hi=%d, paper %d", b, hi, want[1])
		}
	}
}

func TestGreedyPairViews(t *testing.T) {
	schema := Schema{3, 4, 2, 5, 3, 2, 4, 3}
	views := GreedyPairViews(schema, 200, noise.NewStream(1))
	if err := VerifyPairCover(schema, views, 200); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPairViewsTightBudget(t *testing.T) {
	schema := Schema{5, 5, 5, 5}
	// Budget 25: each view holds exactly one pair.
	views := GreedyPairViews(schema, 25, noise.NewStream(2))
	if err := VerifyPairCover(schema, views, 25); err != nil {
		t.Fatal(err)
	}
	if len(views) != 6 {
		t.Errorf("%d views, want 6 (all pairs)", len(views))
	}
}

func TestGreedyPairViewsImpossibleBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for budget below any pair")
		}
	}()
	GreedyPairViews(Schema{5, 5}, 24, noise.NewStream(1))
}

func TestSynopsisEndToEnd(t *testing.T) {
	schema := Schema{3, 4, 2, 3, 5, 2}
	data := SynthSurvey(schema, 30000, 1)
	syn := BuildSynopsis(data, Config{Epsilon: 1.0, CellBudget: 120}, noise.NewStream(2))
	if !IsPairwiseConsistent(syn.Views(), 1e-6) {
		t.Error("synopsis views inconsistent")
	}
	// Covered pair: small error.
	q := []int{0, 1}
	got := syn.Query(q)
	truth := data.Marginal(q)
	if err := L2Distance(got, truth) / float64(data.Len()); err > 0.05 {
		t.Errorf("pair error %v too large", err)
	}
	// Cross-view triple: maxent reconstruction must beat the uniform
	// baseline comfortably.
	q3 := []int{0, 3, 4}
	got3 := syn.Query(q3)
	truth3 := data.Marginal(q3)
	uniform := NewTable(q3, []int{3, 3, 5})
	uniform.Fill(float64(data.Len()) / float64(uniform.Size()))
	if L2Distance(got3, truth3) >= L2Distance(uniform, truth3) {
		t.Errorf("maxent (%v) no better than uniform (%v)",
			L2Distance(got3, truth3), L2Distance(uniform, truth3))
	}
}

func TestSynopsisNoNoise(t *testing.T) {
	schema := Schema{3, 3, 3, 3}
	data := SynthSurvey(schema, 5000, 3)
	syn := BuildSynopsis(data, Config{NoNoise: true, CellBudget: 81}, noise.NewStream(4))
	q := []int{0, 1}
	got := syn.Query(q)
	truth := data.Marginal(q)
	if L2Distance(got, truth) > 1e-6 {
		t.Errorf("noise-free covered query error %v", L2Distance(got, truth))
	}
}

func TestSynopsisDefaultBudget(t *testing.T) {
	schema := Schema{3, 3, 4, 2, 3}
	data := SynthSurvey(schema, 2000, 5)
	syn := BuildSynopsis(data, Config{Epsilon: 1}, noise.NewStream(6))
	if len(syn.Views()) == 0 {
		t.Fatal("no views chosen")
	}
	got := syn.Query([]int{0, 4})
	if got.Size() != 9 {
		t.Errorf("size = %d, want 9", got.Size())
	}
}

func TestSynthSurveyCorrelated(t *testing.T) {
	schema := Schema{4, 4}
	data := SynthSurvey(schema, 40000, 7)
	joint := data.Marginal([]int{0, 1})
	p0 := joint.Project([]int{0})
	p1 := joint.Project([]int{1})
	n := joint.Total()
	// Mutual information must be clearly positive (profiles couple the
	// attributes).
	mi := 0.0
	for idx, v := range joint.Cells {
		if v == 0 {
			continue
		}
		vals := joint.Values(idx)
		pxy := v / n
		px := p0.Cells[vals[0]] / n
		py := p1.Cells[vals[1]] / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	if mi < 0.01 {
		t.Errorf("mutual information %v too small; generator uncorrelated", mi)
	}
}

func TestSynopsisSaveLoad(t *testing.T) {
	schema := Schema{3, 4, 2, 3}
	data := SynthSurvey(schema, 8000, 90)
	orig := BuildSynopsis(data, Config{Epsilon: 1, CellBudget: 72}, noise.NewStream(91))
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Total() != orig.Total() {
		t.Errorf("total %v != %v", loaded.Total(), orig.Total())
	}
	for _, q := range [][]int{{0, 1}, {0, 2, 3}} {
		a := orig.Query(q)
		b := loaded.Query(q)
		if L2Distance(a, b) > 1e-9 {
			t.Errorf("query %v differs after round trip", q)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"{}",
		`{"format":"wrong"}`,
		`{"format":"priview-categorical-synopsis-v1","schema":[3],"views":[]}`,
		`{"format":"priview-categorical-synopsis-v1","schema":[3,2],"views":[{"attrs":[0],"cards":[2],"cells":[1,1]}]}`,
		`{"format":"priview-categorical-synopsis-v1","schema":[3,2],"views":[{"attrs":[0],"cards":[3],"cells":[1]}]}`,
		`{"format":"priview-categorical-synopsis-v1","schema":[3,2],"views":[{"attrs":[5],"cards":[3],"cells":[1,1,1]}]}`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("Load(%q) succeeded, want error", c)
		}
	}
}
