package categorical

import (
	"fmt"

	"priview/internal/noise"
)

// Schema gives the cardinality of each attribute: attribute i takes
// values in {0, ..., Schema[i]-1}.
type Schema []int

// Validate checks that every cardinality is at least 2 and the
// dimensionality is supported.
func (s Schema) Validate() error {
	if len(s) == 0 || len(s) > 64 {
		return fmt.Errorf("categorical: schema has %d attributes (want 1..64)", len(s))
	}
	for i, c := range s {
		if c < 2 {
			return fmt.Errorf("categorical: attribute %d has cardinality %d (< 2)", i, c)
		}
	}
	return nil
}

// Dataset is a collection of categorical records conforming to a
// schema. Records are stored as one byte per attribute (cardinalities
// up to 256 supported).
type Dataset struct {
	schema  Schema
	records [][]uint8
}

// NewDataset wraps records under a schema, validating every value.
func NewDataset(schema Schema, records [][]uint8) (*Dataset, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	for i, c := range schema {
		if c > 256 {
			return nil, fmt.Errorf("categorical: attribute %d cardinality %d exceeds 256", i, c)
		}
	}
	for ri, r := range records {
		if len(r) != len(schema) {
			return nil, fmt.Errorf("categorical: record %d has %d values, want %d", ri, len(r), len(schema))
		}
		for i, v := range r {
			if int(v) >= schema[i] {
				return nil, fmt.Errorf("categorical: record %d value %d out of range for attribute %d", ri, v, i)
			}
		}
	}
	return &Dataset{schema: schema, records: records}, nil
}

// Schema returns the dataset's schema. Callers must not mutate it.
func (d *Dataset) Schema() Schema { return d.schema }

// Dim returns the number of attributes.
func (d *Dataset) Dim() int { return len(d.schema) }

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.records) }

// Marginal computes the exact marginal table over the given attributes.
func (d *Dataset) Marginal(attrs []int) *Table {
	sorted := sortedCopy(attrs)
	cards := make([]int, len(sorted))
	for i, a := range sorted {
		if a < 0 || a >= len(d.schema) {
			panic(fmt.Sprintf("categorical: attribute %d out of range", a))
		}
		cards[i] = d.schema[a]
	}
	t := NewTable(sorted, cards)
	values := make([]int, len(sorted))
	for _, r := range d.records {
		for j, a := range sorted {
			values[j] = int(r[a])
		}
		t.Cells[t.Index(values)]++
	}
	return t
}

// SynthSurvey generates a survey-like categorical dataset for tests and
// examples: a handful of latent respondent profiles, each inducing a
// distribution over every question's answers, so attributes are
// correlated through the profile.
func SynthSurvey(schema Schema, n int, seed int64) *Dataset {
	if err := schema.Validate(); err != nil {
		panic(fmt.Sprintf("categorical: SynthSurvey: %v", err))
	}
	rng := noise.NewStream(seed).Derive("survey")
	const profiles = 4
	// Per profile and attribute, a random preferred answer; answers are
	// the preferred one w.p. 0.6, otherwise uniform.
	pref := make([][]int, profiles)
	for p := range pref {
		pref[p] = make([]int, len(schema))
		for i, c := range schema {
			pref[p][i] = rng.Intn(c)
		}
	}
	records := make([][]uint8, n)
	for r := range records {
		p := rng.Intn(profiles)
		rec := make([]uint8, len(schema))
		for i, c := range schema {
			if rng.Float64() < 0.6 {
				rec[i] = uint8(pref[p][i])
			} else {
				rec[i] = uint8(rng.Intn(c))
			}
		}
		records[r] = rec
	}
	d, err := NewDataset(schema, records)
	if err != nil {
		panic(fmt.Sprintf("categorical: SynthSurvey: %v", err))
	}
	return d
}
