// Package categorical implements the paper's §4.7 extension of PriView
// to non-binary categorical attributes. Marginal tables become
// mixed-radix (one dimension per attribute, with per-attribute
// cardinality); the consistency and maximum-entropy machinery carries
// over directly; Ripple non-negativity pulls from cells differing in a
// single attribute *value* rather than a flipped bit; and view selection
// bounds the number of cells per view (s) instead of the attribute
// count, per the paper's guideline table.
package categorical

import (
	"fmt"
	"math"
	"sort"
)

// Table is a marginal contingency table over categorical attributes.
// Cell indexing is mixed-radix: with attributes a_0 < a_1 < ... and
// cardinalities c_0, c_1, ..., the cell for values (v_0, v_1, ...) is
// v_0 + v_1·c_0 + v_2·c_0·c_1 + ....
type Table struct {
	// Attrs lists the attributes, sorted ascending.
	Attrs []int
	// Cards holds the cardinality of each attribute, aligned to Attrs.
	Cards []int
	// Cells holds one count per value combination.
	Cells []float64
	// strides[j] is the index step for attribute j.
	strides []int
}

// NewTable returns a zeroed table over the given attributes and
// cardinalities (aligned pairwise; both are copied and co-sorted by
// attribute).
func NewTable(attrs, cards []int) *Table {
	if len(attrs) != len(cards) {
		panic("categorical: attrs and cards must align")
	}
	idx := make([]int, len(attrs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return attrs[idx[a]] < attrs[idx[b]] })
	sa := make([]int, len(attrs))
	sc := make([]int, len(attrs))
	for i, j := range idx {
		sa[i] = attrs[j]
		sc[i] = cards[j]
	}
	for i := range sa {
		if sc[i] < 2 {
			panic(fmt.Sprintf("categorical: attribute %d has cardinality %d (< 2)", sa[i], sc[i]))
		}
		if i > 0 && sa[i] == sa[i-1] {
			panic(fmt.Sprintf("categorical: duplicate attribute %d", sa[i]))
		}
	}
	size := 1
	strides := make([]int, len(sa))
	for i := range sa {
		strides[i] = size
		size *= sc[i]
		if size > 1<<24 {
			panic("categorical: table too large")
		}
	}
	return &Table{Attrs: sa, Cards: sc, Cells: make([]float64, size), strides: strides}
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	return &Table{
		Attrs:   append([]int(nil), t.Attrs...),
		Cards:   append([]int(nil), t.Cards...),
		Cells:   append([]float64(nil), t.Cells...),
		strides: append([]int(nil), t.strides...),
	}
}

// Dim returns the number of attributes.
func (t *Table) Dim() int { return len(t.Attrs) }

// Size returns the number of cells.
func (t *Table) Size() int { return len(t.Cells) }

// Total returns the sum of all cells.
func (t *Table) Total() float64 {
	s := 0.0
	for _, v := range t.Cells {
		s += v
	}
	return s
}

// Scale multiplies every cell by f.
func (t *Table) Scale(f float64) {
	for i := range t.Cells {
		t.Cells[i] *= f
	}
}

// Fill sets every cell to v.
func (t *Table) Fill(v float64) {
	for i := range t.Cells {
		t.Cells[i] = v
	}
}

// Index returns the cell index for the given attribute values (aligned
// with Attrs).
func (t *Table) Index(values []int) int {
	if len(values) != len(t.Attrs) {
		panic("categorical: value vector length mismatch")
	}
	idx := 0
	for j, v := range values {
		if v < 0 || v >= t.Cards[j] {
			panic(fmt.Sprintf("categorical: value %d out of range for attribute %d (card %d)", v, t.Attrs[j], t.Cards[j]))
		}
		idx += v * t.strides[j]
	}
	return idx
}

// Values decodes a cell index into attribute values (inverse of Index).
func (t *Table) Values(idx int) []int {
	out := make([]int, len(t.Attrs))
	for j := range t.Attrs {
		out[j] = (idx / t.strides[j]) % t.Cards[j]
	}
	return out
}

// positions maps each attribute of sub to its coordinate within t,
// panicking on attributes t does not cover.
func (t *Table) positions(sub []int) []int {
	pos := make([]int, len(sub))
	for i, a := range sub {
		j := sort.SearchInts(t.Attrs, a)
		if j >= len(t.Attrs) || t.Attrs[j] != a {
			panic(fmt.Sprintf("categorical: attribute %d not in table over %v", a, t.Attrs))
		}
		pos[i] = j
	}
	return pos
}

// restrictIndex maps a cell index of t to the index in a table over the
// sub-attributes at coordinate positions pos (ascending), with strides
// subStrides.
func (t *Table) restrictIndex(idx int, pos, subStrides []int) int {
	out := 0
	for j, p := range pos {
		out += ((idx / t.strides[p]) % t.Cards[p]) * subStrides[j]
	}
	return out
}

// Project returns the marginal over sub ⊆ Attrs.
func (t *Table) Project(sub []int) *Table {
	pos := t.positions(sortedCopy(sub))
	cards := make([]int, len(pos))
	attrs := make([]int, len(pos))
	for i, p := range pos {
		attrs[i] = t.Attrs[p]
		cards[i] = t.Cards[p]
	}
	out := NewTable(attrs, cards)
	for i, v := range t.Cells {
		out.Cells[out.restrictSelfIndex(t, i, pos)] += v
	}
	return out
}

// restrictSelfIndex is Project's inner index map using out's strides.
func (out *Table) restrictSelfIndex(src *Table, idx int, pos []int) int {
	o := 0
	for j, p := range pos {
		o += ((idx / src.strides[p]) % src.Cards[p]) * out.strides[j]
	}
	return o
}

func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	return c
}

// AddInto adds src into t; attribute sets must match.
func (t *Table) AddInto(src *Table) {
	if !sameInts(t.Attrs, src.Attrs) {
		panic("categorical: AddInto over mismatched attributes")
	}
	for i := range t.Cells {
		t.Cells[i] += src.Cells[i]
	}
}

// L2Distance returns the Euclidean distance between two tables over the
// same attributes.
func L2Distance(a, b *Table) float64 {
	if !sameInts(a.Attrs, b.Attrs) {
		panic("categorical: L2Distance over mismatched attributes")
	}
	s := 0.0
	for i := range a.Cells {
		d := a.Cells[i] - b.Cells[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetOf reports whether sorted a ⊆ sorted b.
func subsetOf(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// intersect returns the sorted intersection of two sorted slices.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
