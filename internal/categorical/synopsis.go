package categorical

import (
	"fmt"

	"priview/internal/noise"
)

// Config controls categorical synopsis construction.
type Config struct {
	// Epsilon is the total privacy budget (required unless NoNoise).
	Epsilon float64
	// Views are the attribute blocks. If nil, GreedyPairViews with
	// CellBudget chooses them.
	Views [][]int
	// CellBudget bounds cells per view when Views is nil; 0 picks the
	// §4.7 guideline for the schema's median cardinality.
	CellBudget int
	// RippleTheta is the non-negativity tolerance (default 0.5).
	RippleTheta float64
	// NoNoise skips the Laplace step (for coverage-error analysis).
	NoNoise bool
	// MaxIter/Tol tune the maxent solver (defaults 500 / 1e-9).
	MaxIter int
	Tol     float64
}

// Synopsis is a published categorical PriView synopsis.
type Synopsis struct {
	cfg    Config
	schema Schema
	views  []*Table
	total  float64
}

// BuildSynopsis constructs the private synopsis of a categorical
// dataset: noisy view marginals, consistency, Ripple, consistency —
// the binary pipeline with the §4.7 adaptations.
func BuildSynopsis(data *Dataset, cfg Config, src noise.Source) *Synopsis {
	if !cfg.NoNoise && cfg.Epsilon <= 0 {
		panic("categorical: Config.Epsilon must be positive")
	}
	views := cfg.Views
	if views == nil {
		budget := cfg.CellBudget
		if budget <= 0 {
			budget = defaultCellBudget(data.Schema())
		}
		rng, ok := src.(*noise.Stream)
		if !ok {
			rng = noise.NewStream(1)
		}
		views = GreedyPairViews(data.Schema(), budget, rng.Derive("views"))
	}
	w := len(views)
	tables := make([]*Table, w)
	for i, block := range views {
		t := data.Marginal(block)
		if !cfg.NoNoise {
			scale := noise.LaplaceMechScale(float64(w), cfg.Epsilon)
			for c := range t.Cells {
				t.Cells[c] += noise.Laplace(src, scale)
			}
		}
		tables[i] = t
	}
	theta := cfg.RippleTheta
	if theta <= 0 {
		theta = 0.5
	}
	Overall(tables)
	for _, t := range tables {
		Ripple(t, theta)
	}
	Overall(tables)
	total := 0.0
	for _, t := range tables {
		total += t.Total()
	}
	total /= float64(len(tables))
	if total < 0 {
		total = 0
	}
	return &Synopsis{cfg: cfg, schema: data.Schema(), views: tables, total: total}
}

// defaultCellBudget picks the low end of the §4.7 guideline for the
// schema's median cardinality (conservative: smaller views mean less
// noise; coverage error can be bought back with a larger budget).
func defaultCellBudget(schema Schema) int {
	cards := append([]int(nil), schema...)
	for i := 1; i < len(cards); i++ {
		for j := i; j > 0 && cards[j] < cards[j-1]; j-- {
			cards[j], cards[j-1] = cards[j-1], cards[j]
		}
	}
	median := cards[len(cards)/2]
	lo, _ := RecommendedCellBudget(median)
	// Never below the largest pair of cardinalities, or no view could
	// hold a pair.
	maxPair := 1
	if len(cards) >= 2 {
		maxPair = cards[len(cards)-1] * cards[len(cards)-2]
	}
	if lo < maxPair {
		lo = maxPair
	}
	return lo
}

// Views returns the post-processed view tables.
func (s *Synopsis) Views() []*Table { return s.views }

// Total returns the common total count of the consistent views.
func (s *Synopsis) Total() float64 { return s.total }

// Query reconstructs the marginal over attrs: a direct projection when
// one view covers the set, maximum entropy otherwise.
func (s *Synopsis) Query(attrs []int) *Table {
	sorted := sortedCopy(attrs)
	for _, a := range sorted {
		if a < 0 || a >= len(s.schema) {
			panic(fmt.Sprintf("categorical: attribute %d out of range", a))
		}
	}
	for _, v := range s.views {
		if subsetOf(sorted, v.Attrs) {
			return v.Project(sorted)
		}
	}
	var cons []*Table
	for _, v := range s.views {
		shared := intersect(v.Attrs, sorted)
		if len(shared) > 0 {
			cons = append(cons, v.Project(shared))
		}
	}
	cards := make([]int, len(sorted))
	for i, a := range sorted {
		cards[i] = s.schema[a]
	}
	return MaxEnt(sorted, cards, s.total, cons, s.cfg.MaxIter, s.cfg.Tol)
}
