package categorical

import (
	"priview/internal/attrset"
)

// MutualOnSet enforces consistency of the views on attribute set a
// (which every view must cover), exactly as in the binary case: average
// the projections, then update each view additively, spreading each
// correction evenly over the view cells in the corresponding group.
func MutualOnSet(views []*Table, a []int) *Table {
	if len(views) == 0 {
		panic("categorical: no views")
	}
	sorted := sortedCopy(a)
	est := views[0].Project(sorted)
	projections := make([]*Table, len(views))
	projections[0] = est.Clone()
	for i := 1; i < len(views); i++ {
		projections[i] = views[i].Project(sorted)
		est.AddInto(projections[i])
	}
	est.Scale(1 / float64(len(views)))
	for i, v := range views {
		applyEstimate(v, est, projections[i])
	}
	return est
}

func applyEstimate(view, est, proj *Table) {
	pos := view.positions(est.Attrs)
	group := float64(view.Size()) / float64(est.Size())
	corr := make([]float64, est.Size())
	for i := range est.Cells {
		corr[i] = (est.Cells[i] - proj.Cells[i]) / group
	}
	for c := range view.Cells {
		corr2 := corr[view.restrictIndex(c, pos, est.strides)]
		view.Cells[c] += corr2
	}
}

// Overall makes all views mutually consistent by processing the
// intersection closure of their attribute sets in subset order, as in
// the binary implementation. The closure is the shared
// attrset.IntersectionClosure kernel — this package previously carried
// a private copy of the mask/closure machinery, now retired.
func Overall(views []*Table) {
	if len(views) < 2 {
		return
	}
	masks := make([]attrset.Set, len(views))
	for i, v := range views {
		masks[i] = attrset.MustFromAttrs(v.Attrs)
	}
	sets := attrset.IntersectionClosure(masks)
	group := make([]*Table, 0, len(views))
	for _, m := range sets {
		group = group[:0]
		for i, vm := range masks {
			if m.Subset(vm) {
				group = append(group, views[i])
			}
		}
		if len(group) >= 2 {
			MutualOnSet(group, m.Attrs())
		}
	}
}

// IsPairwiseConsistent reports whether all views agree on projections
// onto shared attributes within tol.
func IsPairwiseConsistent(views []*Table, tol float64) bool {
	for i := 0; i < len(views); i++ {
		for j := i + 1; j < len(views); j++ {
			common := intersect(views[i].Attrs, views[j].Attrs)
			pi := views[i].Project(common)
			pj := views[j].Project(common)
			for c := range pi.Cells {
				d := pi.Cells[c] - pj.Cells[c]
				if d < -tol || d > tol {
					return false
				}
			}
		}
	}
	return true
}

// Ripple corrects negative entries the §4.7 way: a cell below −θ is
// zeroed and its mass pulled evenly from all cells differing from it in
// exactly one attribute's value — Σ_j (card_j − 1) neighbors.
func Ripple(t *Table, theta float64) {
	if theta <= 0 {
		panic("categorical: Ripple requires theta > 0")
	}
	if t.Dim() == 0 {
		return
	}
	numNeighbors := 0
	for _, c := range t.Cards {
		numNeighbors += c - 1
	}
	queue := make([]int, 0, len(t.Cells))
	inQueue := make([]bool, len(t.Cells))
	for i, v := range t.Cells {
		if v < -theta {
			queue = append(queue, i)
			inQueue[i] = true
		}
	}
	maxOps := 64 * len(t.Cells) * (numNeighbors + 1)
	ops := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		inQueue[i] = false
		c := t.Cells[i]
		if c >= -theta {
			continue
		}
		t.Cells[i] = 0
		share := -c / float64(numNeighbors)
		for j := range t.Cards {
			cur := (i / t.strides[j]) % t.Cards[j]
			base := i - cur*t.strides[j]
			for v := 0; v < t.Cards[j]; v++ {
				if v == cur {
					continue
				}
				nb := base + v*t.strides[j]
				t.Cells[nb] -= share
				if t.Cells[nb] < -theta && !inQueue[nb] {
					queue = append(queue, nb)
					inQueue[nb] = true
				}
			}
		}
		if ops++; ops > maxOps {
			// Pathological θ; fall back to clamping.
			for j, v := range t.Cells {
				if v < 0 {
					t.Cells[j] = 0
				}
			}
			return
		}
	}
}
