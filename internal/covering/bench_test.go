package covering

import (
	"testing"

	"priview/internal/noise"
)

func BenchmarkGreedyD32T2(b *testing.B) {
	rng := noise.NewStream(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Greedy(32, 8, 2, rng)
	}
}

func BenchmarkGreedyD45T3(b *testing.B) {
	rng := noise.NewStream(2)
	for i := 0; i < b.N; i++ {
		Greedy(45, 8, 3, rng)
	}
}

func BenchmarkBinarySubspaceCover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BinarySubspaceCover(5, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAffinePlane8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := AffinePlane(8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyD64(b *testing.B) {
	dg, err := AffinePlane(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dg.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
