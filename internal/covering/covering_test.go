package covering

import (
	"testing"
	"testing/quick"

	"priview/internal/noise"
)

func TestBinom(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {8, 3, 56},
		{32, 2, 496}, {45, 2, 990}, {64, 3, 41664}, {4, 5, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := Binom(c.n, c.k); got != c.want {
			t.Errorf("Binom(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestCoverageRankUnrankRoundTrip(t *testing.T) {
	cov := newCoverage(10, 3)
	forEachSubset([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 3, func(sub []int) {
		r := cov.rank(sub)
		back := cov.unrank(r)
		for i := range sub {
			if back[i] != sub[i] {
				t.Fatalf("unrank(rank(%v)) = %v", sub, back)
			}
		}
	})
}

func TestForEachSubsetCount(t *testing.T) {
	n := 0
	forEachSubset([]int{1, 4, 6, 9, 12}, 2, func([]int) { n++ })
	if n != 10 {
		t.Errorf("enumerated %d 2-subsets of 5 elements, want 10", n)
	}
	n = 0
	forEachSubset([]int{1, 2}, 3, func([]int) { n++ })
	if n != 0 {
		t.Errorf("enumerated %d 3-subsets of 2 elements, want 0", n)
	}
}

func TestGreedyProducesValidDesigns(t *testing.T) {
	rng := noise.NewStream(1)
	cases := []struct{ d, l, t int }{
		{9, 6, 2}, {16, 8, 2}, {32, 8, 2}, {32, 8, 3}, {20, 5, 3}, {12, 6, 4},
	}
	for _, c := range cases {
		dg := Greedy(c.d, c.l, c.t, rng)
		if err := dg.Verify(); err != nil {
			t.Errorf("Greedy(%d,%d,%d): %v", c.d, c.l, c.t, err)
		}
	}
}

func TestGreedyQuality(t *testing.T) {
	// Greedy should land reasonably close to the Schönheim-style lower
	// bound: for d=32, ℓ=8, t=2 the bound is 20; allow up to 30.
	dg := Best(32, 8, 2, 7, 4)
	if dg.W() > 30 {
		t.Errorf("C2(8,w) for d=32 has w=%d, want ≤ 30", dg.W())
	}
	if err := dg.Verify(); err != nil {
		t.Error(err)
	}
}

func TestGroupsConstruction(t *testing.T) {
	dg := Groups(9, 6)
	if err := dg.Verify(); err != nil {
		t.Fatalf("Groups(9,6): %v", err)
	}
	// This is the paper's C_2(6,3) for MSNBC.
	if dg.W() != 3 {
		t.Errorf("Groups(9,6) has w=%d, want 3", dg.W())
	}
}

func TestGroupsLargerD(t *testing.T) {
	for _, c := range []struct{ d, l int }{{32, 8}, {45, 8}, {64, 8}, {10, 4}} {
		dg := Groups(c.d, c.l)
		if err := dg.Verify(); err != nil {
			t.Errorf("Groups(%d,%d): %v", c.d, c.l, err)
		}
	}
}

func TestAffinePlaneOrder8(t *testing.T) {
	dg, err := AffinePlane(8)
	if err != nil {
		t.Fatal(err)
	}
	if dg.D != 64 || dg.W() != 72 || dg.L != 8 {
		t.Fatalf("AffinePlane(8): d=%d w=%d ℓ=%d, want 64/72/8", dg.D, dg.W(), dg.L)
	}
	if err := dg.Verify(); err != nil {
		t.Error(err)
	}
}

func TestAffinePlanePairsExactlyOnce(t *testing.T) {
	// In an affine plane every pair lies on exactly one line.
	for _, q := range []int{3, 4, 5} {
		dg, err := AffinePlane(q)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[[2]int]int{}
		for _, b := range dg.Blocks {
			forEachSubset(b, 2, func(sub []int) {
				counts[[2]int{sub[0], sub[1]}]++
			})
		}
		if len(counts) != Binom(q*q, 2) {
			t.Fatalf("q=%d: %d pairs covered, want %d", q, len(counts), Binom(q*q, 2))
		}
		for pair, c := range counts {
			if c != 1 {
				t.Fatalf("q=%d: pair %v on %d lines, want exactly 1", q, pair, c)
			}
		}
	}
}

func TestAffinePlaneUnsupportedOrder(t *testing.T) {
	if _, err := AffinePlane(6); err == nil {
		t.Error("AffinePlane(6) succeeded; 6 is not a prime power")
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9} {
		f, err := newField(q)
		if err != nil {
			t.Fatalf("GF(%d): %v", q, err)
		}
		// Every nonzero element must have a multiplicative inverse, and
		// multiplication must distribute over addition.
		for a := 1; a < q; a++ {
			hasInv := false
			for b := 1; b < q; b++ {
				if f.Mul(a, b) == 1 {
					hasInv = true
					break
				}
			}
			if !hasInv {
				t.Errorf("GF(%d): %d has no inverse", q, a)
			}
		}
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				for c := 0; c < q; c++ {
					if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
						t.Fatalf("GF(%d): distributivity fails at %d,%d,%d", q, a, b, c)
					}
				}
			}
		}
	}
}

func TestBestPicksAffineForD64(t *testing.T) {
	dg := Best(64, 8, 2, 3, 2)
	if err := dg.Verify(); err != nil {
		t.Fatal(err)
	}
	if dg.W() != 72 {
		t.Errorf("Best(64,8,2) has w=%d, want 72 (affine plane)", dg.W())
	}
}

// Property: designs produced by Best always cover all t-subsets.
func TestBestAlwaysValid(t *testing.T) {
	f := func(seedRaw uint8, dRaw, lRaw, tRaw uint8) bool {
		d := 6 + int(dRaw)%14 // 6..19
		l := 3 + int(lRaw)%4  // 3..6
		tt := 2 + int(tRaw)%2 // 2..3
		if l > d {
			l = d
		}
		if tt > l {
			tt = l
		}
		dg := Best(d, l, tt, int64(seedRaw), 2)
		return dg.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCoversSet(t *testing.T) {
	dg := &Design{D: 6, T: 2, L: 3, Blocks: [][]int{{0, 1, 2}, {2, 3, 4}, {0, 4, 5}, {1, 3, 5}, {0, 3, 4}, {1, 2, 5}, {2, 3, 5}, {0, 1, 4}, {1, 2, 4}}}
	if !dg.CoversSet([]int{2, 3}) {
		t.Error("CoversSet({2,3}) = false")
	}
	if dg.CoversSet([]int{0, 1, 5}) {
		t.Error("CoversSet({0,1,5}) = true")
	}
	if !dg.CoversSet(nil) {
		t.Error("CoversSet(∅) = false; empty set lies in every block")
	}
}

func TestVerifyCatchesGaps(t *testing.T) {
	dg := &Design{D: 5, T: 2, L: 3, Blocks: [][]int{{0, 1, 2}, {2, 3, 4}}}
	if err := dg.Verify(); err == nil {
		t.Error("Verify accepted a design missing pair {0,3}")
	}
}

func TestVerifyCatchesMalformedBlocks(t *testing.T) {
	bad := []*Design{
		{D: 5, T: 2, L: 3, Blocks: [][]int{{2, 1, 0}}}, // unsorted
		{D: 5, T: 2, L: 3, Blocks: [][]int{{0, 0, 1}}}, // duplicate
		{D: 5, T: 2, L: 3, Blocks: [][]int{{0, 1, 7}}}, // out of range
		{D: 5, T: 2, L: 2, Blocks: [][]int{{0, 1, 2}}}, // too long
		{D: 5, T: 6, L: 3, Blocks: nil},                // t > ℓ
	}
	for i, dg := range bad {
		if err := dg.Verify(); err == nil {
			t.Errorf("case %d: Verify accepted malformed design", i)
		}
	}
}

func TestPruneRemovesRedundant(t *testing.T) {
	dg := &Design{D: 4, T: 2, L: 4, Blocks: [][]int{
		{0, 1, 2, 3}, {0, 1, 2}, {1, 2, 3},
	}}
	dg.prune()
	if dg.W() != 1 {
		t.Errorf("prune left %d blocks, want 1", dg.W())
	}
	if err := dg.Verify(); err != nil {
		t.Error(err)
	}
}

func TestDesignName(t *testing.T) {
	dg := &Design{D: 9, T: 2, L: 6, Blocks: [][]int{{0}, {1}, {2}}}
	if dg.Name() != "C2(6,3)" {
		t.Errorf("Name = %q", dg.Name())
	}
}

func TestBinarySubspaceCoverD32(t *testing.T) {
	dg, err := BinarySubspaceCover(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dg.D != 32 || dg.L != 8 || dg.W() != 20 {
		t.Fatalf("d=%d ℓ=%d w=%d, want 32/8/20 (the paper's C_2(8,20))", dg.D, dg.L, dg.W())
	}
	if err := dg.Verify(); err != nil {
		t.Error(err)
	}
}

func TestBinarySubspaceCoverD64(t *testing.T) {
	dg, err := BinarySubspaceCover(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dg.W() != 72 {
		t.Fatalf("w=%d, want 72", dg.W())
	}
	if err := dg.Verify(); err != nil {
		t.Error(err)
	}
}

func TestBinarySubspaceCoverD16(t *testing.T) {
	// d=16, ℓ=4: spread of GF(2)^4 by 2-subspaces: 5 subspaces, 4
	// cosets each -> w=20... the spread gives (16-1)/(4-1)=5 subspaces
	// with 4 cosets each, w=20.
	dg, err := BinarySubspaceCover(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dg.Verify(); err != nil {
		t.Error(err)
	}
	if dg.W() != 20 {
		t.Errorf("w=%d, want 20", dg.W())
	}
}

func TestBinarySubspaceCoverLiftedRegime(t *testing.T) {
	// m=7, r=3: 3∤7 but (r−1)=2 divides (m−1)=6, so the lifted spread
	// applies: d=128, ℓ=8.
	dg, err := BinarySubspaceCover(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dg.D != 128 || dg.L != 8 {
		t.Fatalf("d=%d ℓ=%d, want 128/8", dg.D, dg.L)
	}
	if err := dg.Verify(); err != nil {
		t.Error(err)
	}
}

func TestBinarySubspaceCoverUnsupported(t *testing.T) {
	// m=8, r=3: 3∤8 and 2∤7, so neither regime applies.
	if _, err := BinarySubspaceCover(8, 3); err == nil {
		t.Error("m=8 r=3 should be unsupported")
	}
	if _, err := BinarySubspaceCover(3, 3); err == nil {
		t.Error("r >= m should be rejected")
	}
}

func TestBestUsesSubspaceCoverForD32(t *testing.T) {
	dg := Best(32, 8, 2, 1, 2)
	if dg.W() != 20 {
		t.Errorf("Best(32,8,2) w=%d, want 20", dg.W())
	}
}
