package covering

import (
	"fmt"
	"sort"

	"priview/internal/noise"
)

// WorkloadCover builds a view set tailored to a known query workload
// instead of guaranteeing blanket t-subset coverage: every workload
// attribute set is fully contained in some block of size ≤ ℓ, so those
// marginals are answered by direct summation with no coverage error.
// Blocks are packed greedily (largest sets first, preferring the block
// with maximal overlap), and every remaining attribute is appended so
// the design still covers all singletons (T=1). This is the
// query-driven selection style of the Data Cubes baseline, made to
// scale by keeping blocks at the PriView view size.
//
// Workload sets larger than ℓ are rejected: such marginals cannot be
// covered by any single view and should be reconstructed via maximum
// entropy from a standard covering design instead.
func WorkloadCover(d, l int, workload [][]int, rng *noise.Stream) (*Design, error) {
	if l < 1 || l > d {
		return nil, fmt.Errorf("covering: invalid block size ℓ=%d for d=%d", l, d)
	}
	sets := make([][]int, 0, len(workload))
	for wi, w := range workload {
		s := append([]int(nil), w...)
		sort.Ints(s)
		for i, a := range s {
			if a < 0 || a >= d {
				return nil, fmt.Errorf("covering: workload set %d has out-of-range attribute %d", wi, a)
			}
			if i > 0 && s[i] == s[i-1] {
				return nil, fmt.Errorf("covering: workload set %d has duplicate attribute %d", wi, a)
			}
		}
		if len(s) > l {
			return nil, fmt.Errorf("covering: workload set %d has %d attributes, block size is %d", wi, len(s), l)
		}
		if len(s) > 0 {
			sets = append(sets, s)
		}
	}
	// Largest first: big sets constrain packing the most. Ties are
	// shuffled so restarts explore different packings.
	if rng != nil {
		rng.Shuffle(len(sets), func(i, j int) { sets[i], sets[j] = sets[j], sets[i] })
	}
	sort.SliceStable(sets, func(i, j int) bool { return len(sets[i]) > len(sets[j]) })

	var blocks [][]int
	for _, s := range sets {
		if coveredByAny(blocks, s) {
			continue
		}
		// Best existing block: union fits in ℓ and overlap is maximal.
		best, bestOverlap := -1, -1
		for bi, b := range blocks {
			u := unionSize(b, s)
			if u > l {
				continue
			}
			overlap := len(b) + len(s) - u
			if overlap > bestOverlap {
				bestOverlap, best = overlap, bi
			}
		}
		if best >= 0 {
			blocks[best] = unionSorted(blocks[best], s)
		} else {
			blocks = append(blocks, append([]int(nil), s...))
		}
	}
	// Cover leftover attributes so the design is total (T=1).
	present := make([]bool, d)
	for _, b := range blocks {
		for _, a := range b {
			present[a] = true
		}
	}
	for a := 0; a < d; a++ {
		if present[a] {
			continue
		}
		placed := false
		for bi, b := range blocks {
			if len(b) < l {
				blocks[bi] = unionSorted(b, []int{a})
				placed = true
				break
			}
		}
		if !placed {
			blocks = append(blocks, []int{a})
		}
	}
	dg := &Design{D: d, T: 1, L: l, Blocks: blocks}
	if err := dg.Verify(); err != nil {
		return nil, fmt.Errorf("covering: workload cover construction bug: %w", err)
	}
	return dg, nil
}

func coveredByAny(blocks [][]int, s []int) bool {
	for _, b := range blocks {
		if containsAll(b, s) {
			return true
		}
	}
	return false
}

func unionSize(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
		n++
	}
	return n + (len(a) - i) + (len(b) - j)
}

func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// BestWorkloadCover runs several shuffled packings and returns the one
// with the fewest blocks (fewer views ⇒ less noise per view).
func BestWorkloadCover(d, l int, workload [][]int, seed int64, restarts int) (*Design, error) {
	if restarts < 1 {
		restarts = 1
	}
	root := noise.NewStream(seed)
	var best *Design
	for r := 0; r < restarts; r++ {
		dg, err := WorkloadCover(d, l, workload, root.DeriveIndexed("pack", r))
		if err != nil {
			return nil, err
		}
		if best == nil || dg.W() < best.W() {
			best = dg
		}
	}
	return best, nil
}
