package covering

import (
	"fmt"
	"sort"

	"priview/internal/attrset"
	"priview/internal/noise"
)

// WorkloadCover builds a view set tailored to a known query workload
// instead of guaranteeing blanket t-subset coverage: every workload
// attribute set is fully contained in some block of size ≤ ℓ, so those
// marginals are answered by direct summation with no coverage error.
// Blocks are packed greedily (largest sets first, preferring the block
// with maximal overlap), and every remaining attribute is appended so
// the design still covers all singletons (T=1). This is the
// query-driven selection style of the Data Cubes baseline, made to
// scale by keeping blocks at the PriView view size.
//
// Workload sets larger than ℓ are rejected: such marginals cannot be
// covered by any single view and should be reconstructed via maximum
// entropy from a standard covering design instead.
func WorkloadCover(d, l int, workload [][]int, rng *noise.Stream) (*Design, error) {
	if d < 1 || d > attrset.MaxAttr {
		return nil, fmt.Errorf("covering: dimension d=%d outside [1, %d]: %w", d, attrset.MaxAttr, attrset.ErrRange)
	}
	if l < 1 || l > d {
		return nil, fmt.Errorf("covering: invalid block size ℓ=%d for d=%d", l, d)
	}
	sets := make([]attrset.Set, 0, len(workload))
	for wi, w := range workload {
		s, err := attrset.FromAttrs(w)
		if err != nil {
			// Input boundary: surfaces attrset.ErrRange / ErrDuplicate
			// wrapped with the offending set's index.
			return nil, fmt.Errorf("covering: workload set %d: %w", wi, err)
		}
		for _, a := range s.Attrs() {
			if a >= d {
				return nil, fmt.Errorf("covering: workload set %d has out-of-range attribute %d", wi, a)
			}
		}
		if s.Card() > l {
			return nil, fmt.Errorf("covering: workload set %d has %d attributes, block size is %d", wi, s.Card(), l)
		}
		if !s.Empty() {
			sets = append(sets, s)
		}
	}
	// Largest first: big sets constrain packing the most. Ties are
	// shuffled so restarts explore different packings.
	if rng != nil {
		rng.Shuffle(len(sets), func(i, j int) { sets[i], sets[j] = sets[j], sets[i] })
	}
	sort.SliceStable(sets, func(i, j int) bool { return sets[i].Card() > sets[j].Card() })

	var blocks []attrset.Set
	for _, s := range sets {
		covered := false
		for _, b := range blocks {
			if s.Subset(b) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		// Best existing block: union fits in ℓ and overlap is maximal.
		best, bestOverlap := -1, -1
		for bi, b := range blocks {
			if b.Union(s).Card() > l {
				continue
			}
			if overlap := b.Intersect(s).Card(); overlap > bestOverlap {
				bestOverlap, best = overlap, bi
			}
		}
		if best >= 0 {
			blocks[best] = blocks[best].Union(s)
		} else {
			blocks = append(blocks, s)
		}
	}
	// Cover leftover attributes so the design is total (T=1).
	var present attrset.Set
	for _, b := range blocks {
		present = present.Union(b)
	}
	for a := 0; a < d; a++ {
		if present.Contains(a) {
			continue
		}
		placed := false
		for bi, b := range blocks {
			if b.Card() < l {
				blocks[bi] = b.Union(attrset.Of(a))
				placed = true
				break
			}
		}
		if !placed {
			blocks = append(blocks, attrset.Of(a))
		}
	}
	blockAttrs := make([][]int, len(blocks))
	for i, b := range blocks {
		blockAttrs[i] = b.Attrs()
	}
	dg := &Design{D: d, T: 1, L: l, Blocks: blockAttrs}
	if err := dg.Verify(); err != nil {
		return nil, fmt.Errorf("covering: workload cover construction bug: %w", err)
	}
	return dg, nil
}

// BestWorkloadCover runs several shuffled packings and returns the one
// with the fewest blocks (fewer views ⇒ less noise per view).
func BestWorkloadCover(d, l int, workload [][]int, seed int64, restarts int) (*Design, error) {
	if restarts < 1 {
		restarts = 1
	}
	root := noise.NewStream(seed)
	var best *Design
	for r := 0; r < restarts; r++ {
		dg, err := WorkloadCover(d, l, workload, root.DeriveIndexed("pack", r))
		if err != nil {
			return nil, err
		}
		if best == nil || dg.W() < best.W() {
			best = dg
		}
	}
	return best, nil
}
