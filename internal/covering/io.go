package covering

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteDesign serializes a design in the La Jolla covering repository's
// text convention: one block per line, space-separated 1-based element
// indices, preceded by a comment header recording (d, t, ℓ, w).
func WriteDesign(w io.Writer, dg *Design) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# C%d(%d,%d) on %d points (1-based indices)\n",
		dg.T, dg.L, dg.W(), dg.D); err != nil {
		return err
	}
	for _, block := range dg.Blocks {
		for i, a := range block {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(a + 1)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDesign parses a block-per-line design file (the La Jolla
// repository format: 1-based space-separated indices; lines starting
// with '#' are comments). The caller supplies the intended (d, t) and
// the result is verified against them, so a design that fails to cover
// all t-subsets is rejected at load time rather than surfacing as
// silent accuracy loss. ℓ is inferred as the largest block.
//
// This is the bridge to better-than-constructed designs: the paper's
// C3(8,106) for d=32, for example, can be fetched from the repository
// and dropped in where our greedy construction yields w=173.
func ReadDesign(r io.Reader, d, t int) (*Design, error) {
	sc := bufio.NewScanner(r)
	var blocks [][]int
	maxLen := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		block := make([]int, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("covering: line %d: bad element %q", line, f)
			}
			if v < 1 || v > d {
				return nil, fmt.Errorf("covering: line %d: element %d out of range 1..%d", line, v, d)
			}
			block = append(block, v-1)
		}
		if len(block) == 0 {
			continue
		}
		sort.Ints(block)
		for i := 1; i < len(block); i++ {
			if block[i] == block[i-1] {
				return nil, fmt.Errorf("covering: line %d: duplicate element %d", line, block[i]+1)
			}
		}
		if len(block) > maxLen {
			maxLen = len(block)
		}
		blocks = append(blocks, block)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("covering: reading design: %w", err)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("covering: design file has no blocks")
	}
	dg := &Design{D: d, T: t, L: maxLen, Blocks: blocks}
	if err := dg.Verify(); err != nil {
		return nil, fmt.Errorf("covering: loaded design invalid: %w", err)
	}
	return dg, nil
}
