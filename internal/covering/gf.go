package covering

import "fmt"

// field implements arithmetic in a small finite field GF(p^e). It backs
// the affine-plane construction of optimal pair covering designs. Only
// the orders needed for block sizes up to ~16 are supported.
type field struct {
	q   int // order p^e
	p   int // characteristic
	e   int // extension degree
	add [][]int
	mul [][]int
}

// irreducible polynomials over GF(p), coefficient i is of x^i, leading
// coefficient (of x^e) implicit 1. Indexed by [p][e].
var irreducibles = map[[2]int][]int{
	{2, 2}: {1, 1},    // x^2 + x + 1
	{2, 3}: {1, 1, 0}, // x^3 + x + 1
	{2, 4}: {1, 1, 0, 0},
	{3, 2}: {1, 0}, // x^2 + 1
}

var smallPrimes = []int{2, 3, 5, 7, 11, 13}

// newField constructs GF(q) for q a prime or one of the supported prime
// powers {4, 8, 9, 16}. It returns an error for unsupported orders so
// callers can fall back to other constructions.
func newField(q int) (*field, error) {
	for _, p := range smallPrimes {
		if q == p {
			return primeField(p), nil
		}
	}
	type pe struct{ p, e int }
	var cand pe
	switch q {
	case 4:
		cand = pe{2, 2}
	case 8:
		cand = pe{2, 3}
	case 9:
		cand = pe{3, 2}
	case 16:
		cand = pe{2, 4}
	default:
		return nil, fmt.Errorf("covering: GF(%d) not supported", q)
	}
	return extensionField(cand.p, cand.e), nil
}

func primeField(p int) *field {
	f := &field{q: p, p: p, e: 1}
	f.add = make([][]int, p)
	f.mul = make([][]int, p)
	for i := 0; i < p; i++ {
		f.add[i] = make([]int, p)
		f.mul[i] = make([]int, p)
		for j := 0; j < p; j++ {
			f.add[i][j] = (i + j) % p
			f.mul[i][j] = (i * j) % p
		}
	}
	return f
}

// extensionField builds GF(p^e) representing elements as base-p digit
// strings encoded in an int: element Σ c_i x^i is encoded as Σ c_i p^i.
func extensionField(p, e int) *field {
	q := 1
	for i := 0; i < e; i++ {
		q *= p
	}
	irr := irreducibles[[2]int{p, e}]
	f := &field{q: q, p: p, e: e}
	f.add = make([][]int, q)
	f.mul = make([][]int, q)
	for a := 0; a < q; a++ {
		f.add[a] = make([]int, q)
		f.mul[a] = make([]int, q)
	}
	for a := 0; a < q; a++ {
		da := digits(a, p, e)
		for b := a; b < q; b++ {
			db := digits(b, p, e)
			// Addition: digit-wise mod p.
			sum := make([]int, e)
			for i := 0; i < e; i++ {
				sum[i] = (da[i] + db[i]) % p
			}
			s := undigits(sum, p)
			f.add[a][b] = s
			f.add[b][a] = s
			// Multiplication: polynomial product reduced mod irr.
			prod := make([]int, 2*e-1)
			for i := 0; i < e; i++ {
				for j := 0; j < e; j++ {
					prod[i+j] = (prod[i+j] + da[i]*db[j]) % p
				}
			}
			// Reduce: x^e ≡ -irr (mod irr), i.e. x^{e+k} folds down.
			for deg := 2*e - 2; deg >= e; deg-- {
				c := prod[deg]
				if c == 0 {
					continue
				}
				prod[deg] = 0
				for i := 0; i < e; i++ {
					// x^deg = x^{deg-e} * x^e = x^{deg-e} * (-irr_i x^i)
					prod[deg-e+i] = ((prod[deg-e+i]-c*irr[i])%p + p*p) % p
				}
			}
			m := undigits(prod[:e], p)
			f.mul[a][b] = m
			f.mul[b][a] = m
		}
	}
	return f
}

func digits(v, p, e int) []int {
	d := make([]int, e)
	for i := 0; i < e; i++ {
		d[i] = v % p
		v /= p
	}
	return d
}

func undigits(d []int, p int) int {
	v := 0
	for i := len(d) - 1; i >= 0; i-- {
		v = v*p + d[i]
	}
	return v
}

func (f *field) Add(a, b int) int { return f.add[a][b] }
func (f *field) Mul(a, b int) int { return f.mul[a][b] }
