package covering

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"priview/internal/noise"
)

func TestWorkloadCoverContainsEverySet(t *testing.T) {
	workload := [][]int{
		{0, 3, 7}, {1, 2}, {4, 5, 6, 8}, {0, 1, 2, 3}, {9, 10},
	}
	dg, err := WorkloadCover(12, 6, workload, noise.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workload {
		sorted := append([]int(nil), w...)
		sort.Ints(sorted)
		if !dg.CoversSet(sorted) {
			t.Errorf("workload set %v not covered by %v", w, dg.Blocks)
		}
	}
	if err := dg.Verify(); err != nil {
		t.Error(err)
	}
}

func TestWorkloadCoverCoversAllAttributes(t *testing.T) {
	// Attributes outside the workload must still appear in some view.
	dg, err := WorkloadCover(10, 4, [][]int{{0, 1}}, noise.NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 10)
	for _, b := range dg.Blocks {
		for _, a := range b {
			seen[a] = true
		}
	}
	for a, ok := range seen {
		if !ok {
			t.Errorf("attribute %d missing from every view", a)
		}
	}
}

func TestWorkloadCoverRejectsBadInput(t *testing.T) {
	rng := noise.NewStream(3)
	if _, err := WorkloadCover(8, 3, [][]int{{0, 1, 2, 3}}, rng); err == nil {
		t.Error("oversized workload set accepted")
	}
	if _, err := WorkloadCover(8, 3, [][]int{{0, 9}}, rng); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if _, err := WorkloadCover(8, 3, [][]int{{1, 1}}, rng); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := WorkloadCover(8, 9, nil, rng); err == nil {
		t.Error("ℓ > d accepted")
	}
}

// Property: every packing covers the workload, regardless of shuffle.
func TestWorkloadCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 10 + r.Intn(20)
		l := 4 + r.Intn(4)
		var workload [][]int
		for i := 0; i < 12; i++ {
			k := 2 + r.Intn(l-1)
			perm := r.Perm(d)[:k]
			sort.Ints(perm)
			workload = append(workload, perm)
		}
		dg, err := WorkloadCover(d, l, workload, noise.NewStream(seed))
		if err != nil {
			return false
		}
		for _, w := range workload {
			if !dg.CoversSet(w) {
				return false
			}
		}
		return dg.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBestWorkloadCoverNotWorse(t *testing.T) {
	workload := [][]int{
		{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {6, 7, 0}, {1, 3, 5}, {2, 5, 7},
	}
	single, err := WorkloadCover(8, 6, workload, noise.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestWorkloadCover(8, 6, workload, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if best.W() > single.W() {
		t.Errorf("restart search (%d blocks) worse than single run (%d)", best.W(), single.W())
	}
}

func TestWorkloadCoverDedupesIdenticalSets(t *testing.T) {
	workload := [][]int{{0, 1}, {1, 0}, {0, 1}}
	dg, err := WorkloadCover(4, 2, workload, noise.NewStream(4))
	if err != nil {
		t.Fatal(err)
	}
	// 1 block for {0,1} plus blocks for leftover attrs 2, 3.
	if dg.W() > 3 {
		t.Errorf("w = %d, want ≤ 3", dg.W())
	}
}
