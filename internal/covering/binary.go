package covering

import (
	"fmt"
	"sort"
)

// BinarySubspaceCover constructs an optimal-size pair covering design for
// d = 2^m points with blocks of ℓ = 2^r points, by covering the nonzero
// vectors of GF(2)^m with r-dimensional subspaces and taking all cosets
// of each subspace as blocks. Every pair {x, y} has difference x⊕y in
// some subspace S of the cover, so x and y share a coset of S.
//
// Two regimes are supported:
//   - r divides m: a perfect spread via the GF(2^r)-vector-space
//     structure, giving (2^m−1)/(2^r−1) subspaces;
//   - (r−1) divides (m−1): a spread of (r−1)-subspaces of GF(2)^{m−1}
//     lifted through a common vector, giving (2^{m−1}−1)/(2^{r−1}−1)
//     subspaces.
//
// For d=32, ℓ=8 this yields the paper's C_2(8,20); for d=64, ℓ=8 it
// yields C_2(8,72).
func BinarySubspaceCover(m, r int) (*Design, error) {
	if r < 1 || r >= m || m > 26 {
		return nil, fmt.Errorf("covering: invalid subspace-cover parameters m=%d r=%d", m, r)
	}
	var subspaces [][]uint32
	switch {
	case m%r == 0:
		s, err := binarySpread(m, r)
		if err != nil {
			return nil, err
		}
		subspaces = s
	case (m-1)%(r-1) == 0:
		base, err := binarySpread(m-1, r-1)
		if err != nil {
			return nil, err
		}
		v := uint32(1) << uint(m-1)
		for _, sub := range base {
			lifted := make([]uint32, 0, 2*len(sub))
			for _, x := range sub {
				lifted = append(lifted, x, x^v)
			}
			subspaces = append(subspaces, lifted)
		}
	default:
		return nil, fmt.Errorf("covering: no subspace cover for m=%d r=%d (need r|m or (r-1)|(m-1))", m, r)
	}
	d := 1 << uint(m)
	var blocks [][]int
	for _, sub := range subspaces {
		// Enumerate cosets of sub.
		seen := make([]bool, d)
		for p := 0; p < d; p++ {
			if seen[p] {
				continue
			}
			block := make([]int, 0, len(sub))
			for _, s := range sub {
				q := p ^ int(s)
				seen[q] = true
				block = append(block, q)
			}
			sort.Ints(block)
			blocks = append(blocks, block)
		}
	}
	return &Design{D: d, T: 2, L: 1 << uint(r), Blocks: blocks}, nil
}

// binarySpread returns a perfect spread of GF(2)^m by r-dimensional
// subspaces (r | m): disjoint-but-for-zero subspaces whose union is the
// whole space. Each subspace is returned as its full element list
// (including 0) encoded as bit vectors. The construction views GF(2)^m
// as GF(2^r)^{m/r} and takes the 1-dimensional GF(2^r)-subspaces.
func binarySpread(m, r int) ([][]uint32, error) {
	if m%r != 0 {
		return nil, fmt.Errorf("covering: spread needs r|m, got m=%d r=%d", m, r)
	}
	q := 1 << uint(r)
	f, err := newField(q)
	if err != nil {
		return nil, fmt.Errorf("covering: spread needs GF(%d): %w", q, err)
	}
	n := m / r // GF(2^r)-dimension
	// Projective points of PG(n-1, q): nonzero tuples whose first
	// nonzero coordinate is 1.
	var spread [][]uint32
	tuple := make([]int, n)
	var rec func(i int, leadingSeen bool)
	rec = func(i int, leadingSeen bool) {
		if i == n {
			if !leadingSeen {
				return
			}
			sub := make([]uint32, q)
			for lam := 0; lam < q; lam++ {
				var vec uint32
				for j := 0; j < n; j++ {
					c := f.Mul(lam, tuple[j])
					// GF(2^e) elements with p=2 are already encoded as
					// polynomial bit strings, so c is the r-bit chunk.
					vec |= uint32(c) << uint(j*r)
				}
				sub[lam] = vec
			}
			spread = append(spread, sub)
			return
		}
		if !leadingSeen {
			// First nonzero coordinate must be exactly 1.
			tuple[i] = 0
			rec(i+1, false)
			tuple[i] = 1
			rec(i+1, true)
			return
		}
		for v := 0; v < q; v++ {
			tuple[i] = v
			rec(i+1, true)
		}
	}
	rec(0, false)
	return spread, nil
}
