package covering

import (
	"bytes"
	"strings"
	"testing"
)

func TestDesignRoundTrip(t *testing.T) {
	orig := Best(16, 4, 2, 1, 2)
	var buf bytes.Buffer
	if err := WriteDesign(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDesign(&buf, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.W() != orig.W() || got.D != 16 || got.T != 2 {
		t.Fatalf("round trip: w=%d d=%d t=%d", got.W(), got.D, got.T)
	}
	for i := range orig.Blocks {
		if len(got.Blocks[i]) != len(orig.Blocks[i]) {
			t.Fatal("block sizes changed in round trip")
		}
		for j := range orig.Blocks[i] {
			if got.Blocks[i][j] != orig.Blocks[i][j] {
				t.Fatal("block contents changed in round trip")
			}
		}
	}
}

func TestReadDesignLaJollaFormat(t *testing.T) {
	// The paper's C2(6,3) on 9 points, as the repository would list it.
	input := `# C(9,6,2) = 3
1 2 3 4 5 6
1 2 3 7 8 9
4 5 6 7 8 9
`
	dg, err := ReadDesign(strings.NewReader(input), 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dg.W() != 3 || dg.L != 6 {
		t.Errorf("w=%d ℓ=%d, want 3, 6", dg.W(), dg.L)
	}
}

func TestReadDesignRejectsBadInput(t *testing.T) {
	cases := map[string]struct {
		input string
		d, t  int
	}{
		"empty":         {"", 9, 2},
		"only comments": {"# nothing\n", 9, 2},
		"bad element":   {"1 2 x\n", 9, 2},
		"out of range":  {"1 2 10\n", 9, 2},
		"zero based":    {"0 1 2\n", 9, 2},
		"duplicate":     {"1 1 2\n", 9, 2},
		"gap in cover":  {"1 2 3\n4 5 6\n7 8 9\n", 9, 2}, // cross-group pairs uncovered
	}
	for name, c := range cases {
		if _, err := ReadDesign(strings.NewReader(c.input), c.d, c.t); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadDesignVerifiesCoverage(t *testing.T) {
	// A valid pair cover read back with t=3 must be rejected (it does
	// not cover all triples).
	var buf bytes.Buffer
	if err := WriteDesign(&buf, Groups(9, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDesign(&buf, 9, 3); err == nil {
		t.Error("pair cover accepted as a triple cover")
	}
}
