// Package covering constructs (w, ℓ, t)-covering designs: collections of
// w blocks of ℓ attributes each such that every t-subset of the d
// attributes appears in at least one block (Definition 3 in the paper).
// PriView uses these designs as its view sets. The paper looked designs
// up in the La Jolla repository; this package constructs them offline
// with an affine-plane construction (optimal for t=2 when d = q^2),
// a group-pair construction, and a randomized greedy with redundancy
// pruning, returning the best design found.
package covering

import (
	"fmt"
	"sort"

	"priview/internal/noise"
)

// Design is a covering design over attributes {0, ..., D-1}. Every block
// is sorted ascending and has between 2 and L attributes (constructions
// may produce some blocks shorter than L when d is not a multiple of the
// natural construction size; shorter blocks only help accuracy since
// they receive the same per-view budget but have fewer cells).
type Design struct {
	D      int     // number of attributes
	T      int     // every T-subset is covered
	L      int     // maximum block size
	Blocks [][]int // the views
}

// W returns the number of blocks, the w in C_t(ℓ, w).
func (dg *Design) W() int { return len(dg.Blocks) }

// Name renders the paper's C_t(ℓ, w) notation.
func (dg *Design) Name() string {
	return fmt.Sprintf("C%d(%d,%d)", dg.T, dg.L, dg.W())
}

// Verify checks that every t-subset of {0..D-1} is contained in at least
// one block and that blocks are well-formed. It returns the first
// violation found.
func (dg *Design) Verify() error {
	if dg.T < 1 || dg.T > dg.L || dg.L > dg.D {
		return fmt.Errorf("covering: invalid parameters t=%d ℓ=%d d=%d", dg.T, dg.L, dg.D)
	}
	for i, b := range dg.Blocks {
		if len(b) < 1 || len(b) > dg.L {
			return fmt.Errorf("covering: block %d has %d attributes, max %d", i, len(b), dg.L)
		}
		for j, a := range b {
			if a < 0 || a >= dg.D {
				return fmt.Errorf("covering: block %d contains out-of-range attribute %d", i, a)
			}
			if j > 0 && b[j] <= b[j-1] {
				return fmt.Errorf("covering: block %d not sorted strictly ascending", i)
			}
		}
	}
	uncovered := firstUncovered(dg.D, dg.T, dg.Blocks)
	if uncovered != nil {
		return fmt.Errorf("covering: %v not covered by any block", uncovered)
	}
	return nil
}

// firstUncovered returns some t-subset not contained in any block, or
// nil if all are covered.
func firstUncovered(d, t int, blocks [][]int) []int {
	cov := newCoverage(d, t)
	for _, b := range blocks {
		cov.addBlock(b)
	}
	return cov.firstUncovered()
}

// coverage tracks which t-subsets are covered, for t in {1, 2, 3, 4}.
// Subsets are ranked by the combinatorial number system.
type coverage struct {
	d, t    int
	covered []bool
	left    int
}

func newCoverage(d, t int) *coverage {
	if t < 1 || t > 4 {
		panic(fmt.Sprintf("covering: t=%d unsupported (1..4)", t))
	}
	n := binom(d, t)
	return &coverage{d: d, t: t, covered: make([]bool, n), left: n}
}

// rank maps a strictly increasing t-tuple to its index.
func (c *coverage) rank(sub []int) int {
	r := 0
	for i, v := range sub {
		r += binom(v, i+1)
	}
	return r
}

func (c *coverage) mark(sub []int) {
	r := c.rank(sub)
	if !c.covered[r] {
		c.covered[r] = true
		c.left--
	}
}

func (c *coverage) isCovered(sub []int) bool { return c.covered[c.rank(sub)] }

// addBlock marks all t-subsets of the block as covered and returns how
// many were newly covered.
func (c *coverage) addBlock(block []int) int {
	before := c.left
	forEachSubset(block, c.t, func(sub []int) { c.mark(sub) })
	return before - c.left
}

// countNew returns how many t-subsets of the block are currently
// uncovered without marking them.
func (c *coverage) countNew(block []int) int {
	n := 0
	forEachSubset(block, c.t, func(sub []int) {
		if !c.covered[c.rank(sub)] {
			n++
		}
	})
	return n
}

func (c *coverage) firstUncovered() []int {
	if c.left == 0 {
		return nil
	}
	for r, ok := range c.covered {
		if !ok {
			return c.unrank(r)
		}
	}
	return nil
}

// unrank inverts rank.
func (c *coverage) unrank(r int) []int {
	sub := make([]int, c.t)
	for i := c.t; i >= 1; i-- {
		// Largest v with binom(v, i) <= r.
		v := i - 1
		for binom(v+1, i) <= r {
			v++
		}
		sub[i-1] = v
		r -= binom(v, i)
	}
	return sub
}

// forEachSubset calls fn for every size-t subset of the sorted slice set.
// The callback must not retain the slice.
func forEachSubset(set []int, t int, fn func([]int)) {
	if t > len(set) {
		return
	}
	idx := make([]int, t)
	sub := make([]int, t)
	for i := range idx {
		idx[i] = i
	}
	for {
		for i, j := range idx {
			sub[i] = set[j]
		}
		fn(sub)
		// Advance.
		i := t - 1
		for i >= 0 && idx[i] == len(set)-t+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < t; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

var binomCache = map[[2]int]int{}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k == 0 || k == n {
		return 1
	}
	if v, ok := binomCache[[2]int{n, k}]; ok {
		return v
	}
	v := binom(n-1, k-1) + binom(n-1, k)
	binomCache[[2]int{n, k}] = v
	return v
}

// Binom exposes the binomial coefficient for error formulas elsewhere.
func Binom(n, k int) int { return binom(n, k) }

// Greedy builds a covering design by repeatedly growing a block around an
// uncovered t-subset, each time adding the attribute that covers the most
// still-uncovered t-subsets. Ties are broken by the provided stream so
// repeated runs explore different designs.
func Greedy(d, l, t int, rng *noise.Stream) *Design {
	if t > l || l > d {
		panic(fmt.Sprintf("covering: invalid greedy parameters d=%d ℓ=%d t=%d", d, l, t))
	}
	cov := newCoverage(d, t)
	var blocks [][]int
	for cov.left > 0 {
		seed := cov.firstUncovered()
		block := append([]int(nil), seed...)
		inBlock := make([]bool, d)
		for _, a := range block {
			inBlock[a] = true
		}
		for len(block) < l {
			best, bestGain := -1, -1
			start := rng.Intn(d)
			for off := 0; off < d; off++ {
				a := (start + off) % d
				if inBlock[a] {
					continue
				}
				cand := insertSorted(block, a)
				gain := cov.countNew(cand) // includes already-counted; fine for comparison
				if gain > bestGain {
					bestGain = gain
					best = a
				}
			}
			if best < 0 {
				break
			}
			block = insertSorted(block, best)
			inBlock[best] = true
		}
		cov.addBlock(block)
		blocks = append(blocks, block)
	}
	dg := &Design{D: d, T: t, L: l, Blocks: blocks}
	dg.prune()
	return dg
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	out := make([]int, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, v)
	out = append(out, s[i:]...)
	return out
}

// prune removes blocks all of whose t-subsets are covered by other
// blocks, scanning from the largest-index block down (later greedy blocks
// are most likely redundant). It maintains per-subset reference counts so
// the whole pass is linear in total block content.
func (dg *Design) prune() {
	cov := newCoverage(dg.D, dg.T)
	refs := make([]int, len(cov.covered))
	for _, b := range dg.Blocks {
		forEachSubset(b, dg.T, func(sub []int) { refs[cov.rank(sub)]++ })
	}
	kept := make([][]int, 0, len(dg.Blocks))
	for i := len(dg.Blocks) - 1; i >= 0; i-- {
		b := dg.Blocks[i]
		redundant := true
		forEachSubset(b, dg.T, func(sub []int) {
			if refs[cov.rank(sub)] < 2 {
				redundant = false
			}
		})
		if redundant {
			forEachSubset(b, dg.T, func(sub []int) { refs[cov.rank(sub)]-- })
		} else {
			kept = append(kept, b)
		}
	}
	// Restore original ordering (we appended in reverse).
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	dg.Blocks = kept
}

// Groups is the pair-covering construction from grouping: attributes are
// partitioned into g = ceil(2d/ℓ) groups of ~ℓ/2 and the blocks are the
// unions of all group pairs. Every within-group and cross-group pair is
// covered. For d=9, ℓ=6 this yields the paper's C_2(6,3).
func Groups(d, l int) *Design {
	if l < 2 || l > d {
		panic(fmt.Sprintf("covering: invalid group parameters d=%d ℓ=%d", d, l))
	}
	half := l / 2
	g := (d + half - 1) / half
	if g < 2 {
		g = 2
	}
	groups := make([][]int, g)
	for a := 0; a < d; a++ {
		i := a % g
		groups[i] = append(groups[i], a)
	}
	var blocks [][]int
	for i := 0; i < g; i++ {
		for j := i + 1; j < g; j++ {
			b := append(append([]int(nil), groups[i]...), groups[j]...)
			sort.Ints(b)
			if len(b) > l {
				// Over-full unions can occur when d is not divisible by
				// g; split the union into overlapping ℓ-sized windows.
				for s := 0; s < len(b); s += l - 1 {
					e := s + l
					if e > len(b) {
						e = len(b)
						s = e - l
						if s < 0 {
							s = 0
						}
					}
					blocks = append(blocks, append([]int(nil), b[s:e]...))
					if e == len(b) {
						break
					}
				}
			} else {
				blocks = append(blocks, b)
			}
		}
	}
	dg := &Design{D: d, T: 2, L: l, Blocks: blocks}
	dg.prune()
	return dg
}

// AffinePlane returns the lines of AG(2, q) as a covering design on
// d = q^2 points with block size q: q^2 + q lines covering every pair
// exactly once — an optimal C_2(q, q^2+q). For d=64, q=8 this is the
// paper's C_2(8, 72). Returns an error when GF(q) is unsupported.
func AffinePlane(q int) (*Design, error) {
	f, err := newField(q)
	if err != nil {
		return nil, err
	}
	d := q * q
	point := func(x, y int) int { return x*q + y }
	var blocks [][]int
	// Lines y = m*x + b.
	for m := 0; m < q; m++ {
		for b := 0; b < q; b++ {
			line := make([]int, q)
			for x := 0; x < q; x++ {
				line[x] = point(x, f.Add(f.Mul(m, x), b))
			}
			sort.Ints(line)
			blocks = append(blocks, line)
		}
	}
	// Vertical lines x = c.
	for c := 0; c < q; c++ {
		line := make([]int, q)
		for y := 0; y < q; y++ {
			line[y] = point(c, y)
		}
		sort.Ints(line)
		blocks = append(blocks, line)
	}
	return &Design{D: d, T: 2, L: q, Blocks: blocks}, nil
}

// Best returns the smallest design found among the applicable
// constructions: affine plane (when d = ℓ^2 and t = 2), the group
// construction (t = 2), and `restarts` randomized greedy runs. The result
// is always verified before being returned.
func Best(d, l, t int, seed int64, restarts int) *Design {
	if restarts < 1 {
		restarts = 1
	}
	var best *Design
	consider := func(dg *Design) {
		if dg == nil {
			return
		}
		if err := dg.Verify(); err != nil {
			panic(fmt.Sprintf("covering: construction produced invalid design: %v", err))
		}
		if best == nil || dg.W() < best.W() {
			best = dg
		}
	}
	if t == 2 && l*l == d {
		if ap, err := AffinePlane(l); err == nil {
			consider(ap)
		}
	}
	if t == 2 {
		if m, ok := log2(d); ok {
			if r, ok := log2(l); ok {
				if bc, err := BinarySubspaceCover(m, r); err == nil {
					consider(bc)
				}
			}
		}
		consider(Groups(d, l))
	}
	root := noise.NewStream(seed)
	for r := 0; r < restarts; r++ {
		consider(Greedy(d, l, t, root.DeriveIndexed("greedy", r)))
	}
	return best
}

// log2 returns (k, true) when v == 2^k for some k ≥ 1.
func log2(v int) (int, bool) {
	if v < 2 || v&(v-1) != 0 {
		return 0, false
	}
	k := 0
	for v > 1 {
		v >>= 1
		k++
	}
	return k, true
}

// CoversSet reports whether some block contains the whole attribute set.
func (dg *Design) CoversSet(attrs []int) bool {
	for _, b := range dg.Blocks {
		if containsAll(b, attrs) {
			return true
		}
	}
	return false
}

func containsAll(block, attrs []int) bool {
	i := 0
	for _, a := range attrs {
		for i < len(block) && block[i] < a {
			i++
		}
		if i >= len(block) || block[i] != a {
			return false
		}
	}
	return true
}
