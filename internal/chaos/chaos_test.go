package chaos

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/marginal"
	"priview/internal/reconstruct"
)

// faultPattern records which of n requests against a fresh transport
// draw an injected fault.
func faultPattern(t *testing.T, seed uint64, n int) []bool {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()
	tr := NewTransport(seed)
	tr.ErrProb = 0.5
	hc := &http.Client{Transport: tr}
	out := make([]bool, n)
	for i := range out {
		resp, err := hc.Get(backend.URL)
		if err != nil {
			out[i] = true
			continue
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestTransportDeterministic(t *testing.T) {
	a := faultPattern(t, 7, 32)
	b := faultPattern(t, 7, 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at request %d: same seed must inject identically", i)
		}
	}
	saw := map[bool]bool{}
	for _, v := range a {
		saw[v] = true
	}
	if !saw[true] || !saw[false] {
		t.Errorf("ErrProb=0.5 over 32 requests injected uniformly (%v); PRNG suspect", a)
	}
}

func TestTransportInjectedError(t *testing.T) {
	tr := NewTransport(1)
	tr.ErrProb = 1
	hc := &http.Client{Transport: tr}
	_, err := hc.Get("http://127.0.0.1:0/never-reached")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if c := tr.Counts(); c.Errors != 1 || c.Forwards != 0 {
		t.Errorf("counts = %+v", c)
	}
}

func TestTransportStatusInjection(t *testing.T) {
	tr := NewTransport(1)
	tr.StatusProb = 1
	tr.RetryAfter = 1500 * time.Millisecond // rounds up to 2s
	hc := &http.Client{Transport: tr}
	resp, err := hc.Get("http://127.0.0.1:0/never-reached")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503 default", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if c := tr.Counts(); c.Statuses != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestTransportLatencyHonorsContext(t *testing.T) {
	tr := NewTransport(1)
	tr.Latency = 10 * time.Second
	hc := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://127.0.0.1:0/slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := hc.Do(req); err == nil {
		t.Fatal("expected context error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("latency sleep ignored cancellation: took %v", elapsed)
	}
}

// fakeQuerier answers every query with a fixed tiny table.
type fakeQuerier struct{}

func (fakeQuerier) QueryMethodContext(_ context.Context, attrs []int, _ core.ReconstructMethod) (*marginal.Table, error) {
	t := marginal.New(attrs)
	t.Fill(1)
	return t, nil
}
func (fakeQuerier) Epsilon() float64         { return 1 }
func (fakeQuerier) Total() float64           { return 1 }
func (fakeQuerier) Views() []*marginal.Table { return nil }
func (fakeQuerier) Design() *covering.Design { return nil }

func TestSlowSynopsisHonorsDeadline(t *testing.T) {
	slow := &SlowSynopsis{Querier: fakeQuerier{}, Delay: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := slow.QueryMethodContext(ctx, []int{0}, core.CME)
	if !errors.Is(err, reconstruct.ErrDeadline) {
		t.Fatalf("err = %v, want reconstruct.ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("slow query ignored deadline: took %v", elapsed)
	}
}

func TestSlowSynopsisForwards(t *testing.T) {
	slow := &SlowSynopsis{Querier: fakeQuerier{}, Delay: time.Millisecond}
	got, err := slow.QueryMethodContext(context.Background(), []int{0, 1}, core.CME)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 4 {
		t.Errorf("forwarded table has %d cells, want 4", got.Size())
	}
}
