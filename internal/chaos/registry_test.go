package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"priview/internal/registry"
	"priview/internal/server"
	"priview/internal/snapshot"
	"priview/internal/telemetry"
)

// registryChaosFixture is the multi-tenant isolation rig: two real
// tenants on disk behind a registry and the full Multi middleware
// stack, with a TenantLoader pinning every injected fault to alpha.
type registryChaosFixture struct {
	root   string
	loader *TenantLoader
	reg    *registry.Registry
	ts     *httptest.Server
}

func newRegistryChaosFixture(t *testing.T) *registryChaosFixture {
	t.Helper()
	root := t.TempDir()
	for i, name := range []string{"alpha", "beta"} {
		st, err := snapshot.NewStore(filepath.Join(root, name), 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Save(durabilitySyn(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	loader := &TenantLoader{Target: "alpha"}
	// One shared telemetry registry, as priview-serve wires it: the
	// mid-storm scrape must see the release families and the HTTP
	// families on the same surface.
	tel := telemetry.NewRegistry()
	reg, err := registry.New(root, registry.Options{
		Loader:           loader,
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
		BackoffBase:      10 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		MaxInflight:      64,
		CacheEntries:     512,
		CacheBytes:       1 << 20,
		Logger:           log.New(io.Discard, "", 0),
		Metrics:          server.NewMetrics(tel),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	m := server.NewMulti(reg, "beta", server.Options{
		MaxK:         9,
		QueryTimeout: time.Second,
		Logger:       log.New(io.Discard, "", 0),
		Telemetry:    tel,
	})
	ts := httptest.NewServer(m)
	t.Cleanup(ts.Close)
	return &registryChaosFixture{root: root, loader: loader, reg: reg, ts: ts}
}

// get fetches a path and returns the status code.
func (fx *registryChaosFixture) get(t *testing.T, path string) int {
	t.Helper()
	resp, err := http.Get(fx.ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	//lint:ignore errdiscard draining a test response body
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// alphaStats decodes /v1/alpha/stats — the isolation proof reads the
// same observability surface operators do.
func (fx *registryChaosFixture) alphaStats(t *testing.T) registry.ReleaseStats {
	t.Helper()
	resp, err := http.Get(fx.ts.URL + "/v1/alpha/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d, want 200 (stats must answer even for a broken tenant)", resp.StatusCode)
	}
	var s registry.ReleaseStats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

// tearAlphaSnapshots overwrites every one of alpha's snapshot files
// with garbage — the torn-disk fault, applied at rest.
func (fx *registryChaosFixture) tearAlphaSnapshots(t *testing.T) {
	t.Helper()
	dir := filepath.Join(fx.root, "alpha")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	torn := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snapshot-") && strings.HasSuffix(e.Name(), ".json") {
			if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte(`{"torn`), 0o644); err != nil {
				t.Fatal(err)
			}
			torn++
		}
	}
	if torn == 0 {
		t.Fatal("no alpha snapshots found to tear")
	}
}

// repairAlpha saves a fresh valid snapshot into alpha's store.
func (fx *registryChaosFixture) repairAlpha(t *testing.T) {
	t.Helper()
	st, err := snapshot.NewStore(filepath.Join(fx.root, "alpha"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(durabilitySyn(7)); err != nil {
		t.Fatal(err)
	}
}

// betaStream hammers beta with workers concurrent query loops until
// stop is closed, recording every latency and any non-200 status.
type betaStream struct {
	stop chan struct{}
	wg   sync.WaitGroup

	mu        sync.Mutex
	latencies []time.Duration
	badCodes  []int
}

func (fx *registryChaosFixture) startBetaStream(workers int) *betaStream {
	bs := &betaStream{stop: make(chan struct{})}
	for w := 0; w < workers; w++ {
		bs.wg.Add(1)
		go func(w int) {
			defer bs.wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-bs.stop:
					return
				default:
				}
				a := (w + i) % 9
				b := (a + 1 + i%7) % 9
				if b == a {
					b = (a + 1) % 9
				}
				start := time.Now()
				resp, err := client.Get(fx.ts.URL + fmt.Sprintf("/v1/beta/marginal?attrs=%d,%d", a, b))
				elapsed := time.Since(start)
				code := 0
				if err == nil {
					//lint:ignore errdiscard draining a test response body
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					code = resp.StatusCode
				}
				bs.mu.Lock()
				bs.latencies = append(bs.latencies, elapsed)
				if code != http.StatusOK {
					bs.badCodes = append(bs.badCodes, code)
				}
				bs.mu.Unlock()
			}
		}(w)
	}
	return bs
}

// halt stops the stream and returns (p99 latency, bad responses, n).
func (bs *betaStream) halt() (time.Duration, []int, int) {
	close(bs.stop)
	bs.wg.Wait()
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return p99(bs.latencies), bs.badCodes, len(bs.latencies)
}

func p99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRegistryTenantIsolation is the multi-tenant headline proof:
// three distinct faults (torn snapshots, NaN poison past the loader,
// a loader slower than the query deadline) are pinned to release
// alpha while 12 workers stream queries against release beta through
// the full middleware stack. Beta must see zero non-200 responses and
// keep its p99 within 2× the fault-free baseline, while alpha's
// breaker trips, half-opens, and — once the tenant is repaired —
// recovers, all observed through /v1/alpha/stats.
func TestRegistryTenantIsolation(t *testing.T) {
	fx := newRegistryChaosFixture(t)

	// Fault-free baseline: load beta and measure its p99.
	if code := fx.get(t, "/v1/beta/marginal?attrs=0,1"); code != http.StatusOK {
		t.Fatalf("beta warmup = %d, want 200", code)
	}
	base := fx.startBetaStream(12)
	time.Sleep(300 * time.Millisecond)
	baseP99, baseBad, baseN := base.halt()
	if len(baseBad) > 0 {
		t.Fatalf("baseline beta stream had %d non-200s: %v", len(baseBad), baseBad)
	}
	t.Logf("baseline: %d queries, p99 %v", baseN, baseP99)
	// Deflake floor: on a tiny baseline, 2× can be microseconds.
	p99Limit := 2 * baseP99
	if floor := baseP99 + 25*time.Millisecond; p99Limit < floor {
		p99Limit = floor
	}

	// All three fault phases run against alpha with the beta stream
	// live; the stream's verdict at the end covers every phase.
	stream := fx.startBetaStream(12)

	// Phase 1 — torn snapshots: every alpha file is garbage, so loads
	// strike until the breaker opens. Alpha must fail fast (503), and
	// never 200.
	fx.tearAlphaSnapshots(t)
	waitFor(t, 10*time.Second, "alpha breaker to open on torn snapshots", func() bool {
		if code := fx.get(t, "/v1/alpha/marginal?attrs=0,1"); code == http.StatusOK {
			t.Fatalf("alpha served 200 from torn snapshots")
		}
		return fx.alphaStats(t).Breaker == "open"
	})
	s := fx.alphaStats(t)
	if s.BreakerTrips < 1 || s.LoadFailures < uint64(3) {
		t.Errorf("torn phase: trips %d failures %d, want ≥1 and ≥3", s.BreakerTrips, s.LoadFailures)
	}

	// Phase 2 — NaN poison: the tenant's files are repaired, but the
	// loader now hands back a synopsis with a poisoned cell. Only the
	// registry's audit gate stands between that synopsis and clients;
	// the half-open probe must strike and re-open the breaker.
	fx.repairAlpha(t)
	fx.loader.SetPoison(true)
	tripsBefore := s.BreakerTrips
	waitFor(t, 10*time.Second, "alpha breaker to re-open on poisoned probe", func() bool {
		if code := fx.get(t, "/v1/alpha/marginal?attrs=0,1"); code == http.StatusOK {
			t.Fatalf("alpha served 200 from a NaN-poisoned synopsis")
		}
		st := fx.alphaStats(t)
		return st.BreakerTrips > tripsBefore && st.Breaker == "open"
	})
	s = fx.alphaStats(t)
	if s.HalfOpenProbes < 1 {
		t.Errorf("poison phase ran no half-open probe (probes=%d)", s.HalfOpenProbes)
	}
	if !strings.Contains(s.LastError, "audit") {
		t.Errorf("poison phase last_error = %q, want an audit failure", s.LastError)
	}

	// Phase 3 — slow loader: loads stall past the query deadline. The
	// client gets a truthful 504, the strike re-opens the breaker, and
	// (key isolation property) the stalled probe is the only load slot
	// alpha can occupy — beta's stream keeps running.
	fx.loader.SetPoison(false)
	fx.loader.SetDelay(3 * time.Second)
	tripsBefore = s.BreakerTrips
	saw504 := false
	waitFor(t, 15*time.Second, "alpha breaker to re-open on slow loads", func() bool {
		code := fx.get(t, "/v1/alpha/marginal?attrs=0,1")
		if code == http.StatusOK {
			t.Fatalf("alpha served 200 through a 3s loader with a 1s deadline")
		}
		if code == http.StatusGatewayTimeout {
			saw504 = true
		}
		st := fx.alphaStats(t)
		return st.BreakerTrips > tripsBefore && st.Breaker == "open"
	})
	if !saw504 {
		t.Error("slow-loader phase never surfaced a 504 to the caller")
	}

	// Recovery: faults off, tenant intact. After the cooldown the next
	// probe must succeed and close the breaker.
	fx.loader.SetDelay(0)
	waitFor(t, 10*time.Second, "alpha to recover after faults cleared", func() bool {
		return fx.get(t, "/v1/alpha/marginal?attrs=0,1") == http.StatusOK
	})
	s = fx.alphaStats(t)
	if s.Breaker != "closed" || !s.Loaded {
		t.Errorf("recovered alpha: breaker %q loaded %v, want closed true", s.Breaker, s.Loaded)
	}
	if s.BreakerTrips < 3 {
		t.Errorf("full run tripped %d times, want ≥3 (one per fault phase)", s.BreakerTrips)
	}

	// Mid-storm scrape: the beta stream is still live, so the
	// exposition renders while its counters are being hammered, and
	// the strict parse re-checks every invariant. Alpha's fault
	// history and beta's cache traffic must share the surface.
	fams := scrapeMetrics(t, fx.ts.URL)
	if v := mustSample(t, fams, "priview_release_breaker_trips_total",
		"priview_release_breaker_trips_total", map[string]string{"release": "alpha"}); v < 3 {
		t.Errorf("breaker_trips{alpha} = %v on /metrics, want ≥ 3", v)
	}
	if v := mustSample(t, fams, "priview_release_load_failures_total",
		"priview_release_load_failures_total", map[string]string{"release": "alpha"}); v < 3 {
		t.Errorf("load_failures{alpha} = %v on /metrics, want ≥ 3", v)
	}
	if v := mustSample(t, fams, "priview_qcache_hits_total",
		"priview_qcache_hits_total", map[string]string{"release": "beta"}); v < 1 {
		t.Errorf("qcache_hits{beta} = %v on /metrics, want ≥ 1", v)
	}
	mustSample(t, fams, "priview_http_requests_total",
		"priview_http_requests_total", map[string]string{"route": "/v1/{release}/marginal", "status": "2xx"})

	// The verdict: beta never saw a single failure and its tail
	// latency stayed within bounds across every alpha fault.
	p99Faulted, bad, n := stream.halt()
	if len(bad) > 0 {
		t.Errorf("beta stream saw %d non-200 responses during alpha faults: %v", len(bad), bad[:min(len(bad), 10)])
	}
	t.Logf("faulted phases: %d beta queries, p99 %v (baseline %v, limit %v)", n, p99Faulted, baseP99, p99Limit)
	if p99Faulted > p99Limit {
		t.Errorf("beta p99 %v exceeded %v (baseline %v) while alpha faulted", p99Faulted, p99Limit, baseP99)
	}
}
