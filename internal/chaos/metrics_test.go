package chaos

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"testing"

	"priview/internal/telemetry"
)

// scrapeMetrics GETs a live server's /metrics mid-storm and
// round-trips the body through the strict parser, so the exposition
// path is exercised under the same concurrency the counters are — a
// malformed escape, a non-cumulative bucket or a duplicate sample
// fails the storm. When PRIVIEW_METRICS_SNAPSHOT is set the raw body
// is written there (the CI artifact; later scrapes in the same run
// overwrite, keeping the deepest-in-storm snapshot).
func scrapeMetrics(t *testing.T, base string) map[string]*telemetry.ParsedFamily {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	if path := os.Getenv("PRIVIEW_METRICS_SNAPSHOT"); path != "" {
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Errorf("writing metrics snapshot: %v", err)
		} else {
			t.Logf("wrote metrics snapshot to %s", path)
		}
	}
	fams, err := telemetry.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("mid-storm /metrics failed the strict parse: %v", err)
	}
	return fams
}

// mustSample fails unless family/sample/labels exists, returning its
// value.
func mustSample(t *testing.T, fams map[string]*telemetry.ParsedFamily, family, sample string, labels map[string]string) float64 {
	t.Helper()
	f := fams[family]
	if f == nil {
		t.Fatalf("family %s missing from /metrics", family)
	}
	s := f.Sample(sample, labels)
	if s == nil {
		t.Fatalf("sample %s%v missing from family %s", sample, labels, family)
	}
	return s.Value
}
