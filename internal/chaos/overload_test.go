package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"priview/internal/admission"
	"priview/internal/core"
	"priview/internal/marginal"
	"priview/internal/reconstruct"
	"priview/internal/registry"
	"priview/internal/server"
	"priview/internal/snapshot"
)

// varSlow is a querier whose per-query delay can be changed mid-test
// (atomically, so phase transitions are race-free under -race) — the
// stand-in for a solver tier getting slower under the same traffic.
type varSlow struct {
	server.Querier
	delay atomic.Int64 // nanoseconds
}

func (s *varSlow) SetDelay(d time.Duration) { s.delay.Store(int64(d)) }

func (s *varSlow) QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error) {
	if d := time.Duration(s.delay.Load()); d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, reconstruct.ContextErr(ctx)
		}
	}
	return s.Querier.QueryMethodContext(ctx, attrs, method)
}

// loadRec is one request's outcome in a load stream.
type loadRec struct {
	code int // 0 = transport error
	d    time.Duration
}

// loadStream hammers url-rooted marginal routes with workers concurrent
// query loops until halted, recording every outcome.
type loadStream struct {
	stop chan struct{}
	wg   sync.WaitGroup

	mu   sync.Mutex
	recs []loadRec
}

// startLoad launches workers query loops against base+path (a marginal
// route missing its attrs value). pace, when positive, spaces each
// worker's requests — the well-behaved-client knob.
func startLoad(base, path string, workers int, pace time.Duration) *loadStream {
	ls := &loadStream{stop: make(chan struct{})}
	for w := 0; w < workers; w++ {
		ls.wg.Add(1)
		go func(w int) {
			defer ls.wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-ls.stop:
					return
				default:
				}
				a := (w + i) % 9
				b := (a + 1 + i%7) % 9
				if b == a {
					b = (a + 1) % 9
				}
				start := time.Now()
				resp, err := client.Get(base + fmt.Sprintf("%s?attrs=%d,%d", path, a, b))
				rec := loadRec{d: time.Since(start)}
				if err == nil {
					//lint:ignore errdiscard draining a test response body
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					rec.code = resp.StatusCode
				}
				ls.mu.Lock()
				ls.recs = append(ls.recs, rec)
				ls.mu.Unlock()
				if pace > 0 {
					select {
					case <-ls.stop:
						return
					case <-time.After(pace):
					}
				}
			}
		}(w)
	}
	return ls
}

func (ls *loadStream) halt() []loadRec {
	close(ls.stop)
	ls.wg.Wait()
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.recs
}

// phaseReport is one storm phase's latency partition — what CI uploads
// as the chaos-overload artifact.
type phaseReport struct {
	Name       string         `json:"name"`
	Seconds    float64        `json:"seconds"`
	Requests   int            `json:"requests"`
	Codes      map[string]int `json:"codes"`
	GoodputRPS float64        `json:"goodput_rps"`
	OKP50Ms    float64        `json:"ok_p50_ms"`
	OKP99Ms    float64        `json:"ok_p99_ms"`
	ShedP99Ms  float64        `json:"shed_p99_ms"`
}

func summarize(name string, elapsed time.Duration, recs []loadRec) phaseReport {
	r := phaseReport{Name: name, Seconds: elapsed.Seconds(), Requests: len(recs), Codes: map[string]int{}}
	var ok, shed []time.Duration
	for _, rec := range recs {
		r.Codes[fmt.Sprint(rec.code)]++
		switch rec.code {
		case http.StatusOK:
			ok = append(ok, rec.d)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			shed = append(shed, rec.d)
		}
	}
	if elapsed > 0 {
		r.GoodputRPS = float64(len(ok)) / elapsed.Seconds()
	}
	r.OKP50Ms = float64(percentile(ok, 50)) / float64(time.Millisecond)
	r.OKP99Ms = float64(percentile(ok, 99)) / float64(time.Millisecond)
	r.ShedP99Ms = float64(percentile(shed, 99)) / float64(time.Millisecond)
	return r
}

func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*p/100]
}

// writeOverloadReport persists the phase partitions when the CI artifact
// path is configured via PRIVIEW_OVERLOAD_REPORT.
func writeOverloadReport(t *testing.T, phases []phaseReport) {
	t.Helper()
	path := os.Getenv("PRIVIEW_OVERLOAD_REPORT")
	if path == "" {
		return
	}
	blob, err := json.MarshalIndent(struct {
		Phases []phaseReport `json:"phases"`
	}{phases}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Errorf("writing overload report: %v", err)
	}
	t.Logf("wrote overload report to %s", path)
}

// run drives a measured load phase: workers stream for d, then the
// stream halts and the phase is summarized.
func runPhase(name, base, path string, workers int, pace, d time.Duration) phaseReport {
	ls := startLoad(base, path, workers, pace)
	time.Sleep(d)
	recs := ls.halt()
	return summarize(name, d, recs)
}

// TestOverloadStorm is the headline overload proof on a single-tenant
// server with adaptive admission over a deliberately slow solver:
//
//   - baseline: under-capacity traffic establishes goodput and p99;
//   - storm: ~2× capacity offered — goodput must hold ≥70% of baseline
//     (excess is shed with fast 429s, not absorbed as queueing);
//   - slow solver: the solver gets 4× slower under storm traffic —
//     admitted-request p99 must stay within 2× the slow solver's own
//     uncontended baseline, i.e. the queue cannot become the latency.
//
// The per-phase latency partitions are written as a JSON report when
// PRIVIEW_OVERLOAD_REPORT is set (the CI artifact).
func TestOverloadStorm(t *testing.T) {
	const baseDelay = 5 * time.Millisecond
	vs := &varSlow{Querier: durabilitySyn(3)}
	vs.SetDelay(baseDelay)
	srv := server.NewWithOptions(vs, server.Options{
		MaxK:         9,
		QueryTimeout: 2 * time.Second,
		Logger:       log.New(io.Discard, "", 0),
		Admission: &admission.Config{
			TargetDelay:  10 * time.Millisecond,
			Interval:     50 * time.Millisecond,
			MaxQueue:     32,
			InitialLimit: 8,
			MinLimit:     2,
			MaxLimit:     8,
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Baseline: 6 workers against a concurrency-8 server — under
	// capacity, nothing queues for long.
	base := runPhase("baseline", ts.URL, "/v1/marginal", 6, 0, 700*time.Millisecond)
	t.Logf("baseline: %d requests, goodput %.0f rps, ok p99 %.1fms", base.Requests, base.GoodputRPS, base.OKP99Ms)
	if base.GoodputRPS == 0 {
		t.Fatal("baseline produced no successful requests")
	}

	// Storm: ~2× the workers the capacity can carry. Goodput must not
	// collapse — shedding is the mechanism that protects it.
	storm := runPhase("storm", ts.URL, "/v1/marginal", 16, 0, time.Second)
	t.Logf("storm: %d requests, codes %v, goodput %.0f rps (floor %.0f)", storm.Requests, storm.Codes, storm.GoodputRPS, 0.7*base.GoodputRPS)
	if storm.GoodputRPS < 0.7*base.GoodputRPS {
		t.Errorf("storm goodput %.0f rps below 70%% of baseline %.0f rps", storm.GoodputRPS, base.GoodputRPS)
	}

	// Slow solver, uncontended: what the slower tier costs by itself.
	vs.SetDelay(4 * baseDelay)
	slowBase := runPhase("slow-baseline", ts.URL, "/v1/marginal", 2, 0, 600*time.Millisecond)
	if slowBase.OKP99Ms == 0 {
		t.Fatal("slow baseline produced no successful requests")
	}

	// Slow solver under storm: let the AIMD limit and CoDel adapt off
	// the record, then measure. Admitted requests must not inherit the
	// queue as latency.
	settle := startLoad(ts.URL, "/v1/marginal", 16, 0)
	time.Sleep(200 * time.Millisecond)
	// Mid-storm scrape: 16 workers are hammering the admission path
	// while the exposition renders; the strict parse re-checks the
	// histogram and label invariants under that concurrency.
	fams := scrapeMetrics(t, ts.URL)
	if v := mustSample(t, fams, "priview_admission_admitted_total",
		"priview_admission_admitted_total", nil); v == 0 {
		t.Error("admission_admitted_total = 0 on /metrics mid-storm")
	}
	if v := mustSample(t, fams, "priview_admission_shed_total", "priview_admission_shed_total", nil) +
		mustSample(t, fams, "priview_admission_codel_dropped_total", "priview_admission_codel_dropped_total", nil); v == 0 {
		t.Error("a 2× storm shed nothing on /metrics — admission series not wired")
	}
	mustSample(t, fams, "priview_http_requests_total",
		"priview_http_requests_total", map[string]string{"route": "/v1/marginal", "status": "2xx"})
	mustSample(t, fams, "priview_solve_seconds",
		"priview_solve_seconds_count", map[string]string{"method": "CME"})
	time.Sleep(200 * time.Millisecond)
	settle.halt()
	slowStorm := runPhase("slow-storm", ts.URL, "/v1/marginal", 16, 0, time.Second)
	p99Limit := 2 * slowBase.OKP99Ms
	if floor := slowBase.OKP99Ms + 75; p99Limit < floor {
		p99Limit = floor // deflake floor for sub-40ms baselines on busy CI
	}
	t.Logf("slow storm: %d requests, codes %v, ok p99 %.1fms (slow baseline %.1fms, limit %.1fms)",
		slowStorm.Requests, slowStorm.Codes, slowStorm.OKP99Ms, slowBase.OKP99Ms, p99Limit)
	if slowStorm.OKP99Ms > p99Limit {
		t.Errorf("slow-storm admitted p99 %.1fms exceeded %.1fms", slowStorm.OKP99Ms, p99Limit)
	}
	if slowStorm.Codes[fmt.Sprint(http.StatusOK)] == 0 {
		t.Error("slow storm starved every request — no goodput at all")
	}

	// The observability contract: /v1/stats must expose the admission
	// counters the phases above exercised.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Admission *admission.Stats `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission == nil {
		t.Fatal("/v1/stats has no admission block with adaptive admission enabled")
	}
	if stats.Admission.Admitted == 0 {
		t.Error("admission stats counted nothing admitted")
	}
	if stats.Admission.Shed+stats.Admission.CoDelDropped == 0 {
		t.Error("a 2× storm shed nothing — admission control never engaged")
	}

	writeOverloadReport(t, []phaseReport{base, storm, slowBase, slowStorm})
}

// startBatchLoad launches workers posting small batched-marginal
// requests against base+"/v1/marginals" until halted, recording every
// outcome in the same loadRec stream the single-query loops use.
func startBatchLoad(base string, workers int) *loadStream {
	ls := &loadStream{stop: make(chan struct{})}
	for w := 0; w < workers; w++ {
		ls.wg.Add(1)
		go func(w int) {
			defer ls.wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-ls.stop:
					return
				default:
				}
				a := (w + i) % 9
				b := (a + 1 + i%7) % 9
				if b == a {
					b = (a + 1) % 9
				}
				body := fmt.Sprintf(`{"queries":[{"attrs":[%d,%d]},{"attrs":[%d]}]}`, a, b, (a+b)%9)
				start := time.Now()
				resp, err := client.Post(base+"/v1/marginals", "application/json", strings.NewReader(body))
				rec := loadRec{d: time.Since(start)}
				if err == nil {
					//lint:ignore errdiscard draining a test response body
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					rec.code = resp.StatusCode
				}
				ls.mu.Lock()
				ls.recs = append(ls.recs, rec)
				ls.mu.Unlock()
			}
		}(w)
	}
	return ls
}

// TestBatchOverloadStorm drives the batched marginal route through the
// full admission stack alongside single-query traffic. The batch route
// must participate in overload control exactly like the single route:
// a mixed ~2× storm sheds with fast 429s rather than 500s or queue
// collapse, neither protocol starves the other, and batches that are
// answered are answered completely.
func TestBatchOverloadStorm(t *testing.T) {
	const delay = 5 * time.Millisecond
	vs := &varSlow{Querier: durabilitySyn(7)}
	vs.SetDelay(delay)
	srv := server.NewWithOptions(vs, server.Options{
		MaxK:         9,
		QueryTimeout: 2 * time.Second,
		Logger:       log.New(io.Discard, "", 0),
		Admission: &admission.Config{
			TargetDelay:  10 * time.Millisecond,
			Interval:     50 * time.Millisecond,
			MaxQueue:     8,
			InitialLimit: 8,
			MinLimit:     2,
			MaxLimit:     8,
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Probe: an answered batch is complete, in request order, with the
	// right cell counts — under no load first, so a storm-phase failure
	// below is attributable to overload handling, not the route itself.
	resp, err := http.Post(ts.URL+"/v1/marginals", "application/json",
		strings.NewReader(`{"queries":[{"attrs":[0,1]},{"attrs":[2]},{"attrs":[1,0]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var probe struct {
		Results []struct {
			Attrs []int     `json:"attrs"`
			Cells []float64 `json:"cells"`
		} `json:"results"`
	}
	code := resp.StatusCode
	err = json.NewDecoder(resp.Body).Decode(&probe)
	resp.Body.Close()
	if code != http.StatusOK || err != nil {
		t.Fatalf("probe batch: status %d, decode err %v", code, err)
	}
	if len(probe.Results) != 3 || len(probe.Results[0].Cells) != 4 || len(probe.Results[1].Cells) != 2 {
		t.Fatalf("probe batch shape: %+v", probe.Results)
	}

	// Batch-only baseline establishes that the route carries goodput.
	bls := startBatchLoad(ts.URL, 4)
	time.Sleep(700 * time.Millisecond)
	base := summarize("batch-baseline", 700*time.Millisecond, bls.halt())
	t.Logf("batch baseline: %d requests, codes %v, goodput %.0f rps", base.Requests, base.Codes, base.GoodputRPS)
	if base.GoodputRPS == 0 {
		t.Fatal("batch baseline produced no successful requests")
	}

	// Mixed storm: singles and batches compete for the same slots, with
	// far more streams in flight than the limit plus queue can hold.
	singles := startLoad(ts.URL, "/v1/marginal", 16, 0)
	batches := startBatchLoad(ts.URL, 16)
	time.Sleep(time.Second)
	srecs := singles.halt()
	brecs := batches.halt()
	sPhase := summarize("storm-singles", time.Second, srecs)
	bPhase := summarize("storm-batches", time.Second, brecs)
	t.Logf("mixed storm: singles %v, batches %v", sPhase.Codes, bPhase.Codes)

	okKey := fmt.Sprint(http.StatusOK)
	shedCount := func(codes map[string]int) int {
		return codes[fmt.Sprint(http.StatusTooManyRequests)] +
			codes[fmt.Sprint(http.StatusServiceUnavailable)] +
			codes[fmt.Sprint(http.StatusGatewayTimeout)]
	}
	if bPhase.Codes[okKey] == 0 {
		t.Error("batch route starved during mixed storm — no batch was served")
	}
	if sPhase.Codes[okKey] == 0 {
		t.Error("single route starved during mixed storm — no single query was served")
	}
	if shedCount(sPhase.Codes)+shedCount(bPhase.Codes) == 0 {
		t.Error("an over-capacity mixed storm shed nothing — admission control never engaged on the batch route")
	}
	for _, codes := range []map[string]int{sPhase.Codes, bPhase.Codes} {
		if n := codes[fmt.Sprint(http.StatusInternalServerError)]; n > 0 {
			t.Errorf("storm produced %d 500s — overload must shed, not fail", n)
		}
	}

	// The admission counters must attribute the storm.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats struct {
		Admission *admission.Stats `json:"admission"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission == nil || stats.Admission.Admitted == 0 {
		t.Fatalf("admission stats missing or empty: %+v", stats.Admission)
	}
	// The phase partitions are logged rather than written to the CI
	// artifact path: TestOverloadStorm owns PRIVIEW_OVERLOAD_REPORT.
}

// TestRetryAmplificationBounded proves the client-side retry budget
// bounds amplification during a full outage: with RetryBudget 0.1 and
// a burst of 1, 100 requests against a hard-down server may cost at
// most 110 wire attempts (measured: ~101), where the unbudgeted client
// would cost MaxAttempts×100.
func TestRetryAmplificationBounded(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := server.NewClientWithPolicy(ts.URL, nil, server.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		RetryBudget: 0.1,
		RetryBurst:  1,
	})
	const n = 100
	budgetErrs := 0
	for i := 0; i < n; i++ {
		_, err := c.Marginal([]int{0, 1}, "")
		if err == nil {
			t.Fatal("outage request succeeded")
		}
		if errors.Is(err, server.ErrRetryBudget) {
			budgetErrs++
		}
	}
	amplification := float64(hits.Load()) / float64(n)
	t.Logf("%d requests cost %d attempts: amplification %.3f (budget denied %d)", n, hits.Load(), amplification, budgetErrs)
	if amplification > 1.1 {
		t.Errorf("retry amplification %.3f exceeds 1.1 with a 0.1 retry budget", amplification)
	}
	if budgetErrs == 0 {
		t.Error("the exhausted budget never surfaced as ErrRetryBudget")
	}
	if rs := c.RetryStats(); rs.BudgetDenied == 0 {
		t.Errorf("RetryStats = %+v, want BudgetDenied > 0", rs)
	}
}

// TestGreedyTenantFairness floods one release through the full Multi
// stack while a well-behaved tenant queries its own release within
// quota. The greedy tenant must degrade to its token-bucket rate (429s
// with Retry-After), and the polite tenant must see a 0% error rate —
// per-tenant buckets, not shared luck, are the fairness mechanism.
func TestGreedyTenantFairness(t *testing.T) {
	root := t.TempDir()
	for i, name := range []string{"greedy", "polite"} {
		st, err := snapshot.NewStore(filepath.Join(root, name), 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Save(durabilitySyn(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	reg, err := registry.New(root, registry.Options{
		TenantRPS:    50,
		TenantBurst:  25,
		MaxInflight:  64,
		CacheEntries: 512,
		CacheBytes:   1 << 20,
		Logger:       log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	m := server.NewMulti(reg, "", server.Options{
		MaxK:         9,
		QueryTimeout: 2 * time.Second,
		Logger:       log.New(io.Discard, "", 0),
		// Adaptive admission is on, sized so the router itself never
		// becomes the bottleneck — fairness must come from the buckets.
		Admission: &admission.Config{InitialLimit: 32, MinLimit: 16, MaxLimit: 64, MaxQueue: 64},
	})
	ts := httptest.NewServer(m)
	defer ts.Close()

	// Warm both releases so neither stream pays the cold load.
	for _, name := range []string{"greedy", "polite"} {
		resp, err := http.Get(ts.URL + "/v1/" + name + "/marginal?attrs=0,1")
		if err != nil {
			t.Fatal(err)
		}
		//lint:ignore errdiscard draining a test response body
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s warmup = %d, want 200", name, resp.StatusCode)
		}
	}

	greedy := startLoad(ts.URL, "/v1/greedy/marginal", 8, 0)
	polite := startLoad(ts.URL, "/v1/polite/marginal", 1, 50*time.Millisecond) // ~20 rps, well under 50
	time.Sleep(time.Second)
	greedyRecs := greedy.halt()
	politeRecs := polite.halt()

	var politeBad, greedyLimited int
	for _, rec := range politeRecs {
		if rec.code != http.StatusOK {
			politeBad++
		}
	}
	for _, rec := range greedyRecs {
		if rec.code == http.StatusTooManyRequests {
			greedyLimited++
		}
	}
	t.Logf("greedy: %d requests (%d rate limited); polite: %d requests (%d errors)",
		len(greedyRecs), greedyLimited, len(politeRecs), politeBad)
	if politeBad > 0 {
		t.Errorf("polite tenant saw %d non-200 responses while greedy flooded", politeBad)
	}
	if greedyLimited == 0 {
		t.Error("greedy tenant was never rate limited")
	}

	// The per-release stats surface must attribute the limiting.
	for name, want := range map[string]bool{"greedy": true, "polite": false} {
		resp, err := http.Get(ts.URL + "/v1/" + name + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var s registry.ReleaseStats
		err = json.NewDecoder(resp.Body).Decode(&s)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if limited := s.RateLimited > 0; limited != want {
			t.Errorf("%s rate_limited = %d, want >0 == %v", name, s.RateLimited, want)
		}
	}
}
