package chaos

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"

	"priview/internal/snapshot"
)

// ErrInjectedFS is the failure FaultFS and Writer fabricate for
// filesystem operations; tests assert on it with errors.Is.
var ErrInjectedFS = errors.New("chaos: injected filesystem fault")

// Writer wraps an io.Writer and fails with ErrInjectedFS after
// FailAfter bytes have been accepted — a deterministic short write
// (full disk, yanked device). FailAfter <= 0 fails the first write.
type Writer struct {
	W         io.Writer
	FailAfter int

	written int
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	room := w.FailAfter - w.written
	if room <= 0 {
		return 0, fmt.Errorf("%w: write refused after %d bytes", ErrInjectedFS, w.written)
	}
	if len(p) <= room {
		n, err := w.W.Write(p)
		w.written += n
		return n, err
	}
	n, err := w.W.Write(p[:room])
	w.written += n
	if err != nil {
		return n, err
	}
	return n, fmt.Errorf("%w: short write after %d bytes", ErrInjectedFS, w.written)
}

// FaultFS wraps a snapshot.FS and injects storage faults
// deterministically:
//
//   - TornWriteAt > 0 silently truncates every file created through it
//     to that many bytes — the write "succeeds" (sync, close and rename
//     all report OK) but the bytes never hit the platter, modeling a
//     lying disk or a crash between fsync acknowledgment and stable
//     storage.
//   - FlipBit flips the lowest bit of byte FlipBitOffset in every file
//     created through it — bit rot.
//   - RenameFailures / SyncFailures fail that many Rename/Sync calls
//     with ErrInjectedFS before behaving normally — a crash window in
//     the middle of the atomic publish protocol.
//
// All other operations delegate to Base. The zero value of the fault
// fields injects nothing.
type FaultFS struct {
	Base snapshot.FS

	TornWriteAt   int
	FlipBit       bool
	FlipBitOffset int

	mu             sync.Mutex
	renameFailures int
	syncFailures   int
}

// NewFaultFS returns a FaultFS over base with no faults armed.
func NewFaultFS(base snapshot.FS) *FaultFS {
	return &FaultFS{Base: base}
}

// FailRenames arms the next n Rename calls to fail.
func (f *FaultFS) FailRenames(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renameFailures = n
}

// FailSyncs arms the next n file Sync calls to fail.
func (f *FaultFS) FailSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncFailures = n
}

// MkdirAll implements snapshot.FS.
func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error { return f.Base.MkdirAll(dir, perm) }

// CreateTemp implements snapshot.FS. The returned file buffers all
// writes and applies the armed corruption when closed, so the
// "successful" write path is exercised end to end.
func (f *FaultFS) CreateTemp(dir, pattern string) (snapshot.File, error) {
	real, err := f.Base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, real: real}, nil
}

// Rename implements snapshot.FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	fail := f.renameFailures > 0
	if fail {
		f.renameFailures--
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: rename %s", ErrInjectedFS, newpath)
	}
	return f.Base.Rename(oldpath, newpath)
}

// Remove implements snapshot.FS.
func (f *FaultFS) Remove(name string) error { return f.Base.Remove(name) }

// ReadFile implements snapshot.FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.Base.ReadFile(name) }

// ReadDir implements snapshot.FS.
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.Base.ReadDir(name) }

// SyncDir implements snapshot.FS.
func (f *FaultFS) SyncDir(dir string) error { return f.Base.SyncDir(dir) }

// faultFile buffers writes and applies the FaultFS corruption on Close,
// reporting success throughout — corruption the writer cannot observe.
type faultFile struct {
	fs   *FaultFS
	real snapshot.File
	buf  []byte
}

func (f *faultFile) Name() string { return f.real.Name() }

func (f *faultFile) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	fail := f.fs.syncFailures > 0
	if fail {
		f.fs.syncFailures--
	}
	f.fs.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: sync %s", ErrInjectedFS, f.real.Name())
	}
	return nil
}

func (f *faultFile) Close() error {
	data := f.buf
	if f.fs.TornWriteAt > 0 && len(data) > f.fs.TornWriteAt {
		data = data[:f.fs.TornWriteAt]
	}
	if f.fs.FlipBit {
		if off := f.fs.FlipBitOffset; off >= 0 && off < len(data) {
			data = append([]byte(nil), data...)
			data[off] ^= 1
		}
	}
	if _, err := f.real.Write(data); err != nil {
		//lint:ignore errdiscard the write error takes precedence over close
		_ = f.real.Close()
		return err
	}
	if err := f.real.Sync(); err != nil {
		//lint:ignore errdiscard the sync error takes precedence over close
		_ = f.real.Close()
		return err
	}
	return f.real.Close()
}
