package chaos

import (
	"context"
	"math"
	"sync"
	"time"

	"priview/internal/snapshot"
)

// TenantLoader is a registry.Loader that injects load-path faults
// pinned to exactly one release — the blast-radius instrument of the
// multi-tenant chaos suite. Every other release loads through the
// normal store path untouched, so any cross-tenant symptom the suite
// observes is an isolation failure, not injected noise.
//
// Faults are armed and disarmed at runtime:
//
//   - SetDelay(d) stalls the target's loads for d, honoring the
//     caller's context — the slow-tenant failure mode that must not
//     starve healthy tenants of the shared load slots.
//   - SetPoison(true) loads the target normally and then writes NaN
//     into one view cell, a synopsis that is bytewise valid but
//     violates the release invariants; only the registry's audit gate
//     can catch it.
//
// The zero fault state delegates everything; TenantLoader is safe for
// concurrent use.
type TenantLoader struct {
	// Target is the one release name faults apply to.
	Target string

	mu     sync.Mutex
	delay  time.Duration
	poison bool
}

// SetDelay arms (d > 0) or disarms (d <= 0) the slow-load fault.
func (l *TenantLoader) SetDelay(d time.Duration) {
	l.mu.Lock()
	l.delay = d
	l.mu.Unlock()
}

// SetPoison arms or disarms the NaN-injection fault.
func (l *TenantLoader) SetPoison(v bool) {
	l.mu.Lock()
	l.poison = v
	l.mu.Unlock()
}

// Load implements registry.Loader.
func (l *TenantLoader) Load(ctx context.Context, release string, st *snapshot.Store) (*snapshot.LoadResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	delay, poison := l.delay, l.poison
	l.mu.Unlock()
	if release != l.Target {
		delay, poison = 0, false
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	res, err := st.Load()
	if err != nil {
		return nil, err
	}
	if poison && len(res.Synopsis.Views()) > 0 {
		v := res.Synopsis.Views()[0]
		if len(v.Cells) > 0 {
			v.Cells[0] = math.NaN()
		}
	}
	return res, nil
}
