// Package chaos provides deterministic fault injection for resilience
// testing of the PriView serving path. It offers two instruments:
//
//   - Transport, an http.RoundTripper that injects connection errors,
//     synthetic HTTP statuses, and latency in front of a real transport,
//     driven by a seeded PRNG so every run of a test observes the same
//     fault sequence;
//   - SlowSynopsis, a server.Querier wrapper that delays every marginal
//     query while honoring context cancellation, standing in for a
//     reconstruction too slow for its deadline.
//
// Determinism is the point: a chaos test that flakes is worse than no
// chaos test. Neither instrument draws from internal/noise — injected
// faults are not privacy-relevant randomness.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"priview/internal/core"
	"priview/internal/marginal"
	"priview/internal/reconstruct"
	"priview/internal/server"
)

// ErrInjected is the connection-level failure Transport fabricates;
// tests assert on it with errors.Is.
var ErrInjected = errors.New("chaos: injected connection error")

// Transport is a fault-injecting http.RoundTripper. Probabilities are
// evaluated per request in order: connection error, then status
// injection, then latency + forwarding to the base transport. The
// zero value injects nothing and forwards to http.DefaultTransport.
type Transport struct {
	// Base performs real round trips (nil selects
	// http.DefaultTransport).
	Base http.RoundTripper
	// ErrProb is the probability of failing the request with
	// ErrInjected before it reaches the wire.
	ErrProb float64
	// StatusProb is the probability of answering with a synthetic
	// Status response instead of forwarding.
	StatusProb float64
	// Status is the synthetic status code (0 selects 503).
	Status int
	// RetryAfter, when positive, is written on synthetic responses as a
	// whole-seconds Retry-After header.
	RetryAfter time.Duration
	// Latency is added before every forwarded request, honoring the
	// request context (a canceled wait returns the context error).
	Latency time.Duration

	mu       sync.Mutex
	rng      uint64
	seeded   bool
	injected Injected
}

// Injected counts the faults a Transport has delivered.
type Injected struct {
	Errors   int // connection errors
	Statuses int // synthetic status responses
	Forwards int // requests forwarded to the base transport
}

// NewTransport returns a Transport with a deterministic fault sequence
// derived from seed. Configure the exported fields before first use.
func NewTransport(seed uint64) *Transport {
	t := &Transport{}
	t.seed(seed)
	return t
}

func (t *Transport) seed(seed uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rng = seed
	t.seeded = true
}

// next draws a uniform float64 in [0, 1) from the transport's splitmix64
// stream.
func (t *Transport) next() float64 {
	// Callers hold t.mu.
	if !t.seeded {
		t.rng = 1
		t.seeded = true
	}
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Counts returns a snapshot of the fault counters.
func (t *Transport) Counts() Injected {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	draw := t.next()
	injectErr := t.ErrProb > 0 && draw < t.ErrProb
	injectStatus := !injectErr && t.StatusProb > 0 && draw < t.ErrProb+t.StatusProb
	switch {
	case injectErr:
		t.injected.Errors++
	case injectStatus:
		t.injected.Statuses++
	default:
		t.injected.Forwards++
	}
	t.mu.Unlock()

	if injectErr {
		return nil, fmt.Errorf("%w (%s %s)", ErrInjected, req.Method, req.URL.Path)
	}
	if injectStatus {
		status := t.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		resp := &http.Response{
			StatusCode: status,
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("chaos: injected status")),
			Request:    req,
		}
		if t.RetryAfter > 0 {
			secs := int((t.RetryAfter + time.Second - 1) / time.Second)
			resp.Header.Set("Retry-After", strconv.Itoa(secs))
		}
		return resp, nil
	}
	if t.Latency > 0 {
		timer := time.NewTimer(t.Latency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// SlowSynopsis wraps a server.Querier, delaying every marginal query by
// Delay while honoring context cancellation — the stand-in for a
// reconstruction that cannot meet its deadline. Cancellation surfaces
// through reconstruct.ContextErr, the same typed errors the real
// solvers return.
type SlowSynopsis struct {
	server.Querier
	// Delay is added before every query.
	Delay time.Duration
	// Block, when non-nil, is received from before querying (after the
	// delay); tests use it as a gate to hold requests in flight
	// deterministically.
	Block <-chan struct{}
}

// QueryMethodContext delays, then forwards to the wrapped synopsis.
func (s *SlowSynopsis) QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error) {
	if s.Delay > 0 {
		timer := time.NewTimer(s.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, reconstruct.ContextErr(ctx)
		}
	}
	if s.Block != nil {
		select {
		case <-s.Block:
		case <-ctx.Done():
			return nil, reconstruct.ContextErr(ctx)
		}
	}
	return s.Querier.QueryMethodContext(ctx, attrs, method)
}
