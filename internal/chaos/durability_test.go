package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/reconstruct"
	"priview/internal/server"
	"priview/internal/snapshot"
)

func durabilitySyn(seed int64) *core.Synopsis {
	data := synth.MSNBC(1000, seed)
	dg := covering.Groups(9, 4)
	return core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg}, noise.NewStream(seed))
}

// TestWriterShortWriteSurfaces proves a short write can never look like
// success: snapshot.Write into a failing writer reports the injected
// error.
func TestWriterShortWriteSurfaces(t *testing.T) {
	var sink bytes.Buffer
	w := &Writer{W: &sink, FailAfter: 64}
	err := snapshot.Write(w, durabilitySyn(1))
	if !errors.Is(err, ErrInjectedFS) {
		t.Fatalf("err = %v, want ErrInjectedFS", err)
	}
	if sink.Len() > 64 {
		t.Fatalf("writer accepted %d bytes past the fault point", sink.Len())
	}
}

// TestTornSnapshotQuarantinedWithFallback is the headline durability
// proof: a snapshot torn by a lying disk (write + sync + rename all
// reported success) is detected by the checksum at load time,
// quarantined to *.corrupt, and the store falls back to the older
// verifiable snapshot.
func TestTornSnapshotQuarantinedWithFallback(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(snapshot.OS{})
	st, err := snapshot.NewStoreFS(ffs, dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	good := durabilitySyn(2)
	if _, err := st.Save(good); err != nil {
		t.Fatal(err)
	}

	ffs.TornWriteAt = 100 // every byte past 100 is silently lost
	torn, err := st.Save(durabilitySyn(3))
	if err != nil {
		t.Fatalf("torn save was supposed to look successful, got %v", err)
	}
	ffs.TornWriteAt = 0
	if fi, err := os.Stat(torn); err != nil || fi.Size() != 100 {
		t.Fatalf("torn file: %v size=%v, want 100 bytes on disk", err, fi.Size())
	}

	res, err := st.Load()
	if err != nil {
		t.Fatalf("Load failed despite a good older snapshot: %v", err)
	}
	if filepath.Base(res.Path) != "snapshot-000001.json" {
		t.Fatalf("loaded %s, want fallback to the first snapshot", res.Path)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined = %v, want the torn file", res.Quarantined)
	}
	if _, err := os.Stat(torn + ".corrupt"); err != nil {
		t.Fatalf("torn file not quarantined: %v", err)
	}
	if !marginal.Equal(good.Query([]int{0, 1}), res.Synopsis.Query([]int{0, 1}), 1e-9) {
		t.Fatal("fallback synopsis does not match what was saved")
	}
}

// TestBitFlippedSnapshotDetected flips a single bit mid-payload in an
// otherwise perfect write; the checksum refuses it.
func TestBitFlippedSnapshotDetected(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(snapshot.OS{})
	st, err := snapshot.NewStoreFS(ffs, dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(durabilitySyn(4)); err != nil {
		t.Fatal(err)
	}
	names, err := st.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatal(err)
	}

	ffs.FlipBit = true
	ffs.FlipBitOffset = len(raw) / 2 // deep inside the payload cells
	if _, err := st.Save(durabilitySyn(5)); err != nil {
		t.Fatalf("bit-rotted save was supposed to look successful, got %v", err)
	}
	ffs.FlipBit = false

	res, err := st.Load()
	if err != nil {
		t.Fatalf("Load failed despite a good older snapshot: %v", err)
	}
	if filepath.Base(res.Path) != names[0] {
		t.Fatalf("loaded %s, want fallback to %s", res.Path, names[0])
	}
	if len(res.Quarantined) != 1 || len(res.Errs) != 1 {
		t.Fatalf("quarantined = %v errs = %v", res.Quarantined, res.Errs)
	}
	if !errors.Is(res.Errs[0], snapshot.ErrChecksum) && !errors.Is(res.Errs[0], snapshot.ErrFormat) {
		t.Fatalf("rejection reason = %v, want checksum or format error", res.Errs[0])
	}
}

// TestFailedRenameLeavesOldSnapshotServing proves a crash in the
// publish step is harmless: Save reports the failure, the previous
// snapshot still loads, and no half-published file is visible.
func TestFailedRenameLeavesOldSnapshotServing(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(snapshot.OS{})
	st, err := snapshot.NewStoreFS(ffs, dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	good := durabilitySyn(6)
	if _, err := st.Save(good); err != nil {
		t.Fatal(err)
	}
	ffs.FailRenames(1)
	if _, err := st.Save(durabilitySyn(7)); !errors.Is(err, ErrInjectedFS) {
		t.Fatalf("Save err = %v, want ErrInjectedFS", err)
	}
	names, err := st.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("store lists %v, want only the original snapshot", names)
	}
	res, err := st.Load()
	if err != nil || len(res.Quarantined) != 0 {
		t.Fatalf("old snapshot unusable after failed publish: res=%+v err=%v", res, err)
	}
}

// TestFailedSyncSurfaces proves an fsync failure is reported, not
// swallowed — the one storage error the atomic protocol cannot paper
// over.
func TestFailedSyncSurfaces(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(snapshot.OS{})
	ffs.FailSyncs(1)
	err := snapshot.WriteFile(ffs, filepath.Join(dir, "syn.json"), durabilitySyn(8))
	if !errors.Is(err, ErrInjectedFS) {
		t.Fatalf("err = %v, want ErrInjectedFS", err)
	}
}

// TestNaNViewNeverServesNaN is the numerical half of the durability
// contract, proven end to end over HTTP: with a view poisoned by NaN
// mid-flight, every marginal query still answers 200 with fully finite
// cells (marked degraded) — zero failed queries, zero NaN cells.
func TestNaNViewNeverServesNaN(t *testing.T) {
	syn := durabilitySyn(9)
	for i := range syn.Views()[0].Cells {
		syn.Views()[0].Cells[i] = math.NaN()
	}
	srv := httptest.NewServer(server.New(syn, 6))
	defer srv.Close()

	queries := [][]int{{0, 1}, {0, 5}, {1, 6}, {2, 3}, {0, 1, 5}, {4}}
	degraded := 0
	for _, attrs := range queries {
		for _, method := range []string{"CME", "CLN", "CLP"} {
			url := fmt.Sprintf("%s/v1/marginal?attrs=%s&method=%s", srv.URL, joinInts(attrs), method)
			resp, err := http.Get(url)
			if err != nil {
				t.Fatalf("query %v %s: %v", attrs, method, err)
			}
			var body struct {
				Cells    []float64 `json:"cells"`
				Total    float64   `json:"total"`
				Degraded bool      `json:"degraded"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query %v %s: status %d — a poisoned view must degrade, not fail", attrs, method, resp.StatusCode)
			}
			if derr != nil {
				t.Fatalf("query %v %s: decoding: %v", attrs, method, derr)
			}
			if len(body.Cells) != 1<<uint(len(attrs)) {
				t.Fatalf("query %v %s: %d cells", attrs, method, len(body.Cells))
			}
			for j, c := range body.Cells {
				if math.IsNaN(c) || math.IsInf(c, 0) {
					t.Fatalf("query %v %s: cell %d is %v — NaN must never reach a client", attrs, method, j, c)
				}
			}
			if body.Degraded {
				degraded++
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no query reported degraded=true; the poisoned view was never touched")
	}
}

// TestDegradedQueryCarriesErrNumerical pins the library-level contract
// the server test exercises over HTTP: a poisoned view yields a finite
// fallback table together with an error matching reconstruct.ErrNumerical.
func TestDegradedQueryCarriesErrNumerical(t *testing.T) {
	syn := durabilitySyn(10)
	for i := range syn.Views()[0].Cells {
		syn.Views()[0].Cells[i] = math.Inf(1)
	}
	attrs := syn.Views()[0].Attrs[:2]
	table, err := syn.QueryMethodContext(t.Context(), attrs, core.CME)
	if !errors.Is(err, reconstruct.ErrNumerical) {
		t.Fatalf("err = %v, want ErrNumerical", err)
	}
	var nerr *reconstruct.NumericalError
	if !errors.As(err, &nerr) {
		t.Fatalf("err %T does not unwrap to *NumericalError", err)
	}
	if table == nil || !reconstruct.FiniteTable(table) {
		t.Fatalf("fallback table = %v, want finite", table)
	}
}

func joinInts(xs []int) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprint(x)
	}
	return out
}
