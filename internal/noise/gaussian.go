package noise

import "math"

// Gaussian draws one sample from N(0, sigma²) using the source's
// uniform variates (Box–Muller; one of the pair is discarded to keep
// the Source interface minimal).
func Gaussian(src Source, sigma float64) float64 {
	if !(sigma > 0) || math.IsInf(sigma, 1) {
		panic("noise: Gaussian sigma must be positive and finite")
	}
	// Box–Muller with guards against log(0).
	u1 := src.Float64()
	//lint:ignore floatcmp log(u1) is finite for every u1 except exactly zero; rejecting more would bias the sample
	for u1 == 0 {
		u1 = src.Float64()
	}
	u2 := src.Float64()
	return sigma * math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// GaussianMechSigma returns the noise standard deviation for the
// analytic Gaussian mechanism under (ε, δ)-DP with the given L2
// sensitivity, using the classic calibration
// σ = Δ₂·sqrt(2 ln(1.25/δ))/ε (valid for ε ≤ 1; conservative above).
func GaussianMechSigma(l2Sensitivity, epsilon, delta float64) float64 {
	if !(l2Sensitivity > 0) {
		panic("noise: sensitivity must be positive")
	}
	if !(epsilon > 0) {
		panic("noise: epsilon must be positive")
	}
	if !(delta > 0 && delta < 1) {
		panic("noise: delta must be in (0,1)")
	}
	return l2Sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / epsilon
}

// GaussianVariance returns σ².
func GaussianVariance(sigma float64) float64 { return sigma * sigma }
