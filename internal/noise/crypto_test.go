package noise

import (
	"math"
	"testing"
)

// The compile-time assertion lives in crypto.go; this test exercises
// the contract: values in [0, 1), not degenerate, roughly uniform.
func TestCryptoSourceRange(t *testing.T) {
	var src CryptoSource
	const n = 20000
	sum := 0.0
	distinct := make(map[float64]struct{})
	for i := 0; i < n; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("draw %d: %v outside [0, 1)", i, v)
		}
		sum += v
		distinct[v] = struct{}{}
	}
	// Mean of Uniform[0,1) is 1/2 with sd 1/sqrt(12n) ≈ 0.002; a 0.02
	// band is a > 9-sigma allowance, so flakes mean real breakage.
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean of %d draws = %v, want ≈ 0.5", n, mean)
	}
	if len(distinct) < n/2 {
		t.Errorf("only %d distinct values in %d draws", len(distinct), n)
	}
}

func TestCryptoSourceFeedsLaplace(t *testing.T) {
	var src CryptoSource
	for i := 0; i < 100; i++ {
		v := Laplace(src, 1.0)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Laplace(CryptoSource, 1) = %v", v)
		}
	}
}
