package noise

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
)

// CryptoSource is a crypto/rand-backed Source: the production
// alternative to the deterministic experiment streams. Floating-point
// attacks on DP implementations (Mironov 2012) start from predictable
// generators, so an actual release of a synopsis should draw its noise
// from the operating system's CSPRNG rather than a seeded Stream.
//
// The zero value is ready to use and safe for concurrent use; it holds
// no state. It panics if the OS entropy source fails, since silently
// degraded randomness would void the privacy guarantee.
type CryptoSource struct{}

var _ Source = CryptoSource{}

// Float64 returns a uniform variate in [0, 1) with 53 random bits of
// mantissa, the same resolution math/rand provides.
func (CryptoSource) Float64() float64 {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(fmt.Sprintf("noise: crypto source: %v", err))
	}
	return float64(binary.LittleEndian.Uint64(buf[:])>>11) / (1 << 53)
}
