package noise

import (
	"math"
	"testing"
)

func TestGaussianMoments(t *testing.T) {
	src := NewStream(3)
	const n = 200000
	sigma := 2.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Gaussian(src, sigma)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Gaussian mean = %v, want ~0", mean)
	}
	want := sigma * sigma
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("Gaussian variance = %v, want ~%v", variance, want)
	}
}

func TestGaussianTails(t *testing.T) {
	// ~99.7% of mass within 3σ.
	src := NewStream(4)
	outside := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if math.Abs(Gaussian(src, 1)) > 3 {
			outside++
		}
	}
	frac := float64(outside) / n
	if frac > 0.006 {
		t.Errorf("3σ tail fraction = %v, want ≈ 0.003", frac)
	}
}

func TestGaussianPanicsOnBadSigma(t *testing.T) {
	for _, sigma := range []float64{0, -1, math.Inf(1)} {
		func() {
			defer func() { _ = recover() }()
			Gaussian(NewStream(1), sigma)
			t.Errorf("Gaussian(σ=%v) did not panic", sigma)
		}()
	}
}

func TestGaussianMechSigma(t *testing.T) {
	// σ = Δ√(2 ln(1.25/δ))/ε.
	got := GaussianMechSigma(1, 1, 1e-5)
	want := math.Sqrt(2 * math.Log(1.25/1e-5))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("sigma = %v, want %v", got, want)
	}
	// Scaling in sensitivity and epsilon.
	if GaussianMechSigma(2, 1, 1e-5) != 2*got {
		t.Error("sigma not linear in sensitivity")
	}
	if math.Abs(GaussianMechSigma(1, 2, 1e-5)-got/2) > 1e-12 {
		t.Error("sigma not inverse in epsilon")
	}
}

func TestGaussianMechSigmaPanics(t *testing.T) {
	cases := []struct{ s, e, d float64 }{
		{0, 1, 1e-5}, {1, 0, 1e-5}, {1, 1, 0}, {1, 1, 1},
	}
	for _, c := range cases {
		func() {
			defer func() { _ = recover() }()
			GaussianMechSigma(c.s, c.e, c.d)
			t.Errorf("GaussianMechSigma(%v,%v,%v) did not panic", c.s, c.e, c.d)
		}()
	}
}
