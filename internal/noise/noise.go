// Package noise provides the random-noise primitives used throughout
// PriView: Laplace samples calibrated to a query's sensitivity and
// privacy budget, plus deterministic, splittable random streams so that
// experiments are reproducible run to run.
package noise

import (
	"math"
	"math/rand"
)

// Source is the randomness interface the mechanisms consume. It is
// satisfied by *rand.Rand and by any test double that provides uniform
// variates in [0, 1).
type Source interface {
	Float64() float64
}

// Laplace draws one sample from the Laplace distribution with mean 0 and
// scale b, using inverse-transform sampling. It panics if b <= 0 or is
// not finite, since a non-positive scale always indicates a privacy
// accounting bug upstream.
func Laplace(src Source, b float64) float64 {
	if !(b > 0) || math.IsInf(b, 1) {
		panic("noise: Laplace scale must be positive and finite")
	}
	// u is uniform on (-1/2, 1/2]; the inverse CDF of Laplace(0, b) is
	// -b * sgn(u) * ln(1 - 2|u|).
	u := src.Float64() - 0.5
	//lint:ignore floatcmp the inverse CDF is exact at u = 0; treating near-zero u as zero would flatten the distribution's peak
	if u == 0 {
		return 0
	}
	sign := 1.0
	if u < 0 {
		sign = -1.0
		u = -u
	}
	// Guard against ln(0) when u == 0.5 exactly.
	arg := 1 - 2*u
	if arg <= 0 {
		arg = math.SmallestNonzeroFloat64
	}
	return -b * sign * math.Log(arg)
}

// LaplaceMechScale returns the Laplace scale needed to answer a query
// with the given L1 sensitivity under epsilon-differential privacy.
func LaplaceMechScale(sensitivity, epsilon float64) float64 {
	if !(sensitivity > 0) {
		panic("noise: sensitivity must be positive")
	}
	if !(epsilon > 0) {
		panic("noise: epsilon must be positive")
	}
	return sensitivity / epsilon
}

// LaplaceVariance returns the variance of a Laplace(0, b) variate, 2b^2.
func LaplaceVariance(b float64) float64 { return 2 * b * b }

// UnitVariance is the paper's V_u = 2/eps^2, the variance of the noise a
// single Laplace mechanism with sensitivity 1 adds under budget eps. The
// paper expresses every expected-squared-error formula in multiples of
// this unit (Eq. 2).
func UnitVariance(epsilon float64) float64 {
	return 2 / (epsilon * epsilon)
}

// Stream wraps a deterministic PRNG so callers can derive independent
// sub-streams by name. Deriving is stable: the same parent seed and name
// always yield the same child stream, regardless of derivation order.
type Stream struct {
	seed int64
	rng  *rand.Rand
}

// NewStream returns a stream rooted at the given seed.
func NewStream(seed int64) *Stream {
	return &Stream{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform integer in [0, n).
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Stream) Int63() int64 { return s.rng.Int63() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// NormFloat64 returns a standard normal variate.
func (s *Stream) NormFloat64() float64 { return s.rng.NormFloat64() }

// Derive returns an independent child stream determined by the parent
// seed and the given name. Children with distinct names are statistically
// independent for all practical purposes.
func (s *Stream) Derive(name string) *Stream {
	h := fnv64(name)
	// Mix the parent seed and the name hash with a splitmix64 round so
	// that nearby seeds do not produce correlated children.
	return NewStream(int64(splitmix64(uint64(s.seed) ^ h)))
}

// DeriveIndexed returns the i-th child of a named family, e.g. one stream
// per experiment repetition.
func (s *Stream) DeriveIndexed(name string, i int) *Stream {
	h := fnv64(name) + uint64(i)*0x9e3779b97f4a7c15
	return NewStream(int64(splitmix64(uint64(s.seed) ^ h)))
}

func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
