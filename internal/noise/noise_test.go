package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaplaceMoments(t *testing.T) {
	src := NewStream(1)
	const n = 200000
	b := 3.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Laplace(src, b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.1 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	want := 2 * b * b
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("Laplace variance = %v, want ~%v", variance, want)
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	src := NewStream(7)
	pos, neg := 0, 0
	for i := 0; i < 100000; i++ {
		if Laplace(src, 1) > 0 {
			pos++
		} else {
			neg++
		}
	}
	ratio := float64(pos) / float64(neg)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("sign ratio = %v, want ~1", ratio)
	}
}

func TestLaplacePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive scale")
		}
	}()
	Laplace(NewStream(1), 0)
}

func TestLaplaceMechScale(t *testing.T) {
	if got := LaplaceMechScale(20, 0.5); got != 40 {
		t.Errorf("LaplaceMechScale(20, 0.5) = %v, want 40", got)
	}
}

func TestLaplaceMechScalePanics(t *testing.T) {
	for _, tc := range []struct{ s, e float64 }{{0, 1}, {1, 0}, {-1, 1}, {1, -2}} {
		func() {
			defer func() { _ = recover() }()
			LaplaceMechScale(tc.s, tc.e)
			t.Errorf("LaplaceMechScale(%v, %v) did not panic", tc.s, tc.e)
		}()
	}
}

func TestUnitVariance(t *testing.T) {
	if got, want := UnitVariance(1.0), 2.0; got != want {
		t.Errorf("UnitVariance(1) = %v, want %v", got, want)
	}
	if got, want := UnitVariance(0.1), 200.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("UnitVariance(0.1) = %v, want %v", got, want)
	}
}

func TestLaplaceVarianceFormula(t *testing.T) {
	if got := LaplaceVariance(3); got != 18 {
		t.Errorf("LaplaceVariance(3) = %v, want 18", got)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("streams with the same seed diverged")
		}
	}
}

func TestDeriveStableAcrossOrder(t *testing.T) {
	parent1 := NewStream(9)
	parent2 := NewStream(9)
	// Consume some variates from parent2 first; derivation must not
	// depend on the parent's consumption state.
	for i := 0; i < 17; i++ {
		parent2.Float64()
	}
	c1 := parent1.Derive("views")
	c2 := parent2.Derive("views")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("derived stream depends on parent consumption order")
		}
	}
}

func TestDeriveDistinctNames(t *testing.T) {
	p := NewStream(3)
	a := p.Derive("a")
	b := p.Derive("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams for distinct names agree on %d of 64 draws", same)
	}
}

func TestDeriveIndexedDistinct(t *testing.T) {
	p := NewStream(3)
	a := p.DeriveIndexed("run", 0)
	b := p.DeriveIndexed("run", 1)
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Error("indexed derivations are not distinct")
	}
}

func TestLaplaceFiniteProperty(t *testing.T) {
	src := NewStream(11)
	f := func(scaleSeed uint8) bool {
		b := 0.01 + float64(scaleSeed)
		x := Laplace(src, b)
		return !math.IsNaN(x) && !math.IsInf(x, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitmixAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	x := uint64(0x1234abcd)
	base := splitmix64(x)
	for bit := 0; bit < 64; bit += 7 {
		y := splitmix64(x ^ (1 << uint(bit)))
		diff := popcount(base ^ y)
		if diff < 10 || diff > 54 {
			t.Errorf("bit %d: only %d output bits changed", bit, diff)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
