// Package privacy provides ε-differential-privacy budget accounting for
// releases built from this repository's mechanisms. PriView itself is a
// single ε-DP release (one Laplace invocation over w views with the
// budget split inside the mechanism); the accountant tracks sequential
// composition across multiple releases — e.g. a noisy count for
// planning (§4.5 suggests ε=0.001) followed by the synopsis proper —
// and refuses to exceed a configured total.
package privacy

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrBudgetExhausted is returned when a requested spend would exceed
// the accountant's total budget.
var ErrBudgetExhausted = errors.New("privacy: budget exhausted")

// Spend records one ε expenditure.
type Spend struct {
	Label   string
	Epsilon float64
}

// Accountant tracks sequential composition of ε-DP releases against a
// fixed total budget. It is safe for concurrent use.
type Accountant struct {
	mu    sync.Mutex
	total float64
	spent []Spend
}

// NewAccountant returns an accountant with the given total ε budget.
func NewAccountant(total float64) *Accountant {
	if total <= 0 {
		panic("privacy: total budget must be positive")
	}
	return &Accountant{total: total}
}

// Total returns the configured budget.
func (a *Accountant) Total() float64 { return a.total }

// Spent returns the sum of recorded expenditures.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spentLocked()
}

func (a *Accountant) spentLocked() float64 {
	s := 0.0
	for _, sp := range a.spent {
		s += sp.Epsilon
	}
	return s
}

// Remaining returns the budget still available.
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total - a.spentLocked()
}

// Charge records a spend of eps under the given label, or returns
// ErrBudgetExhausted (recording nothing) if it would exceed the total.
// By sequential composition, the recorded releases jointly satisfy
// Spent()-DP.
func (a *Accountant) Charge(label string, eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("privacy: spend must be positive, got %g", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	const slack = 1e-12 // forgive float rounding at the boundary
	if a.spentLocked()+eps > a.total+slack {
		return ErrBudgetExhausted
	}
	a.spent = append(a.spent, Spend{Label: label, Epsilon: eps})
	return nil
}

// MustCharge is Charge but panics on failure; for program setup paths
// where exceeding the budget is a bug.
func (a *Accountant) MustCharge(label string, eps float64) {
	if err := a.Charge(label, eps); err != nil {
		panic(fmt.Sprintf("privacy: %v (label %q, eps %g)", err, label, eps))
	}
}

// Ledger returns a copy of the recorded spends in order.
func (a *Accountant) Ledger() []Spend {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Spend(nil), a.spent...)
}

// Summary renders the ledger grouped by label, largest spend first.
func (a *Accountant) Summary() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	byLabel := map[string]float64{}
	for _, sp := range a.spent {
		byLabel[sp.Label] += sp.Epsilon
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		//lint:ignore floatcmp sort tie-break: equality only picks the ordering branch, it never feeds accounting
		if byLabel[labels[i]] != byLabel[labels[j]] {
			return byLabel[labels[i]] > byLabel[labels[j]]
		}
		return labels[i] < labels[j]
	})
	out := fmt.Sprintf("privacy budget: %.6g of %.6g spent\n", a.spentLocked(), a.total)
	for _, l := range labels {
		out += fmt.Sprintf("  %-24s %.6g\n", l, byLabel[l])
	}
	return out
}
