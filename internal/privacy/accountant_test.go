package privacy

import (
	"math"
	"strings"
	"sync"
	"testing"

	"priview/internal/noise"
)

func TestChargeAndRemaining(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Charge("count", 0.001); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge("synopsis", 0.9); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent(); math.Abs(got-0.901) > 1e-12 {
		t.Errorf("Spent = %v", got)
	}
	if got := a.Remaining(); math.Abs(got-0.099) > 1e-12 {
		t.Errorf("Remaining = %v", got)
	}
}

func TestChargeRefusesOverdraft(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Charge("big", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge("too-big", 0.3); err != ErrBudgetExhausted {
		t.Errorf("err = %v, want ErrBudgetExhausted", err)
	}
	// A refused charge must not be recorded.
	if got := a.Spent(); got != 0.8 {
		t.Errorf("Spent = %v after refusal, want 0.8", got)
	}
	// Exact-fit spends are allowed.
	if err := a.Charge("fit", 0.2); err != nil {
		t.Errorf("exact fit refused: %v", err)
	}
}

func TestChargeRejectsNonPositive(t *testing.T) {
	a := NewAccountant(1)
	if err := a.Charge("zero", 0); err == nil {
		t.Error("accepted zero spend")
	}
	if err := a.Charge("neg", -0.5); err == nil {
		t.Error("accepted negative spend")
	}
}

func TestMustChargePanics(t *testing.T) {
	a := NewAccountant(0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.MustCharge("over", 0.2)
}

func TestNewAccountantRejectsBadTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAccountant(0)
}

func TestLedgerAndSummary(t *testing.T) {
	a := NewAccountant(2)
	a.MustCharge("views", 1.0)
	a.MustCharge("count", 0.001)
	a.MustCharge("views", 0.5)
	ledger := a.Ledger()
	if len(ledger) != 3 || ledger[0].Label != "views" {
		t.Errorf("ledger = %v", ledger)
	}
	s := a.Summary()
	if !strings.Contains(s, "views") || !strings.Contains(s, "count") {
		t.Errorf("summary missing labels: %s", s)
	}
	// views (1.5) must be listed before count (0.001).
	if strings.Index(s, "views") > strings.Index(s, "count") {
		t.Errorf("summary not sorted by spend: %s", s)
	}
}

func TestConcurrentCharges(t *testing.T) {
	a := NewAccountant(100)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				_ = a.Charge("c", 0.1)
			}
		}()
	}
	wg.Wait()
	if got := a.Spent(); math.Abs(got-50) > 1e-9 {
		t.Errorf("Spent = %v, want 50 (lost updates?)", got)
	}
}

// TestLaplaceDPLikelihoodRatio is an empirical DP audit of the Laplace
// primitive everything rests on: for a sensitivity-1 count under eps,
// the log-likelihood ratio of observing any output under neighboring
// inputs is bounded by eps. We verify the histogram ratio over many
// draws stays within e^eps (with statistical slack).
func TestLaplaceDPLikelihoodRatio(t *testing.T) {
	const (
		eps    = 0.5
		trials = 400000
		width  = 0.5 // histogram bucket width
	)
	src := noise.NewStream(99)
	scale := noise.LaplaceMechScale(1, eps)
	histA := map[int]int{}
	histB := map[int]int{}
	bucket := func(x float64) int { return int(math.Floor(x / width)) }
	for i := 0; i < trials; i++ {
		histA[bucket(100+noise.Laplace(src, scale))]++ // true count 100
		histB[bucket(101+noise.Laplace(src, scale))]++ // neighbor: 101
	}
	bound := math.Exp(eps)
	for b, ca := range histA {
		cb := histB[b]
		if ca < 500 || cb < 500 {
			continue // skip sparse buckets where sampling noise dominates
		}
		ratio := float64(ca) / float64(cb)
		if ratio > bound*1.15 || ratio < 1/(bound*1.15) {
			t.Errorf("bucket %d: likelihood ratio %v exceeds e^eps = %v", b, ratio, bound)
		}
	}
}
