package consistency

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"priview/internal/attrset"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// TestPaperWorkedExample reproduces the §4.4 worked example: views over
// {a1,a2} and {a1,a3} made consistent on {a1}.
func TestPaperWorkedExample(t *testing.T) {
	const a1, a2, a3 = 1, 2, 3
	v1 := marginal.New([]int{a1, a2})
	// Index bit0 = a1, bit1 = a2.
	v1.Cells[0b00] = 0.3 // a1=0, a2=0
	v1.Cells[0b01] = 0.3 // a1=1, a2=0
	v1.Cells[0b10] = 0.3 // a1=0, a2=1
	v1.Cells[0b11] = 0.1
	v2 := marginal.New([]int{a1, a3})
	v2.Cells[0b00] = 0.2
	v2.Cells[0b01] = 0.1
	v2.Cells[0b10] = 0.3
	v2.Cells[0b11] = 0.4

	est := MutualOnSet([]*marginal.Table{v1, v2}, []int{a1})
	if math.Abs(est.Cells[0]-0.55) > 1e-12 || math.Abs(est.Cells[1]-0.45) > 1e-12 {
		t.Fatalf("estimate = %v, want [0.55 0.45]", est.Cells)
	}
	// V1 after: a1=0 cells gain -0.025, a1=1 cells gain +0.025.
	wantV1 := []float64{0.275, 0.325, 0.275, 0.125}
	for i := range wantV1 {
		if math.Abs(v1.Cells[i]-wantV1[i]) > 1e-12 {
			t.Errorf("v1.Cells[%d] = %v, want %v", i, v1.Cells[i], wantV1[i])
		}
	}
	wantV2 := []float64{0.225, 0.075, 0.325, 0.375}
	for i := range wantV2 {
		if math.Abs(v2.Cells[i]-wantV2[i]) > 1e-12 {
			t.Errorf("v2.Cells[%d] = %v, want %v", i, v2.Cells[i], wantV2[i])
		}
	}
	// Projections on the attributes not involved are unchanged.
	p2 := v1.Project([]int{a2})
	if math.Abs(p2.Cells[0]-0.6) > 1e-12 || math.Abs(p2.Cells[1]-0.4) > 1e-12 {
		t.Errorf("v1 projected on a2 = %v, want [0.6 0.4]", p2.Cells)
	}
	p3 := v2.Project([]int{a3})
	if math.Abs(p3.Cells[0]-0.3) > 1e-12 || math.Abs(p3.Cells[1]-0.7) > 1e-12 {
		t.Errorf("v2 projected on a3 = %v, want [0.3 0.7]", p3.Cells)
	}
	// And the two views now agree on a1.
	if !IsPairwiseConsistent([]*marginal.Table{v1, v2}, 1e-12) {
		t.Error("views not consistent after MutualOnSet")
	}
}

func randomView(r *rand.Rand, attrs []int, total float64) *marginal.Table {
	v := marginal.New(attrs)
	sum := 0.0
	for i := range v.Cells {
		v.Cells[i] = r.Float64()
		sum += v.Cells[i]
	}
	v.Scale(total / sum)
	return v
}

// Property (Lemma 1): after enforcing consistency on A, a further
// consistency step on B ⊇ A between the same views leaves each view's
// projection onto attributes outside B, and onto A itself, unchanged.
func TestLemma1(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v1 := randomView(r, []int{0, 1, 2, 3}, 100)
		v2 := randomView(r, []int{1, 2, 4, 5}, 100)
		views := []*marginal.Table{v1, v2}
		MutualOnSet(views, []int{1}) // consistent on A = {1}
		beforeA := v1.Project([]int{1})
		beforeOut := v1.Project([]int{0, 3}) // subset of (V1 \ V2) ∪ A
		MutualOnSet(views, []int{1, 2})      // B = V1 ∩ V2 ⊇ A
		afterA := v1.Project([]int{1})
		afterOut := v1.Project([]int{0, 3})
		return marginal.Equal(beforeA, afterA, 1e-9) &&
			marginal.Equal(beforeOut, afterOut, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: MutualOnSet equalizes totals (consistency on ∅ follows from
// consistency on any A) and preserves the group's mean total.
func TestMutualPreservesMeanTotal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v1 := randomView(r, []int{0, 1, 2}, 90+20*r.Float64())
		v2 := randomView(r, []int{1, 2, 3}, 90+20*r.Float64())
		v3 := randomView(r, []int{1, 2, 5, 6}, 90+20*r.Float64())
		mean := (v1.Total() + v2.Total() + v3.Total()) / 3
		MutualOnSet([]*marginal.Table{v1, v2, v3}, []int{1, 2})
		return math.Abs(v1.Total()-mean) < 1e-9 &&
			math.Abs(v2.Total()-mean) < 1e-9 &&
			math.Abs(v3.Total()-mean) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Overall achieves Definition 2 pairwise consistency for
// arbitrary overlapping noisy view sets.
func TestOverallAchievesPairwiseConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		attrSets := [][]int{
			{0, 1, 2, 3}, {2, 3, 4, 5}, {0, 4, 5, 6}, {1, 3, 5, 7}, {0, 2, 6, 7},
		}
		views := make([]*marginal.Table, len(attrSets))
		for i, a := range attrSets {
			views[i] = randomView(r, a, 100)
		}
		Overall(views)
		return IsPairwiseConsistent(views, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOverallWithDisjointViews(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v1 := randomView(r, []int{0, 1}, 100)
	v2 := randomView(r, []int{2, 3}, 110)
	Overall([]*marginal.Table{v1, v2})
	// Only the empty intersection is shared: totals must be reconciled.
	if math.Abs(v1.Total()-105) > 1e-9 || math.Abs(v2.Total()-105) > 1e-9 {
		t.Errorf("totals = %v, %v; want both 105", v1.Total(), v2.Total())
	}
}

func TestOverallWithNestedViews(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	big := randomView(r, []int{0, 1, 2}, 100)
	small := randomView(r, []int{1, 2}, 120)
	Overall([]*marginal.Table{big, small})
	if !IsPairwiseConsistent([]*marginal.Table{big, small}, 1e-9) {
		t.Error("nested views inconsistent after Overall")
	}
}

func TestOverallSingleViewNoop(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	v := randomView(r, []int{0, 1}, 50)
	orig := v.Clone()
	Overall([]*marginal.Table{v})
	if !marginal.Equal(v, orig, 0) {
		t.Error("Overall mutated a single view")
	}
}

// Overall consistency improves accuracy: averaging redundant noisy
// observations of the same marginal must reduce error vs. the truth.
func TestOverallImprovesAccuracy(t *testing.T) {
	src := noise.NewStream(12)
	// Truth: three views over identical attributes (maximal redundancy).
	truth := marginal.New([]int{0, 1, 2})
	for i := range truth.Cells {
		truth.Cells[i] = 100 + 10*float64(i)
	}
	var errBefore, errAfter float64
	const reps = 40
	for rep := 0; rep < reps; rep++ {
		views := []*marginal.Table{
			truth.NoisyCopy(src, 10),
			truth.NoisyCopy(src, 10),
			truth.NoisyCopy(src, 10),
		}
		for _, v := range views {
			errBefore += marginal.L2Distance(v, truth)
		}
		Overall(views)
		for _, v := range views {
			errAfter += marginal.L2Distance(v, truth)
		}
	}
	if errAfter >= errBefore*0.75 {
		t.Errorf("consistency did not average out noise: before=%v after=%v", errBefore, errAfter)
	}
}

func TestIntersectionClosureContainsPairwise(t *testing.T) {
	masks := []attrset.Set{
		attrset.Of(0, 1, 2),
		attrset.Of(1, 2, 3),
		attrset.Of(2, 3, 4),
	}
	sets := attrset.IntersectionClosure(masks)
	found := map[attrset.Set]bool{}
	for _, s := range sets {
		found[s] = true
	}
	// Pairwise intersections contained in ≥2 views, plus ∅.
	for _, want := range []attrset.Set{attrset.Of(1, 2), attrset.Of(2, 3), attrset.Of(2), 0} {
		if !found[want] {
			t.Errorf("closure missing %v (have %v)", want, sets)
		}
	}
	// Sorted ascending by size.
	for i := 1; i < len(sets); i++ {
		if sets[i].Card() < sets[i-1].Card() {
			t.Error("closure not sorted by size")
		}
	}
}

func TestOutOfRangeAttributeRejectedAtTableBoundary(t *testing.T) {
	// The old attrsToMask panicked deep inside the consistency pass on
	// attribute indices ≥ 64. The d < 64 invariant is now enforced when
	// the table is built — a view over attribute 64 can never reach
	// Overall — and surfaces as a typed attrset error at the input
	// boundaries (core.Config.Validate, core.Load).
	if _, err := attrset.FromAttrs([]int{64}); !errors.Is(err, attrset.ErrRange) {
		t.Fatalf("FromAttrs(64) error = %v, want attrset.ErrRange", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected marginal.New to panic for attribute 64")
		}
	}()
	marginal.New([]int{64})
}

func TestRippleClearsNegatives(t *testing.T) {
	tab := marginal.New([]int{0, 1, 2})
	tab.Cells = []float64{10, -5, 8, 2, -3, 7, 1, 4}
	total := tab.Total()
	Ripple(tab, 0.5)
	if math.Abs(tab.Total()-total) > 1e-9 {
		t.Errorf("Ripple changed total: %v -> %v", total, tab.Total())
	}
	for i, v := range tab.Cells {
		if v < -0.5 {
			t.Errorf("cell %d = %v still below -θ", i, v)
		}
	}
}

func TestRipplePreservesNonnegativeTable(t *testing.T) {
	tab := marginal.New([]int{0, 1})
	tab.Cells = []float64{1, 2, 3, 4}
	orig := tab.Clone()
	Ripple(tab, 0.5)
	if !marginal.Equal(tab, orig, 0) {
		t.Error("Ripple modified a non-negative table")
	}
}

func TestRippleHeavyNegativity(t *testing.T) {
	// Mostly negative table: ripple must terminate and preserve total.
	tab := marginal.New([]int{0, 1, 2, 3})
	for i := range tab.Cells {
		tab.Cells[i] = -10
	}
	tab.Cells[0] = 500
	total := tab.Total()
	Ripple(tab, 0.5)
	if math.Abs(tab.Total()-total) > 1e-6 {
		t.Errorf("total changed: %v -> %v", total, tab.Total())
	}
	for i, v := range tab.Cells {
		if v < -0.5 {
			t.Errorf("cell %d = %v below -θ after ripple", i, v)
		}
	}
}

func TestRipplePanicsOnBadTheta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for θ <= 0")
		}
	}()
	Ripple(marginal.New([]int{0}), 0)
}

func TestRippleZeroWayTable(t *testing.T) {
	tab := marginal.New(nil)
	tab.Cells[0] = -3
	Ripple(tab, 0.5) // must not panic or loop
	if tab.Cells[0] != -3 {
		t.Error("0-way ripple should be a no-op")
	}
}

func TestGlobalPreservesTotal(t *testing.T) {
	tab := marginal.New([]int{0, 1, 2})
	tab.Cells = []float64{10, -5, 8, 2, -3, 7, 1, 4}
	total := tab.Total()
	Global(tab)
	if math.Abs(tab.Total()-total) > 1e-9 {
		t.Errorf("Global changed total: %v -> %v", total, tab.Total())
	}
	for i, v := range tab.Cells {
		if v < 0 {
			t.Errorf("cell %d = %v negative after Global", i, v)
		}
	}
}

func TestGlobalAllNegative(t *testing.T) {
	tab := marginal.New([]int{0, 1})
	tab.Cells = []float64{-1, -2, -3, -4}
	Global(tab) // must terminate; table becomes all zero
	for i, v := range tab.Cells {
		if v != 0 {
			t.Errorf("cell %d = %v, want 0", i, v)
		}
	}
}

func TestApplyDispatch(t *testing.T) {
	mk := func() *marginal.Table {
		tab := marginal.New([]int{0, 1})
		tab.Cells = []float64{5, -2, 3, 1}
		return tab
	}
	none := mk()
	Apply(NonnegNone, none, DefaultRippleTheta)
	if none.Cells[1] != -2 {
		t.Error("None modified the table")
	}
	simple := mk()
	Apply(NonnegSimple, simple, DefaultRippleTheta)
	if simple.Cells[1] != 0 || math.Abs(simple.Total()-9) > 1e-12 {
		t.Errorf("Simple: cells=%v total=%v", simple.Cells, simple.Total())
	}
	global := mk()
	Apply(NonnegGlobal, global, DefaultRippleTheta)
	if math.Abs(global.Total()-7) > 1e-9 {
		t.Errorf("Global total = %v, want 7", global.Total())
	}
	ripple := mk()
	Apply(NonnegRipple, ripple, DefaultRippleTheta)
	if math.Abs(ripple.Total()-7) > 1e-9 {
		t.Errorf("Ripple total = %v, want 7", ripple.Total())
	}
}

func TestNonnegMethodString(t *testing.T) {
	cases := map[NonnegMethod]string{
		NonnegNone: "None", NonnegSimple: "Simple",
		NonnegGlobal: "Global", NonnegRipple: "Ripple",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

// Ripple avoids the systematic bias Simple introduces: on a table with
// many true-zero cells plus noise, the reconstructed total should stay
// near the truth, while Simple inflates it.
func TestRippleAvoidsClampingBias(t *testing.T) {
	src := noise.NewStream(77)
	truth := marginal.New([]int{0, 1, 2, 3, 4, 5})
	truth.Cells[0] = 640 // all mass in one cell; the rest are zero
	var simpleBias, rippleBias float64
	const reps = 60
	for rep := 0; rep < reps; rep++ {
		a := truth.NoisyCopy(src, 8)
		b := a.Clone()
		Apply(NonnegSimple, a, DefaultRippleTheta)
		Apply(NonnegRipple, b, DefaultRippleTheta)
		simpleBias += a.Total() - truth.Total()
		rippleBias += b.Total() - truth.Total()
	}
	simpleBias /= reps
	rippleBias /= reps
	if simpleBias < 50 {
		t.Logf("note: expected Simple to inflate totals, got bias %v", simpleBias)
	}
	if math.Abs(rippleBias) > simpleBias/2 {
		t.Errorf("Ripple bias %v not clearly smaller than Simple bias %v", rippleBias, simpleBias)
	}
}

func TestWeightedEqualsUniformForEqualSizes(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	mk := func(attrs []int) *marginal.Table {
		v := randomView(r, attrs, 100)
		return v
	}
	a1 := mk([]int{0, 1, 2})
	a2 := mk([]int{1, 2, 3})
	b1 := a1.Clone()
	b2 := a2.Clone()
	Overall([]*marginal.Table{a1, a2})
	OverallWeighted([]*marginal.Table{b1, b2})
	if !marginal.Equal(a1, b1, 1e-9) || !marginal.Equal(a2, b2, 1e-9) {
		t.Error("weighted consistency differs from uniform for equal-size views")
	}
}

func TestWeightedBeatsUniformForMixedSizes(t *testing.T) {
	// One small and one large view of the same truth: the small view's
	// projection carries less noise, so weighting toward it should give
	// a better common estimate on average.
	src := noise.NewStream(81)
	truthBig := marginal.New([]int{0, 1, 2, 3, 4, 5})
	for i := range truthBig.Cells {
		truthBig.Cells[i] = 50 + float64(i%7)
	}
	truthSmall := truthBig.Project([]int{0, 1})
	truthA := truthBig.Project([]int{0})
	var errU, errW float64
	const reps = 300
	for rep := 0; rep < reps; rep++ {
		big := truthBig.NoisyCopy(src, 5)
		small := truthSmall.NoisyCopy(src, 5)
		bigW := big.Clone()
		smallW := small.Clone()
		estU := MutualOnSet([]*marginal.Table{big, small}, []int{0})
		estW := MutualOnSetWeighted([]*marginal.Table{bigW, smallW}, []int{0},
			VarianceWeights([]*marginal.Table{bigW, smallW}))
		errU += marginal.L2Distance(estU, truthA)
		errW += marginal.L2Distance(estW, truthA)
	}
	if errW >= errU {
		t.Errorf("weighted estimate (%v) not better than uniform (%v)", errW, errU)
	}
}

func TestWeightedValidation(t *testing.T) {
	v := marginal.New([]int{0, 1})
	for name, fn := range map[string]func(){
		"misaligned": func() {
			MutualOnSetWeighted([]*marginal.Table{v}, []int{0}, []float64{1, 2})
		},
		"negative": func() {
			MutualOnSetWeighted([]*marginal.Table{v}, []int{0}, []float64{-1})
		},
		"zero sum": func() {
			MutualOnSetWeighted([]*marginal.Table{v}, []int{0}, []float64{0})
		},
	} {
		func() {
			defer func() { _ = recover() }()
			fn()
			t.Errorf("%s: expected panic", name)
		}()
	}
}
