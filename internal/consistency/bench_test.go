package consistency

import (
	"math/rand"
	"testing"

	"priview/internal/covering"
	"priview/internal/marginal"
)

func benchViews(b *testing.B, d, l, t int) []*marginal.Table {
	b.Helper()
	dg := covering.Groups(d, l)
	if t == 3 {
		// Groups only builds t=2; that is representative enough for the
		// consistency cost, which depends on w and overlaps.
		b.Helper()
	}
	r := rand.New(rand.NewSource(7))
	views := make([]*marginal.Table, dg.W())
	for i, block := range dg.Blocks {
		v := marginal.New(block)
		for c := range v.Cells {
			v.Cells[c] = r.Float64()*100 - 5
		}
		views[i] = v
	}
	return views
}

func BenchmarkOverallD32(b *testing.B) {
	base := benchViews(b, 32, 8, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		views := make([]*marginal.Table, len(base))
		for j, v := range base {
			views[j] = v.Clone()
		}
		b.StartTimer()
		Overall(views)
	}
}

func BenchmarkRipple256(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	base := marginal.New([]int{0, 1, 2, 3, 4, 5, 6, 7})
	for i := range base.Cells {
		base.Cells[i] = r.Float64()*40 - 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := base.Clone()
		b.StartTimer()
		Ripple(t, 0.5)
	}
}

func BenchmarkMutualOnSet(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	mk := func(attrs []int) *marginal.Table {
		v := marginal.New(attrs)
		for c := range v.Cells {
			v.Cells[c] = r.Float64() * 100
		}
		return v
	}
	views := []*marginal.Table{
		mk([]int{0, 1, 2, 3, 4, 5, 6, 7}),
		mk([]int{2, 3, 8, 9, 10, 11, 12, 13}),
		mk([]int{2, 3, 14, 15, 16, 17, 18, 19}),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MutualOnSet(views, []int{2, 3})
	}
}
