package consistency

import (
	"math"
	"math/rand"
	"testing"

	"priview/internal/marginal"
)

// TestRippleProperty drives Ripple over 200 seeded random tables and
// checks the paper's two §4.5 guarantees on every one: afterwards no
// cell is below −θ, and the total count is preserved (up to float
// accumulation error scaled to the mass moved).
func TestRippleProperty(t *testing.T) {
	const trials = 200
	for seed := int64(0); seed < trials; seed++ {
		r := rand.New(rand.NewSource(seed))

		// Vary the shape: 1..6 attributes, so 2..64 cells.
		k := 1 + r.Intn(6)
		attrs := make([]int, k)
		for i := range attrs {
			attrs[i] = i
		}
		tab := marginal.New(attrs)

		// Mix regimes: mostly-positive tables with a few noisy negatives,
		// heavily negative tables, and near-zero tables. All are shapes
		// the noisy pre-consistency marginals actually take.
		scale := math.Pow(10, float64(r.Intn(4))) // 1, 10, 100, 1000
		negFrac := []float64{0.1, 0.5, 0.9}[r.Intn(3)]
		for i := range tab.Cells {
			v := r.Float64() * scale
			if r.Float64() < negFrac {
				v = -v
			}
			tab.Cells[i] = v
		}

		// Ripple's total-preservation guarantee only makes sense for
		// tables with positive total (a non-negative table summing to a
		// negative number cannot exist); real pre-ripple marginals sum to
		// the noisy record count N > 0. Shift mass into cell 0 if the
		// random draw went net negative.
		if tot := tab.Total(); tot <= 0 {
			tab.Cells[0] += scale - tot
		}

		theta := []float64{DefaultRippleTheta, 0.01, 5}[r.Intn(3)]
		before := tab.Total()
		mass := 0.0
		for _, v := range tab.Cells {
			mass += math.Abs(v)
		}

		Ripple(tab, theta)

		for i, v := range tab.Cells {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("seed %d: cell %d non-finite after Ripple: %v", seed, i, v)
			}
			if v < -theta {
				t.Fatalf("seed %d (k=%d θ=%g): cell %d = %v below -θ after Ripple",
					seed, k, theta, i, v)
			}
		}
		// Each ripple op moves O(|cell|) mass through ℓ float64 adds, so
		// allow accumulation error proportional to the table's mass.
		tol := 1e-9 * math.Max(mass, 1)
		if diff := math.Abs(tab.Total() - before); diff > tol {
			t.Fatalf("seed %d (k=%d θ=%g): total drifted by %g (before %g, after %g)",
				seed, k, theta, diff, before, tab.Total())
		}
	}
}

// TestRippleNegativeTotalFallsBackToClamp pins the documented escape
// hatch: a table whose total is negative cannot be corrected while
// preserving its total, so Ripple must still terminate and leave no
// cell below −θ (falling back to clamping rather than looping).
func TestRippleNegativeTotalFallsBackToClamp(t *testing.T) {
	tab := marginal.New([]int{0})
	tab.Cells[0] = 10
	tab.Cells[1] = -90
	Ripple(tab, DefaultRippleTheta)
	for i, v := range tab.Cells {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < -DefaultRippleTheta {
			t.Fatalf("cell %d = %v after Ripple on a negative-total table", i, v)
		}
	}
}
