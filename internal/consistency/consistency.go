// Package consistency implements PriView's constrained-inference
// post-processing (§4.4 of the paper): making a collection of noisy view
// marginal tables mutually consistent on every shared attribute subset,
// and correcting negative entries with the Ripple method (and the
// Simple/Global alternatives evaluated in Fig. 4).
package consistency

import (
	"fmt"
	"math/bits"
	"sort"

	"priview/internal/marginal"
)

// MutualOnSet enforces consistency of the given views on the attribute
// set A, which must be a subset of every view's attributes. It computes
// the common estimate as the arithmetic mean of the views' projections
// onto A — variance-minimizing when all views have the same size, the
// paper's §4.4 assumption — and updates every view additively so its
// projection onto A equals that estimate, leaving its marginals over
// attributes outside A untouched (Lemma 1). It returns the agreed
// estimate.
func MutualOnSet(views []*marginal.Table, a []int) *marginal.Table {
	return MutualOnSetWeighted(views, a, nil)
}

// MutualOnSetWeighted is MutualOnSet with explicit non-negative
// averaging weights (nil means uniform). When view sizes differ, the
// projection of a larger view onto A sums more noisy cells and so
// carries more noise; weights ∝ 2^{-|V_i|} (see VarianceWeights) give
// the minimum-variance combination.
func MutualOnSetWeighted(views []*marginal.Table, a []int, weights []float64) *marginal.Table {
	if len(views) == 0 {
		panic("consistency: no views")
	}
	if weights != nil && len(weights) != len(views) {
		panic("consistency: weights must align with views")
	}
	est := marginal.New(a)
	projections := make([]*marginal.Table, len(views))
	wSum := 0.0
	for i, v := range views {
		projections[i] = v.Project(a)
		w := 1.0
		if weights != nil {
			w = weights[i]
			if w < 0 {
				panic("consistency: negative weight")
			}
		}
		wSum += w
		for c := range est.Cells {
			est.Cells[c] += w * projections[i].Cells[c]
		}
	}
	if wSum <= 0 {
		panic("consistency: weights sum to zero")
	}
	est.Scale(1 / wSum)
	for i, v := range views {
		applyEstimate(v, est, projections[i])
	}
	return est
}

// VarianceWeights returns averaging weights for views with homogeneous
// per-cell noise: a view over |V_i| attributes projects onto A by
// summing 2^{|V_i|-|A|} cells, giving projection variance ∝ 2^{|V_i|},
// so the inverse-variance weight is 2^{-|V_i|} (the common 2^{-|A|}
// factor cancels in normalization).
func VarianceWeights(views []*marginal.Table) []float64 {
	w := make([]float64, len(views))
	for i, v := range views {
		w[i] = 1 / float64(int(1)<<uint(v.Dim()))
	}
	return w
}

// applyEstimate updates view so its projection on est.Attrs equals est,
// distributing each cell's correction evenly over the view cells that
// project to it: T(c) += (est(a) − proj(a)) / 2^{|V|−|A|}.
func applyEstimate(view, est, proj *marginal.Table) {
	pos := view.Positions(est.Attrs)
	share := 1 / float64(int(1)<<uint(view.Dim()-est.Dim()))
	// Precompute per-restricted-index correction.
	corr := make([]float64, len(est.Cells))
	for i := range est.Cells {
		corr[i] = (est.Cells[i] - proj.Cells[i]) * share
	}
	for c := range view.Cells {
		view.Cells[c] += corr[marginal.RestrictIndex(c, pos)]
	}
}

// Overall makes all views mutually consistent (Definition 2): for every
// pair V_i, V_j, the projections onto V_i ∩ V_j agree. It computes the
// closure of the view attribute sets under intersection, orders it by a
// linear extension of the subset partial order (size ascending, so the
// empty set — total-count consistency — comes first), and runs
// MutualOnSet for each closure set over the views containing it. By
// Lemma 1, later steps never invalidate earlier ones.
//
// Attribute indices must be below 64 (the dataset package's limit): the
// closure computation packs attribute sets into machine words.
func Overall(views []*marginal.Table) {
	overall(views, false)
}

// OverallWeighted is Overall with inverse-variance averaging at each
// mutual-consistency step (see VarianceWeights) — identical to Overall
// when all views have the same size, strictly lower-variance when a
// design mixes block sizes.
func OverallWeighted(views []*marginal.Table) {
	overall(views, true)
}

func overall(views []*marginal.Table, weighted bool) {
	if len(views) < 2 {
		return
	}
	viewMasks := make([]uint64, len(views))
	for i, v := range views {
		viewMasks[i] = attrsToMask(v.Attrs)
	}
	sets := intersectionClosure(viewMasks)
	group := make([]*marginal.Table, 0, len(views))
	for _, mask := range sets {
		group = group[:0]
		for i, vm := range viewMasks {
			if mask&vm == mask {
				group = append(group, views[i])
			}
		}
		if len(group) >= 2 {
			if weighted {
				MutualOnSetWeighted(group, maskToAttrs(mask), VarianceWeights(group))
			} else {
				MutualOnSet(group, maskToAttrs(mask))
			}
		}
	}
}

func attrsToMask(attrs []int) uint64 {
	var m uint64
	for _, a := range attrs {
		if a < 0 || a >= 64 {
			panic(fmt.Sprintf("consistency: attribute %d out of mask range", a))
		}
		m |= 1 << uint(a)
	}
	return m
}

func maskToAttrs(mask uint64) []int {
	attrs := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		b := bits.TrailingZeros64(mask)
		attrs = append(attrs, b)
		mask &= mask - 1
	}
	return attrs
}

// intersectionClosure returns every attribute set expressible as an
// intersection of one or more view sets, as bitmasks, always including
// the empty set (total-count consistency). The result is sorted by
// popcount ascending (ties by numeric value), a valid topological order
// of the subset relation. Only sets contained in at least two views are
// kept (others have nothing to reconcile), except ∅ which is kept
// unconditionally.
func intersectionClosure(viewMasks []uint64) []uint64 {
	closure := map[uint64]struct{}{}
	var members, work []uint64
	push := func(m uint64) {
		if _, ok := closure[m]; !ok {
			closure[m] = struct{}{}
			members = append(members, m)
			work = append(work, m)
		}
	}
	push(0)
	for _, vm := range viewMasks {
		push(vm)
	}
	// Fixpoint: intersect every work item against all known members.
	// Members only grow, and every pair is eventually intersected, so
	// the result is closed under intersection.
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for i := 0; i < len(members); i++ {
			push(cur & members[i])
		}
	}
	out := make([]uint64, 0, len(closure))
	for m := range closure {
		if m == 0 {
			out = append(out, m)
			continue
		}
		n := 0
		for _, vm := range viewMasks {
			if m&vm == m {
				n++
				if n == 2 {
					break
				}
			}
		}
		if n >= 2 {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := bits.OnesCount64(out[i]), bits.OnesCount64(out[j])
		if pi != pj {
			return pi < pj
		}
		return out[i] < out[j]
	})
	return out
}

// IsPairwiseConsistent reports whether every pair of views agrees on the
// projection onto their common attributes to within tol.
func IsPairwiseConsistent(views []*marginal.Table, tol float64) bool {
	for i := 0; i < len(views); i++ {
		for j := i + 1; j < len(views); j++ {
			common := marginal.Intersect(views[i].Attrs, views[j].Attrs)
			pi := views[i].Project(common)
			pj := views[j].Project(common)
			if !marginal.Equal(pi, pj, tol) {
				return false
			}
		}
	}
	return true
}
