// Package consistency implements PriView's constrained-inference
// post-processing (§4.4 of the paper): making a collection of noisy view
// marginal tables mutually consistent on every shared attribute subset,
// and correcting negative entries with the Ripple method (and the
// Simple/Global alternatives evaluated in Fig. 4).
package consistency

import (
	"priview/internal/attrset"
	"priview/internal/marginal"
)

// MutualOnSet enforces consistency of the given views on the attribute
// set A, which must be a subset of every view's attributes. It computes
// the common estimate as the arithmetic mean of the views' projections
// onto A — variance-minimizing when all views have the same size, the
// paper's §4.4 assumption — and updates every view additively so its
// projection onto A equals that estimate, leaving its marginals over
// attributes outside A untouched (Lemma 1). It returns the agreed
// estimate.
func MutualOnSet(views []*marginal.Table, a []int) *marginal.Table {
	return MutualOnSetWeighted(views, a, nil)
}

// MutualOnSetWeighted is MutualOnSet with explicit non-negative
// averaging weights (nil means uniform). When view sizes differ, the
// projection of a larger view onto A sums more noisy cells and so
// carries more noise; weights ∝ 2^{-|V_i|} (see VarianceWeights) give
// the minimum-variance combination.
func MutualOnSetWeighted(views []*marginal.Table, a []int, weights []float64) *marginal.Table {
	if len(views) == 0 {
		panic("consistency: no views")
	}
	if weights != nil && len(weights) != len(views) {
		panic("consistency: weights must align with views")
	}
	est := marginal.New(a)
	projections := make([]*marginal.Table, len(views))
	wSum := 0.0
	for i, v := range views {
		projections[i] = v.Project(a)
		w := 1.0
		if weights != nil {
			w = weights[i]
			if w < 0 {
				panic("consistency: negative weight")
			}
		}
		wSum += w
		for c := range est.Cells {
			est.Cells[c] += w * projections[i].Cells[c]
		}
	}
	if wSum <= 0 {
		panic("consistency: weights sum to zero")
	}
	est.Scale(1 / wSum)
	for i, v := range views {
		applyEstimate(v, est, projections[i])
	}
	return est
}

// VarianceWeights returns averaging weights for views with homogeneous
// per-cell noise: a view over |V_i| attributes projects onto A by
// summing 2^{|V_i|-|A|} cells, giving projection variance ∝ 2^{|V_i|},
// so the inverse-variance weight is 2^{-|V_i|} (the common 2^{-|A|}
// factor cancels in normalization).
func VarianceWeights(views []*marginal.Table) []float64 {
	w := make([]float64, len(views))
	for i, v := range views {
		w[i] = 1 / float64(int(1)<<uint(v.Dim()))
	}
	return w
}

// applyEstimate updates view so its projection on est.Attrs equals est,
// distributing each cell's correction evenly over the view cells that
// project to it: T(c) += (est(a) − proj(a)) / 2^{|V|−|A|}. The cell
// mapping is precomputed once (RestrictIndices), so the sweep over the
// view is two array loads per cell.
func applyEstimate(view, est, proj *marginal.Table) {
	ridx := view.RestrictIndices(est.Attrs)
	share := 1 / float64(int(1)<<uint(view.Dim()-est.Dim()))
	// Precompute per-restricted-index correction.
	corr := make([]float64, len(est.Cells))
	for i := range est.Cells {
		corr[i] = (est.Cells[i] - proj.Cells[i]) * share
	}
	for c := range view.Cells {
		view.Cells[c] += corr[ridx[c]]
	}
}

// Overall makes all views mutually consistent (Definition 2): for every
// pair V_i, V_j, the projections onto V_i ∩ V_j agree. It computes the
// closure of the view attribute sets under intersection, orders it by a
// linear extension of the subset partial order (size ascending, so the
// empty set — total-count consistency — comes first), and runs
// MutualOnSet for each closure set over the views containing it. By
// Lemma 1, later steps never invalidate earlier ones.
//
// Attribute sets are manipulated as attrset masks throughout; the
// d < 64 invariant they rely on is enforced when the tables are built
// (marginal.New) and, with typed errors, at the core.Config and
// dataset input boundaries — not here.
func Overall(views []*marginal.Table) {
	overall(views, false)
}

// OverallWeighted is Overall with inverse-variance averaging at each
// mutual-consistency step (see VarianceWeights) — identical to Overall
// when all views have the same size, strictly lower-variance when a
// design mixes block sizes.
func OverallWeighted(views []*marginal.Table) {
	overall(views, true)
}

func overall(views []*marginal.Table, weighted bool) {
	if len(views) < 2 {
		return
	}
	viewMasks := make([]attrset.Set, len(views))
	for i, v := range views {
		viewMasks[i] = v.Mask()
	}
	sets := attrset.IntersectionClosure(viewMasks)
	group := make([]*marginal.Table, 0, len(views))
	for _, mask := range sets {
		group = group[:0]
		for i, vm := range viewMasks {
			if mask.Subset(vm) {
				group = append(group, views[i])
			}
		}
		if len(group) >= 2 {
			if weighted {
				MutualOnSetWeighted(group, mask.Attrs(), VarianceWeights(group))
			} else {
				MutualOnSet(group, mask.Attrs())
			}
		}
	}
}

// IsPairwiseConsistent reports whether every pair of views agrees on the
// projection onto their common attributes to within tol.
func IsPairwiseConsistent(views []*marginal.Table, tol float64) bool {
	for i := 0; i < len(views); i++ {
		for j := i + 1; j < len(views); j++ {
			common := views[i].Mask().Intersect(views[j].Mask()).Attrs()
			pi := views[i].Project(common)
			pj := views[j].Project(common)
			if !marginal.Equal(pi, pj, tol) {
				return false
			}
		}
	}
	return true
}
