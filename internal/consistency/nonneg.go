package consistency

import (
	"fmt"

	"priview/internal/marginal"
)

// NonnegMethod selects a strategy for correcting negative entries in a
// noisy marginal table. The paper's Fig. 4 compares all four.
type NonnegMethod int

const (
	// NonnegNone leaves negative entries in place.
	NonnegNone NonnegMethod = iota
	// NonnegSimple clamps negative entries to zero. This introduces a
	// systematic positive bias (total count grows).
	NonnegSimple
	// NonnegGlobal clamps negatives to zero and then subtracts a uniform
	// amount from positive entries so the total count is unchanged,
	// iterating if the subtraction creates new negatives.
	NonnegGlobal
	// NonnegRipple is the paper's Ripple method: a cell below −θ is set
	// to zero and its (negative) mass is pulled evenly from the ℓ
	// Hamming-neighbor cells, preserving the total count while avoiding
	// the clamping bias; iterated until no cell is below −θ.
	NonnegRipple
)

// String implements fmt.Stringer for experiment labels.
func (m NonnegMethod) String() string {
	switch m {
	case NonnegNone:
		return "None"
	case NonnegSimple:
		return "Simple"
	case NonnegGlobal:
		return "Global"
	case NonnegRipple:
		return "Ripple"
	default:
		return fmt.Sprintf("NonnegMethod(%d)", int(m))
	}
}

// DefaultRippleTheta is the default tolerance below which a cell is
// considered negative enough to correct. The paper only requires θ to be
// "small"; a small constant fraction of one count works across all the
// evaluated datasets and budgets.
const DefaultRippleTheta = 0.5

// Apply corrects negative entries of t in place using the chosen method.
func Apply(m NonnegMethod, t *marginal.Table, theta float64) {
	switch m {
	case NonnegNone:
	case NonnegSimple:
		t.ClampNegatives()
	case NonnegGlobal:
		Global(t)
	case NonnegRipple:
		Ripple(t, theta)
	default:
		panic(fmt.Sprintf("consistency: unknown non-negativity method %d", int(m)))
	}
}

// Global clamps negative cells to zero and removes the added mass evenly
// from the positive cells, iterating until the table is non-negative or
// the total mass is non-positive (in which case everything is zeroed).
func Global(t *marginal.Table) {
	const maxIter = 64
	for iter := 0; iter < maxIter; iter++ {
		removed := t.ClampNegatives()
		if removed <= 0 {
			return
		}
		// Count positive cells.
		pos := 0
		for _, v := range t.Cells {
			if v > 0 {
				pos++
			}
		}
		if pos == 0 {
			return
		}
		share := removed / float64(pos)
		for i, v := range t.Cells {
			if v > 0 {
				t.Cells[i] = v - share
			}
		}
	}
	// If mass keeps sloshing, settle for the clamped table.
	t.ClampNegatives()
}

// Ripple applies the paper's Ripple non-negativity: every cell with
// count c < −θ is set to zero and |c|/ℓ is subtracted from each of its ℓ
// Hamming neighbors (cells reachable by flipping one attribute bit).
// The total count is preserved exactly. Processing repeats until no
// cell is below −θ; each pass spreads any remaining negativity over ℓ
// neighbors so the process terminates quickly for θ > 0.
func Ripple(t *marginal.Table, theta float64) {
	if theta <= 0 {
		panic("consistency: Ripple requires theta > 0")
	}
	ell := t.Dim()
	if ell == 0 {
		// A 0-way table is a single total; nothing to ripple to.
		return
	}
	// Worklist of candidate cells; a cell can re-enter when a neighbor
	// pushes it below −θ again.
	queue := make([]int, 0, len(t.Cells))
	inQueue := make([]bool, len(t.Cells))
	for i, v := range t.Cells {
		if v < -theta {
			queue = append(queue, i)
			inQueue[i] = true
		}
	}
	// Safety cap: geometric decay guarantees termination, but guard
	// against pathological θ anyway.
	maxOps := 64 * len(t.Cells) * (ell + 1)
	ops := 0
	//lint:ignore ctxflow the ops/maxOps guard bounds this worklist; on overrun it falls back to Global rather than spinning
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		inQueue[i] = false
		c := t.Cells[i]
		if c >= -theta {
			continue
		}
		t.Cells[i] = 0
		share := -c / float64(ell) // positive amount pulled per neighbor
		for b := 0; b < ell; b++ {
			j := i ^ (1 << uint(b))
			t.Cells[j] -= share
			if t.Cells[j] < -theta && !inQueue[j] {
				queue = append(queue, j)
				inQueue[j] = true
			}
		}
		ops++
		if ops > maxOps {
			// Extremely unlikely; fall back to the bias-free global fix
			// rather than looping forever.
			Global(t)
			return
		}
	}
}
