package attrset_test

// Before/after benchmarks for the attrset unification. The "Old"
// variants are verbatim copies of the retired implementations (sorted
// []int slice walks and the consistency package's private uint64
// closure), kept here so old and new run in the same binary on the same
// inputs — the honest way to compare. Results are recorded in
// BENCH_attrset.json at the repo root.

import (
	"math/bits"
	"sort"
	"testing"

	"priview/internal/attrset"
	"priview/internal/covering"
	"priview/internal/marginal"
)

// benchSets returns the attribute blocks of a realistic design — the
// inputs every retired slice implementation actually saw.
func benchSets() [][]int {
	return covering.Groups(32, 8).Blocks
}

// --- pairwise subset/intersect scan (the audit + closure grouping op)

func BenchmarkPairwiseScanSliceOld(b *testing.B) {
	blocks := benchSets()
	b.ReportAllocs()
	n := 0
	for i := 0; i < b.N; i++ {
		for x := 0; x < len(blocks); x++ {
			for y := 0; y < len(blocks); y++ {
				if marginal.Subset(blocks[x], blocks[y]) {
					n++
				}
				if len(marginal.Intersect(blocks[x], blocks[y])) > 0 {
					n++
				}
			}
		}
	}
	_ = n
}

func BenchmarkPairwiseScanMaskNew(b *testing.B) {
	blocks := benchSets()
	masks := make([]attrset.Set, len(blocks))
	for i, bl := range blocks {
		masks[i] = attrset.MustFromAttrs(bl)
	}
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		for x := 0; x < len(masks); x++ {
			for y := 0; y < len(masks); y++ {
				if masks[x].Subset(masks[y]) {
					n++
				}
				if !masks[x].Intersect(masks[y]).Empty() {
					n++
				}
			}
		}
	}
	_ = n
}

// --- intersection closure (the consistency pass preamble)

// oldClosure is the consistency package's retired private pipeline:
// slice→mask conversion, uint64 fixpoint, filter, sort, mask→slice.
func oldClosure(blocks [][]int) [][]int {
	viewMasks := make([]uint64, len(blocks))
	for i, attrs := range blocks {
		var m uint64
		for _, a := range attrs {
			//lint:ignore attrset verbatim copy of the retired implementation, kept as the benchmark baseline
			m |= 1 << uint(a)
		}
		viewMasks[i] = m
	}
	closure := map[uint64]struct{}{}
	var members, work []uint64
	push := func(m uint64) {
		if _, ok := closure[m]; !ok {
			closure[m] = struct{}{}
			members = append(members, m)
			work = append(work, m)
		}
	}
	push(0)
	for _, vm := range viewMasks {
		push(vm)
	}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for i := 0; i < len(members); i++ {
			push(cur & members[i])
		}
	}
	out := make([]uint64, 0, len(closure))
	for m := range closure {
		if m == 0 {
			out = append(out, m)
			continue
		}
		n := 0
		for _, vm := range viewMasks {
			if m&vm == m {
				n++
				if n == 2 {
					break
				}
			}
		}
		if n >= 2 {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := bits.OnesCount64(out[i]), bits.OnesCount64(out[j])
		if pi != pj {
			return pi < pj
		}
		return out[i] < out[j]
	})
	sets := make([][]int, len(out))
	for i, m := range out {
		attrs := make([]int, 0, bits.OnesCount64(m))
		for m != 0 {
			attrs = append(attrs, bits.TrailingZeros64(m))
			m &= m - 1
		}
		sets[i] = attrs
	}
	return sets
}

func BenchmarkIntersectionClosureOld(b *testing.B) {
	blocks := benchSets()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		oldClosure(blocks)
	}
}

func BenchmarkIntersectionClosureNew(b *testing.B) {
	blocks := benchSets()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		masks := make([]attrset.Set, len(blocks))
		for j, bl := range blocks {
			masks[j] = attrset.MustFromAttrs(bl)
		}
		sets := attrset.IntersectionClosure(masks)
		out := make([][]int, len(sets))
		for j, m := range sets {
			out[j] = m.Attrs()
		}
		_ = out
	}
}

// --- FromAttrs vs the naive pack loop (the boundary cost)

func BenchmarkFromAttrs(b *testing.B) {
	attrs := []int{0, 3, 7, 12, 19, 25, 31, 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := attrset.FromAttrs(attrs); err != nil {
			b.Fatal(err)
		}
	}
}
