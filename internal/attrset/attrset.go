// Package attrset is the repository's single representation of an
// attribute set: a bitmask over the global attribute indices, packed
// into one machine word. Every layer of the pipeline manipulates
// attribute sets — view planning, the consistency closure (§4.4),
// constraint preparation for max-entropy reconstruction (§4.3), the
// query cache key, and the release audit — and before this package each
// invented its own encoding (sorted []int slices with O(n) merge loops,
// private uint64 masks, string keys). A Set unifies them: subset tests,
// intersections and unions are single word operations, cardinality is a
// popcount, and map keys are the word itself.
//
// The representation leans on the repo-wide invariant that attribute
// indices live in [0, MaxAttr): datasets are capped at 64 binary
// attributes (dataset.MaxDim), so any attribute set fits one uint64.
// That invariant is enforced here, once, through FromAttrs' typed
// ErrRange error; boundaries that accept external input
// (core.Config.Validate, core.Load, covering.WorkloadCover) surface it
// as a wrapped error, while interior constructors that receive
// already-validated attributes use MustFromAttrs, whose panic marks a
// caller bug rather than bad input.
package attrset

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// MaxAttr is the exclusive upper bound on attribute indices: a Set
// packs indices into a single uint64, mirroring dataset.MaxDim.
const MaxAttr = 64

// ErrRange reports an attribute index outside [0, MaxAttr). Errors
// returned by FromAttrs match it under errors.Is.
var ErrRange = errors.New("attrset: attribute out of range [0, 64)")

// ErrDuplicate reports a repeated attribute index. A set over a
// multiset of attributes is meaningless (mirroring marginal.New's
// duplicate rejection), so FromAttrs refuses rather than silently
// collapsing duplicates.
var ErrDuplicate = errors.New("attrset: duplicate attribute")

// Set is an attribute set as a bitmask: bit a is set when attribute a
// is a member. The zero value is the empty set. Sets are values —
// comparable, usable as map keys, and copied freely.
type Set uint64

// FromAttrs packs an attribute slice into a Set, validating the
// [0, MaxAttr) range invariant and rejecting duplicates. This is the
// single enforcement point of the repo-wide d < 64 rule; boundary code
// wraps the returned error, interior code uses MustFromAttrs.
func FromAttrs(attrs []int) (Set, error) {
	var s Set
	for _, a := range attrs {
		if a < 0 || a >= MaxAttr {
			return 0, fmt.Errorf("%w: %d", ErrRange, a)
		}
		bit := Set(1) << uint(a)
		if s&bit != 0 {
			return 0, fmt.Errorf("%w: %d", ErrDuplicate, a)
		}
		s |= bit
	}
	return s, nil
}

// MustFromAttrs is FromAttrs for attributes already validated at a
// boundary; an error here is a caller bug, not bad input.
func MustFromAttrs(attrs []int) Set {
	s, err := FromAttrs(attrs)
	if err != nil {
		panic(fmt.Sprintf("attrset: %v", err))
	}
	return s
}

// Of builds a Set from individual indices; it panics on out-of-range
// or duplicate indices (intended for literals and tests).
func Of(attrs ...int) Set { return MustFromAttrs(attrs) }

// Contains reports whether attribute a is a member. Indices outside
// [0, MaxAttr) are never members.
func (s Set) Contains(a int) bool {
	return a >= 0 && a < MaxAttr && s&(Set(1)<<uint(a)) != 0
}

// Card returns the set's cardinality (a popcount).
func (s Set) Card() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return s == 0 }

// Subset reports whether s ⊆ t — branch-free: s has no bit outside t.
func (s Set) Subset(t Set) bool { return s&^t == 0 }

// ProperSubset reports whether s ⊊ t.
func (s Set) ProperSubset(t Set) bool { return s != t && s&^t == 0 }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Diff returns s \ t.
func (s Set) Diff(t Set) Set { return s &^ t }

// Min returns the smallest member, or -1 for the empty set.
func (s Set) Min() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// ForEach calls fn for every member in ascending order.
func (s Set) ForEach(fn func(a int)) {
	for m := uint64(s); m != 0; m &= m - 1 {
		fn(bits.TrailingZeros64(m))
	}
}

// Attrs returns the members as a sorted ascending slice, the
// round-trip inverse of FromAttrs.
func (s Set) Attrs() []int {
	return s.AppendAttrs(make([]int, 0, s.Card()))
}

// AppendAttrs appends the members in ascending order to dst and
// returns the extended slice, for callers reusing a buffer.
func (s Set) AppendAttrs(dst []int) []int {
	for m := uint64(s); m != 0; m &= m - 1 {
		dst = append(dst, bits.TrailingZeros64(m))
	}
	return dst
}

// Rank returns the number of members of s strictly below a: the bit
// position attribute a occupies in the cell indexing of a table over s.
// It is meaningful whether or not a is a member.
func (s Set) Rank(a int) int {
	if a <= 0 {
		return 0
	}
	if a >= MaxAttr {
		return s.Card()
	}
	return bits.OnesCount64(uint64(s) & (uint64(1)<<uint(a) - 1))
}

// String renders the set for debugging, e.g. "{0,3,17}".
func (s Set) String() string {
	b := []byte{'{'}
	first := true
	s.ForEach(func(a int) {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, []byte(fmt.Sprintf("%d", a))...)
	})
	return string(append(b, '}'))
}

// PosMask returns the positions sub's members occupy within super's
// cell indexing, as a bitmask over bit positions [0, super.Card()):
// bit j is set when the j-th smallest member of super belongs to sub.
// sub must be a subset of super; stray members are ignored by the
// masking (callers validate subset-ness where it is not structural).
func PosMask(sub, super Set) uint64 {
	var pm uint64
	j := 0
	for m := uint64(super); m != 0; m &= m - 1 {
		if uint64(sub)&(m&-m) != 0 {
			pm |= 1 << uint(j)
		}
		j++
	}
	return pm
}

// RestrictIndex maps a cell index of a table over a superset onto the
// corresponding cell index of the table over the subset whose
// positions within the superset are posMask (from PosMask): a software
// PEXT extracting and compacting the selected index bits.
func RestrictIndex(idx int, posMask uint64) int {
	out, j := 0, 0
	for m := posMask; m != 0; m &= m - 1 {
		p := uint(bits.TrailingZeros64(m))
		out |= int((uint64(idx)>>p)&1) << uint(j)
		j++
	}
	return out
}

// RestrictTable precomputes RestrictIndex for every cell index of a
// 2^dim-cell table in O(2^dim): out[i] is the subset-table cell that
// cell i projects into. Each index is derived from the index with its
// lowest bit cleared, so the whole table costs O(1) per cell — this is
// the branch-free fast path under the max-entropy iteration loop,
// replacing an O(|sub|) bit-gather per cell per iteration.
func RestrictTable(dim int, posMask uint64) []int32 {
	delta := make([]int32, dim)
	r := 0
	for p := 0; p < dim; p++ {
		if posMask>>uint(p)&1 == 1 {
			delta[p] = 1 << uint(r)
			r++
		}
	}
	out := make([]int32, 1<<uint(dim))
	//lint:hot
	for i := 1; i < len(out); i++ {
		out[i] = out[i&(i-1)] + delta[bits.TrailingZeros64(uint64(i))]
	}
	return out
}

// IntersectionClosure returns every set expressible as an intersection
// of one or more of the input sets, always including the empty set.
// The result is sorted by cardinality ascending (ties by numeric
// value), a linear extension of the subset partial order — the
// processing order the consistency pass needs (§4.4). Only sets
// contained in at least two inputs are kept (a set held by a single
// view has nothing to reconcile), except ∅, which is kept
// unconditionally for total-count consistency.
//
// This is the shared closure kernel of consistency.Overall and
// categorical.Overall; both previously carried private copies.
func IntersectionClosure(sets []Set) []Set {
	closure := map[Set]struct{}{}
	var members, work []Set
	push := func(m Set) {
		if _, ok := closure[m]; !ok {
			closure[m] = struct{}{}
			members = append(members, m)
			work = append(work, m)
		}
	}
	push(0)
	for _, s := range sets {
		push(s)
	}
	// Fixpoint: intersect every work item against all known members.
	// Members only grow, and every pair is eventually intersected, so
	// the result is closed under intersection.
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for i := 0; i < len(members); i++ {
			push(cur & members[i])
		}
	}
	out := make([]Set, 0, len(closure))
	for m := range closure {
		if m == 0 {
			out = append(out, m)
			continue
		}
		n := 0
		for _, s := range sets {
			if m.Subset(s) {
				n++
				if n == 2 {
					break
				}
			}
		}
		if n >= 2 {
			out = append(out, m)
		}
	}
	sortClosure(out)
	return out
}

// sortClosure orders sets by cardinality ascending, ties by value — a
// deterministic topological order of the subset relation.
func sortClosure(out []Set) {
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Card(), out[j].Card()
		if ci != cj {
			return ci < cj
		}
		return out[i] < out[j]
	})
}
