package attrset

import (
	"errors"
	"math/bits"
	"reflect"
	"sort"
	"testing"
)

// lcg is a tiny deterministic generator so the property tests never
// touch math/rand (the randsource lint rule) and replay identically.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// randomAttrs draws a random strictly-ascending attribute slice over
// [0, bound).
func randomAttrs(r *lcg, bound int) []int {
	var out []int
	for a := 0; a < bound; a++ {
		if r.next()%3 == 0 {
			out = append(out, a)
		}
	}
	return out
}

func TestFromAttrsValidation(t *testing.T) {
	if _, err := FromAttrs([]int{0, 5, 63}); err != nil {
		t.Fatalf("valid attrs rejected: %v", err)
	}
	if _, err := FromAttrs(nil); err != nil {
		t.Fatalf("empty attrs rejected: %v", err)
	}
	for _, bad := range [][]int{{-1}, {64}, {0, 64}, {1 << 20}} {
		if _, err := FromAttrs(bad); !errors.Is(err, ErrRange) {
			t.Errorf("FromAttrs(%v) error = %v, want ErrRange", bad, err)
		}
	}
	for _, bad := range [][]int{{3, 3}, {0, 1, 0}} {
		if _, err := FromAttrs(bad); !errors.Is(err, ErrDuplicate) {
			t.Errorf("FromAttrs(%v) error = %v, want ErrDuplicate", bad, err)
		}
	}
}

func TestMustFromAttrsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromAttrs accepted an out-of-range attribute")
		}
	}()
	MustFromAttrs([]int{64})
}

func TestRoundTrip(t *testing.T) {
	r := lcg(7)
	for trial := 0; trial < 200; trial++ {
		attrs := randomAttrs(&r, 64)
		s := MustFromAttrs(attrs)
		got := s.Attrs()
		if len(attrs) == 0 {
			if len(got) != 0 {
				t.Fatalf("empty set round-trips to %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, attrs) {
			t.Fatalf("round trip: %v -> %v", attrs, got)
		}
		if s.Card() != len(attrs) {
			t.Fatalf("Card() = %d, want %d", s.Card(), len(attrs))
		}
		if s.Min() != attrs[0] {
			t.Fatalf("Min() = %d, want %d", s.Min(), attrs[0])
		}
	}
}

func TestContainsAndRank(t *testing.T) {
	s := Of(1, 5, 9, 40)
	for _, a := range []int{1, 5, 9, 40} {
		if !s.Contains(a) {
			t.Errorf("Contains(%d) = false", a)
		}
	}
	for _, a := range []int{-3, 0, 2, 41, 64, 100} {
		if s.Contains(a) {
			t.Errorf("Contains(%d) = true", a)
		}
	}
	// Rank(a) = members strictly below a = the bit position a would
	// occupy in cell indexing.
	wantRank := map[int]int{0: 0, 1: 0, 2: 1, 5: 1, 6: 2, 9: 2, 10: 3, 40: 3, 41: 4, 64: 4}
	for a, want := range wantRank {
		if got := s.Rank(a); got != want {
			t.Errorf("Rank(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestString(t *testing.T) {
	if got := Of(0, 3, 17).String(); got != "{0,3,17}" {
		t.Errorf("String() = %q", got)
	}
	if got := Set(0).String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestForEachOrder(t *testing.T) {
	var got []int
	Of(2, 30, 63).ForEach(func(a int) { got = append(got, a) })
	if !reflect.DeepEqual(got, []int{2, 30, 63}) {
		t.Errorf("ForEach order = %v", got)
	}
}

// --- Property tests against the sorted-slice reference implementations.

// sliceIntersect/sliceUnion/sliceSubset mirror the marginal package's
// reference helpers (kept there for ad-hoc slices); duplicated here so
// attrset does not import marginal.
func sliceIntersect(a, b []int) []int {
	var out []int
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
			}
		}
	}
	sort.Ints(out)
	return out
}

func sliceUnion(a, b []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range append(append([]int(nil), a...), b...) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func sliceSubset(a, b []int) bool {
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestSetOpsMatchSliceReference(t *testing.T) {
	r := lcg(42)
	for trial := 0; trial < 500; trial++ {
		as := randomAttrs(&r, 64)
		bs := randomAttrs(&r, 64)
		a, b := MustFromAttrs(as), MustFromAttrs(bs)

		if got, want := a.Intersect(b).Attrs(), sliceIntersect(as, bs); !sameInts(got, want) {
			t.Fatalf("Intersect(%v, %v) = %v, want %v", as, bs, got, want)
		}
		if got, want := a.Union(b).Attrs(), sliceUnion(as, bs); !sameInts(got, want) {
			t.Fatalf("Union(%v, %v) = %v, want %v", as, bs, got, want)
		}
		if got, want := a.Subset(b), sliceSubset(as, bs); got != want {
			t.Fatalf("Subset(%v, %v) = %v, want %v", as, bs, got, want)
		}
		if got, want := a.ProperSubset(b), sliceSubset(as, bs) && len(as) != len(bs); got != want {
			t.Fatalf("ProperSubset(%v, %v) = %v, want %v", as, bs, got, want)
		}
		// Diff via the slice model: members of a not in b.
		var wantDiff []int
		for _, x := range as {
			if !sliceSubset([]int{x}, bs) {
				wantDiff = append(wantDiff, x)
			}
		}
		if got := a.Diff(b).Attrs(); !sameInts(got, wantDiff) {
			t.Fatalf("Diff(%v, %v) = %v, want %v", as, bs, got, wantDiff)
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// referenceRestrictIndex is the pre-attrset per-cell bit-gather
// (marginal.RestrictIndex's shape): pos lists the bit positions of the
// sub-attributes within the super table's indexing, sorted ascending.
func referenceRestrictIndex(idx int, pos []int) int {
	out := 0
	for j, p := range pos {
		out |= ((idx >> uint(p)) & 1) << uint(j)
	}
	return out
}

func TestRestrictIndexMatchesReference(t *testing.T) {
	r := lcg(3)
	for trial := 0; trial < 200; trial++ {
		super := randomAttrs(&r, 16)
		if len(super) == 0 {
			continue
		}
		superSet := MustFromAttrs(super)
		// Random subset of super.
		var sub []int
		for _, a := range super {
			if r.next()%2 == 0 {
				sub = append(sub, a)
			}
		}
		subSet := MustFromAttrs(sub)
		pm := PosMask(subSet, superSet)
		// pos positions via Rank, as marginal.Positions computes them.
		pos := make([]int, len(sub))
		for i, a := range sub {
			pos[i] = superSet.Rank(a)
		}
		dim := superSet.Card()
		table := RestrictTable(dim, pm)
		for idx := 0; idx < 1<<uint(dim); idx++ {
			want := referenceRestrictIndex(idx, pos)
			if got := RestrictIndex(idx, pm); got != want {
				t.Fatalf("RestrictIndex(%d, %b) = %d, want %d (super %v sub %v)", idx, pm, got, want, super, sub)
			}
			if got := int(table[idx]); got != want {
				t.Fatalf("RestrictTable[%d] = %d, want %d (super %v sub %v)", idx, got, want, super, sub)
			}
		}
	}
}

func TestPosMask(t *testing.T) {
	super := Of(2, 5, 9, 11)
	if got := PosMask(Of(5, 11), super); got != 0b1010 {
		t.Errorf("PosMask = %b, want 1010", got)
	}
	if got := PosMask(0, super); got != 0 {
		t.Errorf("PosMask(empty) = %b", got)
	}
	if got := PosMask(super, super); got != 0b1111 {
		t.Errorf("PosMask(self) = %b, want 1111", got)
	}
}

func TestIntersectionClosureProperties(t *testing.T) {
	r := lcg(11)
	for trial := 0; trial < 100; trial++ {
		n := 2 + int(r.next()%5)
		sets := make([]Set, n)
		for i := range sets {
			sets[i] = MustFromAttrs(randomAttrs(&r, 12))
		}
		closure := IntersectionClosure(sets)

		member := map[Set]bool{}
		for _, m := range closure {
			member[m] = true
		}
		if !member[0] {
			t.Fatal("closure must contain the empty set")
		}
		// Pairwise intersections held by >= 2 inputs must be present.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m := sets[i].Intersect(sets[j])
				if !member[m] {
					t.Fatalf("closure missing %v = %v ∩ %v", m, sets[i], sets[j])
				}
			}
		}
		// Closed under intersection.
		for _, a := range closure {
			for _, b := range closure {
				if !member[a.Intersect(b)] {
					t.Fatalf("closure not closed: %v ∩ %v missing", a, b)
				}
			}
		}
		// Sorted by cardinality then value: a valid linear extension of
		// the subset order.
		for i := 1; i < len(closure); i++ {
			ci, cj := closure[i-1].Card(), closure[i].Card()
			if ci > cj || (ci == cj && closure[i-1] >= closure[i]) {
				t.Fatalf("closure not sorted at %d: %v then %v", i, closure[i-1], closure[i])
			}
		}
		// Every non-empty member is contained in at least two inputs.
		for _, m := range closure {
			if m == 0 {
				continue
			}
			cnt := 0
			for _, s := range sets {
				if m.Subset(s) {
					cnt++
				}
			}
			if cnt < 2 {
				t.Fatalf("closure member %v held by %d inputs, want >= 2", m, cnt)
			}
		}
	}
}

// FuzzSetAlgebra checks the boolean-algebra identities that make Set a
// faithful set representation, for arbitrary word pairs.
func FuzzSetAlgebra(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0b1011), uint64(0b0110))
	f.Add(^uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, x, y uint64) {
		a, b := Set(x), Set(y)
		if a.Intersect(b) != b.Intersect(a) {
			t.Error("intersection not commutative")
		}
		if a.Union(b) != b.Union(a) {
			t.Error("union not commutative")
		}
		if got := a.Intersect(b).Card() + a.Union(b).Card(); got != a.Card()+b.Card() {
			t.Errorf("|a∩b| + |a∪b| = %d, want |a|+|b| = %d", got, a.Card()+b.Card())
		}
		if !a.Intersect(b).Subset(a) || !a.Intersect(b).Subset(b) {
			t.Error("intersection not a subset of both operands")
		}
		if !a.Subset(a.Union(b)) || !b.Subset(a.Union(b)) {
			t.Error("operands not subsets of the union")
		}
		if a.Diff(b).Intersect(b) != 0 {
			t.Error("difference intersects subtrahend")
		}
		if a.Diff(b).Union(a.Intersect(b)) != a {
			t.Error("diff/intersect do not partition a")
		}
		if a.Subset(b) != (a.Intersect(b) == a) {
			t.Error("Subset inconsistent with intersection")
		}
		if a.Card() != bits.OnesCount64(x) {
			t.Error("Card is not popcount")
		}
	})
}

// FuzzFromAttrsRoundTrip feeds arbitrary masks through Attrs/FromAttrs.
func FuzzFromAttrsRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0b101))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, x uint64) {
		s := Set(x)
		back, err := FromAttrs(s.Attrs())
		if err != nil {
			t.Fatalf("round trip of %v failed: %v", s, err)
		}
		if back != s {
			t.Fatalf("round trip of %#x gave %#x", x, uint64(back))
		}
	})
}
