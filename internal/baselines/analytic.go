package baselines

import (
	"math"

	"priview/internal/covering"
	"priview/internal/noise"
)

// DirectBeatsFlatThreshold returns the smallest d at which the Direct
// method's ESE (Eq. 4) drops below the Flat method's (Eq. 3), for a
// given k — the quantity tabulated in §3.2 (16, 26, 36, 46 for
// k = 2..5).
func DirectBeatsFlatThreshold(k int) int {
	for d := k + 1; d < 200; d++ {
		if DirectESE(d, k, 1) < FlatESE(d, 1) {
			return d
		}
	}
	return -1
}

// MidsizeViewsESE returns the ESE (in units of V_u) of answering a
// k-way marginal from one of w published ℓ-way views that covers it:
// each of the 2^k entries sums 2^{ℓ−k} cells carrying w²·V_u noise, so
// ESE = 2^k · 2^{ℓ−k} · w² = 2^ℓ·w². For the §4.1 example (d=16, k=2,
// ℓ=8, w=6) this is 2^2·6^2·2^6 = 9216 (the paper prints 9126, an
// arithmetic typo for the same formula).
func MidsizeViewsESE(w, ell int) float64 {
	return float64(w*w) * math.Pow(2, float64(ell))
}

// EllObjectivePairs is the §4.5 view-size objective 2^{ℓ/2}/(ℓ(ℓ−1))
// minimized when choosing ℓ for pair coverage.
func EllObjectivePairs(ell int) float64 {
	return math.Pow(2, float64(ell)/2) / float64(ell*(ell-1))
}

// EllObjectiveTriples is the triple-coverage objective
// 2^{ℓ/2}/(ℓ(ℓ−1)(ℓ−2)).
func EllObjectiveTriples(ell int) float64 {
	return math.Pow(2, float64(ell)/2) / float64(ell*(ell-1)*(ell-2))
}

// UniformExpectedNormalizedL2 returns the expected normalized L2 error
// of the Uniform baseline against a random true marginal whose mass is
// concentrated: at worst ~1, typically below. We report the exact error
// per query in experiments; this bound is used only in analytic tables.
func UniformExpectedNormalizedL2() float64 { return 1 }

// NoiseErrorEquation5 computes the paper's Eq. 5 normalized noise error
// for a covering design: 2^{(ℓ+1)/2}/(N·ε) · sqrt(w·d(d−1)/(ℓ(ℓ−1))).
// It estimates the error of a pair marginal reconstructed by averaging
// over the views covering it.
func NoiseErrorEquation5(d, ell, w int, eps float64, n int) float64 {
	return math.Pow(2, (float64(ell)+1)/2) / (float64(n) * eps) *
		math.Sqrt(float64(w)*float64(d)*float64(d-1)/(float64(ell)*float64(ell-1)))
}

// FourierCoefficientCount returns m = Σ_{i≤k} C(d,i), the number of
// coefficients the Fourier method publishes.
func FourierCoefficientCount(d, k int) int {
	m := 0
	for i := 0; i <= k; i++ {
		m += covering.Binom(d, i)
	}
	return m
}

// UnitVariance re-exports V_u for analytic tables.
func UnitVariance(eps float64) float64 { return noise.UnitVariance(eps) }
