package baselines

import (
	"fmt"
	"math"
	"math/bits"

	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/fourier"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// MaxMatrixDim bounds the matrix mechanism: the strategy optimization
// examines all 2^d Fourier directions of the workload Gram matrix. The
// paper likewise only runs its approximations at d=9.
const MaxMatrixDim = 20

// MatrixMechanism is the Li et al. baseline (§3.5) instantiated with the
// best strategy that is diagonal in the Walsh–Hadamard basis — computed
// exactly, with no semidefinite programming, by exploiting the structure
// of the marginal workload:
//
// The Gram matrix of the all-k-way-marginals workload has entries
// (WᵀW)[x][y] = C(d − H(x,y), k) (the number of k-way cell queries
// containing both x and y), a function of x⊕y alone. Such ⊕-convolution
// matrices are diagonalized by the WHT, with eigenvalue
// μ_α = Σ_z C(d−|z|, k)(−1)^{α·z} on the parity function χ_α. Among
// strategies A whose rows are scaled parities a_α·χ_α, the expected
// total squared error (2/ε²)·(Σ a_α)²·Σ_α μ_α/(2^d a_α²) is minimized
// at a_α ∝ μ_α^{1/3}, which the constructor solves in closed form.
// Answers are reconstructed from the noisy strategy answers exactly as
// the mechanism prescribes (least squares, here a diagonal rescale and
// inverse WHT).
type MatrixMechanism struct {
	data   *dataset.Dataset
	k      int
	eps    float64
	src    noise.Source
	aByW   []float64 // strategy weight per mask popcount (0 where μ=0)
	sens   float64   // Σ_α a_α, the strategy's L1 sensitivity
	muByW  []float64 // workload eigenvalue per mask popcount
	coeffs map[string]float64
}

// NewMatrixMechanism builds the mechanism for the workload of all k-way
// marginal cell queries under budget eps.
func NewMatrixMechanism(data *dataset.Dataset, eps float64, k int, src noise.Source) *MatrixMechanism {
	d := data.Dim()
	if d > MaxMatrixDim {
		panic(fmt.Sprintf("baselines: matrix mechanism unfeasible for d=%d (max %d)", d, MaxMatrixDim))
	}
	if k <= 0 || k > d {
		panic(fmt.Sprintf("baselines: matrix mechanism with k=%d out of range for d=%d", k, d))
	}
	// Workload Gram kernel and its WHT spectrum.
	n := 1 << uint(d)
	g := make([]float64, n)
	for z := 0; z < n; z++ {
		g[z] = float64(covering.Binom(d-bits.OnesCount(uint(z)), k))
	}
	fourier.WHT(g)
	// Eigenvalues depend only on popcount; collect one per weight and
	// count multiplicities.
	muByW := make([]float64, d+1)
	countByW := make([]float64, d+1)
	for alpha := 0; alpha < n; alpha++ {
		w := bits.OnesCount(uint(alpha))
		mu := g[alpha]
		if mu < 0 && mu > -1e-6 {
			mu = 0 // numerical zero
		}
		muByW[w] = mu
		countByW[w]++
	}
	// Optimal diagonal strategy: a_α ∝ μ_α^{1/3} where μ_α > 0.
	aByW := make([]float64, d+1)
	sens := 0.0
	for w := 0; w <= d; w++ {
		if muByW[w] > 1e-9 {
			aByW[w] = math.Pow(muByW[w], 1.0/3.0)
			sens += aByW[w] * countByW[w]
		}
	}
	return &MatrixMechanism{
		data:   data,
		k:      k,
		eps:    eps,
		src:    src,
		aByW:   aByW,
		sens:   sens,
		muByW:  muByW,
		coeffs: map[string]float64{},
	}
}

// Name implements Synopsis.
func (mm *MatrixMechanism) Name() string { return "MatrixMech" }

// Query implements Synopsis; len(attrs) must be ≤ k so that every needed
// Fourier direction is in the workload span. The strategy row a_α·χ_α
// for each in-span direction is answered with Laplace(sens/ε) noise and
// divided back by a_α; all true coefficients inside the queried set come
// from one WHT of the true marginal, and noisy values are cached per
// global subset so repeat and overlapping queries are consistent.
func (mm *MatrixMechanism) Query(attrs []int) *marginal.Table {
	t := marginal.New(attrs)
	if t.Dim() > mm.k {
		panic(fmt.Sprintf("baselines: matrix mechanism built for k=%d, queried with %d attributes", mm.k, t.Dim()))
	}
	truth := mm.data.Marginal(t.Attrs)
	trueCoeffs := fourier.Coefficients(truth)
	local := make([]float64, t.Size())
	sub := make([]int, 0, t.Dim())
	for beta := 0; beta < t.Size(); beta++ {
		sub = sub[:0]
		for j, a := range t.Attrs {
			if beta>>uint(j)&1 == 1 {
				sub = append(sub, a)
			}
		}
		key := marginal.Key(sub)
		v, ok := mm.coeffs[key]
		if !ok {
			a := mm.aByW[len(sub)]
			if a <= 0 {
				// Direction outside the workload span: the mechanism
				// publishes nothing; least squares fills in 0.
				v = 0
			} else {
				v = trueCoeffs[beta] + noise.Laplace(mm.src, noise.LaplaceMechScale(mm.sens, mm.eps))/a
			}
			mm.coeffs[key] = v
		}
		local[beta] = v
	}
	return fourier.FromCoefficients(t.Attrs, local)
}

// ExpectedMarginalESE returns the expected squared error of one k-way
// marginal table under the mechanism: each of the 2^k cells averages
// the 2^k in-span coefficients, so the table ESE is
// 2^{-k} Σ_{β⊆A} Var(ĉ_β) with Var(ĉ_β) = 2·sens²/(ε²·a_β²). By
// symmetry this depends only on k, not on which attributes are asked.
func (mm *MatrixMechanism) ExpectedMarginalESE() float64 {
	sum := 0.0
	for t := 0; t <= mm.k; t++ {
		a := mm.aByW[t]
		if a <= 0 {
			continue
		}
		varC := 2 * mm.sens * mm.sens / (mm.eps * mm.eps * a * a)
		sum += float64(covering.Binom(mm.k, t)) * varC
	}
	return sum / float64(int(1)<<uint(mm.k))
}

// ExpectedNormalizedL2 returns sqrt(ExpectedMarginalESE)/N, the value
// the paper plots for the matrix mechanism.
func (mm *MatrixMechanism) ExpectedNormalizedL2() float64 {
	return math.Sqrt(mm.ExpectedMarginalESE()) / float64(mm.data.Len())
}
