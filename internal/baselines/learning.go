package baselines

import (
	"fmt"
	"math"

	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/lp"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// Learning is the learning-based baseline (§3.7, Gupta et al. /
// Thaler–Ullman–Vadhan): a k-way conjunction count is approximated by a
// low-degree polynomial in the number of matched attributes, evaluated
// from noisy ≤D-way match counts. The degree D ≈ √k·log2(1/γ) trades
// approximation error (larger γ) against noise (smaller γ adds more
// released counts and bigger combination coefficients) — the paper's
// Learning1/2/3 are γ = 1/2, 1/4, 1/8.
//
// Mechanics: a cell query for assignment y of attrs A counts records r
// whose match count s_r = |{i ∈ A : r_i = y_i}| equals k. With p a
// degree-D polynomial approximating the indicator [s = k] on {0..k},
//
//	count ≈ Σ_r p(s_r) = Σ_{t ≤ D} w_t Σ_{T⊆A, |T|=t} M_T(y|_T),
//
// where M_T counts records matching y on T and the weights w_t combine
// the polynomial's coefficients through Stirling numbers (s^j expanded
// in falling factorials). The released object is thus the set of noisy
// ≤D-way marginals, with the budget split over all
// m_D = Σ_{t≤D} C(d,t)·... released counts; answering amplifies their
// noise by the (large) combination weights, which is exactly why the
// method underperforms in the paper's Fig. 1.
type Learning struct {
	data    *dataset.Dataset
	k       int
	gamma   float64
	degree  int
	scale   float64 // Laplace scale per released count; 0 = noise-free
	src     noise.Source
	weights []float64 // w_t for t = 0..degree
	approx  float64   // minimax approximation error of the polynomial
	cache   map[string]*marginal.Table
}

// NewLearning builds the baseline for k-way marginals with accuracy
// parameter gamma under budget eps. If noisy is false the counts are
// released exactly — the paper's green-star series isolating
// approximation error.
func NewLearning(data *dataset.Dataset, eps float64, k int, gamma float64, noisy bool, src noise.Source) *Learning {
	d := data.Dim()
	if k <= 0 || k > d {
		panic(fmt.Sprintf("baselines: Learning with k=%d out of range for d=%d", k, d))
	}
	if gamma <= 0 || gamma >= 1 {
		panic("baselines: Learning needs gamma in (0,1)")
	}
	degree := int(math.Ceil(math.Sqrt(float64(k)) * math.Log2(1/gamma)))
	if degree < 1 {
		degree = 1
	}
	if degree > k {
		degree = k // degree k interpolates the indicator exactly
	}
	coefs, approx := fitThresholdPolynomial(k, degree)
	weights := combinationWeights(coefs)

	scale := 0.0
	if noisy {
		// One record changes exactly one cell of each ≤degree-way
		// marginal, i.e. Σ_{t≤D} C(d,t) released counts by 1 each.
		m := 0
		for t := 0; t <= degree; t++ {
			m += covering.Binom(d, t)
		}
		scale = noise.LaplaceMechScale(float64(m), eps)
	}
	return &Learning{
		data:    data,
		k:       k,
		gamma:   gamma,
		degree:  degree,
		scale:   scale,
		src:     src,
		weights: weights,
		approx:  approx,
		cache:   map[string]*marginal.Table{},
	}
}

// Name implements Synopsis.
func (lb *Learning) Name() string {
	return fmt.Sprintf("Learning(γ=%g)", lb.gamma)
}

// Degree returns the polynomial degree D in use.
func (lb *Learning) Degree() int { return lb.degree }

// ApproximationError returns the minimax error of the fitted polynomial
// on {0..k}; multiplied by N it bounds the noise-free per-cell error.
func (lb *Learning) ApproximationError() float64 { return lb.approx }

// noisyMarginal returns the (cached) released marginal over the subset
// T; an empty T yields the 0-way table holding N.
func (lb *Learning) noisyMarginal(sub []int) *marginal.Table {
	key := marginal.Key(sub)
	if t, ok := lb.cache[key]; ok {
		return t
	}
	t := lb.data.Marginal(sub)
	if lb.scale > 0 {
		t.AddLaplace(lb.src, lb.scale)
	}
	lb.cache[key] = t
	return t
}

// Query implements Synopsis; len(attrs) must equal k (the polynomial is
// fitted to the threshold s = k).
func (lb *Learning) Query(attrs []int) *marginal.Table {
	out := marginal.New(attrs)
	if out.Dim() != lb.k {
		panic(fmt.Sprintf("baselines: Learning built for k=%d, queried with %d attributes", lb.k, out.Dim()))
	}
	// Enumerate subsets T ⊆ A with |T| ≤ degree once; reuse across
	// cells.
	type subsetInfo struct {
		mask  int // bitmask within attrs
		attrs []int
		table *marginal.Table
		pos   []int // positions of T within attrs
	}
	var subs []subsetInfo
	k := out.Dim()
	for mask := 0; mask < 1<<uint(k); mask++ {
		t := popcount(mask)
		if t > lb.degree {
			continue
		}
		sub := make([]int, 0, t)
		pos := make([]int, 0, t)
		for j := 0; j < k; j++ {
			if mask>>uint(j)&1 == 1 {
				sub = append(sub, out.Attrs[j])
				pos = append(pos, j)
			}
		}
		subs = append(subs, subsetInfo{
			mask:  mask,
			attrs: sub,
			table: lb.noisyMarginal(sub),
			pos:   pos,
		})
	}
	for y := range out.Cells {
		est := 0.0
		for _, s := range subs {
			t := len(s.attrs)
			// Index of y restricted to T within T's table.
			b := marginal.RestrictIndex(y, s.pos)
			est += lb.weights[t] * s.table.Cells[b]
		}
		out.Cells[y] = est
	}
	return out
}

// fitThresholdPolynomial finds coefficients c_0..c_D of the degree-D
// polynomial minimizing max_{s∈{0..k}} |p(s) − [s = k]|, via a small
// linear program (the discrete minimax / Remez problem). It returns the
// coefficients and the achieved minimax error.
func fitThresholdPolynomial(k, degree int) ([]float64, float64) {
	nc := degree + 1
	// Variables: c⁺_0..c⁺_D, c⁻_0..c⁻_D, τ — LP variables must be
	// non-negative, so coefficients are split into signed parts.
	nv := 2*nc + 1
	prob := &lp.Problem{NumVars: nv, Objective: make([]float64, nv)}
	prob.Objective[nv-1] = 1
	// Evaluate monomials at s; normalize by k^j to keep the tableau
	// well-conditioned, then unscale the coefficients at the end.
	scalePow := func(j int) float64 {
		if j == 0 {
			return 1
		}
		return math.Pow(float64(k), float64(j))
	}
	for s := 0; s <= k; s++ {
		target := 0.0
		if s == k {
			target = 1
		}
		le := make([]float64, nv)
		ge := make([]float64, nv)
		for j := 0; j < nc; j++ {
			v := math.Pow(float64(s), float64(j)) / scalePow(j)
			le[j], le[nc+j] = v, -v
			ge[j], ge[nc+j] = v, -v
		}
		le[nv-1] = -1
		ge[nv-1] = 1
		prob.Constraints = append(prob.Constraints,
			lp.Constraint{Coef: le, Rel: lp.LE, B: target},
			lp.Constraint{Coef: ge, Rel: lp.GE, B: target},
		)
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		panic(fmt.Sprintf("baselines: threshold polynomial fit failed: %v", err))
	}
	coefs := make([]float64, nc)
	for j := 0; j < nc; j++ {
		coefs[j] = (sol.X[j] - sol.X[nc+j]) / scalePow(j)
	}
	return coefs, sol.Obj
}

// combinationWeights converts monomial coefficients c_j into per-subset-
// size weights w_t = t!·Σ_j c_j·S(j,t) using Stirling numbers of the
// second kind (s^j = Σ_t S(j,t)·s·(s−1)···(s−t+1)).
func combinationWeights(coefs []float64) []float64 {
	deg := len(coefs) - 1
	// S[j][t], 0 ≤ t ≤ j ≤ deg.
	S := make([][]float64, deg+1)
	for j := range S {
		S[j] = make([]float64, deg+1)
	}
	S[0][0] = 1
	for j := 1; j <= deg; j++ {
		for t := 1; t <= j; t++ {
			S[j][t] = S[j-1][t-1] + float64(t)*S[j-1][t]
		}
	}
	w := make([]float64, deg+1)
	factorial := 1.0
	for t := 0; t <= deg; t++ {
		if t > 0 {
			factorial *= float64(t)
		}
		sum := 0.0
		for j := t; j <= deg; j++ {
			sum += coefs[j] * S[j][t]
		}
		w[t] = factorial * sum
	}
	return w
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
