package baselines

import (
	"fmt"
	"math/bits"

	"priview/internal/dataset"
	"priview/internal/fourier"
	"priview/internal/lp"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// MaxFourierLPDim bounds the dimensionality for the FourierLP variant:
// the linear program has 2^d variables, so it is only feasible for small
// d — the paper likewise runs it only on MSNBC (d=9).
const MaxFourierLPDim = 12

// FourierLP is the Barak et al. method with its linear-programming
// post-process: find a non-negative full contingency table whose
// coefficients are as close as possible (in max norm) to the noisy
// published ones, then answer marginals from that table. This guarantees
// consistency and non-negativity of every reconstructed marginal.
type FourierLP struct {
	table *marginal.Table
}

// NewFourierLP publishes noisy coefficients for all subsets of size ≤ k
// under budget eps and solves the repair LP.
func NewFourierLP(data *dataset.Dataset, eps float64, k int, src noise.Source) (*FourierLP, error) {
	d := data.Dim()
	if d > MaxFourierLPDim {
		return nil, fmt.Errorf("baselines: FourierLP unfeasible for d=%d (max %d)", d, MaxFourierLPDim)
	}
	// Compute all true coefficients in one transform, then noise the
	// low-weight ones.
	full := data.FullContingency()
	coeffs := fourier.Coefficients(full)
	masks := fourier.SubsetMasks(d, k)
	m := len(masks)
	scale := noise.LaplaceMechScale(float64(m), eps)
	noisy := make([]float64, m)
	for i, mask := range masks {
		noisy[i] = coeffs[mask] + noise.Laplace(src, scale)
	}

	n := 1 << uint(d)
	prob := &lp.Problem{
		NumVars:   n + 1, // cells then τ
		Objective: make([]float64, n+1),
	}
	prob.Objective[n] = 1
	for i, mask := range masks {
		le := make([]float64, n+1)
		ge := make([]float64, n+1)
		for x := 0; x < n; x++ {
			sign := 1.0
			if bits.OnesCount(uint(x&mask))&1 == 1 {
				sign = -1
			}
			le[x] = sign
			ge[x] = sign
		}
		le[n] = -1
		ge[n] = 1
		prob.Constraints = append(prob.Constraints,
			lp.Constraint{Coef: le, Rel: lp.LE, B: noisy[i]},
			lp.Constraint{Coef: ge, Rel: lp.GE, B: noisy[i]},
		)
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("baselines: FourierLP repair failed: %w", err)
	}
	table := marginal.New(data.Attrs())
	copy(table.Cells, sol.X[:n])
	return &FourierLP{table: table}, nil
}

// Name implements Synopsis.
func (f *FourierLP) Name() string { return "FourierLP" }

// Query implements Synopsis.
func (f *FourierLP) Query(attrs []int) *marginal.Table {
	return f.table.Project(attrs)
}
