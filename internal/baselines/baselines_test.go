package baselines

import (
	"math"
	"testing"

	"priview/internal/accuracy"
	"priview/internal/dataset"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
)

func smallData(t *testing.T) *dataset.Dataset {
	t.Helper()
	return synth.MSNBC(20000, 1)
}

func TestUniformBaseline(t *testing.T) {
	u := NewUniform(1000)
	got := u.Query([]int{0, 3})
	if got.Total() != 1000 {
		t.Errorf("total = %v, want 1000", got.Total())
	}
	for _, v := range got.Cells {
		if v != 250 {
			t.Errorf("cells = %v, want uniform 250", got.Cells)
			break
		}
	}
	if u.Name() != "Uniform" {
		t.Errorf("Name = %q", u.Name())
	}
}

func TestFlatAccuracyAtHighBudget(t *testing.T) {
	data := smallData(t)
	f := NewFlat(data, 100, noise.NewStream(2))
	truth := data.Marginal([]int{0, 1, 2})
	got := f.Query([]int{0, 1, 2})
	if err := accuracy.NormalizedL2Error(got, truth, float64(data.Len())); err > 0.01 {
		t.Errorf("Flat error at eps=100 is %v, want tiny", err)
	}
}

func TestFlatNoiseMagnitude(t *testing.T) {
	data := smallData(t)
	f := NewFlat(data, 1.0, noise.NewStream(3))
	truth := data.Marginal([]int{0, 1})
	got := f.Query([]int{0, 1})
	// ESE for a 2-way marginal from Flat = 2^9·V_u = 1024; L2 ~ 32.
	l2 := accuracy.L2Error(got, truth)
	if l2 > 32*5 || l2 < 32/20 {
		t.Errorf("Flat L2 = %v, want on the order of 32", l2)
	}
}

func TestFlatPanicsOnLargeD(t *testing.T) {
	data := synth.Kosarak(100, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d=32 Flat")
		}
	}()
	NewFlat(data, 1, noise.NewStream(1))
}

func TestFlatESEFormula(t *testing.T) {
	if got, want := FlatESE(9, 1.0), 1024.0; got != want {
		t.Errorf("FlatESE(9,1) = %v, want %v", got, want)
	}
	if got := FlatExpectedNormalizedL2(45, 0.1, 647377); got != 1 {
		t.Errorf("capped Flat expected error = %v, want 1", got)
	}
}

func TestDataCubeEqualsFlatShape(t *testing.T) {
	data := smallData(t)
	dc := NewDataCube(data, 1, noise.NewStream(5))
	if dc.Name() != "DataCube" {
		t.Errorf("Name = %q", dc.Name())
	}
	got := dc.Query([]int{1, 2})
	if got.Dim() != 2 {
		t.Errorf("Dim = %d", got.Dim())
	}
}

func TestDirectQueryCaching(t *testing.T) {
	data := smallData(t)
	dm := NewDirect(data, 1.0, 2, true, noise.NewStream(6))
	a := dm.Query([]int{3, 5})
	b := dm.Query([]int{5, 3})
	if !marginal.Equal(a, b, 0) {
		t.Error("repeated Direct query returned different noise")
	}
	// Mutating the returned table must not corrupt the cache.
	a.Cells[0] = -999
	c := dm.Query([]int{3, 5})
	if c.Cells[0] == -999 {
		t.Error("Direct cache aliases returned tables")
	}
}

func TestDirectPostprocessNonneg(t *testing.T) {
	data := smallData(t)
	dm := NewDirect(data, 0.1, 4, true, noise.NewStream(7))
	got := dm.Query([]int{0, 2, 4, 6})
	for _, v := range got.Cells {
		if v < 0 {
			t.Errorf("negative cell %v after redistribute", v)
		}
	}
}

func TestDirectWrongKPanics(t *testing.T) {
	data := smallData(t)
	dm := NewDirect(data, 1, 2, false, noise.NewStream(8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched query size")
		}
	}()
	dm.Query([]int{0, 1, 2})
}

func TestDirectESEFormula(t *testing.T) {
	// d=16, k=2: 2^2·120²·2 = 115200 at eps=1.
	if got, want := DirectESE(16, 2, 1), 115200.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("DirectESE = %v, want %v", got, want)
	}
}

func TestCrossoverTable(t *testing.T) {
	// §3.2: Direct beats Flat from d = 16, 26, 36, 46 for k = 2..5.
	want := map[int]int{2: 16, 3: 26, 4: 36, 5: 46}
	for k, d := range want {
		if got := DirectBeatsFlatThreshold(k); got != d {
			t.Errorf("crossover for k=%d: got d=%d, want %d", k, got, d)
		}
	}
}

func TestMidsizeExample(t *testing.T) {
	// §4.1: d=16, k=2 — Flat 65536, Direct 57600, views 9216.
	if got := FlatESE(16, 1) / UnitVariance(1); got != 65536 {
		t.Errorf("Flat units = %v", got)
	}
	if got := DirectESE(16, 2, 1) / UnitVariance(1); got != 57600 {
		t.Errorf("Direct units = %v", got)
	}
	if got := MidsizeViewsESE(6, 8); got != 9216 {
		t.Errorf("views ESE = %v, want 9216", got)
	}
}

func TestEllObjectiveTableMatchesPaper(t *testing.T) {
	// §4.5 table: the pair objective at ℓ=6 (0.267) is the minimum of
	// the printed values, and the triple objective at ℓ=10 (0.044).
	wantPairs := map[int]float64{5: 0.283, 6: 0.267, 7: 0.269, 8: 0.286, 9: 0.314, 10: 0.356, 11: 0.411, 12: 0.485}
	for ell, want := range wantPairs {
		if got := EllObjectivePairs(ell); math.Abs(got-want) > 0.0015 {
			t.Errorf("pair objective ℓ=%d: got %.3f, want %.3f", ell, got, want)
		}
	}
	wantTriples := map[int]float64{5: 0.094, 6: 0.067, 7: 0.054, 8: 0.048, 9: 0.045, 10: 0.044, 11: 0.046, 12: 0.048}
	for ell, want := range wantTriples {
		if got := EllObjectiveTriples(ell); math.Abs(got-want) > 0.0015 {
			t.Errorf("triple objective ℓ=%d: got %.3f, want %.3f", ell, got, want)
		}
	}
}

func TestNoiseErrorEquation5MatchesPaperExample(t *testing.T) {
	// §4.5: Kosarak d=32, N≈900000, ε=1, ℓ=8: t=2 w=20 → 0.00047;
	// t=3 w=106 → 0.0011; t=4 w=620 → 0.0026.
	cases := []struct {
		w    int
		want float64
	}{{20, 0.00047}, {106, 0.0011}, {620, 0.0026}}
	for _, c := range cases {
		got := NoiseErrorEquation5(32, 8, c.w, 1.0, 900000)
		if math.Abs(got-c.want)/c.want > 0.08 {
			t.Errorf("Eq5(w=%d) = %.5f, want ≈%.5f", c.w, got, c.want)
		}
	}
}

func TestFourierQueryConsistentCache(t *testing.T) {
	data := smallData(t)
	fm := NewFourier(data, 1.0, 4, false, noise.NewStream(9))
	a := fm.Query([]int{0, 1, 2, 3})
	b := fm.Query([]int{0, 1, 2, 3})
	if !marginal.Equal(a, b, 1e-12) {
		t.Error("Fourier answers changed between queries")
	}
	// Overlapping queries share coefficients: projections onto the
	// common subset must agree (the method's consistency property).
	c := fm.Query([]int{0, 1, 2, 5})
	pa := a.Project([]int{0, 1, 2})
	pc := c.Project([]int{0, 1, 2})
	if !marginal.Equal(pa, pc, 1e-9) {
		t.Error("Fourier reconstructions inconsistent on shared subset")
	}
}

func TestFourierAccurateAtHighBudget(t *testing.T) {
	data := smallData(t)
	fm := NewFourier(data, 1000, 3, false, noise.NewStream(10))
	truth := data.Marginal([]int{1, 4, 7})
	got := fm.Query([]int{1, 4, 7})
	if err := accuracy.L2Error(got, truth); err > 1 {
		t.Errorf("Fourier at eps=1000 has L2 %v", err)
	}
}

func TestFourierESEBeatsDirectByTwoToK(t *testing.T) {
	d, k := 32, 4
	ratio := DirectESE(d, k, 1) / FourierESE(d, k, 1)
	// §3.3: the Fourier method reduces ESE by about a factor 2^k; the
	// coefficient count Σ_{i≤k}C(d,i) vs C(d,k) makes it slightly less.
	if ratio < 8 || ratio > 16.5 {
		t.Errorf("Direct/Fourier ESE ratio = %v, want ~2^k = 16", ratio)
	}
}

func TestFourierLPSmall(t *testing.T) {
	data := synth.MSNBC(2000, 11)
	flp, err := NewFourierLP(data, 1.0, 2, noise.NewStream(12))
	if err != nil {
		t.Fatal(err)
	}
	got := flp.Query([]int{0, 1})
	for _, v := range got.Cells {
		if v < -1e-9 {
			t.Errorf("FourierLP produced negative cell %v", v)
		}
	}
	truth := data.Marginal([]int{0, 1})
	if err := accuracy.NormalizedL2Error(got, truth, float64(data.Len())); err > 0.5 {
		t.Errorf("FourierLP error = %v, unreasonably large", err)
	}
}

func TestFourierLPRejectsLargeD(t *testing.T) {
	data := synth.Kosarak(50, 13)
	if _, err := NewFourierLP(data, 1, 2, noise.NewStream(1)); err == nil {
		t.Error("FourierLP accepted d=32")
	}
}

func TestMWEMRuns(t *testing.T) {
	data := synth.MSNBC(5000, 14)
	m := NewMWEM(data, 1.0, MWEMConfig{K: 2, T: 5, ReplaySweeps: 10}, noise.NewStream(15))
	got := m.Query([]int{0, 1})
	if math.Abs(got.Total()-5000) > 1 {
		t.Errorf("MWEM total = %v, want ~5000", got.Total())
	}
	for _, v := range got.Cells {
		if v < 0 {
			t.Errorf("MWEM produced negative cell %v", v)
		}
	}
}

func TestMWEMImprovesOverUniform(t *testing.T) {
	data := synth.MSNBC(50000, 16)
	m := NewMWEM(data, 5.0, MWEMConfig{K: 2, T: 8, ReplaySweeps: 20}, noise.NewStream(17))
	u := NewUniform(data.Len())
	var errM, errU float64
	queries := [][]int{{0, 1}, {0, 3}, {1, 2}, {2, 5}, {4, 7}}
	for _, q := range queries {
		truth := data.Marginal(q)
		errM += accuracy.L2Error(m.Query(q), truth)
		errU += accuracy.L2Error(u.Query(q), truth)
	}
	if errM >= errU {
		t.Errorf("MWEM (%v) not better than Uniform (%v) at eps=5", errM, errU)
	}
}

func TestDefaultMWEMRounds(t *testing.T) {
	if got := DefaultMWEMRounds(9); got != 15 {
		t.Errorf("DefaultMWEMRounds(9) = %d, want 15 (the paper's T)", got)
	}
}

func TestMatrixMechanismExpectedErrorOrdering(t *testing.T) {
	data := smallData(t)
	mm := NewMatrixMechanism(data, 1.0, 2, noise.NewStream(18))
	// The paper finds MatrixMech better than Direct but worse than
	// Flat at d=9: check the expected ESE against both analytic values.
	ese := mm.ExpectedMarginalESE()
	if ese >= DirectESE(9, 2, 1.0) {
		t.Errorf("matrix mechanism ESE %v not better than Direct %v", ese, DirectESE(9, 2, 1.0))
	}
	if ese <= 0 {
		t.Errorf("matrix mechanism ESE %v must be positive", ese)
	}
}

func TestMatrixMechanismQueryReasonable(t *testing.T) {
	data := smallData(t)
	mm := NewMatrixMechanism(data, 50, 2, noise.NewStream(19))
	truth := data.Marginal([]int{2, 6})
	got := mm.Query([]int{2, 6})
	if err := accuracy.L2Error(got, truth); err > 100 {
		t.Errorf("matrix mechanism at eps=50 has L2 %v", err)
	}
	// Cached coefficients make repeat queries identical.
	again := mm.Query([]int{2, 6})
	if !marginal.Equal(got, again, 1e-12) {
		t.Error("matrix mechanism answers changed between queries")
	}
}

func TestLearningDegreeCap(t *testing.T) {
	data := smallData(t)
	lb := NewLearning(data, 1.0, 2, 0.125, true, noise.NewStream(20))
	if lb.Degree() > 2 {
		t.Errorf("degree %d exceeds k=2", lb.Degree())
	}
}

func TestLearningExactWhenDegreeEqualsK(t *testing.T) {
	data := smallData(t)
	// γ small enough to force D = k: polynomial interpolates [s=k]
	// exactly, so the noise-free variant must reproduce the marginal.
	lb := NewLearning(data, 1.0, 3, 1.0/16, false, noise.NewStream(21))
	if lb.Degree() != 3 {
		t.Fatalf("degree = %d, want 3", lb.Degree())
	}
	if lb.ApproximationError() > 1e-6 {
		t.Fatalf("approximation error = %v, want ~0", lb.ApproximationError())
	}
	truth := data.Marginal([]int{0, 4, 8})
	got := lb.Query([]int{0, 4, 8})
	if !marginal.Equal(got, truth, 1e-6*float64(data.Len())) {
		t.Errorf("noise-free exact-degree Learning diverges:\n got %v\nwant %v", got.Cells, truth.Cells)
	}
}

func TestLearningApproximationErrorGrowsWithGamma(t *testing.T) {
	data := smallData(t)
	coarse := NewLearning(data, 1.0, 6, 0.5, false, noise.NewStream(22))
	fine := NewLearning(data, 1.0, 6, 0.125, false, noise.NewStream(23))
	if coarse.Degree() >= fine.Degree() {
		t.Errorf("degrees: γ=1/2 gives %d, γ=1/8 gives %d; want increasing", coarse.Degree(), fine.Degree())
	}
	if coarse.ApproximationError() < fine.ApproximationError() {
		t.Errorf("approx errors: coarse %v < fine %v", coarse.ApproximationError(), fine.ApproximationError())
	}
}

func TestLearningNoisyRuns(t *testing.T) {
	data := smallData(t)
	lb := NewLearning(data, 1.0, 4, 0.25, true, noise.NewStream(24))
	got := lb.Query([]int{1, 3, 5, 7})
	if got.Size() != 16 {
		t.Fatalf("size = %d", got.Size())
	}
	for _, v := range got.Cells {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite cell %v", v)
		}
	}
}

func TestRedistributePreservesTotal(t *testing.T) {
	tab := marginal.New([]int{0, 1})
	tab.Cells = []float64{-4, 10, 6, 2}
	total := tab.Total()
	redistribute(tab)
	if math.Abs(tab.Total()-total) > 1e-9 {
		t.Errorf("total %v -> %v", total, tab.Total())
	}
	for _, v := range tab.Cells {
		if v < 0 {
			t.Errorf("negative cell %v after redistribute", v)
		}
	}
}

func TestMWEMBasicVariant(t *testing.T) {
	data := synth.MSNBC(20000, 25)
	basic := NewMWEM(data, 2.0, MWEMConfig{K: 2, T: 6, Basic: true}, noise.NewStream(26))
	got := basic.Query([]int{0, 1})
	if math.Abs(got.Total()-20000) > 1 {
		t.Errorf("basic MWEM total = %v", got.Total())
	}
	// The improved variant should typically beat the basic one; check
	// both at least answer, and the improved one is not wildly worse.
	improved := NewMWEM(data, 2.0, MWEMConfig{K: 2, T: 6, ReplaySweeps: 30}, noise.NewStream(26))
	queries := [][]int{{0, 1}, {2, 5}, {3, 7}, {4, 8}}
	var errBasic, errImproved float64
	for _, q := range queries {
		truth := data.Marginal(q)
		errBasic += accuracy.L2Error(basic.Query(q), truth)
		errImproved += accuracy.L2Error(improved.Query(q), truth)
	}
	if errImproved > errBasic*2 {
		t.Errorf("improved MWEM (%v) much worse than basic (%v)", errImproved, errBasic)
	}
}
