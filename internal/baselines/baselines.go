// Package baselines implements every mechanism the paper compares
// PriView against (§3): Flat, Direct, the Fourier method of Barak et
// al. (with and without the LP post-process), the Data Cubes reduction,
// an exact Fourier-diagonal instantiation of the Matrix Mechanism, MWEM
// with the paper's practical improvements, the learning-based
// (Thaler–Ullman–Vadhan-style) polynomial approximation, and the
// Uniform sanity baseline.
//
// Every mechanism exposes the same structural interface as a PriView
// synopsis:
//
//	Name() string
//	Query(attrs []int) *marginal.Table
//
// A synopsis is built once per (dataset, ε) configuration; queries are
// deterministic given the build (noisy values are cached), so asking the
// same marginal twice returns identical answers, as publishing a real
// synopsis would.
package baselines

import (
	"priview/internal/marginal"
)

// Synopsis is the common query interface; it matches PriView's own
// synopsis so the experiment harness can treat all methods uniformly.
type Synopsis interface {
	Name() string
	Query(attrs []int) *marginal.Table
}

// redistribute applies the post-processing the paper uses for Direct and
// Fourier in Fig. 2: remove negative values and spread the surplus
// evenly over all cells so the total is preserved, iterating while new
// negatives appear.
func redistribute(t *marginal.Table) {
	const maxIter = 64
	for i := 0; i < maxIter; i++ {
		removed := t.ClampNegatives()
		if removed <= 0 {
			return
		}
		share := removed / float64(t.Size())
		for j := range t.Cells {
			t.Cells[j] -= share
		}
	}
	t.ClampNegatives()
}
