package baselines

import "priview/internal/marginal"

// Uniform is the paper's sanity baseline: it answers every marginal with
// the uniform distribution scaled to the dataset size. A method that
// does not beat Uniform in some setting conveys no information there.
type Uniform struct {
	total float64
}

// NewUniform returns the uniform baseline for a dataset of n records.
func NewUniform(n int) *Uniform { return &Uniform{total: float64(n)} }

// Name implements Synopsis.
func (u *Uniform) Name() string { return "Uniform" }

// Query implements Synopsis.
func (u *Uniform) Query(attrs []int) *marginal.Table {
	return marginal.Uniform(attrs, u.total)
}
