package baselines

import (
	"fmt"
	"math"

	"priview/internal/dataset"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// MaxMWEMDim bounds MWEM's dimensionality: it maintains an explicit
// distribution over 2^d cells (the paper's largest MWEM run is d=16).
const MaxMWEMDim = 16

// MWEM is the Hardt–Ligett–McSherry baseline (§3.6): multiplicative
// weights over the full contingency table with exponential-mechanism
// query selection. This implementation includes the two practical
// improvements the paper describes — every round replays all measured
// queries many times, and answers come from the final distribution
// rather than the average.
type MWEM struct {
	dist *marginal.Table
}

// MWEMConfig collects the algorithm's knobs.
type MWEMConfig struct {
	// K is the arity of the marginal queries in the workload.
	K int
	// T is the number of rounds; the paper uses ⌈4 log d⌉ + 2.
	T int
	// ReplaySweeps is how many times each round iterates over the
	// measured queries (100 in the paper's improved variant).
	ReplaySweeps int
	// Basic selects the theoretically-analyzed variant: one
	// multiplicative update per round (no replay) and answers from the
	// average of the per-round distributions rather than the final one.
	// The paper notes the improvements void the utility theorem; Basic
	// keeps it.
	Basic bool
}

// DefaultMWEMRounds returns the paper's round count ⌈4 log d⌉ + 2
// (natural log, as in their T=15 for d=9... ⌈4 ln 9⌉+2 = ⌈8.79⌉+2 = 11;
// the paper's 15 comes from ⌈4 log2 9⌉+2 = ⌈12.68⌉+2 = 15, so base-2).
func DefaultMWEMRounds(d int) int {
	return int(math.Ceil(4*math.Log2(float64(d)))) + 2
}

// NewMWEM runs the mechanism against the dataset under budget eps and
// returns the final distribution as a queryable synopsis.
func NewMWEM(data *dataset.Dataset, eps float64, cfg MWEMConfig, src *noise.Stream) *MWEM {
	d := data.Dim()
	if d > MaxMWEMDim {
		panic(fmt.Sprintf("baselines: MWEM unfeasible for d=%d (max %d)", d, MaxMWEMDim))
	}
	if cfg.K <= 0 || cfg.K > d {
		panic(fmt.Sprintf("baselines: MWEM with k=%d out of range for d=%d", cfg.K, d))
	}
	if cfg.T <= 0 {
		cfg.T = DefaultMWEMRounds(d)
	}
	if cfg.ReplaySweeps <= 0 {
		cfg.ReplaySweeps = 100
	}
	if cfg.Basic {
		cfg.ReplaySweeps = 1
	}
	n := float64(data.Len())

	// Candidate workload: every k-subset of attributes.
	candidates := allSubsets(d, cfg.K)
	truth := make([]*marginal.Table, len(candidates))
	for i, a := range candidates {
		truth[i] = data.Marginal(a)
	}

	dist := marginal.New(data.Attrs())
	dist.Fill(n / float64(dist.Size()))

	type measurement struct {
		attrs []int
		pos   []int
		table *marginal.Table
	}
	var measured []measurement
	epsRound := eps / float64(cfg.T)
	var avg *marginal.Table
	if cfg.Basic {
		avg = marginal.New(data.Attrs())
	}

	for round := 0; round < cfg.T; round++ {
		// Select the worst-answered marginal via the exponential
		// mechanism with budget epsRound/2 and score sensitivity 1.
		scores := make([]float64, len(candidates))
		for i, a := range candidates {
			cur := dist.Project(a)
			l1 := 0.0
			for j := range cur.Cells {
				l1 += math.Abs(cur.Cells[j] - truth[i].Cells[j])
			}
			scores[i] = l1
		}
		sel := exponentialMechanism(scores, epsRound/2, 1, src)

		// Measure it with the other half of the round budget
		// (marginal sensitivity 1 ⇒ Laplace(2T/ε) per cell).
		noisy := truth[sel].NoisyCopy(src, 2/epsRound)
		measured = append(measured, measurement{
			attrs: candidates[sel],
			pos:   dist.Positions(candidates[sel]),
			table: noisy,
		})

		// Multiplicative-weights update, replaying all measurements.
		for sweep := 0; sweep < cfg.ReplaySweeps; sweep++ {
			for _, m := range measured {
				cur := dist.Project(m.attrs)
				for x := range dist.Cells {
					y := marginal.RestrictIndex(x, m.pos)
					dist.Cells[x] *= math.Exp((m.table.Cells[y] - cur.Cells[y]) / (2 * n))
				}
				// Renormalize to total n.
				total := dist.Total()
				if total > 0 {
					dist.Scale(n / total)
				}
			}
		}
		if cfg.Basic {
			avg.AddInto(dist)
		}
	}
	if cfg.Basic {
		avg.Scale(1 / float64(cfg.T))
		return &MWEM{dist: avg}
	}
	return &MWEM{dist: dist}
}

// Name implements Synopsis.
func (m *MWEM) Name() string { return "MWEM" }

// Query implements Synopsis.
func (m *MWEM) Query(attrs []int) *marginal.Table {
	return m.dist.Project(attrs)
}

// exponentialMechanism samples an index with probability proportional to
// exp(eps·score/(2·sensitivity)). Scores are shifted by their maximum
// for numerical stability.
func exponentialMechanism(scores []float64, eps, sensitivity float64, src noise.Source) int {
	maxScore := math.Inf(-1)
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	weights := make([]float64, len(scores))
	total := 0.0
	for i, s := range scores {
		w := math.Exp(eps * (s - maxScore) / (2 * sensitivity))
		weights[i] = w
		total += w
	}
	x := src.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// allSubsets enumerates every size-k subset of {0..d-1} in
// lexicographic order.
func allSubsets(d, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		i := k - 1
		for i >= 0 && idx[i] == d-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
