package baselines

import (
	"fmt"
	"math"

	"priview/internal/dataset"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// MaxFlatDim bounds the dimensionality for which the Flat method is
// materialized; beyond it the 2^d table is unfeasible (the situation the
// paper targets) and only the analytic expected error is available.
const MaxFlatDim = 24

// Flat is the §3.1 baseline: one Laplace-noised full contingency table,
// from which any marginal is obtained by summation. Exact and simple,
// but with ESE 2^d·V_u it is only usable for small d.
type Flat struct {
	table *marginal.Table
}

// NewFlat builds the noisy full contingency table with budget eps.
func NewFlat(data *dataset.Dataset, eps float64, src noise.Source) *Flat {
	if data.Dim() > MaxFlatDim {
		panic(fmt.Sprintf("baselines: Flat is unfeasible for d=%d (max %d)", data.Dim(), MaxFlatDim))
	}
	full := data.FullContingency()
	full.AddLaplace(src, noise.LaplaceMechScale(1, eps))
	return &Flat{table: full}
}

// Name implements Synopsis.
func (f *Flat) Name() string { return "Flat" }

// Query implements Synopsis.
func (f *Flat) Query(attrs []int) *marginal.Table {
	return f.table.Project(attrs)
}

// FlatESE returns the expected squared error of the Flat method for a
// k-way marginal (Eq. 3): 2^d · V_u, independent of k.
func FlatESE(d int, eps float64) float64 {
	return math.Pow(2, float64(d)) * noise.UnitVariance(eps)
}

// FlatExpectedNormalizedL2 returns the expected normalized L2 error
// sqrt(ESE)/N the paper plots for Flat when d is too large to run it,
// capped at 1 to account for the improvement non-negativity correction
// would bring (as done in Fig. 2).
func FlatExpectedNormalizedL2(d int, eps float64, n int) float64 {
	v := math.Sqrt(FlatESE(d, eps)) / float64(n)
	if v > 1 {
		return 1
	}
	return v
}

// DataCube is the Ding et al. baseline (§3.4). For low-dimensional
// binary data its view-selection principles choose the full contingency
// table, making it equivalent to Flat; its lattice algorithms are
// polynomial in 2^d and cannot scale beyond that. We expose the
// degenerate case under its own name for the d=9 comparison.
type DataCube struct {
	Flat
}

// NewDataCube builds the Data Cubes baseline (= Flat for binary data
// with feasible d).
func NewDataCube(data *dataset.Dataset, eps float64, src noise.Source) *DataCube {
	return &DataCube{Flat: *NewFlat(data, eps, src)}
}

// Name implements Synopsis.
func (dc *DataCube) Name() string { return "DataCube" }
