package baselines

import (
	"fmt"
	"math"

	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// Direct is the §3.2 baseline: publish every k-way marginal with
// independent Laplace noise, splitting the budget over all m = C(d,k)
// tables. The synopsis materializes queried marginals lazily — each
// marginal's noise is drawn once and cached, which is observationally
// identical to having published all of them up front.
type Direct struct {
	data        *dataset.Dataset
	k           int
	scale       float64
	src         noise.Source
	cache       map[string]*marginal.Table
	postprocess bool
}

// NewDirect builds the Direct synopsis for k-way marginals under budget
// eps. When postprocess is true, queried marginals get the paper's
// Fig. 2 optimization (negatives removed, difference redistributed).
func NewDirect(data *dataset.Dataset, eps float64, k int, postprocess bool, src noise.Source) *Direct {
	if k <= 0 || k > data.Dim() {
		panic(fmt.Sprintf("baselines: Direct with k=%d out of range for d=%d", k, data.Dim()))
	}
	m := covering.Binom(data.Dim(), k)
	return &Direct{
		data:        data,
		k:           k,
		scale:       noise.LaplaceMechScale(float64(m), eps),
		src:         src,
		cache:       map[string]*marginal.Table{},
		postprocess: postprocess,
	}
}

// Name implements Synopsis.
func (dm *Direct) Name() string { return "Direct" }

// Query implements Synopsis. attrs must have exactly k attributes: the
// Direct method commits to one marginal size when the budget is split.
func (dm *Direct) Query(attrs []int) *marginal.Table {
	t := marginal.New(attrs) // canonicalizes and validates attrs
	if t.Dim() != dm.k {
		panic(fmt.Sprintf("baselines: Direct synopsis built for k=%d, queried with %d attributes", dm.k, t.Dim()))
	}
	key := marginal.Key(t.Attrs)
	if cached, ok := dm.cache[key]; ok {
		return cached.Clone()
	}
	noisy := dm.data.Marginal(t.Attrs)
	noisy.AddLaplace(dm.src, dm.scale)
	if dm.postprocess {
		redistribute(noisy)
	}
	dm.cache[key] = noisy
	return noisy.Clone()
}

// DirectESE returns the expected squared error of the Direct method for
// one k-way marginal (Eq. 4): 2^k · C(d,k)^2 · V_u.
func DirectESE(d, k int, eps float64) float64 {
	m := float64(covering.Binom(d, k))
	return math.Pow(2, float64(k)) * m * m * noise.UnitVariance(eps)
}

// DirectExpectedNormalizedL2 returns sqrt(ESE)/N capped at 1, the value
// plotted when Direct is reported analytically.
func DirectExpectedNormalizedL2(d, k int, eps float64, n int) float64 {
	v := math.Sqrt(DirectESE(d, k, eps)) / float64(n)
	if v > 1 {
		return 1
	}
	return v
}
