package baselines

import (
	"fmt"
	"math"

	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/fourier"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// Fourier is the Barak et al. baseline (§3.3): publish Laplace-noised
// Walsh–Hadamard coefficients for every attribute subset of size ≤ k,
// and rebuild any ≤k-way marginal from the 2^|A| coefficients supported
// inside it. Coefficients are materialized lazily and cached, which is
// equivalent to publishing all m = Σ_{i≤k} C(d,i) of them with the
// correspondingly split budget.
type Fourier struct {
	data        *dataset.Dataset
	k           int
	scale       float64
	src         noise.Source
	coeffs      map[string]float64
	postprocess bool
}

// NewFourier builds the Fourier synopsis supporting marginals up to k
// attributes under budget eps.
func NewFourier(data *dataset.Dataset, eps float64, k int, postprocess bool, src noise.Source) *Fourier {
	if k <= 0 || k > data.Dim() {
		panic(fmt.Sprintf("baselines: Fourier with k=%d out of range for d=%d", k, data.Dim()))
	}
	m := 0
	for i := 0; i <= k; i++ {
		m += covering.Binom(data.Dim(), i)
	}
	return &Fourier{
		data:        data,
		k:           k,
		scale:       noise.LaplaceMechScale(float64(m), eps),
		src:         src,
		coeffs:      map[string]float64{},
		postprocess: postprocess,
	}
}

// Name implements Synopsis.
func (fm *Fourier) Name() string { return "Fourier" }

// NumCoefficients returns m, the number of published coefficients.
func (fm *Fourier) NumCoefficients() int {
	m := 0
	for i := 0; i <= fm.k; i++ {
		m += covering.Binom(fm.data.Dim(), i)
	}
	return m
}

// Query implements Synopsis. len(attrs) must be at most k.
//
// All 2^|attrs| coefficients supported inside the queried set are
// obtained from one data scan: the WHT of the true marginal over attrs
// yields every c_β with supp(β) ⊆ attrs at once (marginalization is
// coefficient restriction in the Fourier domain). Noisy values are
// cached per global subset so overlapping queries share coefficients,
// exactly as if all m coefficients had been published up front.
func (fm *Fourier) Query(attrs []int) *marginal.Table {
	t := marginal.New(attrs)
	if t.Dim() > fm.k {
		panic(fmt.Sprintf("baselines: Fourier synopsis supports up to %d-way marginals, got %d", fm.k, t.Dim()))
	}
	truth := fm.data.Marginal(t.Attrs)
	trueCoeffs := fourier.Coefficients(truth)
	local := make([]float64, t.Size())
	sub := make([]int, 0, t.Dim())
	for beta := 0; beta < t.Size(); beta++ {
		sub = sub[:0]
		for j, a := range t.Attrs {
			if beta>>uint(j)&1 == 1 {
				sub = append(sub, a)
			}
		}
		key := marginal.Key(sub)
		v, ok := fm.coeffs[key]
		if !ok {
			v = trueCoeffs[beta] + noise.Laplace(fm.src, fm.scale)
			fm.coeffs[key] = v
		}
		local[beta] = v
	}
	out := fourier.FromCoefficients(t.Attrs, local)
	if fm.postprocess {
		redistribute(out)
	}
	return out
}

// FourierESE returns the expected squared error of the Fourier method
// for one k-way marginal: reconstructing 2^k cells from 2^k noisy
// coefficients each carrying Laplace(m/ε) noise costs
// 2^k · m^2 · V_u / 2^k · ... — per cell the inverse transform averages
// 2^k coefficients with weight 2^{-k}, so cell variance is
// 2^{-k}·m^2·V_u and the table ESE is m^2·V_u: a 2^k improvement over
// Direct, as §3.3 states.
func FourierESE(d, k int, eps float64) float64 {
	m := 0.0
	for i := 0; i <= k; i++ {
		m += float64(covering.Binom(d, i))
	}
	return m * m * noise.UnitVariance(eps)
}

// FourierExpectedNormalizedL2 returns sqrt(ESE)/N capped at 1.
func FourierExpectedNormalizedL2(d, k int, eps float64, n int) float64 {
	v := math.Sqrt(FourierESE(d, k, eps)) / float64(n)
	if v > 1 {
		return 1
	}
	return v
}
