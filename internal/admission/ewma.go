// Package admission implements the overload-control primitives the
// serving stack composes into end-to-end backpressure: an EWMA tracker
// of per-method service time (deadline-aware rejection), a token
// bucket (per-tenant rate limits and client retry budgets), an
// adaptive admission controller (bounded queue + CoDel-style sojourn
// control + an AIMD concurrency limit driven by the latency gradient),
// and a brownout detector (sustained-overload degradation to
// cache-hits-only serving).
//
// The package is deliberately mechanism, not policy: it holds no HTTP
// vocabulary and publishes nothing. internal/server maps controller
// verdicts onto status codes, and internal/registry layers the token
// buckets per release. Every component takes an injectable clock so
// the chaos suite can drive it deterministically.
package admission

import (
	"sync"
	"time"
)

// ewmaAlpha is the smoothing factor for the service-time estimate: new
// observations move the estimate 20% of the way, so a handful of slow
// solves raise it quickly but one outlier cannot own it.
const ewmaAlpha = 0.2

// estimateFreshFor bounds how long an estimate is trusted without new
// observations. A stale estimate must expire: if the gate it feeds
// rejects every request, nothing would ever be observed again and the
// estimate could pin the server in rejection forever.
const estimateFreshFor = 30 * time.Second

// ServiceTime tracks an exponentially weighted moving average of
// observed service time per method key. The zero value is not usable;
// call NewServiceTime.
type ServiceTime struct {
	now func() time.Time

	mu  sync.Mutex
	est map[int]serviceEstimate
}

type serviceEstimate struct {
	ewma    time.Duration
	lastObs time.Time
}

// NewServiceTime returns an empty tracker. now may be nil for
// time.Now; tests inject a fake clock.
func NewServiceTime(now func() time.Time) *ServiceTime {
	if now == nil {
		now = time.Now
	}
	return &ServiceTime{now: now, est: make(map[int]serviceEstimate)}
}

// Observe folds one measured service duration for method into the
// estimate. Non-positive durations are ignored.
func (s *ServiceTime) Observe(method int, d time.Duration) {
	if d <= 0 {
		return
	}
	now := s.now()
	s.mu.Lock()
	e, ok := s.est[method]
	if !ok || e.ewma <= 0 {
		e.ewma = d
	} else {
		e.ewma += time.Duration(ewmaAlpha * float64(d-e.ewma))
	}
	e.lastObs = now
	s.est[method] = e
	s.mu.Unlock()
}

// Estimate returns the current EWMA service time for method, or 0 when
// nothing has been observed recently — an expired estimate reads as
// "unknown", never as a permanent rejection verdict.
func (s *ServiceTime) Estimate(method int) time.Duration {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.est[method]
	if !ok || now.Sub(e.lastObs) > estimateFreshFor {
		return 0
	}
	return e.ewma
}
