package admission

import (
	"sync"
	"time"
)

// BrownoutConfig shapes a Brownout detector.
type BrownoutConfig struct {
	// Enter is how long the overload signal must persist before the
	// brownout activates (default 2s).
	Enter time.Duration
	// Exit is how long the signal must stay clear before the brownout
	// lifts (default 2×Enter).
	Exit time.Duration
	// Now is the clock (nil = time.Now).
	Now func() time.Time
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Enter <= 0 {
		c.Enter = 2 * time.Second
	}
	if c.Exit <= 0 {
		c.Exit = 2 * c.Enter
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Brownout turns a noisy per-request overload signal into a stable
// serving mode: active only after the signal has persisted for Enter,
// and it stays active until the signal has been clear for Exit —
// hysteresis on both edges so the mode cannot flap per request. While
// active, the server serves non-priority traffic from cache hits only.
type Brownout struct {
	cfg BrownoutConfig

	mu          sync.Mutex
	active      bool
	streakStart time.Time // first overloaded sample of the current streak
	lastOver    time.Time // most recent overloaded sample
	activations uint64
}

// NewBrownout returns a detector with cfg's knobs resolved.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	return &Brownout{cfg: cfg.withDefaults()}
}

// Note folds one sample of the overload signal.
func (b *Brownout) Note(overloaded bool) {
	now := b.cfg.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if overloaded {
		if b.streakStart.IsZero() {
			b.streakStart = now
		}
		b.lastOver = now
		if !b.active && now.Sub(b.streakStart) >= b.cfg.Enter {
			b.active = true
			b.activations++
		}
		return
	}
	// A calm sample only matters once the signal has been quiet for the
	// exit window; isolated calm samples inside a storm are noise.
	if !b.lastOver.IsZero() && now.Sub(b.lastOver) >= b.cfg.Exit {
		b.active = false
		b.streakStart = time.Time{}
		b.lastOver = time.Time{}
	} else if !b.active && !b.lastOver.IsZero() && now.Sub(b.lastOver) >= b.cfg.Enter {
		// Not yet active and the streak went quiet: reset it so a later
		// blip does not inherit this streak's age.
		b.streakStart = time.Time{}
		b.lastOver = time.Time{}
	}
}

// Active reports whether the brownout is in force.
func (b *Brownout) Active() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// Activations counts how many times the brownout has engaged.
func (b *Brownout) Activations() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.activations
}
