package admission

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"priview/internal/telemetry"
)

// Config shapes a Controller. The zero value of every field selects
// the default noted on it.
type Config struct {
	// TargetDelay is the CoDel target: the queue sojourn the controller
	// tries to keep the standing queue under (default 25ms).
	TargetDelay time.Duration
	// Interval is the CoDel control interval — how long sojourn must
	// stay above target before the controller starts shedding from the
	// queue, and the minimum spacing between multiplicative limit
	// decreases (default max(100ms, 4×TargetDelay)).
	Interval time.Duration
	// MaxQueue bounds the waiting queue; arrivals past it are shed
	// immediately (default 64).
	MaxQueue int
	// InitialLimit is the concurrency limit the AIMD search starts
	// from (default 16, clamped into [MinLimit, MaxLimit]).
	InitialLimit int
	// MinLimit and MaxLimit bound the adaptive concurrency limit
	// (defaults 2 and 1024).
	MinLimit, MaxLimit int
	// RetryAfterBase seeds the queue-depth-scaled Retry-After hint on
	// rejections (default 1s).
	RetryAfterBase time.Duration
	// RetryAfterMax caps the hint (default 30s).
	RetryAfterMax time.Duration
	// Now is the clock (nil = time.Now); tests inject a fake.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.TargetDelay <= 0 {
		c.TargetDelay = 25 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 4 * c.TargetDelay
		if c.Interval < 100*time.Millisecond {
			c.Interval = 100 * time.Millisecond
		}
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 2
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 1024
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.InitialLimit <= 0 {
		c.InitialLimit = 16
	}
	if c.InitialLimit < c.MinLimit {
		c.InitialLimit = c.MinLimit
	}
	if c.InitialLimit > c.MaxLimit {
		c.InitialLimit = c.MaxLimit
	}
	if c.RetryAfterBase <= 0 {
		c.RetryAfterBase = time.Second
	}
	if c.RetryAfterMax <= 0 {
		c.RetryAfterMax = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Latency-gradient constants. The short EWMA tracks what latency is
// doing right now, the long EWMA what it normally is; when the ratio
// exceeds gradientTolerance the server is falling behind its own
// baseline and the limit decreases multiplicatively.
const (
	shortAlpha        = 0.4
	longAlpha         = 0.05
	gradientTolerance = 2.0
	decreaseFactor    = 0.8
)

// RejectedError is Acquire's refusal: the bounded queue is full or the
// CoDel controller shed this request from it. RetryAfter scales with
// the current queue depth — the hint a server should surface on 429.
type RejectedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("admission: rejected: %s (retry after %v)", e.Reason, e.RetryAfter)
}

// waiter states: the CAS between dispatcher and canceling acquirer.
const (
	waiterWaiting int32 = iota
	waiterAdmitted
	waiterDropped
	waiterCanceled
)

type waiter struct {
	ready chan error // buffered 1; nil = admitted
	enq   time.Time
	state atomic.Int32
}

// Controller is the adaptive admission gate: at most limit requests
// run concurrently, a bounded FIFO absorbs short bursts, CoDel-style
// sojourn control sheds from the queue when delay stands above target,
// and the limit itself walks an AIMD search driven by the latency
// gradient. The zero value is not usable; call NewController.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	limit    float64
	inflight int
	queue    []*waiter

	// CoDel state (guarded by mu).
	firstAbove time.Time // when sojourn first stood above target (+interval)
	dropping   bool
	dropNext   time.Time
	dropCount  int

	// Latency-gradient state (guarded by mu), in float64 nanoseconds.
	shortLat, longLat float64
	lastDecrease      time.Time

	// Counters are telemetry handles: standalone by default, swapped
	// for registry-interned ones by Instrument so /metrics and the JSON
	// Stats read the same atomics. sojourn records every dequeued
	// waiter's queue time in seconds (admitted and CoDel-dropped alike).
	admitted, queued, shed, codelDropped *telemetry.Counter
	sojourn                              *telemetry.Histogram
}

// NewController returns a controller with cfg's knobs resolved.
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:          cfg,
		limit:        float64(cfg.InitialLimit),
		admitted:     telemetry.NewCounter(),
		queued:       telemetry.NewCounter(),
		shed:         telemetry.NewCounter(),
		codelDropped: telemetry.NewCounter(),
		sojourn:      telemetry.NewHistogram(nil),
	}
}

// Instrument replaces the controller's counters and sojourn histogram
// with shared telemetry handles. Call before the controller admits
// traffic — handle swaps are not synchronized with in-flight
// increments.
func (c *Controller) Instrument(admitted, queued, shed, codelDropped *telemetry.Counter, sojourn *telemetry.Histogram) {
	if admitted == nil || queued == nil || shed == nil || codelDropped == nil || sojourn == nil {
		panic("admission: Instrument requires non-nil handles")
	}
	c.admitted, c.queued, c.shed, c.codelDropped, c.sojourn = admitted, queued, shed, codelDropped, sojourn
}

// curLimitLocked is the integer concurrency limit in force.
func (c *Controller) curLimitLocked() int {
	l := int(c.limit)
	if l < c.cfg.MinLimit {
		l = c.cfg.MinLimit
	}
	return l
}

// Acquire admits the caller, queues it within the bounded queue, or
// rejects it. On admission it returns a release function the caller
// must invoke exactly once with the observed request latency (which
// feeds the AIMD search; pass 0 to skip the sample). A *RejectedError
// means shed; a context error means the caller gave up while queued.
func (c *Controller) Acquire(ctx context.Context) (func(time.Duration), error) {
	c.mu.Lock()
	if c.inflight < c.curLimitLocked() && len(c.queue) == 0 {
		c.inflight++
		c.admitted.Inc()
		c.mu.Unlock()
		return c.releaseFunc(), nil
	}
	if len(c.queue) >= c.cfg.MaxQueue {
		c.shed.Inc()
		err := &RejectedError{Reason: "admission queue full", RetryAfter: c.retryAfterLocked()}
		c.mu.Unlock()
		return nil, err
	}
	w := &waiter{ready: make(chan error, 1), enq: c.cfg.Now()}
	c.queue = append(c.queue, w)
	c.queued.Inc()
	c.mu.Unlock()

	select {
	case err := <-w.ready:
		if err != nil {
			return nil, err
		}
		return c.releaseFunc(), nil
	case <-ctx.Done():
		if !w.state.CompareAndSwap(waiterWaiting, waiterCanceled) {
			// The dispatcher resolved us concurrently; honor its verdict
			// so an already-granted slot is returned, not leaked.
			if err := <-w.ready; err == nil {
				c.releaseFunc()(0)
			}
		}
		return nil, ctx.Err()
	}
}

// releaseFunc returns the once-only completion callback for one
// admitted request.
func (c *Controller) releaseFunc() func(time.Duration) {
	var once sync.Once
	return func(latency time.Duration) {
		once.Do(func() {
			c.mu.Lock()
			c.inflight--
			if latency > 0 {
				c.updateLimitLocked(latency)
			}
			c.dispatchLocked()
			c.mu.Unlock()
		})
	}
}

// dispatchLocked drains the queue into free slots, applying the CoDel
// drop law to each dequeued waiter's sojourn time.
func (c *Controller) dispatchLocked() {
	now := c.cfg.Now()
	//lint:ignore ctxflow runs under c.mu with no request context; the loop drains a MaxQueue-bounded queue, and each waiter's own ctx cancellation is honored via the waiter state CAS
	for len(c.queue) > 0 && c.inflight < c.curLimitLocked() {
		w := c.queue[0]
		c.queue = c.queue[1:]
		if w.state.Load() == waiterCanceled {
			continue
		}
		sojourn := now.Sub(w.enq)
		c.sojourn.ObserveDuration(sojourn)
		if c.codelDropLocked(sojourn, now) {
			if w.state.CompareAndSwap(waiterWaiting, waiterDropped) {
				c.codelDropped.Inc()
				w.ready <- &RejectedError{Reason: "queue delay above target", RetryAfter: c.retryAfterLocked()}
			}
			continue
		}
		if w.state.CompareAndSwap(waiterWaiting, waiterAdmitted) {
			c.inflight++
			c.admitted.Inc()
			w.ready <- nil
		}
	}
	if len(c.queue) == 0 && !c.dropping {
		// An empty queue is the strongest "no standing delay" signal.
		c.firstAbove = time.Time{}
	}
}

// codelDropLocked implements the CoDel control law on one dequeue:
// sojourn below target resets the controller; sojourn standing above
// target for a full interval enters dropping mode, shedding dequeued
// waiters at a rate that grows with the square root of the drop count
// until the queue delay falls back under target.
func (c *Controller) codelDropLocked(sojourn time.Duration, now time.Time) bool {
	if sojourn < c.cfg.TargetDelay {
		c.firstAbove = time.Time{}
		c.dropping = false
		c.dropCount = 0
		return false
	}
	if c.firstAbove.IsZero() {
		c.firstAbove = now.Add(c.cfg.Interval)
		return false
	}
	if !c.dropping {
		if now.Before(c.firstAbove) {
			return false
		}
		c.dropping = true
		c.dropCount = 1
		c.dropNext = now.Add(c.nextDropInterval())
		// Standing queue delay is overload by definition; shrink the
		// concurrency limit along with shedding from the queue.
		c.decreaseLocked(now)
		return true
	}
	if now.Before(c.dropNext) {
		return false
	}
	c.dropCount++
	c.dropNext = now.Add(c.nextDropInterval())
	return true
}

// nextDropInterval is CoDel's sqrt control law: successive drops come
// interval/sqrt(count) apart, so shedding intensifies the longer the
// queue stands.
func (c *Controller) nextDropInterval() time.Duration {
	return time.Duration(float64(c.cfg.Interval) / math.Sqrt(float64(c.dropCount)))
}

// updateLimitLocked walks the AIMD search one step using the latency
// gradient: when the short-term latency EWMA stands more than
// gradientTolerance above the long-term baseline the limit decreases
// multiplicatively (at most once per interval), otherwise it increases
// additively by 1/limit per completion (≈ +1 per round-trip).
func (c *Controller) updateLimitLocked(latency time.Duration) {
	l := float64(latency)
	//lint:ignore floatcmp zero is the unseeded sentinel, assigned exactly and never computed; real latencies are positive
	if c.shortLat == 0 {
		c.shortLat, c.longLat = l, l
	} else {
		c.shortLat += shortAlpha * (l - c.shortLat)
		c.longLat += longAlpha * (l - c.longLat)
	}
	if c.shortLat > c.longLat*gradientTolerance {
		c.decreaseLocked(c.cfg.Now())
		return
	}
	c.limit += 1 / c.limit
	if max := float64(c.cfg.MaxLimit); c.limit > max {
		c.limit = max
	}
}

// decreaseLocked applies one multiplicative decrease, spaced at least
// an interval apart so a burst of bad samples cannot collapse the
// limit to the floor in one sweep.
func (c *Controller) decreaseLocked(now time.Time) {
	if now.Sub(c.lastDecrease) < c.cfg.Interval {
		return
	}
	c.lastDecrease = now
	c.limit *= decreaseFactor
	if min := float64(c.cfg.MinLimit); c.limit < min {
		c.limit = min
	}
}

// retryAfterLocked is the backpressure hint: the base scaled up with
// how many limit-widths of work are already waiting, so a deep queue
// tells clients to stay away longer than a graze does.
func (c *Controller) retryAfterLocked() time.Duration {
	depth := len(c.queue)
	limit := c.curLimitLocked()
	hint := c.cfg.RetryAfterBase * time.Duration(1+depth/limit)
	if hint > c.cfg.RetryAfterMax {
		hint = c.cfg.RetryAfterMax
	}
	return hint
}

// RetryAfter exposes the current queue-depth-scaled hint (used by
// rejection paths that never reach Acquire, e.g. brownout refusals).
func (c *Controller) RetryAfter() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retryAfterLocked()
}

// Overloaded reports whether the controller is actively shedding: in
// CoDel dropping mode, or with its bounded queue at least half full.
// The brownout detector samples this.
func (c *Controller) Overloaded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropping || len(c.queue) >= (c.cfg.MaxQueue+1)/2
}

// Stats is the controller's observability snapshot. The server merges
// in the middleware-owned counters (deadline rejections, brownout)
// before publishing it on /v1/stats.
type Stats struct {
	Limit            float64 `json:"limit"`
	Inflight         int     `json:"inflight"`
	QueueDepth       int     `json:"queue_depth"`
	Admitted         uint64  `json:"admitted"`
	Queued           uint64  `json:"queued"`
	Shed             uint64  `json:"shed"`
	CoDelDropped     uint64  `json:"codel_dropped"`
	DeadlineRejected uint64  `json:"deadline_rejected"`
	BrownoutServed   uint64  `json:"brownout_served"`
	BrownoutRejected uint64  `json:"brownout_rejected"`
	BrownoutActive   bool    `json:"brownout_active"`
	ShortLatencyMs   float64 `json:"short_latency_ms"`
	LongLatencyMs    float64 `json:"long_latency_ms"`
}

// Stats snapshots the controller-owned counters and gauges.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Limit:          c.limit,
		Inflight:       c.inflight,
		QueueDepth:     len(c.queue),
		Admitted:       c.admitted.Value(),
		Queued:         c.queued.Value(),
		Shed:           c.shed.Value(),
		CoDelDropped:   c.codelDropped.Value(),
		ShortLatencyMs: c.shortLat / float64(time.Millisecond),
		LongLatencyMs:  c.longLat / float64(time.Millisecond),
	}
}
