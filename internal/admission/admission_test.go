package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestServiceTimeEWMAConverges(t *testing.T) {
	clk := newFakeClock()
	st := NewServiceTime(clk.Now)
	if got := st.Estimate(1); got != 0 {
		t.Fatalf("estimate before any observation = %v, want 0", got)
	}
	for i := 0; i < 50; i++ {
		st.Observe(1, 10*time.Millisecond)
	}
	got := st.Estimate(1)
	if got < 9*time.Millisecond || got > 11*time.Millisecond {
		t.Errorf("estimate after steady 10ms = %v", got)
	}
	// A different method key is independent.
	if got := st.Estimate(2); got != 0 {
		t.Errorf("unobserved method estimate = %v, want 0", got)
	}
	// Slow observations pull it up quickly.
	for i := 0; i < 20; i++ {
		st.Observe(1, 100*time.Millisecond)
	}
	if got := st.Estimate(1); got < 80*time.Millisecond {
		t.Errorf("estimate after shift to 100ms = %v, want ≥ 80ms", got)
	}
}

func TestServiceTimeEstimateExpires(t *testing.T) {
	clk := newFakeClock()
	st := NewServiceTime(clk.Now)
	st.Observe(1, 50*time.Millisecond)
	if got := st.Estimate(1); got == 0 {
		t.Fatal("fresh estimate reads 0")
	}
	clk.Advance(estimateFreshFor + time.Second)
	if got := st.Estimate(1); got != 0 {
		t.Errorf("stale estimate = %v, want 0 (a stuck gate must lift)", got)
	}
}

func TestTokenBucketRefills(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(10, 2, clk.Now) // 10/s, burst 2
	if !b.Allow() || !b.Allow() {
		t.Fatal("burst tokens not available")
	}
	if b.Allow() {
		t.Fatal("empty bucket allowed a request")
	}
	if hint := b.NextIn(); hint <= 0 || hint > 200*time.Millisecond {
		t.Errorf("NextIn = %v, want (0, 100ms]-ish", hint)
	}
	clk.Advance(100 * time.Millisecond) // exactly one token
	if !b.Allow() {
		t.Error("bucket did not refill after 100ms at 10/s")
	}
	if b.Allow() {
		t.Error("bucket over-refilled")
	}
	// Refill caps at burst.
	clk.Advance(time.Hour)
	if got := b.Tokens(); got != 2 {
		t.Errorf("tokens after long idle = %v, want capped at burst 2", got)
	}
}

func TestControllerAdmitsUnderLimit(t *testing.T) {
	c := NewController(Config{InitialLimit: 4, MinLimit: 1})
	var rels []func(time.Duration)
	for i := 0; i < 4; i++ {
		rel, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	st := c.Stats()
	if st.Inflight != 4 || st.Admitted != 4 {
		t.Errorf("stats = %+v, want inflight 4 admitted 4", st)
	}
	for _, rel := range rels {
		rel(time.Millisecond)
	}
	if st := c.Stats(); st.Inflight != 0 {
		t.Errorf("inflight after release = %d, want 0", st.Inflight)
	}
}

func TestControllerQueueFullSheds(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{InitialLimit: 1, MinLimit: 1, MaxQueue: 2, Now: clk.Now})
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue with two waiters.
	var wg sync.WaitGroup
	admitted := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Acquire(context.Background())
			if err != nil {
				t.Errorf("queued acquire rejected: %v", err)
				return
			}
			admitted <- struct{}{}
			r(time.Millisecond)
		}()
	}
	waitForDepth(t, c, 2)
	// Third arrival: queue full, immediate shed with a scaled hint.
	_, err = c.Acquire(context.Background())
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("overflow acquire err = %v, want RejectedError", err)
	}
	if rej.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want ≥ 1s", rej.RetryAfter)
	}
	if st := c.Stats(); st.Shed != 1 || st.Queued != 2 {
		t.Errorf("stats = %+v, want shed 1 queued 2", st)
	}
	rel(time.Millisecond) // drain: the queue empties through the slot
	wg.Wait()
	if len(admitted) != 2 {
		t.Errorf("admitted %d queued waiters, want 2", len(admitted))
	}
}

func TestControllerQueuedCallerHonorsContext(t *testing.T) {
	c := NewController(Config{InitialLimit: 1, MinLimit: 1, MaxQueue: 8})
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx)
		done <- err
	}()
	waitForDepth(t, c, 1)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("queued acquire err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter never returned")
	}
	rel(0)
	// The canceled waiter must not have leaked a slot.
	if rel2, err := c.Acquire(context.Background()); err != nil {
		t.Errorf("acquire after canceled waiter: %v", err)
	} else {
		rel2(0)
	}
	if st := c.Stats(); st.Inflight != 0 {
		t.Errorf("inflight = %d, want 0 (canceled waiter leaked a slot)", st.Inflight)
	}
}

func TestControllerCoDelShedsStandingQueue(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		InitialLimit: 1, MinLimit: 1, MaxQueue: 16,
		TargetDelay: 10 * time.Millisecond, Interval: 40 * time.Millisecond,
		Now: clk.Now,
	})
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admits := make(chan func(time.Duration), 8)
	rejects := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			r, err := c.Acquire(context.Background())
			if err != nil {
				rejects <- err
				return
			}
			admits <- r
		}()
	}
	waitForDepth(t, c, 8)
	// The queue stands far above target; every dequeue from here on
	// sees a 200ms+ sojourn. The first above-target dequeue only arms
	// the interval timer; once it expires, dropping mode sheds.
	clk.Advance(200 * time.Millisecond)
	rel(0)
	deadline := time.After(10 * time.Second)
	var rejected int
	for resolved := 0; resolved < 8; resolved++ {
		select {
		case r := <-admits:
			clk.Advance(50 * time.Millisecond)
			r(0)
		case err := <-rejects:
			var rej *RejectedError
			if !errors.As(err, &rej) {
				t.Fatalf("reject err = %v, want RejectedError", err)
			}
			rejected++
		case <-deadline:
			t.Fatalf("queue wedged with %d waiters resolved", resolved)
		}
	}
	st := c.Stats()
	if st.CoDelDropped == 0 || rejected == 0 {
		t.Errorf("no CoDel drops after standing 200ms queue: %+v", st)
	}
	if st.CoDelDropped != uint64(rejected) {
		t.Errorf("codel_dropped %d != observed rejections %d", st.CoDelDropped, rejected)
	}
}

func TestControllerAIMDGradient(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{InitialLimit: 10, MinLimit: 2, MaxLimit: 50, Now: clk.Now, Interval: 100 * time.Millisecond})
	// Steady latency: limit grows additively.
	for i := 0; i < 100; i++ {
		rel, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rel(10 * time.Millisecond)
	}
	grown := c.Stats().Limit
	if grown <= 10 {
		t.Errorf("limit after steady phase = %v, want > 10", grown)
	}
	// Latency explodes: gradient trips, limit shrinks multiplicatively
	// (one decrease per interval).
	for i := 0; i < 50; i++ {
		rel, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rel(500 * time.Millisecond)
		clk.Advance(110 * time.Millisecond)
	}
	shrunk := c.Stats().Limit
	if shrunk >= grown*decreaseFactor {
		t.Errorf("limit after latency spike = %v, want < %v", shrunk, grown*decreaseFactor)
	}
	if shrunk < float64(2) {
		t.Errorf("limit fell below MinLimit: %v", shrunk)
	}
}

func TestBrownoutHysteresis(t *testing.T) {
	clk := newFakeClock()
	b := NewBrownout(BrownoutConfig{Enter: time.Second, Exit: 2 * time.Second, Now: clk.Now})
	b.Note(true)
	if b.Active() {
		t.Fatal("brownout active on first overload sample")
	}
	clk.Advance(500 * time.Millisecond)
	b.Note(true)
	if b.Active() {
		t.Fatal("brownout active before Enter elapsed")
	}
	clk.Advance(600 * time.Millisecond)
	b.Note(true)
	if !b.Active() {
		t.Fatal("brownout not active after sustained overload")
	}
	// A lone calm sample inside the storm must not lift it.
	b.Note(false)
	if !b.Active() {
		t.Fatal("single calm sample lifted the brownout")
	}
	// Calm for the exit window lifts it.
	clk.Advance(2100 * time.Millisecond)
	b.Note(false)
	if b.Active() {
		t.Fatal("brownout still active after exit window of calm")
	}
	if b.Activations() != 1 {
		t.Errorf("activations = %d, want 1", b.Activations())
	}
}

func TestBrownoutBlipDoesNotInheritStreak(t *testing.T) {
	clk := newFakeClock()
	b := NewBrownout(BrownoutConfig{Enter: time.Second, Exit: 2 * time.Second, Now: clk.Now})
	b.Note(true)
	clk.Advance(900 * time.Millisecond)
	// Quiet for well past Enter: streak resets.
	clk.Advance(1500 * time.Millisecond)
	b.Note(false)
	b.Note(true) // fresh blip, fresh streak
	clk.Advance(500 * time.Millisecond)
	b.Note(true)
	if b.Active() {
		t.Error("stale streak age leaked into a fresh blip")
	}
}

// TestControllerConcurrentStress hammers Acquire/release from many
// goroutines under -race; invariant: inflight returns to zero and no
// waiter hangs.
func TestControllerConcurrentStress(t *testing.T) {
	c := NewController(Config{InitialLimit: 8, MinLimit: 2, MaxQueue: 32})
	var wg sync.WaitGroup
	var served, rejected atomic.Int64
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx := context.Background()
				if i%7 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
					defer cancel()
				}
				rel, err := c.Acquire(ctx)
				if err != nil {
					rejected.Add(1)
					continue
				}
				served.Add(1)
				rel(time.Microsecond * 50)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run wedged")
	}
	if st := c.Stats(); st.Inflight != 0 {
		t.Errorf("inflight after stress = %d, want 0", st.Inflight)
	}
	if served.Load() == 0 {
		t.Error("no request was ever served")
	}
	t.Logf("served=%d rejected=%d stats=%+v", served.Load(), rejected.Load(), c.Stats())
}

// waitForDepth polls until the controller's queue holds n waiters.
func waitForDepth(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().QueueDepth < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d (at %d)", n, c.Stats().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
}
