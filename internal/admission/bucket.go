package admission

import (
	"sync"
	"time"
)

// TokenBucket is a standard refill-on-read token bucket: Allow spends
// one token when available, tokens accrue at rate per second up to
// burst. It backs the per-tenant rate limits in internal/registry.
// Safe for concurrent use; the zero value is not usable.
type TokenBucket struct {
	rate  float64 // tokens per second
	burst float64 // capacity and initial balance
	now   func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a bucket refilling at rate tokens/second with
// the given capacity, starting full. rate and burst must be positive
// (callers gate the "disabled" case themselves). now may be nil for
// time.Now.
func NewTokenBucket(rate, burst float64, now func() time.Time) *TokenBucket {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, now: now, tokens: burst, last: now()}
}

// refillLocked advances the balance to the current clock reading.
func (b *TokenBucket) refillLocked(now time.Time) {
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.tokens += b.rate * elapsed.Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Allow spends one token if the bucket holds at least one.
func (b *TokenBucket) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// NextIn reports how long until one token will be available — the
// Retry-After hint for a rate-limited rejection. Zero when a token is
// already there.
func (b *TokenBucket) NextIn() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	if b.tokens >= 1 {
		return 0
	}
	if b.rate <= 0 {
		return time.Hour // never refills; cap the hint at something finite
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// Tokens reports the current balance (observability only).
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	return b.tokens
}
