package dataset

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewMasksHighBits(t *testing.T) {
	d := New(3, []uint64{0xFF})
	if d.Record(0) != 0x7 {
		t.Errorf("record = %b, want 111", d.Record(0))
	}
}

func TestNewRejectsBadDim(t *testing.T) {
	for _, dim := range []int{0, -1, 65} {
		func() {
			defer func() { _ = recover() }()
			New(dim, nil)
			t.Errorf("New(%d) did not panic", dim)
		}()
	}
}

func TestDim64Allowed(t *testing.T) {
	d := New(64, []uint64{^uint64(0)})
	if d.Record(0) != ^uint64(0) {
		t.Error("dim-64 record corrupted")
	}
}

func TestMarginalCountsExactly(t *testing.T) {
	// Records over 4 attrs: 0b0011, 0b0011, 0b0101, 0b1111.
	d := New(4, []uint64{0b0011, 0b0011, 0b0101, 0b1111})
	m := d.Marginal([]int{0, 1})
	// attr0,attr1 pairs: (1,1) x2, (1,0), (1,1) -> idx 3:3, idx 1:1.
	want := []float64{0, 1, 0, 3}
	if !reflect.DeepEqual(m.Cells, want) {
		t.Errorf("marginal = %v, want %v", m.Cells, want)
	}
	m2 := d.Marginal([]int{3})
	if m2.Cells[0] != 3 || m2.Cells[1] != 1 {
		t.Errorf("marginal over {3} = %v", m2.Cells)
	}
}

func TestMarginalTotalEqualsN(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(100)
		recs := make([]uint64, n)
		for i := range recs {
			recs[i] = uint64(r.Int63())
		}
		d := New(10, recs)
		m := d.Marginal([]int{1, 4, 7})
		return m.Total() == float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a marginal computed directly equals the projection of any
// wider marginal that covers it.
func TestMarginalConsistentWithProjection(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs := make([]uint64, 200)
		for i := range recs {
			recs[i] = uint64(r.Int63())
		}
		d := New(12, recs)
		wide := d.Marginal([]int{2, 3, 5, 8, 11})
		direct := d.Marginal([]int{3, 8})
		proj := wide.Project([]int{3, 8})
		for i := range direct.Cells {
			if direct.Cells[i] != proj.Cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMarginalPanicsOnBadAttr(t *testing.T) {
	d := New(4, []uint64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Marginal([]int{4})
}

func TestFullContingency(t *testing.T) {
	d := New(2, []uint64{0, 1, 1, 3})
	full := d.FullContingency()
	want := []float64{1, 2, 0, 1}
	if !reflect.DeepEqual(full.Cells, want) {
		t.Errorf("full = %v, want %v", full.Cells, want)
	}
}

func TestOneWayDensities(t *testing.T) {
	d := New(3, []uint64{0b001, 0b011, 0b111, 0b000})
	got := d.OneWayDensities()
	want := []float64{0.75, 0.5, 0.25}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("densities = %v, want %v", got, want)
	}
}

func TestOneWayDensitiesEmpty(t *testing.T) {
	d := New(3, nil)
	got := d.OneWayDensities()
	if got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Errorf("densities of empty dataset = %v", got)
	}
}

func TestRoundTripSerialization(t *testing.T) {
	orig := New(5, []uint64{0b10101, 0b00011, 0b11111, 0})
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != 5 || got.Len() != 4 {
		t.Fatalf("round trip dim=%d len=%d", got.Dim(), got.Len())
	}
	if !reflect.DeepEqual(got.Records(), orig.Records()) {
		t.Errorf("records = %v, want %v", got.Records(), orig.Records())
	}
}

func TestReadFromErrors(t *testing.T) {
	cases := []string{
		"",                 // no header
		"3 2\n101\n",       // truncated
		"3 1\n10\n",        // short record
		"3 1\n1x1\n",       // bad character
		"99 0\n",           // dim out of range
		"3 -1\n",           // negative count
		"3 1\n101\n110\n",  // more records than the header declares
		"3 1\n101\njunk\n", // trailing garbage
	}
	for _, c := range cases {
		if _, err := ReadFrom(strings.NewReader(c)); err == nil {
			t.Errorf("ReadFrom(%q) succeeded, want error", c)
		}
	}
}

func TestReadFromToleratesTrailingWhitespace(t *testing.T) {
	got, err := ReadFrom(strings.NewReader("3 1\n101\n\n  \n"))
	if err != nil {
		t.Fatalf("trailing blank lines rejected: %v", err)
	}
	if got.Len() != 1 || got.Record(0) != 0b101 {
		t.Fatalf("parsed %v", got.Records())
	}
}

// TestWriteToRejectsBitsAboveDim constructs (package-internally) a
// dataset whose record carries a bit above its declared dimension —
// serializing it would silently drop that attribute, so WriteTo must
// refuse.
func TestWriteToRejectsBitsAboveDim(t *testing.T) {
	d := &Dataset{dim: 2, records: []uint64{0b101}}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err == nil {
		t.Fatal("WriteTo serialized a record with bits above dim")
	}
	if buf.Len() != 0 {
		t.Fatalf("WriteTo emitted %d bytes before failing", buf.Len())
	}
}

func TestAttrs(t *testing.T) {
	d := New(4, nil)
	if !reflect.DeepEqual(d.Attrs(), []int{0, 1, 2, 3}) {
		t.Errorf("Attrs = %v", d.Attrs())
	}
}
