package synth

import (
	"math"
	"math/bits"
	"testing"
)

func TestKosarakShape(t *testing.T) {
	d := Kosarak(2000, 1)
	if d.Dim() != 32 {
		t.Fatalf("dim = %d, want 32", d.Dim())
	}
	if d.Len() != 2000 {
		t.Fatalf("len = %d", d.Len())
	}
	dens := d.OneWayDensities()
	// Popularity must be skewed: first page much denser than last.
	if dens[0] < 2*dens[31] {
		t.Errorf("densities not skewed: first=%v last=%v", dens[0], dens[31])
	}
	for i, v := range dens {
		if v <= 0 || v >= 1 {
			t.Errorf("attribute %d density %v degenerate", i, v)
		}
	}
}

func TestKosarakCorrelation(t *testing.T) {
	d := Kosarak(20000, 2)
	// Pages 0 and 1 share a cluster: P(both) should exceed the product
	// of marginals noticeably.
	m := d.Marginal([]int{0, 1})
	n := float64(d.Len())
	p0 := (m.Cells[1] + m.Cells[3]) / n
	p1 := (m.Cells[2] + m.Cells[3]) / n
	p01 := m.Cells[3] / n
	if p01 < 1.1*p0*p1 {
		t.Errorf("clustered pages uncorrelated: joint=%v product=%v", p01, p0*p1)
	}
}

func TestAOLShape(t *testing.T) {
	d := AOL(1500, 3)
	if d.Dim() != 45 || d.Len() != 1500 {
		t.Fatalf("dim=%d len=%d", d.Dim(), d.Len())
	}
	dens := d.OneWayDensities()
	for i, v := range dens {
		if v <= 0 || v >= 0.9 {
			t.Errorf("attribute %d density %v out of expected range", i, v)
		}
	}
}

func TestMSNBCShape(t *testing.T) {
	d := MSNBC(3000, 4)
	if d.Dim() != 9 || d.Len() != 3000 {
		t.Fatalf("dim=%d len=%d", d.Dim(), d.Len())
	}
	dens := d.OneWayDensities()
	// Front page is visited by most archetypes; must be densest.
	for i := 1; i < 9; i++ {
		if dens[i] > dens[0] {
			t.Errorf("attribute %d denser than front page: %v > %v", i, dens[i], dens[0])
		}
	}
}

func TestMChainTransitionProbability(t *testing.T) {
	// For order 1: after a 1 the next bit is 1 with prob 0.25; after a 0
	// with prob 0.75. Verify empirically.
	d := MChain(1, 5000, 5)
	var after1Total, after1One, after0Total, after0One float64
	for _, r := range d.Records() {
		for i := 1; i < 64; i++ {
			prev := r >> uint(i-1) & 1
			cur := r >> uint(i) & 1
			if prev == 1 {
				after1Total++
				after1One += float64(cur)
			} else {
				after0Total++
				after0One += float64(cur)
			}
		}
	}
	p1 := after1One / after1Total
	p0 := after0One / after0Total
	if math.Abs(p1-0.25) > 0.02 {
		t.Errorf("P(1|1) = %v, want ~0.25", p1)
	}
	if math.Abs(p0-0.75) > 0.02 {
		t.Errorf("P(1|0) = %v, want ~0.75", p0)
	}
}

func TestMChainBalanced(t *testing.T) {
	// The chain is symmetric, so overall bit density should be ~0.5 for
	// every order.
	for order := 1; order <= 7; order++ {
		d := MChain(order, 1000, 6)
		ones := 0
		for _, r := range d.Records() {
			ones += bits.OnesCount64(r)
		}
		density := float64(ones) / float64(64*d.Len())
		if math.Abs(density-0.5) > 0.03 {
			t.Errorf("order %d: density = %v, want ~0.5", order, density)
		}
	}
}

func TestMChainRejectsBadOrder(t *testing.T) {
	for _, order := range []int{0, -1, 64} {
		func() {
			defer func() { _ = recover() }()
			MChain(order, 10, 1)
			t.Errorf("MChain(order=%d) did not panic", order)
		}()
	}
}

func TestUniformDensity(t *testing.T) {
	d := Uniform(16, 5000, 0.3, 7)
	dens := d.OneWayDensities()
	for i, v := range dens {
		if math.Abs(v-0.3) > 0.03 {
			t.Errorf("attribute %d density %v, want ~0.3", i, v)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Kosarak(100, 9)
	b := Kosarak(100, 9)
	for i := range a.Records() {
		if a.Record(i) != b.Record(i) {
			t.Fatal("Kosarak not deterministic for fixed seed")
		}
	}
	c := Kosarak(100, 10)
	same := true
	for i := range a.Records() {
		if a.Record(i) != c.Record(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}
