// Package synth generates the datasets the paper evaluates on. The three
// real datasets (Kosarak, AOL, MSNBC) are not redistributable, so this
// package produces synthetic stand-ins matched on dimensionality, record
// count and correlation structure; MCHAIN is generated exactly as the
// paper specifies. See DESIGN.md §3 for the substitution rationale.
package synth

import (
	"math/bits"

	"priview/internal/dataset"
	"priview/internal/noise"
)

// Paper record counts, used as defaults by the generators.
const (
	KosarakN = 912627
	AOLN     = 647377
	MSNBCN   = 989818
	MChainN  = 500000
)

// Kosarak returns a d=32 click-stream-like dataset: each of the 32
// attributes is a popular page with power-law base popularity, and users
// belong to interest clusters that make related pages strongly
// correlated — the structure PriView's consistency and maxent steps
// exploit on the real Kosarak data.
func Kosarak(n int, seed int64) *dataset.Dataset {
	const d = 32
	rng := noise.NewStream(seed).Derive("kosarak")
	// Base popularity: page i is visited with probability ~ c / (i+2),
	// mimicking the heavy skew of the top-32 pages of a news portal.
	base := make([]float64, d)
	for i := 0; i < d; i++ {
		base[i] = 0.5 / float64(i+2)
	}
	// Interest clusters: overlapping groups of pages that tend to be
	// visited together. Cluster membership boosts each member page.
	clusters := [][]int{
		{0, 1, 2, 3}, {2, 3, 4, 5, 6}, {7, 8, 9}, {10, 11, 12, 13},
		{1, 14, 15}, {16, 17, 18, 19, 20}, {21, 22, 23}, {24, 25, 26, 27},
		{28, 29, 30, 31}, {5, 9, 13, 17}, {0, 16, 24, 28},
	}
	records := make([]uint64, n)
	for r := 0; r < n; r++ {
		var rec uint64
		// Each user activates 1-3 clusters.
		nc := 1 + rng.Intn(3)
		boost := make(map[int]bool, 8)
		for c := 0; c < nc; c++ {
			for _, p := range clusters[rng.Intn(len(clusters))] {
				boost[p] = true
			}
		}
		for i := 0; i < d; i++ {
			p := base[i]
			if boost[i] {
				p = 0.7 + 0.25*p
			}
			if rng.Float64() < p {
				rec |= 1 << uint(i)
			}
		}
		records[r] = rec
	}
	return dataset.New(d, records)
}

// AOL returns a d=45 search-log-like dataset: 45 WordNet-style topic
// categories; each user draws 1-3 latent interests, and each interest
// activates an overlapping subset of categories with high probability.
func AOL(n int, seed int64) *dataset.Dataset {
	const d = 45
	rng := noise.NewStream(seed).Derive("aol")
	// 12 latent topics, each touching 4-8 categories; overlaps create
	// the cross-category correlations of hypernym generalization.
	topics := [][]int{
		{0, 1, 2, 3}, {3, 4, 5, 6, 7}, {8, 9, 10, 11, 12}, {12, 13, 14},
		{15, 16, 17, 18, 19, 20}, {20, 21, 22, 23}, {24, 25, 26, 27, 28},
		{28, 29, 30, 31}, {32, 33, 34, 35, 36}, {36, 37, 38, 39},
		{40, 41, 42, 43, 44}, {0, 15, 24, 32, 40},
	}
	// Sparse ambient noise: any category can appear with small prob.
	records := make([]uint64, n)
	for r := 0; r < n; r++ {
		var rec uint64
		nt := 1 + rng.Intn(3)
		for t := 0; t < nt; t++ {
			topic := topics[rng.Intn(len(topics))]
			for _, c := range topic {
				if rng.Float64() < 0.65 {
					//lint:ignore attrset record bit-packing of a sampled topic, not an attribute-set value
					rec |= 1 << uint(c)
				}
			}
		}
		for i := 0; i < d; i++ {
			if rng.Float64() < 0.03 {
				rec |= 1 << uint(i)
			}
		}
		records[r] = rec
	}
	return dataset.New(d, records)
}

// MSNBC returns a d=9 click-stream-like dataset: 9 page categories and a
// small set of user archetypes (front-page skimmer, news reader, sports
// fan, ...) whose per-category visit probabilities induce the
// correlations the d=9 comparison in the paper's Fig. 1 runs on.
func MSNBC(n int, seed int64) *dataset.Dataset {
	const d = 9
	rng := noise.NewStream(seed).Derive("msnbc")
	// Archetype visit probabilities are blended with a common base rate:
	// the real MSNBC data's joint distribution factorizes well beyond
	// pairwise structure (the paper's PriView matches Flat on it with a
	// pair-covering design), so the stand-in keeps high-order
	// correlations mild.
	base := [d]float64{0.55, 0.25, 0.18, 0.18, 0.12, 0.14, 0.12, 0.14, 0.1}
	raw := [][d]float64{
		{0.9, 0.1, 0.05, 0.05, 0.02, 0.02, 0.02, 0.02, 0.02}, // front page only
		{0.8, 0.7, 0.6, 0.1, 0.05, 0.05, 0.1, 0.05, 0.05},    // news reader
		{0.5, 0.05, 0.05, 0.8, 0.7, 0.1, 0.05, 0.05, 0.1},    // sports fan
		{0.4, 0.3, 0.1, 0.1, 0.05, 0.8, 0.7, 0.3, 0.1},       // business/tech
		{0.3, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.8, 0.7},        // lifestyle
		{0.7, 0.5, 0.4, 0.4, 0.3, 0.4, 0.3, 0.3, 0.3},        // heavy user
	}
	const blend = 0.65 // weight of the shared base rate
	archetypes := make([][d]float64, len(raw))
	for a := range raw {
		for i := 0; i < d; i++ {
			archetypes[a][i] = blend*base[i] + (1-blend)*raw[a][i]
		}
	}
	weights := []float64{0.35, 0.2, 0.15, 0.12, 0.1, 0.08}
	records := make([]uint64, n)
	for r := 0; r < n; r++ {
		a := sampleWeighted(rng, weights)
		var rec uint64
		for i := 0; i < d; i++ {
			if rng.Float64() < archetypes[a][i] {
				rec |= 1 << uint(i)
			}
		}
		records[r] = rec
	}
	return dataset.New(d, records)
}

func sampleWeighted(rng *noise.Stream, w []float64) int {
	total := 0.0
	for _, v := range w {
		total += v
	}
	x := rng.Float64() * total
	for i, v := range w {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}

// MChain generates the paper's MCHAIN synthetic data: records are 64-bit
// stationary binary sequences from an order-i Markov chain where, given
// the previous i bits with s ones, the next bit is 1 with probability
// 0.5 + (1 - 2s/i)/4 (§5, following Usatenko & Yampol'skii). The first i
// bits of each record are uniform.
func MChain(order, n int, seed int64) *dataset.Dataset {
	const d = 64
	if order < 1 || order >= d {
		panic("synth: MChain order must be in [1, 63]")
	}
	rng := noise.NewStream(seed).DeriveIndexed("mchain", order)
	mask := (uint64(1) << uint(order)) - 1
	records := make([]uint64, n)
	for r := 0; r < n; r++ {
		var rec uint64
		for i := 0; i < order; i++ {
			if rng.Float64() < 0.5 {
				rec |= 1 << uint(i)
			}
		}
		for i := order; i < d; i++ {
			prev := (rec >> uint(i-order)) & mask
			s := float64(bits.OnesCount64(prev))
			p := 0.5 + (1-2*s/float64(order))/4
			if rng.Float64() < p {
				rec |= 1 << uint(i)
			}
		}
		records[r] = rec
	}
	return dataset.New(d, records)
}

// Uniform returns n records over d attributes with each bit independent
// Bernoulli(p) — useful as an uncorrelated control in tests.
func Uniform(d, n int, p float64, seed int64) *dataset.Dataset {
	rng := noise.NewStream(seed).Derive("uniform")
	records := make([]uint64, n)
	for r := 0; r < n; r++ {
		var rec uint64
		for i := 0; i < d; i++ {
			if rng.Float64() < p {
				rec |= 1 << uint(i)
			}
		}
		records[r] = rec
	}
	return dataset.New(d, records)
}
