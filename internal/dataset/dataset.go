// Package dataset represents d-dimensional binary datasets (d ≤ 64) and
// computes exact marginal contingency tables from them. A record is a
// bit string stored in a uint64: bit i holds the value of attribute i.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"strings"

	"priview/internal/marginal"
)

// MaxDim is the largest supported dimensionality; records are packed
// into a single machine word.
const MaxDim = 64

// Dataset is an immutable collection of binary records over Dim
// attributes.
type Dataset struct {
	dim     int
	records []uint64
}

// New returns a dataset over dim attributes holding the given records.
// Bits at positions ≥ dim must be zero; they are masked off defensively.
func New(dim int, records []uint64) *Dataset {
	if dim <= 0 || dim > MaxDim {
		panic(fmt.Sprintf("dataset: dimension %d out of range (1..%d)", dim, MaxDim))
	}
	mask := maskFor(dim)
	rs := make([]uint64, len(records))
	for i, r := range records {
		rs[i] = r & mask
	}
	return &Dataset{dim: dim, records: rs}
}

func maskFor(dim int) uint64 {
	if dim == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(dim)) - 1
}

// Dim returns the number of binary attributes.
func (d *Dataset) Dim() int { return d.dim }

// Len returns N, the number of records.
func (d *Dataset) Len() int { return len(d.records) }

// Record returns the i-th record.
func (d *Dataset) Record(i int) uint64 { return d.records[i] }

// Records returns the underlying record slice. Callers must not mutate
// it; it is exposed for read-only scans by generators and tests.
func (d *Dataset) Records() []uint64 { return d.records }

// Attrs returns the full sorted attribute list {0, ..., dim-1}.
func (d *Dataset) Attrs() []int {
	a := make([]int, d.dim)
	for i := range a {
		a[i] = i
	}
	return a
}

// Marginal computes the exact marginal contingency table over the given
// attribute set by a single scan of the records. This is the only place
// raw data is aggregated; everything downstream works on tables.
func (d *Dataset) Marginal(attrs []int) *marginal.Table {
	t := marginal.New(attrs)
	for _, a := range t.Attrs {
		if a < 0 || a >= d.dim {
			panic(fmt.Sprintf("dataset: attribute %d out of range for dim %d", a, d.dim))
		}
	}
	// Precompute each attribute's source bit for a tight inner loop.
	srcBits := make([]uint, len(t.Attrs))
	for i, a := range t.Attrs {
		srcBits[i] = uint(a)
	}
	for _, r := range d.records {
		idx := 0
		for j, b := range srcBits {
			idx |= int((r>>b)&1) << uint(j)
		}
		t.Cells[idx]++
	}
	return t
}

// FullContingency returns the complete 2^dim contingency table. It is
// only legal for dim ≤ 30 and exists to support the Flat baseline and
// small-d methods; large-d callers must work with marginals.
func (d *Dataset) FullContingency() *marginal.Table {
	return d.Marginal(d.Attrs())
}

// OneWayDensities returns, per attribute, the fraction of records with
// that attribute set. Useful for sanity checks and generators.
func (d *Dataset) OneWayDensities() []float64 {
	counts := make([]float64, d.dim)
	for _, r := range d.records {
		for r != 0 {
			b := bits.TrailingZeros64(r)
			counts[b]++
			r &= r - 1
		}
	}
	if len(d.records) == 0 {
		return counts
	}
	n := float64(len(d.records))
	for i := range counts {
		counts[i] /= n
	}
	return counts
}

// WriteTo serializes the dataset in a simple line-oriented text format:
// a header line "dim N" followed by one record per line as a bit string
// (attribute 0 first).
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	// Reject records with bits above the declared dimension before
	// writing anything: serializing them would silently drop attribute
	// values, producing a file that parses but lies about the data.
	mask := maskFor(d.dim)
	for i, r := range d.records {
		if r&^mask != 0 {
			return 0, fmt.Errorf("dataset: record %d (%#x) has bits above dimension %d", i, r, d.dim)
		}
	}
	bw := bufio.NewWriter(w)
	var n int64
	c, err := fmt.Fprintf(bw, "%d %d\n", d.dim, len(d.records))
	n += int64(c)
	if err != nil {
		return n, err
	}
	buf := make([]byte, d.dim+1)
	for _, r := range d.records {
		for i := 0; i < d.dim; i++ {
			if r>>uint(i)&1 == 1 {
				buf[i] = '1'
			} else {
				buf[i] = '0'
			}
		}
		buf[d.dim] = '\n'
		c, err := bw.Write(buf)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom parses the format produced by WriteTo.
func ReadFrom(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var dim, count int
	if _, err := fmt.Fscanf(br, "%d %d\n", &dim, &count); err != nil {
		return nil, fmt.Errorf("dataset: bad header: %w", err)
	}
	if dim <= 0 || dim > MaxDim {
		return nil, fmt.Errorf("dataset: dimension %d out of range", dim)
	}
	if count < 0 {
		return nil, fmt.Errorf("dataset: negative record count %d", count)
	}
	// Pre-allocate from the header, but never trust it for more than a
	// modest chunk: a corrupt header must not force a huge allocation.
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	records := make([]uint64, 0, capHint)
	for i := 0; i < count; i++ {
		line, err := br.ReadString('\n')
		line = strings.TrimRight(line, "\n\r")
		if err != nil && line == "" {
			return nil, fmt.Errorf("dataset: truncated at record %d: %w", i, err)
		}
		if len(line) != dim {
			return nil, fmt.Errorf("dataset: record %d has %d bits, want %d", i, len(line), dim)
		}
		var rec uint64
		for j := 0; j < dim; j++ {
			switch line[j] {
			case '1':
				rec |= 1 << uint(j)
			case '0':
			default:
				return nil, fmt.Errorf("dataset: record %d has invalid character %q", i, line[j])
			}
		}
		records = append(records, rec)
	}
	// The header promised exactly count records; anything but trailing
	// whitespace afterwards means the header and body disagree — a
	// truncated count or a concatenated file — and silently dropping
	// the excess would hide the corruption.
	for {
		b, err := br.ReadByte()
		if err != nil {
			break
		}
		if b != '\n' && b != '\r' && b != ' ' && b != '\t' {
			return nil, fmt.Errorf("dataset: trailing data after %d declared records", count)
		}
	}
	return &Dataset{dim: dim, records: records}, nil
}
