package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// OneHotSpec describes how a categorical CSV was one-hot encoded into a
// binary dataset: attribute i of the dataset corresponds to
// (Columns[i], Values[i]).
type OneHotSpec struct {
	// Header holds the CSV column names (or synthesized names when the
	// input has no header row).
	Header []string
	// Columns[i] is the source column index of binary attribute i.
	Columns []int
	// Values[i] is the category value that sets binary attribute i.
	Values []string
}

// AttrName renders a human-readable name for attribute i, e.g.
// "city=paris".
func (s *OneHotSpec) AttrName(i int) string {
	return fmt.Sprintf("%s=%s", s.Header[s.Columns[i]], s.Values[i])
}

// OneHotOptions tunes FromCSV.
type OneHotOptions struct {
	// HasHeader treats the first row as column names.
	HasHeader bool
	// MaxAttrs caps the number of binary attributes (most frequent
	// (column, value) pairs are kept). 0 means MaxDim (64).
	MaxAttrs int
	// MinCount drops (column, value) pairs occurring fewer times; 0
	// keeps everything that fits.
	MinCount int
}

// FromCSV one-hot encodes a categorical CSV into a binary dataset: each
// retained (column, value) pair becomes one binary attribute that is set
// on the records holding that value. When the distinct pairs exceed the
// attribute budget, the most frequent pairs are kept — mirroring how the
// paper preprocessed Kosarak (top-32 pages) and AOL (45 categories).
func FromCSV(r io.Reader, opts OneHotOptions) (*Dataset, *OneHotSpec, error) {
	if opts.MaxAttrs <= 0 || opts.MaxAttrs > MaxDim {
		opts.MaxAttrs = MaxDim
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("dataset: empty csv")
	}
	var header []string
	if opts.HasHeader {
		header = rows[0]
		rows = rows[1:]
	} else {
		header = make([]string, len(rows[0]))
		for i := range header {
			header[i] = fmt.Sprintf("col%d", i)
		}
	}
	ncols := len(header)
	for i, row := range rows {
		if len(row) != ncols {
			return nil, nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i+1, len(row), ncols)
		}
	}
	// Count (column, value) frequencies.
	type pair struct {
		col   int
		value string
	}
	counts := map[pair]int{}
	for _, row := range rows {
		for c, v := range row {
			if v == "" {
				continue // empty cells carry no category
			}
			counts[pair{c, v}]++
		}
	}
	if len(counts) == 0 {
		return nil, nil, fmt.Errorf("dataset: csv has no non-empty values")
	}
	pairs := make([]pair, 0, len(counts))
	for p, n := range counts {
		if n >= opts.MinCount {
			pairs = append(pairs, p)
		}
	}
	if len(pairs) == 0 {
		return nil, nil, fmt.Errorf("dataset: no (column, value) pair meets MinCount=%d", opts.MinCount)
	}
	// Most frequent first; deterministic ties by (col, value).
	sort.Slice(pairs, func(i, j int) bool {
		if counts[pairs[i]] != counts[pairs[j]] {
			return counts[pairs[i]] > counts[pairs[j]]
		}
		if pairs[i].col != pairs[j].col {
			return pairs[i].col < pairs[j].col
		}
		return pairs[i].value < pairs[j].value
	})
	if len(pairs) > opts.MaxAttrs {
		pairs = pairs[:opts.MaxAttrs]
	}
	// Stable attribute order: by column then value, so related
	// attributes sit together (helps covering designs exploit locality).
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].col != pairs[j].col {
			return pairs[i].col < pairs[j].col
		}
		return pairs[i].value < pairs[j].value
	})
	index := map[pair]int{}
	spec := &OneHotSpec{Header: header}
	for i, p := range pairs {
		index[p] = i
		spec.Columns = append(spec.Columns, p.col)
		spec.Values = append(spec.Values, p.value)
	}
	records := make([]uint64, len(rows))
	for ri, row := range rows {
		var rec uint64
		for c, v := range row {
			if v == "" {
				continue
			}
			if bit, ok := index[pair{c, v}]; ok {
				rec |= 1 << uint(bit)
			}
		}
		records[ri] = rec
	}
	return New(len(pairs), records), spec, nil
}
