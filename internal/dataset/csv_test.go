package dataset

import (
	"strings"
	"testing"
)

const sampleCSV = `city,plan,active
paris,free,yes
paris,pro,yes
lyon,free,no
paris,free,
lyon,pro,yes
`

func TestFromCSVBasic(t *testing.T) {
	data, spec, err := FromCSV(strings.NewReader(sampleCSV), OneHotOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 5 {
		t.Fatalf("N = %d, want 5", data.Len())
	}
	// Distinct pairs: city∈{paris,lyon}, plan∈{free,pro},
	// active∈{yes,no} → 6 attributes.
	if data.Dim() != 6 {
		t.Fatalf("d = %d, want 6", data.Dim())
	}
	// Find the attribute for city=paris and verify its count.
	parisBit := -1
	for i := 0; i < data.Dim(); i++ {
		if spec.AttrName(i) == "city=paris" {
			parisBit = i
		}
	}
	if parisBit < 0 {
		t.Fatal("city=paris attribute missing")
	}
	count := 0
	for _, r := range data.Records() {
		if r>>uint(parisBit)&1 == 1 {
			count++
		}
	}
	if count != 3 {
		t.Errorf("city=paris count = %d, want 3", count)
	}
}

func TestFromCSVEmptyCellsIgnored(t *testing.T) {
	data, spec, err := FromCSV(strings.NewReader(sampleCSV), OneHotOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.Dim(); i++ {
		if strings.HasSuffix(spec.AttrName(i), "=") {
			t.Errorf("empty value became an attribute: %s", spec.AttrName(i))
		}
	}
}

func TestFromCSVMaxAttrsKeepsMostFrequent(t *testing.T) {
	data, spec, err := FromCSV(strings.NewReader(sampleCSV), OneHotOptions{HasHeader: true, MaxAttrs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if data.Dim() != 2 {
		t.Fatalf("d = %d, want 2", data.Dim())
	}
	// city=paris (3) and plan=free (3) are the most frequent pairs.
	names := map[string]bool{}
	for i := 0; i < 2; i++ {
		names[spec.AttrName(i)] = true
	}
	if !names["city=paris"] || !names["plan=free"] {
		t.Errorf("kept attributes %v, want the two most frequent", names)
	}
}

func TestFromCSVMinCount(t *testing.T) {
	data, _, err := FromCSV(strings.NewReader(sampleCSV), OneHotOptions{HasHeader: true, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	// city=paris, plan=free and active=yes each occur 3 times.
	if data.Dim() != 3 {
		t.Errorf("d = %d, want 3 (only pairs with ≥3 occurrences)", data.Dim())
	}
}

func TestFromCSVNoHeader(t *testing.T) {
	_, spec, err := FromCSV(strings.NewReader("a,b\nc,b\n"), OneHotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Header[0] != "col0" || spec.Header[1] != "col1" {
		t.Errorf("synthesized header = %v", spec.Header)
	}
}

func TestFromCSVErrors(t *testing.T) {
	cases := map[string]struct {
		csv  string
		opts OneHotOptions
	}{
		"empty":          {"", OneHotOptions{}},
		"ragged":         {"a,b\nc\n", OneHotOptions{}},
		"all empty":      {",\n,\n", OneHotOptions{}},
		"mincount kills": {"a\nb\n", OneHotOptions{MinCount: 10}},
		"header only":    {"a,b\n", OneHotOptions{HasHeader: true}},
	}
	for name, c := range cases {
		if _, _, err := FromCSV(strings.NewReader(c.csv), c.opts); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestFromCSVDeterministicOrder(t *testing.T) {
	a, specA, err := FromCSV(strings.NewReader(sampleCSV), OneHotOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	b, specB, err := FromCSV(strings.NewReader(sampleCSV), OneHotOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Dim(); i++ {
		if specA.AttrName(i) != specB.AttrName(i) {
			t.Fatal("attribute order not deterministic")
		}
	}
	for i := range a.Records() {
		if a.Record(i) != b.Record(i) {
			t.Fatal("records differ between identical parses")
		}
	}
}
