package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFrom hardens the dataset text parser: arbitrary input must
// either parse into a dataset that round-trips, or fail cleanly.
func FuzzReadFrom(f *testing.F) {
	f.Add("3 2\n101\n010\n")
	f.Add("1 1\n1\n")
	f.Add("64 1\n" + strings.Repeat("1", 64) + "\n")
	f.Add("")
	f.Add("3 1\nxxx\n")
	f.Add("3 -5\n")
	f.Add("0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadFrom(strings.NewReader(input))
		if err != nil {
			return
		}
		// Successful parses must round-trip exactly.
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo failed on parsed dataset: %v", err)
		}
		d2, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if d2.Dim() != d.Dim() || d2.Len() != d.Len() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d", d.Dim(), d.Len(), d2.Dim(), d2.Len())
		}
		for i := range d.Records() {
			if d.Record(i) != d2.Record(i) {
				t.Fatal("round trip changed records")
			}
		}
	})
}

// FuzzFromCSV hardens the one-hot encoder.
func FuzzFromCSV(f *testing.F) {
	f.Add("a,b\nc,d\n", true)
	f.Add("x\ny\nz\n", false)
	f.Add(",,,\n,,,\n", false)
	f.Add("\"quo,ted\",v\nw,\n", true)
	f.Fuzz(func(t *testing.T, input string, header bool) {
		data, spec, err := FromCSV(strings.NewReader(input), OneHotOptions{HasHeader: header})
		if err != nil {
			return
		}
		if data.Dim() < 1 || data.Dim() > MaxDim {
			t.Fatalf("dimension %d out of range", data.Dim())
		}
		if len(spec.Columns) != data.Dim() || len(spec.Values) != data.Dim() {
			t.Fatal("spec misaligned with dataset")
		}
		for i := 0; i < data.Dim(); i++ {
			if spec.Columns[i] < 0 || spec.Columns[i] >= len(spec.Header) {
				t.Fatalf("spec column %d out of header range", spec.Columns[i])
			}
			_ = spec.AttrName(i) // must not panic
		}
	})
}
