package marginal

import (
	"testing"

	"priview/internal/noise"
)

func benchTable(dim int) *Table {
	attrs := make([]int, dim)
	for i := range attrs {
		attrs[i] = i * 2
	}
	t := New(attrs)
	for i := range t.Cells {
		t.Cells[i] = float64(i%97) + 0.5
	}
	return t
}

func BenchmarkProject8to4(b *testing.B) {
	t := benchTable(8)
	sub := []int{0, 4, 8, 12}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Project(sub)
	}
}

func BenchmarkProject12to2(b *testing.B) {
	t := benchTable(12)
	sub := []int{0, 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Project(sub)
	}
}

func BenchmarkAddLaplace256(b *testing.B) {
	t := benchTable(8)
	src := noise.NewStream(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.AddLaplace(src, 3.0)
	}
}

func BenchmarkL2Distance(b *testing.B) {
	x := benchTable(10)
	y := benchTable(10)
	for i := 0; i < b.N; i++ {
		L2Distance(x, y)
	}
}

func BenchmarkRestrictIndex(b *testing.B) {
	pos := []int{1, 3, 5, 7}
	s := 0
	for i := 0; i < b.N; i++ {
		s += RestrictIndex(i&255, pos)
	}
	_ = s
}

// The solver hot loop, before and after the attrset refactor: every
// IPF/Dykstra/dual-ascent cycle projects the working table onto each
// constraint's attribute set. Old shape: per-cell bit-gather
// (RestrictIndex over a pos slice). New shape: mapping precomputed once
// (RestrictIndices), the loop is one array load per cell (ProjectInto).
// The precompute is amortized over hundreds of solver iterations, so
// the benchmarks compare steady-state iteration cost and hoist it.

func BenchmarkHotLoopProjectionOld(b *testing.B) {
	t := benchTable(12) // 4096 cells
	sub := []int{0, 8, 14}
	pos := t.Positions(sub)
	proj := make([]float64, 1<<uint(len(sub)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range proj {
			proj[j] = 0
		}
		for ci, v := range t.Cells {
			proj[RestrictIndex(ci, pos)] += v
		}
	}
}

func BenchmarkHotLoopProjectionNew(b *testing.B) {
	t := benchTable(12)
	sub := []int{0, 8, 14}
	ridx := t.RestrictIndices(sub)
	proj := make([]float64, 1<<uint(len(sub)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.ProjectInto(proj, ridx)
	}
}
