package marginal

import "priview/internal/noise"

// AddLaplace perturbs every cell with an independent Laplace(0, scale)
// sample drawn from src, in place. This is the only operation in the
// repository that converts a true marginal into a differentially private
// one; callers are responsible for the privacy accounting that determines
// scale.
func (t *Table) AddLaplace(src noise.Source, scale float64) {
	for i := range t.Cells {
		t.Cells[i] += noise.Laplace(src, scale)
	}
}

// NoisyCopy returns a Laplace-perturbed copy of the table.
func (t *Table) NoisyCopy(src noise.Source, scale float64) *Table {
	c := t.Clone()
	c.AddLaplace(src, scale)
	return c
}

// AddGaussian perturbs every cell with independent N(0, sigma²) noise,
// in place — the (ε, δ)-DP alternative to AddLaplace.
func (t *Table) AddGaussian(src noise.Source, sigma float64) {
	for i := range t.Cells {
		t.Cells[i] += noise.Gaussian(src, sigma)
	}
}
