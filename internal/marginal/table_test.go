package marginal

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"priview/internal/noise"
)

func TestNewSortsAttrs(t *testing.T) {
	tab := New([]int{5, 1, 3})
	if !reflect.DeepEqual(tab.Attrs, []int{1, 3, 5}) {
		t.Errorf("Attrs = %v, want sorted", tab.Attrs)
	}
	if tab.Size() != 8 {
		t.Errorf("Size = %d, want 8", tab.Size())
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate attribute")
		}
	}()
	New([]int{1, 2, 1})
}

func TestNewRejectsHuge(t *testing.T) {
	attrs := make([]int, 31)
	for i := range attrs {
		attrs[i] = i
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on 31-attribute table")
		}
	}()
	New(attrs)
}

func TestRestrictIndex(t *testing.T) {
	// Table over positions {0,1,2}; restrict to positions {0,2}.
	// Index 0b101 (attr0=1, attr1=0, attr2=1) -> 0b11.
	if got := RestrictIndex(0b101, []int{0, 2}); got != 0b11 {
		t.Errorf("RestrictIndex = %b, want 11", got)
	}
	if got := RestrictIndex(0b010, []int{0, 2}); got != 0 {
		t.Errorf("RestrictIndex = %b, want 0", got)
	}
	if got := RestrictIndex(0b111, nil); got != 0 {
		t.Errorf("RestrictIndex to empty = %d, want 0", got)
	}
}

func TestProjectSumsCorrectCells(t *testing.T) {
	tab := New([]int{2, 7})
	// Cells indexed by (bit0 = attr2, bit1 = attr7).
	tab.Cells = []float64{1, 2, 3, 4} // 00, 10, 01, 11 in (a2, a7)
	p := tab.Project([]int{2})
	// attr2=0: cells 0b00 + 0b10 = 1 + 3; attr2=1: 2 + 4.
	if p.Cells[0] != 4 || p.Cells[1] != 6 {
		t.Errorf("projection = %v, want [4 6]", p.Cells)
	}
	q := tab.Project([]int{7})
	if q.Cells[0] != 3 || q.Cells[1] != 7 {
		t.Errorf("projection = %v, want [3 7]", q.Cells)
	}
	e := tab.Project(nil)
	if e.Cells[0] != 10 {
		t.Errorf("projection on empty = %v, want [10]", e.Cells)
	}
}

func TestProjectPanicsOnUncovered(t *testing.T) {
	tab := New([]int{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic projecting on uncovered attribute")
		}
	}()
	tab.Project([]int{3})
}

// Property: projecting first onto B then onto C equals projecting
// directly onto C, for C ⊆ B ⊆ A.
func TestProjectionComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := New([]int{0, 1, 2, 3, 4})
		for i := range tab.Cells {
			tab.Cells[i] = math.Floor(r.Float64() * 100)
		}
		b := []int{0, 2, 3}
		c := []int{2, 3}
		direct := tab.Project(c)
		staged := tab.Project(b).Project(c)
		return Equal(direct, staged, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: projection preserves total mass.
func TestProjectionPreservesTotal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := New([]int{1, 4, 6, 9})
		for i := range tab.Cells {
			tab.Cells[i] = r.Float64()*20 - 5
		}
		p := tab.Project([]int{4, 9})
		return math.Abs(p.Total()-tab.Total()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTotalAndScale(t *testing.T) {
	tab := New([]int{0, 1})
	tab.Cells = []float64{1, 2, 3, 4}
	if tab.Total() != 10 {
		t.Errorf("Total = %v, want 10", tab.Total())
	}
	tab.Scale(0.5)
	if tab.Total() != 5 {
		t.Errorf("Total after scale = %v, want 5", tab.Total())
	}
}

func TestNormalize(t *testing.T) {
	tab := New([]int{0})
	tab.Cells = []float64{3, 1}
	tab.Normalize()
	if tab.Cells[0] != 0.75 || tab.Cells[1] != 0.25 {
		t.Errorf("normalized = %v", tab.Cells)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	tab := New([]int{0, 1})
	tab.Cells = []float64{-1, 0.5, 0.25, 0.25} // total = 0
	tab.Normalize()
	for _, v := range tab.Cells {
		if v != 0.25 {
			t.Errorf("degenerate normalize = %v, want uniform", tab.Cells)
			break
		}
	}
}

func TestUniform(t *testing.T) {
	u := Uniform([]int{3, 8, 1}, 80)
	if u.Size() != 8 {
		t.Fatalf("Size = %d", u.Size())
	}
	for _, v := range u.Cells {
		if v != 10 {
			t.Errorf("uniform cell = %v, want 10", v)
		}
	}
}

func TestClampNegatives(t *testing.T) {
	tab := New([]int{0, 1})
	tab.Cells = []float64{-2, 3, -0.5, 1}
	removed := tab.ClampNegatives()
	if removed != 2.5 {
		t.Errorf("removed = %v, want 2.5", removed)
	}
	if tab.Cells[0] != 0 || tab.Cells[2] != 0 {
		t.Errorf("cells = %v, negatives remain", tab.Cells)
	}
}

func TestL2Distance(t *testing.T) {
	a := New([]int{0})
	b := New([]int{0})
	a.Cells = []float64{3, 0}
	b.Cells = []float64{0, 4}
	if got := L2Distance(a, b); got != 5 {
		t.Errorf("L2 = %v, want 5", got)
	}
}

func TestL2DistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	L2Distance(New([]int{0}), New([]int{1}))
}

func TestMaxAbsDiff(t *testing.T) {
	a := New([]int{0, 1})
	b := New([]int{0, 1})
	a.Cells = []float64{1, 2, 3, 4}
	b.Cells = []float64{1, 5, 3, 3}
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestSetOps(t *testing.T) {
	a := []int{1, 3, 5, 7}
	b := []int{3, 4, 5, 9}
	if got := Intersect(a, b); !reflect.DeepEqual(got, []int{3, 5}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Union(a, b); !reflect.DeepEqual(got, []int{1, 3, 4, 5, 7, 9}) {
		t.Errorf("Union = %v", got)
	}
	if !Subset([]int{3, 5}, a) {
		t.Error("Subset({3,5}, a) = false")
	}
	if Subset([]int{3, 4}, a) {
		t.Error("Subset({3,4}, a) = true")
	}
	if !Subset(nil, a) {
		t.Error("Subset(∅, a) = false")
	}
}

func TestIntersectEmpty(t *testing.T) {
	if got := Intersect([]int{1, 2}, []int{3, 4}); len(got) != 0 {
		t.Errorf("Intersect = %v, want empty", got)
	}
}

func TestKeyCanonical(t *testing.T) {
	if Key([]int{1, 2, 3}) == Key([]int{1, 23}) {
		t.Error("Key collides between {1,2,3} and {1,23}")
	}
	if Key([]int{1, 2}) != Key([]int{1, 2}) {
		t.Error("Key is not deterministic")
	}
	if Key(nil) != "" {
		t.Errorf("Key(nil) = %q, want empty", Key(nil))
	}
}

func TestAddInto(t *testing.T) {
	a := New([]int{0, 1})
	b := New([]int{0, 1})
	a.Cells = []float64{1, 1, 1, 1}
	b.Cells = []float64{1, 2, 3, 4}
	a.AddInto(b)
	if !reflect.DeepEqual(a.Cells, []float64{2, 3, 4, 5}) {
		t.Errorf("AddInto = %v", a.Cells)
	}
}

func TestAddLaplaceChangesCells(t *testing.T) {
	tab := New([]int{0, 1, 2})
	tab.Fill(100)
	src := noise.NewStream(4)
	noisy := tab.NoisyCopy(src, 5)
	if Equal(tab, noisy, 1e-12) {
		t.Error("noisy copy identical to original")
	}
	// Original untouched.
	for _, v := range tab.Cells {
		if v != 100 {
			t.Fatal("NoisyCopy mutated the source table")
		}
	}
}

func TestNoisyCopyVariance(t *testing.T) {
	src := noise.NewStream(8)
	tab := New([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	scale := 4.0
	var sumSq float64
	const reps = 30
	for r := 0; r < reps; r++ {
		noisy := tab.NoisyCopy(src, scale)
		for _, v := range noisy.Cells {
			sumSq += v * v
		}
	}
	got := sumSq / float64(reps*tab.Size())
	want := 2 * scale * scale
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("empirical noise variance = %v, want ~%v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New([]int{0})
	a.Cells = []float64{1, 2}
	b := a.Clone()
	b.Cells[0] = 99
	b.Attrs[0] = 7
	if a.Cells[0] != 1 || a.Attrs[0] != 0 {
		t.Error("Clone shares storage with the original")
	}
}
